// Package rbd implements reliability block diagrams: series, parallel and
// k-of-n compositions of blocks whose reliability is a function of time.
//
// The paper uses an RBD for the wheel-node subsystem in full-functionality
// mode (Figure 8: four fail-silent nodes in series). The package evaluates
// R(t) exactly from the block structure; blocks are independent, matching
// the paper's assumption of statistically independent node faults.
package rbd

import (
	"fmt"
	"math"
)

// Reliability is a reliability function of time: R(t) is the probability
// that the component operates correctly throughout [0, t]. Time is in
// hours, matching the paper's parameters.
type Reliability func(hours float64) float64

// Block is a node of a reliability block diagram.
type Block interface {
	// Reliability evaluates the block's reliability at time t (hours).
	Reliability(hours float64) float64
	// Describe returns a short structural description for reports.
	Describe() string
}

// Basic is a leaf block with an arbitrary reliability function.
type Basic struct {
	Name string
	Fn   Reliability
}

var _ Block = (*Basic)(nil)

// Reliability evaluates the leaf's reliability function, clamped to [0,1].
func (b *Basic) Reliability(hours float64) float64 {
	return clamp(b.Fn(hours))
}

// Describe returns the leaf's name.
func (b *Basic) Describe() string { return b.Name }

// Exponential returns a leaf block that fails at a constant rate
// (failures per hour): R(t) = e^{−rate·t}.
func Exponential(name string, ratePerHour float64) *Basic {
	if ratePerHour < 0 {
		panic(fmt.Sprintf("rbd: negative failure rate %v", ratePerHour))
	}
	return &Basic{Name: name, Fn: func(h float64) float64 {
		return math.Exp(-ratePerHour * h)
	}}
}

// Series is a chain of blocks that all must work: R = Π Rᵢ.
type Series struct {
	Blocks []Block
}

var _ Block = (*Series)(nil)

// NewSeries builds a series arrangement; it panics on an empty list, which
// would silently evaluate to reliability 1.
func NewSeries(blocks ...Block) *Series {
	if len(blocks) == 0 {
		panic("rbd: empty series")
	}
	return &Series{Blocks: blocks}
}

// Reliability is the product of the member reliabilities.
func (s *Series) Reliability(hours float64) float64 {
	r := 1.0
	for _, b := range s.Blocks {
		r *= b.Reliability(hours)
	}
	return clamp(r)
}

// Describe renders the series structure.
func (s *Series) Describe() string { return describeGroup("series", s.Blocks) }

// Parallel is a redundant arrangement where one working block suffices:
// R = 1 − Π(1 − Rᵢ).
type Parallel struct {
	Blocks []Block
}

var _ Block = (*Parallel)(nil)

// NewParallel builds a parallel arrangement; it panics on an empty list.
func NewParallel(blocks ...Block) *Parallel {
	if len(blocks) == 0 {
		panic("rbd: empty parallel")
	}
	return &Parallel{Blocks: blocks}
}

// Reliability is 1 minus the probability that every member fails.
func (p *Parallel) Reliability(hours float64) float64 {
	q := 1.0
	for _, b := range p.Blocks {
		q *= 1 - b.Reliability(hours)
	}
	return clamp(1 - q)
}

// Describe renders the parallel structure.
func (p *Parallel) Describe() string { return describeGroup("parallel", p.Blocks) }

// KOfN requires at least K of its member blocks to work.
type KOfN struct {
	K      int
	Blocks []Block
}

var _ Block = (*KOfN)(nil)

// NewKOfN builds a k-of-n arrangement. It panics unless 1 ≤ k ≤ len(blocks).
func NewKOfN(k int, blocks ...Block) *KOfN {
	if k < 1 || k > len(blocks) {
		panic(fmt.Sprintf("rbd: k=%d out of range for %d blocks", k, len(blocks)))
	}
	return &KOfN{K: k, Blocks: blocks}
}

// Reliability sums, over all subsets of working blocks of size ≥ K, the
// probability of exactly that subset working. Blocks may have distinct
// reliabilities, so the computation uses dynamic programming over the
// count of working members rather than a binomial closed form.
func (k *KOfN) Reliability(hours float64) float64 {
	n := len(k.Blocks)
	// dp[c] = probability exactly c of the blocks seen so far work.
	dp := make([]float64, n+1)
	dp[0] = 1
	for _, b := range k.Blocks {
		r := b.Reliability(hours)
		for c := n; c >= 1; c-- {
			dp[c] = dp[c]*(1-r) + dp[c-1]*r
		}
		dp[0] *= 1 - r
	}
	sum := 0.0
	for c := k.K; c <= n; c++ {
		sum += dp[c]
	}
	return clamp(sum)
}

// Describe renders the k-of-n structure.
func (k *KOfN) Describe() string {
	return fmt.Sprintf("%d-of-%d%s", k.K, len(k.Blocks), describeGroup("", k.Blocks))
}

// MTTF integrates the block's reliability over [0, ∞) numerically using
// adaptive Simpson quadrature on a transformed domain. horizonHint gives
// the solver a scale (e.g. an expected MTTF magnitude in hours); results
// are insensitive to it within a few orders of magnitude.
func MTTF(b Block, horizonHint float64) float64 {
	if horizonHint <= 0 {
		horizonHint = 1e4
	}
	// Integrate piecewise on geometrically growing panels until the tail
	// contribution is negligible.
	total := 0.0
	lo := 0.0
	width := horizonHint / 64
	for i := 0; i < 200; i++ {
		hi := lo + width
		panel := simpson(func(t float64) float64 { return b.Reliability(t) }, lo, hi, 64)
		total += panel
		if panel < 1e-12*total && b.Reliability(hi) < 1e-12 {
			break
		}
		lo = hi
		width *= 1.5
	}
	return total
}

// simpson integrates f over [a, b] with n panels (n made even).
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 0 {
			sum += 2 * f(x)
		} else {
			sum += 4 * f(x)
		}
	}
	return sum * h / 3
}

func describeGroup(kind string, blocks []Block) string {
	s := kind + "("
	for i, b := range blocks {
		if i > 0 {
			s += ", "
		}
		s += b.Describe()
	}
	return s + ")"
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
