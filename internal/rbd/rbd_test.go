package rbd

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func constBlock(r float64) *Basic {
	return &Basic{Name: "const", Fn: func(float64) float64 { return r }}
}

func TestExponentialLeaf(t *testing.T) {
	b := Exponential("node", 0.5)
	if got := b.Reliability(0); got != 1 {
		t.Errorf("R(0) = %v", got)
	}
	want := math.Exp(-0.5 * 2)
	if got := b.Reliability(2); math.Abs(got-want) > 1e-15 {
		t.Errorf("R(2) = %v, want %v", got, want)
	}
	if b.Describe() != "node" {
		t.Errorf("Describe = %q", b.Describe())
	}
}

func TestExponentialNegativeRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative rate did not panic")
		}
	}()
	Exponential("bad", -1)
}

func TestBasicClamps(t *testing.T) {
	b := &Basic{Name: "wild", Fn: func(float64) float64 { return 1.5 }}
	if got := b.Reliability(1); got != 1 {
		t.Errorf("clamped high = %v", got)
	}
	b.Fn = func(float64) float64 { return -0.5 }
	if got := b.Reliability(1); got != 0 {
		t.Errorf("clamped low = %v", got)
	}
}

func TestSeriesProduct(t *testing.T) {
	s := NewSeries(constBlock(0.9), constBlock(0.8), constBlock(0.5))
	if got := s.Reliability(1); math.Abs(got-0.36) > 1e-15 {
		t.Errorf("series = %v, want 0.36", got)
	}
}

func TestSeriesOfExponentialsAddsRates(t *testing.T) {
	// Series of exponentials is an exponential with summed rate — this is
	// exactly the paper's Figure 8 (four FS wheel nodes in series).
	rate := 2.002e-4 // λ_P + λ_T
	s := NewSeries(
		Exponential("WN1", rate), Exponential("WN2", rate),
		Exponential("WN3", rate), Exponential("WN4", rate),
	)
	for _, h := range []float64{0, 100, 8760} {
		want := math.Exp(-4 * rate * h)
		if got := s.Reliability(h); math.Abs(got-want) > 1e-12 {
			t.Errorf("R(%v) = %v, want %v", h, got, want)
		}
	}
}

func TestParallel(t *testing.T) {
	p := NewParallel(constBlock(0.9), constBlock(0.8))
	want := 1 - 0.1*0.2
	if got := p.Reliability(1); math.Abs(got-want) > 1e-15 {
		t.Errorf("parallel = %v, want %v", got, want)
	}
}

func TestEmptyGroupsPanic(t *testing.T) {
	for name, fn := range map[string]func(){
		"series":   func() { NewSeries() },
		"parallel": func() { NewParallel() },
		"kofn":     func() { NewKOfN(1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: empty group did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestKOfNBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("k > n did not panic")
		}
	}()
	NewKOfN(3, constBlock(1), constBlock(1))
}

func TestKOfNHomogeneousMatchesBinomial(t *testing.T) {
	r := 0.9
	k := NewKOfN(3, constBlock(r), constBlock(r), constBlock(r), constBlock(r))
	// 3-of-4: C(4,3) r³(1−r) + r⁴
	want := 4*math.Pow(r, 3)*(1-r) + math.Pow(r, 4)
	if got := k.Reliability(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("3-of-4 = %v, want %v", got, want)
	}
}

func TestKOfNDegenerateCases(t *testing.T) {
	blocks := []Block{constBlock(0.7), constBlock(0.6), constBlock(0.5)}
	// 1-of-n equals parallel.
	oneOf := NewKOfN(1, blocks...)
	par := NewParallel(blocks...)
	if math.Abs(oneOf.Reliability(1)-par.Reliability(1)) > 1e-12 {
		t.Error("1-of-n != parallel")
	}
	// n-of-n equals series.
	allOf := NewKOfN(3, blocks...)
	ser := NewSeries(blocks...)
	if math.Abs(allOf.Reliability(1)-ser.Reliability(1)) > 1e-12 {
		t.Error("n-of-n != series")
	}
}

func TestKOfNHeterogeneous(t *testing.T) {
	// 2-of-3 with distinct reliabilities, enumerated by hand:
	a, b, c := 0.9, 0.8, 0.7
	k := NewKOfN(2, constBlock(a), constBlock(b), constBlock(c))
	want := a*b*c + a*b*(1-c) + a*(1-b)*c + (1-a)*b*c
	if got := k.Reliability(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("2-of-3 = %v, want %v", got, want)
	}
}

func TestDescribe(t *testing.T) {
	s := NewSeries(Exponential("a", 1), NewParallel(Exponential("b", 1), Exponential("c", 1)))
	d := s.Describe()
	for _, frag := range []string{"series(", "parallel(", "a", "b", "c"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe %q missing %q", d, frag)
		}
	}
	k := NewKOfN(2, Exponential("x", 1), Exponential("y", 1), Exponential("z", 1))
	if !strings.Contains(k.Describe(), "2-of-3") {
		t.Errorf("KOfN Describe = %q", k.Describe())
	}
}

func TestMTTFExponential(t *testing.T) {
	// MTTF of an exponential with rate λ is 1/λ.
	rate := 1.0 / 500
	got := MTTF(Exponential("n", rate), 500)
	if math.Abs(got-500)/500 > 1e-6 {
		t.Errorf("MTTF = %v, want 500", got)
	}
	// Robust to a poor hint.
	got = MTTF(Exponential("n", rate), 10)
	if math.Abs(got-500)/500 > 1e-6 {
		t.Errorf("MTTF with poor hint = %v, want 500", got)
	}
	// Non-positive hint falls back to a default scale.
	got = MTTF(Exponential("n", 1.0/1000), 0)
	if math.Abs(got-1000)/1000 > 1e-6 {
		t.Errorf("MTTF with zero hint = %v, want 1000", got)
	}
}

func TestMTTFSeries(t *testing.T) {
	// Series of exponentials: MTTF = 1/Σλ.
	s := NewSeries(Exponential("a", 0.001), Exponential("b", 0.003))
	want := 1.0 / 0.004
	if got := MTTF(s, want); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("MTTF = %v, want %v", got, want)
	}
}

func TestMTTFParallelTwoIdentical(t *testing.T) {
	// Two identical exponentials in parallel: MTTF = 3/(2λ).
	lambda := 0.002
	p := NewParallel(Exponential("a", lambda), Exponential("b", lambda))
	want := 3 / (2 * lambda)
	if got := MTTF(p, want); math.Abs(got-want)/want > 1e-6 {
		t.Errorf("MTTF = %v, want %v", got, want)
	}
}

func TestReliabilityMonotonicityProperty(t *testing.T) {
	// Property: any composition of exponential leaves is non-increasing in
	// time and stays within [0, 1].
	check := func(rates []uint16, seed uint8) bool {
		if len(rates) == 0 {
			return true
		}
		if len(rates) > 6 {
			rates = rates[:6]
		}
		blocks := make([]Block, len(rates))
		for i, r := range rates {
			blocks[i] = Exponential("x", float64(r)/1e4)
		}
		var b Block
		switch seed % 3 {
		case 0:
			b = NewSeries(blocks...)
		case 1:
			b = NewParallel(blocks...)
		default:
			b = NewKOfN(1+int(seed)%len(blocks), blocks...)
		}
		prev := 1.0
		for _, h := range []float64{0, 1, 10, 100, 1000, 10000} {
			r := b.Reliability(h)
			if r < 0 || r > 1 || r > prev+1e-12 {
				return false
			}
			prev = r
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRedundancyHelpsProperty(t *testing.T) {
	// Property: parallel of two copies is at least as reliable as one copy.
	check := func(rateRaw uint16, hRaw uint16) bool {
		rate := float64(rateRaw+1) / 1e5
		h := float64(hRaw) / 10
		single := Exponential("n", rate)
		dup := NewParallel(Exponential("n", rate), Exponential("n", rate))
		return dup.Reliability(h) >= single.Reliability(h)-1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkKOfNReliability(b *testing.B) {
	blocks := make([]Block, 16)
	for i := range blocks {
		blocks[i] = Exponential("n", float64(i+1)/1e5)
	}
	k := NewKOfN(12, blocks...)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = k.Reliability(1000)
	}
}
