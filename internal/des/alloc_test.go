// The allocation gates in this file pin the tentpole guarantee of the
// pooled event core: once the slot pool and heap backing are warm,
// Schedule/Step/Cancel and the bounded NextEventAfter walk perform no
// heap allocations. The race detector instruments allocations, so these
// tests only run in non-race builds (CI runs them as a separate step).

//go:build !race

package des

import "testing"

// TestSteadyStateZeroAlloc drives a warm simulator through the full hot
// path — schedule, lazy cancel, step, next-event query — and requires
// zero allocations per iteration.
func TestSteadyStateZeroAlloc(t *testing.T) {
	s := New()
	nop := func() {}
	// Warm the pool, heap backing and walk stack.
	for i := 0; i < 256; i++ {
		s.Schedule(Time(i), PrioKernel, nop)
	}
	s.NextEventAfter(0)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(200, func() {
		doomed := s.Schedule(s.Now()+3, PrioDispatch, nop)
		s.Schedule(s.Now()+1, PrioKernel, nop)
		s.Schedule(s.Now()+2, PrioNetwork, nop)
		s.Cancel(doomed)
		s.NextEventAfter(s.Now())
		s.Step()
		s.Step()
		s.Step()
	})
	if allocs != 0 {
		t.Errorf("steady-state Schedule/Cancel/Step: %v allocs per run, want 0", allocs)
	}
}

// TestRunUntilZeroAlloc: advancing the clock over a warm queue must not
// allocate either (the RunUntil loop is the campaign driver's hot path).
func TestRunUntilZeroAlloc(t *testing.T) {
	s := New()
	nop := func() {}
	for i := 0; i < 64; i++ {
		s.Schedule(Time(i), PrioKernel, nop)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	target := s.Now()
	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 16; i++ {
			s.Schedule(target+Time(10+i), PrioKernel, nop)
		}
		target += 100
		if err := s.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm RunUntil: %v allocs per run, want 0", allocs)
	}
}
