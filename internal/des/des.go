// Package des provides a deterministic discrete-event simulation core.
//
// The simulator maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same instant are ordered by an explicit
// tie-break priority and then by insertion order, so a given schedule of
// calls always replays identically. Nothing in this package reads the wall
// clock: simulated real-time behaviour (preemption, deadlines, TDMA slots)
// is therefore reproducible and immune to host scheduling jitter, which is
// the substitution DESIGN.md documents for the paper's bare-metal kernel.
//
// The event queue is built for a steady-state allocation-free hot path:
// events live in a pooled slot array recycled through a free list, the
// priority queue is a concrete 4-ary min-heap of slot indices (no
// interface dispatch, no per-event boxing), and Schedule returns a small
// value handle carrying a generation counter so a stale handle can never
// cancel a recycled slot. Cancel is a lazy delete: the slot is marked and
// skipped when it surfaces, with a periodic compaction sweep when
// canceled entries dominate the heap.
package des

import (
	"errors"
	"fmt"
)

// Time is an instant of simulated time in nanoseconds since simulation
// start. It is a distinct type from time.Duration to keep simulated and
// host time from being mixed accidentally.
type Time int64

// Convenient simulated-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulated instant.
const MaxTime Time = 1<<63 - 1

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours reports t as a floating-point number of hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String formats the instant with a unit chosen by magnitude.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// Event is a handle to a scheduled callback, returned by the scheduling
// methods so callers can cancel the event before it fires. It is a small
// value (slot index plus generation counter), valid only for the
// Simulator that issued it. The zero Event refers to nothing: canceling
// it is a no-op, so callers can keep a "no event pending" sentinel
// without a pointer.
type Event struct {
	slot int32
	gen  uint32
}

// Tie-break priorities for events scheduled at the same instant. Lower
// values fire first. The bands keep infrastructure events (fault
// injections, network deliveries) ordered sensibly around task dispatch.
const (
	PrioInject   = -100 // fault injections hit before anything else observes the instant
	PrioNetwork  = -50  // frame deliveries precede task releases in the same slot
	PrioKernel   = 0    // kernel housekeeping: releases, budget expiry, deadlines
	PrioDispatch = 50   // dispatcher runs after all same-instant kernel events
	PrioObserver = 100  // probes and trace sinks see the settled state
)

// eventSlot is one pooled event. Slots are recycled through a free list;
// gen increments on every recycle so stale handles cannot touch the new
// occupant.
type eventSlot struct {
	at       Time
	seq      uint64
	fn       func()
	gen      uint32
	prio     int32
	canceled bool
}

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("des: simulation stopped")

// compactMinLazy is the minimum number of lazily-canceled entries before
// a compaction sweep is considered; below it the per-pop skip is cheaper
// than rebuilding.
const compactMinLazy = 64

// Simulator is a single-threaded discrete-event simulator. The zero value
// is ready to use; the clock starts at 0.
//
// Simulator is not safe for concurrent use. All model code runs inside
// event callbacks on the caller's goroutine, which is what makes the
// simulation deterministic.
type Simulator struct {
	now  Time
	pool []eventSlot
	free []int32 // recycled slot indices (LIFO)
	heap []int32 // 4-ary min-heap of slot indices, ordered by (at, prio, seq)
	lazy int     // canceled entries still sitting in the heap
	seq  uint64
	// walk is the reused traversal stack for NextEventAfter.
	//nlft:snapshot-skip reused traversal scratch, fully rewritten before every use
	walk    []int32
	stopped bool
	// fired counts events executed, exposed for tests and benchmarks.
	fired uint64
	// onEvent, when non-nil, observes every event execution (telemetry).
	//nlft:snapshot-skip telemetry wiring installed per run, not rewindable simulation state
	onEvent func(at Time, prio int)
}

// SetEventObserver installs fn to be called immediately before every
// event callback runs, with the event's instant and tie-break priority.
// Passing nil detaches the observer. The observability layer
// (internal/obs) uses this to count fired events per priority band and
// track queue depth; when detached the cost is a single nil check per
// event.
func (s *Simulator) SetEventObserver(fn func(at Time, prio int)) { s.onEvent = fn }

// New returns a simulator with the clock at 0.
func New() *Simulator { return &Simulator{} }

// Now reports the current simulated instant.
func (s *Simulator) Now() Time { return s.now }

// Fired reports the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports the number of live events currently queued (canceled
// events awaiting lazy discard are not counted).
func (s *Simulator) Pending() int { return len(s.heap) - s.lazy }

// Scheduled reports whether e refers to an event that is still queued
// and not canceled. A fired, canceled or zero handle reports false.
//
//nlft:noalloc
func (s *Simulator) Scheduled(e Event) bool {
	if e.gen == 0 || int(e.slot) >= len(s.pool) {
		return false
	}
	sl := &s.pool[e.slot]
	return sl.gen == e.gen && !sl.canceled
}

// less orders two pooled events by (instant, tie-break priority,
// insertion sequence).
//
//nlft:noalloc
func (s *Simulator) less(a, b int32) bool {
	x, y := &s.pool[a], &s.pool[b]
	if x.at != y.at {
		return x.at < y.at
	}
	if x.prio != y.prio {
		return x.prio < y.prio
	}
	return x.seq < y.seq
}

// The heap is 4-ary: children of node i sit at 4i+1..4i+4, its parent at
// (i-1)/4. The wider fan-out halves the tree depth of the binary layout,
// trading a few extra comparisons per level for far fewer cache-missing
// levels — the winning trade when the comparison is three integer fields
// in a flat slot array.

//nlft:noalloc
func (s *Simulator) siftUp(i int) {
	h := s.heap
	for i > 0 {
		p := (i - 1) / 4
		if !s.less(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
}

//nlft:noalloc
func (s *Simulator) siftDown(i int) {
	h := s.heap
	n := len(h)
	for {
		c := 4*i + 1
		if c >= n {
			return
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if s.less(h[k], h[best]) {
				best = k
			}
		}
		if !s.less(h[best], h[i]) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

// popRoot removes the heap minimum (the caller has already read it).
//
//nlft:noalloc
func (s *Simulator) popRoot() {
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 1 {
		s.siftDown(0)
	}
}

// freeSlot recycles a slot for reuse, bumping its generation so any
// outstanding handle to the old occupant goes dead.
//
//nlft:noalloc
func (s *Simulator) freeSlot(idx int32) {
	sl := &s.pool[idx]
	sl.gen++
	if sl.gen == 0 { // never collide with the zero (no-event) handle
		sl.gen = 1
	}
	sl.fn = nil
	sl.canceled = false
	s.free = append(s.free, idx)
}

// Schedule queues fn to run at instant at with the given same-instant
// tie-break priority. Scheduling in the past panics: it indicates a model
// bug that would otherwise silently corrupt causality.
//
//nlft:noalloc
func (s *Simulator) Schedule(at Time, prio int, fn func()) Event {
	if at < s.now {
		//nlft:allow noalloc panic message on a causality bug; never built on a correct model
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	var idx int32
	if n := len(s.free); n > 0 {
		idx = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		s.pool = append(s.pool, eventSlot{gen: 1})
		idx = int32(len(s.pool) - 1)
	}
	sl := &s.pool[idx]
	sl.at = at
	sl.prio = int32(prio)
	sl.seq = s.seq
	sl.fn = fn
	s.seq++
	s.heap = append(s.heap, idx)
	s.siftUp(len(s.heap) - 1)
	return Event{slot: idx, gen: sl.gen}
}

// After queues fn to run d after the current instant at kernel priority.
//
//nlft:noalloc
func (s *Simulator) After(d Time, fn func()) Event {
	return s.Schedule(s.now+d, PrioKernel, fn)
}

// Cancel prevents a queued event from firing. Canceling an event that
// already fired, was already canceled, or a zero handle is a no-op: the
// generation counter in the handle detects every stale case, including a
// slot that has since been recycled for an unrelated event. The entry
// stays in the heap as a lazy tombstone and is discarded when it
// surfaces, or swept early when tombstones dominate the queue.
//
//nlft:noalloc
func (s *Simulator) Cancel(e Event) {
	if e.gen == 0 || int(e.slot) >= len(s.pool) {
		return
	}
	sl := &s.pool[e.slot]
	if sl.gen != e.gen || sl.canceled {
		return
	}
	sl.canceled = true
	sl.fn = nil // release the callback's captures immediately
	s.lazy++
	if s.lazy >= compactMinLazy && s.lazy*2 >= len(s.heap) {
		s.compact()
	}
}

// compact sweeps lazily-canceled entries out of the heap and rebuilds it
// in place (Floyd's O(n) heapify). Triggered from Cancel when at least
// half the heap is tombstones, so the amortized cost per cancel is O(1).
//
//nlft:noalloc
func (s *Simulator) compact() {
	live := s.heap[:0]
	for _, idx := range s.heap {
		if s.pool[idx].canceled {
			s.freeSlot(idx)
		} else {
			live = append(live, idx)
		}
	}
	s.heap = live
	s.lazy = 0
	for i := (len(s.heap) - 2) / 4; i >= 0; i-- {
		s.siftDown(i)
	}
}

// Stop makes the current Run variant return ErrStopped after the current
// callback completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next queued event, advancing the clock to its instant.
// It reports false when the queue is empty.
//
//nlft:noalloc
func (s *Simulator) Step() bool {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		sl := &s.pool[idx]
		if sl.canceled {
			s.popRoot()
			s.lazy--
			s.freeSlot(idx)
			continue
		}
		at, prio, fn := sl.at, int(sl.prio), sl.fn
		s.popRoot()
		s.freeSlot(idx)
		s.now = at
		s.fired++
		if s.onEvent != nil {
			s.onEvent(at, prio)
		}
		fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns
// nil on a drained queue and ErrStopped if stopped.
//
//nlft:noalloc
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.Step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil fires events up to and including instant t, then advances the
// clock to exactly t. Events scheduled after t stay queued. It returns
// ErrStopped if Stop was called.
//
//nlft:noalloc
func (s *Simulator) RunUntil(t Time) error {
	if t < s.now {
		//nlft:allow noalloc error construction on a misuse path, not taken during a run
		return fmt.Errorf("des: run until %v before now %v", t, s.now)
	}
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next > t {
			s.now = t
			return nil
		}
		s.Step()
	}
	return ErrStopped
}

// peek reports the instant of the next live event without firing it,
// discarding canceled entries that surface at the root.
//
//nlft:noalloc
func (s *Simulator) peek() (Time, bool) {
	for len(s.heap) > 0 {
		idx := s.heap[0]
		if !s.pool[idx].canceled {
			return s.pool[idx].at, true
		}
		s.popRoot()
		s.lazy--
		s.freeSlot(idx)
	}
	return 0, false
}

// NextEventAt reports the instant of the next live event, or MaxTime when
// the queue is empty. Co-simulated components (the CPU interpreter) use it
// to bound how long they may run before yielding back to the event loop.
//
//nlft:noalloc
func (s *Simulator) NextEventAt() Time {
	at, ok := s.peek()
	if !ok {
		return MaxTime
	}
	return at
}

// NextEventAfter reports the instant of the earliest live event strictly
// after t, or MaxTime when there is none. Co-simulated CPUs bound their
// run slices with this: events at the current instant have either
// already fired (lower tie-break priority) or are other components'
// same-instant work that cannot affect this CPU mid-slice.
//
// The walk exploits the heap invariant instead of scanning the whole
// queue: a subtree rooted at an event later than t can contribute only
// its root (children are never earlier), so the traversal descends only
// through the few entries at or before t — same-instant leftovers and
// lazy-canceled tombstones — and prunes everything already beaten by the
// best candidate.
//
//nlft:noalloc
func (s *Simulator) NextEventAfter(t Time) Time {
	best := MaxTime
	h := s.heap
	if len(h) == 0 {
		return best
	}
	stack := s.walk[:0]
	stack = append(stack, 0)
	for len(stack) > 0 {
		i := int(stack[len(stack)-1])
		stack = stack[:len(stack)-1]
		sl := &s.pool[h[i]]
		if sl.at >= best {
			continue // the whole subtree is at or past the current best
		}
		if sl.at > t && !sl.canceled {
			best = sl.at
			continue // children cannot beat their parent
		}
		c := 4*i + 1
		end := c + 4
		if end > len(h) {
			end = len(h)
		}
		for ; c < end; c++ {
			stack = append(stack, int32(c))
		}
	}
	s.walk = stack[:0] // keep the grown stack for the next call
	return best
}
