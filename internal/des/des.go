// Package des provides a deterministic discrete-event simulation core.
//
// The simulator maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same instant are ordered by an explicit
// tie-break priority and then by insertion order, so a given schedule of
// calls always replays identically. Nothing in this package reads the wall
// clock: simulated real-time behaviour (preemption, deadlines, TDMA slots)
// is therefore reproducible and immune to host scheduling jitter, which is
// the substitution DESIGN.md documents for the paper's bare-metal kernel.
package des

import (
	"container/heap"
	"errors"
	"fmt"
)

// Time is an instant of simulated time in nanoseconds since simulation
// start. It is a distinct type from time.Duration to keep simulated and
// host time from being mixed accidentally.
type Time int64

// Convenient simulated-time unit constants.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// MaxTime is the largest representable simulated instant.
const MaxTime Time = 1<<63 - 1

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Hours reports t as a floating-point number of hours.
func (t Time) Hours() float64 { return float64(t) / float64(Hour) }

// String formats the instant with a unit chosen by magnitude.
func (t Time) String() string {
	switch {
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.6fs", t.Seconds())
	}
}

// Event is a scheduled callback. It is returned by the scheduling methods
// so callers can cancel it before it fires.
type Event struct {
	at       Time
	prio     int
	seq      uint64
	fn       func()
	index    int // heap index, -1 when not queued
	canceled bool
}

// At reports the instant the event is (or was) scheduled for.
func (e *Event) At() Time { return e.at }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Tie-break priorities for events scheduled at the same instant. Lower
// values fire first. The bands keep infrastructure events (fault
// injections, network deliveries) ordered sensibly around task dispatch.
const (
	PrioInject   = -100 // fault injections hit before anything else observes the instant
	PrioNetwork  = -50  // frame deliveries precede task releases in the same slot
	PrioKernel   = 0    // kernel housekeeping: releases, budget expiry, deadlines
	PrioDispatch = 50   // dispatcher runs after all same-instant kernel events
	PrioObserver = 100  // probes and trace sinks see the settled state
)

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("des: simulation stopped")

// Simulator is a single-threaded discrete-event simulator. The zero value
// is ready to use; the clock starts at 0.
//
// Simulator is not safe for concurrent use. All model code runs inside
// event callbacks on the caller's goroutine, which is what makes the
// simulation deterministic.
type Simulator struct {
	now     Time
	queue   eventHeap
	seq     uint64
	stopped bool
	// fired counts events executed, exposed for tests and benchmarks.
	fired uint64
	// onEvent, when non-nil, observes every event execution (telemetry).
	onEvent func(at Time, prio int)
}

// SetEventObserver installs fn to be called immediately before every
// event callback runs, with the event's instant and tie-break priority.
// Passing nil detaches the observer. The observability layer
// (internal/obs) uses this to count fired events per priority band and
// track queue depth; when detached the cost is a single nil check per
// event.
func (s *Simulator) SetEventObserver(fn func(at Time, prio int)) { s.onEvent = fn }

// New returns a simulator with the clock at 0.
func New() *Simulator { return &Simulator{} }

// Now reports the current simulated instant.
func (s *Simulator) Now() Time { return s.now }

// Fired reports the number of events executed so far.
func (s *Simulator) Fired() uint64 { return s.fired }

// Pending reports the number of events currently queued (including
// canceled events not yet discarded).
func (s *Simulator) Pending() int { return len(s.queue) }

// Schedule queues fn to run at instant at with the given same-instant
// tie-break priority. Scheduling in the past panics: it indicates a model
// bug that would otherwise silently corrupt causality.
func (s *Simulator) Schedule(at Time, prio int, fn func()) *Event {
	if at < s.now {
		panic(fmt.Sprintf("des: schedule at %v before now %v", at, s.now))
	}
	if fn == nil {
		panic("des: schedule with nil callback")
	}
	e := &Event{at: at, prio: prio, seq: s.seq, fn: fn, index: -1}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// After queues fn to run d after the current instant at kernel priority.
func (s *Simulator) After(d Time, fn func()) *Event {
	return s.Schedule(s.now+d, PrioKernel, fn)
}

// Cancel prevents a queued event from firing. Canceling an event that
// already fired or was already canceled is a no-op.
func (s *Simulator) Cancel(e *Event) {
	if e == nil || e.canceled || e.index < 0 {
		if e != nil {
			e.canceled = true
		}
		return
	}
	e.canceled = true
	heap.Remove(&s.queue, e.index)
}

// Stop makes the current Run variant return ErrStopped after the current
// callback completes.
func (s *Simulator) Stop() { s.stopped = true }

// Step fires the next queued event, advancing the clock to its instant.
// It reports false when the queue is empty.
func (s *Simulator) Step() bool {
	for len(s.queue) > 0 {
		e := heap.Pop(&s.queue).(*Event)
		if e.canceled {
			continue
		}
		s.now = e.at
		s.fired++
		if s.onEvent != nil {
			s.onEvent(e.at, e.prio)
		}
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns
// nil on a drained queue and ErrStopped if stopped.
func (s *Simulator) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.Step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil fires events up to and including instant t, then advances the
// clock to exactly t. Events scheduled after t stay queued. It returns
// ErrStopped if Stop was called.
func (s *Simulator) RunUntil(t Time) error {
	if t < s.now {
		return fmt.Errorf("des: run until %v before now %v", t, s.now)
	}
	s.stopped = false
	for !s.stopped {
		next, ok := s.peek()
		if !ok || next.at > t {
			s.now = t
			return nil
		}
		s.Step()
	}
	return ErrStopped
}

// peek returns the next live event without removing it.
func (s *Simulator) peek() (*Event, bool) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if !e.canceled {
			return e, true
		}
		heap.Pop(&s.queue)
	}
	return nil, false
}

// NextEventAt reports the instant of the next live event, or MaxTime when
// the queue is empty. Co-simulated components (the CPU interpreter) use it
// to bound how long they may run before yielding back to the event loop.
func (s *Simulator) NextEventAt() Time {
	e, ok := s.peek()
	if !ok {
		return MaxTime
	}
	return e.at
}

// NextEventAfter reports the instant of the earliest live event strictly
// after t, or MaxTime when there is none. Co-simulated CPUs bound their
// run slices with this: events at the current instant have either
// already fired (lower tie-break priority) or are other components'
// same-instant work that cannot affect this CPU mid-slice.
func (s *Simulator) NextEventAfter(t Time) Time {
	best := MaxTime
	for _, e := range s.queue {
		if !e.canceled && e.at > t && e.at < best {
			best = e.at
		}
	}
	return best
}
