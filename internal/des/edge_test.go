package des

import (
	"testing"
	"testing/quick"
)

// The tests in this file pin the event-queue edge cases the pooled
// rewrite must preserve: stale handles across slot recycling, lazy
// deletion interacting with the run loop, and same-instant ordering
// surviving pool reuse.

// TestStaleHandleCannotCancelRecycledSlot: after an event fires, its
// slot returns to the free list and is reused by the next Schedule. A
// handle to the fired event must NOT cancel the new occupant — the
// generation counter distinguishes them even though they share a slot.
func TestStaleHandleCannotCancelRecycledSlot(t *testing.T) {
	s := New()
	stale := s.Schedule(1, PrioKernel, func() {})
	if !s.Step() {
		t.Fatal("no event to fire")
	}
	// The freed slot is recycled immediately (LIFO free list).
	fired := false
	fresh := s.Schedule(2, PrioKernel, func() { fired = true })
	s.Cancel(stale) // stale: must be a no-op
	if !s.Scheduled(fresh) {
		t.Fatal("stale handle canceled the recycled slot's new event")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("recycled-slot event did not fire")
	}
}

// TestCancelAlreadyFired: canceling an event that already fired is a
// no-op and does not disturb the queue.
func TestCancelAlreadyFired(t *testing.T) {
	s := New()
	count := 0
	e := s.Schedule(1, PrioKernel, func() { count++ })
	s.Schedule(2, PrioKernel, func() { count++ })
	if !s.Step() {
		t.Fatal("no event")
	}
	s.Cancel(e) // already fired
	s.Cancel(e)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Errorf("fired %d events, want 2", count)
	}
}

// TestCancelThenFireOrdering: lazily-deleted tombstones at the head of
// the queue must not perturb the (time, prio, seq) order of the
// surviving events.
func TestCancelThenFireOrdering(t *testing.T) {
	s := New()
	var order []int
	var doomed []Event
	// Interleave events to cancel with events to keep, same instants.
	for i := 0; i < 20; i++ {
		i := i
		if i%2 == 0 {
			doomed = append(doomed, s.Schedule(Time(i/4), PrioKernel, func() { order = append(order, -1) }))
		} else {
			s.Schedule(Time(i/4), PrioKernel, func() { order = append(order, i) })
		}
	}
	for _, e := range doomed {
		s.Cancel(e)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5, 7, 9, 11, 13, 15, 17, 19}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
}

// TestSameInstantBandsAcrossRecycling: priority-band ordering at one
// instant must hold even when the events pass through recycled slots
// with interleaved cancellations churning the free list.
func TestSameInstantBandsAcrossRecycling(t *testing.T) {
	s := New()
	// Churn the pool: schedule and cancel a batch so the free list holds
	// recycled slots in scrambled order.
	var churn []Event
	for i := 0; i < 8; i++ {
		churn = append(churn, s.Schedule(Time(100), PrioKernel, func() {}))
	}
	for _, e := range churn {
		s.Cancel(e)
	}
	var order []string
	s.Schedule(50, PrioObserver, func() { order = append(order, "observer") })
	s.Schedule(50, PrioInject, func() { order = append(order, "inject") })
	s.Schedule(50, PrioDispatch, func() { order = append(order, "dispatch") })
	s.Schedule(50, PrioNetwork, func() { order = append(order, "network") })
	s.Schedule(50, PrioKernel, func() { order = append(order, "kernel") })
	if err := s.RunUntil(60); err != nil {
		t.Fatal(err)
	}
	want := []string{"inject", "network", "kernel", "dispatch", "observer"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestRunUntilWithLazyDeletedHeads: RunUntil must advance the clock to
// exactly t when every earlier event is a lazy-deleted tombstone, and
// must not fire any of them.
func TestRunUntilWithLazyDeletedHeads(t *testing.T) {
	s := New()
	fired := 0
	var heads []Event
	for i := 1; i <= 5; i++ {
		heads = append(heads, s.Schedule(Time(i), PrioKernel, func() { fired++ }))
	}
	s.Schedule(100, PrioKernel, func() { fired++ })
	for _, e := range heads {
		s.Cancel(e)
	}
	if err := s.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Errorf("fired %d canceled events", fired)
	}
	if s.Now() != 50 {
		t.Errorf("Now() = %v, want 50 (clock must land on t, not on a tombstone)", s.Now())
	}
	if err := s.RunUntil(100); err != nil {
		t.Fatal(err)
	}
	if fired != 1 || s.Now() != 100 {
		t.Errorf("fired=%d now=%v, want 1 and 100", fired, s.Now())
	}
}

// TestCompactionPreservesOrder: mass cancellation triggers the heap
// compaction sweep; the survivors must still fire in order and the
// tombstones must all be recycled.
func TestCompactionPreservesOrder(t *testing.T) {
	s := New()
	const n = 1000
	var fired []Time
	var doomed []Event
	for i := 0; i < n; i++ {
		at := Time(i % 131)
		if i%4 == 0 {
			at := at
			s.Schedule(at, PrioKernel, func() { fired = append(fired, at) })
		} else {
			doomed = append(doomed, s.Schedule(at, PrioKernel, func() { fired = append(fired, -1) }))
		}
	}
	for _, e := range doomed {
		s.Cancel(e) // ~75% tombstones: forces at least one compaction
	}
	if got, want := s.Pending(), n-len(doomed); got != want {
		t.Errorf("Pending() = %d after mass cancel, want %d", got, want)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != n-len(doomed) {
		t.Fatalf("fired %d events, want %d", len(fired), n-len(doomed))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order after compaction: %v then %v", fired[i-1], fired[i])
		}
	}
}

// TestNextEventAfterMatchesScan: property test pinning the heap-walk
// NextEventAfter to the semantics of a full-queue scan, under random
// schedules, cancellations and thresholds.
func TestNextEventAfterMatchesScan(t *testing.T) {
	check := func(times []uint8, cancels []bool, threshold uint8) bool {
		s := New()
		events := make([]Event, len(times))
		for i, at := range times {
			events[i] = s.Schedule(Time(at), PrioKernel, func() {})
		}
		for i, c := range cancels {
			if c && i < len(events) {
				s.Cancel(events[i])
			}
		}
		// Reference: scan the pool through the heap slice.
		want := MaxTime
		for _, idx := range s.heap {
			sl := &s.pool[idx]
			if !sl.canceled && sl.at > Time(threshold) && sl.at < want {
				want = sl.at
			}
		}
		return s.NextEventAfter(Time(threshold)) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestScheduledAfterFire: a handle goes dead once its event fires.
func TestScheduledAfterFire(t *testing.T) {
	s := New()
	e := s.Schedule(1, PrioKernel, func() {})
	if !s.Scheduled(e) {
		t.Error("Scheduled() = false before firing")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Scheduled(e) {
		t.Error("Scheduled() = true after the event fired")
	}
	if s.Scheduled(Event{}) {
		t.Error("Scheduled(zero handle) = true")
	}
}
