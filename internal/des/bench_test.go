package des

// Benchmarks for the pooled zero-allocation event core, with
// machine-readable output. Running
//
//	BENCH_DES_JSON=BENCH_des.json go test -run=NONE -bench=DES ./internal/des
//
// writes the measured numbers to the named file (relative to this
// package directory); without the variable the benchmarks only report
// metrics. The committed BENCH_des.json records the post-rewrite
// steady-state cost per event.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/benchjson"
)

type churnPoint struct {
	Pending    int     `json:"pending"`
	Cancels    bool    `json:"cancels"`
	NsPerEvent float64 `json:"ns_per_event"`
}

type nextEventResult struct {
	Pending     int     `json:"pending"`
	CanceledPct int     `json:"canceled_pct"`
	HeapWalkNs  float64 `json:"heap_walk_ns_per_op"`
	NaiveScanNs float64 `json:"naive_scan_ns_per_op"`
	Speedup     float64 `json:"speedup_vs_naive_scan"`
}

var benchDESOut struct {
	mu        sync.Mutex
	Churn     []churnPoint
	NextEvent []nextEventResult
}

type benchDESDoc struct {
	benchjson.Header
	Churn     []churnPoint      `json:"event_churn,omitempty"`
	NextEvent []nextEventResult `json:"next_event_after,omitempty"`
}

func TestMain(m *testing.M) {
	code := m.Run()
	code = benchjson.EmitFunc("BENCH_DES_JSON", code, emitBenchDES)
	os.Exit(code)
}

// emitBenchDES returns the accumulated document (nil if nothing ran).
func emitBenchDES() *benchDESDoc {
	benchDESOut.mu.Lock()
	defer benchDESOut.mu.Unlock()
	if benchDESOut.Churn == nil && benchDESOut.NextEvent == nil {
		return nil
	}
	return &benchDESDoc{
		Header:    benchjson.NewHeader(),
		Churn:     benchDESOut.Churn,
		NextEvent: benchDESOut.NextEvent,
	}
}

// BenchmarkDESChurn measures the steady-state cost of one event through
// the queue (one Schedule + its Step) at several queue depths, with and
// without a cancellation stream exercising the lazy-delete path. With
// the pooled core this runs allocation-free (see alloc_test.go).
func BenchmarkDESChurn(b *testing.B) {
	for _, pending := range []int{64, 1024, 16384} {
		for _, cancels := range []bool{false, true} {
			name := fmt.Sprintf("pending=%d/cancels=%v", pending, cancels)
			b.Run(name, func(b *testing.B) {
				s := New()
				nop := func() {}
				for i := 0; i < pending; i++ {
					s.Schedule(Time(i%97), PrioKernel, nop)
				}
				var doomed Event
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					at := s.Now() + Time(1+i%97)
					if cancels {
						// Every op also schedules and lazily cancels a decoy,
						// keeping a tombstone stream flowing through the heap.
						s.Cancel(doomed)
						doomed = s.Schedule(at+1, PrioDispatch, nop)
					}
					s.Schedule(at, PrioKernel, nop)
					if !s.Step() {
						b.Fatal("queue drained")
					}
				}
				b.StopTimer()
				ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				b.ReportMetric(ns, "ns/event")
				pt := churnPoint{Pending: pending, Cancels: cancels, NsPerEvent: ns}
				benchDESOut.mu.Lock()
				replaced := false
				for i := range benchDESOut.Churn {
					if benchDESOut.Churn[i].Pending == pending && benchDESOut.Churn[i].Cancels == cancels {
						benchDESOut.Churn[i] = pt
						replaced = true
					}
				}
				if !replaced {
					benchDESOut.Churn = append(benchDESOut.Churn, pt)
				}
				benchDESOut.mu.Unlock()
			})
		}
	}
}

// naiveNextEventAfter reproduces the pre-rewrite O(n) implementation:
// a full scan over every live queue entry. The benchmark contrasts it
// with the pruned heap walk the Simulator now uses.
func naiveNextEventAfter(s *Simulator, t Time) Time {
	best := MaxTime
	for _, idx := range s.heap {
		sl := &s.pool[idx]
		if !sl.canceled && sl.at > t && sl.at < best {
			best = sl.at
		}
	}
	return best
}

// BenchmarkDESNextEventAfter measures the run-slice bound query on a
// deep queue whose head region is dense around the threshold — the
// kernel's exact access pattern — for the heap walk and the old scan.
func BenchmarkDESNextEventAfter(b *testing.B) {
	const canceledPct = 25
	for _, pending := range []int{64, 1024, 16384} {
		s := New()
		nop := func() {}
		for i := 0; i < pending; i++ {
			e := s.Schedule(Time(i%509), PrioKernel, nop)
			if i%4 == 0 { // 25% tombstones, as after a burst of cancels
				s.Cancel(e)
			}
		}
		threshold := Time(3)
		var walkNs, scanNs float64
		b.Run(fmt.Sprintf("pending=%d/walk", pending), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if s.NextEventAfter(threshold) == MaxTime {
					b.Fatal("no event found")
				}
			}
			walkNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		b.Run(fmt.Sprintf("pending=%d/naive", pending), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if naiveNextEventAfter(s, threshold) == MaxTime {
					b.Fatal("no event found")
				}
			}
			scanNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		})
		if walkNs > 0 && scanNs > 0 {
			res := nextEventResult{
				Pending:     pending,
				CanceledPct: canceledPct,
				HeapWalkNs:  walkNs,
				NaiveScanNs: scanNs,
				Speedup:     scanNs / walkNs,
			}
			benchDESOut.mu.Lock()
			replaced := false
			for i := range benchDESOut.NextEvent {
				if benchDESOut.NextEvent[i].Pending == pending {
					benchDESOut.NextEvent[i] = res
					replaced = true
				}
			}
			if !replaced {
				benchDESOut.NextEvent = append(benchDESOut.NextEvent, res)
			}
			benchDESOut.mu.Unlock()
		}
	}
}
