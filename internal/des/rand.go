package des

import (
	"math"
	"math/bits"
)

// Rand is a small, fast, deterministic pseudo-random stream
// (SplitMix64-seeded xoshiro256**). Each model component takes its own
// stream so that adding draws in one component never perturbs another —
// a requirement for reproducible fault-injection campaigns.
//
// The zero value is not usable; construct streams with NewRand.
type Rand struct {
	s [4]uint64
}

// NewRand returns a stream seeded from seed via SplitMix64, so nearby
// seeds still yield decorrelated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent child stream. The child is a pure function
// of the parent's current state, so the derivation itself is reproducible.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xa3ec647659359acd)
}

// mix64 is the SplitMix64 finalizer: a bijective avalanche mix whose
// output bits all depend on all input bits.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRandIndexed returns the idx-th stream of the family identified by
// seed. The stream is a pure function of (seed, idx) — no draw order or
// shared state is involved — so workers can derive per-trial streams in
// any order and a parallel consumer reproduces a sequential one exactly.
// Both arguments are avalanche-mixed before combination, so families with
// nearby seeds and streams with nearby indices stay decorrelated.
func NewRandIndexed(seed, idx uint64) *Rand {
	return NewRand(mix64(seed+0x9e3779b97f4a7c15) ^ mix64(idx+0x6a09e667f3bcc909))
}

// NewRandIndexed2 returns the (stream, idx)-th member of the
// two-level stream family identified by seed — the NewRandIndexed
// discipline extended one level, for consumers that partition their
// draws twice (the adaptive campaign engine keys every trial's stream
// by (seed, stratum, within-stratum index)). Like NewRandIndexed, the
// result is a pure function of its arguments: no draw order or shared
// state is involved, so any scheduling of (stream, idx) pairs across
// workers replays the sequential derivation exactly. All three
// arguments are avalanche-mixed independently before combination, so
// families differing in one coordinate stay decorrelated, and
// NewRandIndexed2(seed, s, i) never collides structurally with
// NewRandIndexed(seed, i) (distinct additive constants).
func NewRandIndexed2(seed, stream, idx uint64) *Rand {
	return NewRand(mix64(seed+0x9e3779b97f4a7c15) ^
		mix64(stream+0xbb67ae8584caa73b) ^ mix64(idx+0x6a09e667f3bcc909))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method, bias-free.
	bound := uint64(n)
	threshold := (-bound) % bound
	for {
		hi, lo := bits.Mul64(r.Uint64(), bound)
		if lo >= threshold {
			return int(hi)
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Exp returns a sample from the exponential distribution with the given
// rate (events per unit), i.e. mean 1/rate. It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("des: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], so the log is finite.
	return -math.Log(1-u) / rate
}

// ExpTime returns an exponentially distributed simulated duration with the
// given rate expressed in events per hour, as used by the paper's fault
// rates (λ in faults/hour).
func (r *Rand) ExpTime(ratePerHour float64) Time {
	h := r.Exp(ratePerHour)
	if h >= float64(MaxTime)/float64(Hour) {
		return MaxTime
	}
	return Time(h * float64(Hour))
}

// Norm returns a standard normal sample (Marsaglia polar method).
func (r *Rand) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
