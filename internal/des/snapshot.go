package des

// SimState is preallocated scratch for Simulator.Snapshot/Restore. A
// checkpoint/fork campaign keeps one per checkpoint per worker; the
// backing slices reach steady-state capacity after the first capture and
// are reused thereafter.
//
// A SimState is only meaningful for the Simulator instance it was
// captured from: pooled slots hold callback closures bound to that
// instance's model objects, so restoring it into a different simulator
// would fire callbacks against the wrong object graph. The fork engine
// in internal/fault therefore pairs each worker with exactly one
// instance and restores in place.
type SimState struct {
	now     Time
	pool    []eventSlot
	free    []int32
	heap    []int32
	lazy    int
	seq     uint64
	fired   uint64
	stopped bool
}

// Now reports the simulated instant at which the state was captured.
func (st *SimState) Now() Time { return st.now }

// Snapshot copies the simulator's complete scheduling state — clock,
// pooled event slots (including their generation counters and bound
// callbacks), free list, heap order, tombstone count, and sequence
// counters — into st. The reusable NextEventAfter walk stack and the
// attached event observer are scratch/wiring, not state, and are not
// captured.
//
//nlft:noalloc
func (s *Simulator) Snapshot(into *SimState) {
	into.now = s.now
	into.pool = append(into.pool[:0], s.pool...)
	into.free = append(into.free[:0], s.free...)
	into.heap = append(into.heap[:0], s.heap...)
	into.lazy = s.lazy
	into.seq = s.seq
	into.fired = s.fired
	into.stopped = s.stopped
}

// Restore rewinds the simulator to a state previously captured from the
// same instance with Snapshot. Event handles issued before the capture
// become valid again (slot generations rewind with the pool); handles
// issued after the capture must be discarded by the caller, which the
// fork engine guarantees by restoring every handle-holding model object
// from the same checkpoint.
//
//nlft:noalloc
func (s *Simulator) Restore(from *SimState) {
	s.now = from.now
	s.pool = append(s.pool[:0], from.pool...)
	s.free = append(s.free[:0], from.free...)
	s.heap = append(s.heap[:0], from.heap...)
	s.lazy = from.lazy
	s.seq = from.seq
	s.fired = from.fired
	s.stopped = from.stopped
}

// PendingDigest folds the (instant, priority) pairs of all live queued
// events into an order-insensitive digest, and reports how many live
// events were folded. An event matching skip is excluded (pass the zero
// Event to exclude nothing): the fork engine's golden capture carries a
// placeholder injection event that a forked trial replaces with the real
// one, so the two sides must be compared net of it. The fold is a sum of
// avalanche-mixed terms, so heap layout and insertion order do not
// affect the digest — only the multiset of pending (at, prio) pairs
// does.
//
//nlft:noalloc
func (s *Simulator) PendingDigest(skip Event) (digest uint64, count int) {
	for _, idx := range s.heap {
		sl := &s.pool[idx]
		if sl.canceled {
			continue
		}
		if skip.gen != 0 && idx == skip.slot && sl.gen == skip.gen {
			continue
		}
		digest += mix64(uint64(sl.at)*0x9e3779b97f4a7c15 ^ uint64(uint32(sl.prio)))
		count++
	}
	return digest, count
}

// ScheduledAt reports the instant a still-pending event will fire, and
// whether the handle is live at all (scheduled and not canceled). It
// lets state digests fold an event's position on the timeline without
// the caller bookkeeping it separately.
//
//nlft:noalloc
func (s *Simulator) ScheduledAt(e Event) (Time, bool) {
	if !s.Scheduled(e) {
		return 0, false
	}
	return s.pool[e.slot].at, true
}

// State returns the stream's internal xoshiro256** state, for inclusion
// in a model snapshot.
//
//nlft:noalloc
func (r *Rand) State() [4]uint64 { return r.s }

// SetState rewinds the stream to a state previously returned by State.
//
//nlft:noalloc
func (r *Rand) SetState(s [4]uint64) { r.s = s }
