package des

import "testing"

// TestEventObserver: the observer sees every fired event with its
// instant and priority, in execution order, and detaching stops the
// callbacks.
func TestEventObserver(t *testing.T) {
	s := New()
	type fired struct {
		at   Time
		prio int
	}
	var seen []fired
	s.SetEventObserver(func(at Time, prio int) {
		seen = append(seen, fired{at, prio})
	})
	s.Schedule(2, PrioKernel, func() {})
	s.Schedule(1, PrioDispatch, func() {})
	s.Schedule(1, PrioInject, func() {})
	canceled := s.Schedule(3, PrioKernel, func() {})
	s.Cancel(canceled)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []fired{{1, PrioInject}, {1, PrioDispatch}, {2, PrioKernel}}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d events, want %d: %v", len(seen), len(want), seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, seen[i], want[i])
		}
	}

	s.SetEventObserver(nil)
	s.Schedule(s.Now()+1, PrioKernel, func() {})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Error("detached observer still called")
	}
}

// TestEventObserverSeesClockAdvanced: the observer runs after the clock
// moved to the event's instant (so telemetry can read sim.Now()) and
// before the callback body.
func TestEventObserverSeesClockAdvanced(t *testing.T) {
	s := New()
	order := ""
	s.SetEventObserver(func(at Time, prio int) {
		if s.Now() != at {
			t.Errorf("observer ran with clock %v, event at %v", s.Now(), at)
		}
		order += "o"
	})
	s.Schedule(5, PrioKernel, func() { order += "c" })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if order != "oc" {
		t.Errorf("order = %q, want observer before callback", order)
	}
}
