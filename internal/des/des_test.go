package des

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond {
		t.Fatal("unit constants inconsistent")
	}
	if Hour != 3600*Second {
		t.Fatalf("Hour = %d", Hour)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("Seconds() = %v, want 2", got)
	}
	if got := (90 * Minute).Hours(); got != 1.5 {
		t.Errorf("Hours() = %v, want 1.5", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.000000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var order []int
	s.Schedule(20, PrioKernel, func() { order = append(order, 3) })
	s.Schedule(10, PrioKernel, func() { order = append(order, 1) })
	s.Schedule(10, PrioDispatch, func() { order = append(order, 2) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if s.Now() != 20 {
		t.Errorf("Now() = %v, want 20", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, PrioKernel, func() { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestTieBreakPriorities(t *testing.T) {
	s := New()
	var order []string
	s.Schedule(1, PrioObserver, func() { order = append(order, "observer") })
	s.Schedule(1, PrioInject, func() { order = append(order, "inject") })
	s.Schedule(1, PrioDispatch, func() { order = append(order, "dispatch") })
	s.Schedule(1, PrioNetwork, func() { order = append(order, "network") })
	s.Schedule(1, PrioKernel, func() { order = append(order, "kernel") })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"inject", "network", "kernel", "dispatch", "observer"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestCancel(t *testing.T) {
	s := New()
	fired := false
	e := s.Schedule(10, PrioKernel, func() { fired = true })
	if !s.Scheduled(e) {
		t.Error("Scheduled() = false for a queued event")
	}
	s.Cancel(e)
	s.Cancel(e) // double cancel is a no-op
	if s.Scheduled(e) {
		t.Error("Scheduled() = true after Cancel")
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
	s.Cancel(Event{}) // the zero handle is a no-op
}

func TestCancelFromCallback(t *testing.T) {
	s := New()
	fired := false
	var e Event
	e = s.Schedule(10, PrioKernel, func() { fired = true })
	s.Schedule(5, PrioKernel, func() { s.Cancel(e) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("event canceled mid-run still fired")
	}
}

func TestAfter(t *testing.T) {
	s := New()
	var at Time
	s.Schedule(100, PrioKernel, func() {
		s.After(50, func() { at = s.Now() })
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := New()
	s.Schedule(100, PrioKernel, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.Schedule(50, PrioKernel, func() {})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	New().Schedule(1, PrioKernel, nil)
}

func TestRunUntil(t *testing.T) {
	s := New()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.Schedule(at, PrioKernel, func() { fired = append(fired, at) })
	}
	if err := s.RunUntil(25); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || s.Now() != 25 {
		t.Fatalf("fired=%v now=%v, want 2 events and now=25", fired, s.Now())
	}
	// Inclusive boundary.
	if err := s.RunUntil(30); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 3 || s.Now() != 30 {
		t.Fatalf("fired=%v now=%v, want 3 events and now=30", fired, s.Now())
	}
	if err := s.RunUntil(29); err == nil {
		t.Error("RunUntil in the past did not error")
	}
}

func TestStop(t *testing.T) {
	s := New()
	count := 0
	for i := Time(1); i <= 10; i++ {
		s.Schedule(i, PrioKernel, func() {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	if err := s.Run(); err != ErrStopped {
		t.Fatalf("Run() = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
	// Run resumes after a stop.
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestNextEventAt(t *testing.T) {
	s := New()
	if s.NextEventAt() != MaxTime {
		t.Error("NextEventAt on empty queue != MaxTime")
	}
	e := s.Schedule(42, PrioKernel, func() {})
	if s.NextEventAt() != 42 {
		t.Errorf("NextEventAt = %v, want 42", s.NextEventAt())
	}
	s.Cancel(e)
	if s.NextEventAt() != MaxTime {
		t.Error("NextEventAt ignores cancellation")
	}
}

func TestFiredAndPending(t *testing.T) {
	s := New()
	s.Schedule(1, PrioKernel, func() {})
	s.Schedule(2, PrioKernel, func() {})
	if s.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", s.Pending())
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if s.Fired() != 2 {
		t.Errorf("Fired = %d, want 2", s.Fired())
	}
}

func TestHeapOrderProperty(t *testing.T) {
	// Property: for any set of (time, prio) pairs, execution order is
	// sorted by (time, prio, insertion).
	check := func(times []uint16, prios []int8) bool {
		s := New()
		type key struct {
			at   Time
			prio int
			seq  int
		}
		var got []key
		n := len(times)
		if len(prios) < n {
			n = len(prios)
		}
		for i := 0; i < n; i++ {
			at := Time(times[i])
			prio := int(prios[i])
			seq := i
			s.Schedule(at, prio, func() { got = append(got, key{at, prio, seq}) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(got); i++ {
			a, b := got[i-1], got[i]
			if a.at > b.at {
				return false
			}
			if a.at == b.at && a.prio > b.prio {
				return false
			}
			if a.at == b.at && a.prio == b.prio && a.seq > b.seq {
				return false
			}
		}
		return len(got) == n
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(8)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRand(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRandIndexedDeterminism(t *testing.T) {
	// Pure function of (seed, idx): two derivations of the same stream
	// are identical, whatever order they are created in.
	a := NewRandIndexed(42, 17)
	_ = NewRandIndexed(42, 3) // unrelated derivation must not perturb anything
	b := NewRandIndexed(42, 17)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, idx) diverged")
		}
	}
}

func TestRandIndexedDecorrelation(t *testing.T) {
	// Nearby indices and nearby seeds must yield unrelated streams.
	base := NewRandIndexed(42, 0)
	draws := make([]uint64, 64)
	for i := range draws {
		draws[i] = base.Uint64()
	}
	for _, other := range []*Rand{
		NewRandIndexed(42, 1), NewRandIndexed(43, 0), NewRandIndexed(0, 42),
	} {
		same := 0
		for i := range draws {
			if other.Uint64() == draws[i] {
				same++
			}
		}
		if same > 0 {
			t.Errorf("adjacent stream collided on %d of %d draws", same, len(draws))
		}
	}
}

func TestRandIndexed2Determinism(t *testing.T) {
	// Pure function of (seed, stream, idx): derivation order is
	// irrelevant, and the two-level family never aliases the one-level
	// family or its own neighbours.
	a := NewRandIndexed2(42, 7, 17)
	_ = NewRandIndexed2(42, 9, 3) // unrelated derivation must not perturb anything
	b := NewRandIndexed2(42, 7, 17)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream, idx) diverged")
		}
	}
	base := NewRandIndexed2(42, 7, 0)
	draws := make([]uint64, 64)
	for i := range draws {
		draws[i] = base.Uint64()
	}
	for _, other := range []*Rand{
		NewRandIndexed2(42, 7, 1), NewRandIndexed2(42, 8, 0),
		NewRandIndexed2(43, 7, 0), NewRandIndexed2(42, 0, 7),
		NewRandIndexed(42, 7), NewRandIndexed(42, 0),
	} {
		same := 0
		for i := range draws {
			if other.Uint64() == draws[i] {
				same++
			}
		}
		if same > 0 {
			t.Errorf("adjacent two-level stream collided on %d of %d draws", same, len(draws))
		}
	}
}

func TestRandSplitIndependence(t *testing.T) {
	parent := NewRand(1)
	child := parent.Split()
	// The child must not replay the parent's stream.
	p := NewRand(1)
	p.Split()
	for i := 0; i < 100; i++ {
		if child.Uint64() == p.Uint64() {
			t.Fatal("split child mirrors parent stream")
		}
		_ = p.Uint64() // desynchronize deliberately
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandIntnUniform(t *testing.T) {
	r := NewRand(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestRandIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(5)
	const rate, draws = 2.0, 200000
	sum := 0.0
	for i := 0; i < draws; i++ {
		x := r.Exp(rate)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	mean := sum / draws
	if math.Abs(mean-1/rate) > 0.01 {
		t.Errorf("Exp mean = %v, want %v", mean, 1/rate)
	}
}

func TestRandExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Exp(0) did not panic")
		}
	}()
	NewRand(1).Exp(0)
}

func TestRandExpTime(t *testing.T) {
	r := NewRand(9)
	// rate 1/hour: mean should be about an hour.
	var sum Time
	const draws = 50000
	for i := 0; i < draws; i++ {
		d := r.ExpTime(1.0)
		if d < 0 {
			t.Fatalf("ExpTime negative: %v", d)
		}
		sum += d / draws
	}
	if h := sum.Hours(); math.Abs(h-1) > 0.05 {
		t.Errorf("ExpTime mean = %v hours, want ~1", h)
	}
	// Astronomically small rates saturate instead of overflowing.
	if d := r.ExpTime(1e-300); d != MaxTime {
		t.Errorf("ExpTime tiny rate = %v, want MaxTime", d)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestRandBool(t *testing.T) {
	r := NewRand(17)
	const draws = 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	if got := float64(hits) / draws; math.Abs(got-0.25) > 0.01 {
		t.Errorf("Bool(0.25) frequency = %v", got)
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.Schedule(Time(j%97), PrioKernel, func() {})
		}
		if err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}
