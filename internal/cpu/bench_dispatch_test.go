package cpu

// Benchmarks for the CPU dispatch engines. Running
//
//	BENCH_CPU_JSON=$PWD/BENCH_cpu.json go test -run=NONE -bench=CPUDispatch ./internal/cpu
//
// writes the measured numbers to the named file (relative paths resolve
// against the package directory); without the variable
// the benchmarks only report metrics. The committed BENCH_cpu.json
// records the predecoded engine's speedup over the per-step interpretive
// decoder on a checksum-style compute loop.

import (
	"os"
	"sync"
	"testing"

	"repro/internal/benchjson"
)

// benchDispatchSrc mirrors the standard campaign workload's compute
// kernel: a register-heavy checksum loop, restarted forever so the
// benchmark never runs off the image.
const benchDispatchSrc = `
	.org 0x0000
start:
	movi r2, 0x1234
	movi r4, 0x0777
	movi r5, 1024
	movi r6, 0
loop:
	add r6, r6, r2
	xor r6, r6, r4
	movi r7, 3
	mul r6, r6, r7
	addi r5, r5, -1
	cmpi r5, 0
	bgt loop
	jmp start
`

type cpuBenchPoint struct {
	Engine      string  `json:"engine"` // "interpretive" or "predecoded"
	MMU         bool    `json:"mmu"`
	NsPerInstr  float64 `json:"ns_per_instr"`
	InstrPerSec float64 `json:"instr_per_sec"`
	// SpeedupVsInterpretive is filled in when the file is written,
	// pairing each predecoded point with the interpretive point of the
	// same MMU mode.
	SpeedupVsInterpretive float64 `json:"speedup_vs_interpretive,omitempty"`
}

// benchCPUOut accumulates results so TestMain can emit them as one JSON
// document.
var benchCPUOut struct {
	mu     sync.Mutex
	Points []cpuBenchPoint
}

type benchCPUDoc struct {
	benchjson.Header
	Points []cpuBenchPoint `json:"cpu_dispatch,omitempty"`
}

// BenchmarkCPUDispatch contrasts the per-step interpretive decoder with
// the predecoded (threaded-code) dispatch engine on the same compute
// loop, with and without MMU confinement (the predecoded loop's cached
// exec window is what keeps the MMU nearly free). Both engines are
// bit-identical in behaviour (FuzzDispatchDifferential and the lockstep
// tests); this benchmark only asks what predecoding buys per simulated
// instruction.
func BenchmarkCPUDispatch(b *testing.B) {
	for _, tc := range []struct {
		name      string
		predecode bool
		mmu       bool
	}{
		{"interpretive", false, false},
		{"predecoded", true, false},
		{"interpretive-mmu", false, true},
		{"predecoded-mmu", true, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			prog := MustAssemble(benchDispatchSrc)
			mem := NewMemory(16384, false)
			prog.LoadInto(mem)
			if tc.predecode {
				mem.EnablePredecode((prog.Origin + prog.SizeBytes()) / 4)
			}
			var mmu *MMU
			if tc.mmu {
				mmu = NewMMU()
				mmu.SetRegions([]Region{
					{Start: prog.Origin, End: prog.Origin + prog.SizeBytes(),
						Perms: PermRead | PermExec},
				})
			}
			c := New(mem, mmu)
			c.Reset(prog.Origin)
			c.Regs[RegSP] = mem.SizeBytes()
			b.ReportAllocs()
			b.ResetTimer()
			var retired uint64
			for i := 0; i < b.N; i++ {
				before := c.Retired
				if _, exc, _ := c.RunCycles(8192); exc != nil {
					b.Fatal(exc)
				}
				retired += c.Retired - before
			}
			b.StopTimer()
			if retired == 0 {
				b.Fatal("no instructions retired")
			}
			nsPerInstr := float64(b.Elapsed().Nanoseconds()) / float64(retired)
			b.ReportMetric(1e9/nsPerInstr, "instr/s")
			engine := "interpretive"
			if tc.predecode {
				engine = "predecoded"
			}
			pt := cpuBenchPoint{
				Engine:      engine,
				MMU:         tc.mmu,
				NsPerInstr:  nsPerInstr,
				InstrPerSec: 1e9 / nsPerInstr,
			}
			// Keep only the final (longest) calibration run per case.
			benchCPUOut.mu.Lock()
			replaced := false
			for i := range benchCPUOut.Points {
				if benchCPUOut.Points[i].Engine == engine && benchCPUOut.Points[i].MMU == tc.mmu {
					benchCPUOut.Points[i] = pt
					replaced = true
				}
			}
			if !replaced {
				benchCPUOut.Points = append(benchCPUOut.Points, pt)
			}
			benchCPUOut.mu.Unlock()
		})
	}
}

func TestMain(m *testing.M) {
	code := m.Run()
	code = benchjson.EmitFunc("BENCH_CPU_JSON", code, emitBenchCPU)
	os.Exit(code)
}

// emitBenchCPU marshals the accumulated points, pairing each predecoded
// engine with its interpretive baseline, and returns the document (nil
// if nothing ran).
func emitBenchCPU() *benchCPUDoc {
	benchCPUOut.mu.Lock()
	defer benchCPUOut.mu.Unlock()
	if len(benchCPUOut.Points) == 0 {
		return nil
	}
	doc := &benchCPUDoc{
		Header: benchjson.NewHeader(),
		Points: benchCPUOut.Points,
	}
	base := map[bool]float64{}
	for _, p := range doc.Points {
		if p.Engine == "interpretive" {
			base[p.MMU] = p.NsPerInstr
		}
	}
	for i := range doc.Points {
		if b := base[doc.Points[i].MMU]; b > 0 && doc.Points[i].Engine == "predecoded" {
			doc.Points[i].SpeedupVsInterpretive = b / doc.Points[i].NsPerInstr
		}
	}
	return doc
}
