package cpu

import (
	"testing"
)

// TestOpHandlerTableConsistency pins the dense handler map against the
// ISA's source of truth: every assigned opcode has a non-illegal handler
// id, every unassigned opcode maps to hIllegal, and predecoding an
// encoded word extracts exactly the fields the interpretive decoder
// would.
func TestOpHandlerTableConsistency(t *testing.T) {
	for op := 0; op < 256; op++ {
		assigned := opTable[op].format != 0
		if assigned && opHandler[op] == hIllegal {
			t.Errorf("opcode %#02x (%s) is assigned but has no handler", op, opTable[op].name)
		}
		if !assigned && opHandler[op] != hIllegal {
			t.Errorf("opcode %#02x is unassigned but has handler %d", op, opHandler[op])
		}
	}
	for op, info := range opSpecs {
		w := Encode(op, 3, 5, 7, -9)
		var e microOp
		predecodeEntry(&e, w)
		d, ok := decode(w)
		if !ok {
			t.Fatalf("%s did not decode", info.name)
		}
		if e.word != w {
			t.Errorf("%s: tag %#x, want %#x", info.name, e.word, w)
		}
		if e.h == hIllegal {
			t.Errorf("%s predecoded as illegal", info.name)
		}
		if int(e.rd) != d.rd || int(e.ra) != d.ra || int(e.rb) != d.rb || e.imm != d.imm {
			t.Errorf("%s fields: predecoded rd=%d ra=%d rb=%d imm=%d, decoded %+v",
				info.name, e.rd, e.ra, e.rb, e.imm, d)
		}
		if uint64(e.cycles) != info.cycles {
			t.Errorf("%s cycles: predecoded %d, table %d", info.name, e.cycles, info.cycles)
		}
	}
	// An unassigned word predecodes to an illegal entry that still
	// carries the tag (so it keeps trapping until the word changes).
	var e microOp
	predecodeEntry(&e, 0x00FF_FFFF)
	if e.h != hIllegal || e.word != 0x00FF_FFFF {
		t.Errorf("unassigned word predecoded to %+v", e)
	}
}

// predecodedCPU builds a CPU over the program with a predecode cache
// covering the image, SP at the top of RAM.
func predecodedCPU(t *testing.T, src string, ecc bool) (*CPU, *Program) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(16384, ecc)
	prog.LoadInto(mem)
	mem.EnablePredecode((prog.Origin + prog.SizeBytes()) / 4)
	c := New(mem, nil)
	c.Reset(prog.Origin)
	c.Regs[RegSP] = mem.SizeBytes()
	return c, prog
}

// TestPredecodeTagInvalidation mutates an already-executed instruction
// word through every mutation path and checks the stale micro-op is
// redecoded: the tag compare against live RAM subsumes explicit
// invalidation hooks.
func TestPredecodeTagInvalidation(t *testing.T) {
	const src = `
		.org 0x0000
	start:
		movi r1, 5
		sys 2
	`
	c, prog := predecodedCPU(t, src, false)
	if ev, exc := c.Run(100); exc != nil || ev.Sys != 2 {
		t.Fatalf("first run: ev=%+v exc=%v", ev, exc)
	}
	if c.Regs[1] != 5 {
		t.Fatalf("r1 = %d, want 5", c.Regs[1])
	}

	// Poke: rewrite the immediate; the cached entry must not be reused.
	c.Mem.Poke(prog.Origin, Encode(OpMovi, 1, 0, 0, 7))
	c.Reset(prog.Origin)
	if ev, exc := c.Run(100); exc != nil || ev.Sys != 2 {
		t.Fatalf("after poke: ev=%+v exc=%v", ev, exc)
	}
	if c.Regs[1] != 7 {
		t.Errorf("after poke: r1 = %d, want 7", c.Regs[1])
	}

	// Store: same through the faulting path.
	if exc := c.Mem.Store(prog.Origin, Encode(OpMovi, 1, 0, 0, 9)); exc != nil {
		t.Fatal(exc)
	}
	c.Reset(prog.Origin)
	c.Run(100)
	if c.Regs[1] != 9 {
		t.Errorf("after store: r1 = %d, want 9", c.Regs[1])
	}

	// FlipBit with ECC off corrupts the stored word in place; the next
	// fetch must see the flipped word (here: bit 0 of the immediate).
	c.Mem.FlipBit(prog.Origin, 1)
	c.Reset(prog.Origin)
	c.Run(100)
	if c.Regs[1] != 11 {
		t.Errorf("after flip: r1 = %d, want 11", c.Regs[1])
	}

	// Flipping an opcode bit can turn the instruction illegal; the
	// predecoded engine must trap exactly like the interpretive one.
	c.Mem.Poke(prog.Origin, Encode(OpMovi, 1, 0, 0, 7)^0xFF000000)
	c.Reset(prog.Origin)
	_, exc := c.Run(100)
	if exc == nil || exc.Kind != ExcIllegalOpcode || exc.PC != prog.Origin {
		t.Errorf("after opcode corruption: exc = %v, want illegal-opcode at %#x", exc, prog.Origin)
	}
}

// TestPredecodeFallbackOutsideCoverage: PCs beyond the predecoded image
// run on the interpretive path, instruction by instruction, with
// identical results.
func TestPredecodeFallbackOutsideCoverage(t *testing.T) {
	const src = `
		.org 0x0100
	start:
		movi r1, 42
		sys 2
	`
	prog := MustAssemble(src)
	mem := NewMemory(16384, false)
	prog.LoadInto(mem)
	mem.EnablePredecode(4) // covers words 0..3 only; the program is at 0x100
	c := New(mem, nil)
	c.Reset(prog.Origin)
	c.Regs[RegSP] = mem.SizeBytes()
	ev, exc := c.Run(100)
	if exc != nil || ev.Sys != 2 || c.Regs[1] != 42 {
		t.Fatalf("fallback run: ev=%+v exc=%v r1=%d", ev, exc, c.Regs[1])
	}
}

// TestLatentFlipSurvivesRestore is the pendingFlips × snapshot/restore
// regression: a latent ECC flip captured in a checkpoint must survive a
// restore and fire on the next access, even when the live flip was
// resolved (or the word overwritten) between capture and restore.
func TestLatentFlipSurvivesRestore(t *testing.T) {
	t.Run("single-bit-corrects-again", func(t *testing.T) {
		m := NewMemory(256, true)
		m.Poke(0x40, 0xDEAD)
		m.FlipBit(0x40, 3)
		var st MemoryState
		m.Snapshot(&st)

		// Resolve the live flip: corrected once.
		if v, exc := m.Load(0x40); exc != nil || v != 0xDEAD {
			t.Fatalf("load: v=%#x exc=%v", v, exc)
		}
		if m.CorrectedErrors != 1 || len(m.pendingFlips) != 0 {
			t.Fatalf("after load: corrected=%d pending=%d", m.CorrectedErrors, len(m.pendingFlips))
		}

		// The checkpoint still holds the latent flip and the pre-flip
		// corrected-error count; it must fire again after restore.
		m.Restore(&st)
		if m.CorrectedErrors != 0 || len(m.pendingFlips) != 1 {
			t.Fatalf("after restore: corrected=%d pending=%d", m.CorrectedErrors, len(m.pendingFlips))
		}
		if v, exc := m.Load(0x40); exc != nil || v != 0xDEAD {
			t.Fatalf("post-restore load: v=%#x exc=%v", v, exc)
		}
		if m.CorrectedErrors != 1 {
			t.Errorf("restored flip did not fire: corrected=%d", m.CorrectedErrors)
		}
	})

	t.Run("multi-bit-traps-again", func(t *testing.T) {
		m := NewMemory(256, true)
		m.FlipBit(0x40, 3)
		m.FlipBit(0x40, 9)
		var st MemoryState
		m.Snapshot(&st)

		if _, exc := m.Load(0x40); exc == nil || exc.Kind != ExcECCError {
			t.Fatalf("armed word did not trap: %v", exc)
		}
		// Overwrite the word (clears any ECC state), then restore: the
		// checkpoint's latent double flip must trap again.
		if exc := m.Store(0x40, 1); exc != nil {
			t.Fatal(exc)
		}
		m.Restore(&st)
		if _, exc := m.Load(0x40); exc == nil || exc.Kind != ExcECCError {
			t.Errorf("restored double flip did not trap: %v", exc)
		}
	})

	t.Run("predecoded-fetch-fires-flip", func(t *testing.T) {
		// A latent double flip on an instruction word must trap at fetch
		// identically on both engines.
		const src = `
			.org 0x0000
		start:
			nop
			movi r1, 5
			sys 2
		`
		run := func(predecode bool) (Event, *Exception, uint64) {
			prog := MustAssemble(src)
			mem := NewMemory(16384, true)
			prog.LoadInto(mem)
			if predecode {
				mem.EnablePredecode((prog.Origin + prog.SizeBytes()) / 4)
			}
			c := New(mem, nil)
			c.Reset(prog.Origin)
			mem.FlipBit(4, 2) // the movi word
			mem.FlipBit(4, 27)
			ev, exc := c.Run(100)
			return ev, exc, c.Cycles
		}
		pev, pexc, pcyc := run(true)
		iev, iexc, icyc := run(false)
		if pexc == nil || pexc.Kind != ExcECCError || pexc.PC != 4 {
			t.Fatalf("predecoded: ev=%+v exc=%v", pev, pexc)
		}
		if iexc == nil || *pexc != *iexc || pev != iev || pcyc != icyc {
			t.Errorf("engines diverged: predecoded (%+v, %v, %d), interpretive (%+v, %v, %d)",
				pev, pexc, pcyc, iev, iexc, icyc)
		}
	})
}

// TestDeltaSnapshotPageTraffic pins the dirty-page mechanics: the first
// capture copies every page, later captures copy only dirtied pages and
// share the rest structurally, and restores copy back only what
// diverged.
func TestDeltaSnapshotPageTraffic(t *testing.T) {
	const words = 4 * pageWords // exactly 4 pages
	m := NewMemory(words, false)
	m.Poke(0, 0x11)
	m.Poke(uint32(2*pageWords*4), 0x22) // page 2

	var s1 MemoryState
	m.Snapshot(&s1)
	if got := m.Snap.PagesCopied; got != 4 {
		t.Fatalf("first capture copied %d pages, want all 4", got)
	}

	// A clean re-capture copies nothing and shares every buffer.
	var s2 MemoryState
	m.Snapshot(&s2)
	if got := m.Snap.PagesCopied; got != 4 {
		t.Fatalf("clean capture copied %d pages total, want still 4", got)
	}
	for p := range s1.pages {
		if s1.pages[p] != s2.pages[p] {
			t.Fatalf("page %d not shared across clean captures", p)
		}
	}

	// Dirty one page; only it is copied, the others stay shared.
	m.Poke(4, 0x33) // page 0
	var s3 MemoryState
	m.Snapshot(&s3)
	if got := m.Snap.PagesCopied; got != 5 {
		t.Fatalf("dirty capture copied %d pages total, want 5", got)
	}
	if s3.pages[0] == s2.pages[0] {
		t.Error("dirtied page 0 still shared")
	}
	for p := 1; p < 4; p++ {
		if s3.pages[p] != s2.pages[p] {
			t.Errorf("clean page %d not shared", p)
		}
	}

	// Restoring the older state copies back only the diverged page.
	m.Restore(&s1)
	if got := m.Snap.PagesRestored; got != 1 {
		t.Errorf("restore copied %d pages, want 1", got)
	}
	if got := m.Peek(4); got != 0 {
		t.Errorf("restored word = %#x, want 0", got)
	}
	if got := m.Peek(0); got != 0x11 {
		t.Errorf("untouched word = %#x, want 0x11", got)
	}

	// A restore to the state RAM already holds copies nothing.
	m.Restore(&s1)
	if got := m.Snap.PagesRestored; got != 1 {
		t.Errorf("idempotent restore copied pages: total %d, want 1", got)
	}
}

// TestDeltaSnapshotFlipBitCaptured: with ECC off, FlipBit corrupts the
// stored word directly — on an otherwise-clean page, the flip must
// still land in the next checkpoint (FlipBit marks the page dirty).
func TestDeltaSnapshotFlipBitCaptured(t *testing.T) {
	m := NewMemory(4*pageWords, false)
	m.Poke(0x40, 0xF0)
	var s1 MemoryState
	m.Snapshot(&s1)

	m.FlipBit(0x40, 0) // clean page: only the dirty bit makes this visible
	var s2 MemoryState
	m.Snapshot(&s2)

	m.Restore(&s1)
	if got := m.Peek(0x40); got != 0xF0 {
		t.Fatalf("pre-flip state = %#x, want 0xF0", got)
	}
	m.Restore(&s2)
	if got := m.Peek(0x40); got != 0xF1 {
		t.Errorf("post-flip checkpoint = %#x, want 0xF1 (flip lost by delta capture)", got)
	}
}

// TestDeltaSnapshotLastPartialPage: a RAM whose size is not a multiple
// of the page size still snapshots and restores exactly.
func TestDeltaSnapshotLastPartialPage(t *testing.T) {
	const words = pageWords + 7
	m := NewMemory(words, false)
	last := uint32((words - 1) * 4)
	m.Poke(last, 0xAB)
	var st MemoryState
	m.Snapshot(&st)
	m.Poke(last, 0xCD)
	m.Restore(&st)
	if got := m.Peek(last); got != 0xAB {
		t.Errorf("partial-page word = %#x, want 0xAB", got)
	}
	// The maintained word digest must match a from-scratch recompute.
	var want uint64
	for i := 0; i < words; i++ {
		want += wordSig(uint32(i), m.words[i])
	}
	if m.wordSum != want {
		t.Errorf("wordSum %#x, want recomputed %#x", m.wordSum, want)
	}
}
