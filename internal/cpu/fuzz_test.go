package cpu

import (
	"testing"
	"testing/quick"
)

// TestDecodeNeverPanicsProperty: any 32-bit word either decodes or is
// rejected; Disassemble always returns something printable.
func TestDecodeNeverPanicsProperty(t *testing.T) {
	check := func(w uint32) bool {
		d, ok := decode(w)
		if ok && d.info.name == "" {
			return false
		}
		return Disassemble(w) != ""
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestStepOnRandomMemoryNeverPanics: executing random garbage traps or
// retires but never panics and never writes outside RAM — the hardware
// EDM surface holds up under arbitrary corruption.
func TestStepOnRandomMemoryNeverPanics(t *testing.T) {
	check := func(seed uint32, words []uint32) bool {
		mem := NewMemory(256, false)
		for i, w := range words {
			if i >= 256 {
				break
			}
			mem.Poke(uint32(i)*4, w)
		}
		c := New(mem, nil)
		c.Reset(uint32(seed%256) * 4)
		c.Regs[RegSP] = 256 * 4
		for i := 0; i < 200; i++ {
			_, exc := c.Step()
			if exc != nil {
				return true // trapped: the EDM fired
			}
		}
		return true // ran out of budget: also fine
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestStepWithMMUOnRandomMemory: same, with confinement enabled — MMU
// violations must surface as exceptions, not panics.
func TestStepWithMMUOnRandomMemory(t *testing.T) {
	check := func(words []uint32) bool {
		mem := NewMemory(256, true)
		for i, w := range words {
			if i >= 64 {
				break
			}
			mem.Poke(uint32(i)*4, w)
		}
		mmu := NewMMU()
		mmu.SetRegions([]Region{
			{Start: 0, End: 64 * 4, Perms: PermRead | PermExec},
			{Start: 128 * 4, End: 256 * 4, Perms: PermRead | PermWrite},
		})
		c := New(mem, mmu)
		c.Reset(0)
		c.Regs[RegSP] = 256 * 4
		for i := 0; i < 100; i++ {
			if _, exc := c.Step(); exc != nil {
				return true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestRandomBitFlipsNeverWedgeInterpreter: flip random bits into a
// running known-good program; every run must end in a trap, a SYS end,
// or budget exhaustion — never a Go-level fault.
func TestRandomBitFlipsNeverWedgeInterpreter(t *testing.T) {
	prog := MustAssemble(`
		movi r1, 100
		movi r2, 0
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		cmpi r1, 0
		bgt loop
		sys 2
	`)
	check := func(reg uint8, bit1, bit2 uint8, when uint8) bool {
		mem := NewMemory(1024, false)
		prog.LoadInto(mem)
		c := New(mem, nil)
		c.Reset(0)
		c.Regs[RegSP] = 1024 * 4
		steps := int(when)%100 + 1
		for i := 0; i < steps; i++ {
			if _, exc := c.Step(); exc != nil {
				return true
			}
		}
		c.FlipRegister(int(reg%16), uint(bit1%32))
		c.FlipPC(uint(bit2 % 32))
		for i := 0; i < 2000; i++ {
			ev, exc := c.Step()
			if exc != nil || ev.Sys != 0 {
				return true
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAssemblerNeverPanicsOnGarbage: arbitrary text is rejected with an
// error, not a panic.
func TestAssemblerNeverPanicsOnGarbage(t *testing.T) {
	check := func(src string) bool {
		_, _ = Assemble(src) // must not panic
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
