package cpu

// This file holds the full-machine snapshot layer used by the
// checkpoint/fork campaign engine (internal/fault). It is distinct from
// the architectural Snapshot/Restore pair above, which models what the
// kernel stores in a TCB (§2.5): that context deliberately excludes the
// cycle counters and any latent ALU fault, because a context switch
// cannot scrub a faulty functional unit. A campaign checkpoint must
// capture *everything* that influences the remainder of the run, so the
// state types here include both.

// CPUState is preallocated scratch for CPU.SnapshotState/RestoreState.
type CPUState struct {
	regs         [NumRegs]uint32
	pc           uint32
	flags        Flags
	cycles       uint64
	retired      uint64
	aluFaultMask uint32
	signature    uint32
}

// SnapshotState copies the complete processor state — registers, PC,
// flags, cycle/retire counters, signature, and any pending ALU fault —
// into st.
//
//nlft:noalloc
func (c *CPU) SnapshotState(into *CPUState) {
	into.regs = c.Regs
	into.pc = c.PC
	into.flags = c.Flags
	into.cycles = c.Cycles
	into.retired = c.Retired
	into.aluFaultMask = c.aluFaultMask
	into.signature = c.Signature
}

// RestoreState rewinds the processor to a state captured with
// SnapshotState.
//
//nlft:noalloc
func (c *CPU) RestoreState(from *CPUState) {
	c.Regs = from.regs
	c.PC = from.pc
	c.Flags = from.flags
	c.Cycles = from.cycles
	c.Retired = from.retired
	c.aluFaultMask = from.aluFaultMask
	c.Signature = from.signature
}

// flipEntry is one pending ECC flip mask, flattened out of the map for
// allocation-free capture.
type flipEntry struct {
	addr uint32 // word index
	mask uint32
}

// Delta-snapshot page geometry: 64 words (256 bytes) per page.
const (
	pageShift = 6
	pageWords = 1 << pageShift
	// PageBytes is the delta-snapshot page size in bytes (exported for
	// checkpoint-traffic reporting).
	PageBytes = pageWords * 4
)

// memPage is one immutable checkpoint page buffer. Buffers are shared
// structurally between checkpoints: a page not dirtied between two
// captures appears in both checkpoints as the same pointer, and only
// Snapshot ever writes one — into a buffer it has just allocated.
type memPage struct {
	words [pageWords]uint32
}

// SnapStats counts snapshot/restore page traffic (see Memory.Snap).
type SnapStats struct {
	// Snapshots and Restores count calls.
	Snapshots uint64
	Restores  uint64
	// PagesCopied counts pages copied into fresh checkpoint buffers at
	// capture (the delta actually stored); PagesRestored counts pages
	// copied back into RAM at restore.
	PagesCopied   uint64
	PagesRestored uint64
}

// MemoryState is preallocated scratch for Memory.Snapshot/Restore.
// RAM content is held as per-page buffer pointers with structural
// sharing across checkpoints of the same Memory (see Snapshot).
type MemoryState struct {
	pages           []*memPage
	wordSum         uint64
	flips           []flipEntry
	correctedErrors uint64
}

// Snapshot copies RAM contents, pending ECC flip masks, and the
// corrected-error counter into st. The ECC setting and the attached I/O
// bus are configuration, not state, and are not captured.
//
// RAM capture is a delta: only pages dirtied since the previous
// Snapshot/Restore synchronization point are copied into fresh
// immutable buffers; clean pages share the buffer already installed in
// m.shadow. The invariant maintained with Restore is that
// (m.shadow[p] != nil && page p not dirty) implies RAM page p equals
// m.shadow[p]'s contents — every word write sets the dirty bit, so a
// shared buffer can never go stale.
//
//nlft:noalloc
func (m *Memory) Snapshot(into *MemoryState) {
	if len(into.pages) != len(m.shadow) {
		//nlft:allow noalloc cold first-capture sizing; the slice is retained for the state's lifetime
		into.pages = make([]*memPage, len(m.shadow))
	}
	m.Snap.Snapshots++
	for p := range m.shadow {
		if m.shadow[p] == nil || m.pageDirty(p) {
			//nlft:allow noalloc cold capture path: a fresh immutable buffer per dirtied page, retained by the checkpoint store
			pg := &memPage{}
			copy(pg.words[:], m.words[p<<pageShift:])
			m.shadow[p] = pg
			m.Snap.PagesCopied++
		}
		into.pages[p] = m.shadow[p]
	}
	clear(m.dirty)
	into.wordSum = m.wordSum
	into.flips = into.flips[:0]
	//nlft:allow nodeterminism capture order is irrelevant: the entries refill a map on restore and fold commutatively in digests
	for addr, mask := range m.pendingFlips {
		into.flips = append(into.flips, flipEntry{addr: addr, mask: mask})
	}
	into.correctedErrors = m.CorrectedErrors
}

// Restore rewinds memory to a state captured from the same instance with
// Snapshot. The flip map's buckets are retained across clear+refill, so
// a warm restore does not allocate.
//
// RAM restore is the delta mirror of Snapshot: page p is copied back
// only when it was dirtied since the last synchronization point or when
// the checkpoint holds a different buffer than m.shadow[p] — otherwise
// RAM provably already equals the target contents. wordSum is restored
// from the checkpoint directly (it was exact at capture), so no page
// scan or recompute is needed.
//
//nlft:noalloc
func (m *Memory) Restore(from *MemoryState) {
	m.Snap.Restores++
	for p, pg := range from.pages {
		if m.shadow[p] == pg && !m.pageDirty(p) {
			continue // RAM already holds this page's contents
		}
		copy(m.words[p<<pageShift:], pg.words[:])
		m.shadow[p] = pg
		m.Snap.PagesRestored++
	}
	clear(m.dirty)
	m.wordSum = from.wordSum
	clear(m.pendingFlips)
	for _, f := range from.flips {
		m.pendingFlips[f.addr] = f.mask
	}
	m.CorrectedErrors = from.correctedErrors
}

// MMUState is preallocated scratch for MMU.Snapshot/Restore.
type MMUState struct {
	regions    []Region
	enabled    bool
	violations uint64
}

// Snapshot copies the installed region set, the enable flag, and the
// violation counter into st.
//
//nlft:noalloc
func (u *MMU) Snapshot(into *MMUState) {
	into.regions = append(into.regions[:0], u.regions...)
	into.enabled = u.enabled
	into.violations = u.Violations
}

// Restore rewinds the MMU to a state captured with Snapshot. The region
// slice is refilled in place; SetRegions replaces it wholesale on the
// next dispatch either way.
//
//nlft:noalloc
func (u *MMU) Restore(from *MMUState) {
	u.regions = append(u.regions[:0], from.regions...)
	u.enabled = from.enabled
	u.Violations = from.violations
}

// digestMix is the SplitMix64 finalizer, duplicated here so the digest
// helpers stay free of cross-package dependencies.
//
//nlft:noalloc
func digestMix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// digestFold chains one value into a running digest, order-sensitively.
//
//nlft:noalloc
func digestFold(d, v uint64) uint64 { return digestMix(d ^ digestMix(v)) }

// StateDigest folds the forward-relevant processor state — registers,
// PC, flags, signature, and any pending ALU fault — into a 64-bit
// digest. The cycle and retire counters are excluded deliberately: they
// are measurements of the path taken, not state that influences future
// behaviour, and a forked trial's counters differ from the golden run's
// even when the machines have reconverged.
//
//nlft:noalloc
func (c *CPU) StateDigest() uint64 {
	var d uint64
	for _, r := range c.Regs {
		d = digestFold(d, uint64(r))
	}
	d = digestFold(d, uint64(c.PC))
	var fl uint64
	if c.Flags.Z {
		fl |= 1
	}
	if c.Flags.N {
		fl |= 2
	}
	if c.Flags.C {
		fl |= 4
	}
	if c.Flags.V {
		fl |= 8
	}
	d = digestFold(d, fl)
	d = digestFold(d, uint64(c.Signature))
	d = digestFold(d, uint64(c.aluFaultMask))
	return d
}

// wordSig is one nonzero word's contribution to the maintained RAM
// digest (Memory.wordSum): its avalanche-mixed (index, value) pair. Zero
// words contribute nothing, so a fresh all-zero RAM sums to zero and the
// sum stays position-independent of how the RAM reached its contents.
//
//nlft:noalloc
func wordSig(idx, w uint32) uint64 {
	if w == 0 {
		return 0
	}
	return digestMix(uint64(idx)<<32 | uint64(w))
}

// StateDigest folds RAM contents and pending ECC flips into a 64-bit
// digest. The word contribution is the maintained commutative sum
// updated by every word write (Store, Poke, FlipBit, Restore), so this
// is O(pending flips), not O(RAM size) — the fork engine's convergence
// cutoff calls it at every checkpoint boundary of every trial. The
// corrected-error counter is excluded: it is a measurement, not forward
// state. Pending flips fold commutatively so map iteration order cannot
// perturb the digest.
//
//nlft:noalloc
func (m *Memory) StateDigest() uint64 {
	d := digestFold(0, m.wordSum)
	var flips uint64
	//nlft:allow nodeterminism commutative sum of avalanche-mixed terms; iteration order cannot change the result
	for addr, mask := range m.pendingFlips {
		if mask != 0 {
			flips += digestMix(uint64(addr)<<32 | uint64(mask))
		}
	}
	return digestFold(d, flips)
}
