package cpu

import (
	"fmt"
)

// Memory is a word-addressed RAM with an optional SEC-DED ECC model and a
// memory-mapped I/O window, as assumed by the paper (§2.6: "we assume
// that the memory is protected from direct faults using ECC").
//
// With ECC enabled, injected single-bit flips are corrected transparently
// on the next read (counted in CorrectedErrors); a second flip in the
// same word becomes an uncorrectable error that traps. With ECC disabled,
// flips silently corrupt the stored word — the configuration used to
// measure how much of Table 1's protection ECC contributes.
type Memory struct {
	words []uint32
	//nlft:snapshot-skip immutable configuration chosen at construction
	ecc bool
	// pendingFlips tracks injected flip masks per word address while ECC
	// is enabled (the stored data stays intact; the codeword is what is
	// corrupted).
	pendingFlips map[uint32]uint32
	// wordSum is the running commutative digest of all nonzero words
	// (the sum of wordSig over them), maintained incrementally by every
	// word write so StateDigest never has to scan the array. A fresh
	// all-zero RAM sums to zero.
	wordSum uint64
	// CorrectedErrors counts single-bit errors repaired by ECC.
	CorrectedErrors uint64
	// io handles loads/stores in the I/O window, when attached.
	//nlft:snapshot-skip attached bus wiring; the bus snapshots its own state
	io IOBus
	// pre is the predecoded micro-op cache (nil unless EnablePredecode;
	// see dispatch.go). Derived state: entries validate against the live
	// word on every fetch and never feed digests or snapshots.
	//nlft:snapshot-skip derived predecode cache, tag-validated against live words on every fetch
	pre []microOp
	// dirty is the page-granular write bitmap (one bit per pageWords
	// words) driving delta snapshots: every word mutation sets its
	// page's bit, and Snapshot/Restore copy only flagged pages before
	// clearing the map (see snapshot.go for the invariant).
	dirty []uint64
	// shadow tracks, per page, the checkpoint buffer known to equal RAM
	// content as of the last Snapshot/Restore unless the page has been
	// dirtied since.
	shadow []*memPage
	// Snap counts snapshot/restore page traffic (measurements only;
	// excluded from digests like the other counters).
	Snap SnapStats
}

// IOBase is the first address of the memory-mapped I/O window.
const IOBase uint32 = 0xFFFF0000

// IOBus receives loads and stores in the I/O window. Port numbers are
// word offsets from IOBase.
type IOBus interface {
	// LoadPort returns the value of an input port.
	LoadPort(port uint32) (uint32, error)
	// StorePort writes an output port.
	StorePort(port uint32, value uint32) error
}

// NewMemory allocates sizeWords words of RAM with the given ECC setting.
func NewMemory(sizeWords int, ecc bool) *Memory {
	if sizeWords <= 0 {
		panic(fmt.Sprintf("cpu: memory size %d", sizeWords))
	}
	nPages := (sizeWords + pageWords - 1) / pageWords
	return &Memory{
		words:        make([]uint32, sizeWords),
		ecc:          ecc,
		pendingFlips: make(map[uint32]uint32),
		dirty:        make([]uint64, (nPages+63)/64),
		shadow:       make([]*memPage, nPages),
	}
}

// markDirty flags the page containing word index idx as modified since
// the last snapshot/restore synchronization point.
//
//nlft:noalloc
func (m *Memory) markDirty(idx uint32) {
	p := idx >> pageShift
	m.dirty[p>>6] |= 1 << (p & 63)
}

// pageDirty reports whether page p carries the modified flag.
//
//nlft:noalloc
func (m *Memory) pageDirty(p int) bool {
	return m.dirty[p>>6]&(1<<(uint(p)&63)) != 0
}

// AttachIO connects the memory-mapped I/O bus.
func (m *Memory) AttachIO(bus IOBus) { m.io = bus }

// SizeBytes reports the RAM size in bytes.
func (m *Memory) SizeBytes() uint32 { return uint32(len(m.words)) * 4 }

// ECCEnabled reports whether the SEC-DED model is active.
func (m *Memory) ECCEnabled() bool { return m.ecc }

// inRAM reports whether a byte address falls inside RAM.
//
//nlft:noalloc
func (m *Memory) inRAM(addr uint32) bool { return addr/4 < uint32(len(m.words)) }

// isIO reports whether a byte address falls inside the I/O window.
//
//nlft:noalloc
func isIO(addr uint32) bool { return addr >= IOBase }

// Load reads the word at a byte address. It returns an exception for
// misalignment (address error), out-of-range access (bus error), or an
// uncorrectable ECC error.
//
//nlft:noalloc
func (m *Memory) Load(addr uint32) (uint32, *Exception) {
	if addr%4 != 0 {
		return 0, &Exception{Kind: ExcAddressError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	if isIO(addr) {
		if m.io == nil {
			return 0, &Exception{Kind: ExcBusError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
		}
		v, err := m.io.LoadPort((addr - IOBase) / 4)
		if err != nil {
			return 0, &Exception{Kind: ExcBusError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
		}
		return v, nil
	}
	if !m.inRAM(addr) {
		return 0, &Exception{Kind: ExcBusError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	if len(m.pendingFlips) != 0 {
		if exc := m.resolveFlip(addr); exc != nil {
			return 0, exc
		}
	}
	return m.words[addr/4], nil
}

// resolveFlip resolves any pending ECC flip on the word holding addr,
// exactly as a load does: a zero mask is dropped, a single-bit error is
// corrected transparently (counted), and a multi-bit error traps. The
// predecoded fetch path shares this helper so latent flips on
// instruction words fire identically on both engines.
//
//nlft:noalloc
func (m *Memory) resolveFlip(addr uint32) *Exception {
	if !m.ecc {
		return nil
	}
	idx := addr / 4
	mask, dirty := m.pendingFlips[idx]
	if !dirty {
		return nil
	}
	switch popcount(mask) {
	case 0:
		delete(m.pendingFlips, idx)
	case 1:
		// Single-bit error: corrected, data intact.
		m.CorrectedErrors++
		delete(m.pendingFlips, idx)
	default:
		// Multi-bit: uncorrectable, detected by SEC-DED.
		delete(m.pendingFlips, idx)
		return &Exception{Kind: ExcECCError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	return nil
}

// Store writes the word at a byte address, with the same fault semantics
// as Load. A store to a word with a pending ECC error overwrites the
// whole codeword, clearing the error.
//
//nlft:noalloc
func (m *Memory) Store(addr, value uint32) *Exception {
	if addr%4 != 0 {
		return &Exception{Kind: ExcAddressError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	if isIO(addr) {
		if m.io == nil {
			return &Exception{Kind: ExcBusError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
		}
		if err := m.io.StorePort((addr-IOBase)/4, value); err != nil {
			return &Exception{Kind: ExcBusError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
		}
		return nil
	}
	if !m.inRAM(addr) {
		return &Exception{Kind: ExcBusError, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	idx := addr / 4
	if m.ecc && len(m.pendingFlips) != 0 {
		delete(m.pendingFlips, idx)
	}
	m.wordSum += wordSig(idx, value) - wordSig(idx, m.words[idx])
	m.words[idx] = value
	m.markDirty(idx)
	return nil
}

// Poke writes a word without fault semantics (loader/kernel use).
//
//nlft:noalloc
func (m *Memory) Poke(addr, value uint32) {
	if addr%4 != 0 || !m.inRAM(addr) {
		//nlft:allow noalloc panic message on a kernel addressing bug; unreachable on correct task layouts
		panic(fmt.Sprintf("cpu: poke at %#x", addr))
	}
	idx := addr / 4
	if m.ecc && len(m.pendingFlips) != 0 {
		delete(m.pendingFlips, idx)
	}
	m.wordSum += wordSig(idx, value) - wordSig(idx, m.words[idx])
	m.words[idx] = value
	m.markDirty(idx)
}

// Peek reads a word without fault semantics (ignores pending ECC state).
//
//nlft:noalloc
func (m *Memory) Peek(addr uint32) uint32 {
	if addr%4 != 0 || !m.inRAM(addr) {
		//nlft:allow noalloc panic message on a kernel addressing bug; unreachable on correct task layouts
		panic(fmt.Sprintf("cpu: peek at %#x", addr))
	}
	return m.words[addr/4]
}

// FlipBit injects a transient bit flip into the word holding the given
// byte address. With ECC enabled, the flip corrupts the codeword and is
// resolved at the next access; with ECC disabled, the stored data is
// corrupted immediately and silently.
func (m *Memory) FlipBit(addr uint32, bit uint) {
	if !m.inRAM(addr) || bit > 31 {
		return
	}
	idx := addr / 4
	if m.ecc {
		m.pendingFlips[idx] ^= 1 << bit
		return
	}
	// Without ECC the stored word itself is corrupted: a data mutation
	// like any other, so the page is dirtied for delta snapshots (a
	// flip on an otherwise-clean page must land in the next checkpoint)
	// and the predecode tag compare redecodes a flipped instruction.
	flipped := m.words[idx] ^ 1<<bit
	m.wordSum += wordSig(idx, flipped) - wordSig(idx, m.words[idx])
	m.words[idx] = flipped
	m.markDirty(idx)
}

func popcount(v uint32) int {
	n := 0
	for v != 0 {
		v &= v - 1
		n++
	}
	return n
}

// Perm is an MMU permission bit set.
type Perm uint8

// MMU permissions.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermExec
)

// Region is a contiguous address range [Start, End) with permissions.
type Region struct {
	Start, End uint32
	Perms      Perm
}

// Contains reports whether addr is inside the region with perm allowed.
//
//nlft:noalloc
func (r Region) Contains(addr uint32, perm Perm) bool {
	return addr >= r.Start && addr < r.End && r.Perms&perm == perm
}

// MMU checks accesses against the region set of the currently running
// task, implementing the fault-confinement EDM of Table 1 ("detects
// memory accesses outside the task's allowed memory area").
type MMU struct {
	regions []Region
	enabled bool
	// Violations counts detected violations.
	Violations uint64
}

// NewMMU returns an MMU with no regions, disabled.
func NewMMU() *MMU { return &MMU{} }

// SetRegions installs the accessible regions and enables checking.
func (u *MMU) SetRegions(regions []Region) {
	u.regions = make([]Region, len(regions))
	copy(u.regions, regions)
	u.enabled = true
}

// Disable turns off checking (kernel-mode accesses).
func (u *MMU) Disable() { u.enabled = false }

// Enabled reports whether checking is active.
func (u *MMU) Enabled() bool { return u.enabled }

// Check validates an access; a violation increments Violations and
// returns an MMU exception.
//
//nlft:noalloc
func (u *MMU) Check(addr uint32, perm Perm) *Exception {
	if !u.enabled {
		return nil
	}
	for _, r := range u.regions {
		if r.Contains(addr, perm) {
			return nil
		}
	}
	u.Violations++
	return &Exception{Kind: ExcMMUViolation, Addr: addr} //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
}
