package cpu

// Threaded-code dispatch: the interpreter's hot path decodes each
// program word once into a dense micro-op array (resolved handler id,
// pre-extracted operand fields, pre-resolved cycle cost) and then
// dispatches by index with zero per-step decode. The interpretive
// Step() remains the reference engine; RunCycles/Run switch to the
// predecoded loop when the memory carries a predecode cache.
//
// Soundness under fault injection (the predecode-invalidation
// invariant): every micro-op stores the exact instruction word it was
// decoded from, and the fetch path compares that tag against the live
// RAM word before dispatching. Any mutation of instruction memory —
// Store, Poke, FlipBit with ECC off, or a checkpoint Restore — changes
// the RAM word, so the stale entry fails the tag compare and is
// redecoded in place. No mutation path needs an explicit invalidation
// hook, and a missed one is impossible by construction. ECC-latent
// flips (pendingFlips) never change the stored word; they are resolved
// on fetch by the same rules as Memory.Load, before the tag compare,
// so corrected reads and uncorrectable traps are bit-identical to the
// interpretive path. The cache is derived state: it never feeds
// digests or snapshots.

import "math/bits"

// Dense handler ids, pre-resolved at predecode time so the dispatch
// switch is contiguous (a jump table) instead of a sparse-opcode scan.
// hIllegal is the zero value: a zero microOp claims word 0, whose
// opcode 0x00 is unassigned, so an untouched entry is self-consistent.
const (
	hIllegal uint8 = iota
	hNop
	hHalt
	hMovi
	hMovhi
	hMov
	hAdd
	hSub
	hMul
	hDiv
	hMod
	hAnd
	hOr
	hXor
	hShl
	hShr
	hSra
	hAddi
	hLd
	hSt
	hCmp
	hCmpi
	hBeq
	hBne
	hBlt
	hBge
	hBle
	hBgt
	hJmp
	hJal
	hJr
	hPush
	hPop
	hSig
	hSys
)

// opHandler maps each opcode to its dense handler id (hIllegal for the
// unassigned ones — the illegal-opcode EDM).
var opHandler = [256]uint8{
	OpNop:   hNop,
	OpHalt:  hHalt,
	OpMovi:  hMovi,
	OpMovhi: hMovhi,
	OpMov:   hMov,
	OpAdd:   hAdd,
	OpSub:   hSub,
	OpMul:   hMul,
	OpDiv:   hDiv,
	OpMod:   hMod,
	OpAnd:   hAnd,
	OpOr:    hOr,
	OpXor:   hXor,
	OpShl:   hShl,
	OpShr:   hShr,
	OpSra:   hSra,
	OpAddi:  hAddi,
	OpLd:    hLd,
	OpSt:    hSt,
	OpCmp:   hCmp,
	OpCmpi:  hCmpi,
	OpBeq:   hBeq,
	OpBne:   hBne,
	OpBlt:   hBlt,
	OpBge:   hBge,
	OpBle:   hBle,
	OpBgt:   hBgt,
	OpJmp:   hJmp,
	OpJal:   hJal,
	OpJr:    hJr,
	OpPush:  hPush,
	OpPop:   hPop,
	OpSig:   hSig,
	OpSys:   hSys,
}

// microOp is one predecoded instruction: the encoded word it was
// decoded from (the validation tag), the sign-extended immediate, the
// dense handler id, the register fields, and the cycle cost.
type microOp struct {
	word   uint32
	imm    int32
	h      uint8
	rd     uint8
	ra     uint8
	rb     uint8
	cycles uint8
}

// predecodeEntry decodes one instruction word into e. Unassigned
// opcodes leave h == hIllegal with the tag set, so the entry stays
// valid (and keeps trapping) until the word changes again.
//
//nlft:noalloc
func predecodeEntry(e *microOp, w uint32) {
	op := Opcode(w >> 24)
	h := opHandler[op]
	if h == hIllegal {
		*e = microOp{word: w}
		return
	}
	e.word = w
	e.imm = int32(int16(uint16(w)))
	e.h = h
	e.rd = uint8(w>>20) & 0xF
	e.ra = uint8(w>>16) & 0xF
	e.rb = uint8(w>>12) & 0xF
	e.cycles = uint8(opTable[op].cycles)
}

// EnablePredecode attaches a predecode cache covering the first
// sizeWords words of RAM (clamped to the RAM size) — the loaded program
// image range. Entries validate lazily: the zero entry claims word 0
// (unassigned opcode), so the first fetch of any nonzero word fails the
// tag compare and decodes it. PCs outside the covered range execute on
// the interpretive path, instruction by instruction.
func (m *Memory) EnablePredecode(sizeWords uint32) {
	if sizeWords > uint32(len(m.words)) {
		sizeWords = uint32(len(m.words))
	}
	if sizeWords == 0 {
		m.pre = nil
		return
	}
	m.pre = make([]microOp, sizeWords)
}

// PredecodeEnabled reports whether a predecode cache is attached.
func (m *Memory) PredecodeEnabled() bool { return m.pre != nil }

// execWindow returns the containing exec-permitted region's [start,
// end) for a PC that has already passed Check; with the MMU disabled
// the whole address space is executable. The dispatch loop caches the
// window so straight-line and loop execution skip the region scan —
// sound because regions are fixed for the duration of a run slice (the
// kernel installs them before dispatch) and a cached window only ever
// skips checks that would pass, so Violations counts are unchanged.
//
//nlft:noalloc
func (u *MMU) execWindow(addr uint32) (uint32, uint32) {
	if !u.enabled {
		return 0, ^uint32(0)
	}
	for _, r := range u.regions {
		if r.Contains(addr, PermExec) {
			return r.Start, r.End
		}
	}
	return addr, addr // unreachable after a passing Check; degrades to per-step checks
}

// runPredecoded is the threaded-code dispatch loop: RunCycles/Run with
// zero per-step decode. It stops on an event with Sys != 0, an
// exception, maxInstr retired attempts, or at least maxCycles cycles,
// and returns the cycles actually consumed. Semantics are bit-identical
// to looping over Step (guarded by the differential fuzz and lockstep
// tests): identical cycle charging, retire counts, flag updates, ECC
// resolution, and exception PCs.
//
//nlft:noalloc
func (c *CPU) runPredecoded(maxInstr, maxCycles uint64) (Event, *Exception, uint64) {
	m := c.Mem
	start := c.Cycles
	// Cached exec window: empty at entry, so the first instruction (and
	// every jump outside the window) pays one MMU region scan.
	var exLo, exHi uint32
	var n uint64
	for n < maxInstr && c.Cycles-start < maxCycles {
		pc := c.PC
		idx := pc >> 2
		if pc&3 != 0 || pc >= IOBase || idx >= uint32(len(m.pre)) {
			// Outside predecode coverage (misaligned, I/O window, or past
			// the predecoded image): interpret one instruction.
			ev, exc := c.Step()
			n++
			if exc != nil {
				return ev, exc, c.Cycles - start
			}
			if ev.Sys != 0 {
				return ev, nil, c.Cycles - start
			}
			continue
		}
		if pc < exLo || pc >= exHi {
			if exc := c.MMU.Check(pc, PermExec); exc != nil {
				c.Cycles++
				exc.PC = pc
				return Event{}, exc, c.Cycles - start
			}
			exLo, exHi = c.MMU.execWindow(pc)
		}
		if len(m.pendingFlips) != 0 {
			if exc := m.resolveFlip(pc); exc != nil {
				c.Cycles++
				exc.PC = pc
				return Event{}, exc, c.Cycles - start
			}
		}
		e := &m.pre[idx]
		if w := m.words[idx]; e.word != w {
			predecodeEntry(e, w)
		}
		n++
		if e.h == hIllegal {
			c.Cycles++
			//nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
			return Event{}, &Exception{Kind: ExcIllegalOpcode, Addr: pc, PC: pc}, c.Cycles - start
		}
		c.Cycles += uint64(e.cycles)
		c.Retired++
		next := pc + 4

		switch e.h {
		case hNop:
		case hHalt:
			//nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
			return Event{}, &Exception{Kind: ExcHalt, Addr: pc, PC: pc}, c.Cycles - start
		case hMovi:
			c.Regs[e.rd] = uint32(e.imm)
		case hMovhi:
			c.Regs[e.rd] = (c.Regs[e.rd] & 0xFFFF) | uint32(uint16(e.imm))<<16
		case hMov:
			c.Regs[e.rd] = c.Regs[e.ra]
		case hAdd:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] + c.Regs[e.rb])
		case hSub:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] - c.Regs[e.rb])
		case hMul:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] * c.Regs[e.rb])
		case hDiv:
			if c.Regs[e.rb] == 0 {
				//nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
				return Event{}, &Exception{Kind: ExcDivZero, Addr: pc, PC: pc}, c.Cycles - start
			}
			c.Regs[e.rd] = c.applyALUFault(uint32(int32(c.Regs[e.ra]) / int32(c.Regs[e.rb])))
		case hMod:
			if c.Regs[e.rb] == 0 {
				//nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
				return Event{}, &Exception{Kind: ExcDivZero, Addr: pc, PC: pc}, c.Cycles - start
			}
			c.Regs[e.rd] = c.applyALUFault(uint32(int32(c.Regs[e.ra]) % int32(c.Regs[e.rb])))
		case hAnd:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] & c.Regs[e.rb])
		case hOr:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] | c.Regs[e.rb])
		case hXor:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] ^ c.Regs[e.rb])
		case hShl:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] << (c.Regs[e.rb] & 31))
		case hShr:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] >> (c.Regs[e.rb] & 31))
		case hSra:
			c.Regs[e.rd] = c.applyALUFault(uint32(int32(c.Regs[e.ra]) >> (c.Regs[e.rb] & 31)))
		case hAddi:
			c.Regs[e.rd] = c.applyALUFault(c.Regs[e.ra] + uint32(e.imm))
		case hLd:
			v, exc := c.load(c.Regs[e.ra] + uint32(e.imm))
			if exc != nil {
				exc.PC = pc
				return Event{}, exc, c.Cycles - start
			}
			c.Regs[e.rd] = v
		case hSt:
			if exc := c.store(c.Regs[e.ra]+uint32(e.imm), c.Regs[e.rd]); exc != nil {
				exc.PC = pc
				return Event{}, exc, c.Cycles - start
			}
		case hCmp:
			c.setFlags(c.Regs[e.ra], c.Regs[e.rb])
		case hCmpi:
			c.setFlags(c.Regs[e.ra], uint32(e.imm))
		case hBeq:
			if c.Flags.Z {
				next = pc + uint32(int32(4)*e.imm)
			}
		case hBne:
			if !c.Flags.Z {
				next = pc + uint32(int32(4)*e.imm)
			}
		case hBlt:
			if c.signedLess() {
				next = pc + uint32(int32(4)*e.imm)
			}
		case hBge:
			if !c.signedLess() {
				next = pc + uint32(int32(4)*e.imm)
			}
		case hBle:
			if c.Flags.Z || c.signedLess() {
				next = pc + uint32(int32(4)*e.imm)
			}
		case hBgt:
			if !c.Flags.Z && !c.signedLess() {
				next = pc + uint32(int32(4)*e.imm)
			}
		case hJmp:
			next = pc + uint32(int32(4)*e.imm)
		case hJal:
			c.Regs[RegLR] = next
			next = pc + uint32(int32(4)*e.imm)
		case hJr:
			next = c.Regs[e.ra]
		case hPush:
			sp := c.Regs[RegSP] - 4
			if exc := c.store(sp, c.Regs[e.rd]); exc != nil {
				exc.PC = pc
				return Event{}, exc, c.Cycles - start
			}
			c.Regs[RegSP] = sp
		case hPop:
			v, exc := c.load(c.Regs[RegSP])
			if exc != nil {
				exc.PC = pc
				return Event{}, exc, c.Cycles - start
			}
			c.Regs[e.rd] = v
			c.Regs[RegSP] += 4
		case hSig:
			c.Signature = bits.RotateLeft32(c.Signature, 5) ^ uint32(e.imm)
		case hSys:
			c.PC = next
			return Event{Sys: e.imm}, nil, c.Cycles - start
		}
		c.PC = next
	}
	return Event{}, nil, c.Cycles - start
}
