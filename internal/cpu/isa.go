// Package cpu simulates a small 32-bit COTS microprocessor in the spirit
// of the processors the paper's prototype kernels ran on (Thor, Motorola
// 68340): a register file with PC and SP, word-addressed memory behind an
// optional ECC model, MMU access ranges per task, memory-mapped I/O, and
// the hardware error-detection mechanisms of Table 1 (illegal-opcode
// detection, address/bus errors, division checks, uncorrectable-ECC
// traps).
//
// The simulation is deliberately faithful to the paper's fault-injection
// observations: instructions are *encoded* as 32-bit words, so bit flips
// in memory or in the PC produce illegal opcodes; stack-pointer
// corruption produces address and bus errors; data-register corruption
// silently corrupts computation results until TEM's comparison catches
// it. A two-pass assembler (see Assemble) builds task programs.
package cpu

import "fmt"

// Register file layout. R13 is the frame pointer by convention, R14 the
// link register, R15 the stack pointer.
const (
	NumRegs = 16
	RegFP   = 13
	RegLR   = 14
	RegSP   = 15
)

// Opcode is the 8-bit operation selector in bits 31–24 of a word.
// Values are deliberately sparse so that random bit flips frequently
// produce unassigned opcodes, exercising illegal-opcode detection
// exactly as the paper's experiments on real CPUs did.
type Opcode uint8

// Instruction opcodes.
const (
	OpNop   Opcode = 0x01
	OpHalt  Opcode = 0x03
	OpMovi  Opcode = 0x07 // rd = signext(imm16)
	OpMovhi Opcode = 0x0B // rd = (rd & 0xFFFF) | imm16<<16
	OpMov   Opcode = 0x0D // rd = ra
	OpAdd   Opcode = 0x11 // rd = ra + rb
	OpSub   Opcode = 0x13
	OpMul   Opcode = 0x17
	OpDiv   Opcode = 0x1B // signed; divide-by-zero traps
	OpMod   Opcode = 0x1F
	OpAnd   Opcode = 0x23
	OpOr    Opcode = 0x29
	OpXor   Opcode = 0x2B
	OpShl   Opcode = 0x2F
	OpShr   Opcode = 0x31 // logical
	OpSra   Opcode = 0x37 // arithmetic
	OpAddi  Opcode = 0x3B // rd = ra + signext(imm16)
	OpLd    Opcode = 0x41 // rd = mem[ra + signext(imm16)]
	OpSt    Opcode = 0x43 // mem[ra + signext(imm16)] = rd
	OpCmp   Opcode = 0x53 // flags from ra - rb
	OpCmpi  Opcode = 0x59 // flags from ra - signext(imm16)
	OpBeq   Opcode = 0x61 // PC-relative word offset in imm16
	OpBne   Opcode = 0x63
	OpBlt   Opcode = 0x67 // signed
	OpBge   Opcode = 0x69
	OpBle   Opcode = 0x6D
	OpBgt   Opcode = 0x71
	OpJmp   Opcode = 0x73 // PC-relative
	OpJal   Opcode = 0x79 // LR = return address; PC-relative jump
	OpJr    Opcode = 0x7B // PC = ra
	OpPush  Opcode = 0x83 // SP -= 4; mem[SP] = rd
	OpPop   Opcode = 0x89 // rd = mem[SP]; SP += 4
	OpSig   Opcode = 0x97 // control-flow signature checkpoint (imm16)
	OpSys   Opcode = 0xA1 // system call (imm16 = service)
)

// System-call service numbers (the SYS immediate).
const (
	// SysYield relinquishes the CPU voluntarily (cooperative point).
	SysYield = 0x01
	// SysEnd marks the end of a task instance (its write-output phase is
	// complete). The kernel regains control.
	SysEnd = 0x02
)

// opInfo describes an opcode's operand shape and cycle cost.
type opInfo struct {
	name   string
	format opFormat
	cycles uint64
}

type opFormat int

const (
	fmtNone      opFormat = iota + 1 // NOP, HALT
	fmtRegImm                        // MOVI/MOVHI rd, imm
	fmtRegReg                        // MOV rd, ra
	fmtThreeReg                      // ADD rd, ra, rb
	fmtRegRegImm                     // ADDI rd, ra, imm
	fmtMem                           // LD/ST rd, [ra+imm]
	fmtCmpRR                         // CMP ra, rb
	fmtCmpRI                         // CMPI ra, imm
	fmtBranch                        // Bcc imm (PC-relative)
	fmtJumpReg                       // JR ra
	fmtOneReg                        // PUSH/POP rd
	fmtImmOnly                       // SIG/SYS imm
)

// opSpecs is the source of truth for the instruction set (the assembler
// iterates it to build its mnemonic table).
var opSpecs = map[Opcode]opInfo{
	OpNop:   {"nop", fmtNone, 1},
	OpHalt:  {"halt", fmtNone, 1},
	OpMovi:  {"movi", fmtRegImm, 1},
	OpMovhi: {"movhi", fmtRegImm, 1},
	OpMov:   {"mov", fmtRegReg, 1},
	OpAdd:   {"add", fmtThreeReg, 1},
	OpSub:   {"sub", fmtThreeReg, 1},
	OpMul:   {"mul", fmtThreeReg, 3},
	OpDiv:   {"div", fmtThreeReg, 12},
	OpMod:   {"mod", fmtThreeReg, 12},
	OpAnd:   {"and", fmtThreeReg, 1},
	OpOr:    {"or", fmtThreeReg, 1},
	OpXor:   {"xor", fmtThreeReg, 1},
	OpShl:   {"shl", fmtThreeReg, 1},
	OpShr:   {"shr", fmtThreeReg, 1},
	OpSra:   {"sra", fmtThreeReg, 1},
	OpAddi:  {"addi", fmtRegRegImm, 1},
	OpLd:    {"ld", fmtMem, 2},
	OpSt:    {"st", fmtMem, 2},
	OpCmp:   {"cmp", fmtCmpRR, 1},
	OpCmpi:  {"cmpi", fmtCmpRI, 1},
	OpBeq:   {"beq", fmtBranch, 1},
	OpBne:   {"bne", fmtBranch, 1},
	OpBlt:   {"blt", fmtBranch, 1},
	OpBge:   {"bge", fmtBranch, 1},
	OpBle:   {"ble", fmtBranch, 1},
	OpBgt:   {"bgt", fmtBranch, 1},
	OpJmp:   {"jmp", fmtBranch, 1},
	OpJal:   {"jal", fmtBranch, 2},
	OpJr:    {"jr", fmtJumpReg, 1},
	OpPush:  {"push", fmtOneReg, 2},
	OpPop:   {"pop", fmtOneReg, 2},
	OpSig:   {"sig", fmtImmOnly, 1},
	OpSys:   {"sys", fmtImmOnly, 1},
}

// opTable flattens opSpecs into a direct-indexed array: decode runs on
// every simulated instruction, and indexing replaces a map hash on the
// interpreter's hottest path. The zero opFormat marks an unassigned
// opcode (illegal-opcode EDM).
var opTable = func() (t [256]opInfo) {
	//nlft:allow nodeterminism each key lands in its own array slot; iteration order cannot affect the table
	for op, info := range opSpecs {
		t[op] = info
	}
	return t
}()

// Encode packs an instruction word: opcode in bits 31–24, rd in 23–20,
// ra in 19–16, and either rb in 15–12 or a 16-bit immediate in 15–0.
func Encode(op Opcode, rd, ra, rb int, imm int32) uint32 {
	w := uint32(op) << 24
	w |= (uint32(rd) & 0xF) << 20
	w |= (uint32(ra) & 0xF) << 16
	info := opTable[op]
	if info.format == 0 {
		panic(fmt.Sprintf("cpu: encode unknown opcode %#x", uint8(op)))
	}
	switch info.format {
	case fmtThreeReg, fmtCmpRR:
		w |= (uint32(rb) & 0xF) << 12
	case fmtRegImm, fmtRegRegImm, fmtMem, fmtCmpRI, fmtBranch, fmtImmOnly:
		w |= uint32(uint16(imm))
	}
	return w
}

// decoded is an instruction after field extraction.
type decoded struct {
	op   Opcode
	info opInfo
	rd   int
	ra   int
	rb   int
	imm  int32 // sign-extended
}

// decode splits an instruction word, reporting ok=false for an opcode
// that is not assigned (the illegal-opcode EDM fires on those).
func decode(w uint32) (decoded, bool) {
	op := Opcode(w >> 24)
	info := opTable[op]
	if info.format == 0 {
		return decoded{}, false
	}
	d := decoded{
		op:   op,
		info: info,
		rd:   int((w >> 20) & 0xF),
		ra:   int((w >> 16) & 0xF),
		rb:   int((w >> 12) & 0xF),
		imm:  int32(int16(uint16(w))),
	}
	return d, true
}

// Disassemble renders an instruction word for traces and debugging.
func Disassemble(w uint32) string {
	d, ok := decode(w)
	if !ok {
		return fmt.Sprintf(".word %#08x", w)
	}
	switch d.info.format {
	case fmtNone:
		return d.info.name
	case fmtRegImm:
		return fmt.Sprintf("%s r%d, %d", d.info.name, d.rd, d.imm)
	case fmtRegReg:
		return fmt.Sprintf("%s r%d, r%d", d.info.name, d.rd, d.ra)
	case fmtThreeReg:
		return fmt.Sprintf("%s r%d, r%d, r%d", d.info.name, d.rd, d.ra, d.rb)
	case fmtRegRegImm:
		return fmt.Sprintf("%s r%d, r%d, %d", d.info.name, d.rd, d.ra, d.imm)
	case fmtMem:
		return fmt.Sprintf("%s r%d, [r%d%+d]", d.info.name, d.rd, d.ra, d.imm)
	case fmtCmpRR:
		return fmt.Sprintf("%s r%d, r%d", d.info.name, d.ra, d.rb)
	case fmtCmpRI:
		return fmt.Sprintf("%s r%d, %d", d.info.name, d.ra, d.imm)
	case fmtBranch:
		return fmt.Sprintf("%s %+d", d.info.name, d.imm)
	case fmtJumpReg:
		return fmt.Sprintf("%s r%d", d.info.name, d.ra)
	case fmtOneReg:
		return fmt.Sprintf("%s r%d", d.info.name, d.rd)
	case fmtImmOnly:
		return fmt.Sprintf("%s %d", d.info.name, d.imm)
	default:
		return fmt.Sprintf(".word %#08x", w)
	}
}
