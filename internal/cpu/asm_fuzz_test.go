package cpu

import "testing"

// FuzzAssemble exercises the assembler with arbitrary source text:
// it must reject or accept, never panic, and anything accepted must
// disassemble cleanly.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r1, 5\nsys 2")
	f.Add(".org 0x100\nstart: jmp start")
	f.Add("li r2, 0xDEADBEEF\npush r2\npop r3")
	f.Add("loop: addi r1, r1, -1\ncmpi r1, 0\nbgt loop")
	f.Add("task: ld r4, [r5+8]\nst r4, [r5-4]\njr lr")
	f.Add("; comment only")
	f.Add(".word 0xFFFFFFFF")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		for _, w := range prog.Words {
			if Disassemble(w) == "" {
				t.Errorf("assembled word %#x has empty disassembly", w)
			}
		}
	})
}

// FuzzInterpreter loads arbitrary words as a program and steps the CPU:
// every path must end in a trap or keep retiring, never panic.
func FuzzInterpreter(f *testing.F) {
	f.Add([]byte{0x07, 0x10, 0x00, 0x05, 0xA1, 0x00, 0x00, 0x02})
	f.Add([]byte{0xEE, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		mem := NewMemory(128, false)
		for i := 0; i+3 < len(raw) && i/4 < 128; i += 4 {
			w := uint32(raw[i])<<24 | uint32(raw[i+1])<<16 |
				uint32(raw[i+2])<<8 | uint32(raw[i+3])
			mem.Poke(uint32(i), w)
		}
		c := New(mem, nil)
		c.Reset(0)
		c.Regs[RegSP] = 128 * 4
		for i := 0; i < 500; i++ {
			if _, exc := c.Step(); exc != nil {
				return
			}
		}
	})
}
