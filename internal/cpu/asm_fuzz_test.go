package cpu

import (
	"testing"
)

// FuzzAssemble exercises the assembler with arbitrary source text:
// it must reject or accept, never panic, and anything accepted must
// disassemble cleanly.
func FuzzAssemble(f *testing.F) {
	f.Add("movi r1, 5\nsys 2")
	f.Add(".org 0x100\nstart: jmp start")
	f.Add("li r2, 0xDEADBEEF\npush r2\npop r3")
	f.Add("loop: addi r1, r1, -1\ncmpi r1, 0\nbgt loop")
	f.Add("task: ld r4, [r5+8]\nst r4, [r5-4]\njr lr")
	f.Add("; comment only")
	f.Add(".word 0xFFFFFFFF")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Assemble(src)
		if err != nil {
			return
		}
		for _, w := range prog.Words {
			if Disassemble(w) == "" {
				t.Errorf("assembled word %#x has empty disassembly", w)
			}
		}
	})
}

// FuzzInterpreter loads arbitrary words as a program and steps the CPU:
// every path must end in a trap or keep retiring, never panic.
func FuzzInterpreter(f *testing.F) {
	f.Add([]byte{0x07, 0x10, 0x00, 0x05, 0xA1, 0x00, 0x00, 0x02})
	f.Add([]byte{0xEE, 0x00, 0x00, 0x00})
	f.Fuzz(func(t *testing.T, raw []byte) {
		mem := NewMemory(128, false)
		for i := 0; i+3 < len(raw) && i/4 < 128; i += 4 {
			w := uint32(raw[i])<<24 | uint32(raw[i+1])<<16 |
				uint32(raw[i+2])<<8 | uint32(raw[i+3])
			mem.Poke(uint32(i), w)
		}
		c := New(mem, nil)
		c.Reset(0)
		c.Regs[RegSP] = 128 * 4
		for i := 0; i < 500; i++ {
			if _, exc := c.Step(); exc != nil {
				return
			}
		}
	})
}

// FuzzDispatchDifferential runs the predecoded dispatch engine and the
// interpretive reference in lockstep over arbitrary program words, with
// input-derived bit flips injected mid-run into both machines, and
// requires bit-identical behaviour after every instruction: same events,
// same exceptions (kind, address, PC), same cycle charges, and same
// state digests. This is the oracle for the predecode-invalidation
// invariant — a flip that lands on an already-decoded instruction word
// must be picked up by the tag compare.
func FuzzDispatchDifferential(f *testing.F) {
	f.Add([]byte{0x07, 0x10, 0x00, 0x05, 0xA1, 0x00, 0x00, 0x02}, false)
	f.Add([]byte{0x07, 0x10, 0x00, 0x05, 0xA1, 0x00, 0x00, 0x02}, true)
	f.Add([]byte{0xEE, 0x00, 0x00, 0x00}, false)
	f.Add([]byte{0x61, 0x00, 0x00, 0x00, 0x73, 0x00, 0xFF, 0xFF}, true)
	f.Fuzz(func(t *testing.T, raw []byte, ecc bool) {
		build := func(predecode bool) *CPU {
			mem := NewMemory(128, ecc)
			for i := 0; i+3 < len(raw) && i/4 < 128; i += 4 {
				w := uint32(raw[i])<<24 | uint32(raw[i+1])<<16 |
					uint32(raw[i+2])<<8 | uint32(raw[i+3])
				mem.Poke(uint32(i), w)
			}
			if predecode {
				mem.EnablePredecode(128)
			}
			c := New(mem, nil)
			c.Reset(0)
			c.Regs[RegSP] = 128 * 4
			return c
		}
		a := build(true)  // predecoded
		b := build(false) // interpretive reference
		for i := 0; i < 300; i++ {
			if len(raw) > 0 && i%16 == 7 {
				// Identical input-derived flips into both machines; odd
				// selectors arm a second flip in the same word so the
				// ECC variant exercises uncorrectable traps at fetch.
				k := raw[(i/16)%len(raw)]
				addr := uint32(k%128) * 4
				bit := uint(k >> 3)
				a.Mem.FlipBit(addr, bit)
				b.Mem.FlipBit(addr, bit)
				if k&1 == 1 {
					a.Mem.FlipBit(addr, (bit+7)%32)
					b.Mem.FlipBit(addr, (bit+7)%32)
				}
			}
			eva, exca, cyca := a.RunCycles(1)
			evb, excb, cycb := b.RunCycles(1)
			if eva != evb || cyca != cycb {
				t.Fatalf("step %d: predecoded (ev=%+v, %d cycles), interpretive (ev=%+v, %d cycles)",
					i, eva, cyca, evb, cycb)
			}
			if (exca == nil) != (excb == nil) || (exca != nil && *exca != *excb) {
				t.Fatalf("step %d: exceptions diverged: predecoded %v, interpretive %v", i, exca, excb)
			}
			if a.Regs != b.Regs || a.PC != b.PC || a.Flags != b.Flags ||
				a.Signature != b.Signature || a.Cycles != b.Cycles || a.Retired != b.Retired {
				t.Fatalf("step %d: CPU state diverged: predecoded pc=%#x digest=%#x, interpretive pc=%#x digest=%#x",
					i, a.PC, a.StateDigest(), b.PC, b.StateDigest())
			}
			if a.Mem.StateDigest() != b.Mem.StateDigest() ||
				a.Mem.CorrectedErrors != b.Mem.CorrectedErrors {
				t.Fatalf("step %d: memory diverged: digests %#x vs %#x, corrected %d vs %d",
					i, a.Mem.StateDigest(), b.Mem.StateDigest(),
					a.Mem.CorrectedErrors, b.Mem.CorrectedErrors)
			}
			if exca != nil {
				return // both trapped identically
			}
		}
	})
}
