package cpu

import (
	"fmt"
	"math/bits"
)

// ExcKind classifies hardware exceptions — the CPU-level error detection
// mechanisms of Table 1.
type ExcKind int

// Exception kinds.
const (
	// ExcIllegalOpcode: the fetched word decodes to no instruction. The
	// paper observed these mainly from PC-register faults.
	ExcIllegalOpcode ExcKind = iota + 1
	// ExcAddressError: misaligned access, typically from SP faults.
	ExcAddressError
	// ExcBusError: access outside physical memory or a failed I/O access.
	ExcBusError
	// ExcMMUViolation: access outside the task's allowed regions.
	ExcMMUViolation
	// ExcDivZero: division or modulo by zero.
	ExcDivZero
	// ExcECCError: uncorrectable (multi-bit) memory error.
	ExcECCError
	// ExcHalt: the HALT instruction (a stop, not an error).
	ExcHalt
)

// String names the exception kind.
func (k ExcKind) String() string {
	switch k {
	case ExcIllegalOpcode:
		return "illegal-opcode"
	case ExcAddressError:
		return "address-error"
	case ExcBusError:
		return "bus-error"
	case ExcMMUViolation:
		return "mmu-violation"
	case ExcDivZero:
		return "div-zero"
	case ExcECCError:
		return "ecc-uncorrectable"
	case ExcHalt:
		return "halt"
	default:
		return fmt.Sprintf("exc(%d)", int(k))
	}
}

// Exception reports a trapped condition with its location.
type Exception struct {
	Kind ExcKind
	// Addr is the offending data address, when applicable.
	Addr uint32
	// PC is the address of the faulting instruction (filled by Step).
	PC uint32
}

// Error implements error so exceptions can travel through error paths.
func (e *Exception) Error() string {
	return fmt.Sprintf("cpu: %s at pc=%#x addr=%#x", e.Kind, e.PC, e.Addr)
}

// Flags is the condition-code register.
type Flags struct {
	Z bool // zero
	N bool // negative
	C bool // carry (unsigned overflow)
	V bool // signed overflow
}

// Event callbacks let the kernel observe syscalls and signature
// checkpoints without polluting the core interpreter.
type Event struct {
	// Sys is nonzero after a SYS instruction, holding the service number.
	Sys int32
	// Sig holds the checkpoint id after a SIG instruction; HasSig
	// distinguishes checkpoint 0 from no checkpoint. A value field keeps
	// the per-instruction event heap-allocation-free.
	Sig    int32
	HasSig bool
}

// CPU is the processor state. The zero value is not usable; construct
// with New.
type CPU struct {
	Regs  [NumRegs]uint32
	PC    uint32
	Flags Flags
	//nlft:snapshot-skip component with its own Snapshot/Restore pair, captured separately by the node layer
	Mem *Memory
	//nlft:snapshot-skip component with its own Snapshot/Restore pair, captured separately by the node layer
	MMU *MMU
	// Cycles accumulates the cost of executed instructions.
	Cycles uint64
	// Retired counts executed instructions.
	Retired uint64
	// aluFaultMask, when nonzero, is XORed into the next ALU result and
	// cleared: a single-cycle transient fault in the functional unit.
	aluFaultMask uint32
	// Signature is the running control-flow signature, updated by SIG
	// instructions; the kernel compares it against the golden value.
	Signature uint32
}

// New returns a CPU attached to the given memory (MMU optional).
func New(mem *Memory, mmu *MMU) *CPU {
	if mem == nil {
		panic("cpu: nil memory")
	}
	if mmu == nil {
		mmu = NewMMU()
	}
	return &CPU{Mem: mem, MMU: mmu}
}

// Reset clears registers, flags, signature and sets the PC.
func (c *CPU) Reset(pc uint32) {
	c.Regs = [NumRegs]uint32{}
	c.Flags = Flags{}
	c.PC = pc
	c.Signature = 0
	c.aluFaultMask = 0
}

// Snapshot captures the restorable CPU context — what the paper's kernel
// stores in the task control block so that a task copy can restart with
// clean initial conditions after an EDM-detected error (§2.5).
type Snapshot struct {
	Regs      [NumRegs]uint32
	PC        uint32
	Flags     Flags
	Signature uint32
}

// Snapshot returns a copy of the restorable context.
func (c *CPU) Snapshot() Snapshot {
	return Snapshot{Regs: c.Regs, PC: c.PC, Flags: c.Flags, Signature: c.Signature}
}

// Restore reinstates a previously captured context. A pending ALU fault
// is deliberately NOT cleared: it models a latent fault in the
// functional unit itself, which a context switch cannot scrub.
func (c *CPU) Restore(s Snapshot) {
	c.Regs = s.Regs
	c.PC = s.PC
	c.Flags = s.Flags
	c.Signature = s.Signature
}

// FlipRegister injects a transient single-bit flip into register r.
func (c *CPU) FlipRegister(r int, bit uint) {
	if r >= 0 && r < NumRegs && bit <= 31 {
		c.Regs[r] ^= 1 << bit
	}
}

// FlipPC injects a transient single-bit flip into the program counter.
func (c *CPU) FlipPC(bit uint) {
	if bit <= 31 {
		c.PC ^= 1 << bit
	}
}

// InjectALUFault arranges for the next ALU result to be XORed with mask,
// modelling a transient fault in an adder or multiplier (§2.3, Table 1's
// TEM row: "transient faults in data registers, adders or multipliers").
func (c *CPU) InjectALUFault(mask uint32) { c.aluFaultMask = mask }

// applyALUFault consumes any pending ALU fault.
//
//nlft:noalloc
func (c *CPU) applyALUFault(v uint32) uint32 {
	if c.aluFaultMask != 0 {
		v ^= c.aluFaultMask
		c.aluFaultMask = 0
	}
	return v
}

// load checks the MMU then reads memory.
//
//nlft:noalloc
func (c *CPU) load(addr uint32) (uint32, *Exception) {
	if exc := c.MMU.Check(addr, PermRead); exc != nil {
		return 0, exc
	}
	return c.Mem.Load(addr)
}

// store checks the MMU then writes memory.
//
//nlft:noalloc
func (c *CPU) store(addr, v uint32) *Exception {
	if exc := c.MMU.Check(addr, PermWrite); exc != nil {
		return exc
	}
	return c.Mem.Store(addr, v)
}

// setFlags updates condition codes from a subtraction a−b.
//
//nlft:noalloc
func (c *CPU) setFlags(a, b uint32) {
	d := a - b
	c.Flags.Z = d == 0
	c.Flags.N = int32(d) < 0
	c.Flags.C = a < b
	// Signed overflow of a-b: operands differ in sign and result differs
	// from a's sign.
	c.Flags.V = (int32(a) < 0) != (int32(b) < 0) && (int32(d) < 0) != (int32(a) < 0)
}

// signedLess reports a<b under the current flags (N xor V), as set by CMP.
//
//nlft:noalloc
func (c *CPU) signedLess() bool { return c.Flags.N != c.Flags.V }

// Step executes one instruction. It returns the event raised by SYS/SIG
// instructions (zero Event otherwise) and a non-nil exception when a
// hardware EDM trapped (including ExcHalt for HALT). The cycle cost of
// the instruction is added to Cycles even when it traps.
//
//nlft:noalloc
func (c *CPU) Step() (Event, *Exception) {
	pc := c.PC
	//nlft:allow noalloc non-escaping local helper; inlined and stack-allocated on the fault-free path
	fail := func(e *Exception) (Event, *Exception) {
		e.PC = pc
		return Event{}, e
	}
	if exc := c.MMU.Check(pc, PermExec); exc != nil {
		c.Cycles++
		return fail(exc)
	}
	word, exc := c.Mem.Load(pc)
	if exc != nil {
		c.Cycles++
		return fail(exc)
	}
	d, ok := decode(word)
	if !ok {
		c.Cycles++
		return fail(&Exception{Kind: ExcIllegalOpcode, Addr: pc}) //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	c.Cycles += d.info.cycles
	c.Retired++
	next := pc + 4
	var ev Event

	switch d.op {
	case OpNop:
	case OpHalt:
		return fail(&Exception{Kind: ExcHalt, Addr: pc}) //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	case OpMovi:
		c.Regs[d.rd] = uint32(d.imm)
	case OpMovhi:
		c.Regs[d.rd] = (c.Regs[d.rd] & 0xFFFF) | uint32(uint16(d.imm))<<16
	case OpMov:
		c.Regs[d.rd] = c.Regs[d.ra]
	case OpAdd:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] + c.Regs[d.rb])
	case OpSub:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] - c.Regs[d.rb])
	case OpMul:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] * c.Regs[d.rb])
	case OpDiv:
		if c.Regs[d.rb] == 0 {
			return fail(&Exception{Kind: ExcDivZero, Addr: pc}) //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
		}
		c.Regs[d.rd] = c.applyALUFault(uint32(int32(c.Regs[d.ra]) / int32(c.Regs[d.rb])))
	case OpMod:
		if c.Regs[d.rb] == 0 {
			return fail(&Exception{Kind: ExcDivZero, Addr: pc}) //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
		}
		c.Regs[d.rd] = c.applyALUFault(uint32(int32(c.Regs[d.ra]) % int32(c.Regs[d.rb])))
	case OpAnd:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] & c.Regs[d.rb])
	case OpOr:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] | c.Regs[d.rb])
	case OpXor:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] ^ c.Regs[d.rb])
	case OpShl:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] << (c.Regs[d.rb] & 31))
	case OpShr:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] >> (c.Regs[d.rb] & 31))
	case OpSra:
		c.Regs[d.rd] = c.applyALUFault(uint32(int32(c.Regs[d.ra]) >> (c.Regs[d.rb] & 31)))
	case OpAddi:
		c.Regs[d.rd] = c.applyALUFault(c.Regs[d.ra] + uint32(d.imm))
	case OpLd:
		v, exc := c.load(c.Regs[d.ra] + uint32(d.imm))
		if exc != nil {
			return fail(exc)
		}
		c.Regs[d.rd] = v
	case OpSt:
		if exc := c.store(c.Regs[d.ra]+uint32(d.imm), c.Regs[d.rd]); exc != nil {
			return fail(exc)
		}
	case OpCmp:
		c.setFlags(c.Regs[d.ra], c.Regs[d.rb])
	case OpCmpi:
		c.setFlags(c.Regs[d.ra], uint32(d.imm))
	case OpBeq, OpBne, OpBlt, OpBge, OpBle, OpBgt, OpJmp:
		if c.branchTaken(d.op) {
			next = pc + uint32(int32(4)*d.imm)
		}
	case OpJal:
		c.Regs[RegLR] = next
		next = pc + uint32(int32(4)*d.imm)
	case OpJr:
		next = c.Regs[d.ra]
	case OpPush:
		sp := c.Regs[RegSP] - 4
		if exc := c.store(sp, c.Regs[d.rd]); exc != nil {
			return fail(exc)
		}
		c.Regs[RegSP] = sp
	case OpPop:
		v, exc := c.load(c.Regs[RegSP])
		if exc != nil {
			return fail(exc)
		}
		c.Regs[d.rd] = v
		c.Regs[RegSP] += 4
	case OpSig:
		// Running signature: rotate-and-xor, order-sensitive so swapped
		// or skipped checkpoints change the value.
		c.Signature = bits.RotateLeft32(c.Signature, 5) ^ uint32(d.imm)
		ev.Sig = d.imm
		ev.HasSig = true
	case OpSys:
		ev.Sys = d.imm
	default:
		return fail(&Exception{Kind: ExcIllegalOpcode, Addr: pc}) //nlft:allow noalloc exception built on the trap path; a fault-free warm run never traps
	}
	c.PC = next
	return ev, nil
}

// branchTaken evaluates a conditional branch against the flags.
//
//nlft:noalloc
func (c *CPU) branchTaken(op Opcode) bool {
	switch op {
	case OpJmp:
		return true
	case OpBeq:
		return c.Flags.Z
	case OpBne:
		return !c.Flags.Z
	case OpBlt:
		return c.signedLess()
	case OpBge:
		return !c.signedLess()
	case OpBle:
		return c.Flags.Z || c.signedLess()
	case OpBgt:
		return !c.Flags.Z && !c.signedLess()
	default:
		return false
	}
}

// Run executes instructions until an event with Sys != 0, an exception,
// or maxInstructions retire. It returns the final event and exception
// (nil when the instruction budget ran out first). With a predecode
// cache attached (Memory.EnablePredecode) the threaded-code dispatch
// loop runs instead of the interpretive one; behaviour is bit-identical
// (see dispatch.go).
//
//nlft:noalloc
func (c *CPU) Run(maxInstructions uint64) (Event, *Exception) {
	if c.Mem.pre != nil {
		ev, exc, _ := c.runPredecoded(maxInstructions, ^uint64(0))
		return ev, exc
	}
	for i := uint64(0); i < maxInstructions; i++ {
		ev, exc := c.Step()
		if exc != nil {
			return ev, exc
		}
		if ev.Sys != 0 {
			return ev, nil
		}
	}
	return Event{}, nil
}

// RunCycles executes instructions until an event with Sys != 0, an
// exception, or at least maxCycles cycles elapse. It returns the event,
// the exception (nil if the cycle budget ran out), and the cycles
// actually consumed. This is the co-simulation entry point: the kernel
// bounds each run slice by the time until the next simulation event.
//
//nlft:noalloc
func (c *CPU) RunCycles(maxCycles uint64) (Event, *Exception, uint64) {
	if c.Mem.pre != nil {
		return c.runPredecoded(^uint64(0), maxCycles)
	}
	start := c.Cycles
	for c.Cycles-start < maxCycles {
		ev, exc := c.Step()
		if exc != nil {
			return ev, exc, c.Cycles - start
		}
		if ev.Sys != 0 {
			return ev, nil, c.Cycles - start
		}
	}
	return Event{}, nil, c.Cycles - start
}
