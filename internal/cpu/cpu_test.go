package cpu

import (
	"strings"
	"testing"
	"testing/quick"
)

// runProgram assembles src, loads it at its origin, points SP at the top
// of RAM and runs until SYS/HALT/exception or 100k instructions.
func runProgram(t *testing.T, src string) (*CPU, Event, *Exception) {
	t.Helper()
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(16384, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(prog.Origin)
	c.Regs[RegSP] = mem.SizeBytes()
	ev, exc := c.Run(100000)
	return c, ev, exc
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for op, info := range opSpecs {
		w := Encode(op, 3, 5, 7, -9)
		d, ok := decode(w)
		if !ok {
			t.Fatalf("%s did not decode", info.name)
		}
		if d.op != op {
			t.Errorf("%s decoded to %v", info.name, d.op)
		}
		switch info.format {
		case fmtThreeReg, fmtCmpRR:
			if d.rd != 3 || d.ra != 5 || d.rb != 7 {
				t.Errorf("%s fields: %+v", info.name, d)
			}
		case fmtRegImm, fmtRegRegImm, fmtMem, fmtCmpRI, fmtBranch, fmtImmOnly:
			if d.imm != -9 {
				t.Errorf("%s imm = %d", info.name, d.imm)
			}
		}
	}
}

func TestDecodeRejectsUnassignedOpcodes(t *testing.T) {
	assigned := 0
	for op := 0; op < 256; op++ {
		if _, ok := decode(uint32(op) << 24); ok {
			assigned++
		}
	}
	if assigned != len(opSpecs) {
		t.Errorf("decode accepts %d opcodes, table has %d", assigned, len(opSpecs))
	}
	// Sparsity: most random opcode bytes must be illegal, which is what
	// gives the illegal-opcode EDM its coverage.
	if assigned > 64 {
		t.Errorf("opcode space too dense: %d assigned", assigned)
	}
}

func TestArithmeticProgram(t *testing.T) {
	c, ev, exc := runProgram(t, `
		movi r1, 21
		movi r2, 2
		mul r3, r1, r2     ; 42
		addi r3, r3, 58    ; 100
		movi r4, 7
		div r5, r3, r4     ; 14
		mod r6, r3, r4     ; 2
		sub r7, r5, r6     ; 12
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if ev.Sys != SysEnd {
		t.Fatalf("event = %+v", ev)
	}
	for reg, want := range map[int]uint32{3: 100, 5: 14, 6: 2, 7: 12} {
		if c.Regs[reg] != want {
			t.Errorf("r%d = %d, want %d", reg, c.Regs[reg], want)
		}
	}
}

func TestLogicalAndShifts(t *testing.T) {
	c, _, exc := runProgram(t, `
		li r1, 0xF0F0
		li r2, 0x0FF0
		and r3, r1, r2    ; 0x00F0
		or  r4, r1, r2    ; 0xFFF0
		xor r5, r1, r2    ; 0xFF00
		movi r6, 4
		shl r7, r3, r6    ; 0x0F00
		shr r8, r4, r6    ; 0x0FFF
		movi r9, -16
		sra r10, r9, r6   ; still -1 (0xFFFFFFFF)
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	for reg, want := range map[int]uint32{
		3: 0x00F0, 4: 0xFFF0, 5: 0xFF00, 7: 0x0F00, 8: 0x0FFF, 10: 0xFFFFFFFF,
	} {
		if c.Regs[reg] != want {
			t.Errorf("r%d = %#x, want %#x", reg, c.Regs[reg], want)
		}
	}
}

func TestLiLoadsFullWord(t *testing.T) {
	c, _, exc := runProgram(t, `
		li r1, 0xDEADBEEF
		li r2, -1
		li r3, 0x8000
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[1] != 0xDEADBEEF || c.Regs[2] != 0xFFFFFFFF || c.Regs[3] != 0x8000 {
		t.Errorf("li results: %#x %#x %#x", c.Regs[1], c.Regs[2], c.Regs[3])
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	c, _, exc := runProgram(t, `
		movi r1, 10     ; counter
		movi r2, 0      ; sum
	loop:
		add r2, r2, r1
		addi r1, r1, -1
		cmpi r1, 0
		bgt loop
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[2] != 55 {
		t.Errorf("sum = %d, want 55", c.Regs[2])
	}
}

func TestSignedBranches(t *testing.T) {
	// Compare -5 and 3 across all signed conditions.
	c, _, exc := runProgram(t, `
		movi r1, -5
		movi r2, 3
		movi r10, 0
		cmp r1, r2
		blt lt_ok
		jmp fail
	lt_ok:
		addi r10, r10, 1
		cmp r2, r1
		bgt gt_ok
		jmp fail
	gt_ok:
		addi r10, r10, 1
		cmp r1, r1
		ble le_ok
		jmp fail
	le_ok:
		addi r10, r10, 1
		cmp r2, r1
		bge ge_ok
		jmp fail
	ge_ok:
		addi r10, r10, 1
		cmp r1, r2
		bne ne_ok
		jmp fail
	ne_ok:
		addi r10, r10, 1
		cmp r1, r1
		beq done
		jmp fail
	fail:
		movi r10, -1
	done:
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[10] != 5 {
		t.Errorf("r10 = %d, want 5", int32(c.Regs[10]))
	}
}

func TestSignedOverflowComparison(t *testing.T) {
	// INT32_MIN < 1 must hold despite overflow in the subtraction —
	// this is what the V flag is for.
	c, _, exc := runProgram(t, `
		li r1, 0x80000000   ; INT32_MIN
		movi r2, 1
		movi r3, 0
		cmp r1, r2
		blt ok
		jmp done
	ok:
		movi r3, 1
	done:
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[3] != 1 {
		t.Error("INT32_MIN < 1 not taken")
	}
}

func TestCallReturn(t *testing.T) {
	c, _, exc := runProgram(t, `
		movi r1, 5
		jal double
		jal double
		sys 2
	double:
		add r1, r1, r1
		jr lr
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[1] != 20 {
		t.Errorf("r1 = %d, want 20", c.Regs[1])
	}
}

func TestStackPushPop(t *testing.T) {
	c, _, exc := runProgram(t, `
		movi r1, 111
		movi r2, 222
		push r1
		push r2
		pop r3       ; 222
		pop r4       ; 111
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[3] != 222 || c.Regs[4] != 111 {
		t.Errorf("pop results %d, %d", c.Regs[3], c.Regs[4])
	}
	if c.Regs[RegSP] != c.Mem.SizeBytes() {
		t.Errorf("SP = %#x, want %#x", c.Regs[RegSP], c.Mem.SizeBytes())
	}
}

func TestLoadStore(t *testing.T) {
	c, _, exc := runProgram(t, `
		movi r1, 0x1000
		movi r2, 77
		st r2, [r1+4]
		ld r3, [r1+4]
		sys 2
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[3] != 77 {
		t.Errorf("r3 = %d", c.Regs[3])
	}
	if c.Mem.Peek(0x1004) != 77 {
		t.Error("memory not written")
	}
}

func TestHaltStops(t *testing.T) {
	_, _, exc := runProgram(t, `halt`)
	if exc == nil || exc.Kind != ExcHalt {
		t.Fatalf("exc = %v", exc)
	}
}

func TestIllegalOpcodeTraps(t *testing.T) {
	_, _, exc := runProgram(t, `.word 0xEE000000`)
	if exc == nil || exc.Kind != ExcIllegalOpcode {
		t.Fatalf("exc = %v", exc)
	}
}

func TestDivZeroTraps(t *testing.T) {
	_, _, exc := runProgram(t, `
		movi r1, 4
		movi r2, 0
		div r3, r1, r2
	`)
	if exc == nil || exc.Kind != ExcDivZero {
		t.Fatalf("exc = %v", exc)
	}
	_, _, exc = runProgram(t, "movi r1, 4\nmovi r2, 0\nmod r3, r1, r2")
	if exc == nil || exc.Kind != ExcDivZero {
		t.Fatalf("mod exc = %v", exc)
	}
}

func TestMisalignedAccessTraps(t *testing.T) {
	_, _, exc := runProgram(t, `
		movi r1, 0x1001
		ld r2, [r1]
	`)
	if exc == nil || exc.Kind != ExcAddressError {
		t.Fatalf("exc = %v", exc)
	}
}

func TestOutOfRangeTraps(t *testing.T) {
	_, _, exc := runProgram(t, `
		li r1, 0x00100000  ; beyond 64 KiB RAM
		ld r2, [r1]
	`)
	if exc == nil || exc.Kind != ExcBusError {
		t.Fatalf("exc = %v", exc)
	}
}

func TestStackPointerFaultCausesAddressError(t *testing.T) {
	// The paper (§2.5) observed that SP faults trigger address/bus
	// exceptions; reproduce by flipping a low SP bit before a push.
	prog := MustAssemble("push r1\nsys 2")
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	c.Regs[RegSP] = mem.SizeBytes()
	c.FlipRegister(RegSP, 0) // misalign
	_, exc := c.Run(10)
	if exc == nil || exc.Kind != ExcAddressError {
		t.Fatalf("exc = %v", exc)
	}
}

func TestPCFaultCausesIllegalOpcode(t *testing.T) {
	// A high-bit PC flip lands in empty (zero) memory; word 0 decodes to
	// opcode 0x00, which is unassigned.
	prog := MustAssemble("nop\nnop\nsys 2")
	mem := NewMemory(4096, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	c.FlipPC(10) // PC = 0x400, zeroed RAM
	_, exc := c.Run(10)
	if exc == nil || exc.Kind != ExcIllegalOpcode {
		t.Fatalf("exc = %v", exc)
	}
}

func TestALUFaultSilentlyCorrupts(t *testing.T) {
	prog := MustAssemble(`
		movi r1, 1
		movi r2, 1
		add r3, r1, r2
		sys 2
	`)
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	c.InjectALUFault(1 << 4)
	_, exc := c.Run(10)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[3] != 2^(1<<4) {
		t.Errorf("r3 = %d, want corrupted %d", c.Regs[3], 2^(1<<4))
	}
	// The fault is one-shot: re-running the add yields the right answer.
	c.Reset(0)
	if _, exc := c.Run(10); exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[3] != 2 {
		t.Errorf("after restart r3 = %d, want 2", c.Regs[3])
	}
}

func TestMMUConfinement(t *testing.T) {
	prog := MustAssemble(`
		movi r1, 0x2000
		st r1, [r1]      ; outside the allowed data region
	`)
	mem := NewMemory(4096, false)
	prog.LoadInto(mem)
	mmu := NewMMU()
	mmu.SetRegions([]Region{
		{Start: 0, End: 0x100, Perms: PermRead | PermExec},
		{Start: 0x1000, End: 0x1100, Perms: PermRead | PermWrite},
	})
	c := New(mem, mmu)
	c.Reset(0)
	_, exc := c.Run(10)
	if exc == nil || exc.Kind != ExcMMUViolation {
		t.Fatalf("exc = %v", exc)
	}
	if mmu.Violations != 1 {
		t.Errorf("violations = %d", mmu.Violations)
	}
}

func TestMMUBlocksExecOutsideCode(t *testing.T) {
	prog := MustAssemble("jmp target\nnop\ntarget: nop")
	mem := NewMemory(4096, false)
	prog.LoadInto(mem)
	mmu := NewMMU()
	mmu.SetRegions([]Region{{Start: 0, End: 4, Perms: PermRead | PermExec}})
	c := New(mem, mmu)
	c.Reset(0)
	_, exc := c.Run(10)
	if exc == nil || exc.Kind != ExcMMUViolation {
		t.Fatalf("exc = %v", exc)
	}
}

func TestSignatureTracksCheckpoints(t *testing.T) {
	c1, _, exc := runProgram(t, "sig 1\nsig 2\nsig 3\nsys 2")
	if exc != nil {
		t.Fatal(exc)
	}
	c2, _, _ := runProgram(t, "sig 1\nsig 2\nsig 3\nsys 2")
	if c1.Signature != c2.Signature {
		t.Error("signature not deterministic")
	}
	c3, _, _ := runProgram(t, "sig 1\nsig 3\nsig 2\nsys 2")
	if c1.Signature == c3.Signature {
		t.Error("signature insensitive to checkpoint order")
	}
	c4, _, _ := runProgram(t, "sig 1\nsig 2\nsys 2")
	if c1.Signature == c4.Signature {
		t.Error("signature insensitive to skipped checkpoint")
	}
}

func TestSnapshotRestore(t *testing.T) {
	prog := MustAssemble("movi r1, 42\nsys 2")
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	c.Regs[RegSP] = 1024
	snap := c.Snapshot()
	if _, exc := c.Run(10); exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[1] != 42 {
		t.Fatal("program did not run")
	}
	c.FlipRegister(1, 3)
	c.Restore(snap)
	if c.Regs[1] != 0 || c.PC != 0 {
		t.Errorf("restore incomplete: r1=%d pc=%#x", c.Regs[1], c.PC)
	}
	if _, exc := c.Run(10); exc != nil {
		t.Fatal(exc)
	}
	if c.Regs[1] != 42 {
		t.Error("re-run after restore failed")
	}
}

func TestCyclesAccumulate(t *testing.T) {
	c, _, exc := runProgram(t, `
		movi r1, 3     ; 1 cycle
		movi r2, 4     ; 1
		mul r3, r1, r2 ; 3
		div r4, r3, r1 ; 12
		sys 2          ; 1
	`)
	if exc != nil {
		t.Fatal(exc)
	}
	if c.Cycles != 18 {
		t.Errorf("cycles = %d, want 18", c.Cycles)
	}
	if c.Retired != 5 {
		t.Errorf("retired = %d, want 5", c.Retired)
	}
}

func TestRunStopsAtBudget(t *testing.T) {
	prog := MustAssemble("loop: jmp loop")
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	ev, exc := c.Run(100)
	if exc != nil || ev.Sys != 0 {
		t.Fatalf("ev=%+v exc=%v", ev, exc)
	}
	if c.Retired != 100 {
		t.Errorf("retired = %d", c.Retired)
	}
}

type testIO struct {
	in  map[uint32]uint32
	out map[uint32]uint32
}

func (io *testIO) LoadPort(port uint32) (uint32, error) { return io.in[port], nil }
func (io *testIO) StorePort(port, v uint32) error {
	io.out[port] = v
	return nil
}

func TestMemoryMappedIO(t *testing.T) {
	prog := MustAssemble(`
		li r1, 0xFFFF0000
		ld r2, [r1]        ; port 0
		addi r2, r2, 1
		st r2, [r1+4]      ; port 1
		sys 2
	`)
	mem := NewMemory(1024, false)
	io := &testIO{in: map[uint32]uint32{0: 41}, out: map[uint32]uint32{}}
	mem.AttachIO(io)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	if _, exc := c.Run(20); exc != nil {
		t.Fatal(exc)
	}
	if io.out[1] != 42 {
		t.Errorf("port 1 = %d, want 42", io.out[1])
	}
}

func TestIOWithoutBusIsBusError(t *testing.T) {
	_, _, exc := runProgram(t, `
		li r1, 0xFFFF0000
		ld r2, [r1]
	`)
	if exc == nil || exc.Kind != ExcBusError {
		t.Fatalf("exc = %v", exc)
	}
}

func TestECCSingleBitCorrected(t *testing.T) {
	mem := NewMemory(64, true)
	mem.Poke(16, 0xABCD)
	mem.FlipBit(16, 3)
	v, exc := mem.Load(16)
	if exc != nil {
		t.Fatal(exc)
	}
	if v != 0xABCD {
		t.Errorf("corrected value = %#x", v)
	}
	if mem.CorrectedErrors != 1 {
		t.Errorf("corrected = %d", mem.CorrectedErrors)
	}
	// Correction is persistent.
	if v, _ := mem.Load(16); v != 0xABCD {
		t.Error("second read corrupt")
	}
}

func TestECCDoubleBitDetected(t *testing.T) {
	mem := NewMemory(64, true)
	mem.Poke(16, 0xABCD)
	mem.FlipBit(16, 3)
	mem.FlipBit(16, 7)
	_, exc := mem.Load(16)
	if exc == nil || exc.Kind != ExcECCError {
		t.Fatalf("exc = %v", exc)
	}
	// Error consumed; overwrite clears the word.
	if exc := mem.Store(16, 1); exc != nil {
		t.Fatal(exc)
	}
	if v, exc := mem.Load(16); exc != nil || v != 1 {
		t.Errorf("after store: v=%v exc=%v", v, exc)
	}
}

func TestECCFlipTwiceSameBitCancels(t *testing.T) {
	mem := NewMemory(64, true)
	mem.Poke(16, 5)
	mem.FlipBit(16, 3)
	mem.FlipBit(16, 3)
	v, exc := mem.Load(16)
	if exc != nil || v != 5 {
		t.Errorf("v=%v exc=%v", v, exc)
	}
	if mem.CorrectedErrors != 0 {
		t.Errorf("corrected = %d, want 0", mem.CorrectedErrors)
	}
}

func TestNoECCFlipCorruptsSilently(t *testing.T) {
	mem := NewMemory(64, false)
	mem.Poke(16, 0)
	mem.FlipBit(16, 5)
	v, exc := mem.Load(16)
	if exc != nil {
		t.Fatal(exc)
	}
	if v != 1<<5 {
		t.Errorf("v = %#x", v)
	}
}

func TestStoreClearsPendingECC(t *testing.T) {
	mem := NewMemory(64, true)
	mem.FlipBit(16, 1)
	mem.FlipBit(16, 2)
	if exc := mem.Store(16, 9); exc != nil {
		t.Fatal(exc)
	}
	v, exc := mem.Load(16)
	if exc != nil || v != 9 {
		t.Errorf("v=%v exc=%v", v, exc)
	}
}

func TestAssemblerErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "frobnicate r1",
		"bad register":      "movi r99, 1",
		"bad operand count": "add r1, r2",
		"bad immediate":     "movi r1, zzz-",
		"imm too large":     "movi r1, 100000",
		"undefined label":   "jmp nowhere",
		"duplicate label":   "a: nop\na: nop",
		"bad mem operand":   "ld r1, r2",
		"org after code":    "nop\n.org 0x100\nnop",
		"org misaligned":    ".org 0x101\nnop",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: assembled %q without error", name, src)
		}
	}
}

func TestAssemblerOrgAndLabels(t *testing.T) {
	prog, err := Assemble(`
		.org 0x200
	start:
		nop
	after:
		sys 2
	`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Origin != 0x200 {
		t.Errorf("origin = %#x", prog.Origin)
	}
	if a, _ := prog.Entry("start"); a != 0x200 {
		t.Errorf("start = %#x", a)
	}
	if a, _ := prog.Entry("after"); a != 0x204 {
		t.Errorf("after = %#x", a)
	}
	if _, err := prog.Entry("missing"); err == nil {
		t.Error("missing label did not error")
	}
}

func TestDisassembleFormats(t *testing.T) {
	cases := map[uint32]string{
		Encode(OpNop, 0, 0, 0, 0):   "nop",
		Encode(OpMovi, 1, 0, 0, -7): "movi r1, -7",
		Encode(OpAdd, 1, 2, 3, 0):   "add r1, r2, r3",
		Encode(OpLd, 4, 5, 0, 8):    "ld r4, [r5+8]",
		Encode(OpSt, 4, 5, 0, -4):   "st r4, [r5-4]",
		Encode(OpBeq, 0, 0, 0, 3):   "beq +3",
		Encode(OpJr, 0, 14, 0, 0):   "jr r14",
		Encode(OpPush, 9, 0, 0, 0):  "push r9",
		Encode(OpSys, 0, 0, 0, 2):   "sys 2",
		Encode(OpCmp, 0, 1, 2, 0):   "cmp r1, r2",
		Encode(OpCmpi, 0, 1, 0, 5):  "cmpi r1, 5",
		Encode(OpMov, 1, 2, 0, 0):   "mov r1, r2",
		Encode(OpAddi, 1, 2, 0, -1): "addi r1, r2, -1",
		0xEE000000:                  ".word 0xee000000",
	}
	for w, want := range cases {
		if got := Disassemble(w); got != want {
			t.Errorf("Disassemble(%#x) = %q, want %q", w, got, want)
		}
	}
}

func TestAssembleDisassembleProperty(t *testing.T) {
	// Property: assembling the disassembly of a legal instruction
	// reproduces the word (for formats without labels).
	check := func(opIdx uint8, rd, ra, rb uint8, imm int16) bool {
		ops := []Opcode{OpNop, OpMovi, OpMov, OpAdd, OpSub, OpMul, OpAnd,
			OpOr, OpXor, OpAddi, OpLd, OpSt, OpCmp, OpCmpi, OpPush, OpPop,
			OpSig, OpSys, OpJr}
		op := ops[int(opIdx)%len(ops)]
		w := Encode(op, int(rd%16), int(ra%16), int(rb%16), int32(imm))
		text := Disassemble(w)
		if strings.HasPrefix(text, ".word") {
			return true
		}
		prog, err := Assemble(text)
		if err != nil || len(prog.Words) != 1 {
			return false
		}
		// Registers not used by the format encode as 0, so compare the
		// decoded semantics instead of raw bits.
		d1, _ := decode(w)
		d2, _ := decode(prog.Words[0])
		if d1.op != d2.op || d1.imm != d2.imm {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryBounds(t *testing.T) {
	mem := NewMemory(16, false)
	if _, exc := mem.Load(16 * 4); exc == nil || exc.Kind != ExcBusError {
		t.Error("load past end did not bus-error")
	}
	if exc := mem.Store(16*4, 1); exc == nil || exc.Kind != ExcBusError {
		t.Error("store past end did not bus-error")
	}
	// FlipBit out of range is a no-op, not a panic.
	mem.FlipBit(1<<20, 3)
	mem.FlipBit(0, 99)
}

func TestPeekPokePanicOnBadAddress(t *testing.T) {
	mem := NewMemory(16, false)
	for name, fn := range map[string]func(){
		"peek misaligned": func() { mem.Peek(2) },
		"poke oob":        func() { mem.Poke(1<<20, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkInterpreterLoop(b *testing.B) {
	prog := MustAssemble(`
		movi r1, 1000
	loop:
		addi r1, r1, -1
		cmpi r1, 0
		bgt loop
		sys 2
	`)
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Reset(0)
		if _, exc := c.Run(1 << 20); exc != nil {
			b.Fatal(exc)
		}
	}
}

func TestRunCyclesBounds(t *testing.T) {
	prog := MustAssemble(`
		movi r1, 100
	loop:
		addi r1, r1, -1
		cmpi r1, 0
		bgt loop
		sys 2
	`)
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0)
	// A 10-cycle slice consumes ≥10 cycles (may overshoot by one
	// instruction) and neither traps nor completes.
	ev, exc, used := c.RunCycles(10)
	if exc != nil || ev.Sys != 0 {
		t.Fatalf("ev=%+v exc=%v", ev, exc)
	}
	if used < 10 || used > 13 {
		t.Errorf("used = %d", used)
	}
	// Run to completion in slices; the program must end at SYS 2.
	for i := 0; i < 100; i++ {
		ev, exc, _ = c.RunCycles(50)
		if exc != nil {
			t.Fatal(exc)
		}
		if ev.Sys == SysEnd {
			return
		}
	}
	t.Fatal("program never completed")
}

func TestExceptionErrorString(t *testing.T) {
	e := &Exception{Kind: ExcBusError, Addr: 0x1234, PC: 0x10}
	if !strings.Contains(e.Error(), "bus-error") {
		t.Errorf("Error() = %q", e.Error())
	}
	for _, k := range []ExcKind{ExcIllegalOpcode, ExcAddressError, ExcBusError,
		ExcMMUViolation, ExcDivZero, ExcECCError, ExcHalt, ExcKind(99)} {
		if k.String() == "" {
			t.Errorf("ExcKind(%d) unnamed", int(k))
		}
	}
}

func TestMemoryAccessors(t *testing.T) {
	mem := NewMemory(16, true)
	if !mem.ECCEnabled() {
		t.Error("ECCEnabled false")
	}
	if mem.SizeBytes() != 64 {
		t.Errorf("SizeBytes = %d", mem.SizeBytes())
	}
	prog := MustAssemble("nop\nsys 2")
	if prog.SizeBytes() != 8 {
		t.Errorf("program SizeBytes = %d", prog.SizeBytes())
	}
	defer func() {
		if recover() == nil {
			t.Error("NewMemory(0) did not panic")
		}
	}()
	NewMemory(0, false)
}

func TestMMUDisable(t *testing.T) {
	mmu := NewMMU()
	if mmu.Enabled() {
		t.Error("fresh MMU enabled")
	}
	mmu.SetRegions([]Region{{Start: 0, End: 4, Perms: PermRead}})
	if !mmu.Enabled() {
		t.Error("SetRegions did not enable")
	}
	if exc := mmu.Check(100, PermRead); exc == nil {
		t.Error("violation not caught")
	}
	mmu.Disable()
	if exc := mmu.Check(100, PermRead); exc != nil {
		t.Error("disabled MMU still checks")
	}
}

func TestAssemblerLabelAsImmediate(t *testing.T) {
	// A label used as a 32-bit immediate (via li) resolves to its address.
	prog, err := Assemble(`
		.org 0x0100
	entry:
		li r1, data
		sys 2
	data:
		.word 42
	`)
	if err != nil {
		t.Fatal(err)
	}
	mem := NewMemory(1024, false)
	prog.LoadInto(mem)
	c := New(mem, nil)
	c.Reset(0x100)
	if _, exc := c.Run(10); exc != nil {
		t.Fatal(exc)
	}
	dataAddr, _ := prog.Entry("data")
	if c.Regs[1] != dataAddr {
		t.Errorf("r1 = %#x, want %#x", c.Regs[1], dataAddr)
	}
	if mem.Peek(dataAddr) != 42 {
		t.Error(".word not emitted")
	}
}
