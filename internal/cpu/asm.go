package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Program is an assembled unit: a word image to load at Origin plus the
// resolved label table (byte addresses).
type Program struct {
	Origin uint32
	Words  []uint32
	Labels map[string]uint32
}

// SizeBytes reports the image size in bytes.
func (p *Program) SizeBytes() uint32 { return uint32(len(p.Words)) * 4 }

// LoadInto writes the image into memory at its origin.
func (p *Program) LoadInto(m *Memory) {
	for i, w := range p.Words {
		m.Poke(p.Origin+uint32(i)*4, w)
	}
}

// Entry returns the byte address of a label.
func (p *Program) Entry(label string) (uint32, error) {
	a, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("cpu: unknown label %q", label)
	}
	return a, nil
}

// Assemble translates assembly text into a Program. The syntax is
// line-oriented:
//
//	; or # start comments
//	.org ADDR           set the load origin (once, before any code)
//	.word VALUE         emit a literal word
//	label:              define a label (may share a line with code)
//	op operands         one instruction
//
// Registers are r0–r15 with aliases fp (r13), lr (r14) and sp (r15).
// Immediates are decimal or 0x-hex, optionally negative. Branch and jump
// targets are labels (PC-relative offsets are computed). The pseudo-
// instruction `li rd, imm32` expands to movi+movhi.
func Assemble(src string) (*Program, error) {
	a := &assembler{labels: make(map[string]uint32)}
	// Pass 1: lay out, collect labels.
	if err := a.pass(src, false); err != nil {
		return nil, err
	}
	// Pass 2: emit with resolved labels.
	a.words = a.words[:0]
	a.pc = a.origin
	a.resolving = true
	if err := a.pass(src, true); err != nil {
		return nil, err
	}
	return &Program{Origin: a.origin, Words: a.words, Labels: a.labels}, nil
}

// MustAssemble is Assemble for programs embedded in code; it panics on
// error, which indicates a bug in the embedded source.
func MustAssemble(src string) *Program {
	p, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return p
}

type assembler struct {
	origin    uint32
	originSet bool
	pc        uint32
	words     []uint32
	labels    map[string]uint32
	line      int
	// resolving is true during pass 2, when every label must exist.
	resolving bool
}

func (a *assembler) errf(format string, args ...any) error {
	return fmt.Errorf("cpu: asm line %d: %s", a.line, fmt.Sprintf(format, args...))
}

func (a *assembler) pass(src string, emit bool) error {
	a.line = 0
	for _, raw := range strings.Split(src, "\n") {
		a.line++
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Labels, possibly several, possibly followed by code.
		for {
			if i := strings.Index(line, ":"); i >= 0 && isIdent(strings.TrimSpace(line[:i])) {
				label := strings.TrimSpace(line[:i])
				if !emit {
					if _, dup := a.labels[label]; dup {
						return a.errf("duplicate label %q", label)
					}
					a.labels[label] = a.pc
				}
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		if err := a.statement(line, emit); err != nil {
			return err
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (a *assembler) emitWord(w uint32, emit bool) {
	if emit {
		a.words = append(a.words, w)
	}
	a.pc += 4
}

func (a *assembler) statement(line string, emit bool) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	operands := splitOperands(rest)

	switch mnemonic {
	case ".org":
		if len(operands) != 1 {
			return a.errf(".org needs an address")
		}
		if len(a.words) > 0 || (a.pc != a.origin) {
			return a.errf(".org after code")
		}
		v, err := a.immediate(operands[0], 0xFFFFFFFF)
		if err != nil {
			return err
		}
		if v%4 != 0 {
			return a.errf(".org %#x not word-aligned", v)
		}
		if a.originSet && uint32(v) != a.origin {
			return a.errf("conflicting .org")
		}
		a.origin, a.originSet = uint32(v), true
		a.pc = a.origin
		return nil
	case ".word":
		if len(operands) != 1 {
			return a.errf(".word needs a value")
		}
		v, err := a.immediate(operands[0], 0xFFFFFFFF)
		if err != nil {
			return err
		}
		a.emitWord(uint32(v), emit)
		return nil
	case "li":
		if len(operands) != 2 {
			return a.errf("li needs rd, imm32")
		}
		rd, err := a.register(operands[0])
		if err != nil {
			return err
		}
		v, err := a.immediate(operands[1], 0xFFFFFFFF)
		if err != nil {
			return err
		}
		u := uint32(v)
		a.emitWord(Encode(OpMovi, rd, 0, 0, int32(int16(uint16(u)))), emit)
		a.emitWord(Encode(OpMovhi, rd, 0, 0, int32(int16(uint16(u>>16)))), emit)
		return nil
	}

	op, ok := mnemonicTable[mnemonic]
	if !ok {
		return a.errf("unknown mnemonic %q", mnemonic)
	}
	info := opTable[op]
	need := operandCount(info.format)
	if len(operands) != need {
		return a.errf("%s needs %d operands, got %d", mnemonic, need, len(operands))
	}
	var rd, ra, rb int
	var imm int32
	var err error
	switch info.format {
	case fmtNone:
	case fmtRegImm:
		if rd, err = a.register(operands[0]); err != nil {
			return err
		}
		v, err := a.immediate(operands[1], 0xFFFF)
		if err != nil {
			return err
		}
		imm = int32(v)
	case fmtRegReg:
		if rd, err = a.register(operands[0]); err != nil {
			return err
		}
		if ra, err = a.register(operands[1]); err != nil {
			return err
		}
	case fmtThreeReg:
		if rd, err = a.register(operands[0]); err != nil {
			return err
		}
		if ra, err = a.register(operands[1]); err != nil {
			return err
		}
		if rb, err = a.register(operands[2]); err != nil {
			return err
		}
	case fmtRegRegImm:
		if rd, err = a.register(operands[0]); err != nil {
			return err
		}
		if ra, err = a.register(operands[1]); err != nil {
			return err
		}
		v, err := a.immediate(operands[2], 0xFFFF)
		if err != nil {
			return err
		}
		imm = int32(v)
	case fmtMem:
		if rd, err = a.register(operands[0]); err != nil {
			return err
		}
		if ra, imm, err = a.memOperand(operands[1]); err != nil {
			return err
		}
	case fmtCmpRR:
		if ra, err = a.register(operands[0]); err != nil {
			return err
		}
		if rb, err = a.register(operands[1]); err != nil {
			return err
		}
	case fmtCmpRI:
		if ra, err = a.register(operands[0]); err != nil {
			return err
		}
		v, err := a.immediate(operands[1], 0xFFFF)
		if err != nil {
			return err
		}
		imm = int32(v)
	case fmtBranch:
		if imm, err = a.branchTarget(operands[0]); err != nil {
			return err
		}
	case fmtJumpReg:
		if ra, err = a.register(operands[0]); err != nil {
			return err
		}
	case fmtOneReg:
		if rd, err = a.register(operands[0]); err != nil {
			return err
		}
	case fmtImmOnly:
		v, err := a.immediate(operands[0], 0xFFFF)
		if err != nil {
			return err
		}
		imm = int32(v)
	}
	a.emitWord(Encode(op, rd, ra, rb, imm), emit)
	return nil
}

var mnemonicTable = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opSpecs))
	//nlft:allow nodeterminism key-for-key map inversion; insertion order cannot affect the resulting table
	for op, info := range opSpecs {
		m[info.name] = op
	}
	return m
}()

func operandCount(f opFormat) int {
	switch f {
	case fmtNone:
		return 0
	case fmtBranch, fmtJumpReg, fmtOneReg, fmtImmOnly:
		return 1
	case fmtRegImm, fmtRegReg, fmtMem, fmtCmpRR, fmtCmpRI:
		return 2
	case fmtThreeReg, fmtRegRegImm:
		return 3
	default:
		return 0
	}
}

func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		out = append(out, strings.TrimSpace(p))
	}
	return out
}

var regAliases = map[string]int{"fp": RegFP, "lr": RegLR, "sp": RegSP}

func (a *assembler) register(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := regAliases[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return n, nil
		}
	}
	return 0, a.errf("bad register %q", s)
}

// immediate parses a number (or, for full-width immediates, a label).
// maxMag is the magnitude mask: 0xFFFF for 16-bit fields (value must fit
// in int16 or uint16), 0xFFFFFFFF for 32-bit contexts.
func (a *assembler) immediate(s string, maxMag uint64) (int64, error) {
	s = strings.TrimSpace(s)
	if addr, ok := a.labels[s]; ok {
		return int64(addr), nil
	}
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		if isIdent(s) {
			if a.resolving {
				return 0, a.errf("undefined label %q", s)
			}
			// Unknown label in pass 1: sized as 0, resolved in pass 2.
			return 0, nil
		}
		return 0, a.errf("bad immediate %q", s)
	}
	if maxMag == 0xFFFF {
		if v < -(1<<15) || v > (1<<16)-1 {
			return 0, a.errf("immediate %d does not fit in 16 bits", v)
		}
	} else if v < -(1<<31) || v > (1<<32)-1 {
		return 0, a.errf("immediate %d does not fit in 32 bits", v)
	}
	return v, nil
}

// memOperand parses "[ra+imm]", "[ra-imm]" or "[ra]".
func (a *assembler) memOperand(s string) (int, int32, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, a.errf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := a.register(inner)
		return r, 0, err
	}
	r, err := a.register(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	v, err := a.immediate(inner[sep:], 0xFFFF)
	if err != nil {
		return 0, 0, err
	}
	return r, int32(v), nil
}

// branchTarget resolves a label (or numeric word offset) to a PC-relative
// word offset from the current instruction.
func (a *assembler) branchTarget(s string) (int32, error) {
	s = strings.TrimSpace(s)
	if addr, ok := a.labels[s]; ok {
		off := (int64(addr) - int64(a.pc)) / 4
		if off < -(1<<15) || off >= 1<<15 {
			return 0, a.errf("branch to %q out of range (%d words)", s, off)
		}
		return int32(off), nil
	}
	if isIdent(s) {
		if a.resolving {
			return 0, a.errf("undefined label %q", s)
		}
		// Unknown forward label in pass 1: sized as 0, resolved in pass 2.
		return 0, nil
	}
	v, err := strconv.ParseInt(s, 0, 32)
	if err != nil {
		return 0, a.errf("bad branch target %q", s)
	}
	return int32(v), nil
}
