package bbw

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/ttnet"
)

// NodeKind selects the node-level fault-tolerance policy for every node
// in the system (the paper's comparison axis).
type NodeKind int

// Node kinds.
const (
	// NLFTNodes run the light-weight NLFT kernel (TEM on critical tasks).
	NLFTNodes NodeKind = iota + 1
	// FSNodes run conventional fail-silent kernels: single execution,
	// any detected error silences the node until restart.
	FSNodes
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case NLFTNodes:
		return "NLFT"
	case FSNodes:
		return "FS"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Node names in the architecture.
var (
	// CUNames are the duplex central-unit nodes.
	CUNames = []string{"cu1", "cu2"}
	// WheelNames are the four simplex wheel nodes (FL, FR, RL, RR).
	WheelNames = []string{"wn1", "wn2", "wn3", "wn4"}
)

// System is the assembled brake-by-wire architecture on one simulator.
type System struct {
	Sim     *des.Simulator
	Bus     *ttnet.Bus
	Vehicle *Vehicle
	CUs     [2]*node.HostedNode
	Wheels  [4]*node.HostedNode
	// PedalFn supplies the pedal position (0..1000) over time.
	PedalFn func(t des.Time) uint32
	// Counters per node name, accumulated across kernel restarts.
	Counters map[string]*Counters

	kind        NodeKind
	taskPeriod  des.Time
	stepPeriod  des.Time
	stopAt      des.Time
	stopped     bool
	sampleEvery des.Time
	samples     []Sample
	// stepFn/sampleFn are the self-rescheduling physics and trace
	// callbacks, bound once so the periodic re-arming allocates nothing.
	stepFn   func()
	sampleFn func()
}

// Counters aggregates release outcomes for one node across restarts.
type Counters struct {
	OK, Masked, Omissions uint64
	ErrorsDetected        uint64
}

// Sample is one point of the recorded braking trace.
type Sample struct {
	T        des.Time
	SpeedMS  float64
	Distance float64
	// Forces are the per-wheel actuator forces at the sample instant.
	Forces [4]float64
}

// SystemConfig parameterizes the assembly.
type SystemConfig struct {
	// Kind selects NLFT or FS nodes. Default NLFTNodes.
	Kind NodeKind
	// InitialSpeed is the vehicle speed in m/s. Default 30 (108 km/h).
	InitialSpeed float64
	// MassKg is the vehicle mass. Default 1500.
	MassKg float64
	// TaskPeriod is the control task period. Default 5 ms.
	TaskPeriod des.Time
	// RestartDelay is the node restart time. Default 3 s (§3.3).
	RestartDelay des.Time
	// SampleEvery records a trace sample at this interval. Default 50 ms.
	SampleEvery des.Time
	// PedalFn overrides the pedal profile; default is full braking from
	// 100 ms.
	PedalFn func(t des.Time) uint32
	// Obs, when non-nil, collects telemetry from every node kernel (each
	// under its node-name label, surviving restarts) and from the shared
	// simulator.
	Obs *obs.Collector
}

func (c *SystemConfig) applyDefaults() {
	if c.Kind == 0 {
		c.Kind = NLFTNodes
	}
	if c.InitialSpeed == 0 {
		c.InitialSpeed = 30
	}
	if c.MassKg == 0 {
		c.MassKg = 1500
	}
	if c.TaskPeriod == 0 {
		c.TaskPeriod = 5 * des.Millisecond
	}
	if c.RestartDelay == 0 {
		c.RestartDelay = 3 * des.Second
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 50 * des.Millisecond
	}
	if c.PedalFn == nil {
		c.PedalFn = func(t des.Time) uint32 {
			if t < 100*des.Millisecond {
				return 0
			}
			return 1000
		}
	}
}

// Node memory layout shared by all node kernels (each node has its own
// memory, so the addresses may coincide).
const (
	nodeStack      = 0xC000
	nodeStackWords = 256
)

// NewSystem assembles the architecture of Figure 4.
func NewSystem(cfg SystemConfig) (*System, error) {
	cfg.applyDefaults()
	sim := des.New()
	if cfg.Obs != nil {
		obs.AttachSimulator(cfg.Obs.Labeled("sim"), sim)
	}
	bus, err := ttnet.NewBus(sim, ttnet.Config{
		StaticSlots: 6,
		SlotLen:     des.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	s := &System{
		Sim:         sim,
		Bus:         bus,
		Vehicle:     NewVehicle(cfg.MassKg, cfg.InitialSpeed),
		PedalFn:     cfg.PedalFn,
		Counters:    make(map[string]*Counters),
		kind:        cfg.Kind,
		taskPeriod:  cfg.TaskPeriod,
		stepPeriod:  5 * des.Millisecond,
		sampleEvery: cfg.SampleEvery,
	}

	failSilentOnError := cfg.Kind == FSNodes

	factory := func(name string, prog *cpu.Program, inPorts, outPorts []uint32) func(*des.Simulator, kernel.Env) (*kernel.Kernel, error) {
		counters := &Counters{}
		s.Counters[name] = counters
		return func(sim *des.Simulator, env kernel.Env) (*kernel.Kernel, error) {
			k := kernel.New(sim, env, kernel.Config{
				UseMMU:            true,
				ECC:               true,
				FailSilentOnError: failSilentOnError,
				Obs:               cfg.Obs.Labeled(name),
			})
			spec := kernel.TaskSpec{
				Name:        name + "-ctrl",
				Program:     prog,
				Entry:       "start",
				Period:      cfg.TaskPeriod,
				Deadline:    cfg.TaskPeriod,
				Priority:    10,
				Criticality: kernel.Critical,
				Budget:      cfg.TaskPeriod / 4,
				InputPorts:  inPorts,
				OutputPorts: outPorts,
				StackStart:  nodeStack,
				StackWords:  nodeStackWords,
			}
			if err := k.AddTask(spec); err != nil {
				return nil, err
			}
			k.OnOutcome = func(info kernel.OutcomeInfo) {
				switch info.Outcome {
				case kernel.OutcomeOK:
					counters.OK++
				case kernel.OutcomeMasked:
					counters.Masked++
					counters.ErrorsDetected += uint64(info.ErrorsDetected)
				case kernel.OutcomeOmission:
					counters.Omissions++
					counters.ErrorsDetected += uint64(info.ErrorsDetected)
				}
			}
			return k, nil
		}
	}

	cuProg := CUProgram()
	for i, name := range CUNames {
		h, err := node.NewHosted(sim, bus, node.HostedConfig{
			Name:         name,
			BuildKernel:  factory(name, cuProg, []uint32{CUPortPedal, CUPortWheelMask}, []uint32{2, 3, 4, 5}),
			Slot:         i,
			TxPorts:      []uint32{2, 3, 4, 5},
			RestartDelay: cfg.RestartDelay,
		})
		if err != nil {
			return nil, err
		}
		s.CUs[i] = h
		// Start optimistic: all wheels alive.
		h.SetLocalInput(CUPortWheelMask, 0xF)
	}

	wheelProg := WheelProgram()
	for i, name := range WheelNames {
		// Route word i of each CU frame into this wheel's command ports.
		rxCU1 := make([]uint32, 4)
		rxCU2 := make([]uint32, 4)
		for w := 0; w < 4; w++ {
			rxCU1[w] = node.RxIgnore
			rxCU2[w] = node.RxIgnore
		}
		rxCU1[i] = WheelPortCmdA
		rxCU2[i] = WheelPortCmdB
		h, err := node.NewHosted(sim, bus, node.HostedConfig{
			Name: name,
			BuildKernel: factory(name, wheelProg,
				[]uint32{WheelPortCmdA, WheelPortCmdB, WheelPortCUMask, WheelPortSpeed, WheelPortVehSpeed},
				[]uint32{WheelPortActuator}),
			Slot:    2 + i,
			TxPorts: []uint32{WheelPortActuator},
			RxMap: map[ttnet.NodeID][]uint32{
				ttnet.NodeID(CUNames[0]): rxCU1,
				ttnet.NodeID(CUNames[1]): rxCU2,
			},
			RestartDelay: cfg.RestartDelay,
		})
		if err != nil {
			return nil, err
		}
		s.Wheels[i] = h
		h.SetLocalInput(WheelPortCUMask, 0x3)
	}

	// Membership monitor: feed alive masks back into the nodes, the way
	// the paper's system level consumes the TDMA membership service.
	if _, err := bus.Attach("monitor", nil, nil, func(cycle uint64, tx map[ttnet.NodeID]bool) {
		wheelMask := uint32(0)
		for i, name := range WheelNames {
			if tx[ttnet.NodeID(name)] {
				wheelMask |= 1 << i
			}
		}
		cuMask := uint32(0)
		for i, name := range CUNames {
			if tx[ttnet.NodeID(name)] {
				cuMask |= 1 << i
			}
		}
		for _, cu := range s.CUs {
			cu.SetLocalInput(CUPortWheelMask, wheelMask)
		}
		for _, wheel := range s.Wheels {
			wheel.SetLocalInput(WheelPortCUMask, cuMask)
		}
	}); err != nil {
		return nil, err
	}

	if err := bus.Start(); err != nil {
		return nil, err
	}
	s.scheduleStep()
	s.scheduleSample()
	return s, nil
}

// Node returns a hosted node by name.
func (s *System) Node(name string) (*node.HostedNode, error) {
	for i, n := range CUNames {
		if n == name {
			return s.CUs[i], nil
		}
	}
	for i, n := range WheelNames {
		if n == name {
			return s.Wheels[i], nil
		}
	}
	return nil, fmt.Errorf("bbw: unknown node %q", name)
}

// scheduleStep drives the physics and sensor refresh.
//
//nlft:noalloc
func (s *System) scheduleStep() {
	if s.stepFn == nil {
		//nlft:allow noalloc bound once on the first call and reused every period thereafter
		s.stepFn = func() {
			s.step()
			s.scheduleStep()
		}
	}
	s.Sim.Schedule(s.Sim.Now()+s.stepPeriod, des.PrioObserver, s.stepFn)
}

// step advances the vehicle and refreshes every node's sensors.
//
//nlft:noalloc
func (s *System) step() {
	var forces [4]float64
	for i, wheel := range s.Wheels {
		if wheel.Down() {
			continue // a silent wheel node applies no brake
		}
		forces[i] = clamp(float64(wheel.LocalOutput(WheelPortActuator)), 0, 2*MaxBrakeForcePerWheel*2)
	}
	s.Vehicle.Step(s.stepPeriod.Seconds(), forces)
	if s.Vehicle.Stopped() && !s.stopped {
		s.stopped = true
		s.stopAt = s.Sim.Now()
	}

	pedal := s.PedalFn(s.Sim.Now())
	for _, cu := range s.CUs {
		cu.SetLocalInput(CUPortPedal, pedal)
	}
	vehMM := uint32(s.Vehicle.Speed * 1000)
	for i, wheel := range s.Wheels {
		wheel.SetLocalInput(WheelPortSpeed, uint32(s.Vehicle.Wheels[i]*1000))
		wheel.SetLocalInput(WheelPortVehSpeed, vehMM)
	}
}

// scheduleSample records the braking trace.
//
//nlft:noalloc
func (s *System) scheduleSample() {
	if s.sampleFn == nil {
		//nlft:allow noalloc bound once on the first call and reused every period thereafter
		s.sampleFn = func() {
			var forces [4]float64
			for i, wheel := range s.Wheels {
				if !wheel.Down() {
					forces[i] = float64(wheel.LocalOutput(WheelPortActuator))
				}
			}
			s.samples = append(s.samples, Sample{
				T:        s.Sim.Now(),
				SpeedMS:  s.Vehicle.Speed,
				Distance: s.Vehicle.Distance,
				Forces:   forces,
			})
			s.scheduleSample()
		}
	}
	s.Sim.Schedule(s.Sim.Now()+s.sampleEvery, des.PrioObserver, s.sampleFn)
}

// Stopped reports whether and when the vehicle stopped.
func (s *System) Stopped() (bool, des.Time) { return s.stopped, s.stopAt }

// Samples returns the recorded trace.
func (s *System) Samples() []Sample { return s.samples }
