// Package bbw implements the paper's motivating application: a
// distributed brake-by-wire system (Figure 4). A duplex central unit
// reads the brake pedal and distributes brake force to four simplex
// wheel nodes over a time-triggered bus; each wheel node runs a slip
// controller and drives its brake actuator. Every node is a full
// simulated NLFT (or fail-silent) kernel from internal/kernel, attached
// through internal/node to the internal/ttnet bus, braking a simple
// longitudinal vehicle model.
//
// The package exists to exercise the whole stack end to end: injected
// faults in a wheel-node CPU are masked by TEM mid-braking, a killed
// node degrades braking until it reintegrates, and the stopping distance
// quantifies the system-level effect.
package bbw

import "math"

// Physical constants of the vehicle model.
const (
	// Gravity in m/s².
	gravity = 9.81
	// wheelTau is the wheel-speed relaxation time constant (s): how fast
	// a free-rolling wheel re-synchronizes with the vehicle.
	wheelTau = 0.1
	// brakeGain converts brake force (N) at the wheel into wheel-speed
	// deceleration (m/s² per N), folding in wheel inertia.
	brakeGain = 1.0 / 75.0
)

// Vehicle is a longitudinal braking model with four wheels and a
// slip-dependent tire friction curve. All speeds are m/s.
type Vehicle struct {
	// Mass is the vehicle mass in kg.
	Mass float64
	// Speed is the vehicle's longitudinal speed.
	Speed float64
	// Wheels holds the wheel circumferential speeds.
	Wheels [4]float64
	// Distance is the travelled distance since start (m).
	Distance float64
}

// NewVehicle returns a vehicle rolling at the given speed.
func NewVehicle(massKg, speedMS float64) *Vehicle {
	v := &Vehicle{Mass: massKg, Speed: speedMS}
	for i := range v.Wheels {
		v.Wheels[i] = speedMS
	}
	return v
}

// friction is the tire friction coefficient as a function of slip
// (a simplified Pacejka-style curve): rises to the peak near 15% slip,
// then falls toward the locked-wheel value — which is what makes wheel
// lock lengthen stopping distance and gives the wheel nodes' slip
// controller its purpose.
func friction(slip float64) float64 {
	const (
		peakSlip = 0.15
		muPeak   = 1.0
		muLock   = 0.7
	)
	switch {
	case slip <= 0:
		return 0
	case slip < peakSlip:
		return muPeak * slip / peakSlip
	case slip >= 1:
		return muLock
	default:
		// Linear fall-off from the peak to the locked value.
		return muPeak - (muPeak-muLock)*(slip-peakSlip)/(1-peakSlip)
	}
}

// Slip returns wheel i's slip ratio in [0, 1].
func (v *Vehicle) Slip(i int) float64 {
	if v.Speed <= 0.01 {
		return 0
	}
	s := (v.Speed - v.Wheels[i]) / v.Speed
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Step advances the model by dt seconds under the given per-wheel brake
// forces (N, ≥ 0).
func (v *Vehicle) Step(dt float64, brakeForces [4]float64) {
	if v.Speed <= 0 {
		v.Speed = 0
		return
	}
	normalPerWheel := v.Mass * gravity / 4
	totalRoad := 0.0
	for i := range v.Wheels {
		slip := v.Slip(i)
		road := friction(slip) * normalPerWheel
		totalRoad += road
		// Wheel dynamics: the road accelerates the wheel back toward the
		// vehicle speed; the brake decelerates it.
		relax := (v.Speed - v.Wheels[i]) / wheelTau
		wdot := relax - brakeForces[i]*brakeGain
		v.Wheels[i] += wdot * dt
		if v.Wheels[i] < 0 {
			v.Wheels[i] = 0
		}
		if v.Wheels[i] > v.Speed {
			v.Wheels[i] = v.Speed
		}
	}
	decel := totalRoad / v.Mass
	newSpeed := v.Speed - decel*dt
	if newSpeed < 0 {
		newSpeed = 0
	}
	v.Distance += (v.Speed + newSpeed) / 2 * dt
	v.Speed = newSpeed
}

// Stopped reports whether the vehicle has come to rest.
func (v *Vehicle) Stopped() bool { return v.Speed <= 0.01 }

// IdealStoppingDistance returns the physics bound for stopping from
// speed v0 at peak friction: v0²/(2·μ_peak·g).
func IdealStoppingDistance(v0 float64) float64 {
	return v0 * v0 / (2 * 1.0 * gravity)
}

// LockedStoppingDistance returns the distance with all wheels locked.
func LockedStoppingDistance(v0 float64) float64 {
	return v0 * v0 / (2 * 0.7 * gravity)
}

// clamp bounds x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, x))
}
