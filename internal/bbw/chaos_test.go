package bbw

import (
	"testing"

	"repro/internal/des"
)

// TestChaosRandomInjections drives the full stack through randomized
// fault storms: random kills and CPU corruptions across all six nodes
// at random instants. The assertions are invariants, not outcomes:
// scenarios complete without error, distances accumulate monotonically,
// forces stay in range, and node accounting stays consistent.
func TestChaosRandomInjections(t *testing.T) {
	names := append(append([]string(nil), CUNames...), WheelNames...)
	rng := des.NewRand(2026)
	for trial := 0; trial < 12; trial++ {
		var inj []Injection
		n := 1 + rng.Intn(5)
		for i := 0; i < n; i++ {
			node := names[rng.Intn(len(names))]
			at := des.Time(rng.Intn(int(4 * des.Second)))
			switch rng.Intn(4) {
			case 0:
				inj = append(inj, Injection{At: at, Node: node, Kind: InjKill})
			case 1:
				inj = append(inj, Injection{At: at, Node: node, Kind: InjRegister,
					Reg: 1 + rng.Intn(12), Bit: uint(rng.Intn(32))})
			case 2:
				inj = append(inj, Injection{At: at, Node: node, Kind: InjPC,
					Bit: uint(rng.Intn(20))})
			default:
				inj = append(inj, Injection{At: at, Node: node, Kind: InjALU,
					Mask: 1 << uint(rng.Intn(32))})
			}
		}
		res, err := Run(Scenario{
			Config:     SystemConfig{Kind: NLFTNodes},
			Duration:   6 * des.Second,
			Injections: inj,
		})
		if err != nil {
			t.Fatalf("trial %d (%v): %v", trial, inj, err)
		}
		// Invariants.
		prevDist := -1.0
		for _, s := range res.Samples {
			if s.Distance < prevDist {
				t.Fatalf("trial %d: distance went backwards", trial)
			}
			prevDist = s.Distance
			for w, f := range s.Forces {
				if f < 0 || f > 4*MaxBrakeForcePerWheel {
					t.Fatalf("trial %d: wheel %d force %v out of range", trial, w, f)
				}
			}
			if s.SpeedMS < 0 || s.SpeedMS > 31 {
				t.Fatalf("trial %d: speed %v out of range", trial, s.SpeedMS)
			}
		}
		if res.StoppingDistance < 0 || res.StoppingDistance > 200 {
			t.Fatalf("trial %d: distance %v absurd", trial, res.StoppingDistance)
		}
		for _, nr := range res.Nodes {
			if nr.OK == 0 && nr.Failures == 0 && nr.Omissions == 0 {
				t.Errorf("trial %d: node %s did nothing at all", trial, nr.Name)
			}
		}
	}
}

// TestChaosFSNodesAlsoSurvive runs the same storm against the FS
// baseline: no panics, consistent accounting (FS nodes mask nothing).
func TestChaosFSNodesAlsoSurvive(t *testing.T) {
	rng := des.NewRand(7)
	names := append(append([]string(nil), CUNames...), WheelNames...)
	for trial := 0; trial < 6; trial++ {
		var inj []Injection
		for i := 0; i < 3; i++ {
			inj = append(inj, Injection{
				At:   des.Time(rng.Intn(int(3 * des.Second))),
				Node: names[rng.Intn(len(names))],
				Kind: InjPC,
				Bit:  uint(rng.Intn(16)),
			})
		}
		res, err := Run(Scenario{
			Config:     SystemConfig{Kind: FSNodes},
			Duration:   6 * des.Second,
			Injections: inj,
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.TotalMasked() != 0 {
			t.Errorf("trial %d: FS nodes masked %d", trial, res.TotalMasked())
		}
	}
}
