package bbw

// VehicleState is preallocated scratch for Vehicle.Snapshot/Restore: the
// vehicle model is a plain value (mass, speeds, distance), so the
// checkpoint is a struct copy. The pair exists so every layer of the
// stack exposes the same snapshot contract the fork campaign engine
// (internal/fault) builds on.
type VehicleState struct {
	mass     float64
	speed    float64
	wheels   [4]float64
	distance float64
}

// Snapshot captures the vehicle state into st.
//
//nlft:noalloc
func (v *Vehicle) Snapshot(into *VehicleState) {
	into.mass = v.Mass
	into.speed = v.Speed
	into.wheels = v.Wheels
	into.distance = v.Distance
}

// Restore rewinds the vehicle to a state captured with Snapshot.
//
//nlft:noalloc
func (v *Vehicle) Restore(from *VehicleState) {
	v.Mass = from.mass
	v.Speed = from.speed
	v.Wheels = from.wheels
	v.Distance = from.distance
}
