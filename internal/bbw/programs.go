package bbw

import "repro/internal/cpu"

// I/O port assignments for the node programs.
//
// Central-unit nodes:
//
//	in  0: pedal position (0..1000)
//	in  1: wheel-alive mask (bits 0..3, from bus membership)
//	out 2..5: per-wheel brake-force commands (N)
//
// Wheel nodes:
//
//	in  0: command from CU1 (own wheel's word)
//	in  1: command from CU2
//	in  2: CU-alive mask (bit 0 = CU1, bit 1 = CU2)
//	in  3: wheel speed (mm/s)
//	in  4: vehicle speed (mm/s)
//	out 5: actuator brake force (N)
const (
	CUPortPedal     = 0
	CUPortWheelMask = 1
	CUPortCmdBase   = 2

	WheelPortCmdA     = 0
	WheelPortCmdB     = 1
	WheelPortCUMask   = 2
	WheelPortSpeed    = 3
	WheelPortVehSpeed = 4
	WheelPortActuator = 5
)

// MaxBrakeForcePerWheel is the command saturation (N) at full pedal with
// all four wheels alive.
const MaxBrakeForcePerWheel = 3000

// cuSrc is the central-unit task: distribute the requested total brake
// force evenly over the wheels the membership service reports alive —
// the degraded-functionality redistribution of §3.1.
const cuSrc = `
	.org 0x0000
start:
	sig 1
	li r1, 0xFFFF0000
	ld r2, [r1+0]        ; pedal 0..1000
	ld r3, [r1+4]        ; wheel-alive mask
	movi r4, 15
	and r3, r3, r4
	movi r4, 12          ; total force gain: 1000 * 12 = 12000 N
	mul r2, r2, r4
	; popcount of the 4-bit mask
	movi r5, 0
	mov r6, r3
	movi r7, 4
count:
	movi r8, 1
	and r8, r6, r8
	add r5, r5, r8
	movi r8, 1
	shr r6, r6, r8
	addi r7, r7, -1
	cmpi r7, 0
	bgt count
	sig 2
	cmpi r5, 0
	beq zero
	div r2, r2, r5       ; share per alive wheel
	jmp emit
zero:
	movi r2, 0
emit:
	; wheel 0 → port 2 (offset 8)
	movi r9, 1
	and r10, r3, r9
	cmpi r10, 0
	beq w0z
	st r2, [r1+8]
	jmp w1
w0z:
	movi r11, 0
	st r11, [r1+8]
w1:
	movi r9, 2
	and r10, r3, r9
	cmpi r10, 0
	beq w1z
	st r2, [r1+12]
	jmp w2
w1z:
	movi r11, 0
	st r11, [r1+12]
w2:
	movi r9, 4
	and r10, r3, r9
	cmpi r10, 0
	beq w2z
	st r2, [r1+16]
	jmp w3
w2z:
	movi r11, 0
	st r11, [r1+16]
w3:
	movi r9, 8
	and r10, r3, r9
	cmpi r10, 0
	beq w3z
	st r2, [r1+20]
	jmp done
w3z:
	movi r11, 0
	st r11, [r1+20]
done:
	sig 3
	sys 2
`

// wheelSrc is the wheel-node task: select the live central unit's
// command (duplex receiver-side selection), run a bang-bang slip
// controller (release half the force above 20% slip), and drive the
// actuator.
const wheelSrc = `
	.org 0x0000
start:
	sig 1
	li r1, 0xFFFF0000
	ld r2, [r1+0]        ; command from CU1
	ld r3, [r1+4]        ; command from CU2
	ld r4, [r1+8]        ; CU-alive mask
	movi r5, 1
	and r5, r4, r5
	cmpi r5, 0
	bne haveA
	mov r2, r3           ; CU1 silent: take CU2's command
haveA:
	ld r6, [r1+12]       ; wheel speed (mm/s)
	ld r7, [r1+16]       ; vehicle speed (mm/s)
	sig 2
	cmpi r7, 0
	beq apply
	sub r8, r7, r6       ; speed difference
	movi r9, 1000
	mul r8, r8, r9
	div r8, r8, r7       ; slip in permille
	cmpi r8, 200
	ble apply
	movi r9, 2           ; ABS: slip > 20%, release half the force
	div r2, r2, r9
apply:
	st r2, [r1+20]       ; actuator
	sig 3
	sys 2
`

// CUProgram returns the assembled central-unit task.
func CUProgram() *cpu.Program { return cpu.MustAssemble(cuSrc) }

// WheelProgram returns the assembled wheel-node task.
func WheelProgram() *cpu.Program { return cpu.MustAssemble(wheelSrc) }
