package bbw

import (
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestFrictionCurveShape(t *testing.T) {
	if friction(0) != 0 {
		t.Error("μ(0) != 0")
	}
	if friction(0.15) != 1.0 {
		t.Errorf("μ(peak) = %v", friction(0.15))
	}
	if friction(1) != 0.7 {
		t.Errorf("μ(locked) = %v", friction(1))
	}
	if friction(2) != 0.7 {
		t.Errorf("μ(>1) = %v", friction(2))
	}
	if !(friction(0.5) < friction(0.15) && friction(0.5) > friction(1)) {
		t.Error("fall-off not monotone")
	}
	if friction(-0.1) != 0 {
		t.Error("negative slip produced force")
	}
}

func TestVehicleCoastsWithoutBrakes(t *testing.T) {
	v := NewVehicle(1500, 30)
	for i := 0; i < 200; i++ {
		v.Step(0.005, [4]float64{})
	}
	if v.Speed < 29.99 {
		t.Errorf("speed dropped to %v without braking", v.Speed)
	}
	if v.Distance < 29 {
		t.Errorf("distance = %v after 1 s at 30 m/s", v.Distance)
	}
}

func TestVehicleStopsUnderBraking(t *testing.T) {
	v := NewVehicle(1500, 30)
	forces := [4]float64{3000, 3000, 3000, 3000}
	steps := 0
	for !v.Stopped() && steps < 10000 {
		v.Step(0.005, forces)
		steps++
	}
	if !v.Stopped() {
		t.Fatal("vehicle never stopped")
	}
	ideal := IdealStoppingDistance(30)
	locked := LockedStoppingDistance(30)
	if v.Distance < ideal*0.95 {
		t.Errorf("distance %v beats physics bound %v", v.Distance, ideal)
	}
	if v.Distance > locked*1.3 {
		t.Errorf("distance %v far beyond locked-wheel bound %v", v.Distance, locked)
	}
}

func TestVehicleSlipClamped(t *testing.T) {
	check := func(speedRaw, wheelRaw uint8) bool {
		v := NewVehicle(1500, float64(speedRaw)+1)
		v.Wheels[0] = float64(wheelRaw)
		s := v.Slip(0)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestProgramsAssemble(t *testing.T) {
	if CUProgram().SizeBytes() == 0 {
		t.Error("CU program empty")
	}
	if WheelProgram().SizeBytes() == 0 {
		t.Error("wheel program empty")
	}
}

// baselineResult runs a fault-free stop and caches it per node kind.
func baselineResult(t *testing.T, kind NodeKind) *Result {
	t.Helper()
	res, err := Run(Scenario{
		Config:    SystemConfig{Kind: kind},
		Duration:  8 * des.Second,
		StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFaultFreeBrakingNLFT(t *testing.T) {
	res := baselineResult(t, NLFTNodes)
	if !res.Stopped {
		t.Fatalf("vehicle did not stop: final speed %v", res.FinalSpeed)
	}
	ideal := IdealStoppingDistance(30)
	locked := LockedStoppingDistance(30)
	if res.StoppingDistance < ideal*0.95 || res.StoppingDistance > locked*1.5 {
		t.Errorf("stopping distance %v outside [%v, %v]",
			res.StoppingDistance, ideal, locked*1.5)
	}
	for _, n := range res.Nodes {
		if n.Down || n.Failures > 0 {
			t.Errorf("node %s unexpectedly failed", n.Name)
		}
		if n.OK == 0 {
			t.Errorf("node %s committed nothing", n.Name)
		}
		if n.Masked != 0 || n.Omissions != 0 {
			t.Errorf("node %s saw phantom errors: %+v", n.Name, n)
		}
	}
	if len(res.Samples) == 0 {
		t.Error("no trace samples")
	}
}

func TestFaultFreeBrakingFS(t *testing.T) {
	res := baselineResult(t, FSNodes)
	if !res.Stopped {
		t.Fatal("FS system did not stop the vehicle")
	}
	// Fail-silent nodes execute a single copy: same control behaviour in
	// the fault-free case, so distances must agree closely.
	nl := baselineResult(t, NLFTNodes)
	diff := res.StoppingDistance - nl.StoppingDistance
	if diff < -2 || diff > 2 {
		t.Errorf("FS %.2f m vs NLFT %.2f m differ beyond tolerance",
			res.StoppingDistance, nl.StoppingDistance)
	}
}

// midCopyInjection targets wn1's command register in the middle of a
// task copy: the release fires at 500 ms, the context switch costs
// 200 cycles (4 µs at 50 MHz), and the copy runs ~55 cycles, so 4.6 µs
// after the release lands mid-copy while r2 holds the brake command.
func midCopyInjection() Injection {
	return Injection{
		At:   500*des.Millisecond + 4600*des.Nanosecond,
		Node: "wn1",
		Kind: InjRegister,
		Reg:  2,
		Bit:  9,
	}
}

// TestRegisterFaultMaskedMidBraking: a transient register fault in a
// wheel node during braking is masked by TEM; braking is unaffected.
func TestRegisterFaultMaskedMidBraking(t *testing.T) {
	base := baselineResult(t, NLFTNodes)
	res, err := Run(Scenario{
		Config:     SystemConfig{Kind: NLFTNodes},
		Duration:   8 * des.Second,
		Injections: []Injection{midCopyInjection()},
		StopEarly:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("vehicle did not stop")
	}
	if res.TotalMasked() == 0 {
		t.Error("register fault was not masked by TEM")
	}
	wn1, _ := res.NodeReportByName("wn1")
	if wn1.Masked == 0 {
		t.Errorf("wn1 report: %+v", wn1)
	}
	if wn1.Down || wn1.Failures > 0 {
		t.Error("NLFT node failed on a maskable fault")
	}
	diff := res.StoppingDistance - base.StoppingDistance
	if diff < -1 || diff > 1 {
		t.Errorf("masked fault changed stopping distance: %v vs %v",
			res.StoppingDistance, base.StoppingDistance)
	}
}

// TestRegisterFaultOnFSNodeIsSilentlyWrong: the same fault on a
// fail-silent node has no TEM comparison to catch it; nothing is masked
// and no node fails — the wrong value simply goes out (a non-covered
// error, exactly the class §3.2.1 calls dangerous).
func TestRegisterFaultOnFSNodeIsSilentlyWrong(t *testing.T) {
	res, err := Run(Scenario{
		Config:     SystemConfig{Kind: FSNodes},
		Duration:   8 * des.Second,
		Injections: []Injection{midCopyInjection()},
		StopEarly:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalMasked() != 0 {
		t.Error("FS node masked a fault (TEM should be off)")
	}
	wn1, _ := res.NodeReportByName("wn1")
	if wn1.Failures > 0 {
		t.Error("register data fault should escape FS detection, not down the node")
	}
}

// TestKilledCentralUnitToleratedByDuplex: killing CU1 mid-braking leaves
// braking almost unaffected — the wheels switch to CU2's commands.
func TestKilledCentralUnitToleratedByDuplex(t *testing.T) {
	base := baselineResult(t, NLFTNodes)
	res, err := Run(Scenario{
		Config:   SystemConfig{Kind: NLFTNodes},
		Duration: 8 * des.Second,
		Injections: []Injection{
			{At: 300 * des.Millisecond, Node: "cu1", Kind: InjKill},
		},
		StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("vehicle did not stop after CU1 loss")
	}
	cu1, _ := res.NodeReportByName("cu1")
	if cu1.Failures != 1 {
		t.Errorf("cu1 failures = %d", cu1.Failures)
	}
	diff := res.StoppingDistance - base.StoppingDistance
	if diff < -2 || diff > 2 {
		t.Errorf("duplex failover cost %v m (base %v, got %v)",
			diff, base.StoppingDistance, res.StoppingDistance)
	}
}

// TestKilledWheelNodeDegradesBraking: killing a wheel node lengthens the
// stop (degraded functionality, §3.1), but the vehicle still stops and
// the central unit redistributes force to the remaining wheels.
func TestKilledWheelNodeDegradesBraking(t *testing.T) {
	base := baselineResult(t, NLFTNodes)
	res, err := Run(Scenario{
		Config:   SystemConfig{Kind: NLFTNodes},
		Duration: 12 * des.Second,
		Injections: []Injection{
			{At: 300 * des.Millisecond, Node: "wn2", Kind: InjKill},
		},
		StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("vehicle did not stop; final speed %v", res.FinalSpeed)
	}
	if res.StoppingDistance <= base.StoppingDistance {
		t.Errorf("degraded stop %v not longer than baseline %v",
			res.StoppingDistance, base.StoppingDistance)
	}
	// Redistribution: after the kill, surviving wheels should see larger
	// commands than the baseline per-wheel force.
	sawBoost := false
	for _, s := range res.Samples {
		if s.T > time1s() && s.Forces[0] > MaxBrakeForcePerWheel+200 {
			sawBoost = true
			break
		}
	}
	if !sawBoost {
		t.Error("no force redistribution observed on surviving wheels")
	}
}

func time1s() des.Time { return des.Second }

// TestScenarioValidation covers the error paths.
func TestScenarioValidation(t *testing.T) {
	if _, err := Run(Scenario{
		Config:     SystemConfig{},
		Injections: []Injection{{Node: "nope", Kind: InjKill}},
	}); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := Run(Scenario{
		Config:     SystemConfig{},
		Duration:   des.Second,
		Injections: []Injection{{At: 2 * des.Second, Node: "cu1", Kind: InjKill}},
	}); err == nil {
		t.Error("out-of-window injection accepted")
	}
}

func TestSystemNodeLookup(t *testing.T) {
	sys, err := NewSystem(SystemConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range append(append([]string(nil), CUNames...), WheelNames...) {
		if _, err := sys.Node(name); err != nil {
			t.Errorf("Node(%s): %v", name, err)
		}
	}
	if _, err := sys.Node("bogus"); err == nil {
		t.Error("bogus node accepted")
	}
}

func TestKindStrings(t *testing.T) {
	if NLFTNodes.String() != "NLFT" || FSNodes.String() != "FS" {
		t.Error("kind strings")
	}
	for _, k := range []InjKind{InjKill, InjRegister, InjPC, InjALU} {
		if k.String() == "" {
			t.Error("unnamed injection kind")
		}
	}
}

func BenchmarkBrakingScenario(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(Scenario{
			Config:    SystemConfig{Kind: NLFTNodes},
			Duration:  8 * des.Second,
			StopEarly: true,
		})
		if err != nil || !res.Stopped {
			b.Fatal("scenario failed")
		}
	}
}

// TestPartialBrakingNoABS: at 30% pedal the wheels stay near the
// friction peak without slipping past 20%, so the slip controller never
// halves the command — the bang-bang ABS only engages under hard
// braking at lower speeds.
func TestPartialBrakingNoABS(t *testing.T) {
	res, err := Run(Scenario{
		Config: SystemConfig{
			Kind: NLFTNodes,
			PedalFn: func(at des.Time) uint32 {
				if at < 100*des.Millisecond {
					return 0
				}
				return 300 // 30% pedal
			},
		},
		Duration:  20 * des.Second,
		StopEarly: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatalf("vehicle did not stop from partial braking: %v m/s", res.FinalSpeed)
	}
	// Commanded per-wheel force is 300·12/4 = 900 N; while the vehicle is
	// fast the slip stays low, so the ABS halving to 450 must not appear.
	// (Near standstill the slip ratio (v−ω)/v legitimately rises and the
	// controller correctly releases — that region is excluded.)
	for _, s := range res.Samples {
		if s.SpeedMS < 10 {
			continue
		}
		for w, f := range s.Forces {
			if f > 0 && f < 899 {
				t.Fatalf("ABS engaged during gentle braking: wheel %d force %v at %v",
					w, f, s.T)
			}
		}
	}
	// Gentle braking stops much longer than a full stop.
	full := baselineResult(t, NLFTNodes)
	if res.StoppingDistance < full.StoppingDistance*1.5 {
		t.Errorf("partial braking distance %v vs full %v",
			res.StoppingDistance, full.StoppingDistance)
	}
}
