package bbw

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ttnet"
)

// InjKind selects the fault applied by a scenario injection.
type InjKind int

// Injection kinds.
const (
	// InjKill forces the node's kernel fail-silent (kernel fault).
	InjKill InjKind = iota + 1
	// InjRegister flips a bit of a CPU register on the node.
	InjRegister
	// InjPC flips a bit of the node's program counter.
	InjPC
	// InjALU corrupts the node's next ALU result.
	InjALU
)

// String names the kind.
func (k InjKind) String() string {
	switch k {
	case InjKill:
		return "kill"
	case InjRegister:
		return "register"
	case InjPC:
		return "pc"
	case InjALU:
		return "alu"
	default:
		return fmt.Sprintf("inj(%d)", int(k))
	}
}

// Injection is one scheduled fault in a scenario.
type Injection struct {
	At   des.Time
	Node string
	Kind InjKind
	Reg  int
	Bit  uint
	Mask uint32
}

// Scenario describes one braking experiment.
type Scenario struct {
	// System configuration (node kind, speed, mass, ...).
	Config SystemConfig
	// Duration bounds the simulation.
	Duration des.Time
	// Injections are the faults applied during braking.
	Injections []Injection
	// StopEarly ends the run as soon as the vehicle stands still.
	StopEarly bool
}

// NodeReport summarizes one node after a scenario.
type NodeReport struct {
	Name      string
	Down      bool
	Failures  uint64
	OK        uint64
	Masked    uint64
	Omissions uint64
}

// Result is a completed scenario.
type Result struct {
	Kind             NodeKind
	Stopped          bool
	StopTime         des.Time
	StoppingDistance float64
	FinalSpeed       float64
	Samples          []Sample
	Nodes            []NodeReport
	Bus              ttnet.Stats
}

// Run executes the scenario.
func Run(sc Scenario) (*Result, error) {
	if sc.Duration <= 0 {
		sc.Duration = 10 * des.Second
	}
	sys, err := NewSystem(sc.Config)
	if err != nil {
		return nil, err
	}
	for _, inj := range sc.Injections {
		inj := inj
		n, err := sys.Node(inj.Node)
		if err != nil {
			return nil, err
		}
		if inj.At < 0 || inj.At > sc.Duration {
			return nil, fmt.Errorf("bbw: injection at %v outside scenario", inj.At)
		}
		sys.Sim.Schedule(inj.At, des.PrioInject, func() {
			if n.Down() {
				return
			}
			switch inj.Kind {
			case InjKill:
				n.Kernel().ForceFailSilent("injected kernel fault")
			case InjRegister:
				n.Kernel().Proc().FlipRegister(inj.Reg, inj.Bit)
			case InjPC:
				n.Kernel().Proc().FlipPC(inj.Bit)
			case InjALU:
				n.Kernel().Proc().InjectALUFault(inj.Mask)
			}
		})
	}

	if sc.StopEarly {
		// Poll for standstill at the sampling cadence.
		var watch func()
		watch = func() {
			if stopped, _ := sys.Stopped(); stopped {
				sys.Sim.Stop()
				return
			}
			sys.Sim.Schedule(sys.Sim.Now()+50*des.Millisecond, des.PrioObserver, watch)
		}
		sys.Sim.Schedule(50*des.Millisecond, des.PrioObserver, watch)
	}

	if err := sys.Sim.RunUntil(sc.Duration); err != nil && err != des.ErrStopped {
		return nil, err
	}

	stopped, stopAt := sys.Stopped()
	res := &Result{
		Kind:             sc.Config.Kind,
		Stopped:          stopped,
		StopTime:         stopAt,
		StoppingDistance: sys.Vehicle.Distance,
		FinalSpeed:       sys.Vehicle.Speed,
		Samples:          sys.Samples(),
		Bus:              sys.Bus.Stats(),
	}
	for _, name := range append(append([]string(nil), CUNames...), WheelNames...) {
		n, err := sys.Node(name)
		if err != nil {
			return nil, err
		}
		c := sys.Counters[name]
		res.Nodes = append(res.Nodes, NodeReport{
			Name:      name,
			Down:      n.Down(),
			Failures:  n.Failures,
			OK:        c.OK,
			Masked:    c.Masked,
			Omissions: c.Omissions,
		})
	}
	return res, nil
}

// NodeReportByName finds a node's report.
func (r *Result) NodeReportByName(name string) (NodeReport, bool) {
	for _, n := range r.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return NodeReport{}, false
}

// TotalMasked sums masked releases across all nodes.
func (r *Result) TotalMasked() uint64 {
	var sum uint64
	for _, n := range r.Nodes {
		sum += n.Masked
	}
	return sum
}
