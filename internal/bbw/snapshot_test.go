package bbw

import "testing"

// TestVehicleSnapshotRoundTrip proves restore+step ≡ straight step for
// the vehicle model: two trajectories from the same restored state are
// bit-identical.
func TestVehicleSnapshotRoundTrip(t *testing.T) {
	v := NewVehicle(1500, 30)
	brake := [4]float64{3000, 3000, 2800, 3200}
	for i := 0; i < 50; i++ {
		v.Step(0.001, brake)
	}
	var st VehicleState
	v.Snapshot(&st)
	ref := *v
	for i := 0; i < 200; i++ {
		v.Step(0.001, brake)
	}
	want := *v

	v.Restore(&st)
	if *v != ref {
		t.Fatalf("restore: %+v, want %+v", *v, ref)
	}
	for i := 0; i < 200; i++ {
		v.Step(0.001, brake)
	}
	if *v != want {
		t.Fatalf("replay: %+v, want %+v", *v, want)
	}
}

// TestVehicleSnapshotZeroAlloc gates the vehicle capture/restore.
func TestVehicleSnapshotZeroAlloc(t *testing.T) {
	v := NewVehicle(1500, 30)
	var st VehicleState
	if got := testing.AllocsPerRun(32, func() {
		v.Snapshot(&st)
		v.Restore(&st)
	}); got != 0 {
		t.Errorf("snapshot/restore allocates %v per run, want 0", got)
	}
}
