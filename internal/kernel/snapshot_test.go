package kernel

// In-package tests for the checkpoint half of the fork engine:
// Snapshot/Restore must rewind the complete mutable kernel state, and
// ForwardDigest must be a pure function of that state, so a restored
// kernel replays the exact golden future. The cross-package contract
// (splice classification, convergence cutoff) lives in internal/fault;
// these tests pin the kernel-local invariants directly.

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/des"
)

// checkpointed captures one instant of a run: simulator + kernel state,
// the forward digest, and the environment-visible prefix lengths.
type checkpointed struct {
	at     des.Time
	sim    des.SimState
	kern   KernelState
	digest uint64
	writes int
	events int
}

// buildPreemptive wires the TestPreemption workload: a long burn task
// preempted every 100 µs by a short adder, so most instants catch a
// started job with in-flight context — the deepest Snapshot/jobDigest
// paths.
func buildPreemptive(t *testing.T) (*des.Simulator, *testEnv, *Kernel, *Trace) {
	t.Helper()
	sim, env, k, trace := buildKernel(t, Config{UseMMU: true, ECC: true})
	long := taskABase(t, burnSrc)
	long.Name = "long"
	long.InputPorts = nil
	long.Priority = 1
	long.Budget = 200 * des.Microsecond
	long.Period = 2 * des.Millisecond
	long.Deadline = 2 * des.Millisecond
	if err := k.AddTask(long); err != nil {
		t.Fatal(err)
	}
	short := TaskSpec{
		Name:        "short",
		Program:     cpu.MustAssemble(strings.Replace(adderSrc, ".org 0x0000", ".org 0x1000", 1)),
		Entry:       "start",
		Period:      100 * des.Microsecond,
		Deadline:    100 * des.Microsecond,
		Offset:      30 * des.Microsecond,
		Priority:    9,
		Criticality: Critical,
		Budget:      20 * des.Microsecond,
		InputPorts:  []uint32{0},
		OutputPorts: []uint32{1},
		StackStart:  stackB,
		StackWords:  64,
	}
	env.inputs[0] = 10
	if err := k.AddTask(short); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	return sim, env, k, trace
}

// TestSnapshotRestoreReplay is the golden-replay contract: capture
// checkpoints during a fault-free run, then restore each one and re-run
// to the horizon. Every replay must reproduce the golden run exactly —
// same environment writes, same trace suffix, same final forward digest.
func TestSnapshotRestoreReplay(t *testing.T) {
	const horizon = 2 * des.Millisecond
	sim, env, k, trace := buildPreemptive(t)

	// Checkpoint instants: before the first event, mid-preemption burst,
	// between releases, and deep into the second burn release.
	instants := []des.Time{0, 45 * des.Microsecond, 640 * des.Microsecond, 1200 * des.Microsecond}
	var cps []*checkpointed
	for _, at := range instants {
		if at > 0 {
			if err := sim.RunUntil(at); err != nil {
				t.Fatal(err)
			}
		}
		cp := &checkpointed{at: at, writes: len(env.writes), events: len(trace.Events)}
		sim.Snapshot(&cp.sim)
		k.Snapshot(&cp.kern)
		cp.digest = k.ForwardDigest(des.Event{})
		if cp.kern.Failed() {
			t.Fatalf("checkpoint %v: failed at capture", at)
		}
		cps = append(cps, cp)
	}
	// The committed-slice horizon is monotone over the capture run —
	// the fork engine's checkpoint-selection rule depends on it.
	for i := 1; i < len(cps); i++ {
		if cps[i].kern.CPUBusyUntil() < cps[i-1].kern.CPUBusyUntil() {
			t.Errorf("CPUBusyUntil not monotone: %v then %v",
				cps[i-1].kern.CPUBusyUntil(), cps[i].kern.CPUBusyUntil())
		}
	}

	if err := sim.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	goldenDigest := k.ForwardDigest(des.Event{})
	goldenWrites := append([]portWrite(nil), env.writes...)
	goldenEvents := len(trace.Events)
	if len(goldenWrites) == 0 {
		t.Fatal("golden run produced no writes")
	}

	for _, cp := range cps {
		sim.Restore(&cp.sim)
		k.Restore(&cp.kern)
		if got := k.ForwardDigest(des.Event{}); got != cp.digest {
			t.Errorf("checkpoint %v: digest after restore %#x, want %#x", cp.at, got, cp.digest)
		}
		// The environment is outside the kernel's state boundary; the
		// campaign recorder handles it separately. Rewind it by hand.
		env.writes = env.writes[:cp.writes]
		if err := sim.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		if got := k.ForwardDigest(des.Event{}); got != goldenDigest {
			t.Errorf("checkpoint %v: replay digest %#x, want %#x", cp.at, got, goldenDigest)
		}
		if len(env.writes) != len(goldenWrites) {
			t.Fatalf("checkpoint %v: %d writes, want %d", cp.at, len(env.writes), len(goldenWrites))
		}
		for i, w := range env.writes {
			if w != goldenWrites[i] {
				t.Fatalf("checkpoint %v: write %d = %+v, want %+v", cp.at, i, w, goldenWrites[i])
			}
		}
		if len(trace.Events) != goldenEvents {
			t.Errorf("checkpoint %v: %d trace events, want %d", cp.at, len(trace.Events), goldenEvents)
		}
	}
}

// TestRestoreParksPostCaptureJobs: restoring a checkpoint captured
// before any release must park every job record born after the capture
// on the free list, keeping the pool bounded across forks.
func TestRestoreParksPostCaptureJobs(t *testing.T) {
	const horizon = des.Millisecond
	sim, env, k, _ := buildPreemptive(t)

	var cp checkpointed
	sim.Snapshot(&cp.sim)
	k.Snapshot(&cp.kern) // t=0: no task has a job yet
	cp.digest = k.ForwardDigest(des.Event{})

	if err := sim.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	first := k.ForwardDigest(des.Event{})

	for round := 0; round < 3; round++ {
		sim.Restore(&cp.sim)
		k.Restore(&cp.kern)
		env.writes = env.writes[:0]
		if got := k.ForwardDigest(des.Event{}); got != cp.digest {
			t.Fatalf("round %d: digest after restore %#x, want %#x", round, got, cp.digest)
		}
		if err := sim.RunUntil(horizon); err != nil {
			t.Fatal(err)
		}
		if got := k.ForwardDigest(des.Event{}); got != first {
			t.Errorf("round %d: replay digest %#x, want %#x", round, got, first)
		}
	}
	// Every record allocated across the replays was re-parked: the pool
	// holds exactly what one run needs.
	for _, tc := range k.order {
		if len(tc.allJobs) > 3 {
			t.Errorf("task %s: job pool grew to %d records", tc.spec.Name, len(tc.allJobs))
		}
	}
}

// TestSnapshotCapturesFailure: the fail-silent bit and its digest
// contribution survive a snapshot/restore cycle.
func TestSnapshotCapturesFailure(t *testing.T) {
	sim, _, k, _ := buildPreemptive(t)
	if err := sim.RunUntil(100 * des.Microsecond); err != nil {
		t.Fatal(err)
	}
	var healthy checkpointed
	sim.Snapshot(&healthy.sim)
	k.Snapshot(&healthy.kern)
	healthy.digest = k.ForwardDigest(des.Event{})

	k.ForceFailSilent("test: injected failure")
	var failed KernelState
	k.Snapshot(&failed)
	if !failed.Failed() {
		t.Error("failure not captured")
	}
	failedDigest := k.ForwardDigest(des.Event{})
	if failedDigest == healthy.digest {
		t.Error("failure did not change the forward digest")
	}

	sim.Restore(&healthy.sim)
	k.Restore(&healthy.kern)
	if f, _ := k.Failed(); f {
		t.Error("restore did not clear the failure")
	}
	if got := k.ForwardDigest(des.Event{}); got != healthy.digest {
		t.Errorf("digest after restore %#x, want %#x", got, healthy.digest)
	}

	k.Restore(&failed)
	if f, reason := k.Failed(); !f || !strings.Contains(reason, "injected") {
		t.Errorf("restore of failed state: %v %q", f, reason)
	}
	if got := k.ForwardDigest(des.Event{}); got != failedDigest {
		t.Errorf("digest after failed restore %#x, want %#x", got, failedDigest)
	}
}
