package kernel

import (
	"testing"

	"repro/internal/des"
	"repro/internal/obs"
)

// buildObsKernel wires a kernel with both the legacy trace and an obs
// collector attached.
func buildObsKernel(t *testing.T, cfg Config) (*des.Simulator, *testEnv, *Kernel, *Trace, *obs.Collector) {
	t.Helper()
	col := obs.NewCollector("")
	cfg.Obs = col
	sim, env, k, trace := buildKernel(t, cfg)
	return sim, env, k, trace, col
}

// TestObsMirrorsKernelStats cross-checks the telemetry counters against
// the kernel's own Stats over a fault-free run: the two accountings are
// produced by different code paths and must agree exactly.
func TestObsMirrorsKernelStats(t *testing.T) {
	sim, _, k, trace, col := buildObsKernel(t, Config{})
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(3500 * des.Microsecond); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	reg := col.Registry()
	if st.Releases == 0 {
		t.Fatal("no releases in 3.5 ms")
	}
	if got := reg.CounterTotal("events.release"); got != st.Releases {
		t.Errorf("events.release = %d, want %d", got, st.Releases)
	}
	if got := reg.CounterValue(obs.Key{Name: "kernel.outcomes", Task: "taskA", Mechanism: "ok"}); got != st.OK {
		t.Errorf("kernel.outcomes{ok} = %d, want %d", got, st.OK)
	}
	if got := reg.CounterTotal("kernel.task_cycles"); got != st.TaskCycles {
		t.Errorf("kernel.task_cycles = %d, want %d", got, st.TaskCycles)
	}
	if got := reg.CounterTotal("kernel.kernel_cycles"); got != st.KernelCycles {
		t.Errorf("kernel.kernel_cycles = %d, want %d", got, st.KernelCycles)
	}
	// Two copies per fault-free critical release.
	h := reg.Histogram(obs.Key{Name: "kernel.copy_cycles", Task: "taskA"})
	if h.Count() != 2*st.Releases {
		t.Errorf("copy_cycles samples = %d, want %d", h.Count(), 2*st.Releases)
	}
	if h.Min() == 0 || h.Max() < h.Min() {
		t.Errorf("copy_cycles min/max = %d/%d", h.Min(), h.Max())
	}

	// The obs stream carries every legacy trace record (same kinds, same
	// instants) plus the obs-only dispatch events.
	dispatches := 0
	for _, e := range col.Events() {
		if e.Kind == obs.KindDispatch {
			dispatches++
		}
	}
	if got := len(col.Events()) - dispatches; got != len(trace.Events) {
		t.Errorf("obs stream has %d non-dispatch events, legacy trace %d",
			got, len(trace.Events))
	}
	if dispatches == 0 {
		t.Error("no dispatch events recorded")
	}

	// Release events carry the criticality as detail (the invariant
	// checker keys on it); the legacy trace is unchanged (empty detail).
	for _, e := range col.Events() {
		if e.Kind == obs.KindRelease && e.Detail != "critical" {
			t.Errorf("release event detail = %q, want critical", e.Detail)
		}
	}
	for _, ev := range trace.Events {
		if ev.Kind == TraceRelease && ev.Detail != "" {
			t.Errorf("legacy release detail changed: %q", ev.Detail)
		}
	}
}

// TestObsCountsDetectedErrors corrupts the task state region between
// releases so the data-integrity CRC fires, and checks the detection is
// counted per mechanism in the registry and emitted as a typed event.
func TestObsCountsDetectedErrors(t *testing.T) {
	sim, _, k, _, col := buildObsKernel(t, Config{})
	spec := taskABase(t, adderSrc)
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// After release 0 settles, flip a bit in the committed state region.
	sim.Schedule(500*des.Microsecond, des.PrioInject, func() {
		k.Mem().FlipBit(spec.DataStart, 5)
	})
	if err := sim.RunUntil(1500 * des.Microsecond); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.ErrorsDetected["state-crc"] == 0 {
		t.Fatal("state CRC did not fire; test setup broken")
	}
	reg := col.Registry()
	if got := reg.CounterValue(obs.Key{Name: "kernel.errors_detected", Task: "taskA", Mechanism: "state-crc"}); got != st.ErrorsDetected["state-crc"] {
		t.Errorf("kernel.errors_detected{state-crc} = %d, want %d",
			got, st.ErrorsDetected["state-crc"])
	}
	crcEvents := 0
	for _, e := range col.Events() {
		if e.Kind == obs.KindStateCRCError {
			crcEvents++
		}
	}
	if crcEvents == 0 {
		t.Error("no state-crc-error event emitted")
	}
	// The recovered run must still satisfy the TEM invariants.
	for _, v := range obs.CheckInvariants(col.Events()) {
		t.Errorf("invariant violated after CRC recovery: %v", v)
	}
}

// TestObsNilCollectorIsFreeAndSafe: a kernel without a collector takes
// every telemetry call site through the nil paths.
func TestObsNilCollectorIsSafe(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(2500 * des.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) == 0 {
		t.Error("no outputs committed without a collector")
	}
}
