package kernel

import (
	"fmt"

	"repro/internal/des"
)

// EventKind labels trace records.
type EventKind int

// Trace event kinds.
const (
	TraceRelease EventKind = iota + 1
	TraceCopyStart
	TraceCopyEnd
	TracePreempt
	TraceResume
	TraceErrorDetected
	TraceCompareMatch
	TraceCompareMismatch
	TraceVote
	TraceCommit
	TraceOmission
	TraceTaskShutdown
	TraceNodeFailSilent
	TraceStateCRCError
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case TraceRelease:
		return "release"
	case TraceCopyStart:
		return "copy-start"
	case TraceCopyEnd:
		return "copy-end"
	case TracePreempt:
		return "preempt"
	case TraceResume:
		return "resume"
	case TraceErrorDetected:
		return "error-detected"
	case TraceCompareMatch:
		return "compare-match"
	case TraceCompareMismatch:
		return "compare-mismatch"
	case TraceVote:
		return "vote"
	case TraceCommit:
		return "commit"
	case TraceOmission:
		return "omission"
	case TraceTaskShutdown:
		return "task-shutdown"
	case TraceNodeFailSilent:
		return "node-fail-silent"
	case TraceStateCRCError:
		return "state-crc-error"
	default:
		return fmt.Sprintf("trace(%d)", int(k))
	}
}

// TraceEvent is one kernel trace record.
type TraceEvent struct {
	At     des.Time
	Kind   EventKind
	Task   string
	Copy   int    // copy index, when applicable
	Detail string // mechanism name, vote verdict, etc.
}

// String renders the record.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("[%12v] %-17s %s", e.At, e.Kind, e.Task)
	if e.Copy > 0 {
		s += fmt.Sprintf(" copy=%d", e.Copy)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// Trace collects kernel events, optionally bounded.
type Trace struct {
	Events []TraceEvent
	// Limit caps the number of stored events (0 = unlimited). Beyond the
	// limit new events are dropped and Dropped counts them.
	Limit   int
	Dropped uint64
}

func (t *Trace) add(e TraceEvent) {
	if t == nil {
		return
	}
	if t.Limit > 0 && len(t.Events) >= t.Limit {
		t.Dropped++
		return
	}
	t.Events = append(t.Events, e)
}

// Filter returns the events of the given kinds, preserving order.
func (t *Trace) Filter(kinds ...EventKind) []TraceEvent {
	want := make(map[EventKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []TraceEvent
	for _, e := range t.Events {
		if want[e.Kind] {
			out = append(out, e)
		}
	}
	return out
}

// ForTask returns the events touching the named task.
func (t *Trace) ForTask(name string) []TraceEvent {
	var out []TraceEvent
	for _, e := range t.Events {
		if e.Task == name {
			out = append(out, e)
		}
	}
	return out
}
