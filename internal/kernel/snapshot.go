package kernel

// This file is the kernel half of the checkpoint/fork campaign engine
// (see internal/fault): Snapshot/Restore capture and rewind the complete
// mutable kernel state in place, and ForwardDigest summarizes the
// forward-relevant state so a forked trial can detect that it has
// reconverged with the golden run.
//
// Restore is identity-preserving by construction. All continuation
// callbacks (dispatchFn, the per-job deadline/run/resume/complete/error
// functions, the per-task release functions) close over specific heap
// objects; queued simulator events hold those same closures. A restore
// therefore never replaces a tcb or job record — it copies the captured
// values back into the records that already exist, enumerated through
// k.order and tcb.allJobs, so every bound closure and every rewound
// event handle still points at the right object.

import (
	"repro/internal/cpu"
	"repro/internal/des"
)

// jobRef names a job record as (task index in k.order, job index in
// tcb.allJobs). The zero-value-unfriendly sentinel {-1, -1} means nil.
type jobRef struct {
	task int32
	job  int32
}

var nilJobRef = jobRef{task: -1, job: -1}

// resultSnap captures one TEM copy result by value.
type resultSnap struct {
	writes    []portWrite
	dataImage []uint32
	signature uint32
}

// jobSnap captures one job record's mutable state.
type jobSnap struct {
	release        des.Time
	deadline       des.Time
	state          jobState
	copyIndex      int
	nresults       int
	results        [3]resultSnap
	ctx            cpu.Snapshot
	started        bool
	cyclesUsed     uint64
	inputLatch     []uint32
	outputs        []portWrite
	dataSnapshot   []uint32
	errorsDetected int
	detectedBy     []string
	deadlineEvent  des.Event //nlft:allow eventhandle checkpoint copy of the job's own handle: restored wholesale with the event pool, whose generation rewind revalidates exactly this handle
	chainEvent     des.Event //nlft:allow eventhandle checkpoint copy of the job's own handle: restored wholesale with the event pool, whose generation rewind revalidates exactly this handle
	pendingMech    string
}

// tcbSnap captures one task control block's mutable state. freeJobs
// holds indices into tcb.allJobs.
type tcbSnap struct {
	stateCRC          uint32
	stateCRCSet       bool
	stateImage        []uint32
	alive             bool
	releaseCount      uint64
	lastRelease       des.Time
	hasReleased       bool
	pendingTrigger    bool
	maxCopyCycles     uint64
	consecutiveErrors int
	freeJobs          []int32
	jobs              []jobSnap
}

// KernelState is preallocated scratch for Kernel.Snapshot/Restore. Like
// des.SimState, it is only meaningful for the instance it was captured
// from. The nested slices reach steady-state capacity after the first
// capture and are reused thereafter.
type KernelState struct {
	proc cpu.CPUState
	mem  cpu.MemoryState
	mmu  cpu.MMUState

	kernelBusyUntil des.Time
	cpuBusyUntil    des.Time
	failed          bool
	failReason      string
	dispatchPending bool

	current   jobRef
	procOwner jobRef
	ready     []jobRef

	stats          Stats // ErrorsDetected nil here; map content lives below
	errorsDetected map[string]uint64

	tasks []tcbSnap

	traceEvents  []TraceEvent
	traceDropped uint64
}

// CPUBusyUntil reports the end of the last CPU slice committed before
// the capture. The fork engine's checkpoint-selection rule needs it: a
// checkpoint is only a valid fork base for a fault at time t if no
// already-simulated slice extends past t.
func (st *KernelState) CPUBusyUntil() des.Time { return st.cpuBusyUntil }

// Failed reports whether the node had gone fail-silent at capture time.
func (st *KernelState) Failed() bool { return st.failed }

// jobIndex locates j in t.allJobs. Job pools hold at most a handful of
// records, so the linear scan beats any index structure.
//
//nlft:noalloc
func jobIndex(t *tcb, j *job) int32 {
	for i, cand := range t.allJobs {
		if cand == j {
			return int32(i)
		}
	}
	return -1
}

// refOf resolves a job pointer to its (task, job) reference.
//
//nlft:noalloc
func (k *Kernel) refOf(j *job) jobRef {
	if j == nil {
		return nilJobRef
	}
	for ti, t := range k.order {
		if t == j.task {
			return jobRef{task: int32(ti), job: jobIndex(t, j)}
		}
	}
	return nilJobRef
}

// deref resolves a reference back to the job record, or nil.
//
//nlft:noalloc
func (k *Kernel) deref(r jobRef) *job {
	if r.task < 0 || r.job < 0 {
		return nil
	}
	return k.order[r.task].allJobs[r.job]
}

// Snapshot copies the kernel's complete mutable state — processor,
// memory, MMU, scheduler queues, per-task and per-job TEM state, stats,
// and the trace buffer if one is configured — into st. Static wiring
// (specs, programs, bound callbacks, the observability hookup) is not
// captured; it never changes after Start.
//
//nlft:noalloc
func (k *Kernel) Snapshot(into *KernelState) {
	k.proc.SnapshotState(&into.proc)
	k.mem.Snapshot(&into.mem)
	k.mmu.Snapshot(&into.mmu)

	into.kernelBusyUntil = k.kernelBusyUntil
	into.cpuBusyUntil = k.cpuBusyUntil
	into.failed = k.failed
	into.failReason = k.failReason
	into.dispatchPending = k.dispatchPending

	into.current = k.refOf(k.current)
	into.procOwner = k.refOf(k.procOwner)
	into.ready = into.ready[:0]
	for _, j := range k.ready {
		into.ready = append(into.ready, k.refOf(j))
	}

	into.stats = k.stats
	into.stats.ErrorsDetected = nil
	if into.errorsDetected == nil {
		//nlft:allow noalloc cold first-capture path: the map is retained and cleared+refilled thereafter
		into.errorsDetected = make(map[string]uint64, len(k.stats.ErrorsDetected))
	}
	clear(into.errorsDetected)
	//nlft:allow nodeterminism key-for-key map copy; iteration order cannot affect the copy
	for m, n := range k.stats.ErrorsDetected {
		into.errorsDetected[m] = n
	}

	// Grow the per-task scratch with zero-value appends so existing
	// entries keep their nested slice backings (a wholesale copy or a
	// composite-literal append would discard them).
	for len(into.tasks) < len(k.order) {
		into.tasks = append(into.tasks, tcbSnap{})
	}
	into.tasks = into.tasks[:len(k.order)]
	for ti, t := range k.order {
		ts := &into.tasks[ti]
		ts.stateCRC = t.stateCRC
		ts.stateCRCSet = t.stateCRCSet
		ts.stateImage = append(ts.stateImage[:0], t.stateImage...)
		ts.alive = t.alive
		ts.releaseCount = t.releaseCount
		ts.lastRelease = t.lastRelease
		ts.hasReleased = t.hasReleased
		ts.pendingTrigger = t.pendingTrigger
		ts.maxCopyCycles = t.maxCopyCycles
		ts.consecutiveErrors = t.consecutiveErrors
		ts.freeJobs = ts.freeJobs[:0]
		for _, j := range t.freeJobs {
			ts.freeJobs = append(ts.freeJobs, jobIndex(t, j))
		}
		for len(ts.jobs) < len(t.allJobs) {
			ts.jobs = append(ts.jobs, jobSnap{})
		}
		ts.jobs = ts.jobs[:len(t.allJobs)]
		for ji, j := range t.allJobs {
			js := &ts.jobs[ji]
			js.release = j.release
			js.deadline = j.deadline
			js.state = j.state
			js.copyIndex = j.copyIndex
			js.nresults = j.nresults
			for ri := range j.results {
				r := &j.results[ri]
				rs := &js.results[ri]
				rs.writes = append(rs.writes[:0], r.writes...)
				rs.dataImage = append(rs.dataImage[:0], r.dataImage...)
				rs.signature = r.signature
			}
			js.ctx = j.ctx
			js.started = j.started
			js.cyclesUsed = j.cyclesUsed
			js.inputLatch = append(js.inputLatch[:0], j.inputLatch...)
			js.outputs = append(js.outputs[:0], j.outputs...)
			js.dataSnapshot = append(js.dataSnapshot[:0], j.dataSnapshot...)
			js.errorsDetected = j.errorsDetected
			js.detectedBy = append(js.detectedBy[:0], j.detectedBy...)
			js.deadlineEvent = j.deadlineEvent
			js.chainEvent = j.chainEvent
			js.pendingMech = j.pendingMech
		}
	}

	if k.cfg.Trace != nil {
		into.traceEvents = append(into.traceEvents[:0], k.cfg.Trace.Events...)
		into.traceDropped = k.cfg.Trace.Dropped
	}
}

// Restore rewinds the kernel to a state captured from the same instance
// with Snapshot. Job records allocated after the capture (tcb.allJobs
// grew) are reset to an inert, settled state and parked on the free
// list: nothing in the restored simulator references them (their events
// were rewound away with the event pool), and parking them keeps the
// record pool bounded across many forked trials.
//
//nlft:noalloc
func (k *Kernel) Restore(from *KernelState) {
	k.proc.RestoreState(&from.proc)
	k.mem.Restore(&from.mem)
	k.mmu.Restore(&from.mmu)

	k.kernelBusyUntil = from.kernelBusyUntil
	k.cpuBusyUntil = from.cpuBusyUntil
	k.failed = from.failed
	k.failReason = from.failReason
	k.dispatchPending = from.dispatchPending

	errs := k.stats.ErrorsDetected
	k.stats = from.stats
	k.stats.ErrorsDetected = errs
	clear(errs)
	//nlft:allow nodeterminism key-for-key map refill; iteration order cannot affect the resulting map
	for m, n := range from.errorsDetected {
		errs[m] = n
	}

	for ti, t := range k.order {
		ts := &from.tasks[ti]
		t.stateCRC = ts.stateCRC
		t.stateCRCSet = ts.stateCRCSet
		t.stateImage = append(t.stateImage[:0], ts.stateImage...)
		t.alive = ts.alive
		t.releaseCount = ts.releaseCount
		t.lastRelease = ts.lastRelease
		t.hasReleased = ts.hasReleased
		t.pendingTrigger = ts.pendingTrigger
		t.maxCopyCycles = ts.maxCopyCycles
		t.consecutiveErrors = ts.consecutiveErrors
		for ji := range ts.jobs {
			j := t.allJobs[ji]
			js := &ts.jobs[ji]
			j.release = js.release
			j.deadline = js.deadline
			j.state = js.state
			j.copyIndex = js.copyIndex
			j.nresults = js.nresults
			for ri := range js.results {
				r := &j.results[ri]
				rs := &js.results[ri]
				r.writes = append(r.writes[:0], rs.writes...)
				r.dataImage = append(r.dataImage[:0], rs.dataImage...)
				r.signature = rs.signature
			}
			j.ctx = js.ctx
			j.started = js.started
			j.cyclesUsed = js.cyclesUsed
			j.inputLatch = append(j.inputLatch[:0], js.inputLatch...)
			j.outputs = append(j.outputs[:0], js.outputs...)
			j.dataSnapshot = append(j.dataSnapshot[:0], js.dataSnapshot...)
			j.errorsDetected = js.errorsDetected
			j.detectedBy = append(j.detectedBy[:0], js.detectedBy...)
			j.deadlineEvent = js.deadlineEvent
			j.chainEvent = js.chainEvent
			j.pendingMech = js.pendingMech
		}
		t.freeJobs = t.freeJobs[:0]
		for _, ji := range ts.freeJobs {
			t.freeJobs = append(t.freeJobs, t.allJobs[ji])
		}
		// Jobs born after the capture: settle and park for reuse.
		for ji := len(ts.jobs); ji < len(t.allJobs); ji++ {
			j := t.allJobs[ji]
			j.state = jobDone
			j.deadlineEvent = des.Event{}
			j.chainEvent = des.Event{}
			t.freeJobs = append(t.freeJobs, j)
		}
	}

	k.ready = k.ready[:0]
	for _, r := range from.ready {
		k.ready = append(k.ready, k.deref(r))
	}
	k.current = k.deref(from.current)
	k.procOwner = k.deref(from.procOwner)

	if k.cfg.Trace != nil {
		k.cfg.Trace.Events = append(k.cfg.Trace.Events[:0], from.traceEvents...)
		k.cfg.Trace.Dropped = from.traceDropped
	}
}
