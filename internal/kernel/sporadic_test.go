package kernel

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/des"
)

// sporadicSpec is an adder task released on demand.
func sporadicSpec(t *testing.T) TaskSpec {
	t.Helper()
	spec := taskABase(t, adderSrc)
	spec.Name = "sporadic"
	spec.Sporadic = true
	spec.Period = 10 * des.Millisecond // minimal inter-arrival
	spec.Deadline = 5 * des.Millisecond
	return spec
}

func TestSporadicNotReleasedAutomatically(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	env.inputs[0] = 1
	if err := k.AddTask(sporadicSpec(t)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(50 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) != 0 {
		t.Errorf("sporadic task ran without a trigger: %v", env.writes)
	}
}

func TestSporadicTriggerRuns(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	env.inputs[0] = 37
	if err := k.AddTask(sporadicSpec(t)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(5*des.Millisecond, des.PrioKernel, func() {
		if err := k.Trigger("sporadic"); err != nil {
			t.Error(err)
		}
	})
	if err := sim.RunUntil(20 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) != 1 || env.writes[0].value != 42 {
		t.Errorf("writes = %v", env.writes)
	}
	if k.Stats().OK != 1 {
		t.Errorf("stats = %+v", k.Stats())
	}
}

func TestSporadicMinInterArrivalEnforced(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	env.inputs[0] = 1
	if err := k.AddTask(sporadicSpec(t)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// Three triggers in quick succession: the first fires at 1 ms, the
	// second is deferred to 11 ms (min inter-arrival 10 ms), the third
	// coalesces with the queued one.
	for _, at := range []des.Time{des.Millisecond, 2 * des.Millisecond, 3 * des.Millisecond} {
		at := at
		sim.Schedule(at, des.PrioKernel, func() { _ = k.Trigger("sporadic") })
	}
	if err := sim.RunUntil(30 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) != 2 {
		t.Fatalf("writes = %d, want 2 (coalesced)", len(env.writes))
	}
	st := k.Stats()
	if st.Releases != 2 {
		t.Errorf("releases = %d", st.Releases)
	}
}

func TestSporadicTEMMasksFault(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	spec := sporadicSpec(t)
	spec.Program = mustProg(t, burnSrc)
	spec.InputPorts = nil
	spec.Budget = 200 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(des.Millisecond, des.PrioKernel, func() { _ = k.Trigger("sporadic") })
	// Corrupt the accumulator mid-copy-2 of the triggered instance.
	sim.Schedule(des.Millisecond+120*des.Microsecond, des.PrioInject, func() {
		k.Proc().FlipRegister(6, 3)
	})
	if err := sim.RunUntil(10 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Masked != 1 {
		t.Errorf("stats = %+v", k.Stats())
	}
	if len(env.writes) != 1 || env.writes[0].value != 500500 {
		t.Errorf("writes = %v", env.writes)
	}
	if n := len(trace.Filter(TraceVote)); n != 1 {
		t.Errorf("votes = %d", n)
	}
}

func TestTriggerValidation(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	env.inputs[0] = 1
	periodic := taskABase(t, adderSrc)
	if err := k.AddTask(periodic); err != nil {
		t.Fatal(err)
	}
	if err := k.Trigger("taskA"); err == nil {
		t.Error("Trigger before Start accepted")
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.Trigger("nope"); err == nil {
		t.Error("unknown task accepted")
	}
	if err := k.Trigger("taskA"); err == nil {
		t.Error("triggering a periodic task accepted")
	}
	_ = sim
}

// mustProg assembles a source for tests.
func mustProg(t *testing.T, src string) *cpu.Program {
	t.Helper()
	p, err := cpu.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}
