package kernel

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/des"
)

// Test memory layout: code at 0x0000/0x1000, data at 0x8000/0x8400,
// stacks at 0xC000/0xC800.
const (
	codeA  = 0x0000
	codeB  = 0x1000
	dataA  = 0x8000
	dataB  = 0x8400
	stackA = 0xC000
	stackB = 0xC800
)

// adderSrc reads input port 0, adds 5, writes output port 1.
const adderSrc = `
	.org 0x0000
start:
	li r1, 0xFFFF0000
	ld r2, [r1+0]
	addi r2, r2, 5
	st r2, [r1+4]
	sys 2
`

// counterSrc increments a state word and reports it on port 1.
const counterSrc = `
	.org 0x0000
start:
	li r1, 0x8000
	ld r2, [r1]
	addi r2, r2, 1
	st r2, [r1]
	li r3, 0xFFFF0000
	st r2, [r3+4]
	sys 2
`

// burnSrc computes a long accumulation (~1000 iterations, ~4 cycles
// each), then writes the sum to port 1. Register r6 is live for almost
// the whole execution — the fault-injection target.
const burnSrc = `
	.org 0x0000
start:
	movi r5, 1000
	movi r6, 0
loop:
	add r6, r6, r5
	addi r5, r5, -1
	cmpi r5, 0
	bgt loop
	li r1, 0xFFFF0000
	st r6, [r1+4]
	sys 2
`

// spinSrc never terminates: the budget timer must catch it.
const spinSrc = `
	.org 0x0000
start:
	jmp start
`

// wildStoreSrc writes far outside any allowed region.
const wildStoreSrc = `
	.org 0x1000
start:
	li r1, 0x00007000
	st r1, [r1]
	sys 2
`

// sigSrc passes three signature checkpoints.
const sigSrc = `
	.org 0x0000
start:
	sig 1
	sig 2
	sig 3
	li r1, 0xFFFF0000
	movi r2, 9
	st r2, [r1+4]
	sys 2
`

// testEnv is a scripted environment.
type testEnv struct {
	inputs map[uint32]uint32
	// reads counts ReadInput calls per port.
	reads map[uint32]int
	// writes records committed outputs in order.
	writes []portWrite
	// volatileInputs, when set, makes every read return a fresh value —
	// for the input-latching test.
	volatileInputs bool
	counter        uint32
}

func newTestEnv() *testEnv {
	return &testEnv{inputs: make(map[uint32]uint32), reads: make(map[uint32]int)}
}

func (e *testEnv) ReadInput(port uint32) uint32 {
	e.reads[port]++
	if e.volatileInputs {
		e.counter++
		return e.counter
	}
	return e.inputs[port]
}

func (e *testEnv) WriteOutput(port, value uint32) {
	e.writes = append(e.writes, portWrite{port: port, value: value})
}

// taskABase is a template spec for a program at codeA.
func taskABase(t *testing.T, src string) TaskSpec {
	t.Helper()
	prog, err := cpu.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return TaskSpec{
		Name:        "taskA",
		Program:     prog,
		Entry:       "start",
		Period:      des.Millisecond,
		Deadline:    des.Millisecond,
		Priority:    10,
		Criticality: Critical,
		Budget:      200 * des.Microsecond,
		InputPorts:  []uint32{0},
		OutputPorts: []uint32{1},
		DataStart:   dataA,
		DataWords:   16,
		StackStart:  stackA,
		StackWords:  256,
	}
}

// buildKernel wires a simulator, environment and kernel with a trace.
func buildKernel(t *testing.T, cfg Config) (*des.Simulator, *testEnv, *Kernel, *Trace) {
	t.Helper()
	sim := des.New()
	env := newTestEnv()
	trace := &Trace{}
	cfg.Trace = trace
	k := New(sim, env, cfg)
	return sim, env, k, trace
}

func TestSpecValidation(t *testing.T) {
	prog := cpu.MustAssemble("start: sys 2")
	base := TaskSpec{
		Name: "x", Program: prog, Entry: "start",
		Period: des.Millisecond, Deadline: des.Millisecond,
		Budget: des.Microsecond, Criticality: Critical, StackWords: 16,
	}
	if err := base.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]func(*TaskSpec){
		"no name":        func(s *TaskSpec) { s.Name = "" },
		"nil program":    func(s *TaskSpec) { s.Program = nil },
		"bad entry":      func(s *TaskSpec) { s.Entry = "nope" },
		"zero period":    func(s *TaskSpec) { s.Period = 0 },
		"deadline > T":   func(s *TaskSpec) { s.Deadline = 2 * des.Millisecond },
		"zero budget":    func(s *TaskSpec) { s.Budget = 0 },
		"neg offset":     func(s *TaskSpec) { s.Offset = -1 },
		"no criticality": func(s *TaskSpec) { s.Criticality = 0 },
		"no stack":       func(s *TaskSpec) { s.StackWords = 0 },
	}
	for name, mutate := range cases {
		s := base
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestAddTaskRules(t *testing.T) {
	_, _, k, _ := buildKernel(t, Config{})
	spec := taskABase(t, adderSrc)
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.AddTask(spec); err == nil {
		t.Error("duplicate name accepted")
	}
	other := taskABase(t, adderSrc)
	other.Name = "taskB"
	if err := k.AddTask(other); err == nil {
		t.Error("duplicate priority accepted")
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := k.AddTask(taskABase(t, adderSrc)); err == nil {
		t.Error("AddTask after Start accepted")
	}
	if err := k.Start(); err == nil {
		t.Error("double Start accepted")
	}
}

func TestStartNeedsTasks(t *testing.T) {
	_, _, k, _ := buildKernel(t, Config{})
	if err := k.Start(); err == nil {
		t.Error("Start with no tasks accepted")
	}
}

// TestFaultFreeTEM checks Figure 3 scenario (i): two copies, one
// comparison, one commit, and exactly one output delivered per release.
func TestFaultFreeTEM(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{UseMMU: true})
	env.inputs[0] = 37
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(3*des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Releases != 4 || st.OK != 4 || st.Masked != 0 || st.Omissions != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(env.writes) != 4 {
		t.Fatalf("writes = %v", env.writes)
	}
	for _, w := range env.writes {
		if w.port != 1 || w.value != 42 {
			t.Errorf("write = %+v", w)
		}
	}
	// Each release: two copy-starts, two copy-ends, one match, one commit.
	starts := trace.Filter(TraceCopyStart)
	if len(starts) != 8 {
		t.Errorf("copy starts = %d, want 8", len(starts))
	}
	if n := len(trace.Filter(TraceCompareMatch)); n != 4 {
		t.Errorf("matches = %d, want 4", n)
	}
	if n := len(trace.Filter(TraceCompareMismatch, TraceErrorDetected, TraceOmission)); n != 0 {
		t.Errorf("unexpected error events: %d", n)
	}
}

// TestInputLatching checks replica determinism (§2.6): even with a
// volatile environment, both TEM copies observe the release-time latch,
// so no comparison mismatch occurs.
func TestInputLatching(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	env.volatileInputs = true
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(2*des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Filter(TraceCompareMismatch)); n != 0 {
		t.Errorf("mismatches with volatile inputs = %d (latching broken)", n)
	}
	// One environment read per release, not per copy.
	if env.reads[0] != 3 {
		t.Errorf("input reads = %d, want 3", env.reads[0])
	}
	// Outputs reflect the distinct latches: 1+5, 2+5, 3+5.
	if len(env.writes) != 3 || env.writes[0].value != 6 || env.writes[2].value != 8 {
		t.Errorf("writes = %v", env.writes)
	}
}

// TestComparisonDetectsRegisterFault reproduces Figure 3 scenario (ii):
// a silent data corruption in the second copy makes the comparison
// mismatch; the third copy restores a majority and the error is masked.
func TestComparisonDetectsRegisterFault(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	spec := taskABase(t, burnSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// One copy is ~4000 cycles ≈ 80 µs at 50 MHz (plus switch overhead).
	// Inject into the accumulator register mid-copy-2, ~120 µs in.
	sim.Schedule(120*des.Microsecond, des.PrioInject, func() {
		if k.Activity() != ActivityTask {
			t.Fatalf("activity at injection = %v", k.Activity())
		}
		k.Proc().FlipRegister(6, 7)
	})
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Masked != 1 {
		t.Fatalf("masked = %d, stats %+v", st.Masked, st)
	}
	if n := len(trace.Filter(TraceCompareMismatch)); n != 1 {
		t.Errorf("mismatches = %d", n)
	}
	votes := trace.Filter(TraceVote)
	if len(votes) != 1 || !strings.Contains(votes[0].Detail, "majority found") {
		t.Errorf("votes = %v", votes)
	}
	// The correct value still came out: sum 1..1000 = 500500.
	if len(env.writes) != 1 || env.writes[0].value != 500500 {
		t.Errorf("writes = %v", env.writes)
	}
	if st.ErrorsDetected["comparison"] != 1 {
		t.Errorf("mechanisms = %v", st.ErrorsDetected)
	}
}

// TestEDMDetectedFaultRestartsCopy reproduces Figure 3 scenario (iii):
// a PC fault raises a hardware exception; the kernel terminates the
// copy, restores the context from the TCB and immediately starts a
// replacement copy. The release is masked and the result correct.
func TestEDMDetectedFaultRestartsCopy(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	spec := taskABase(t, burnSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(40*des.Microsecond, des.PrioInject, func() {
		k.Proc().FlipPC(13) // far jump into zeroed memory → illegal opcode
	})
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Masked != 1 || st.Omissions != 0 {
		t.Fatalf("stats = %+v", st)
	}
	detected := trace.Filter(TraceErrorDetected)
	if len(detected) != 1 || detected[0].Detail != "illegal-opcode" {
		t.Errorf("detected = %v", detected)
	}
	// Three copy starts: the killed copy 1, its replacement, and copy 2.
	if n := len(trace.Filter(TraceCopyStart)); n != 3 {
		t.Errorf("copy starts = %d, want 3", n)
	}
	if len(env.writes) != 1 || env.writes[0].value != 500500 {
		t.Errorf("writes = %v", env.writes)
	}
}

// TestOmissionWhenNoTimeToRecover: an error detected too close to the
// deadline leaves no room for another copy; the kernel enforces an
// omission failure (§2.5).
func TestOmissionWhenNoTimeToRecover(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	spec := taskABase(t, burnSrc)
	spec.InputPorts = nil
	// Deadline fits the two copies plus a little, but not a third.
	spec.Deadline = 200 * des.Microsecond
	spec.Budget = 90 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(120*des.Microsecond, des.PrioInject, func() {
		k.Proc().FlipRegister(6, 3)
	})
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Omissions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(env.writes) != 0 {
		t.Errorf("an omission still delivered: %v", env.writes)
	}
	om := trace.Filter(TraceOmission)
	if len(om) != 1 || !strings.Contains(om[0].Detail, "third copy") {
		t.Errorf("omissions = %v", om)
	}
}

// TestBudgetTimerCatchesRunaway: an infinite loop trips the execution-
// time monitor; with a deterministic fault re-execution also overruns,
// and the release ends in an omission.
func TestBudgetTimerCatchesRunaway(t *testing.T) {
	sim, _, k, trace := buildKernel(t, Config{PermanentThreshold: 100})
	spec := taskABase(t, spinSrc)
	spec.InputPorts = nil
	spec.Budget = 50 * des.Microsecond
	spec.Deadline = 400 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Omissions != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ErrorsDetected["budget-timer"] == 0 {
		t.Error("budget timer never fired")
	}
	if n := len(trace.Filter(TraceErrorDetected)); n < 2 {
		t.Errorf("expected repeated budget errors, got %d", n)
	}
}

// TestNonCriticalShutdown: a detected error in a non-critical task shuts
// only that task down (§2.2, strategy 2); the critical task continues.
func TestNonCriticalShutdown(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{UseMMU: true})
	env.inputs[0] = 1
	crit := taskABase(t, adderSrc)
	if err := k.AddTask(crit); err != nil {
		t.Fatal(err)
	}
	wild := TaskSpec{
		Name:        "wild",
		Program:     cpu.MustAssemble(wildStoreSrc),
		Entry:       "start",
		Period:      des.Millisecond,
		Deadline:    des.Millisecond,
		Priority:    5,
		Criticality: NonCritical,
		Budget:      100 * des.Microsecond,
		StackStart:  stackB,
		StackWords:  64,
	}
	if err := k.AddTask(wild); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(3*des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.TaskShutdowns != 1 {
		t.Fatalf("shutdowns = %d", st.TaskShutdowns)
	}
	if st.ErrorsDetected["mmu-violation"] != 1 {
		t.Errorf("mechanisms = %v", st.ErrorsDetected)
	}
	// The critical task delivered all four releases regardless.
	if st.OK != 4 {
		t.Errorf("critical OK = %d, want 4 (stats %+v)", st.OK, st)
	}
	if n := len(trace.Filter(TraceTaskShutdown)); n != 1 {
		t.Errorf("shutdown events = %d", n)
	}
	if failed, _ := k.Failed(); failed {
		t.Error("node went fail-silent for a non-critical error")
	}
}

// TestPreemption: a high-priority short task preempts a long low-priority
// TEM copy; both deliver correct results.
func TestPreemption(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	long := taskABase(t, burnSrc)
	long.Name = "long"
	long.InputPorts = nil
	long.Priority = 1
	long.Budget = 200 * des.Microsecond
	long.Period = 2 * des.Millisecond
	long.Deadline = 2 * des.Millisecond
	if err := k.AddTask(long); err != nil {
		t.Fatal(err)
	}
	short := TaskSpec{
		Name:        "short",
		Program:     cpu.MustAssemble(strings.Replace(adderSrc, ".org 0x0000", ".org 0x1000", 1)),
		Entry:       "start",
		Period:      100 * des.Microsecond,
		Deadline:    100 * des.Microsecond,
		Offset:      30 * des.Microsecond,
		Priority:    9,
		Criticality: Critical,
		Budget:      20 * des.Microsecond,
		InputPorts:  []uint32{0},
		OutputPorts: []uint32{1},
		StackStart:  stackB,
		StackWords:  64,
	}
	env.inputs[0] = 10
	if err := k.AddTask(short); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Omissions != 0 || st.Masked != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if n := len(trace.Filter(TracePreempt)); n == 0 {
		t.Error("no preemptions observed")
	}
	// The long task's result must be unaffected by interleaving.
	sawLong := false
	for _, w := range env.writes {
		if w.value == 500500 {
			sawLong = true
		}
	}
	if !sawLong {
		t.Errorf("long task result missing from %v", env.writes)
	}
}

// TestStatePersistsAcrossReleases: committed state survives, giving an
// increasing counter; TEM copies never see each other's tentative state.
func TestStatePersistsAcrossReleases(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	spec := taskABase(t, counterSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(4*des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) != 5 {
		t.Fatalf("writes = %v", env.writes)
	}
	for i, w := range env.writes {
		if w.value != uint32(i+1) {
			t.Errorf("release %d counter = %d, want %d", i, w.value, i+1)
		}
	}
}

// TestStateCRCDetectsCorruption: with ECC off, a bit flip in the state
// region between releases is caught by the kernel's CRC check and the
// committed image is restored.
func TestStateCRCDetectsCorruption(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	spec := taskABase(t, counterSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// Corrupt the counter word between release 1 and release 2.
	sim.Schedule(des.Millisecond/2, des.PrioInject, func() {
		k.Mem().FlipBit(dataA, 30)
	})
	if err := sim.RunUntil(2*des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Filter(TraceStateCRCError)); n != 1 {
		t.Fatalf("crc errors = %d", n)
	}
	// The counter continued 1, 2, 3 — corruption did not propagate.
	if len(env.writes) != 3 {
		t.Fatalf("writes = %v", env.writes)
	}
	for i, w := range env.writes {
		if w.value != uint32(i+1) {
			t.Errorf("release %d counter = %d, want %d", i, w.value, i+1)
		}
	}
}

// TestECCAbsorbsMemoryFault: with ECC on, a single-bit flip in the code
// region is corrected transparently at the next instruction fetch. (The
// data region is rewritten by the kernel before every copy, which would
// itself scrub the flip, so code is the region where ECC correction is
// actually observable.)
func TestECCAbsorbsMemoryFault(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{ECC: true})
	spec := taskABase(t, counterSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(des.Millisecond/2, des.PrioInject, func() {
		k.Mem().FlipBit(codeA+4, 3) // second instruction of the task
	})
	if err := sim.RunUntil(2*des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	if n := len(trace.Filter(TraceStateCRCError, TraceCompareMismatch, TraceErrorDetected)); n != 0 {
		t.Fatalf("error events with ECC = %d", n)
	}
	if k.Mem().CorrectedErrors != 1 {
		t.Errorf("corrected = %d", k.Mem().CorrectedErrors)
	}
	if len(env.writes) != 3 || env.writes[2].value != 3 {
		t.Errorf("writes = %v", env.writes)
	}
}

// TestSignatureGoldenCheck: the control-flow signature must match the
// expected golden value; a wrong expectation is detected as an error.
func TestSignatureGoldenCheck(t *testing.T) {
	// First, learn the golden signature from a clean run.
	sim, env, k, _ := buildKernel(t, Config{})
	spec := taskABase(t, sigSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) != 1 {
		t.Fatal("golden run failed")
	}
	golden := k.Proc().Signature // final signature of the last copy
	if golden == 0 {
		t.Fatal("golden signature is zero; checkpoints not executing")
	}

	// Now demand an impossible signature: every copy is rejected and the
	// release ends in an omission.
	sim2, env2, k2, trace2 := buildKernel(t, Config{PermanentThreshold: 100})
	spec2 := taskABase(t, sigSrc)
	spec2.InputPorts = nil
	spec2.ExpectedSignature = golden ^ 0xFFFF
	if err := k2.AddTask(spec2); err != nil {
		t.Fatal(err)
	}
	if err := k2.Start(); err != nil {
		t.Fatal(err)
	}
	// Retries repeat until the deadline test fails (~deadline − budget),
	// so run past the first deadline at 1 ms.
	if err := sim2.RunUntil(des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	if len(env2.writes) != 0 {
		t.Errorf("bad-signature run delivered %v", env2.writes)
	}
	if k2.Stats().ErrorsDetected["signature"] == 0 {
		t.Error("signature mechanism never fired")
	}
	if n := len(trace2.Filter(TraceOmission)); n != 1 {
		t.Errorf("omissions = %d", n)
	}

	// And the correct expectation passes.
	sim3, env3, k3, _ := buildKernel(t, Config{})
	spec3 := taskABase(t, sigSrc)
	spec3.InputPorts = nil
	spec3.ExpectedSignature = golden
	if err := k3.AddTask(spec3); err != nil {
		t.Fatal(err)
	}
	if err := k3.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim3.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if len(env3.writes) != 1 {
		t.Error("correct signature run failed")
	}
}

// TestPermanentSuspicionFailSilent: errors repeating across releases
// drive the node fail-silent for off-line diagnosis (§2.5).
func TestPermanentSuspicionFailSilent(t *testing.T) {
	sim, _, k, trace := buildKernel(t, Config{PermanentThreshold: 3})
	spec := taskABase(t, spinSrc) // deterministic runaway: every release errs
	spec.InputPorts = nil
	spec.Budget = 50 * des.Microsecond
	spec.Deadline = 300 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	var failAt des.Time
	k.OnFailSilent = func(at des.Time, reason string) { failAt = at }
	if err := sim.RunUntil(10 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	failed, reason := k.Failed()
	if !failed {
		t.Fatal("node did not go fail-silent")
	}
	if !strings.Contains(reason, "permanent") {
		t.Errorf("reason = %q", reason)
	}
	if failAt == 0 {
		t.Error("OnFailSilent not invoked")
	}
	// After failing silent, no further releases are processed.
	st := k.Stats()
	if st.Omissions != 3 {
		t.Errorf("omissions = %d, want 3 (threshold)", st.Omissions)
	}
	if n := len(trace.Filter(TraceNodeFailSilent)); n != 1 {
		t.Errorf("fail-silent events = %d", n)
	}
}

// TestForceFailSilent covers the campaign-driver path for kernel faults.
func TestForceFailSilent(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	env.inputs[0] = 1
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(des.Millisecond/2, des.PrioInject, func() {
		k.ForceFailSilent("kernel assertion")
	})
	if err := sim.RunUntil(5 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if failed, reason := k.Failed(); !failed || reason != "kernel assertion" {
		t.Errorf("failed = %v, %q", failed, reason)
	}
	// Only the first release delivered.
	if len(env.writes) != 1 {
		t.Errorf("writes = %v", env.writes)
	}
	if k.Activity() != ActivityIdle {
		t.Errorf("activity = %v", k.Activity())
	}
}

// TestOutcomeHook checks the campaign observation interface.
func TestOutcomeHook(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	env.inputs[0] = 1
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	var infos []OutcomeInfo
	k.OnOutcome = func(i OutcomeInfo) { infos = append(infos, i) }
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond + des.Millisecond/2); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %d", len(infos))
	}
	if infos[0].Task != "taskA" || infos[0].Outcome != OutcomeOK {
		t.Errorf("info = %+v", infos[0])
	}
	if infos[0].SettledAt <= infos[0].Release {
		t.Error("settle time not after release")
	}
}

// TestKernelActivityAccounting: kernel cycles accumulate with context
// switches and the activity probe distinguishes kernel windows.
func TestKernelActivityAccounting(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{SwitchCycles: 500})
	env.inputs[0] = 1
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// Right after release 0 the kernel is switching (500 cycles = 10 µs).
	var saw Activity
	sim.Schedule(5*des.Microsecond, des.PrioObserver, func() { saw = k.Activity() })
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if saw != ActivityKernel {
		t.Errorf("activity during switch window = %v", saw)
	}
	st := k.Stats()
	if st.KernelCycles == 0 || st.TaskCycles == 0 {
		t.Errorf("cycle split = %+v", st)
	}
}

func BenchmarkKernelSecondOfTEM(b *testing.B) {
	prog := cpu.MustAssemble(burnSrc)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		env := newTestEnv()
		k := New(sim, env, Config{})
		spec := TaskSpec{
			Name: "burn", Program: prog, Entry: "start",
			Period: des.Millisecond, Deadline: des.Millisecond,
			Priority: 1, Criticality: Critical, Budget: 200 * des.Microsecond,
			OutputPorts: []uint32{1},
			StackStart:  stackA, StackWords: 64,
		}
		if err := k.AddTask(spec); err != nil {
			b.Fatal(err)
		}
		if err := k.Start(); err != nil {
			b.Fatal(err)
		}
		if err := sim.RunUntil(des.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// TestFaultIsolationBetweenTasks: a fault in a high-priority task's copy
// is masked without disturbing the preempted low-priority task — the MMU
// confinement and per-job contexts of §2.4 in action.
func TestFaultIsolationBetweenTasks(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{UseMMU: true})
	low := taskABase(t, burnSrc)
	low.Name = "low"
	low.InputPorts = nil
	low.Priority = 1
	low.Period = 2 * des.Millisecond
	low.Deadline = 2 * des.Millisecond
	low.Budget = 300 * des.Microsecond
	if err := k.AddTask(low); err != nil {
		t.Fatal(err)
	}
	highSrc := strings.Replace(burnSrc, ".org 0x0000", ".org 0x1000", 1)
	highSrc = strings.Replace(highSrc, "st r6, [r1+4]", "st r6, [r1+8]", 1) // port 2
	high := TaskSpec{
		Name:        "high",
		Program:     cpu.MustAssemble(highSrc),
		Entry:       "start",
		Period:      des.Millisecond,
		Deadline:    des.Millisecond,
		Offset:      30 * des.Microsecond,
		Priority:    9,
		Criticality: Critical,
		Budget:      300 * des.Microsecond,
		OutputPorts: []uint32{2},
		StackStart:  stackB,
		StackWords:  256,
	}
	if err := k.AddTask(high); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	// The high task preempts low at 30 µs and runs copy 1 in
	// [34, ~114 µs]; corrupt its accumulator mid-copy.
	sim.Schedule(70*des.Microsecond, des.PrioInject, func() {
		if k.CurrentTask() != "high" {
			t.Fatalf("current task at injection = %q", k.CurrentTask())
		}
		k.Proc().FlipRegister(6, 11)
	})
	if err := sim.RunUntil(2 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Masked != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Both tasks delivered correct values on all their releases: low has
	// one release (period 2 ms), high has two.
	var lowVals, highVals []uint32
	for _, w := range env.writes {
		switch w.port {
		case 1:
			lowVals = append(lowVals, w.value)
		case 2:
			highVals = append(highVals, w.value)
		}
	}
	if len(lowVals) != 1 || lowVals[0] != 500500 {
		t.Errorf("low outputs = %v", lowVals)
	}
	if len(highVals) != 2 || highVals[0] != 500500 || highVals[1] != 500500 {
		t.Errorf("high outputs = %v", highVals)
	}
	if n := len(trace.Filter(TracePreempt)); n == 0 {
		t.Error("no preemption recorded")
	}
	// The fault was detected in the high task only.
	for _, ev := range trace.Filter(TraceCompareMismatch, TraceErrorDetected) {
		if ev.Task != "high" {
			t.Errorf("error event leaked to %q", ev.Task)
		}
	}
}

// TestObservedWCETFeedsSchedulability: the kernel measures each task's
// worst copy execution, which is the C the §2.8 analysis needs.
func TestObservedWCET(t *testing.T) {
	sim, _, k, _ := buildKernel(t, Config{})
	spec := taskABase(t, burnSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if _, ok := k.ObservedWCET("taskA"); ok {
		t.Error("WCET before any copy ran")
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(3 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	wcet, ok := k.ObservedWCET("taskA")
	if !ok {
		t.Fatal("no WCET observed")
	}
	// The burn copy is 4007 cycles ≈ 80.14 µs at 50 MHz.
	if wcet < 80*des.Microsecond || wcet > 81*des.Microsecond {
		t.Errorf("WCET = %v, want ≈80.1 µs", wcet)
	}
	if _, ok := k.ObservedWCET("nope"); ok {
		t.Error("unknown task has a WCET")
	}
}
