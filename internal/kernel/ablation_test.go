package kernel

import (
	"testing"

	"repro/internal/des"
)

// TestAblationAlwaysTriple: unconditional triple execution commits the
// same results but burns ~50% more task cycles than third-copy-on-demand.
func TestAblationAlwaysTriple(t *testing.T) {
	run := func(always bool) (Stats, []portWrite) {
		sim, env, k, _ := buildKernel(t, Config{AlwaysTriple: always})
		spec := taskABase(t, burnSrc)
		spec.InputPorts = nil
		spec.Budget = 200 * des.Microsecond
		if err := k.AddTask(spec); err != nil {
			t.Fatal(err)
		}
		if err := k.Start(); err != nil {
			t.Fatal(err)
		}
		if err := sim.RunUntil(4*des.Millisecond + des.Millisecond/2); err != nil {
			t.Fatal(err)
		}
		return k.Stats(), env.writes
	}
	onDemand, wOD := run(false)
	triple, wT := run(true)
	if len(wOD) != len(wT) || len(wOD) == 0 {
		t.Fatalf("deliveries differ: %d vs %d", len(wOD), len(wT))
	}
	for i := range wOD {
		if wOD[i] != wT[i] {
			t.Fatalf("results diverge at %d", i)
		}
	}
	ratio := float64(triple.TaskCycles) / float64(onDemand.TaskCycles)
	if ratio < 1.4 || ratio > 1.6 {
		t.Errorf("triple/on-demand cycle ratio = %v, want ≈1.5", ratio)
	}
	if triple.OK != onDemand.OK {
		t.Errorf("outcomes differ: %+v vs %+v", triple, onDemand)
	}
}

// TestAblationAlwaysTripleMasksWithVote: with unconditional TMR a fault
// in one copy is outvoted.
func TestAblationAlwaysTripleMasksWithVote(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{AlwaysTriple: true})
	spec := taskABase(t, burnSrc)
	spec.InputPorts = nil
	spec.Budget = 200 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sim.Schedule(120*des.Microsecond, des.PrioInject, func() {
		k.Proc().FlipRegister(6, 5)
	})
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if k.Stats().Masked != 1 {
		t.Fatalf("stats = %+v", k.Stats())
	}
	if len(env.writes) != 1 || env.writes[0].value != 500500 {
		t.Errorf("writes = %v", env.writes)
	}
	if n := len(trace.Filter(TraceVote)); n != 1 {
		t.Errorf("votes = %d", n)
	}
}

// TestAblationNoContextRestore: without the TCB context restore, an
// EDM-detected error is not recoverable — the corrupted context keeps
// failing and the release ends in an omission, where the restoring
// kernel masks the same fault.
func TestAblationNoContextRestore(t *testing.T) {
	run := func(noRestore bool) Stats {
		sim, _, k, _ := buildKernel(t, Config{
			NoContextRestore:   noRestore,
			PermanentThreshold: 100,
		})
		spec := taskABase(t, burnSrc)
		spec.InputPorts = nil
		spec.Budget = 150 * des.Microsecond
		if err := k.AddTask(spec); err != nil {
			t.Fatal(err)
		}
		if err := k.Start(); err != nil {
			t.Fatal(err)
		}
		sim.Schedule(40*des.Microsecond, des.PrioInject, func() {
			k.Proc().FlipPC(13) // lands in zeroed memory → illegal opcode
		})
		if err := sim.RunUntil(des.Millisecond); err != nil {
			t.Fatal(err)
		}
		return k.Stats()
	}
	restored := run(false)
	if restored.Masked != 1 {
		t.Fatalf("restoring kernel: %+v", restored)
	}
	broken := run(true)
	if broken.Masked != 0 || broken.Omissions == 0 {
		t.Errorf("no-restore kernel should fail the release: %+v", broken)
	}
}

// TestAblationCompareOutputsOnly: the reduced comparison scope accepts
// copies that differ only in state image or control-flow signature —
// exactly the divergences §2.6/§2.7 argue must be compared too.
func TestAblationCompareOutputsOnly(t *testing.T) {
	full := New(des.New(), newTestEnv(), Config{})
	reduced := New(des.New(), newTestEnv(), Config{CompareOutputsOnly: true})

	base := copyResult{
		writes:    []portWrite{{port: 1, value: 42}},
		dataImage: []uint32{7, 8},
		signature: 0xABCD,
	}
	stateDiff := base
	stateDiff.dataImage = []uint32{7, 9}
	sigDiff := base
	sigDiff.signature = 0xDEAD
	outDiff := base
	outDiff.writes = []portWrite{{port: 1, value: 43}}

	if full.resultsEqual(&base, &stateDiff) {
		t.Error("full scope missed a state divergence")
	}
	if full.resultsEqual(&base, &sigDiff) {
		t.Error("full scope missed a signature divergence")
	}
	if !reduced.resultsEqual(&base, &stateDiff) {
		t.Error("outputs-only scope should accept a state divergence")
	}
	if !reduced.resultsEqual(&base, &sigDiff) {
		t.Error("outputs-only scope should accept a signature divergence")
	}
	if reduced.resultsEqual(&base, &outDiff) {
		t.Error("outputs-only scope missed an output divergence")
	}
}
