package kernel

import (
	"repro/internal/des"
)

// This file computes the kernel's forward digest: a 64-bit summary of
// every piece of state that can influence the remainder of a run. The
// fork engine (internal/fault) compares a forked trial's digest at a
// checkpoint boundary against the golden run's digest captured at the
// same boundary; equality proves the trial's future is the golden
// future, so the trial's outcome can be classified from golden results
// without simulating the suffix.
//
// What is deliberately EXCLUDED, and why each exclusion is sound:
//
//   - Pure measurements never read back by the model: kernel Stats,
//     cpu.CPU Cycles/Retired, cpu.Memory CorrectedErrors, MMU
//     Violations, tcb releaseCount/maxCopyCycles, job detectedBy. They
//     record the path taken, not state that steers future behaviour,
//     and the campaign accounts for them separately (the golden suffix
//     contributes zero detections, omissions and writes deltas beyond
//     the spliced ones — it is fault-free by construction).
//   - failReason: implied by the failed bit, which is folded.
//   - job pendingMech: only ever read by an error-handler continuation,
//     and every site that arms that continuation writes pendingMech
//     immediately before scheduling it — a stale value is never read.
//   - job ctx/cyclesUsed/outputs for a copy that has not started:
//     startCopy overwrites all three before any read.
//   - result slots at index ≥ nresults: captureResult fully rewrites a
//     slot before copyComplete reads it, and the capture→complete
//     window never spans a checkpoint boundary (the completion event
//     fires at kernel priority, below the boundary checker's observer
//     priority, and slices themselves never cross a pending event).
//   - MMU regions/enable: rewritten by every runSlice before the CPU
//     executes, so the values seen at a boundary are never read again.
//   - Settled jobs (jobDone, no live events) and the free-list order:
//     acquireJob resets every field a new incarnation reads, so any
//     settled record is interchangeable with any other. Folding them
//     would make the digest depend on pool-rotation identity and
//     spuriously block reconvergence.
//
// Job identity is folded positionally, not by record: live jobs are
// folded in ready-queue order, and current/procOwner as positions in
// that order (or small tags for nil / settled). Two kernels whose live
// jobs have identical contents in identical queue positions behave
// identically regardless of which pooled records host those jobs.

// kmix is the SplitMix64 finalizer (see cpu.digestMix; duplicated to
// keep the hot digest path free of cross-package calls).
//
//nlft:noalloc
func kmix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// kfold chains one value into a running digest, order-sensitively.
//
//nlft:noalloc
func kfold(d, v uint64) uint64 { return kmix(d ^ kmix(v)) }

// kfoldBool folds a flag.
//
//nlft:noalloc
func kfoldBool(d uint64, b bool) uint64 {
	if b {
		return kfold(d, 1)
	}
	return kfold(d, 0)
}

// kfoldEvent folds whether a handle is live and, if so, when it fires.
//
//nlft:noalloc
func kfoldEvent(d uint64, s *des.Simulator, e des.Event) uint64 {
	if at, ok := s.ScheduledAt(e); ok {
		d = kfold(d, 1)
		return kfold(d, uint64(at))
	}
	return kfold(d, 0)
}

// jobDigest folds one live job's forward-relevant state.
//
//nlft:noalloc
func (k *Kernel) jobDigest(j *job) uint64 {
	var d uint64
	d = kfold(d, uint64(j.release))
	d = kfold(d, uint64(j.deadline))
	d = kfold(d, uint64(j.state))
	d = kfold(d, uint64(j.copyIndex))
	d = kfold(d, uint64(j.nresults))
	for ri := 0; ri < j.nresults; ri++ {
		r := &j.results[ri]
		d = kfold(d, uint64(len(r.writes)))
		for _, w := range r.writes {
			d = kfold(d, uint64(w.port)<<32|uint64(w.value))
		}
		d = kfold(d, uint64(len(r.dataImage)))
		for _, w := range r.dataImage {
			d = kfold(d, uint64(w))
		}
		d = kfold(d, uint64(r.signature))
	}
	d = kfoldBool(d, j.started)
	if j.started {
		// ctx, cyclesUsed and outputs only carry forward state for a
		// copy in flight; startCopy resets all three for a fresh copy.
		for _, r := range j.ctx.Regs {
			d = kfold(d, uint64(r))
		}
		d = kfold(d, uint64(j.ctx.PC))
		var fl uint64
		if j.ctx.Flags.Z {
			fl |= 1
		}
		if j.ctx.Flags.N {
			fl |= 2
		}
		if j.ctx.Flags.C {
			fl |= 4
		}
		if j.ctx.Flags.V {
			fl |= 8
		}
		d = kfold(d, fl)
		d = kfold(d, uint64(j.ctx.Signature))
		d = kfold(d, j.cyclesUsed)
		d = kfold(d, uint64(len(j.outputs)))
		for _, w := range j.outputs {
			d = kfold(d, uint64(w.port)<<32|uint64(w.value))
		}
	}
	d = kfold(d, uint64(len(j.inputLatch)))
	for _, v := range j.inputLatch {
		d = kfold(d, uint64(v))
	}
	d = kfold(d, uint64(len(j.dataSnapshot)))
	for _, v := range j.dataSnapshot {
		d = kfold(d, uint64(v))
	}
	d = kfold(d, uint64(j.errorsDetected))
	d = kfoldEvent(d, k.sim, j.deadlineEvent)
	d = kfoldEvent(d, k.sim, j.chainEvent)
	return d
}

// ForwardDigest folds the forward-relevant state of the whole node —
// simulator clock and pending-event multiset, processor, memory,
// scheduler, and every live job — into a 64-bit digest. An event
// matching skip is excluded from the pending fold (pass the zero Event
// to exclude nothing); the fork engine passes its placeholder injection
// event on the golden side, which the forked trial has replaced with a
// real injection that has already fired by the time digests are
// compared.
//
// The busy-until horizons are clamped to the current instant before
// folding: once a horizon is in the past, its exact value can never be
// observed again (both are only compared against the advancing clock),
// and a forked trial's horizons legitimately differ from the golden
// run's in the past even when the machines have reconverged.
//
//nlft:noalloc
func (k *Kernel) ForwardDigest(skip des.Event) uint64 {
	now := k.sim.Now()
	var d uint64
	d = kfold(d, uint64(now))
	pd, pc := k.sim.PendingDigest(skip)
	d = kfold(d, pd)
	d = kfold(d, uint64(pc))
	d = kfold(d, k.proc.StateDigest())
	d = kfold(d, k.mem.StateDigest())

	d = kfoldBool(d, k.failed)
	d = kfoldBool(d, k.dispatchPending)
	kb, cb := k.kernelBusyUntil, k.cpuBusyUntil
	if kb < now {
		kb = now
	}
	if cb < now {
		cb = now
	}
	d = kfold(d, uint64(kb))
	d = kfold(d, uint64(cb))

	for _, t := range k.order {
		d = kfoldBool(d, t.alive)
		d = kfold(d, uint64(t.stateCRC))
		d = kfoldBool(d, t.stateCRCSet)
		d = kfold(d, uint64(len(t.stateImage)))
		for _, w := range t.stateImage {
			d = kfold(d, uint64(w))
		}
		d = kfold(d, uint64(t.lastRelease))
		d = kfoldBool(d, t.hasReleased)
		d = kfoldBool(d, t.pendingTrigger)
		d = kfold(d, uint64(t.consecutiveErrors))
	}

	d = kfold(d, uint64(len(k.ready)))
	curIdx, ownerTag := -1, uint64(0)
	for i, j := range k.ready {
		d = kfold(d, k.jobDigest(j))
		if j == k.current {
			curIdx = i
		}
	}
	switch {
	case k.procOwner == nil:
		ownerTag = 1
	case k.procOwner == k.current:
		ownerTag = 2
	default:
		ownerTag = 3 // a settled record: interchangeable with any other
		for i, j := range k.ready {
			if j == k.procOwner {
				ownerTag = 16 + uint64(i)
				break
			}
		}
	}
	if k.current != nil && curIdx < 0 {
		curIdx = -2 // settled but not yet re-dispatched: also interchangeable
	}
	d = kfold(d, uint64(uint32(int32(curIdx))))
	d = kfold(d, ownerTag)
	return d
}
