package kernel

import (
	"errors"
	"fmt"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/obs"
)

// Env is the node's environment: sensor inputs latched at task release
// and actuator outputs written when a result is committed.
type Env interface {
	// ReadInput samples an input port.
	ReadInput(port uint32) uint32
	// WriteOutput delivers a committed output value.
	WriteOutput(port uint32, value uint32)
}

// Config parameterizes a kernel instance.
type Config struct {
	// ClockHz is the CPU clock (cycles per second). Default 50 MHz.
	ClockHz int64
	// MemWords sizes RAM in 32-bit words. Default 65536 (256 KiB).
	MemWords int
	// ECC enables the SEC-DED memory model (Table 1).
	ECC bool
	// UseMMU enables per-task access confinement (Table 1).
	UseMMU bool
	// SwitchCycles is the kernel overhead charged per context switch.
	// Default 200 cycles.
	SwitchCycles uint64
	// PermanentThreshold is the number of consecutive releases with
	// detected errors after which the kernel suspects a permanent fault
	// and shuts the node down for off-line diagnosis (§2.5). Default 5.
	PermanentThreshold int
	// FailSilentOnError turns the kernel into a conventional fail-silent
	// node (the paper's FS baseline, §3.2.1): every detected error
	// immediately silences the node instead of triggering TEM recovery.
	FailSilentOnError bool
	// InterpretiveDispatch disables the threaded-code (predecoded)
	// dispatch path and forces the reference interpreter. Behaviour is
	// bit-identical either way (guarded by the lockstep-differential
	// tests); this switch exists for those tests and for debugging.
	InterpretiveDispatch bool

	// Ablation switches (see DESIGN.md §5). All default off, which is
	// the paper's design.

	// AlwaysTriple executes three copies of every critical task
	// unconditionally (time-redundant TMR) instead of TEM's third-copy-
	// on-demand. Same masking, ~50% more CPU.
	AlwaysTriple bool
	// NoContextRestore skips the CPU-context restore from the TCB after
	// an EDM-detected error: the replacement copy resumes from the
	// corrupted context, which §2.5 argues defeats recovery.
	NoContextRestore bool
	// CompareOutputsOnly restricts the TEM comparison to the output
	// write sequence, ignoring the state image and control-flow
	// signature — the cheaper comparison §2.6 warns lets state
	// corruption escape.
	CompareOutputsOnly bool
	// Trace, when non-nil, records kernel events.
	Trace *Trace
	// Obs, when non-nil, receives structured telemetry: typed event
	// records for every TEM state-machine step plus counters and
	// histograms in the collector's registry (see internal/obs). Trace
	// and Obs are independent sinks; either or both may be set.
	Obs *obs.Collector
}

func (c *Config) applyDefaults() {
	if c.ClockHz == 0 {
		c.ClockHz = 50_000_000
	}
	if c.MemWords == 0 {
		c.MemWords = 1 << 16
	}
	if c.SwitchCycles == 0 {
		c.SwitchCycles = 200
	}
	if c.PermanentThreshold == 0 {
		c.PermanentThreshold = 5
	}
}

// Activity classifies what the node's processor is doing at an instant;
// the fault-injection campaign uses it to decide what a fault hits.
type Activity int

// Processor activities.
const (
	ActivityIdle Activity = iota + 1
	ActivityTask
	ActivityKernel
)

// String names the activity.
func (a Activity) String() string {
	switch a {
	case ActivityIdle:
		return "idle"
	case ActivityTask:
		return "task"
	case ActivityKernel:
		return "kernel"
	default:
		return fmt.Sprintf("activity(%d)", int(a))
	}
}

// Stats aggregates kernel counters.
type Stats struct {
	Releases      uint64
	OK            uint64
	Masked        uint64
	Omissions     uint64
	TaskShutdowns uint64
	// ErrorsDetected counts detected errors by mechanism name.
	ErrorsDetected map[string]uint64
	// KernelCycles and TaskCycles split processor time.
	KernelCycles uint64
	TaskCycles   uint64
}

// OutcomeInfo is passed to the outcome hook after every release settles.
type OutcomeInfo struct {
	Task           string
	Release        des.Time
	SettledAt      des.Time
	Outcome        Outcome
	ErrorsDetected int
	DetectedBy     []string
}

// Kernel is a simulated fault-tolerant real-time kernel bound to one
// simulated processor, driven by a des.Simulator.
type Kernel struct {
	cfg Config
	//nlft:snapshot-skip simulator wiring; the des core snapshots its own state
	sim  *des.Simulator
	mem  *cpu.Memory
	mmu  *cpu.MMU
	proc *cpu.CPU
	//nlft:snapshot-skip environment wiring installed at construction
	env Env

	//nlft:snapshot-skip name index over order; tcb state is captured through order
	tasks map[string]*tcb
	order []*tcb

	ready   []*job
	current *job

	kernelBusyUntil des.Time
	// cpuBusyUntil marks the end of the slice the CPU has already
	// (atomically) executed. Dispatch attempts inside that window would
	// re-run simulated time and are deferred to the slice's own
	// follow-up event.
	cpuBusyUntil des.Time
	// procOwner is the job whose live context sits in the processor
	// registers. A paused-but-current job is NOT restored from its saved
	// context on resume: its state stayed in the registers, so faults
	// injected while it was paused correctly take effect (the physical
	// CPU would behave the same way).
	procOwner  *job
	failed     bool
	failReason string
	//nlft:snapshot-skip one-way start latch; forks only happen after Start
	started bool
	//nlft:snapshot-skip derived from cfg at Start, immutable afterwards
	cyclePeriod des.Time

	stats Stats
	// obsTaskCycles/obsKernelCycles are the cached cycle counters of the
	// configured collector (nil when telemetry is off), resolved once so
	// the per-slice accounting stays off the allocation path.
	//nlft:snapshot-skip cached collector counter pointers; the registry itself is snapshotted by obs
	obsTaskCycles *obs.Counter
	//nlft:snapshot-skip cached collector counter pointers; the registry itself is snapshotted by obs
	obsKernelCycles *obs.Counter
	// OnOutcome, when set, observes every settled release.
	//nlft:snapshot-skip passive observer hook installed per run, not rewindable state
	OnOutcome func(OutcomeInfo)
	// OnFailSilent, when set, observes node shutdown.
	//nlft:snapshot-skip passive observer hook installed per run, not rewindable state
	OnFailSilent func(at des.Time, reason string)
	// OnContextSwitch, when set, observes every context switch with the
	// half-open window [start, end) during which the kernel occupies the
	// processor (Activity reports ActivityKernel strictly inside it).
	// The hook is passive — it is not part of the snapshot state and
	// must not mutate the kernel.
	//nlft:snapshot-skip passive observer hook installed per run, not rewindable state
	OnContextSwitch func(start, end des.Time)

	dispatchPending bool
	// dispatchFn is the bound dispatch callback, created once so
	// scheduleDispatch re-arms the pass without allocating a method-value
	// closure per event.
	//nlft:snapshot-skip bound method-value closure, identical across the kernel's lifetime
	dispatchFn func()
}

// New builds a kernel on the given simulator and environment.
func New(sim *des.Simulator, env Env, cfg Config) *Kernel {
	cfg.applyDefaults()
	if sim == nil {
		panic("kernel: nil simulator")
	}
	if env == nil {
		panic("kernel: nil environment")
	}
	mem := cpu.NewMemory(cfg.MemWords, cfg.ECC)
	mmu := cpu.NewMMU()
	k := &Kernel{
		cfg:         cfg,
		sim:         sim,
		mem:         mem,
		mmu:         mmu,
		proc:        cpu.New(mem, mmu),
		env:         env,
		tasks:       make(map[string]*tcb),
		cyclePeriod: des.Time(int64(des.Second) / cfg.ClockHz),
	}
	mem.AttachIO(k)
	k.dispatchFn = k.dispatch
	k.stats.ErrorsDetected = make(map[string]uint64)
	if cfg.Obs != nil {
		k.obsTaskCycles = cfg.Obs.Counter("kernel.task_cycles", "", "")
		k.obsKernelCycles = cfg.Obs.Counter("kernel.kernel_cycles", "", "")
	}
	return k
}

// Mem exposes RAM for program loading and fault injection.
func (k *Kernel) Mem() *cpu.Memory { return k.mem }

// Proc exposes the processor for fault injection.
func (k *Kernel) Proc() *cpu.CPU { return k.proc }

// Stats returns a copy of the counters.
func (k *Kernel) Stats() Stats {
	s := k.stats
	s.ErrorsDetected = make(map[string]uint64, len(k.stats.ErrorsDetected))
	//nlft:allow nodeterminism key-for-key map copy; iteration order cannot affect the copy
	for m, n := range k.stats.ErrorsDetected {
		s.ErrorsDetected[m] = n
	}
	return s
}

// EachDetected calls fn for every (mechanism, count) pair of the
// detected-error counters without copying the map (Stats allocates a
// fresh map per call, which the exhaustive verifier's boundary loop
// cannot afford). Iteration order is unspecified; callers needing
// determinism must canonicalize what they collect.
//
//nlft:noalloc
func (k *Kernel) EachDetected(fn func(mechanism string, n uint64)) {
	//nlft:allow nodeterminism iteration order is surfaced to the caller, which must canonicalize (the exhaust engine insertion-sorts by name)
	for m, n := range k.stats.ErrorsDetected {
		fn(m, n)
	}
}

// Failed reports whether the node went fail-silent, with the reason.
func (k *Kernel) Failed() (bool, string) { return k.failed, k.failReason }

// Activity reports what the processor is doing now.
func (k *Kernel) Activity() Activity {
	switch {
	case k.failed:
		return ActivityIdle
	case k.sim.Now() < k.kernelBusyUntil:
		return ActivityKernel
	case k.current != nil:
		return ActivityTask
	default:
		return ActivityIdle
	}
}

// CurrentTask reports the running task's name, or "" when idle.
func (k *Kernel) CurrentTask() string {
	if k.current == nil {
		return ""
	}
	return k.current.task.spec.Name
}

// AddTask registers a task before Start.
func (k *Kernel) AddTask(spec TaskSpec) error {
	if k.started {
		return errors.New("kernel: AddTask after Start")
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	if _, dup := k.tasks[spec.Name]; dup {
		return fmt.Errorf("kernel: duplicate task %q", spec.Name)
	}
	for _, other := range k.order {
		if other.spec.Priority == spec.Priority {
			return fmt.Errorf("kernel: task %q reuses priority %d of %q",
				spec.Name, spec.Priority, other.spec.Name)
		}
	}
	entry, err := spec.Program.Entry(spec.Entry)
	if err != nil {
		return err
	}
	t := &tcb{spec: spec, entryPC: entry, alive: true}
	t.regions = k.buildRegions(spec)
	t.releaseFn = func() { k.release(t) }
	t.deferredTriggerFn = func() {
		t.pendingTrigger = false
		if !k.failed && t.alive {
			k.release(t)
		}
	}
	if k.cfg.Obs != nil {
		t.obsCopyCycles = k.cfg.Obs.Histogram("kernel.copy_cycles", spec.Name)
	}
	k.tasks[spec.Name] = t
	k.order = append(k.order, t)
	return nil
}

// buildRegions computes the MMU region set for a task.
func (k *Kernel) buildRegions(spec TaskSpec) []cpu.Region {
	regions := []cpu.Region{
		{Start: spec.Program.Origin, End: spec.Program.Origin + spec.Program.SizeBytes(),
			Perms: cpu.PermRead | cpu.PermExec},
	}
	if spec.DataWords > 0 {
		regions = append(regions, cpu.Region{
			Start: spec.DataStart, End: spec.DataStart + spec.DataWords*4,
			Perms: cpu.PermRead | cpu.PermWrite,
		})
	}
	regions = append(regions, cpu.Region{
		Start: spec.StackStart, End: spec.StackStart + spec.StackWords*4,
		Perms: cpu.PermRead | cpu.PermWrite,
	})
	for _, p := range spec.InputPorts {
		addr := cpu.IOBase + p*4
		regions = append(regions, cpu.Region{Start: addr, End: addr + 4, Perms: cpu.PermRead})
	}
	for _, p := range spec.OutputPorts {
		addr := cpu.IOBase + p*4
		regions = append(regions, cpu.Region{Start: addr, End: addr + 4, Perms: cpu.PermWrite})
	}
	return regions
}

// Start loads programs and schedules the initial releases.
func (k *Kernel) Start() error {
	if k.started {
		return errors.New("kernel: already started")
	}
	if len(k.order) == 0 {
		return errors.New("kernel: no tasks")
	}
	k.started = true
	var progEnd uint32
	for _, t := range k.order {
		t.spec.Program.LoadInto(k.mem)
		if end := t.spec.Program.Origin + t.spec.Program.SizeBytes(); end > progEnd {
			progEnd = end
		}
	}
	if !k.cfg.InterpretiveDispatch {
		// Predecode covers the loaded program images only: instances are
		// built per trial in legacy campaigns, so the cache must stay
		// proportional to code size, not RAM size. PCs outside coverage
		// (faulted jumps into data or stack) execute interpretively.
		k.mem.EnablePredecode(progEnd / 4)
	}
	for _, t := range k.order {
		if t.spec.Sporadic {
			continue // released by Trigger
		}
		k.sim.Schedule(k.sim.Now()+t.spec.Offset, des.PrioKernel, t.releaseFn)
	}
	return nil
}

// Trigger releases a sporadic task now — or, if the minimal
// inter-arrival time since its previous release has not yet elapsed, at
// the earliest legal instant (at most one activation is queued).
func (k *Kernel) Trigger(name string) error {
	if !k.started {
		return errors.New("kernel: Trigger before Start")
	}
	t, ok := k.tasks[name]
	if !ok {
		return fmt.Errorf("kernel: unknown task %q", name)
	}
	if !t.spec.Sporadic {
		return fmt.Errorf("kernel: task %q is not sporadic", name)
	}
	if k.failed || !t.alive {
		return nil
	}
	now := k.sim.Now()
	earliest := now
	if t.hasReleased && t.lastRelease+t.spec.Period > now {
		earliest = t.lastRelease + t.spec.Period
	}
	if earliest == now {
		k.release(t)
		return nil
	}
	if t.pendingTrigger {
		return nil // an activation is already queued
	}
	t.pendingTrigger = true
	k.sim.Schedule(earliest, des.PrioKernel, t.deferredTriggerFn)
	return nil
}

// obsKinds maps kernel trace kinds onto the structured telemetry kinds.
var obsKinds = map[EventKind]obs.Kind{
	TraceRelease:         obs.KindRelease,
	TraceCopyStart:       obs.KindCopyStart,
	TraceCopyEnd:         obs.KindCopyEnd,
	TracePreempt:         obs.KindPreempt,
	TraceResume:          obs.KindResume,
	TraceErrorDetected:   obs.KindErrorDetected,
	TraceCompareMatch:    obs.KindCompareMatch,
	TraceCompareMismatch: obs.KindCompareMismatch,
	TraceVote:            obs.KindVote,
	TraceCommit:          obs.KindCommit,
	TraceOmission:        obs.KindOmission,
	TraceTaskShutdown:    obs.KindTaskShutdown,
	TraceNodeFailSilent:  obs.KindFailSilent,
	TraceStateCRCError:   obs.KindStateCRCError,
}

// trace appends to the configured trace sink and mirrors the record into
// the structured telemetry stream. Release records carry the task's
// criticality as the telemetry detail so stream consumers (the invariant
// checker) can tell TEM tasks from single-copy ones.
//
//nlft:noalloc
func (k *Kernel) trace(kind EventKind, task string, copyIdx int, detail string) {
	if k.cfg.Trace == nil && k.cfg.Obs == nil {
		return
	}
	k.cfg.Trace.add(TraceEvent{At: k.sim.Now(), Kind: kind, Task: task, Copy: copyIdx, Detail: detail})
	if k.cfg.Obs != nil {
		obsDetail := detail
		if kind == TraceRelease && obsDetail == "" {
			if t, ok := k.tasks[task]; ok {
				obsDetail = t.spec.Criticality.String()
			}
		}
		k.cfg.Obs.Emit(obs.Event{
			At: k.sim.Now(), Kind: obsKinds[kind], Task: task, Copy: copyIdx, Detail: obsDetail,
		})
	}
}

// countDetected attributes one detected error to a mechanism in both the
// legacy stats map and the telemetry registry.
func (k *Kernel) countDetected(task, mechanism string) {
	k.stats.ErrorsDetected[mechanism]++
	if k.cfg.Obs != nil {
		k.cfg.Obs.Counter("kernel.errors_detected", task, mechanism).Inc()
	}
}

// release activates one job of t and schedules the next release.
//
//nlft:noalloc
func (k *Kernel) release(t *tcb) {
	if k.failed {
		return
	}
	now := k.sim.Now()
	if !t.spec.Sporadic {
		k.sim.Schedule(now+t.spec.Period, des.PrioKernel, t.releaseFn)
	}
	if !t.alive {
		return
	}
	k.stats.Releases++
	t.releaseCount++
	t.lastRelease = now
	t.hasReleased = true

	// Data-integrity check (Table 1): verify the state region CRC before
	// using the state; restore the committed image on mismatch.
	crcError := false
	if t.spec.DataWords > 0 && t.stateCRCSet {
		if t.dataCRC(k.mem) != t.stateCRC {
			crcError = true
			k.trace(TraceStateCRCError, t.spec.Name, 0, "restoring committed state")
			k.countDetected(t.spec.Name, "state-crc")
			if len(t.stateImage) == int(t.spec.DataWords) {
				for i, w := range t.stateImage {
					k.mem.Poke(t.spec.DataStart+uint32(i)*4, w)
				}
			}
		}
	}

	j := k.acquireJob(t)
	j.release = now
	j.deadline = now + t.spec.Deadline
	if crcError {
		j.errorsDetected++
		j.detectedBy = append(j.detectedBy, "state-crc")
	}
	for _, p := range t.spec.InputPorts {
		j.inputLatch = append(j.inputLatch, k.env.ReadInput(p))
	}
	for i := uint32(0); i < t.spec.DataWords; i++ {
		j.dataSnapshot = append(j.dataSnapshot, k.mem.Peek(t.spec.DataStart+i*4))
	}
	j.deadlineEvent = k.sim.Schedule(j.deadline, des.PrioKernel, j.deadlineFn)
	k.ready = append(k.ready, j)
	k.trace(TraceRelease, t.spec.Name, 0, "")
	k.scheduleDispatch()
}

// acquireJob returns a recycled job record for t, or a fresh one with
// its continuation callbacks bound. A settled record is only reused once
// no queued event still references it (its chain handle is no longer
// scheduled), so a stale continuation firing late — e.g. a copy-complete
// event outliving a deadline omission at the same instant — can never
// observe a new incarnation of its job. Slice backings survive the reset
// ([:0]), which is what makes steady-state releases allocation-free.
//
//nlft:noalloc
func (k *Kernel) acquireJob(t *tcb) *job {
	var j *job
	for i := len(t.freeJobs) - 1; i >= 0; i-- {
		cand := t.freeJobs[i]
		if k.sim.Scheduled(cand.chainEvent) {
			continue
		}
		t.freeJobs = append(t.freeJobs[:i], t.freeJobs[i+1:]...)
		j = cand
		break
	}
	if j == nil {
		//nlft:allow noalloc cold pool-miss path: one job record per concurrency level, amortized to zero
		j = &job{task: t}
		j.deadlineFn = func() { k.deadlineCheck(j) }                   //nlft:allow noalloc cold pool-miss path: continuation bound once per job record
		j.runSliceFn = func() { k.runSlice(j) }                        //nlft:allow noalloc cold pool-miss path: continuation bound once per job record
		j.resumeFn = func() { k.dispatchIfCurrent(j) }                 //nlft:allow noalloc cold pool-miss path: continuation bound once per job record
		j.completeFn = func() { k.copyComplete(j) }                    //nlft:allow noalloc cold pool-miss path: continuation bound once per job record
		j.errorFn = func() { k.handleDetectedError(j, j.pendingMech) } //nlft:allow noalloc cold pool-miss path: continuation bound once per job record
		t.allJobs = append(t.allJobs, j)
	}
	j.state = jobReady
	j.copyIndex = 1
	j.nresults = 0
	j.started = false
	j.cyclesUsed = 0
	j.inputLatch = j.inputLatch[:0]
	j.outputs = j.outputs[:0]
	j.dataSnapshot = j.dataSnapshot[:0]
	j.errorsDetected = 0
	j.detectedBy = j.detectedBy[:0]
	j.deadlineEvent = des.Event{}
	j.chainEvent = des.Event{}
	j.pendingMech = ""
	return j
}

// retireJob returns a settled job record to its task's free list.
//
//nlft:noalloc
func (k *Kernel) retireJob(j *job) {
	j.task.freeJobs = append(j.task.freeJobs, j)
}

// scheduleDispatch arranges a dispatch pass after the current events.
//
//nlft:noalloc
func (k *Kernel) scheduleDispatch() {
	if k.dispatchPending || k.failed {
		return
	}
	k.dispatchPending = true
	k.sim.Schedule(k.sim.Now(), des.PrioDispatch, k.dispatchFn)
}

// pickBest returns the highest-priority ready job.
//
//nlft:noalloc
func (k *Kernel) pickBest() *job {
	var best *job
	for _, j := range k.ready {
		if j.state == jobDone {
			continue
		}
		if best == nil || j.task.spec.Priority > best.task.spec.Priority {
			best = j
		}
	}
	return best
}

// removeJob drops a job from the ready set.
//
//nlft:noalloc
func (k *Kernel) removeJob(j *job) {
	for i, other := range k.ready {
		if other == j {
			k.ready = append(k.ready[:i], k.ready[i+1:]...)
			return
		}
	}
}

// dispatch selects the job to run and starts (or continues) a run slice.
//
//nlft:noalloc
func (k *Kernel) dispatch() {
	k.dispatchPending = false
	if k.failed {
		return
	}
	if k.sim.Now() < k.cpuBusyUntil {
		// The CPU already committed a slice spanning this instant; its
		// follow-up event will re-enter the dispatcher.
		return
	}
	best := k.pickBest()
	if best == nil {
		k.current = nil
		return
	}
	if best != k.current {
		if k.current != nil && k.current.state != jobDone && k.current.started {
			// Mid-copy preemption; the context was saved at slice end.
			k.current.state = jobReady
			k.trace(TracePreempt, k.current.task.spec.Name, k.current.copyIndex, "")
		}
		k.current = best
		if k.cfg.Obs != nil {
			k.cfg.Obs.Emit(obs.Event{
				At: k.sim.Now(), Kind: obs.KindDispatch,
				Task: best.task.spec.Name, Copy: best.copyIndex,
			})
		}
		// Context-switch overhead: the kernel occupies the CPU first.
		k.stats.KernelCycles += k.cfg.SwitchCycles
		if k.obsKernelCycles != nil {
			k.obsKernelCycles.Add(k.cfg.SwitchCycles)
		}
		k.kernelBusyUntil = k.sim.Now() + des.Time(k.cfg.SwitchCycles)*k.cyclePeriod
		if k.OnContextSwitch != nil {
			k.OnContextSwitch(k.sim.Now(), k.kernelBusyUntil)
		}
		best.chainEvent = k.sim.Schedule(k.kernelBusyUntil, des.PrioDispatch, best.runSliceFn)
		return
	}
	k.runSlice(best)
}

// startCopy initializes a fresh copy: context from the TCB template and
// the state region from the release snapshot (replica determinism).
//
//nlft:noalloc
func (k *Kernel) startCopy(j *job) {
	t := j.task
	var snap cpu.Snapshot
	snap.PC = t.entryPC
	snap.Regs[cpu.RegSP] = t.spec.StackStart + t.spec.StackWords*4
	k.proc.Restore(snap)
	k.procOwner = j
	for i, w := range j.dataSnapshot {
		k.mem.Poke(t.spec.DataStart+uint32(i)*4, w)
	}
	j.outputs = j.outputs[:0]
	j.cyclesUsed = 0
	j.started = true
	k.trace(TraceCopyStart, t.spec.Name, j.copyIndex, "")
}

// budgetCycles converts the task's per-copy budget to cycles.
//
//nlft:noalloc
func (k *Kernel) budgetCycles(t *tcb) uint64 {
	return uint64(t.spec.Budget / k.cyclePeriod)
}

// runSlice runs the current job on the CPU until the next simulation
// event, its budget, an exception, or copy completion.
//
//nlft:noalloc
func (k *Kernel) runSlice(j *job) {
	if k.failed || k.current != j || j.state == jobDone {
		return
	}
	now := k.sim.Now()
	if !j.started {
		k.startCopy(j)
	} else if j.state == jobReady && k.procOwner != j {
		// Resuming after a real context switch: another job (or a fresh
		// copy) used the processor meanwhile, so reload the saved context
		// from the TCB area.
		k.proc.Restore(j.ctx)
		k.procOwner = j
		k.trace(TraceResume, j.task.spec.Name, j.copyIndex, "")
	}
	j.state = jobRunning
	if k.cfg.UseMMU {
		k.mmu.SetRegions(j.task.regions)
	} else {
		k.mmu.Disable()
	}

	budget := k.budgetCycles(j.task)
	if j.cyclesUsed >= budget {
		k.handleDetectedError(j, "budget-timer")
		return
	}
	budgetLeft := budget - j.cyclesUsed

	// Bound the slice by the next event strictly after now: all
	// same-instant events that could change this kernel's ready set
	// fired before this dispatch (they carry lower tie-break
	// priorities), and other components' same-instant events cannot
	// affect this CPU mid-slice.
	limit := k.sim.NextEventAfter(now)
	var sliceCycles uint64
	if limit == des.MaxTime {
		sliceCycles = budgetLeft
	} else {
		sliceCycles = uint64((limit - now) / k.cyclePeriod)
		if sliceCycles == 0 {
			sliceCycles = 1
		}
	}
	if sliceCycles > budgetLeft {
		sliceCycles = budgetLeft
	}

	ev, exc, used := k.proc.RunCycles(sliceCycles)
	j.cyclesUsed += used
	k.stats.TaskCycles += used
	if k.obsTaskCycles != nil {
		k.obsTaskCycles.Add(used)
	}
	end := now + des.Time(used)*k.cyclePeriod
	k.cpuBusyUntil = end

	switch {
	case exc != nil:
		// A hardware EDM trapped (scenario iii/iv of Figure 3). HALT in a
		// task is equally unexpected and treated as a detected error.
		j.pendingMech = exc.Kind.String()
		j.chainEvent = k.sim.Schedule(end, des.PrioKernel, j.errorFn)
	case ev.Sys == cpu.SysEnd:
		k.captureResult(j)
		j.chainEvent = k.sim.Schedule(end, des.PrioKernel, j.completeFn)
	case ev.Sys == cpu.SysYield:
		j.ctx = k.proc.Snapshot()
		j.state = jobReady
		j.chainEvent = k.sim.Schedule(end, des.PrioDispatch, j.resumeFn)
	case j.cyclesUsed >= budget:
		// Execution-time monitor fired (Table 1).
		j.pendingMech = "budget-timer"
		j.chainEvent = k.sim.Schedule(end, des.PrioKernel, j.errorFn)
	default:
		// Slice exhausted by an upcoming event; save context and let the
		// dispatcher decide after that event settles.
		j.ctx = k.proc.Snapshot()
		j.state = jobReady
		j.chainEvent = k.sim.Schedule(end, des.PrioDispatch, j.resumeFn)
	}
}

// dispatchIfCurrent continues j if it is still the best choice.
//
//nlft:noalloc
func (k *Kernel) dispatchIfCurrent(j *job) {
	if k.failed || j.state == jobDone {
		return
	}
	k.dispatch()
}

// captureResult reads the copy's result vector at slice end into the
// job's next result slot, reusing the slot's backing arrays. The slot is
// claimed (nresults advanced) only when copyComplete accepts the copy, so
// a discarded copy's data is simply overwritten by the next capture.
//
//nlft:noalloc
func (k *Kernel) captureResult(j *job) {
	t := j.task
	if j.nresults >= len(j.results) {
		//nlft:allow noalloc panic message on a state-machine bug; unreachable in a correct kernel
		panic(fmt.Sprintf("kernel: %d results for task %s", j.nresults+1, t.spec.Name))
	}
	res := &j.results[j.nresults]
	res.writes = append(res.writes[:0], j.outputs...)
	res.signature = k.proc.Signature
	res.dataImage = res.dataImage[:0]
	for i := uint32(0); i < t.spec.DataWords; i++ {
		res.dataImage = append(res.dataImage, k.mem.Peek(t.spec.DataStart+i*4))
	}
}

// timeForAnotherCopy checks the paper's deadline test: can one more copy
// (conservatively, a full budget) finish before the job's deadline?
//
//nlft:noalloc
func (k *Kernel) timeForAnotherCopy(j *job) bool {
	return k.sim.Now()+j.task.spec.Budget <= j.deadline
}

// handleDetectedError implements the recovery path for errors detected
// by hardware EDMs, the budget timer, or kernel checks: terminate the
// affected copy, restore the task context from the TCB, and start a new
// copy immediately if the deadline permits (Figure 3, scenarios iii/iv).
func (k *Kernel) handleDetectedError(j *job, mechanism string) {
	if k.failed || j.state == jobDone {
		return
	}
	k.countDetected(j.task.spec.Name, mechanism)
	j.errorsDetected++
	j.detectedBy = append(j.detectedBy, mechanism)
	k.trace(TraceErrorDetected, j.task.spec.Name, j.copyIndex, mechanism)

	if k.cfg.FailSilentOnError {
		k.emitOutcome(j, OutcomeOmission)
		k.failSilent("fail-silent node: error detected by " + mechanism)
		return
	}
	if j.task.spec.Criticality == NonCritical {
		k.shutdownTask(j, mechanism)
		return
	}
	// Discard the affected copy and restart it with a clean context.
	if k.cfg.NoContextRestore {
		// Ablation: resume the corrupted context instead of restoring
		// from the TCB. The copy continues from wherever the error left
		// the registers — §2.5 explains why this defeats recovery.
		j.ctx = k.proc.Snapshot()
		j.ctx.PC += 4 // skip the faulting instruction to avoid a hard wedge
		j.started = true
	} else {
		j.started = false
	}
	j.state = jobReady
	if j == k.current {
		k.current = nil
	}
	k.procOwner = nil
	if !k.timeForAnotherCopy(j) {
		k.omission(j, "no time to re-execute after "+mechanism)
		return
	}
	k.scheduleDispatch()
}

// copyComplete advances the TEM state machine after a copy finished
// normally (Figure 3). The copy's result sits in the job's next result
// slot, captured at slice end.
//
//nlft:noalloc
func (k *Kernel) copyComplete(j *job) {
	if k.failed || j.state == jobDone {
		return
	}
	t := j.task
	res := &j.results[j.nresults]
	if j.cyclesUsed > t.maxCopyCycles {
		t.maxCopyCycles = j.cyclesUsed
	}
	if t.obsCopyCycles != nil {
		t.obsCopyCycles.Observe(j.cyclesUsed)
	}
	if k.cfg.Trace != nil || k.cfg.Obs != nil {
		//nlft:allow noalloc trace detail built only when a trace or telemetry sink is attached; the zero-alloc gate runs detached
		k.trace(TraceCopyEnd, t.spec.Name, j.copyIndex, fmt.Sprintf("crc=%08x", res.crc()))
	}
	j.state = jobReady
	j.started = false
	if j == k.current {
		k.current = nil
	}

	// Control-flow signature check against the golden value (§2.7).
	if t.spec.ExpectedSignature != 0 && res.signature != t.spec.ExpectedSignature {
		k.handleDetectedError(j, "signature")
		return
	}

	if t.spec.Criticality == NonCritical || k.cfg.FailSilentOnError {
		// Non-critical tasks — and every task on a conventional
		// fail-silent node — run a single copy and commit directly:
		// fail-silent nodes rely on hardware EDMs alone, with no
		// time-redundant comparison.
		k.commit(j, res)
		return
	}

	j.nresults++
	switch j.nresults {
	case 1:
		j.copyIndex = 2
		k.scheduleDispatch()
	case 2:
		if k.cfg.AlwaysTriple {
			// Ablation: unconditional third copy (time-redundant TMR).
			j.copyIndex = 3
			k.scheduleDispatch()
			return
		}
		if k.resultsEqual(&j.results[0], &j.results[1]) {
			k.trace(TraceCompareMatch, t.spec.Name, 0, "")
			k.commit(j, &j.results[0])
			return
		}
		// Scenario ii: comparison detected an error; run a third copy if
		// the deadline allows, then vote.
		k.countDetected(t.spec.Name, "comparison")
		j.errorsDetected++
		j.detectedBy = append(j.detectedBy, "comparison")
		k.trace(TraceCompareMismatch, t.spec.Name, 0, "")
		if !k.timeForAnotherCopy(j) {
			k.omission(j, "no time for third copy")
			return
		}
		j.copyIndex = 3
		k.scheduleDispatch()
	case 3:
		// Majority vote. Any disagreement among the three copies is a
		// detected error (relevant in AlwaysTriple mode, where no
		// pairwise comparison ran earlier).
		firstTwoAgree := k.resultsEqual(&j.results[0], &j.results[1])
		if !(firstTwoAgree &&
			k.resultsEqual(&j.results[1], &j.results[2])) && j.errorsDetected == 0 {
			k.countDetected(t.spec.Name, "vote")
			j.errorsDetected++
			j.detectedBy = append(j.detectedBy, "vote")
		}
		var winner *copyResult
		switch {
		case firstTwoAgree:
			winner = &j.results[0]
		case k.resultsEqual(&j.results[0], &j.results[2]):
			winner = &j.results[0]
		case k.resultsEqual(&j.results[1], &j.results[2]):
			winner = &j.results[1]
		}
		if winner == nil {
			k.trace(TraceVote, t.spec.Name, 0, "no majority")
			k.omission(j, "three divergent results")
			return
		}
		k.trace(TraceVote, t.spec.Name, 0, "majority found")
		k.commit(j, winner)
	default:
		//nlft:allow noalloc panic message on a state-machine bug; unreachable in a correct kernel
		panic(fmt.Sprintf("kernel: %d results for task %s", j.nresults, t.spec.Name))
	}
}

// resultsEqual compares two copy results under the configured scope.
//
//nlft:noalloc
func (k *Kernel) resultsEqual(a, b *copyResult) bool {
	if k.cfg.CompareOutputsOnly {
		if len(a.writes) != len(b.writes) {
			return false
		}
		for i := range a.writes {
			if a.writes[i] != b.writes[i] {
				return false
			}
		}
		return true
	}
	return a.equal(b)
}

// commit delivers a result: outputs to the environment, the winning
// state image to memory, and the state CRC to the TCB. Only here do
// results leave the node (§2.5: "the task result is delivered and the
// state data are only updated when two matching results have been
// produced").
//
//nlft:noalloc
func (k *Kernel) commit(j *job, res *copyResult) {
	t := j.task
	j.state = jobDone
	k.removeJob(j)
	k.sim.Cancel(j.deadlineEvent)
	for _, w := range res.writes {
		k.env.WriteOutput(w.port, w.value)
	}
	if t.spec.DataWords > 0 {
		for i, w := range res.dataImage {
			k.mem.Poke(t.spec.DataStart+uint32(i)*4, w)
		}
		t.stateImage = append(t.stateImage[:0], res.dataImage...)
		t.stateCRC = t.dataCRC(k.mem)
		t.stateCRCSet = true
	}
	outcome := OutcomeOK
	if j.errorsDetected > 0 {
		outcome = OutcomeMasked
		k.stats.Masked++
		t.consecutiveErrors++
	} else {
		k.stats.OK++
		t.consecutiveErrors = 0
	}
	k.trace(TraceCommit, t.spec.Name, 0, outcome.String())
	k.emitOutcome(j, outcome)
	if t.consecutiveErrors >= k.cfg.PermanentThreshold {
		//nlft:allow noalloc permanent-fault suspicion message; reached only after consecutive error releases
		k.failSilent(fmt.Sprintf("suspected permanent fault: %d consecutive error releases of %s",
			t.consecutiveErrors, t.spec.Name))
		return
	}
	if j == k.current {
		k.current = nil
	}
	k.retireJob(j)
	k.scheduleDispatch()
}

// omission enforces an omission failure for the release: no result.
func (k *Kernel) omission(j *job, reason string) {
	t := j.task
	j.state = jobDone
	k.removeJob(j)
	k.sim.Cancel(j.deadlineEvent)
	if j == k.current {
		k.current = nil
	}
	k.stats.Omissions++
	t.consecutiveErrors++
	k.trace(TraceOmission, t.spec.Name, 0, reason)
	k.emitOutcome(j, OutcomeOmission)
	if t.consecutiveErrors >= k.cfg.PermanentThreshold {
		k.failSilent(fmt.Sprintf("suspected permanent fault: %d consecutive error releases of %s",
			t.consecutiveErrors, t.spec.Name))
		return
	}
	k.retireJob(j)
	k.scheduleDispatch()
}

// shutdownTask stops a non-critical task after a detected error (§2.2).
func (k *Kernel) shutdownTask(j *job, reason string) {
	t := j.task
	j.state = jobDone
	k.removeJob(j)
	k.sim.Cancel(j.deadlineEvent)
	if j == k.current {
		k.current = nil
	}
	t.alive = false
	k.stats.TaskShutdowns++
	k.trace(TraceTaskShutdown, t.spec.Name, 0, reason)
	k.emitOutcome(j, OutcomeTaskShutdown)
	k.retireJob(j)
	k.scheduleDispatch()
}

// deadlineCheck fires at the job's absolute deadline.
func (k *Kernel) deadlineCheck(j *job) {
	if k.failed || j.state == jobDone {
		return
	}
	k.omission(j, "deadline reached")
}

// emitOutcome counts the release outcome and invokes the outcome hook.
//
//nlft:noalloc
func (k *Kernel) emitOutcome(j *job, o Outcome) {
	if k.cfg.Obs != nil {
		k.cfg.Obs.Counter("kernel.outcomes", j.task.spec.Name, o.String()).Inc()
	}
	if k.OnOutcome == nil {
		return
	}
	k.OnOutcome(OutcomeInfo{
		Task:           j.task.spec.Name,
		Release:        j.release,
		SettledAt:      k.sim.Now(),
		Outcome:        o,
		ErrorsDetected: j.errorsDetected,
		//nlft:allow noalloc hook payload clones the slice for the consumer; the zero-alloc gate runs with no hook
		DetectedBy: append([]string(nil), j.detectedBy...),
	})
}

// failSilent shuts the node down (§2.2 strategy 3 and §2.5 permanent
// suspicion): the node stops producing outputs until restarted at the
// system level.
func (k *Kernel) failSilent(reason string) {
	if k.failed {
		return
	}
	k.failed = true
	k.failReason = reason
	k.current = nil
	// Truncate rather than nil out the ready set: the backing array is
	// retained so a checkpoint restore (internal/fault's fork engine) can
	// rebuild it without allocating.
	k.ready = k.ready[:0]
	k.trace(TraceNodeFailSilent, "", 0, reason)
	if k.OnFailSilent != nil {
		k.OnFailSilent(k.sim.Now(), reason)
	}
}

// ObservedWCET reports the worst-case execution time of one copy of the
// named task observed so far — the measured C fed into the §2.8
// schedulability analysis (sched.Task.C). ok is false if the task is
// unknown or has not completed a copy yet.
func (k *Kernel) ObservedWCET(task string) (wcet des.Time, ok bool) {
	t, found := k.tasks[task]
	if !found || t.maxCopyCycles == 0 {
		return 0, false
	}
	return des.Time(t.maxCopyCycles) * k.cyclePeriod, true
}

// ForceFailSilent lets the campaign driver model errors detected during
// kernel execution (§2.2: "errors detected during execution of the
// real-time kernel should result in the node becoming silent").
func (k *Kernel) ForceFailSilent(reason string) { k.failSilent(reason) }

// LoadPort implements cpu.IOBus: reads return the release-time latch.
// The latch is a slice parallel to the spec's InputPorts; the linear
// scan beats a map for the handful of ports a task declares and keeps
// the I/O path allocation-free.
//
//nlft:noalloc
func (k *Kernel) LoadPort(port uint32) (uint32, error) {
	if k.current == nil {
		//nlft:allow noalloc error on a bus access with no running task; unreachable from kernel-driven execution
		return 0, fmt.Errorf("kernel: input port %d read with no task running", port)
	}
	for i, p := range k.current.task.spec.InputPorts {
		if p == port {
			return k.current.inputLatch[i], nil
		}
	}
	//nlft:allow noalloc error on an undeclared port; a correct task image never takes it
	return 0, fmt.Errorf("kernel: task %s reads undeclared input port %d",
		k.current.task.spec.Name, port)
}

// StorePort implements cpu.IOBus: writes are buffered in the running
// copy's result vector (end-to-end checked delivery).
//
//nlft:noalloc
func (k *Kernel) StorePort(port, value uint32) error {
	if k.current == nil {
		//nlft:allow noalloc error on a bus access with no running task; unreachable from kernel-driven execution
		return fmt.Errorf("kernel: output port %d written with no task running", port)
	}
	k.current.outputs = append(k.current.outputs, portWrite{port: port, value: value})
	return nil
}

var _ cpu.IOBus = (*Kernel)(nil)
