package kernel

import (
	"strings"
	"testing"

	"repro/internal/des"
)

// TestDeadlineFiresMidExecution: a task whose fault-free execution
// cannot fit its deadline is cut off by the deadline monitor itself
// (not by the recovery-time check).
func TestDeadlineFiresMidExecution(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{PermanentThreshold: 100})
	spec := taskABase(t, burnSrc) // ~80 µs per copy; two copies ≈ 165 µs
	spec.InputPorts = nil
	spec.Deadline = 150 * des.Microsecond
	spec.Budget = 120 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Omissions != 1 || st.OK != 0 {
		t.Fatalf("stats = %+v", st)
	}
	om := trace.Filter(TraceOmission)
	if len(om) != 1 || !strings.Contains(om[0].Detail, "deadline") {
		t.Errorf("omission events = %v", om)
	}
	if len(env.writes) != 0 {
		t.Errorf("writes = %v", env.writes)
	}
}

// yieldSrc interleaves cooperative yields with computation.
const yieldSrc = `
	.org 0x0000
start:
	movi r5, 10
	movi r6, 0
loop:
	add r6, r6, r5
	sys 1              ; yield
	addi r5, r5, -1
	cmpi r5, 0
	bgt loop
	li r1, 0xFFFF0000
	st r6, [r1+4]
	sys 2
`

// TestSysYieldContinuesExecution: SYS yield relinquishes the CPU but the
// copy resumes and completes with the right result (sum 1..10 = 55).
func TestSysYield(t *testing.T) {
	sim, env, k, _ := buildKernel(t, Config{})
	spec := taskABase(t, yieldSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if len(env.writes) != 1 || env.writes[0].value != 55 {
		t.Fatalf("writes = %v", env.writes)
	}
	if k.Stats().OK != 1 {
		t.Errorf("stats = %+v", k.Stats())
	}
}

// TestTraceLimitAndHelpers covers the bounded trace and its filters.
func TestTraceLimitAndHelpers(t *testing.T) {
	sim, env, k, trace := buildKernel(t, Config{})
	trace.Limit = 5
	env.inputs[0] = 1
	if err := k.AddTask(taskABase(t, adderSrc)); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(5 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(trace.Events) != 5 {
		t.Errorf("events = %d, want capped 5", len(trace.Events))
	}
	if trace.Dropped == 0 {
		t.Error("no drops recorded")
	}
	if got := trace.ForTask("taskA"); len(got) == 0 {
		t.Error("ForTask found nothing")
	}
	if got := trace.ForTask("ghost"); len(got) != 0 {
		t.Errorf("ForTask(ghost) = %v", got)
	}
	for _, e := range trace.Events {
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
}

// TestStringersNamed covers the enum String methods, including unknowns.
func TestStringersNamed(t *testing.T) {
	for _, k := range []EventKind{TraceRelease, TraceCopyStart, TraceCopyEnd,
		TracePreempt, TraceResume, TraceErrorDetected, TraceCompareMatch,
		TraceCompareMismatch, TraceVote, TraceCommit, TraceOmission,
		TraceTaskShutdown, TraceNodeFailSilent, TraceStateCRCError, EventKind(99)} {
		if k.String() == "" {
			t.Errorf("EventKind(%d) unnamed", int(k))
		}
	}
	for _, a := range []Activity{ActivityIdle, ActivityTask, ActivityKernel, Activity(9)} {
		if a.String() == "" {
			t.Errorf("Activity(%d) unnamed", int(a))
		}
	}
	for _, c := range []Criticality{NonCritical, Critical, Criticality(9)} {
		if c.String() == "" {
			t.Errorf("Criticality(%d) unnamed", int(c))
		}
	}
	for _, o := range []Outcome{OutcomeOK, OutcomeMasked, OutcomeOmission,
		OutcomeTaskShutdown, Outcome(9)} {
		if o.String() == "" {
			t.Errorf("Outcome(%d) unnamed", int(o))
		}
	}
}

// TestCurrentTaskProbe covers the running-task observer.
func TestCurrentTaskProbe(t *testing.T) {
	sim, _, k, _ := buildKernel(t, Config{})
	spec := taskABase(t, burnSrc)
	spec.InputPorts = nil
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if k.CurrentTask() != "" {
		t.Error("task running before simulation")
	}
	var during string
	sim.Schedule(50*des.Microsecond, des.PrioObserver, func() { during = k.CurrentTask() })
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if during != "taskA" {
		t.Errorf("current task mid-copy = %q", during)
	}
}

// TestUndeclaredInputPortIsBusError: reading a port outside the latch is
// a bus error, detected like any other EDM trap.
func TestUndeclaredInputPortIsBusError(t *testing.T) {
	sim, _, k, _ := buildKernel(t, Config{PermanentThreshold: 100})
	spec := taskABase(t, adderSrc)
	spec.InputPorts = nil // program still reads port 0
	spec.Deadline = 300 * des.Microsecond
	spec.Budget = 50 * des.Microsecond
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	if k.Stats().ErrorsDetected["bus-error"] == 0 {
		t.Errorf("mechanisms = %v", k.Stats().ErrorsDetected)
	}
}
