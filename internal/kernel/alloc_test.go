// Allocation gate for the zero-allocation DES core (see internal/des):
// after the first hyperperiod warms the pools — event slots, recycled
// job records, result backings, latch and snapshot slices — a
// steady-state hyperperiod of fault-free TEM execution must perform no
// heap allocations at all, with telemetry, tracing and hooks off. The
// race detector instruments allocations, so this only runs in non-race
// builds (CI runs it as a separate step).

//go:build !race

package kernel

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/des"
)

// nullEnv discards outputs and reads zero inputs, keeping the
// environment off the allocation profile.
type nullEnv struct{}

func (nullEnv) ReadInput(port uint32) uint32   { return 0 }
func (nullEnv) WriteOutput(port, value uint32) {}

func TestWarmHyperperiodZeroAlloc(t *testing.T) {
	sim := des.New()
	k := New(sim, nullEnv{}, Config{})

	high := taskABase(t, adderSrc)
	high.Name = "high"
	if err := k.AddTask(high); err != nil {
		t.Fatal(err)
	}
	lowSrc := strings.Replace(burnSrc, ".org 0x0000", ".org 0x1000", 1)
	low := TaskSpec{
		Name:        "low",
		Program:     cpu.MustAssemble(lowSrc),
		Entry:       "start",
		Period:      2 * des.Millisecond,
		Deadline:    2 * des.Millisecond,
		Priority:    1,
		Criticality: Critical,
		Budget:      300 * des.Microsecond,
		OutputPorts: []uint32{1},
		DataStart:   dataB,
		DataWords:   8,
		StackStart:  stackB,
		StackWords:  64,
	}
	if err := k.AddTask(low); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}

	// Warm-up: several hyperperiods populate every pool and backing.
	const hyperperiod = 2 * des.Millisecond
	target := 10 * hyperperiod
	if err := sim.RunUntil(target); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(10, func() {
		target += hyperperiod
		if err := sim.RunUntil(target); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm TEM hyperperiod: %v allocs per run, want 0", allocs)
	}

	// The run must have been doing real work, not idling.
	st := k.Stats()
	if st.Releases == 0 || st.OK == 0 || st.TaskCycles == 0 {
		t.Fatalf("kernel idle during alloc gate: %+v", st)
	}
	if failed, reason := k.Failed(); failed {
		t.Fatalf("node failed during alloc gate: %s", reason)
	}
}
