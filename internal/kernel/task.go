// Package kernel simulates the paper's fault-tolerant real-time kernel:
// fixed-priority preemptive scheduling of periodic tasks on the simulated
// COTS processor (internal/cpu), with the light-weight NLFT error
// handling of §2: temporal error masking (double execution, comparison,
// third copy and majority vote), CPU-context restore from the task
// control block after EDM-detected errors, execution-time budgets,
// deadline enforcement with omission failures, data-integrity CRCs on
// task state, and end-to-end checked delivery of task outputs.
//
// The kernel is driven by a discrete-event simulator (internal/des):
// task execution is co-simulated by running the CPU interpreter in
// slices bounded by the next simulation event, so preemption, budgets
// and deadlines are exact in simulated time.
package kernel

import (
	"fmt"
	"hash/crc32"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/obs"
)

// Criticality classes of §2.2.
type Criticality int

const (
	// NonCritical tasks run once per release; a detected error shuts the
	// task down, leaving the rest of the node running.
	NonCritical Criticality = iota + 1
	// Critical tasks are executed under temporal error masking.
	Critical
)

// String names the class.
func (c Criticality) String() string {
	switch c {
	case NonCritical:
		return "non-critical"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("criticality(%d)", int(c))
	}
}

// TaskSpec declares a task to the kernel.
type TaskSpec struct {
	// Name identifies the task.
	Name string
	// Program is the task's assembled code; it is loaded at its origin.
	Program *cpu.Program
	// Entry is the label where a copy starts executing.
	Entry string
	// Period is the release period (for sporadic tasks, the minimal
	// inter-arrival time).
	Period des.Time
	// Sporadic tasks are not released periodically; the application
	// releases them with Kernel.Trigger (§2.8: fixed-priority scheduling
	// "allows both periodic and sporadic task executions"). Period acts
	// as the minimal inter-arrival time: earlier triggers are deferred.
	Sporadic bool
	// Deadline is the relative deadline (≤ Period).
	Deadline des.Time
	// Offset delays the first release.
	Offset des.Time
	// Priority: higher runs first. Must be unique within a kernel.
	Priority int
	// Criticality selects TEM (Critical) or single execution.
	Criticality Criticality
	// Budget is the execution-time monitor limit for one copy.
	Budget des.Time
	// InputPorts are latched from the environment at release, so every
	// TEM copy observes identical inputs (replica determinism, §2.6).
	InputPorts []uint32
	// OutputPorts are the ports the task may write; writes are buffered
	// per copy and committed only after a successful compare/vote.
	OutputPorts []uint32
	// DataStart/DataWords is the task's state region (checked by CRC and
	// restored between copies).
	DataStart uint32
	DataWords uint32
	// StackStart/StackWords is the task's stack region; SP starts at the
	// top.
	StackStart uint32
	StackWords uint32
	// ExpectedSignature, when nonzero, is the golden control-flow
	// signature a correct copy must produce (§2.7). Zero disables the
	// absolute check (copies are still compared against each other).
	ExpectedSignature uint32
}

// Validate checks the spec's invariants.
func (s TaskSpec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("kernel: task without name")
	}
	if s.Program == nil {
		return fmt.Errorf("kernel: task %s without program", s.Name)
	}
	if _, err := s.Program.Entry(s.Entry); err != nil {
		return fmt.Errorf("kernel: task %s: %w", s.Name, err)
	}
	if s.Period <= 0 {
		return fmt.Errorf("kernel: task %s: period %v", s.Name, s.Period)
	}
	if s.Deadline <= 0 || s.Deadline > s.Period {
		return fmt.Errorf("kernel: task %s: deadline %v not in (0, period]", s.Name, s.Deadline)
	}
	if s.Budget <= 0 {
		return fmt.Errorf("kernel: task %s: budget %v", s.Name, s.Budget)
	}
	if s.Offset < 0 {
		return fmt.Errorf("kernel: task %s: negative offset", s.Name)
	}
	if s.Criticality != Critical && s.Criticality != NonCritical {
		return fmt.Errorf("kernel: task %s: bad criticality %v", s.Name, s.Criticality)
	}
	if s.StackWords == 0 {
		return fmt.Errorf("kernel: task %s: no stack", s.Name)
	}
	return nil
}

// Outcome classifies one release of a task.
type Outcome int

// Release outcomes, in the paper's terms.
const (
	// OutcomeOK: results delivered, no error observed.
	OutcomeOK Outcome = iota + 1
	// OutcomeMasked: one or more errors were detected and masked by TEM;
	// correct results were still delivered on time.
	OutcomeMasked
	// OutcomeOmission: no result delivered by the deadline (detected
	// error without time to recover, or three disagreeing results).
	OutcomeOmission
	// OutcomeTaskShutdown: a non-critical task was stopped after an error.
	OutcomeTaskShutdown
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeOK:
		return "ok"
	case OutcomeMasked:
		return "masked"
	case OutcomeOmission:
		return "omission"
	case OutcomeTaskShutdown:
		return "task-shutdown"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// portWrite is one buffered output-port write.
type portWrite struct {
	port  uint32
	value uint32
}

// copyResult captures everything TEM compares between two task copies:
// the output write sequence, the final state-region image, and the
// control-flow signature.
type copyResult struct {
	writes    []portWrite
	dataImage []uint32
	signature uint32
}

// equal reports whether two copies produced identical results.
func (r *copyResult) equal(other *copyResult) bool {
	if r.signature != other.signature {
		return false
	}
	if len(r.writes) != len(other.writes) {
		return false
	}
	for i := range r.writes {
		if r.writes[i] != other.writes[i] {
			return false
		}
	}
	if len(r.dataImage) != len(other.dataImage) {
		return false
	}
	for i := range r.dataImage {
		if r.dataImage[i] != other.dataImage[i] {
			return false
		}
	}
	return true
}

// crc returns a checksum over the result for traces.
func (r *copyResult) crc() uint32 {
	h := crc32.NewIEEE()
	var buf [4]byte
	put := func(v uint32) {
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		h.Write(buf[:])
	}
	for _, w := range r.writes {
		put(w.port)
		put(w.value)
	}
	for _, w := range r.dataImage {
		put(w)
	}
	put(r.signature)
	return h.Sum32()
}

// tcb is the task control block.
type tcb struct {
	spec    TaskSpec
	entryPC uint32
	regions []cpu.Region
	// releaseFn and deferredTriggerFn are the task's bound release
	// callbacks, created once at AddTask so periodic releases and
	// deferred sporadic activations re-arm events without allocating a
	// closure per period.
	releaseFn         func()
	deferredTriggerFn func()
	// freeJobs holds settled job records for recycling: a release reuses
	// one instead of allocating, so a steady-state hyperperiod runs
	// allocation-free. At most two records rotate per task (the old job
	// can still be live at its deadline when the next release fires).
	freeJobs []*job
	// allJobs lists every job record ever allocated for this task, in
	// allocation order. The checkpoint/fork engine uses it as the stable
	// enumeration of the task's job pool: snapshots index jobs by their
	// position here, so a restore can rewind each record in place without
	// breaking the identity that the record's bound continuation
	// callbacks and any queued events rely on.
	allJobs []*job
	// stateCRC protects the task's state region between activations
	// (data-integrity check, Table 1); stateImage is the committed copy
	// used to recover from a CRC mismatch (data duplication, §2.6).
	stateCRC     uint32
	stateCRCSet  bool
	stateImage   []uint32
	alive        bool
	releaseCount uint64
	// lastRelease enforces the sporadic minimal inter-arrival time;
	// pendingTrigger marks a deferred sporadic activation.
	lastRelease    des.Time
	hasReleased    bool
	pendingTrigger bool
	// maxCopyCycles tracks the worst observed execution of one copy —
	// the measured WCET fed into the schedulability analysis (§2.8).
	maxCopyCycles uint64
	// obsCopyCycles is the task's telemetry histogram of per-copy cycle
	// counts (nil when the kernel has no collector).
	obsCopyCycles *obs.Histogram
	// consecutiveErrors counts releases in a row that saw detected
	// errors; crossing the kernel's threshold suggests a permanent fault.
	consecutiveErrors int
	// crcBuf is dataCRC's word-encoding scratch. It lives in the TCB
	// (already heap-resident) because a stack buffer passed to
	// crc32.Update escapes and would cost one allocation per call.
	crcBuf [4]byte
}

// dataCRC computes the CRC of the task's state region. The incremental
// crc32.Update form yields the same checksum as a NewIEEE digest without
// allocating one per call (this runs at every release and commit).
func (t *tcb) dataCRC(mem *cpu.Memory) uint32 {
	var crc uint32
	buf := t.crcBuf[:]
	for i := uint32(0); i < t.spec.DataWords; i++ {
		v := mem.Peek(t.spec.DataStart + i*4)
		buf[0] = byte(v)
		buf[1] = byte(v >> 8)
		buf[2] = byte(v >> 16)
		buf[3] = byte(v >> 24)
		crc = crc32.Update(crc, crc32.IEEETable, buf)
	}
	return crc
}

// jobState tracks one release through the TEM state machine.
type jobState int

const (
	jobReady jobState = iota + 1
	jobRunning
	jobDone
)

// job is one activation (release) of a task. Job records are recycled
// through tcb.freeJobs; every slice-typed field keeps its backing array
// across incarnations and is reset with [:0].
type job struct {
	task     *tcb
	release  des.Time
	deadline des.Time
	state    jobState
	// copyIndex is 1, 2 or 3 (third copy only after an error).
	copyIndex int
	// results collects completed copies' results (at most three under
	// TEM); nresults counts the filled entries. The fixed array plus the
	// retained writes/dataImage backings make result capture
	// allocation-free in steady state.
	results  [3]copyResult
	nresults int
	// ctx is the saved CPU context while preempted mid-copy.
	ctx cpu.Snapshot
	// started reports whether ctx holds a live preempted context (true)
	// or the copy must start fresh (false).
	started bool
	// cyclesUsed accumulates this copy's consumed cycles (budget check).
	cyclesUsed uint64
	// inputLatch holds the environment inputs captured at release,
	// parallel to spec.InputPorts (replica determinism, §2.6).
	inputLatch []uint32
	// outputs buffers the current copy's port writes.
	outputs []portWrite
	// dataSnapshot is the state region at release, restored before every
	// copy so replicas are deterministic.
	dataSnapshot []uint32
	// errorsDetected counts detected errors during this release.
	errorsDetected int
	// detectedBy records which mechanisms fired (for traces/campaigns).
	detectedBy []string
	// deadlineEvent is the pending deadline-check event.
	deadlineEvent des.Event
	// chainEvent is the job's most recent continuation event (dispatch,
	// run-slice, copy-complete or error-handler). Exactly one such event
	// is in flight per job; a job record is only recycled once it is no
	// longer scheduled, so a queued continuation can never observe a new
	// incarnation of its job.
	chainEvent des.Event
	// Bound continuation callbacks, created once when the job record is
	// first allocated and reused across incarnations, so the TEM state
	// machine re-arms events without per-release closure allocations.
	deadlineFn func()
	runSliceFn func()
	resumeFn   func()
	completeFn func()
	errorFn    func()
	// pendingMech carries the detection mechanism name from the slice
	// that armed errorFn to the handler it fires.
	pendingMech string
}
