package core

import (
	"fmt"

	"repro/internal/faulttree"
	"repro/internal/markov"
	"repro/internal/rbd"
	"repro/internal/sharpe"
)

// State names shared by the CTMC models, matching the paper's diagrams.
const (
	// StateOK: all nodes of the subsystem working correctly.
	StateOK = "0"
	// StatePermanentDown: one node permanently down (no repair).
	StatePermanentDown = "1"
	// StateTransientDown: one node temporarily down, restarting (μ_R).
	StateTransientDown = "2"
	// StateOmission: one NLFT node in omission recovery (μ_OM).
	StateOmission = "3"
	// StateFailed: the absorbing subsystem-failure state.
	StateFailed = "F"
)

// CentralUnitFS builds the Figure 6 CTMC: a duplex central unit with
// fail-silent nodes. Transition-rate reconstruction per DESIGN.md §4:
//
//	0→1: 2λ_P·C_D           (a permanent fault detected; node stays down)
//	0→2: 2λ_T·C_D           (a transient detected; node restarts at μ_R)
//	0→F: 2(λ_P+λ_T)(1−C_D)  (undetected error: pessimistically system-fatal)
//	2→0: μ_R
//	1→F, 2→F: λ_P+λ_T        (any activated fault in the lone survivor)
func CentralUnitFS(p Params) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.LambdaP + p.LambdaT
	b := markov.NewBuilder()
	b.Rate(StateOK, StatePermanentDown, 2*p.LambdaP*p.CD)
	b.Rate(StateOK, StateTransientDown, 2*p.LambdaT*p.CD)
	b.Rate(StateOK, StateFailed, 2*total*(1-p.CD))
	b.Rate(StateTransientDown, StateOK, p.MuR)
	b.Rate(StatePermanentDown, StateFailed, total)
	b.Rate(StateTransientDown, StateFailed, total)
	return b.Build()
}

// CentralUnitNLFT builds the Figure 7 CTMC: a duplex central unit with
// light-weight NLFT nodes. Detected transients are masked with
// probability P_T (no transition), cause omission failures with P_OM
// (state 3, repaired at μ_OM) or fail-silent failures with P_FS (state 2,
// repaired at μ_R). The lone survivor masks transients with probability
// C_D·P_T, so its failure rate drops to λ_P + λ_T(1 − C_D·P_T).
func CentralUnitNLFT(p Params) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.LambdaP + p.LambdaT
	survivorRate := p.LambdaP + p.UnmaskedTransientRate()
	b := markov.NewBuilder()
	b.Rate(StateOK, StatePermanentDown, 2*p.LambdaP*p.CD)
	b.Rate(StateOK, StateTransientDown, 2*p.LambdaT*p.CD*p.PFS)
	b.Rate(StateOK, StateOmission, 2*p.LambdaT*p.CD*p.POM)
	b.Rate(StateOK, StateFailed, 2*total*(1-p.CD))
	b.Rate(StateTransientDown, StateOK, p.MuR)
	b.Rate(StateOmission, StateOK, p.MuOM)
	b.Rate(StatePermanentDown, StateFailed, survivorRate)
	b.Rate(StateTransientDown, StateFailed, survivorRate)
	b.Rate(StateOmission, StateFailed, survivorRate)
	return b.Build()
}

// WheelNodeCount is the number of wheel nodes in the BBW architecture.
const WheelNodeCount = 4

// WheelsFullFS builds the Figure 8 RBD: four fail-silent wheel nodes in
// series. Any activated fault at least temporarily silences a node, which
// already violates the full-functionality requirement, so each node fails
// at rate λ_P + λ_T.
func WheelsFullFS(p Params) (rbd.Block, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rate := p.LambdaP + p.LambdaT
	nodes := make([]rbd.Block, WheelNodeCount)
	for i := range nodes {
		nodes[i] = rbd.Exponential(fmt.Sprintf("WN%d", i+1), rate)
	}
	return rbd.NewSeries(nodes...), nil
}

// WheelsDegradedFS builds the Figure 9 CTMC: the wheel-node subsystem in
// degraded functionality mode with fail-silent nodes. The system works
// with three of four nodes; transiently failed nodes reintegrate at μ_R.
func WheelsDegradedFS(p Params) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.LambdaP + p.LambdaT
	n := float64(WheelNodeCount)
	b := markov.NewBuilder()
	b.Rate(StateOK, StatePermanentDown, n*p.LambdaP*p.CD)
	b.Rate(StateOK, StateTransientDown, n*p.LambdaT*p.CD)
	b.Rate(StateOK, StateFailed, n*total*(1-p.CD))
	b.Rate(StateTransientDown, StateOK, p.MuR)
	b.Rate(StatePermanentDown, StateFailed, (n-1)*total)
	b.Rate(StateTransientDown, StateFailed, (n-1)*total)
	return b.Build()
}

// WheelsFullNLFT builds the Figure 10 CTMC: the wheel-node subsystem in
// full functionality mode with NLFT nodes. Masked transients keep the
// system in state 0; everything else (permanent faults, unmaskable or
// undetected transients) is a full-functionality failure, so the model
// collapses to two states.
func WheelsFullNLFT(p Params) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := float64(WheelNodeCount)
	rate := n * (p.LambdaP + p.UnmaskedTransientRate())
	b := markov.NewBuilder()
	b.Rate(StateOK, StateFailed, rate)
	return b.Build()
}

// WheelsDegradedNLFT builds the Figure 11 CTMC: the wheel-node subsystem
// in degraded mode with NLFT nodes, combining the Figure 9 structure with
// the Figure 7 failure semantics.
func WheelsDegradedNLFT(p Params) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.LambdaP + p.LambdaT
	survivorRate := p.LambdaP + p.UnmaskedTransientRate()
	n := float64(WheelNodeCount)
	b := markov.NewBuilder()
	b.Rate(StateOK, StatePermanentDown, n*p.LambdaP*p.CD)
	b.Rate(StateOK, StateTransientDown, n*p.LambdaT*p.CD*p.PFS)
	b.Rate(StateOK, StateOmission, n*p.LambdaT*p.CD*p.POM)
	b.Rate(StateOK, StateFailed, n*total*(1-p.CD))
	b.Rate(StateTransientDown, StateOK, p.MuR)
	b.Rate(StateOmission, StateOK, p.MuOM)
	b.Rate(StatePermanentDown, StateFailed, (n-1)*survivorRate)
	b.Rate(StateTransientDown, StateFailed, (n-1)*survivorRate)
	b.Rate(StateOmission, StateFailed, (n-1)*survivorRate)
	return b.Build()
}

// Canonical model names registered by BBWSystem.
const (
	ModelCU     = "cu"
	ModelWheels = "wheels"
	ModelBBW    = "bbw"
)

// BBWSystem assembles the full Figure 5 hierarchy for the chosen node
// type and functionality mode: a sharpe.System with models ModelCU,
// ModelWheels and the top-level ModelBBW (fault-tree OR of the two
// subsystems, per the paper's fault tree).
func BBWSystem(p Params, nt NodeType, mode Mode) (*sharpe.System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	sys := sharpe.NewSystem()

	var cuChain *markov.Chain
	var err error
	switch nt {
	case FS:
		cuChain, err = CentralUnitFS(p)
	case NLFT:
		cuChain, err = CentralUnitNLFT(p)
	default:
		return nil, fmt.Errorf("core: unknown node type %v", nt)
	}
	if err != nil {
		return nil, fmt.Errorf("core: central unit model: %w", err)
	}
	cu, err := sharpe.NewCTMC(ModelCU, cuChain, StateOK, []string{StateFailed})
	if err != nil {
		return nil, err
	}
	if err := sys.Add(cu); err != nil {
		return nil, err
	}

	var wheels sharpe.Model
	switch {
	case nt == FS && mode == Full:
		blk, err := WheelsFullFS(p)
		if err != nil {
			return nil, err
		}
		wheels = sharpe.NewRBD(ModelWheels, blk, HoursPerYear)
	case nt == FS && mode == Degraded:
		ch, err := WheelsDegradedFS(p)
		if err != nil {
			return nil, err
		}
		wheels, err = sharpe.NewCTMC(ModelWheels, ch, StateOK, []string{StateFailed})
		if err != nil {
			return nil, err
		}
	case nt == NLFT && mode == Full:
		ch, err := WheelsFullNLFT(p)
		if err != nil {
			return nil, err
		}
		wheels, err = sharpe.NewCTMC(ModelWheels, ch, StateOK, []string{StateFailed})
		if err != nil {
			return nil, err
		}
	case nt == NLFT && mode == Degraded:
		ch, err := WheelsDegradedNLFT(p)
		if err != nil {
			return nil, err
		}
		wheels, err = sharpe.NewCTMC(ModelWheels, ch, StateOK, []string{StateFailed})
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown mode %v", mode)
	}
	if err := sys.Add(wheels); err != nil {
		return nil, err
	}

	// Figure 5: system fails when either subsystem fails.
	cuQ, err := sys.Unreliability(ModelCU)
	if err != nil {
		return nil, err
	}
	wnQ, err := sys.Unreliability(ModelWheels)
	if err != nil {
		return nil, err
	}
	tree, err := faulttree.New(faulttree.OR(
		faulttree.NewEvent("central-unit-fails", cuQ),
		faulttree.NewEvent("wheel-subsystem-fails", wnQ),
	))
	if err != nil {
		return nil, err
	}
	if err := sys.Add(sharpe.NewFaultTree(ModelBBW, tree, 2*HoursPerYear)); err != nil {
		return nil, err
	}
	return sys, nil
}

// SystemReliability evaluates R(t) of the complete BBW system.
func SystemReliability(p Params, nt NodeType, mode Mode, hours float64) (float64, error) {
	sys, err := BBWSystem(p, nt, mode)
	if err != nil {
		return 0, err
	}
	m, err := sys.Model(ModelBBW)
	if err != nil {
		return 0, err
	}
	return m.Reliability(hours)
}

// SystemMTTF evaluates the mean time to failure (hours) of the complete
// BBW system by quadrature of the composed reliability function, as the
// paper does for its "MTTF increases by almost 60%" comparison.
func SystemMTTF(p Params, nt NodeType, mode Mode) (float64, error) {
	sys, err := BBWSystem(p, nt, mode)
	if err != nil {
		return 0, err
	}
	m, err := sys.Model(ModelBBW)
	if err != nil {
		return 0, err
	}
	return m.MTTF()
}
