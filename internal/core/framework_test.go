package core

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/sched"
)

// TestDeriveParamsFromCampaign closes the framework loop: campaign →
// parameter estimates → reliability models. The derived parameters must
// be valid, near the paper's assumptions in coverage, and must still
// show the NLFT advantage when pushed through the Figure 12 models.
func TestDeriveParamsFromCampaign(t *testing.T) {
	w := fault.NewStdWorkload(fault.StdWorkloadConfig{ECC: true})
	derived, res, err := DeriveParams(PaperParams(), w, fault.CampaignConfig{
		Trials: 400,
		Seed:   5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Activated() == 0 {
		t.Fatal("campaign activated nothing")
	}
	if err := derived.Validate(); err != nil {
		t.Fatalf("derived params invalid: %v", err)
	}
	// Coverage with ECC on tracks the paper's 0.99 assumption.
	if derived.CD < 0.95 {
		t.Errorf("derived C_D = %v, expected near 0.99", derived.CD)
	}
	// Rates are inherited from the base, not the campaign.
	if derived.LambdaP != PaperParams().LambdaP || derived.MuR != PaperParams().MuR {
		t.Error("rate parameters were overwritten")
	}
	// The derived parameters still demonstrate the NLFT advantage.
	h, err := ComputeHeadline(derived)
	if err != nil {
		t.Fatal(err)
	}
	if h.RGain <= 0 {
		t.Errorf("derived params show no NLFT gain: %+v", h)
	}
}

func TestDeriveParamsErrors(t *testing.T) {
	if _, _, err := DeriveParams(PaperParams(), nil, fault.CampaignConfig{Trials: 1}); err == nil {
		t.Error("nil workload accepted")
	}
}

func TestVerifySlackBBWStyleTaskSet(t *testing.T) {
	ms := func(v int64) des.Time { return des.Time(v) * des.Millisecond }
	raw := []sched.Task{
		{Name: "brake", C: ms(1), T: ms(10), D: ms(10), Criticality: 10},
		{Name: "slip", C: ms(1), T: ms(20), D: ms(20), Criticality: 8},
		{Name: "diag", C: ms(2), T: ms(100), D: ms(100), Criticality: 0},
	}
	rep, err := VerifySlack(raw, sched.TEMOverheads{Compare: ms(1) / 10, Vote: ms(1) / 5}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable {
		t.Fatalf("BBW-style set unschedulable: %+v", rep.Responses)
	}
	if rep.MaxRate < rep.FaultRate {
		t.Errorf("max rate %v below verified rate %v", rep.MaxRate, rep.FaultRate)
	}
	if rep.Utilization <= 0 || rep.Utilization >= 1 {
		t.Errorf("utilization = %v", rep.Utilization)
	}
	// TEM roughly doubles the critical tasks' utilization.
	baseU := sched.Utilization(raw)
	if rep.Utilization < baseU*1.4 {
		t.Errorf("TEM transform barely changed utilization: %v vs %v", rep.Utilization, baseU)
	}
	if _, err := VerifySlack(raw, sched.TEMOverheads{}, 0); err == nil {
		t.Error("zero fault rate accepted")
	}
}

func TestVerifySlackOverloaded(t *testing.T) {
	ms := func(v int64) des.Time { return des.Time(v) * des.Millisecond }
	raw := []sched.Task{
		{Name: "fatA", C: ms(3), T: ms(10), D: ms(10), Criticality: 5},
		{Name: "fatB", C: ms(3), T: ms(10), D: ms(10), Criticality: 4},
	}
	// After TEM each costs ~6.1 ms per 10 ms: combined utilization > 1.
	rep, err := VerifySlack(raw, sched.TEMOverheads{Compare: ms(1) / 10}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Error("overloaded TEM set reported schedulable")
	}
}

func TestHeadlineGainStableAcrossCoverage(t *testing.T) {
	// The NLFT advantage must persist over a plausible C_D band — the
	// sensitivity claim behind Figure 14.
	for _, cd := range []float64{0.95, 0.99, 0.999} {
		p := PaperParams()
		p.CD = cd
		h, err := ComputeHeadline(p)
		if err != nil {
			t.Fatal(err)
		}
		if h.RGain <= 0.2 {
			t.Errorf("C_D=%v: gain %v too small", cd, h.RGain)
		}
	}
}

func TestFigure14NLFTAdvantageGrowsWithRate(t *testing.T) {
	p := PaperParams()
	rows, err := Figure14(p, 5, []float64{0.99}, []float64{1, 10, 100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	// Compute NLFT−FS advantage per multiple; it must be nondecreasing.
	adv := map[float64]float64{}
	for _, r := range rows {
		if r.NodeType == NLFT {
			adv[r.LambdaTMultiple] += r.R
		} else {
			adv[r.LambdaTMultiple] -= r.R
		}
	}
	prev := math.Inf(-1)
	for _, m := range []float64{1, 10, 100, 1000} {
		if adv[m] < prev-1e-12 {
			t.Errorf("advantage at ×%v dropped: %v < %v", m, adv[m], prev)
		}
		prev = adv[m]
	}
}
