package core

import (
	"fmt"
	"sort"

	"repro/internal/markov"
	"repro/internal/sharpe"
)

// This file models the redundancy alternatives the paper's introduction
// frames NLFT against: systems without fail-silence need majority voting
// over 2f+1 nodes to mask f failures, while fail-silent nodes need only
// f+1. The TMR central-unit model lets the repository quantify the
// trade-off (nodes spent vs reliability gained) that motivates the
// paper's duplex-plus-NLFT design point.

// CentralUnitTMR builds a triple-modular-redundant central unit: three
// nodes with majority voting, so the subsystem works while at least two
// nodes agree. Nodes fail like FS nodes (any activated, detected fault
// downs the node; transients repair at μ_R), but — the TMR property —
// an UNDETECTED erroneous node is outvoted rather than system-fatal, as
// long as the other two still agree.
//
// States: "3" (all up), "2p"/"2t" (one down permanently / transiently),
// "F" (fewer than two correct nodes, or two simultaneous liars).
func CentralUnitTMR(p Params) (*markov.Chain, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.LambdaP + p.LambdaT
	b := markov.NewBuilder()
	// From all-up: any node's detected permanent/transient fault drops
	// one voter. An undetected fault makes one node a liar — the voter
	// masks it, but the node is effectively lost until its next
	// transient resolution; pessimistically treat an undetected fault as
	// a permanently lost voter (it keeps voting wrongly).
	b.Rate("3", "2p", 3*p.LambdaP*p.CD)
	b.Rate("3", "2t", 3*p.LambdaT*p.CD)
	b.AddRate("3", "2p", 3*total*(1-p.CD)) // liar: outvoted, but one voter lost
	b.Rate("2t", "3", p.MuR)
	// With two voters left, majority needs both: any activated fault in
	// either (detected or not — with two nodes disagreement cannot be
	// resolved) fails the subsystem.
	b.Rate("2p", "F", 2*total)
	b.Rate("2t", "F", 2*total)
	return b.Build()
}

// RedundancyOption is one central-unit design point for the comparison.
type RedundancyOption struct {
	Name  string
	Nodes int
	// ROneYear is the subsystem reliability at one year.
	ROneYear float64
	// MTTFYears is the subsystem mean time to failure.
	MTTFYears float64
}

// CompareRedundancy evaluates the central-unit alternatives from the
// paper's introduction: a single simplex node, duplex FS, duplex NLFT,
// and TMR with voting — reliability against node count.
func CompareRedundancy(p Params) ([]RedundancyOption, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	total := p.LambdaP + p.LambdaT
	out := make([]RedundancyOption, 0, 4)

	// Simplex FS node: any activated fault at least interrupts service;
	// treat the first fault as subsystem failure (no redundancy).
	sb := markov.NewBuilder()
	sb.Rate(StateOK, StateFailed, total)
	simplex, err := sb.Build()
	if err != nil {
		return nil, err
	}

	configs := []struct {
		name  string
		nodes int
		build func() (*markov.Chain, error)
	}{
		{"simplex", 1, func() (*markov.Chain, error) { return simplex, nil }},
		{"duplex-FS", 2, func() (*markov.Chain, error) { return CentralUnitFS(p) }},
		{"duplex-NLFT", 2, func() (*markov.Chain, error) { return CentralUnitNLFT(p) }},
		{"tmr-voted", 3, func() (*markov.Chain, error) { return CentralUnitTMR(p) }},
	}
	for _, c := range configs {
		chain, err := c.build()
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", c.name, err)
		}
		initial := chain.States()[0]
		p0, err := chain.InitialAt(initial)
		if err != nil {
			return nil, err
		}
		dist, err := chain.Transient(p0, HoursPerYear)
		if err != nil {
			return nil, err
		}
		q, err := chain.ProbIn(dist, StateFailed)
		if err != nil {
			return nil, err
		}
		mttf, err := chain.MTTA(p0, StateFailed)
		if err != nil {
			return nil, err
		}
		out = append(out, RedundancyOption{
			Name:      c.name,
			Nodes:     c.nodes,
			ROneYear:  1 - q,
			MTTFYears: mttf / HoursPerYear,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Nodes < out[j].Nodes })
	return out, nil
}

// SubsystemImportance reports the Birnbaum importance of each subsystem
// in the Figure 5 fault tree at time t — a quantitative version of the
// paper's §3.4 bottleneck observation.
type SubsystemImportance struct {
	CentralUnit float64
	Wheels      float64
}

// BottleneckAnalysis computes Birnbaum importances for the BBW system.
func BottleneckAnalysis(p Params, nt NodeType, mode Mode, hours float64) (SubsystemImportance, error) {
	sys, err := BBWSystem(p, nt, mode)
	if err != nil {
		return SubsystemImportance{}, err
	}
	m, err := sys.Model(ModelBBW)
	if err != nil {
		return SubsystemImportance{}, err
	}
	ft, ok := m.(*sharpe.FTModel)
	if !ok {
		return SubsystemImportance{}, fmt.Errorf("core: %s is not a fault tree", ModelBBW)
	}
	tree := ft.Tree()
	cu, err := tree.BirnbaumImportance("central-unit-fails", hours)
	if err != nil {
		return SubsystemImportance{}, err
	}
	wn, err := tree.BirnbaumImportance("wheel-subsystem-fails", hours)
	if err != nil {
		return SubsystemImportance{}, err
	}
	return SubsystemImportance{CentralUnit: cu, Wheels: wn}, nil
}
