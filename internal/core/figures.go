package core

import (
	"fmt"
	"runtime"
	"sync"
)

// Figure12Row is one sample of Figure 12: BBW system reliability over one
// year for the four configurations.
type Figure12Row struct {
	Hours        float64
	FSFull       float64
	FSDegraded   float64
	NLFTFull     float64
	NLFTDegraded float64
}

// configs enumerates the four (node type, mode) combinations in the order
// the paper plots them.
var configs = []struct {
	NT   NodeType
	Mode Mode
}{
	{FS, Full},
	{FS, Degraded},
	{NLFT, Full},
	{NLFT, Degraded},
}

// timeGrid returns steps+1 evenly spaced samples over [0, horizon].
func timeGrid(horizonHours float64, steps int) []float64 {
	times := make([]float64, steps+1)
	for i := range times {
		times[i] = horizonHours * float64(i) / float64(steps)
	}
	return times
}

// Figure12 regenerates the paper's Figure 12: system reliability sampled
// at steps+1 points over [0, horizon] hours for all four configurations.
// Each configuration's curve is one shared series solve (a single matrix
// exponential per chain, propagated across the grid), and the four
// configurations run concurrently.
func Figure12(p Params, horizonHours float64, steps int) ([]Figure12Row, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: figure 12 with %d steps", steps)
	}
	times := timeGrid(horizonHours, steps)
	curves := make(map[[2]int][]float64, len(configs))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(configs))
	for ci, c := range configs {
		ci, c := ci, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := BBWSystem(p, c.NT, c.Mode)
			if err != nil {
				errs[ci] = err
				return
			}
			rs, err := sys.ReliabilitySeries(ModelBBW, times)
			if err != nil {
				errs[ci] = err
				return
			}
			mu.Lock()
			curves[[2]int{int(c.NT), int(c.Mode)}] = rs
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Figure12Row, 0, steps+1)
	for i, h := range times {
		rows = append(rows, Figure12Row{
			Hours:        h,
			FSFull:       curves[[2]int{int(FS), int(Full)}][i],
			FSDegraded:   curves[[2]int{int(FS), int(Degraded)}][i],
			NLFTFull:     curves[[2]int{int(NLFT), int(Full)}][i],
			NLFTDegraded: curves[[2]int{int(NLFT), int(Degraded)}][i],
		})
	}
	return rows, nil
}

// Figure13Row is one sample of Figure 13: subsystem reliabilities over one
// year. CU curves do not depend on the functionality mode; wheel curves
// are reported for both modes and node types.
type Figure13Row struct {
	Hours              float64
	CUFS               float64
	CUNLFT             float64
	WheelsFullFS       float64
	WheelsFullNLFT     float64
	WheelsDegradedFS   float64
	WheelsDegradedNLFT float64
}

// Figure13 regenerates the paper's Figure 13: reliability of the central
// unit and wheel-node subsystems for both node types and modes. Each
// subsystem curve is one shared series solve; the four configurations run
// concurrently.
func Figure13(p Params, horizonHours float64, steps int) ([]Figure13Row, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: figure 13 with %d steps", steps)
	}
	times := timeGrid(horizonHours, steps)
	sub := make(map[string][]float64, 6)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(configs))
	for ci, c := range configs {
		ci, c := ci, c
		wg.Add(1)
		go func() {
			defer wg.Done()
			sys, err := BBWSystem(p, c.NT, c.Mode)
			if err != nil {
				errs[ci] = err
				return
			}
			w, err := sys.ReliabilitySeries(ModelWheels, times)
			if err != nil {
				errs[ci] = err
				return
			}
			cu, err := sys.ReliabilitySeries(ModelCU, times)
			if err != nil {
				errs[ci] = err
				return
			}
			mu.Lock()
			sub[fmt.Sprintf("wheels/%s/%s", c.NT, c.Mode)] = w
			sub[fmt.Sprintf("cu/%s", c.NT)] = cu
			mu.Unlock()
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	rows := make([]Figure13Row, 0, steps+1)
	for i, h := range times {
		rows = append(rows, Figure13Row{
			Hours:              h,
			CUFS:               sub["cu/FS"][i],
			CUNLFT:             sub["cu/NLFT"][i],
			WheelsFullFS:       sub["wheels/FS/full"][i],
			WheelsFullNLFT:     sub["wheels/NLFT/full"][i],
			WheelsDegradedFS:   sub["wheels/FS/degraded"][i],
			WheelsDegradedNLFT: sub["wheels/NLFT/degraded"][i],
		})
	}
	return rows, nil
}

// Figure14Row is one sample of Figure 14: reliability after a fixed
// mission time (5 h in the paper) in degraded mode, as a function of the
// transient fault rate, for one (coverage, node type) curve.
type Figure14Row struct {
	// Coverage is the error-detection coverage C_D of this curve.
	Coverage float64
	// NodeType is FS or NLFT.
	NodeType NodeType
	// LambdaTMultiple scales the baseline transient fault rate λ_T.
	LambdaTMultiple float64
	// LambdaT is the resulting absolute transient rate (faults/hour).
	LambdaT float64
	// R is the system reliability at the mission time.
	R float64
}

// Figure14 regenerates the paper's Figure 14: degraded-mode system
// reliability after missionHours, sweeping the transient fault rate over
// the given multiples of p.LambdaT, for each coverage value and both node
// types. Every point of the coverages × node types × multiples grid is an
// independent model build and solve, so the grid fans out over a worker
// pool sized to GOMAXPROCS; rows come back in the same deterministic
// order as the sequential sweep.
func Figure14(p Params, missionHours float64, coverages, multiples []float64) ([]Figure14Row, error) {
	if len(coverages) == 0 || len(multiples) == 0 {
		return nil, fmt.Errorf("core: figure 14 needs coverages and multiples")
	}
	nodeTypes := []NodeType{FS, NLFT}
	rows := make([]Figure14Row, len(coverages)*len(nodeTypes)*len(multiples))
	errs := make([]error, len(rows))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rows) {
		workers = len(rows)
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := wk; idx < len(rows); idx += workers {
				mult := multiples[idx%len(multiples)]
				nt := nodeTypes[idx/len(multiples)%len(nodeTypes)]
				cd := coverages[idx/(len(multiples)*len(nodeTypes))]
				pp := p
				pp.CD = cd
				pp.LambdaT = p.LambdaT * mult
				r, err := SystemReliability(pp, nt, Degraded, missionHours)
				if err != nil {
					errs[idx] = fmt.Errorf("core: figure 14 at cd=%v nt=%v mult=%v: %w",
						cd, nt, mult, err)
					return
				}
				rows[idx] = Figure14Row{
					Coverage:        cd,
					NodeType:        nt,
					LambdaTMultiple: mult,
					LambdaT:         pp.LambdaT,
					R:               r,
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// MTTFComparison reports the paper's §3.4 mean-time-to-failure comparison
// for a functionality mode: FS vs NLFT system MTTF and the relative gain.
type MTTFComparison struct {
	Mode      Mode
	FSHours   float64
	NLFTHours float64
	// Gain is NLFT/FS − 1 (the paper reports ≈0.6 for degraded mode).
	Gain float64
}

// MTTFTable computes the MTTF comparison for both functionality modes.
// The four (mode, node type) quadratures are independent, so they run
// concurrently.
func MTTFTable(p Params) ([]MTTFComparison, error) {
	modes := []Mode{Full, Degraded}
	nts := []NodeType{FS, NLFT}
	mttfs := make([]float64, len(modes)*len(nts))
	errs := make([]error, len(mttfs))
	var wg sync.WaitGroup
	for mi, mode := range modes {
		for ni, nt := range nts {
			idx, mode, nt := mi*len(nts)+ni, mode, nt
			wg.Add(1)
			go func() {
				defer wg.Done()
				mttfs[idx], errs[idx] = SystemMTTF(p, nt, mode)
			}()
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]MTTFComparison, 0, len(modes))
	for mi, mode := range modes {
		fs, nl := mttfs[mi*len(nts)], mttfs[mi*len(nts)+1]
		out = append(out, MTTFComparison{
			Mode: mode, FSHours: fs, NLFTHours: nl, Gain: nl/fs - 1,
		})
	}
	return out, nil
}

// Headline reports the paper's two headline claims for degraded mode:
// the one-year reliability of FS and NLFT systems (paper: 0.45 → 0.70,
// +55%) and the MTTF gain (paper: 1.2 y → 1.9 y, ≈+60%).
type Headline struct {
	ROneYearFS      float64
	ROneYearNLFT    float64
	RGain           float64 // NLFT/FS − 1 at one year
	MTTFYearsFS     float64
	MTTFYearsNLFT   float64
	MTTFGain        float64
	MissionModeName string
}

// ComputeHeadline evaluates the headline comparison for degraded mode.
func ComputeHeadline(p Params) (Headline, error) {
	rfs, err := SystemReliability(p, FS, Degraded, HoursPerYear)
	if err != nil {
		return Headline{}, err
	}
	rnl, err := SystemReliability(p, NLFT, Degraded, HoursPerYear)
	if err != nil {
		return Headline{}, err
	}
	mfs, err := SystemMTTF(p, FS, Degraded)
	if err != nil {
		return Headline{}, err
	}
	mnl, err := SystemMTTF(p, NLFT, Degraded)
	if err != nil {
		return Headline{}, err
	}
	return Headline{
		ROneYearFS:      rfs,
		ROneYearNLFT:    rnl,
		RGain:           rnl/rfs - 1,
		MTTFYearsFS:     mfs / HoursPerYear,
		MTTFYearsNLFT:   mnl / HoursPerYear,
		MTTFGain:        mnl/mfs - 1,
		MissionModeName: Degraded.String(),
	}, nil
}
