package core

import (
	"fmt"
)

// Figure12Row is one sample of Figure 12: BBW system reliability over one
// year for the four configurations.
type Figure12Row struct {
	Hours        float64
	FSFull       float64
	FSDegraded   float64
	NLFTFull     float64
	NLFTDegraded float64
}

// configs enumerates the four (node type, mode) combinations in the order
// the paper plots them.
var configs = []struct {
	NT   NodeType
	Mode Mode
}{
	{FS, Full},
	{FS, Degraded},
	{NLFT, Full},
	{NLFT, Degraded},
}

// Figure12 regenerates the paper's Figure 12: system reliability sampled
// at steps+1 points over [0, horizon] hours for all four configurations.
func Figure12(p Params, horizonHours float64, steps int) ([]Figure12Row, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: figure 12 with %d steps", steps)
	}
	funcs := make(map[[2]int]func(float64) float64, len(configs))
	for _, c := range configs {
		sys, err := BBWSystem(p, c.NT, c.Mode)
		if err != nil {
			return nil, err
		}
		f, err := sys.ReliabilityFunc(ModelBBW)
		if err != nil {
			return nil, err
		}
		funcs[[2]int{int(c.NT), int(c.Mode)}] = f
	}
	rows := make([]Figure12Row, 0, steps+1)
	for i := 0; i <= steps; i++ {
		h := horizonHours * float64(i) / float64(steps)
		rows = append(rows, Figure12Row{
			Hours:        h,
			FSFull:       funcs[[2]int{int(FS), int(Full)}](h),
			FSDegraded:   funcs[[2]int{int(FS), int(Degraded)}](h),
			NLFTFull:     funcs[[2]int{int(NLFT), int(Full)}](h),
			NLFTDegraded: funcs[[2]int{int(NLFT), int(Degraded)}](h),
		})
	}
	return rows, nil
}

// Figure13Row is one sample of Figure 13: subsystem reliabilities over one
// year. CU curves do not depend on the functionality mode; wheel curves
// are reported for both modes and node types.
type Figure13Row struct {
	Hours              float64
	CUFS               float64
	CUNLFT             float64
	WheelsFullFS       float64
	WheelsFullNLFT     float64
	WheelsDegradedFS   float64
	WheelsDegradedNLFT float64
}

// Figure13 regenerates the paper's Figure 13: reliability of the central
// unit and wheel-node subsystems for both node types and modes.
func Figure13(p Params, horizonHours float64, steps int) ([]Figure13Row, error) {
	if steps < 1 {
		return nil, fmt.Errorf("core: figure 13 with %d steps", steps)
	}
	sub := make(map[string]func(float64) float64, 6)
	for _, c := range configs {
		sys, err := BBWSystem(p, c.NT, c.Mode)
		if err != nil {
			return nil, err
		}
		w, err := sys.ReliabilityFunc(ModelWheels)
		if err != nil {
			return nil, err
		}
		sub[fmt.Sprintf("wheels/%s/%s", c.NT, c.Mode)] = w
		cu, err := sys.ReliabilityFunc(ModelCU)
		if err != nil {
			return nil, err
		}
		sub[fmt.Sprintf("cu/%s", c.NT)] = cu
	}
	rows := make([]Figure13Row, 0, steps+1)
	for i := 0; i <= steps; i++ {
		h := horizonHours * float64(i) / float64(steps)
		rows = append(rows, Figure13Row{
			Hours:              h,
			CUFS:               sub["cu/FS"](h),
			CUNLFT:             sub["cu/NLFT"](h),
			WheelsFullFS:       sub["wheels/FS/full"](h),
			WheelsFullNLFT:     sub["wheels/NLFT/full"](h),
			WheelsDegradedFS:   sub["wheels/FS/degraded"](h),
			WheelsDegradedNLFT: sub["wheels/NLFT/degraded"](h),
		})
	}
	return rows, nil
}

// Figure14Row is one sample of Figure 14: reliability after a fixed
// mission time (5 h in the paper) in degraded mode, as a function of the
// transient fault rate, for one (coverage, node type) curve.
type Figure14Row struct {
	// Coverage is the error-detection coverage C_D of this curve.
	Coverage float64
	// NodeType is FS or NLFT.
	NodeType NodeType
	// LambdaTMultiple scales the baseline transient fault rate λ_T.
	LambdaTMultiple float64
	// LambdaT is the resulting absolute transient rate (faults/hour).
	LambdaT float64
	// R is the system reliability at the mission time.
	R float64
}

// Figure14 regenerates the paper's Figure 14: degraded-mode system
// reliability after missionHours, sweeping the transient fault rate over
// the given multiples of p.LambdaT, for each coverage value and both node
// types.
func Figure14(p Params, missionHours float64, coverages, multiples []float64) ([]Figure14Row, error) {
	if len(coverages) == 0 || len(multiples) == 0 {
		return nil, fmt.Errorf("core: figure 14 needs coverages and multiples")
	}
	var rows []Figure14Row
	for _, cd := range coverages {
		for _, nt := range []NodeType{FS, NLFT} {
			for _, mult := range multiples {
				pp := p
				pp.CD = cd
				pp.LambdaT = p.LambdaT * mult
				r, err := SystemReliability(pp, nt, Degraded, missionHours)
				if err != nil {
					return nil, fmt.Errorf("core: figure 14 at cd=%v nt=%v mult=%v: %w",
						cd, nt, mult, err)
				}
				rows = append(rows, Figure14Row{
					Coverage:        cd,
					NodeType:        nt,
					LambdaTMultiple: mult,
					LambdaT:         pp.LambdaT,
					R:               r,
				})
			}
		}
	}
	return rows, nil
}

// MTTFComparison reports the paper's §3.4 mean-time-to-failure comparison
// for a functionality mode: FS vs NLFT system MTTF and the relative gain.
type MTTFComparison struct {
	Mode      Mode
	FSHours   float64
	NLFTHours float64
	// Gain is NLFT/FS − 1 (the paper reports ≈0.6 for degraded mode).
	Gain float64
}

// MTTFTable computes the MTTF comparison for both functionality modes.
func MTTFTable(p Params) ([]MTTFComparison, error) {
	out := make([]MTTFComparison, 0, 2)
	for _, mode := range []Mode{Full, Degraded} {
		fs, err := SystemMTTF(p, FS, mode)
		if err != nil {
			return nil, err
		}
		nl, err := SystemMTTF(p, NLFT, mode)
		if err != nil {
			return nil, err
		}
		out = append(out, MTTFComparison{
			Mode: mode, FSHours: fs, NLFTHours: nl, Gain: nl/fs - 1,
		})
	}
	return out, nil
}

// Headline reports the paper's two headline claims for degraded mode:
// the one-year reliability of FS and NLFT systems (paper: 0.45 → 0.70,
// +55%) and the MTTF gain (paper: 1.2 y → 1.9 y, ≈+60%).
type Headline struct {
	ROneYearFS      float64
	ROneYearNLFT    float64
	RGain           float64 // NLFT/FS − 1 at one year
	MTTFYearsFS     float64
	MTTFYearsNLFT   float64
	MTTFGain        float64
	MissionModeName string
}

// ComputeHeadline evaluates the headline comparison for degraded mode.
func ComputeHeadline(p Params) (Headline, error) {
	rfs, err := SystemReliability(p, FS, Degraded, HoursPerYear)
	if err != nil {
		return Headline{}, err
	}
	rnl, err := SystemReliability(p, NLFT, Degraded, HoursPerYear)
	if err != nil {
		return Headline{}, err
	}
	mfs, err := SystemMTTF(p, FS, Degraded)
	if err != nil {
		return Headline{}, err
	}
	mnl, err := SystemMTTF(p, NLFT, Degraded)
	if err != nil {
		return Headline{}, err
	}
	return Headline{
		ROneYearFS:      rfs,
		ROneYearNLFT:    rnl,
		RGain:           rnl/rfs - 1,
		MTTFYearsFS:     mfs / HoursPerYear,
		MTTFYearsNLFT:   mnl / HoursPerYear,
		MTTFGain:        mnl/mfs - 1,
		MissionModeName: Degraded.String(),
	}, nil
}
