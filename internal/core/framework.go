package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/sched"
)

// This file closes the loop the paper describes between experimental
// coverage estimation and analytic dependability prediction: a fault-
// injection campaign on the simulated NLFT kernel (internal/fault,
// standing in for the heavy-ion and SWIFI studies of refs [7, 8])
// yields C_D, P_T, P_OM and P_FS, which parameterize the reliability
// models of §3; and the fault-tolerant schedulability analysis of §2.8
// (internal/sched) verifies that the TEM recovery slack the models
// assume actually fits the task set.

// DeriveParams runs a fault-injection campaign and folds its estimates
// into a Params value, keeping base's rate parameters (λ_P, λ_T, μ_R,
// μ_OM come from field data and protocol timing, not from injection).
//
// The returned Params are normalized so P_T + P_OM + P_FS = 1, as the
// model requires (the raw estimates may not sum exactly to 1 because
// each carries its own sampling error).
func DeriveParams(base Params, w fault.Workload, cfg fault.CampaignConfig) (Params, *fault.Result, error) {
	res, err := fault.Run(w, cfg)
	if err != nil {
		return Params{}, nil, fmt.Errorf("core: derive params: %w", err)
	}
	p := base
	p.CD = res.CD.P
	sum := res.PT.P + res.POM.P + res.PFS.P
	if sum <= 0 {
		return Params{}, nil, fmt.Errorf("core: campaign detected nothing; cannot derive P_T/P_OM/P_FS")
	}
	p.PT = res.PT.P / sum
	p.POM = res.POM.P / sum
	p.PFS = res.PFS.P / sum
	if err := p.Validate(); err != nil {
		return Params{}, nil, fmt.Errorf("core: derived parameters invalid: %w", err)
	}
	return p, res, nil
}

// SlackReport documents the schedulability side of the framework: given
// a task set and the TEM overheads, it reports whether the set remains
// schedulable with recovery slack at the anticipated fault arrival rate,
// and the maximum tolerable rate.
type SlackReport struct {
	// Schedulable reports the fault-tolerant RTA verdict at FaultRate.
	Schedulable bool
	// FaultRate is the anticipated fault arrival rate (faults/hour).
	FaultRate float64
	// MaxRate is the highest tolerable fault arrival rate (faults/hour).
	MaxRate float64
	// Utilization is ΣC/T after the TEM transform.
	Utilization float64
	// Responses holds the per-task worst-case response times.
	Responses []sched.Response
}

// VerifySlack applies the TEM transform to rawTasks, assigns priorities
// by criticality (the paper's policy), and runs the fault-tolerant
// response-time analysis at the given fault rate (faults per hour).
func VerifySlack(rawTasks []sched.Task, ov sched.TEMOverheads, faultsPerHour float64) (*SlackReport, error) {
	if faultsPerHour <= 0 {
		return nil, fmt.Errorf("core: fault rate %v", faultsPerHour)
	}
	tem := sched.TEMTransform(rawTasks, ov)
	tem = sched.AssignByCriticality(tem)
	interval := des.Time((1 / faultsPerHour) * float64(des.Hour))
	rs, err := sched.AnalyzeWithFaults(tem, interval)
	if err != nil {
		return nil, fmt.Errorf("core: slack analysis: %w", err)
	}
	maxRate, err := sched.MaxFaultRate(tem)
	if err != nil {
		return nil, err
	}
	return &SlackReport{
		Schedulable: sched.Schedulable(rs),
		FaultRate:   faultsPerHour,
		MaxRate:     maxRate,
		Utilization: sched.Utilization(tem),
		Responses:   rs,
	}, nil
}
