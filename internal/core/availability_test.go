package core

import (
	"testing"
)

func TestAvailabilityParamsValidate(t *testing.T) {
	if err := DefaultAvailabilityParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultAvailabilityParams()
	bad.MuP = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MuP accepted")
	}
	bad = DefaultAvailabilityParams()
	bad.CD = 2
	if err := bad.Validate(); err == nil {
		t.Error("bad base params accepted")
	}
}

func TestRepairableChainsHaveNoAbsorbingStates(t *testing.T) {
	a := DefaultAvailabilityParams()
	for _, nt := range []NodeType{FS, NLFT} {
		cu, err := repairableCU(a, nt)
		if err != nil {
			t.Fatal(err)
		}
		if abs := cu.Absorbing(); len(abs) != 0 {
			t.Errorf("%v CU still has absorbing states %v", nt, abs)
		}
		wn, err := repairableWheels(a, nt)
		if err != nil {
			t.Fatal(err)
		}
		if abs := wn.Absorbing(); len(abs) != 0 {
			t.Errorf("%v wheels still has absorbing states %v", nt, abs)
		}
	}
	if _, err := repairableCU(a, NodeType(9)); err == nil {
		t.Error("bad node type accepted")
	}
	if _, err := repairableWheels(a, NodeType(9)); err == nil {
		t.Error("bad node type accepted")
	}
}

// TestBBWAvailability: with repair, both systems reach high steady-state
// availability, and NLFT still wins — less downtime per year.
func TestBBWAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("availability integration is quadrature-heavy")
	}
	fs, nlft, err := BBWAvailability(DefaultAvailabilityParams())
	if err != nil {
		t.Fatal(err)
	}
	if fs.SteadyState < 0.9 || fs.SteadyState > 1 {
		t.Errorf("FS steady-state availability = %v", fs.SteadyState)
	}
	if !(nlft.SteadyState > fs.SteadyState) {
		t.Errorf("NLFT availability %v not above FS %v", nlft.SteadyState, fs.SteadyState)
	}
	if !(nlft.DowntimeHoursPerYear < fs.DowntimeHoursPerYear) {
		t.Errorf("NLFT downtime %v not below FS %v",
			nlft.DowntimeHoursPerYear, fs.DowntimeHoursPerYear)
	}
	if fs.DowntimeHoursPerYear <= 0 || fs.DowntimeHoursPerYear > HoursPerYear/2 {
		t.Errorf("FS downtime = %v h/y implausible", fs.DowntimeHoursPerYear)
	}
	t.Logf("availability: FS %.6f (%.1f h/y down) vs NLFT %.6f (%.1f h/y down)",
		fs.SteadyState, fs.DowntimeHoursPerYear, nlft.SteadyState, nlft.DowntimeHoursPerYear)
}
