package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperParamsValid(t *testing.T) {
	if err := PaperParams().Validate(); err != nil {
		t.Fatal(err)
	}
	p := PaperParams()
	if math.Abs(p.LambdaT-10*p.LambdaP) > 1e-18 {
		t.Errorf("λ_T = %v, want 10·λ_P", p.LambdaT)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := map[string]func(*Params){
		"negative lambdaP": func(p *Params) { p.LambdaP = -1 },
		"CD > 1":           func(p *Params) { p.CD = 1.5 },
		"NaN PT":           func(p *Params) { p.PT = math.NaN() },
		"budget != 1":      func(p *Params) { p.PT = 0.5 },
		"negative MuR":     func(p *Params) { p.MuR = -1 },
	}
	for name, mutate := range cases {
		p := PaperParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := PaperParams()
	if got := p.MaskProb(); math.Abs(got-0.891) > 1e-12 {
		t.Errorf("MaskProb = %v, want 0.891", got)
	}
	want := p.LambdaT * (1 - 0.891)
	if got := p.UnmaskedTransientRate(); math.Abs(got-want) > 1e-18 {
		t.Errorf("UnmaskedTransientRate = %v, want %v", got, want)
	}
}

func TestEnumStrings(t *testing.T) {
	if FS.String() != "FS" || NLFT.String() != "NLFT" {
		t.Error("NodeType strings wrong")
	}
	if Full.String() != "full" || Degraded.String() != "degraded" {
		t.Error("Mode strings wrong")
	}
	if NodeType(99).String() == "" || Mode(99).String() == "" {
		t.Error("unknown enums must still print")
	}
}

func TestCentralUnitFSStructure(t *testing.T) {
	c, err := CentralUnitFS(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 4 {
		t.Errorf("CU FS has %d states, want 4 (Figure 6)", c.NumStates())
	}
	abs := c.Absorbing()
	if len(abs) != 1 || abs[0] != StateFailed {
		t.Errorf("absorbing = %v, want [F]", abs)
	}
}

func TestCentralUnitNLFTStructure(t *testing.T) {
	c, err := CentralUnitNLFT(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 5 {
		t.Errorf("CU NLFT has %d states, want 5 (Figure 7)", c.NumStates())
	}
}

func TestWheelsFullNLFTIsTwoState(t *testing.T) {
	c, err := WheelsFullNLFT(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 2 {
		t.Errorf("wheels full NLFT has %d states, want 2 (Figure 10)", c.NumStates())
	}
}

func TestWheelsDegradedStructures(t *testing.T) {
	fs, err := WheelsDegradedFS(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumStates() != 4 {
		t.Errorf("wheels degraded FS: %d states, want 4 (Figure 9)", fs.NumStates())
	}
	nl, err := WheelsDegradedNLFT(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumStates() != 5 {
		t.Errorf("wheels degraded NLFT: %d states, want 5 (Figure 11)", nl.NumStates())
	}
}

func TestModelConstructorsRejectInvalidParams(t *testing.T) {
	bad := PaperParams()
	bad.CD = 2
	if _, err := CentralUnitFS(bad); err == nil {
		t.Error("CentralUnitFS accepted bad params")
	}
	if _, err := CentralUnitNLFT(bad); err == nil {
		t.Error("CentralUnitNLFT accepted bad params")
	}
	if _, err := WheelsFullFS(bad); err == nil {
		t.Error("WheelsFullFS accepted bad params")
	}
	if _, err := WheelsDegradedFS(bad); err == nil {
		t.Error("WheelsDegradedFS accepted bad params")
	}
	if _, err := WheelsFullNLFT(bad); err == nil {
		t.Error("WheelsFullNLFT accepted bad params")
	}
	if _, err := WheelsDegradedNLFT(bad); err == nil {
		t.Error("WheelsDegradedNLFT accepted bad params")
	}
	if _, err := BBWSystem(bad, FS, Full); err == nil {
		t.Error("BBWSystem accepted bad params")
	}
	if _, err := BBWSystem(PaperParams(), NodeType(9), Full); err == nil {
		t.Error("BBWSystem accepted bad node type")
	}
	if _, err := BBWSystem(PaperParams(), FS, Mode(9)); err == nil {
		t.Error("BBWSystem accepted bad mode")
	}
}

// TestPaperHeadlineNumbers is the central fidelity check: the paper
// reports degraded-mode one-year reliability 0.45 (FS) vs 0.70 (NLFT),
// a 55% gain, and MTTF 1.2 vs 1.9 years, an ≈60% gain.
func TestPaperHeadlineNumbers(t *testing.T) {
	h, err := ComputeHeadline(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if h.ROneYearFS < 0.43 || h.ROneYearFS > 0.48 {
		t.Errorf("FS one-year R = %v, paper reports 0.45", h.ROneYearFS)
	}
	if h.ROneYearNLFT < 0.68 || h.ROneYearNLFT > 0.73 {
		t.Errorf("NLFT one-year R = %v, paper reports 0.70", h.ROneYearNLFT)
	}
	if h.RGain < 0.45 || h.RGain > 0.62 {
		t.Errorf("reliability gain = %v, paper reports ≈0.55", h.RGain)
	}
	if h.MTTFYearsFS < 1.0 || h.MTTFYearsFS > 1.4 {
		t.Errorf("FS MTTF = %v years, paper reports 1.2", h.MTTFYearsFS)
	}
	if h.MTTFYearsNLFT < 1.7 || h.MTTFYearsNLFT > 2.1 {
		t.Errorf("NLFT MTTF = %v years, paper reports 1.9", h.MTTFYearsNLFT)
	}
	if h.MTTFGain < 0.45 || h.MTTFGain > 0.75 {
		t.Errorf("MTTF gain = %v, paper reports ≈0.6", h.MTTFGain)
	}
}

func TestFigure12ShapeAndOrdering(t *testing.T) {
	rows, err := Figure12(PaperParams(), HoursPerYear, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	first := rows[0]
	if first.FSFull != 1 || first.NLFTDegraded != 1 {
		t.Errorf("R(0) != 1: %+v", first)
	}
	for i, r := range rows {
		// Paper ordering at every t>0: degraded beats full for each node
		// type, and NLFT beats FS for each mode.
		if i == 0 {
			continue
		}
		if !(r.FSDegraded >= r.FSFull-1e-12) {
			t.Errorf("t=%v: FS degraded %v < FS full %v", r.Hours, r.FSDegraded, r.FSFull)
		}
		if !(r.NLFTDegraded >= r.NLFTFull-1e-12) {
			t.Errorf("t=%v: NLFT degraded < NLFT full", r.Hours)
		}
		if !(r.NLFTFull >= r.FSFull-1e-12) {
			t.Errorf("t=%v: NLFT full %v < FS full %v", r.Hours, r.NLFTFull, r.FSFull)
		}
		if !(r.NLFTDegraded >= r.FSDegraded-1e-12) {
			t.Errorf("t=%v: NLFT degraded < FS degraded", r.Hours)
		}
		// Monotone decay.
		prev := rows[i-1]
		for _, pair := range [][2]float64{
			{prev.FSFull, r.FSFull}, {prev.FSDegraded, r.FSDegraded},
			{prev.NLFTFull, r.NLFTFull}, {prev.NLFTDegraded, r.NLFTDegraded},
		} {
			if pair[1] > pair[0]+1e-12 {
				t.Errorf("t=%v: reliability increased", r.Hours)
			}
		}
	}
	if _, err := Figure12(PaperParams(), HoursPerYear, 0); err == nil {
		t.Error("0 steps did not error")
	}
}

func TestFigure13WheelsAreBottleneck(t *testing.T) {
	rows, err := Figure13(PaperParams(), HoursPerYear, 8)
	if err != nil {
		t.Fatal(err)
	}
	last := rows[len(rows)-1]
	// §3.4: "The main reliability bottleneck is the wheel node subsystem."
	if !(last.WheelsDegradedFS < last.CUFS) {
		t.Errorf("wheels FS %v not below CU FS %v", last.WheelsDegradedFS, last.CUFS)
	}
	if !(last.WheelsDegradedNLFT < last.CUNLFT) {
		t.Errorf("wheels NLFT %v not below CU NLFT %v", last.WheelsDegradedNLFT, last.CUNLFT)
	}
	// Full-functionality wheels decay faster than degraded wheels.
	if !(last.WheelsFullFS < last.WheelsDegradedFS) {
		t.Error("full FS wheels should be worse than degraded")
	}
	if _, err := Figure13(PaperParams(), HoursPerYear, 0); err == nil {
		t.Error("0 steps did not error")
	}
}

func TestFigure14CoverageDominates(t *testing.T) {
	p := PaperParams()
	rows, err := Figure14(p, 5, []float64{0.99, 0.999}, []float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(cd float64, nt NodeType, mult float64) float64 {
		for _, r := range rows {
			if r.Coverage == cd && r.NodeType == nt && r.LambdaTMultiple == mult {
				return r.R
			}
		}
		t.Fatalf("missing row cd=%v nt=%v mult=%v", cd, nt, mult)
		return 0
	}
	// Higher coverage ⇒ higher reliability (for both node types).
	if !(get(0.999, FS, 10) > get(0.99, FS, 10)) {
		t.Error("coverage increase did not improve FS reliability")
	}
	if !(get(0.999, NLFT, 10) > get(0.99, NLFT, 10)) {
		t.Error("coverage increase did not improve NLFT reliability")
	}
	// NLFT at least as good as FS everywhere; advantage grows with rate.
	advLow := get(0.99, NLFT, 1) - get(0.99, FS, 1)
	advHigh := get(0.99, NLFT, 100) - get(0.99, FS, 100)
	if advLow < 0 {
		t.Errorf("NLFT below FS at baseline rate: %v", advLow)
	}
	if !(advHigh > advLow) {
		t.Errorf("NLFT advantage did not grow with fault rate: %v vs %v", advHigh, advLow)
	}
	// Reliability after 5 h must be high in absolute terms.
	if r := get(0.99, NLFT, 1); r < 0.99 {
		t.Errorf("five-hour NLFT reliability = %v, expected near 1", r)
	}
	if _, err := Figure14(p, 5, nil, []float64{1}); err == nil {
		t.Error("empty coverages did not error")
	}
}

func TestMTTFTable(t *testing.T) {
	rows, err := MTTFTable(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NLFTHours <= r.FSHours {
			t.Errorf("%v: NLFT MTTF %v not above FS %v", r.Mode, r.NLFTHours, r.FSHours)
		}
		if r.Gain <= 0 {
			t.Errorf("%v: gain %v", r.Mode, r.Gain)
		}
	}
	// Degraded-mode MTTFs exceed full-mode MTTFs.
	if !(rows[1].FSHours > rows[0].FSHours) {
		t.Error("degraded FS MTTF not above full FS MTTF")
	}
}

func TestWheelsFullFSMatchesClosedForm(t *testing.T) {
	p := PaperParams()
	blk, err := WheelsFullFS(p)
	if err != nil {
		t.Fatal(err)
	}
	rate := 4 * (p.LambdaP + p.LambdaT)
	for _, h := range []float64{0, 100, HoursPerYear} {
		want := math.Exp(-rate * h)
		if got := blk.Reliability(h); math.Abs(got-want) > 1e-12 {
			t.Errorf("R(%v) = %v, want %v", h, got, want)
		}
	}
}

func TestNLFTReducesToFSWhenTEMDisabledProperty(t *testing.T) {
	// Property: with P_T = 0 (no masking) and all detected transients
	// causing fail-silent behaviour (P_FS = 1) with the same repair rate,
	// the NLFT CU model must match the FS CU model for any valid rates.
	check := func(lpRaw, ltRaw uint16, cdRaw uint8) bool {
		p := PaperParams()
		p.LambdaP = float64(lpRaw+1) * 1e-7
		p.LambdaT = float64(ltRaw+1) * 1e-6
		p.CD = 0.5 + float64(cdRaw%50)/100
		p.PT, p.POM, p.PFS = 0, 0, 1
		p.MuOM = p.MuR
		fs, err := CentralUnitFS(p)
		if err != nil {
			return false
		}
		nl, err := CentralUnitNLFT(p)
		if err != nil {
			return false
		}
		p0fs, _ := fs.InitialAt(StateOK)
		p0nl, _ := nl.InitialAt(StateOK)
		for _, h := range []float64{10, 1000, HoursPerYear} {
			pf, err := fs.Transient(p0fs, h)
			if err != nil {
				return false
			}
			pn, err := nl.Transient(p0nl, h)
			if err != nil {
				return false
			}
			qf, _ := fs.ProbIn(pf, StateFailed)
			qn, _ := nl.ProbIn(pn, StateFailed)
			if math.Abs(qf-qn) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPerfectCoveragePerfectMaskingProperty(t *testing.T) {
	// With C_D = 1, P_T = 1 and λ_P = 0 every fault is masked: the NLFT
	// wheel subsystem in full mode must be perfectly reliable.
	p := PaperParams()
	p.CD, p.PT, p.POM, p.PFS = 1, 1, 0, 0
	p.LambdaP = 0
	c, err := WheelsFullNLFT(p)
	if err != nil {
		t.Fatal(err)
	}
	p0, _ := c.InitialAt(StateOK)
	dist, err := c.Transient(p0, HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := c.ProbIn(dist, StateFailed)
	if q > 1e-12 {
		t.Errorf("perfect masking still fails with q = %v", q)
	}
}

func BenchmarkBBWSystemBuildAndSolve(b *testing.B) {
	p := PaperParams()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SystemReliability(p, NLFT, Degraded, HoursPerYear); err != nil {
			b.Fatal(err)
		}
	}
}
