package core

import (
	"testing"
)

func TestCentralUnitTMRStructure(t *testing.T) {
	c, err := CentralUnitTMR(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if c.NumStates() != 4 {
		t.Errorf("TMR states = %d, want 4", c.NumStates())
	}
	bad := PaperParams()
	bad.CD = 5
	if _, err := CentralUnitTMR(bad); err == nil {
		t.Error("bad params accepted")
	}
}

// TestCompareRedundancyOrdering reproduces the introduction's framing:
// every redundancy scheme beats simplex; NLFT beats plain duplex FS at
// equal node count; and TMR's third node buys masking of undetected
// errors (which are system-fatal for FS duplex).
func TestCompareRedundancy(t *testing.T) {
	opts, err := CompareRedundancy(PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(opts) != 4 {
		t.Fatalf("options = %d", len(opts))
	}
	get := func(name string) RedundancyOption {
		for _, o := range opts {
			if o.Name == name {
				return o
			}
		}
		t.Fatalf("missing option %q", name)
		return RedundancyOption{}
	}
	simplex := get("simplex")
	duplexFS := get("duplex-FS")
	duplexNLFT := get("duplex-NLFT")
	tmr := get("tmr-voted")

	if !(duplexFS.ROneYear > simplex.ROneYear) {
		t.Errorf("duplex FS %v not above simplex %v", duplexFS.ROneYear, simplex.ROneYear)
	}
	if !(duplexNLFT.ROneYear > duplexFS.ROneYear) {
		t.Errorf("NLFT %v not above FS %v at the same node count",
			duplexNLFT.ROneYear, duplexFS.ROneYear)
	}
	if !(tmr.ROneYear > simplex.ROneYear) {
		t.Errorf("TMR %v not above simplex %v", tmr.ROneYear, simplex.ROneYear)
	}
	// The paper's cost argument: duplex NLFT achieves its reliability
	// with one node fewer than TMR. Record the comparison (no strict
	// ordering asserted between NLFT and TMR; the point is the node
	// count).
	if duplexNLFT.Nodes >= tmr.Nodes {
		t.Error("node counts wrong")
	}
	for _, o := range opts {
		if o.MTTFYears <= 0 {
			t.Errorf("%s MTTF = %v", o.Name, o.MTTFYears)
		}
	}
	// MTTF ordering mirrors reliability ordering for the duplex options.
	if !(duplexNLFT.MTTFYears > duplexFS.MTTFYears) {
		t.Error("NLFT MTTF not above FS MTTF")
	}
}

// TestBottleneckAnalysis quantifies §3.4's "the main reliability
// bottleneck is the wheel node subsystem" via Birnbaum importance.
func TestBottleneckAnalysis(t *testing.T) {
	p := PaperParams()
	imp, err := BottleneckAnalysis(p, FS, Degraded, HoursPerYear)
	if err != nil {
		t.Fatal(err)
	}
	// Birnbaum importance of the wheel subsystem exceeds the CU's:
	// improving the wheels buys more system reliability.
	if !(imp.Wheels > 0 && imp.CentralUnit > 0) {
		t.Fatalf("importances = %+v", imp)
	}
	// For a two-input OR tree, Birnbaum(X) = R(other); the wheels being
	// the bottleneck means the CU's reliability (= wheels' importance
	// coefficient) ... check the paper's direction: unreliable wheels
	// make the CU's importance low.
	if !(imp.Wheels > imp.CentralUnit) {
		t.Errorf("wheels importance %v not above CU %v", imp.Wheels, imp.CentralUnit)
	}
	if _, err := BottleneckAnalysis(p, NodeType(9), Degraded, 1); err == nil {
		t.Error("bad node type accepted")
	}
}
