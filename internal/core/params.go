// Package core implements the paper's primary contribution: the
// light-weight node-level fault tolerance (NLFT) framework. It provides
//
//   - the dependability parameter set of §3.3 and its validation,
//   - the reliability models of Figures 5–11 (duplex central unit and
//     wheel-node subsystem, for fail-silent and NLFT nodes, in full and
//     degraded functionality modes), built on internal/markov,
//     internal/rbd, internal/faulttree and internal/sharpe,
//   - the figure generators that regenerate the paper's evaluation
//     (Figures 12, 13, 14 and the MTTF comparison), and
//   - the framework glue that derives the model parameters (C_D, P_T,
//     P_OM, P_FS) from fault-injection campaigns on the simulated NLFT
//     kernel, closing the loop the paper describes between experimental
//     coverage estimation and analytic dependability prediction.
package core

import (
	"fmt"
	"math"
)

// HoursPerYear converts the paper's one-year horizon to hours.
const HoursPerYear = 8760.0

// Params is the dependability parameter set of §3.2.2/§3.3. All rates are
// per hour; probabilities are conditional as defined in the paper.
type Params struct {
	// LambdaP is the permanent fault rate λ_P (activated faults/hour).
	LambdaP float64
	// LambdaT is the transient fault rate λ_T (activated faults/hour).
	LambdaT float64
	// CD is the error-detection coverage C_D: the conditional probability
	// that an error is detected given that a fault occurred.
	CD float64
	// PT is the probability that a detected transient error is masked by
	// temporal error masking (TEM), given detection.
	PT float64
	// POM is the probability that a detected transient error leads to an
	// omission failure, given detection.
	POM float64
	// PFS is the probability that a detected transient error leads to a
	// fail-silent failure (error during kernel execution), given detection.
	PFS float64
	// MuR is the repair (restart + diagnosis + reintegration) rate after a
	// fail-silent failure, repairs/hour.
	MuR float64
	// MuOM is the reintegration rate after an omission failure,
	// repairs/hour.
	MuOM float64
}

// PaperParams returns the parameter assignment of §3.3: λ_P from
// MIL-HDBK-217 for a 32-bit automotive node, λ_T = 10·λ_P, coverage 0.99,
// TEM masking 0.9, omissions 0.05, kernel (fail-silent) share 0.05,
// 3 s restart repair and 1.6 s omission recovery.
func PaperParams() Params {
	return Params{
		LambdaP: 1.82e-5,
		LambdaT: 1.82e-4,
		CD:      0.99,
		PT:      0.90,
		POM:     0.05,
		PFS:     0.05,
		MuR:     1.2e3,
		MuOM:    2.25e3,
	}
}

// Validate checks ranges and the TEM outcome-probability budget
// P_T + P_OM + P_FS = 1 (the three ways §3.2.1 lets an NLFT node handle a
// detected transient error).
func (p Params) Validate() error {
	check := func(name string, v float64, lo, hi float64) error {
		if math.IsNaN(v) || v < lo || v > hi {
			return fmt.Errorf("core: %s = %v outside [%v, %v]", name, v, lo, hi)
		}
		return nil
	}
	for _, c := range []struct {
		name   string
		v      float64
		lo, hi float64
	}{
		{"LambdaP", p.LambdaP, 0, math.Inf(1)},
		{"LambdaT", p.LambdaT, 0, math.Inf(1)},
		{"CD", p.CD, 0, 1},
		{"PT", p.PT, 0, 1},
		{"POM", p.POM, 0, 1},
		{"PFS", p.PFS, 0, 1},
		{"MuR", p.MuR, 0, math.Inf(1)},
		{"MuOM", p.MuOM, 0, math.Inf(1)},
	} {
		if err := check(c.name, c.v, c.lo, c.hi); err != nil {
			return err
		}
	}
	if s := p.PT + p.POM + p.PFS; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("core: P_T + P_OM + P_FS = %v, want 1", s)
	}
	return nil
}

// MaskProb is the unconditional probability that a transient fault is
// masked locally by an NLFT node: detection and TEM masking, C_D·P_T.
func (p Params) MaskProb() float64 { return p.CD * p.PT }

// UnmaskedTransientRate is the rate of transient faults an NLFT node
// cannot mask (detected-but-unmaskable plus undetected):
// λ_T·(1 − C_D·P_T).
func (p Params) UnmaskedTransientRate() float64 {
	return p.LambdaT * (1 - p.MaskProb())
}

// NodeType selects the node failure semantics being modelled.
type NodeType int

// Node types compared in the paper.
const (
	// FS is a conventional fail-silent node: every detected error silences
	// the node until restart; a diagnostic then reintegrates it.
	FS NodeType = iota + 1
	// NLFT is a node with light-weight node-level fault tolerance: TEM
	// masks most transients; the rest surface as omission or fail-silent
	// failures.
	NLFT
)

// String names the node type as used in reports.
func (n NodeType) String() string {
	switch n {
	case FS:
		return "FS"
	case NLFT:
		return "NLFT"
	default:
		return fmt.Sprintf("NodeType(%d)", int(n))
	}
}

// Mode selects the BBW functionality requirement of §3.2.
type Mode int

// Functionality modes analysed in §3.2.
const (
	// Full requires all four wheel nodes and one central-unit node.
	Full Mode = iota + 1
	// Degraded requires at least three wheel nodes and one central-unit
	// node, with failed wheel nodes allowed to reintegrate.
	Degraded
)

// String names the mode as used in reports.
func (m Mode) String() string {
	switch m {
	case Full:
		return "full"
	case Degraded:
		return "degraded"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}
