package core

import (
	"fmt"

	"repro/internal/markov"
)

// The paper evaluates reliability (no repair of permanent faults,
// §3.2.2). Vehicles, though, visit workshops: this file extends the
// models with a permanent-repair rate μ_P, turning the BBW subsystems
// into repairable systems, and evaluates availability measures —
// steady-state availability and expected downtime per year — for the
// FS-vs-NLFT comparison. The extension reuses the exact Figure 6/7/9/11
// structure with two additional repair transitions.

// AvailabilityParams extends Params with the permanent-repair rate.
type AvailabilityParams struct {
	Params
	// MuP is the repair rate for permanent faults (repairs/hour); e.g.
	// a 24-hour garage turnaround is 1/24 ≈ 0.042/h.
	MuP float64
}

// DefaultAvailabilityParams returns the paper's parameters with a
// 24-hour permanent-repair turnaround.
func DefaultAvailabilityParams() AvailabilityParams {
	return AvailabilityParams{Params: PaperParams(), MuP: 1.0 / 24}
}

// Validate checks the extended parameter set.
func (a AvailabilityParams) Validate() error {
	if err := a.Params.Validate(); err != nil {
		return err
	}
	if a.MuP <= 0 {
		return fmt.Errorf("core: MuP = %v", a.MuP)
	}
	return nil
}

// repairableCU builds the duplex central-unit model with repair of both
// permanent faults (state 1, at μ_P) and the system-failure state
// (state F, at μ_P — the whole unit is swapped). The failure state is
// no longer absorbing, so steady-state measures exist.
func repairableCU(a AvailabilityParams, nt NodeType) (*markov.Chain, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	var base *markov.Chain
	var err error
	switch nt {
	case FS:
		base, err = CentralUnitFS(a.Params)
	case NLFT:
		base, err = CentralUnitNLFT(a.Params)
	default:
		return nil, fmt.Errorf("core: unknown node type %v", nt)
	}
	if err != nil {
		return nil, err
	}
	return withRepair(base, a.MuP)
}

// repairableWheels builds the degraded-mode wheel subsystem with repair.
func repairableWheels(a AvailabilityParams, nt NodeType) (*markov.Chain, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	var base *markov.Chain
	var err error
	switch nt {
	case FS:
		base, err = WheelsDegradedFS(a.Params)
	case NLFT:
		base, err = WheelsDegradedNLFT(a.Params)
	default:
		return nil, fmt.Errorf("core: unknown node type %v", nt)
	}
	if err != nil {
		return nil, err
	}
	return withRepair(base, a.MuP)
}

// withRepair rebuilds a chain adding StatePermanentDown→StateOK and
// StateFailed→StateOK repair transitions at rate muP.
func withRepair(base *markov.Chain, muP float64) (*markov.Chain, error) {
	b := markov.NewBuilder()
	states := base.States()
	q := base.Generator()
	for i, from := range states {
		for j, to := range states {
			if i == j {
				continue
			}
			if r := q.At(i, j); r > 0 {
				b.AddRate(from, to, r)
			}
		}
	}
	b.AddRate(StatePermanentDown, StateOK, muP)
	b.AddRate(StateFailed, StateOK, muP)
	return b.Build()
}

// AvailabilityReport carries the availability measures for one
// subsystem and node type.
type AvailabilityReport struct {
	NodeType NodeType
	// SteadyState is the long-run fraction of time the subsystem works
	// (not in StateFailed).
	SteadyState float64
	// DowntimeHoursPerYear is the expected time in StateFailed over one
	// year, starting from all-up.
	DowntimeHoursPerYear float64
}

// BBWAvailability evaluates steady-state availability and expected
// yearly downtime of the complete BBW system (series of the repairable
// CU and degraded-mode wheel subsystems) for both node types.
func BBWAvailability(a AvailabilityParams) (fs, nlft AvailabilityReport, err error) {
	eval := func(nt NodeType) (AvailabilityReport, error) {
		cu, err := repairableCU(a, nt)
		if err != nil {
			return AvailabilityReport{}, err
		}
		wn, err := repairableWheels(a, nt)
		if err != nil {
			return AvailabilityReport{}, err
		}
		rep := AvailabilityReport{NodeType: nt, SteadyState: 1}
		downtime := 0.0
		for _, chain := range []*markov.Chain{cu, wn} {
			pi, err := chain.SteadyState()
			if err != nil {
				return AvailabilityReport{}, err
			}
			qf, err := chain.ProbIn(pi, StateFailed)
			if err != nil {
				return AvailabilityReport{}, err
			}
			rep.SteadyState *= 1 - qf
			p0, err := chain.InitialAt(StateOK)
			if err != nil {
				return AvailabilityReport{}, err
			}
			d, err := chain.ExpectedTimeIn(p0, HoursPerYear, StateFailed)
			if err != nil {
				return AvailabilityReport{}, err
			}
			downtime += d
		}
		// Series downtime approximation: the subsystems fail (nearly)
		// independently and rarely overlap, so yearly downtimes add.
		rep.DowntimeHoursPerYear = downtime
		return rep, nil
	}
	fs, err = eval(FS)
	if err != nil {
		return
	}
	nlft, err = eval(NLFT)
	return
}
