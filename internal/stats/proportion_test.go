package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionWilson(t *testing.T) {
	p := NewProportion(90, 100)
	if math.Abs(p.P-0.9) > 1e-12 {
		t.Errorf("P = %v", p.P)
	}
	if !(p.Lo < 0.9 && 0.9 < p.Hi) {
		t.Errorf("interval [%v, %v] excludes the point estimate", p.Lo, p.Hi)
	}
	if p.Lo < 0.80 || p.Hi > 0.97 {
		t.Errorf("interval [%v, %v] implausibly wide for n=100", p.Lo, p.Hi)
	}
	for _, c := range []struct{ h, n int }{{0, 10}, {10, 10}, {0, 0}} {
		pp := NewProportion(c.h, c.n)
		if pp.Lo < 0 || pp.Hi > 1 {
			t.Errorf("edge (%d/%d): [%v, %v]", c.h, c.n, pp.Lo, pp.Hi)
		}
	}
}

func TestProportionIntervalShrinksWithN(t *testing.T) {
	small := NewProportion(9, 10)
	large := NewProportion(900, 1000)
	if (large.Hi - large.Lo) >= (small.Hi - small.Lo) {
		t.Error("interval did not shrink with sample size")
	}
}

func TestProportionKnownValue(t *testing.T) {
	// Wilson 95% for 5/10: approximately [0.2366, 0.7634].
	p := NewProportion(5, 10)
	if math.Abs(p.Lo-0.2366) > 0.001 || math.Abs(p.Hi-0.7634) > 0.001 {
		t.Errorf("interval [%v, %v], want ≈[0.2366, 0.7634]", p.Lo, p.Hi)
	}
}

func TestProportionString(t *testing.T) {
	s := NewProportion(3, 4).String()
	if !strings.Contains(s, "0.75") || !strings.Contains(s, "3/4") {
		t.Errorf("String = %q", s)
	}
}

func TestProportionProperty(t *testing.T) {
	check := func(hRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		h := int(hRaw) % (n + 1)
		p := NewProportion(h, n)
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.P+1e-12 && p.P <= p.Hi+1e-12
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
