// Package stats provides the small statistical estimators shared by the
// fault-injection campaigns and Monte-Carlo validators.
package stats

import (
	"fmt"
	"math"
)

// Proportion is an estimated probability with a confidence interval.
type Proportion struct {
	// Hits and Trials define the point estimate Hits/Trials.
	Hits, Trials int
	// P is the point estimate.
	P float64
	// Lo and Hi bound the 95% Wilson score interval.
	Lo, Hi float64
}

// z95 is the 97.5th percentile of the standard normal: the critical
// value all 95% intervals in this package share.
const z95 = 1.959963984540054

// wilson computes the 95% Wilson score interval for point estimate p at
// sample size n. n may be fractional: the stratified estimator feeds an
// effective sample size through the same formula, so a one-stratum
// stratified interval is bit-equal to the plain one.
func wilson(p, n float64) (lo, hi float64) {
	z2 := z95 * z95
	denom := 1 + z2/n
	center := (p + z2/(2*n)) / denom
	half := z95 / denom * math.Sqrt(p*(1-p)/n+z2/(4*n*n))
	lo = center - half
	hi = center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// NewProportion computes the Wilson score interval (95%) for hits/trials.
// The Wilson interval behaves sensibly near 0 and 1, where coverage
// estimates live.
func NewProportion(hits, trials int) Proportion {
	if trials <= 0 {
		return Proportion{Hits: hits, Trials: trials}
	}
	n := float64(trials)
	p := float64(hits) / n
	lo, hi := wilson(p, n)
	return Proportion{Hits: hits, Trials: trials, P: p, Lo: lo, Hi: hi}
}

// String renders the estimate as "p [lo, hi] (hits/trials)".
func (p Proportion) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (%d/%d)", p.P, p.Lo, p.Hi, p.Hits, p.Trials)
}
