package stats

import (
	"fmt"
	"math"
)

// Stratum is one stratum's contribution to a stratified estimate.
// Weights are the strata's shares of the sampled population and should
// sum to 1 across the slice; within each stratum the Hits/Trials tally
// is an iid sample of that stratum's conditional distribution.
type Stratum struct {
	// Weight is the stratum's probability mass under the target
	// (uniform-sampling) distribution.
	Weight float64
	// Hits and Trials are the stratum's sampled tally (ignored when
	// Exact is set).
	Hits, Trials int
	// Exact marks a stratum whose proportion is known in closed form —
	// e.g. the campaign's modelled kernel-hit branch, whose conditional
	// outcome distribution needs no simulation. An exact stratum
	// contributes Weight·P to the point estimate and nothing to the
	// variance (Rao-Blackwellization).
	Exact bool
	// P is the known proportion of an Exact stratum.
	P float64
}

// StratifiedEstimate is a probability estimated over a stratified
// sample: the weighted point estimate, the estimator variance, a 95%
// interval, and the effective sample size the interval corresponds to.
type StratifiedEstimate struct {
	// P is the weighted point estimate Σ wₛ·p̂ₛ (exact strata contribute
	// their known wₛ·pₛ).
	P float64
	// Var is the estimator variance Σ wₛ²·p̂ₛ(1−p̂ₛ)/nₛ over sampled
	// strata (exact strata contribute zero).
	Var float64
	// Lo and Hi bound the 95% interval (Wilson over the sampled mass at
	// the effective sample size, shifted by the exact mass; one sampled
	// stratum of weight 1 degenerates to the plain Wilson interval).
	Lo, Hi float64
	// EffN is the effective sample size of the sampled mass,
	// p̂(1−p̂)/Var over the conditional (renormalized) strata: the
	// uniform-sample count whose binomial estimator would match its
	// variance.
	EffN float64
	// Trials is the raw sampled trial count summed over strata.
	Trials int
}

// HalfWidth is the interval half-width, the auto-stop criterion of the
// adaptive campaign driver.
func (e StratifiedEstimate) HalfWidth() float64 { return (e.Hi - e.Lo) / 2 }

// String renders the estimate as "p [lo, hi] (neff~N of T)".
func (e StratifiedEstimate) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f] (neff %.0f of %d)", e.P, e.Lo, e.Hi, e.EffN, e.Trials)
}

// Stratified combines per-stratum tallies into one estimate.
//
// Exact strata carry no sampling uncertainty, so they enter as an
// affine shift: with exact mass e = Σ wₛ·pₛ over exact strata and
// sampled mass W = Σ wₛ over the rest, the estimate is
// e + W·p̂_c with interval [e + W·lo_c, e + W·hi_c], where p̂_c and
// [lo_c, hi_c] are the stratified estimate and interval of the
// CONDITIONAL proportion over the sampled mass (weights renormalized
// by W). Folding the exact mass into the interval computation instead
// would charge the known branch for uncertainty it does not have —
// exactly the variance the adaptive campaign's Rao-Blackwellized
// kernel-coin stratum exists to remove.
//
// A sampled stratum with zero trials contributes its worst-case
// variance ((wₛ/W)²·¼, a single Bernoulli draw at p=½) so an
// unexplored stratum can only widen the interval, never silently
// tighten it; the adaptive driver's per-stratum allocation floors make
// this a transient state.
//
// The conditional interval is a Wilson score interval evaluated at the
// effective sample size n_eff = p̂_c(1−p̂_c)/Var_c. With a single
// sampled stratum of weight 1 the variance is exactly p̂(1−p̂)/n, so
// n_eff = n and the interval IS the plain Wilson interval (guarded by
// TestStratifiedDegeneratesToWilson). When the variance or p̂_c(1−p̂_c)
// degenerates to zero (all-zero or all-one tallies), the raw trial
// count is used instead — again matching the plain Wilson interval in
// the one-stratum case.
func Stratified(strata []Stratum) StratifiedEstimate {
	var est StratifiedEstimate
	var exactP, sampledW float64
	for _, s := range strata {
		if s.Exact {
			exactP += s.Weight * s.P
			continue
		}
		sampledW += s.Weight
		est.Trials += s.Trials
	}
	if sampledW <= 0 {
		// Only exact strata: a width-zero interval at the known value.
		est.P, est.Lo, est.Hi = exactP, exactP, exactP
		return est
	}
	var pc, varc float64
	for _, s := range strata {
		if s.Exact {
			continue
		}
		ws := s.Weight / sampledW
		if s.Trials <= 0 {
			varc += ws * ws * 0.25
			continue
		}
		ps := float64(s.Hits) / float64(s.Trials)
		pc += ws * ps
		varc += ws * ws * ps * (1 - ps) / float64(s.Trials)
	}
	pq := pc * (1 - pc)
	switch {
	case varc > 0 && pq > 0:
		est.EffN = pq / varc
	default:
		est.EffN = float64(est.Trials)
	}
	lo, hi := 0.0, 1.0
	if est.EffN <= 0 || math.IsNaN(est.EffN) || math.IsInf(est.EffN, 0) {
		// Nothing sampled at all: the only honest conditional interval
		// is vacuous.
		est.EffN = 0
	} else {
		lo, hi = wilson(pc, est.EffN)
	}
	est.P = exactP + sampledW*pc
	est.Var = sampledW * sampledW * varc
	est.Lo = exactP + sampledW*lo
	est.Hi = exactP + sampledW*hi
	return est
}
