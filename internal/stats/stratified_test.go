package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonEdgeCases(t *testing.T) {
	// hits=0: the interval must pin its lower bound at 0 but keep a
	// positive upper bound (zero observed successes never proves zero).
	p := NewProportion(0, 50)
	if p.P != 0 || p.Lo != 0 {
		t.Errorf("hits=0: P=%v Lo=%v, want both 0", p.P, p.Lo)
	}
	if !(p.Hi > 0 && p.Hi < 0.15) {
		t.Errorf("hits=0 n=50: Hi=%v, want small positive", p.Hi)
	}
	// hits=trials: mirror image.
	p = NewProportion(50, 50)
	if p.P != 1 || p.Hi != 1 {
		t.Errorf("hits=trials: P=%v Hi=%v, want both 1", p.P, p.Hi)
	}
	if !(p.Lo < 1 && p.Lo > 0.85) {
		t.Errorf("hits=trials n=50: Lo=%v, want just under 1", p.Lo)
	}
	// trials=0: no data, zero-valued estimate (documented contract).
	p = NewProportion(0, 0)
	if p.P != 0 || p.Lo != 0 || p.Hi != 0 {
		t.Errorf("trials=0: got %+v, want zero value", p)
	}
	// trials=1: a single Bernoulli draw must produce a near-vacuous but
	// well-ordered interval either way.
	for _, h := range []int{0, 1} {
		p = NewProportion(h, 1)
		if p.Lo < 0 || p.Hi > 1 || p.Lo > p.Hi {
			t.Errorf("trials=1 hits=%d: [%v, %v] ill-formed", h, p.Lo, p.Hi)
		}
		if p.Hi-p.Lo < 0.5 {
			t.Errorf("trials=1 hits=%d: width %v implausibly tight", h, p.Hi-p.Lo)
		}
	}
	// Symmetry: hits=0 and hits=trials intervals mirror around 1/2.
	lo0 := NewProportion(0, 37)
	hi1 := NewProportion(37, 37)
	if math.Abs(lo0.Hi-(1-hi1.Lo)) > 1e-12 {
		t.Errorf("edge intervals not mirrored: %v vs %v", lo0.Hi, 1-hi1.Lo)
	}
}

// TestStratifiedDegeneratesToWilson is the property the ISSUE pins: the
// stratified interval over a single stratum of weight 1 must reproduce
// the plain Wilson interval, hits and edge cases included.
func TestStratifiedDegeneratesToWilson(t *testing.T) {
	check := func(hRaw, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		h := int(hRaw) % (n + 1)
		want := NewProportion(h, n)
		got := Stratified([]Stratum{{Weight: 1, Hits: h, Trials: n}})
		const tol = 1e-9
		return math.Abs(got.P-want.P) < tol &&
			math.Abs(got.Lo-want.Lo) < tol &&
			math.Abs(got.Hi-want.Hi) < tol &&
			math.Abs(got.EffN-float64(n)) < tol*float64(n)+tol &&
			got.Trials == n
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestStratifiedExactStratum(t *testing.T) {
	// An exact stratum moves the point estimate without variance: the
	// modelled kernel-hit branch of the adaptive campaign.
	e := Stratified([]Stratum{
		{Weight: 0.05, Exact: true, P: 0.98},
		{Weight: 0.95, Hits: 0, Trials: 400},
	})
	want := 0.05 * 0.98
	if math.Abs(e.P-want) > 1e-12 {
		t.Errorf("P = %v, want %v", e.P, want)
	}
	if !(e.Lo <= want && want <= e.Hi) {
		t.Errorf("interval [%v, %v] excludes the point estimate %v", e.Lo, e.Hi, want)
	}
	// All-exact strata: a width-zero interval at the known value.
	e = Stratified([]Stratum{{Weight: 1, Exact: true, P: 0.3}})
	if e.P != 0.3 || e.Lo != 0.3 || e.Hi != 0.3 {
		t.Errorf("exact-only estimate %+v, want degenerate at 0.3", e)
	}
}

func TestStratifiedVarianceReduction(t *testing.T) {
	// Two strata with wildly different rates: the stratified variance
	// must undercut the pooled binomial variance at the same total n
	// (the between-strata component is eliminated by design).
	a := Stratum{Weight: 0.5, Hits: 0, Trials: 200}
	b := Stratum{Weight: 0.5, Hits: 100, Trials: 200}
	e := Stratified([]Stratum{a, b})
	pooled := NewProportion(100, 400)
	if math.Abs(e.P-0.25) > 1e-12 {
		t.Errorf("P = %v, want 0.25", e.P)
	}
	pooledVar := pooled.P * (1 - pooled.P) / 400
	if e.Var >= pooledVar {
		t.Errorf("stratified var %v not below pooled %v", e.Var, pooledVar)
	}
	if e.EffN <= 400 {
		t.Errorf("EffN = %v, want > raw 400", e.EffN)
	}
	if e.HalfWidth() >= (pooled.Hi-pooled.Lo)/2 {
		t.Errorf("stratified interval no tighter than pooled")
	}
}

func TestStratifiedUnsampledStratumWidens(t *testing.T) {
	sampled := []Stratum{
		{Weight: 0.5, Hits: 5, Trials: 100},
		{Weight: 0.5, Hits: 7, Trials: 100},
	}
	withHole := []Stratum{
		{Weight: 0.5, Hits: 5, Trials: 100},
		{Weight: 0.5, Trials: 0},
	}
	if Stratified(withHole).HalfWidth() <= Stratified(sampled).HalfWidth() {
		t.Error("an unsampled stratum must widen the interval, not tighten it")
	}
}
