package benchjson

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestHeader(t *testing.T) {
	h := NewHeader()
	if h.GoVersion != runtime.Version() || h.NumCPU != runtime.NumCPU() || h.GOMAXPROCS < 1 {
		t.Errorf("header %+v", h)
	}
}

type testDoc struct {
	Header
	Value int `json:"value"`
}

// TestWriteFile: the header fields lead the document (embedded-first
// field order) and the file ends in a newline, matching the committed
// BENCH_*.json format.
func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	if err := WriteFile(path, &testDoc{Header: NewHeader(), Value: 7}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	s := string(b)
	if !strings.HasPrefix(s, "{\n  \"go_version\":") {
		t.Errorf("header not first:\n%s", s)
	}
	if !strings.HasSuffix(s, "}\n") {
		t.Errorf("missing trailing newline:\n%q", s)
	}
	if !strings.Contains(s, "\"value\": 7") {
		t.Errorf("payload missing:\n%s", s)
	}
}

func TestEmitFunc(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")

	// Unset variable: no file, code unchanged, build never called.
	if code := EmitFunc("BENCHJSON_TEST_UNSET", 0, func() *testDoc {
		t.Error("build called with unset env var")
		return nil
	}); code != 0 {
		t.Errorf("code %d", code)
	}

	t.Setenv("BENCHJSON_TEST_OUT", path)
	// Nil document: skip without error.
	if code := EmitFunc("BENCHJSON_TEST_OUT", 0, func() *testDoc { return nil }); code != 0 {
		t.Errorf("nil doc: code %d", code)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("file written for nil doc: %v", err)
	}
	// Real document: written, code preserved.
	if code := EmitFunc("BENCHJSON_TEST_OUT", 0, func() *testDoc {
		return &testDoc{Header: NewHeader(), Value: 3}
	}); code != 0 {
		t.Errorf("code %d", code)
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("file not written: %v", err)
	}
	// A test failure's exit code survives a successful emit.
	if code := EmitFunc("BENCHJSON_TEST_OUT", 2, func() *testDoc {
		return &testDoc{Value: 1}
	}); code != 2 {
		t.Errorf("code %d, want 2", code)
	}

	// Unwritable path: a clean run turns into exit 1.
	t.Setenv("BENCHJSON_TEST_OUT", filepath.Join(dir, "missing", "bench.json"))
	if code := EmitFunc("BENCHJSON_TEST_OUT", 0, func() *testDoc {
		return &testDoc{Value: 1}
	}); code != 1 {
		t.Errorf("write failure: code %d, want 1", code)
	}
}
