// Package benchjson is the shared emitter for the committed
// BENCH_*.json perf records: one environment header and one
// write-to-$ENV_VAR path, so every bench file carries the same
// machine-readable shape without copying the plumbing.
package benchjson

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// Header is the environment stamp every benchmark document starts
// with. Embed it first so the JSON leads with the host facts.
type Header struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// NewHeader stamps the current process environment.
func NewHeader() Header {
	return Header{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}

// WriteFile renders doc as indented JSON with a trailing newline —
// the committed BENCH_*.json format.
func WriteFile(path string, doc any) error {
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// EmitFunc writes build()'s document to the file named by $envVar.
// It is a no-op when the variable is unset or build returns nil (no
// results were collected). The returned code replaces the TestMain
// exit code: unchanged on success, 1 when a write failed and the run
// was otherwise clean.
func EmitFunc[T any](envVar string, code int, build func() *T) int {
	path := os.Getenv(envVar)
	if path == "" {
		return code
	}
	doc := build()
	if doc == nil {
		return code
	}
	if err := WriteFile(path, doc); err != nil {
		fmt.Fprintln(os.Stderr, envVar+":", err)
		if code == 0 {
			code = 1
		}
	}
	return code
}
