// Package node models the computer nodes of the distributed architecture
// (§2.1): a host processor running the NLFT kernel plus a network
// interface, in simplex or duplex configurations.
//
// Two levels of abstraction are provided:
//
//   - BehavioralNode: a failure-semantics state machine driven by
//     exponential fault arrivals with the paper's parameters (λ_P, λ_T,
//     C_D, P_T, P_OM, P_FS, μ_R, μ_OM). Clusters of behavioural nodes
//     Monte-Carlo-validate the analytic Markov models of Figures 6–11.
//
//   - HostedNode: a full simulated kernel coupled to a time-triggered
//     network endpoint, used by the brake-by-wire application.
package node

import (
	"fmt"

	"repro/internal/des"
)

// Rates is the dependability parameter set for behavioural nodes,
// mirroring §3.2.2 (rates per hour, probabilities conditional).
type Rates struct {
	LambdaP, LambdaT float64
	CD               float64
	PT, POM, PFS     float64
	MuR, MuOM        float64
}

// Validate checks ranges and that P_T+P_OM+P_FS = 1.
func (r Rates) Validate() error {
	if r.LambdaP < 0 || r.LambdaT < 0 || r.MuR <= 0 || r.MuOM <= 0 {
		return fmt.Errorf("node: invalid rates %+v", r)
	}
	if r.CD < 0 || r.CD > 1 {
		return fmt.Errorf("node: coverage %v", r.CD)
	}
	sum := r.PT + r.POM + r.PFS
	if sum < 0.999999999 || sum > 1.000000001 {
		return fmt.Errorf("node: P_T+P_OM+P_FS = %v", sum)
	}
	return nil
}

// Behavior selects the node's failure semantics (§3.2.1).
type Behavior int

// Node behaviours compared in the paper.
const (
	// FSBehavior: every detected error silences the node until restart.
	FSBehavior Behavior = iota + 1
	// NLFTBehavior: detected transients are masked with P_T, cause
	// omissions with P_OM or fail-silent failures with P_FS.
	NLFTBehavior
)

// String names the behaviour.
func (b Behavior) String() string {
	switch b {
	case FSBehavior:
		return "FS"
	case NLFTBehavior:
		return "NLFT"
	default:
		return fmt.Sprintf("behavior(%d)", int(b))
	}
}

// State is the externally visible node state.
type State int

// Behavioural node states (the Markov models' state semantics).
const (
	// Working: providing service (includes masked-transient instants).
	Working State = iota + 1
	// RestartDown: fail-silent failure, restarting (repair rate μ_R).
	RestartDown
	// OmissionDown: omission failure, reintegrating (repair rate μ_OM).
	OmissionDown
	// PermanentDown: permanently down (no repair in the models).
	PermanentDown
	// Uncovered: a non-covered error escaped detection — the paper
	// pessimistically treats this as a system failure.
	Uncovered
)

// String names the state.
func (s State) String() string {
	switch s {
	case Working:
		return "working"
	case RestartDown:
		return "restart-down"
	case OmissionDown:
		return "omission-down"
	case PermanentDown:
		return "permanent-down"
	case Uncovered:
		return "uncovered"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// BehavioralNode is the state machine.
type BehavioralNode struct {
	//nlft:snapshot-skip identity label fixed at construction
	Name string
	//nlft:snapshot-skip immutable configuration fixed at construction
	behavior Behavior
	//nlft:snapshot-skip immutable configuration fixed at construction
	rates Rates
	//nlft:snapshot-skip simulator wiring; the des core snapshots its own state
	sim   *des.Simulator
	rng   *des.Rand
	state State
	// masked counts transient faults masked by TEM (NLFT only).
	masked uint64
	// OnChange observes transitions.
	//nlft:snapshot-skip passive observer hook installed per run, not rewindable state
	OnChange func(n *BehavioralNode, from, to State)
	// pending repair event, canceled on permanent transitions (the zero
	// handle means no repair is in flight).
	repair des.Event
	// Bound fault/repair callbacks, created once so the recurring
	// exponential arrivals re-arm without allocating per event.
	//nlft:snapshot-skip bound method-value closures, identical across the node's lifetime
	permanentFn, transientFn, repairedFn func()
}

// NewBehavioral builds a node in the Working state and schedules its
// fault processes. rng must be a dedicated stream for this node.
func NewBehavioral(sim *des.Simulator, rng *des.Rand, name string, b Behavior, r Rates) (*BehavioralNode, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	if b != FSBehavior && b != NLFTBehavior {
		return nil, fmt.Errorf("node: unknown behavior %v", b)
	}
	n := &BehavioralNode{Name: name, behavior: b, rates: r, sim: sim, rng: rng, state: Working}
	n.permanentFn = n.permanentFault
	n.transientFn = n.transientFault
	n.repairedFn = n.repaired
	n.schedulePermanent()
	n.scheduleTransient()
	return n, nil
}

// State reports the current state.
func (n *BehavioralNode) State() State { return n.state }

// Masked reports the count of locally masked transients.
func (n *BehavioralNode) Masked() uint64 { return n.masked }

func (n *BehavioralNode) setState(s State) {
	if n.state == s {
		return
	}
	from := n.state
	n.state = s
	if n.OnChange != nil {
		n.OnChange(n, from, s)
	}
}

func (n *BehavioralNode) schedulePermanent() {
	if n.rates.LambdaP == 0 {
		return
	}
	d := n.rng.ExpTime(n.rates.LambdaP)
	if d == des.MaxTime {
		return
	}
	n.sim.Schedule(n.sim.Now()+d, des.PrioInject, n.permanentFn)
}

func (n *BehavioralNode) scheduleTransient() {
	if n.rates.LambdaT == 0 {
		return
	}
	d := n.rng.ExpTime(n.rates.LambdaT)
	if d == des.MaxTime {
		return
	}
	n.sim.Schedule(n.sim.Now()+d, des.PrioInject, n.transientFn)
}

// permanentFault handles an activated permanent fault.
func (n *BehavioralNode) permanentFault() {
	if n.state == PermanentDown || n.state == Uncovered {
		return
	}
	n.sim.Cancel(n.repair)
	n.repair = des.Event{}
	if !n.rng.Bool(n.rates.CD) {
		n.setState(Uncovered)
		return
	}
	n.setState(PermanentDown)
}

// transientFault handles an activated transient fault; further
// transients keep arriving regardless of state (they only matter when
// the node is up, but a transient hitting a restarting node is absorbed
// by the restart already underway).
func (n *BehavioralNode) transientFault() {
	defer n.scheduleTransient()
	if n.state != Working {
		return
	}
	if !n.rng.Bool(n.rates.CD) {
		n.setState(Uncovered)
		return
	}
	switch n.behavior {
	case FSBehavior:
		n.failSilent()
	case NLFTBehavior:
		u := n.rng.Float64()
		switch {
		case u < n.rates.PT:
			n.masked++ // masked locally; externally invisible
		case u < n.rates.PT+n.rates.POM:
			n.omission()
		default:
			n.failSilent()
		}
	}
}

func (n *BehavioralNode) failSilent() {
	n.setState(RestartDown)
	d := n.rng.ExpTime(n.rates.MuR)
	n.repair = n.sim.Schedule(n.sim.Now()+d, des.PrioKernel, n.repairedFn)
}

func (n *BehavioralNode) omission() {
	n.setState(OmissionDown)
	d := n.rng.ExpTime(n.rates.MuOM)
	n.repair = n.sim.Schedule(n.sim.Now()+d, des.PrioKernel, n.repairedFn)
}

func (n *BehavioralNode) repaired() {
	n.repair = des.Event{}
	if n.state == RestartDown || n.state == OmissionDown {
		n.setState(Working)
	}
}
