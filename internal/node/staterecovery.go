package node

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ttnet"
)

// This file implements the paper's §4 future-work item: "how to maintain
// consistency in replicated nodes in case of omission failures … the
// study of protocols such as FlexRay that may facilitate fast recovery
// of state data with low communication overhead through special requests
// to the partner node in the event-triggered part of the protocol".
//
// StateSync couples the two nodes of a duplex configuration. When one of
// them restarts after a fail-silent failure, it stays silent while a
// state request travels to the partner in the dynamic (event-triggered)
// segment; the partner answers with its committed task state, also in
// the dynamic segment; the requester installs the state and only then
// reintegrates — so the replicas stay consistent instead of the
// restarted node rejoining with cold state.

// Magic words marking state-recovery frames in the dynamic segment.
const (
	stateReqMagic = 0x53524551 // "SREQ"
	stateRspMagic = 0x53525350 // "SRSP"
)

// StateSyncConfig parameterizes a duplex state-recovery pair.
type StateSyncConfig struct {
	// DataStart/DataWords locate the replicated task state in each
	// node's kernel memory.
	DataStart uint32
	DataWords uint32
	// Priority is the dynamic-segment priority of recovery messages
	// (high, per the paper: recovery must be fast).
	Priority int
	// Timeout bounds how long a restarting node waits for the partner's
	// state before resuming cold. Default: 4 communication cycles'
	// worth, passed in by the caller as an absolute duration.
	Timeout des.Time
}

// StateSync is the duplex state-recovery protocol instance.
type StateSync struct {
	cfg   StateSyncConfig
	nodes [2]*HostedNode
	// pendingTimeout is the cold-resume fallback for an in-flight
	// recovery, per node index (the zero handle means none in flight).
	pendingTimeout [2]des.Event
	// Recoveries counts completed warm recoveries; ColdResumes counts
	// timeouts that forced a cold reintegration.
	Recoveries  uint64
	ColdResumes uint64
}

// NewStateSync couples two hosted nodes (a duplex configuration) for
// state recovery. Both nodes must share one bus and simulator, and the
// bus must have a dynamic segment (ttnet.Config.DynamicLen > 0) for the
// event-triggered messages to travel in.
func NewStateSync(a, b *HostedNode, cfg StateSyncConfig) (*StateSync, error) {
	if a == nil || b == nil || a == b {
		return nil, fmt.Errorf("node: state sync needs two distinct nodes")
	}
	if cfg.DataWords == 0 {
		return nil, fmt.Errorf("node: state sync with no state words")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 100 * des.Millisecond
	}
	s := &StateSync{cfg: cfg, nodes: [2]*HostedNode{a, b}}
	for i := range s.nodes {
		i := i
		n := s.nodes[i]
		if n.OnRestart != nil || n.ExtraOnFrame != nil {
			return nil, fmt.Errorf("node: %s already has protocol hooks", n.Name())
		}
		n.OnRestart = func(h *HostedNode) bool { return s.onRestart(i) }
		n.ExtraOnFrame = func(f ttnet.Frame) { s.onFrame(i, f) }
	}
	return s, nil
}

// onRestart fires when node idx rebuilt its kernel: request the
// partner's state and hold reintegration.
func (s *StateSync) onRestart(idx int) bool {
	partner := s.nodes[1-idx]
	if partner.Down() {
		// No live partner: resume cold immediately.
		s.ColdResumes++
		return false
	}
	me := s.nodes[idx]
	// Reintegration traffic travels in the event-triggered segment while
	// the node's static slots stay silent (FlexRay-style, §4).
	me.Endpoint().SetDynamicWhileSilent(true)
	me.Endpoint().SendDynamic(s.cfg.Priority, []uint32{stateReqMagic, uint32(idx)})
	// Fallback: resume cold if the reply never arrives.
	s.pendingTimeout[idx] = me.Sim().Schedule(
		me.Sim().Now()+s.cfg.Timeout, des.PrioKernel, func() {
			s.pendingTimeout[idx] = des.Event{}
			s.ColdResumes++
			me.Endpoint().SetDynamicWhileSilent(false)
			me.CompleteRestart()
		})
	return true
}

// onFrame handles protocol frames seen by node idx.
func (s *StateSync) onFrame(idx int, f ttnet.Frame) {
	if f.Slot != -1 || len(f.Payload) < 2 {
		return // only dynamic-segment frames carry the protocol
	}
	me := s.nodes[idx]
	switch f.Payload[0] {
	case stateReqMagic:
		// Partner asks for state; only the non-requesting, live node
		// replies.
		requester := int(f.Payload[1])
		if requester == idx || me.Down() {
			return
		}
		payload := make([]uint32, 0, 2+s.cfg.DataWords)
		payload = append(payload, stateRspMagic, uint32(requester))
		for w := uint32(0); w < s.cfg.DataWords; w++ {
			payload = append(payload, me.Kernel().Mem().Peek(s.cfg.DataStart+w*4))
		}
		me.Endpoint().SendDynamic(s.cfg.Priority, payload)
	case stateRspMagic:
		// A reply addressed to this node while it is holding its
		// restart: install the state and reintegrate.
		if int(f.Payload[1]) != idx || !me.holdingRestart {
			return
		}
		if uint32(len(f.Payload)) < 2+s.cfg.DataWords {
			return // malformed; wait for timeout
		}
		for w := uint32(0); w < s.cfg.DataWords; w++ {
			me.Kernel().Mem().Poke(s.cfg.DataStart+w*4, f.Payload[2+w])
		}
		me.Sim().Cancel(s.pendingTimeout[idx])
		s.pendingTimeout[idx] = des.Event{}
		s.Recoveries++
		me.Endpoint().SetDynamicWhileSilent(false)
		me.CompleteRestart()
	}
}
