package node

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/des"
)

// TestBehavioralSnapshotDifferential proves restore+run ≡ straight run
// for a behavioural node: capture mid-trajectory (with fault arrivals
// and possibly a repair in flight), run on, rewind node + simulator, and
// require the identical transition suffix. The repair event handle is
// restored wholesale with the simulator's event pool, so an in-flight
// repair resumes on the restored timeline.
func TestBehavioralSnapshotDifferential(t *testing.T) {
	sim := des.New()
	rng := des.NewRand(17)
	// High transient rate with full coverage and no permanent faults, so
	// the node keeps cycling Working <-> down states for the whole run
	// instead of absorbing into PermanentDown/Uncovered — the captured
	// window and the replayed suffix both contain many transitions.
	r := Rates{LambdaP: 0, LambdaT: 7200, CD: 1, PT: 0.4, POM: 0.3, PFS: 0.3,
		MuR: 36000, MuOM: 36000}
	n, err := NewBehavioral(sim, rng, "n0", NLFTBehavior, r)
	if err != nil {
		t.Fatal(err)
	}
	var log []string
	n.OnChange = func(n *BehavioralNode, from, to State) {
		log = append(log, fmt.Sprintf("%v@%d->%v", from, sim.Now(), to))
	}

	hour := des.Time(3600) * des.Second
	if err := sim.RunUntil(hour / 2); err != nil {
		t.Fatal(err)
	}
	var simSt des.SimState
	var nodeSt BehavioralState
	sim.Snapshot(&simSt)
	n.Snapshot(&nodeSt)
	mark := len(log)

	if err := sim.RunUntil(hour); err != nil {
		t.Fatal(err)
	}
	wantSuffix := append([]string(nil), log[mark:]...)
	wantState, wantMasked := n.State(), n.Masked()
	if len(wantSuffix) == 0 {
		t.Fatal("trajectory suffix empty; raise the rates so the test exercises transitions")
	}

	sim.Restore(&simSt)
	n.Restore(&nodeSt)
	log = log[:mark]
	if err := sim.RunUntil(hour); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log[mark:], wantSuffix) {
		t.Fatalf("replay transitions diverged:\n got %v\nwant %v", log[mark:], wantSuffix)
	}
	if n.State() != wantState || n.Masked() != wantMasked {
		t.Errorf("replay ended %v/%d masked, want %v/%d",
			n.State(), n.Masked(), wantState, wantMasked)
	}
}

// TestBehavioralSnapshotZeroAlloc gates the warm node capture/restore.
func TestBehavioralSnapshotZeroAlloc(t *testing.T) {
	sim := des.New()
	rng := des.NewRand(3)
	r := Rates{LambdaP: 10, LambdaT: 1000, CD: 0.98, PT: 0.9, POM: 0.05, PFS: 0.05,
		MuR: 360, MuOM: 3600}
	n, err := NewBehavioral(sim, rng, "n0", NLFTBehavior, r)
	if err != nil {
		t.Fatal(err)
	}
	var st BehavioralState
	n.Snapshot(&st)
	n.Restore(&st)
	if got := testing.AllocsPerRun(32, func() {
		n.Snapshot(&st)
		n.Restore(&st)
	}); got != 0 {
		t.Errorf("warm snapshot/restore allocates %v per run, want 0", got)
	}
}
