package node

import (
	"repro/internal/des"
)

// BehavioralState is preallocated scratch for
// BehavioralNode.Snapshot/Restore. The node's recurring fault arrivals
// and any in-flight repair live in the simulator's event queue; a caller
// rewinding the node restores the simulator from the same checkpoint, so
// the bound callbacks (identity-preserved on the same node) fire on the
// restored timeline exactly as they would have.
type BehavioralState struct {
	state  State
	masked uint64
	// repair is the pooled handle of the in-flight repair event. It is a
	// checkpoint copy of the node's own handle, restored wholesale with
	// the simulator's event pool, whose generation rewind revalidates
	// exactly this handle.
	repair des.Event //nlft:allow eventhandle checkpoint copy of the node's own handle: restored wholesale with the event pool, whose generation rewind revalidates exactly this handle
	rng    [4]uint64
}

// Snapshot captures the node's mutable state — failure-semantics state,
// masked-transient counter, repair handle, and the private RNG stream —
// into st.
//
//nlft:noalloc
func (n *BehavioralNode) Snapshot(into *BehavioralState) {
	into.state = n.state
	into.masked = n.masked
	into.repair = n.repair
	into.rng = n.rng.State()
}

// Restore rewinds the node to a state captured from the same node with
// Snapshot. The simulator must be rewound to the same checkpoint by the
// caller.
//
//nlft:noalloc
func (n *BehavioralNode) Restore(from *BehavioralState) {
	n.state = from.state
	n.masked = from.masked
	n.repair = from.repair
	n.rng.SetState(from.rng)
}
