package node

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/ttnet"
)

// HostedConfig wires a full kernel-bearing node to the time-triggered
// network.
type HostedConfig struct {
	// Name identifies the node (and its bus endpoint).
	Name string
	// BuildKernel constructs the node's kernel on the shared simulator.
	// It is called at start and again after every restart, modelling the
	// node reset plus diagnostic of §3.2.1.
	BuildKernel func(sim *des.Simulator, env kernel.Env) (*kernel.Kernel, error)
	// Slot is the node's static TDMA slot.
	Slot int
	// TxPorts lists the kernel output ports transmitted in the node's
	// slot, in payload order.
	TxPorts []uint32
	// RxMap routes received frames into kernel input ports: for a frame
	// from sender S, payload word i is delivered to port RxMap[S][i].
	// Use RxIgnore to skip a payload word; words beyond the slice are
	// ignored.
	RxMap map[ttnet.NodeID][]uint32
	// RestartDelay is the time from fail-silence to reintegration
	// (the paper's 3 s: 1.6 s restart + 1.4 s diagnostic).
	RestartDelay des.Time
	// RxMaxAge, when positive, expires received values: an input port
	// whose last valid frame is older than this reads as zero. This is
	// the end-to-end freshness check of §2.6 — without it a node would
	// keep acting on stale data from a silent sender. Zero keeps values
	// forever (the paper's "use a previous value" option for omissions).
	RxMaxAge des.Time
	// MaxRestarts bounds automatic restarts (0 = unlimited). After the
	// limit the node stays down (suspected permanent fault).
	MaxRestarts int
}

// HostedNode is a kernel plus network interface on the shared simulator.
type HostedNode struct {
	cfg HostedConfig
	sim *des.Simulator
	k   *kernel.Kernel
	ep  *ttnet.Endpoint
	// rx holds the last valid value per input port; rxAt its arrival
	// time (for the freshness check).
	rx   map[uint32]uint32
	rxAt map[uint32]des.Time
	// tx holds the latest committed value per output port.
	tx map[uint32]uint32
	// down reports the node is currently silent.
	down     bool
	restarts int
	// holdingRestart is set while a restarted kernel waits for external
	// completion (e.g. partner-state recovery) before resuming.
	holdingRestart bool
	// Restarts counts completed restarts; Failures counts fail-silent
	// events.
	Failures uint64
	// OnStateChange observes up/down transitions.
	OnStateChange func(name string, down bool, at des.Time)
	// OnRestart, when set, runs after the kernel is rebuilt but before
	// the node resumes transmission. Returning true holds the node
	// silent until CompleteRestart is called — the hook used by the
	// duplex state-recovery protocol (the paper's §4 future work).
	OnRestart func(h *HostedNode) (hold bool)
	// ExtraOnFrame, when set, observes every bus frame in addition to
	// the RxMap routing (protocol extensions live here).
	ExtraOnFrame func(f ttnet.Frame)
	// restartFn and failSilentFn are bound once so restarts and kernel
	// rebuilds do not allocate fresh callbacks; txBuf is the reused slot
	// payload (the bus copies it per delivered frame).
	restartFn    func()
	failSilentFn func(at des.Time, reason string)
	txBuf        []uint32
}

// NewHosted attaches a hosted node to the bus and starts its kernel.
func NewHosted(sim *des.Simulator, bus *ttnet.Bus, cfg HostedConfig) (*HostedNode, error) {
	if cfg.Name == "" || cfg.BuildKernel == nil {
		return nil, fmt.Errorf("node: hosted config incomplete")
	}
	if cfg.RestartDelay <= 0 {
		cfg.RestartDelay = 3 * des.Second
	}
	h := &HostedNode{
		cfg:  cfg,
		sim:  sim,
		rx:   make(map[uint32]uint32),
		rxAt: make(map[uint32]des.Time),
		tx:   make(map[uint32]uint32),
	}
	h.restartFn = h.restart
	h.failSilentFn = func(at des.Time, reason string) { h.failSilent() }
	h.txBuf = make([]uint32, len(cfg.TxPorts))
	ep, err := bus.Attach(ttnet.NodeID(cfg.Name), h.provide, h.onFrame, nil)
	if err != nil {
		return nil, err
	}
	h.ep = ep
	if err := bus.AssignSlot(cfg.Slot, ttnet.NodeID(cfg.Name)); err != nil {
		return nil, err
	}
	if err := h.buildAndStart(); err != nil {
		return nil, err
	}
	return h, nil
}

// Kernel exposes the current kernel instance (changes after restarts).
func (h *HostedNode) Kernel() *kernel.Kernel { return h.k }

// Down reports whether the node is currently silent.
func (h *HostedNode) Down() bool { return h.down }

// buildAndStart constructs a fresh kernel via the factory.
func (h *HostedNode) buildAndStart() error {
	k, err := h.cfg.BuildKernel(h.sim, h)
	if err != nil {
		return fmt.Errorf("node %s: %w", h.cfg.Name, err)
	}
	k.OnFailSilent = h.failSilentFn
	h.k = k
	return k.Start()
}

// failSilent silences the endpoint and schedules the restart.
func (h *HostedNode) failSilent() {
	if h.down {
		return
	}
	h.down = true
	h.Failures++
	h.ep.Silence()
	if h.OnStateChange != nil {
		h.OnStateChange(h.cfg.Name, true, h.sim.Now())
	}
	if h.cfg.MaxRestarts > 0 && h.restarts >= h.cfg.MaxRestarts {
		return // stays down: permanent suspicion confirmed
	}
	h.restarts++
	h.sim.Schedule(h.sim.Now()+h.cfg.RestartDelay, des.PrioKernel, h.restartFn)
}

// restart rebuilds the kernel and resumes transmission (reintegration).
// When an OnRestart hook holds the restart (state recovery in flight),
// the kernel is built but not started: its memory can be prepared with
// recovered state before any task runs.
func (h *HostedNode) restart() {
	k, err := h.cfg.BuildKernel(h.sim, h)
	if err != nil {
		// A broken factory cannot be recovered at runtime; stay down.
		return
	}
	k.OnFailSilent = h.failSilentFn
	h.k = k
	if h.OnRestart != nil && h.OnRestart(h) {
		h.holdingRestart = true
		return // CompleteRestart finishes the reintegration
	}
	h.completeRestart()
}

// CompleteRestart resumes a node whose OnRestart hook held it silent.
// Calling it when no restart is held is a no-op.
func (h *HostedNode) CompleteRestart() {
	if !h.holdingRestart {
		return
	}
	h.holdingRestart = false
	h.completeRestart()
}

func (h *HostedNode) completeRestart() {
	if err := h.k.Start(); err != nil {
		return // stays down; factory produced an unstartable kernel
	}
	h.down = false
	h.ep.Resume()
	if h.OnStateChange != nil {
		h.OnStateChange(h.cfg.Name, false, h.sim.Now())
	}
}

// Endpoint exposes the node's bus attachment (protocol extensions).
func (h *HostedNode) Endpoint() *ttnet.Endpoint { return h.ep }

// Sim exposes the shared simulator.
func (h *HostedNode) Sim() *des.Simulator { return h.sim }

// Name reports the node's name.
func (h *HostedNode) Name() string { return h.cfg.Name }

// provide implements the endpoint's slot callback: transmit the latest
// committed outputs.
//
//nlft:noalloc
func (h *HostedNode) provide(cycle uint64, slot int) []uint32 {
	if h.down {
		return nil
	}
	for i, p := range h.cfg.TxPorts {
		h.txBuf[i] = h.tx[p]
	}
	return h.txBuf
}

// onFrame routes valid frames into the receive buffers.
//
//nlft:noalloc
func (h *HostedNode) onFrame(f ttnet.Frame) {
	if !f.Valid {
		return
	}
	if h.ExtraOnFrame != nil {
		h.ExtraOnFrame(f)
	}
	ports, ok := h.cfg.RxMap[f.Sender]
	if !ok {
		return
	}
	for i, p := range ports {
		if p != RxIgnore && i < len(f.Payload) {
			h.rx[p] = f.Payload[i]
			h.rxAt[p] = h.sim.Now()
		}
	}
}

// RxIgnore marks a payload word as not routed to any input port.
const RxIgnore = ^uint32(0)

// ReadInput implements kernel.Env from the receive buffers, applying
// the freshness check when configured.
//
//nlft:noalloc
func (h *HostedNode) ReadInput(port uint32) uint32 {
	if h.cfg.RxMaxAge > 0 {
		at, ok := h.rxAt[port]
		if ok && h.sim.Now()-at > h.cfg.RxMaxAge {
			return 0 // stale: fail safe instead of acting on old data
		}
	}
	return h.rx[port]
}

// WriteOutput implements kernel.Env into the transmit buffers.
//
//nlft:noalloc
func (h *HostedNode) WriteOutput(port, value uint32) { h.tx[port] = value }

// SetLocalInput lets application code (sensors attached directly to the
// node) drive an input port. Local sensors count as fresh.
//
//nlft:noalloc
func (h *HostedNode) SetLocalInput(port, value uint32) {
	h.rx[port] = value
	h.rxAt[port] = h.sim.Now()
}

// LocalOutput reads a committed output port (actuators attached directly
// to the node).
//
//nlft:noalloc
func (h *HostedNode) LocalOutput(port uint32) uint32 { return h.tx[port] }

var _ kernel.Env = (*HostedNode)(nil)
