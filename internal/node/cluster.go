package node

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/stats"
)

// ClusterMode selects the BBW functionality requirement (§3.2).
type ClusterMode int

// Functionality modes.
const (
	// FullMode requires all four wheel nodes and one central-unit node.
	FullMode ClusterMode = iota + 1
	// DegradedMode requires three of four wheel nodes and one central-
	// unit node, with failed wheel nodes allowed to reintegrate.
	DegradedMode
)

// String names the mode.
func (m ClusterMode) String() string {
	switch m {
	case FullMode:
		return "full"
	case DegradedMode:
		return "degraded"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// BBWCluster assembles the paper's architecture from behavioural nodes:
// a duplex central unit and four simplex wheel nodes, and latches the
// first violation of the functionality requirement as a system failure.
type BBWCluster struct {
	sim    *des.Simulator
	mode   ClusterMode
	cu     [2]*BehavioralNode
	wheels [4]*BehavioralNode
	// failedAt is the latched system-failure instant (0 = none; the
	// validity flag distinguishes an instant-zero failure).
	failedAt   des.Time
	failed     bool
	failReason string
}

// NewBBWCluster builds the cluster with independent RNG streams split
// from rng.
func NewBBWCluster(sim *des.Simulator, rng *des.Rand, behavior Behavior, mode ClusterMode, r Rates) (*BBWCluster, error) {
	if mode != FullMode && mode != DegradedMode {
		return nil, fmt.Errorf("node: unknown mode %v", mode)
	}
	c := &BBWCluster{sim: sim, mode: mode}
	watch := func(n *BehavioralNode, from, to State) { c.onChange() }
	for i := range c.cu {
		n, err := NewBehavioral(sim, rng.Split(), fmt.Sprintf("CU%d", i+1), behavior, r)
		if err != nil {
			return nil, err
		}
		n.OnChange = watch
		c.cu[i] = n
	}
	for i := range c.wheels {
		n, err := NewBehavioral(sim, rng.Split(), fmt.Sprintf("WN%d", i+1), behavior, r)
		if err != nil {
			return nil, err
		}
		n.OnChange = watch
		c.wheels[i] = n
	}
	return c, nil
}

// Failed reports the latched system failure.
func (c *BBWCluster) Failed() (bool, des.Time, string) {
	return c.failed, c.failedAt, c.failReason
}

// onChange re-evaluates the failure predicate after any node transition.
func (c *BBWCluster) onChange() {
	if c.failed {
		return
	}
	if reason := c.violation(); reason != "" {
		c.failed = true
		c.failedAt = c.sim.Now()
		c.failReason = reason
	}
}

// violation checks the paper's failure conditions (§3.2.1, §3.2.3):
// any non-covered error is a system failure; the central unit fails when
// both nodes are down; the wheel subsystem fails when the mode's minimum
// is not met.
func (c *BBWCluster) violation() string {
	downCU := 0
	for _, n := range c.cu {
		switch n.State() {
		case Uncovered:
			return fmt.Sprintf("non-covered error in %s", n.Name)
		case Working:
		default:
			downCU++
		}
	}
	if downCU == 2 {
		return "both central-unit nodes down"
	}
	downWheels := 0
	for _, n := range c.wheels {
		switch n.State() {
		case Uncovered:
			return fmt.Sprintf("non-covered error in %s", n.Name)
		case Working:
		default:
			downWheels++
		}
	}
	switch c.mode {
	case FullMode:
		if downWheels > 0 {
			return "wheel node down (full functionality lost)"
		}
	case DegradedMode:
		if downWheels >= 2 {
			return "two wheel nodes down"
		}
	}
	return ""
}

// MonteCarloResult summarizes a reliability estimation run.
type MonteCarloResult struct {
	Trials  int
	Horizon float64 // hours
	// R estimates the reliability at the horizon.
	R stats.Proportion
	// FailureHours holds the failure instants of failed trials (hours).
	FailureHours []float64
	// MaskedTotal sums locally masked transients across trials (NLFT).
	MaskedTotal uint64
}

// MeanTimeToFailure estimates MTTF in hours from the observed failures,
// treating censored trials (survived the horizon) via the standard
// exponential-tail assumption is NOT applied; instead it returns the
// simple estimator total-observed-time / failures, which is unbiased for
// exponential system lifetimes.
func (r *MonteCarloResult) MeanTimeToFailure() float64 {
	failures := len(r.FailureHours)
	if failures == 0 {
		return 0
	}
	total := 0.0
	for _, h := range r.FailureHours {
		total += h
	}
	total += float64(r.Trials-failures) * r.Horizon
	return total / float64(failures)
}

// MonteCarloBBW estimates the BBW system reliability at horizonHours by
// simulating independent cluster lifetimes. It cross-validates the
// analytic Figure 12 models.
func MonteCarloBBW(trials int, horizonHours float64, behavior Behavior, mode ClusterMode, r Rates, seed uint64) (*MonteCarloResult, error) {
	if trials < 1 {
		return nil, fmt.Errorf("node: %d trials", trials)
	}
	if horizonHours <= 0 {
		return nil, fmt.Errorf("node: horizon %v", horizonHours)
	}
	root := des.NewRand(seed)
	horizon := des.Time(horizonHours * float64(des.Hour))
	res := &MonteCarloResult{Trials: trials, Horizon: horizonHours}
	survivors := 0
	for i := 0; i < trials; i++ {
		sim := des.New()
		cluster, err := NewBBWCluster(sim, root.Split(), behavior, mode, r)
		if err != nil {
			return nil, err
		}
		if err := sim.RunUntil(horizon); err != nil {
			return nil, err
		}
		failed, at, _ := cluster.Failed()
		if failed {
			res.FailureHours = append(res.FailureHours, at.Hours())
		} else {
			survivors++
		}
		for _, n := range cluster.cu {
			res.MaskedTotal += n.Masked()
		}
		for _, n := range cluster.wheels {
			res.MaskedTotal += n.Masked()
		}
	}
	res.R = stats.NewProportion(survivors, trials)
	return res, nil
}
