package node

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/ttnet"
)

func paperRates() Rates {
	p := core.PaperParams()
	return Rates{
		LambdaP: p.LambdaP, LambdaT: p.LambdaT, CD: p.CD,
		PT: p.PT, POM: p.POM, PFS: p.PFS, MuR: p.MuR, MuOM: p.MuOM,
	}
}

func TestRatesValidate(t *testing.T) {
	if err := paperRates().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := paperRates()
	bad.PT = 0.5
	if err := bad.Validate(); err == nil {
		t.Error("broken probability budget accepted")
	}
	bad = paperRates()
	bad.MuR = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero repair rate accepted")
	}
}

func TestBehavioralFSTransient(t *testing.T) {
	sim := des.New()
	r := paperRates()
	r.LambdaP = 0
	r.LambdaT = 1000 // ~one fault per 3.6 s of simulated time
	r.CD = 1
	n, err := NewBehavioral(sim, des.NewRand(1), "n", FSBehavior, r)
	if err != nil {
		t.Fatal(err)
	}
	var transitions []State
	n.OnChange = func(_ *BehavioralNode, from, to State) { transitions = append(transitions, to) }
	if err := sim.RunUntil(des.Hour / 100); err != nil {
		t.Fatal(err)
	}
	if len(transitions) < 2 {
		t.Fatalf("transitions = %v", transitions)
	}
	// FS nodes only alternate RestartDown <-> Working.
	for _, s := range transitions {
		if s != RestartDown && s != Working {
			t.Errorf("unexpected state %v for FS node", s)
		}
	}
	if n.Masked() != 0 {
		t.Error("FS node masked transients")
	}
}

func TestBehavioralNLFTMasksMostTransients(t *testing.T) {
	sim := des.New()
	r := paperRates()
	r.LambdaP = 0
	r.LambdaT = 1000
	r.CD = 1 // avoid the absorbing Uncovered state cutting the sample
	n, err := NewBehavioral(sim, des.NewRand(2), "n", NLFTBehavior, r)
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	n.OnChange = func(_ *BehavioralNode, from, to State) {
		if to == RestartDown || to == OmissionDown {
			downs++
		}
	}
	if err := sim.RunUntil(des.Hour); err != nil {
		t.Fatal(err)
	}
	masked := int(n.Masked())
	total := masked + downs
	if total < 300 {
		t.Fatalf("too few activated transients: %d", total)
	}
	frac := float64(masked) / float64(total)
	// With C_D = 1, the masked fraction estimates P_T = 0.9.
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("masked fraction = %v, want ≈0.9", frac)
	}
}

func TestBehavioralPermanentIsAbsorbing(t *testing.T) {
	sim := des.New()
	r := paperRates()
	r.LambdaT = 0
	r.LambdaP = 10000
	r.CD = 1
	n, err := NewBehavioral(sim, des.NewRand(3), "n", FSBehavior, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Hour); err != nil {
		t.Fatal(err)
	}
	if n.State() != PermanentDown {
		t.Fatalf("state = %v", n.State())
	}
}

func TestBehavioralUncovered(t *testing.T) {
	sim := des.New()
	r := paperRates()
	r.LambdaT = 10000
	r.LambdaP = 0
	r.CD = 0 // nothing detected
	n, err := NewBehavioral(sim, des.NewRand(4), "n", NLFTBehavior, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(des.Hour); err != nil {
		t.Fatal(err)
	}
	if n.State() != Uncovered {
		t.Fatalf("state = %v", n.State())
	}
}

func TestClusterModeValidation(t *testing.T) {
	sim := des.New()
	if _, err := NewBBWCluster(sim, des.NewRand(1), NLFTBehavior, ClusterMode(9), paperRates()); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := NewBehavioral(sim, des.NewRand(1), "x", Behavior(9), paperRates()); err == nil {
		t.Error("bad behavior accepted")
	}
}

// TestMonteCarloMatchesMarkovDegraded is the model-validation test: the
// independent behavioural simulation must agree with the analytic CTMC
// composition (Figure 12) for both node types in degraded mode.
func TestMonteCarloMatchesMarkovDegraded(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation skipped in -short")
	}
	p := core.PaperParams()
	const trials = 3000
	for _, tc := range []struct {
		behavior Behavior
		nodeType core.NodeType
	}{
		{FSBehavior, core.FS},
		{NLFTBehavior, core.NLFT},
	} {
		want, err := core.SystemReliability(p, tc.nodeType, core.Degraded, core.HoursPerYear)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MonteCarloBBW(trials, core.HoursPerYear, tc.behavior, DegradedMode, paperRates(), 99)
		if err != nil {
			t.Fatal(err)
		}
		// Allow the Wilson interval plus modelling slack (the behavioural
		// simulation includes second-order effects the CTMC truncates).
		slack := 0.03
		if want < got.R.Lo-slack || want > got.R.Hi+slack {
			t.Errorf("%v: analytic %v outside MC [%v, %v] (±%v)",
				tc.behavior, want, got.R.Lo, got.R.Hi, slack)
		}
		if tc.behavior == NLFTBehavior && got.MaskedTotal == 0 {
			t.Error("NLFT Monte-Carlo masked nothing")
		}
	}
}

// TestMonteCarloMatchesMarkovFull validates the full-functionality mode.
func TestMonteCarloMatchesMarkovFull(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo validation skipped in -short")
	}
	p := core.PaperParams()
	// Shorter horizon: full mode decays fast at one year.
	const horizon = 1000.0
	const trials = 3000
	for _, tc := range []struct {
		behavior Behavior
		nodeType core.NodeType
	}{
		{FSBehavior, core.FS},
		{NLFTBehavior, core.NLFT},
	} {
		want, err := core.SystemReliability(p, tc.nodeType, core.Full, horizon)
		if err != nil {
			t.Fatal(err)
		}
		got, err := MonteCarloBBW(trials, horizon, tc.behavior, FullMode, paperRates(), 7)
		if err != nil {
			t.Fatal(err)
		}
		slack := 0.03
		if want < got.R.Lo-slack || want > got.R.Hi+slack {
			t.Errorf("%v full: analytic %v outside MC [%v, %v]",
				tc.behavior, want, got.R.Lo, got.R.Hi)
		}
	}
}

func TestMonteCarloValidation(t *testing.T) {
	if _, err := MonteCarloBBW(0, 1, FSBehavior, FullMode, paperRates(), 1); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := MonteCarloBBW(1, -1, FSBehavior, FullMode, paperRates(), 1); err == nil {
		t.Error("negative horizon accepted")
	}
}

func TestMonteCarloMTTFEstimator(t *testing.T) {
	res := &MonteCarloResult{Trials: 4, Horizon: 100, FailureHours: []float64{50, 150}}
	// total observed = 50 + 150 + 2*100 = 400; failures = 2 → 200.
	if got := res.MeanTimeToFailure(); math.Abs(got-200) > 1e-12 {
		t.Errorf("MTTF = %v", got)
	}
	empty := &MonteCarloResult{Trials: 4, Horizon: 100}
	if empty.MeanTimeToFailure() != 0 {
		t.Error("no-failure MTTF should be 0 (undefined)")
	}
}

// --- Hosted node tests ---

const senderSrc = `
	.org 0x0000
start:
	li r1, 0xFFFF0000
	ld r2, [r1+0]       ; local sensor
	movi r3, 2
	mul r2, r2, r3
	st r2, [r1+4]       ; tx port 1
	sys 2
`

const receiverSrc = `
	.org 0x0000
start:
	li r1, 0xFFFF0000
	ld r2, [r1+0]       ; rx port 0 (from sender via bus)
	addi r2, r2, 1
	st r2, [r1+4]       ; local actuator on port 1
	sys 2
`

func hostedFactory(src string) func(sim *des.Simulator, env kernel.Env) (*kernel.Kernel, error) {
	prog := cpu.MustAssemble(src)
	return func(sim *des.Simulator, env kernel.Env) (*kernel.Kernel, error) {
		k := kernel.New(sim, env, kernel.Config{})
		spec := kernel.TaskSpec{
			Name: "app", Program: prog, Entry: "start",
			Period: des.Millisecond, Deadline: des.Millisecond,
			Priority: 5, Criticality: kernel.Critical,
			Budget:      des.Millisecond / 4,
			InputPorts:  []uint32{0},
			OutputPorts: []uint32{1},
			StackStart:  0xC000, StackWords: 64,
		}
		if err := k.AddTask(spec); err != nil {
			return nil, err
		}
		return k, nil
	}
}

// buildPair wires sender → bus → receiver.
func buildPair(t *testing.T) (*des.Simulator, *ttnet.Bus, *HostedNode, *HostedNode) {
	t.Helper()
	sim := des.New()
	bus, err := ttnet.NewBus(sim, ttnet.Config{StaticSlots: 2, SlotLen: des.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sender, err := NewHosted(sim, bus, HostedConfig{
		Name:        "sender",
		BuildKernel: hostedFactory(senderSrc),
		Slot:        0,
		TxPorts:     []uint32{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := NewHosted(sim, bus, HostedConfig{
		Name:        "receiver",
		BuildKernel: hostedFactory(receiverSrc),
		Slot:        1,
		TxPorts:     nil,
		RxMap:       map[ttnet.NodeID][]uint32{"sender": {0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	return sim, bus, sender, receiver
}

func TestHostedDataFlow(t *testing.T) {
	sim, _, sender, receiver := buildPair(t)
	sender.SetLocalInput(0, 21)
	if err := sim.RunUntil(20 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	// sender computes 42, transmits; receiver adds 1 → 43.
	if got := receiver.LocalOutput(1); got != 43 {
		t.Errorf("actuator = %d, want 43", got)
	}
	if sender.Down() || receiver.Down() {
		t.Error("nodes down without faults")
	}
}

func TestHostedConfigValidation(t *testing.T) {
	sim := des.New()
	bus, err := ttnet.NewBus(sim, ttnet.Config{StaticSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHosted(sim, bus, HostedConfig{Name: ""}); err == nil {
		t.Error("empty config accepted")
	}
}

func TestHostedFailSilentAndRestart(t *testing.T) {
	sim, _, sender, receiver := buildPair(t)
	sender.SetLocalInput(0, 5)
	var downs, ups []des.Time
	sender.OnStateChange = func(name string, down bool, at des.Time) {
		if down {
			downs = append(downs, at)
		} else {
			ups = append(ups, at)
		}
	}
	// Kill the sender's kernel at 10 ms; default restart delay is 3 s.
	sim.Schedule(10*des.Millisecond, des.PrioInject, func() {
		sender.Kernel().ForceFailSilent("injected kernel fault")
	})
	if err := sim.RunUntil(5 * des.Second); err != nil {
		t.Fatal(err)
	}
	if len(downs) != 1 || len(ups) != 1 {
		t.Fatalf("downs=%v ups=%v", downs, ups)
	}
	if got := ups[0] - downs[0]; got != 3*des.Second {
		t.Errorf("restart delay = %v, want 3 s", got)
	}
	if sender.Down() {
		t.Error("sender still down after restart")
	}
	if sender.Failures != 1 {
		t.Errorf("failures = %d", sender.Failures)
	}
	// Data flows again after reintegration.
	sender.SetLocalInput(0, 7)
	if err := sim.RunUntil(5*des.Second + 20*des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := receiver.LocalOutput(1); got != 15 {
		t.Errorf("actuator after restart = %d, want 15", got)
	}
}

func TestHostedMaxRestarts(t *testing.T) {
	sim := des.New()
	bus, err := ttnet.NewBus(sim, ttnet.Config{StaticSlots: 1, SlotLen: des.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewHosted(sim, bus, HostedConfig{
		Name:         "n",
		BuildKernel:  hostedFactory(senderSrc),
		Slot:         0,
		TxPorts:      []uint32{1},
		RestartDelay: 100 * des.Millisecond,
		MaxRestarts:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	kill := func() {
		if !n.Down() {
			n.Kernel().ForceFailSilent("injected")
		}
	}
	sim.Schedule(10*des.Millisecond, des.PrioInject, kill)
	sim.Schedule(200*des.Millisecond, des.PrioInject, kill)
	if err := sim.RunUntil(des.Second); err != nil {
		t.Fatal(err)
	}
	if !n.Down() {
		t.Error("node restarted past MaxRestarts")
	}
	if n.Failures != 2 {
		t.Errorf("failures = %d", n.Failures)
	}
}

// TestRxFreshness: with RxMaxAge set, values from a silenced sender
// expire (end-to-end freshness, §2.6); without it, the last value
// persists (the paper's "use a previous value" option).
func TestRxFreshness(t *testing.T) {
	build := func(maxAge des.Time) (*des.Simulator, *HostedNode, *HostedNode) {
		sim := des.New()
		bus, err := ttnet.NewBus(sim, ttnet.Config{StaticSlots: 2, SlotLen: des.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		sender, err := NewHosted(sim, bus, HostedConfig{
			Name: "sender", BuildKernel: hostedFactory(senderSrc),
			Slot: 0, TxPorts: []uint32{1},
		})
		if err != nil {
			t.Fatal(err)
		}
		receiver, err := NewHosted(sim, bus, HostedConfig{
			Name: "receiver", BuildKernel: hostedFactory(receiverSrc),
			Slot: 1, RxMap: map[ttnet.NodeID][]uint32{"sender": {0}},
			RxMaxAge: maxAge,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := bus.Start(); err != nil {
			t.Fatal(err)
		}
		return sim, sender, receiver
	}

	for _, tc := range []struct {
		name   string
		maxAge des.Time
		want   uint32 // receiver actuator long after the sender dies
	}{
		{"stale-expires", 10 * des.Millisecond, 1}, // 0 (stale) + 1
		{"previous-value-kept", 0, 43},             // 21*2 (held) + 1
	} {
		t.Run(tc.name, func(t *testing.T) {
			sim, sender, receiver := build(tc.maxAge)
			sender.SetLocalInput(0, 21)
			// Let data flow, then silence the sender permanently.
			sim.Schedule(20*des.Millisecond, des.PrioInject, func() {
				sender.Kernel().ForceFailSilent("injected")
			})
			// MaxRestarts unlimited: kill again on every reintegration.
			sim.Schedule(20*des.Millisecond, des.PrioInject, func() {
				sender.OnStateChange = func(name string, down bool, at des.Time) {
					if !down {
						sender.Kernel().ForceFailSilent("killed again")
					}
				}
			})
			if err := sim.RunUntil(8 * des.Second); err != nil {
				t.Fatal(err)
			}
			if got := receiver.LocalOutput(1); got != tc.want {
				t.Errorf("actuator = %d, want %d", got, tc.want)
			}
		})
	}
}
