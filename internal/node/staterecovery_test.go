package node

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/ttnet"
)

// statefulSrc increments a persistent counter each period and reports it.
const statefulSrc = `
	.org 0x0000
start:
	li r1, 0x8000
	ld r2, [r1]
	addi r2, r2, 1
	st r2, [r1]
	li r3, 0xFFFF0000
	st r2, [r3+4]
	sys 2
`

func statefulFactory() func(sim *des.Simulator, env kernel.Env) (*kernel.Kernel, error) {
	prog := cpu.MustAssemble(statefulSrc)
	return func(sim *des.Simulator, env kernel.Env) (*kernel.Kernel, error) {
		k := kernel.New(sim, env, kernel.Config{})
		spec := kernel.TaskSpec{
			Name: "counter", Program: prog, Entry: "start",
			Period: des.Millisecond, Deadline: des.Millisecond,
			Priority: 5, Criticality: kernel.Critical,
			Budget:      des.Millisecond / 4,
			OutputPorts: []uint32{1},
			DataStart:   0x8000, DataWords: 4,
			StackStart: 0xC000, StackWords: 64,
		}
		if err := k.AddTask(spec); err != nil {
			return nil, err
		}
		return k, nil
	}
}

// buildDuplex wires two stateful nodes on a bus with a dynamic segment.
func buildDuplex(t *testing.T, restartDelay des.Time) (*des.Simulator, *ttnet.Bus, *HostedNode, *HostedNode, *StateSync) {
	t.Helper()
	sim := des.New()
	bus, err := ttnet.NewBus(sim, ttnet.Config{
		StaticSlots: 2,
		SlotLen:     des.Millisecond,
		DynamicLen:  2 * des.Millisecond,
		DynMiniSlot: 200 * des.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, slot int) *HostedNode {
		h, err := NewHosted(sim, bus, HostedConfig{
			Name:         name,
			BuildKernel:  statefulFactory(),
			Slot:         slot,
			TxPorts:      []uint32{1},
			RestartDelay: restartDelay,
		})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := mk("cuA", 0), mk("cuB", 1)
	sync, err := NewStateSync(a, b, StateSyncConfig{
		DataStart: 0x8000, DataWords: 4, Priority: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	return sim, bus, a, b, sync
}

func TestStateSyncValidation(t *testing.T) {
	sim := des.New()
	bus, err := ttnet.NewBus(sim, ttnet.Config{StaticSlots: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHosted(sim, bus, HostedConfig{
		Name: "x", BuildKernel: statefulFactory(), Slot: 0, TxPorts: []uint32{1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewStateSync(h, h, StateSyncConfig{DataWords: 1}); err == nil {
		t.Error("same node twice accepted")
	}
	if _, err := NewStateSync(h, nil, StateSyncConfig{DataWords: 1}); err == nil {
		t.Error("nil node accepted")
	}
}

// TestStateRecoveredFromPartner is the paper's §4 scenario: the
// restarted duplex node reintegrates with the partner's state instead
// of cold state, so the replicated counters stay consistent.
func TestStateRecoveredFromPartner(t *testing.T) {
	sim, _, a, b, sync := buildDuplex(t, 200*des.Millisecond)
	// Kill A after ~50 counter increments.
	sim.Schedule(50*des.Millisecond+des.Millisecond/2, des.PrioInject, func() {
		a.Kernel().ForceFailSilent("injected")
	})
	if err := sim.RunUntil(400 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if a.Down() {
		t.Fatal("node A never reintegrated")
	}
	if sync.Recoveries != 1 {
		t.Fatalf("recoveries = %d, cold = %d", sync.Recoveries, sync.ColdResumes)
	}
	// A's counter must track B's (within the few periods of protocol
	// latency), not restart from 1.
	ca := a.LocalOutput(1)
	cb := b.LocalOutput(1)
	if ca < cb-10 || ca > cb {
		t.Errorf("A counter %d vs B counter %d: state not recovered", ca, cb)
	}
	if ca < 100 {
		t.Errorf("A counter %d looks cold-started", ca)
	}
}

// TestStateRecoveryColdWhenPartnerDown: with no live partner, the
// restarting node resumes cold after the timeout path.
func TestStateRecoveryColdWhenPartnerDown(t *testing.T) {
	sim, _, a, b, sync := buildDuplex(t, 100*des.Millisecond)
	kill := func(h *HostedNode) func() {
		return func() {
			if !h.Down() {
				h.Kernel().ForceFailSilent("injected")
			}
		}
	}
	// Kill B first and keep it down by killing it again on reintegration
	// attempts; then kill A, whose restart finds no live partner.
	sim.Schedule(20*des.Millisecond, des.PrioInject, kill(b))
	sim.Schedule(30*des.Millisecond, des.PrioInject, kill(a))
	if err := sim.RunUntil(135 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	// At 130 ms: A restarted at 130 ms with B still down (B restarts at
	// 120 ms... order matters; assert at least one cold resume happened
	// across the sequence).
	if err := sim.RunUntil(500 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if sync.ColdResumes == 0 {
		t.Errorf("no cold resume despite partner down (recoveries=%d)", sync.Recoveries)
	}
	if a.Down() || b.Down() {
		t.Error("nodes failed to reintegrate eventually")
	}
}

// TestStateRecoveryTimeout: a partner that is up but whose replies are
// lost forces the timeout path. Simulate by breaking the partner's
// protocol hook.
func TestStateRecoveryTimeout(t *testing.T) {
	sim, _, a, b, sync := buildDuplex(t, 100*des.Millisecond)
	// Disconnect B's protocol handling so requests go unanswered.
	b.ExtraOnFrame = nil
	sim.Schedule(20*des.Millisecond, des.PrioInject, func() {
		a.Kernel().ForceFailSilent("injected")
	})
	if err := sim.RunUntil(500 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	if a.Down() {
		t.Fatal("node A stuck holding its restart")
	}
	if sync.ColdResumes != 1 || sync.Recoveries != 0 {
		t.Errorf("cold=%d recoveries=%d, want 1/0", sync.ColdResumes, sync.Recoveries)
	}
	// Cold resume: A lost the ~200 ms it was down plus its pre-failure
	// count; its counter must trail B's by far more than protocol
	// latency would explain.
	ca, cb := a.LocalOutput(1), b.LocalOutput(1)
	if cb-ca < 150 {
		t.Errorf("A counter %d does not look cold (B at %d)", ca, cb)
	}
}
