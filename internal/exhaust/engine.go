package exhaust

// The fork-path exploration engine. One worker owns one
// fault.ForkSession (live instance + golden-prefix checkpoints) and
// runs its strided share of the placement space, each placement
// restoring the latest sound checkpoint before its injection instant
// and simulating only the suffix. At every checkpoint boundary after
// the injection the worker compares the instance's forward digest
// against (a) the golden run's digest at that boundary — a match is
// PR 5's convergence cutoff, the golden suffix is spliced on — and
// (b) its visited-digest memo table: a match means an earlier placement
// already simulated this exact future, so its recorded suffix (writes,
// events, counter deltas) is composed on instead of re-simulated.
//
// Soundness of the memo composition is argued in DESIGN.md
// ("Digest-dedup soundness"); the load-bearing facts are that
// kernel.ForwardDigest folds every bit of state that can influence the
// remainder of a run (clock, pending-event multiset, processor, memory,
// fail-silent latch, scheduler/TEM state) and that pure measurements
// (detection counters, recorder tallies, the event log) are exactly the
// things it excludes — which is why memos store suffix DELTAS for
// those, not absolutes: two placements meeting at the same digest share
// a future, not a past.
//
// The memo tables are per-worker (no cross-worker synchronization), so
// EngineStats vary with the worker count, but outcome data cannot: a
// memo only ever substitutes a suffix that simulation would have
// reproduced bit-identically.

import (
	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// memoKey identifies a reached state: checkpoint boundary index plus
// the forward digest there. Digest collisions across distinct states
// are possible in principle (64-bit FNV-1a); the differential suite
// pins dedup-on against dedup-off and fork-off to keep that theoretical
// risk regression-tested.
type memoKey struct {
	b      int
	digest uint64
}

// mechCount is one detection mechanism's counter, kept in sorted-name
// lists so suffix deltas merge deterministically.
type mechCount struct {
	name string
	n    uint64
}

// suffixMemo records everything a placement needs to compose its result
// from a boundary state an earlier placement already simulated past:
// the suffix's outputs and events verbatim, and the suffix's counter
// DELTAS (the two placements' prefixes differ, so absolutes would not
// transfer).
type suffixMemo struct {
	writes     []fault.Write
	events     []obs.Event
	dOmissions int
	dMasked    int
	dECC       uint64
	mechs      []mechCount // detection-counter deltas, sorted by name
	failedEnd  bool
}

// mark is a boundary a simulated placement passed through without a
// memo hit; at finalize it becomes a suffixMemo for later placements.
type mark struct {
	b         int
	digest    uint64
	writesLen int
	eventsLen int
	omissions int
	masked    int
	ecc       uint64
	// mechOff/mechLen locate this boundary's detection counters in the
	// worker's mech arena.
	mechOff, mechLen int
}

// worker owns one fork session and explores placements sequentially.
// The injection and boundary-check callbacks are closures created once
// per worker that read the worker's current-placement fields, so the
// per-placement loop schedules events without allocating closures.
type worker struct {
	s       *fault.ForkSession
	faults  []fault.Fault
	noDedup bool
	visited map[memoKey]*suffixMemo

	// Current-placement state read by the bound callbacks.
	f           fault.Fault
	kernelFlag  bool
	converged   bool
	convergedAt int
	memo        *suffixMemo
	memoAt      int
	nextCheck   int
	collectOff  int

	// Reused buffers: steady-state capacity, truncate-refill per
	// placement.
	marks       []mark
	mechArena   []mechCount
	finalWrites []fault.Write
	finalEvents []obs.Event
	curMechs    []mechCount
	endMechs    []mechCount
	mechNames   []string

	injectFn  func()
	checkFn   func()
	collectFn func(string, uint64)

	stats EngineStats
}

// newWorker builds a fork session (with full event streams) and the
// bound callbacks.
func newWorker(w fault.Workload, cfg *Config, faults []fault.Fault) (*worker, error) {
	s, err := fault.NewForkSession(w, cfg.SnapshotInterval, true)
	if err != nil {
		return nil, err
	}
	wk := &worker{s: s, faults: faults, noDedup: cfg.NoDedup,
		visited: make(map[memoKey]*suffixMemo)}
	wk.injectFn = func() { wk.inject() }
	wk.checkFn = func() { wk.checkBoundary() }
	wk.collectFn = func(m string, n uint64) { wk.collectMech(m, n) }
	return wk, nil
}

// inject applies the current placement — the planned-campaign decision
// tree: no modelled kernel-hit coins, but a fault landing while the
// kernel itself executes is always caught by the kernel EDMs (the
// deterministic part of the model, identical to a planned
// fault.Run trial's).
//
//nlft:noalloc
func (wk *worker) inject() {
	if wk.s.Inst.Kernel.Activity() == kernel.ActivityKernel {
		wk.kernelFlag = true
		wk.s.Inst.Kernel.ForceFailSilent("kernel EDM: assertion after fault")
		return
	}
	fault.ApplyFault(wk.s.Inst, wk.f)
}

// collectMech appends one detection counter to the arena segment that
// starts at collectOff, keeping the segment name-sorted (insertion into
// a segment that is at most a handful of mechanisms long).
//
//nlft:noalloc
func (wk *worker) collectMech(name string, n uint64) {
	if n == 0 {
		return
	}
	wk.mechArena = append(wk.mechArena, mechCount{name: name, n: n})
	for j := len(wk.mechArena) - 1; j > wk.collectOff; j-- {
		if wk.mechArena[j-1].name <= wk.mechArena[j].name {
			break
		}
		wk.mechArena[j-1], wk.mechArena[j] = wk.mechArena[j], wk.mechArena[j-1]
	}
}

// checkBoundary fires at a checkpoint boundary after the injection (the
// engine's hot loop: every simulated placement crosses every remaining
// boundary until it converges, memo-hits, or reaches the horizon). It
// is self-rearming like the campaign's convergence checker, so at
// digest time no checker event is pending and the pending-event
// multiset compares cleanly against the golden capture's.
//
//nlft:noalloc
func (wk *worker) checkBoundary() {
	b := wk.nextCheck
	d := wk.s.Digest()
	if d == wk.s.GoldenDigest(b) {
		wk.converged = true
		wk.convergedAt = b
		wk.s.Inst.Sim.Stop()
		return
	}
	if !wk.noDedup {
		if m, ok := wk.visited[memoKey{b: b, digest: d}]; ok {
			wk.memo = m
			wk.memoAt = b
			wk.s.Inst.Sim.Stop()
			return
		}
		// First visit: record the boundary so this placement's suffix
		// becomes a memo at finalize.
		wk.collectOff = len(wk.mechArena)
		wk.s.Inst.Kernel.EachDetected(wk.collectFn)
		wk.marks = append(wk.marks, mark{
			b:         b,
			digest:    d,
			writesLen: len(wk.s.Inst.Rec.Writes),
			eventsLen: len(wk.s.Col.Events()),
			omissions: wk.s.Inst.Rec.Omissions,
			masked:    wk.s.Inst.Rec.MaskedReleases,
			ecc:       wk.s.Inst.Kernel.Mem().CorrectedErrors,
			mechOff:   wk.collectOff,
			mechLen:   len(wk.mechArena) - wk.collectOff,
		})
	}
	wk.nextCheck++
	if wk.nextCheck < wk.s.Checkpoints() {
		wk.s.Inst.Sim.Schedule(wk.s.CheckpointAt(wk.nextCheck), des.PrioObserver, wk.checkFn)
	}
}

// runPlacement explores canonical placement i: restore the fork base,
// swap the phantom for the real injection, arm the boundary checker,
// run until the horizon or a cutoff, then compose and classify.
func (wk *worker) runPlacement(i int) (fault.TrialRecord, []Violation, error) {
	f := wk.faults[i]
	ck := wk.s.Select(f.At)
	wk.s.Restore(ck)

	wk.f = f
	wk.kernelFlag = false
	wk.converged = false
	wk.memo = nil
	wk.marks = wk.marks[:0]
	wk.mechArena = wk.mechArena[:0]
	wk.s.Inst.Sim.Schedule(f.At, des.PrioInject, wk.injectFn)

	wk.nextCheck = wk.s.Checkpoints()
	for b := ck + 1; b < wk.s.Checkpoints(); b++ {
		if wk.s.CheckpointAt(b) > f.At {
			wk.nextCheck = b
			break
		}
	}
	if wk.nextCheck < wk.s.Checkpoints() {
		wk.s.Inst.Sim.Schedule(wk.s.CheckpointAt(wk.nextCheck), des.PrioObserver, wk.checkFn)
	}

	err := wk.s.Inst.Sim.RunUntil(wk.s.Horizon())
	if err := errStopOK(err, wk.converged || wk.memo != nil); err != nil {
		return fault.TrialRecord{}, nil, err
	}
	return wk.finalize(i)
}

// finalize composes the placement's full-horizon result from the live
// stop state plus (when a cutoff fired) the golden or memoized suffix,
// classifies it exactly like a campaign trial, evaluates the verifier's
// guarantees, and memoizes every boundary this placement crossed first.
func (wk *worker) finalize(i int) (fault.TrialRecord, []Violation, error) {
	inst := wk.s.Inst
	wk.finalWrites = append(wk.finalWrites[:0], inst.Rec.Writes...)
	wk.finalEvents = append(wk.finalEvents[:0], wk.s.Col.Events()...)
	omissions := inst.Rec.Omissions
	masked := inst.Rec.MaskedReleases
	ecc := inst.Kernel.Mem().CorrectedErrors
	failed, _ := inst.Kernel.Failed()

	wk.curMechs = wk.curMechs[:0]
	wk.collectOff = len(wk.mechArena)
	inst.Kernel.EachDetected(wk.collectFn)
	wk.curMechs = append(wk.curMechs, wk.mechArena[wk.collectOff:]...)
	wk.mechArena = wk.mechArena[:wk.collectOff]

	switch {
	case wk.converged:
		b := wk.convergedAt
		wk.finalWrites = append(wk.finalWrites, wk.s.Golden()[wk.s.GoldenWritesLen(b):]...)
		wk.finalEvents = append(wk.finalEvents, wk.s.GoldenEvents()[wk.s.GoldenEventsLen(b):]...)
		// Golden suffix: fault-free, so all counter deltas are zero and
		// the node cannot fail silent past the cutoff.
		wk.endMechs = append(wk.endMechs[:0], wk.curMechs...)
		wk.stats.ConvergedGolden++
	case wk.memo != nil:
		m := wk.memo
		wk.finalWrites = append(wk.finalWrites, m.writes...)
		wk.finalEvents = append(wk.finalEvents, m.events...)
		omissions += m.dOmissions
		masked += m.dMasked
		ecc += m.dECC
		failed = m.failedEnd
		wk.endMechs = mergeAdd(wk.endMechs[:0], wk.curMechs, m.mechs)
		wk.stats.DedupHits++
	default:
		wk.endMechs = append(wk.endMechs[:0], wk.curMechs...)
		wk.stats.Simulated++
	}
	wk.stats.Placements++

	rec := fault.TrialRecord{Fault: wk.f, Kernel: wk.kernelFlag}
	wk.mechNames = wk.mechNames[:0]
	for _, mc := range wk.endMechs {
		wk.mechNames = append(wk.mechNames, mc.name)
	}
	if ecc > 0 {
		wk.mechNames = insertSorted(wk.mechNames, "ecc")
	}
	if len(wk.mechNames) > 0 {
		rec.Mechanisms = make([]string, len(wk.mechNames))
		copy(rec.Mechanisms, wk.mechNames)
	}
	rec.Outcome = fault.ClassifyRaw(failed, wk.finalWrites, omissions, masked,
		ecc, wk.s.Golden(), false)

	viols := checkPlacement(i, wk.f, wk.finalEvents, rec.Outcome, omissions)

	if !wk.noDedup {
		for _, mk := range wk.marks {
			key := memoKey{b: mk.b, digest: mk.digest}
			if _, ok := wk.visited[key]; ok {
				continue
			}
			wk.visited[key] = &suffixMemo{
				writes:     append([]fault.Write(nil), wk.finalWrites[mk.writesLen:]...),
				events:     append([]obs.Event(nil), wk.finalEvents[mk.eventsLen:]...),
				dOmissions: omissions - mk.omissions,
				dMasked:    masked - mk.masked,
				dECC:       ecc - mk.ecc,
				mechs:      subCounts(wk.endMechs, wk.mechArena[mk.mechOff:mk.mechOff+mk.mechLen]),
				failedEnd:  failed,
			}
			wk.stats.Memos++
		}
	}
	return rec, viols, nil
}

// mergeAdd merges two name-sorted counter lists into dst, summing equal
// names. The appends below are order-dependent by construction — and
// that order is the canonical name sort of the inputs, not arrival
// order, so the result commutes in (a, b).
//
//nlft:merge
func mergeAdd(dst, a, b []mechCount) []mechCount {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].name == b[j].name:
			//nlft:allow mergecommute two-pointer merge of name-sorted inputs; append order is the canonical sort, commutative in (a, b)
			dst = append(dst, mechCount{name: a[i].name, n: a[i].n + b[j].n})
			i++
			j++
		case a[i].name < b[j].name:
			//nlft:allow mergecommute two-pointer merge of name-sorted inputs; append order is the canonical sort, commutative in (a, b)
			dst = append(dst, a[i])
			i++
		default:
			//nlft:allow mergecommute two-pointer merge of name-sorted inputs; append order is the canonical sort, commutative in (a, b)
			dst = append(dst, b[j])
			j++
		}
	}
	//nlft:allow mergecommute sorted tail copy after the two-pointer walk; at most one tail is non-empty
	dst = append(dst, a[i:]...)
	//nlft:allow mergecommute sorted tail copy after the two-pointer walk; at most one tail is non-empty
	dst = append(dst, b[j:]...)
	return dst
}

// subCounts returns end minus at (both name-sorted; counters are
// monotone over a run, so every boundary entry appears at the end with
// an equal or larger count), keeping positive deltas only.
func subCounts(end, at []mechCount) []mechCount {
	var out []mechCount
	j := 0
	for _, e := range end {
		for j < len(at) && at[j].name < e.name {
			j++
		}
		n := e.n
		if j < len(at) && at[j].name == e.name {
			n -= at[j].n
			j++
		}
		if n > 0 {
			out = append(out, mechCount{name: e.name, n: n})
		}
	}
	return out
}

// insertSorted inserts s into a sorted string slice.
func insertSorted(names []string, s string) []string {
	names = append(names, s)
	for j := len(names) - 1; j > 0; j-- {
		if names[j-1] <= names[j] {
			break
		}
		names[j-1], names[j] = names[j], names[j-1]
	}
	return names
}
