package exhaust

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
)

// certFixtureConfig is the pinned fixture run: a restricted space small
// enough to regenerate in milliseconds but exercising two target
// classes and both detection mechanisms.
func certFixtureConfig() Config {
	return Config{
		Quantum: 250 * des.Microsecond,
		Targets: []fault.Target{fault.TargetRegister, fault.TargetALU},
		Label:   "cert-fixture",
	}
}

// TestCertificateGolden compares the canonical certificate of a pinned
// configuration byte-wise against the checked-in fixture. Run with
// -update after an intentional change to the fault model, the
// classifier, or the certificate schema; the diff then documents
// exactly what shifted.
func TestCertificateGolden(t *testing.T) {
	w := gateWorkload()
	res, err := Verify(w, certFixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Cert.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "cert_small.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes, digest %s)", path, len(got), res.Cert.Digest)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixture)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("certificate diverged from %s:\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestCertificateCanonical pins the canonicalization properties the
// golden artifact depends on: marshaling is deterministic, the digest
// covers the content with the Digest field empty (so stamping is
// idempotent), WriteFile round-trips the exact bytes, and changing any
// semantic field changes the digest.
func TestCertificateCanonical(t *testing.T) {
	w := gateWorkload()
	res, err := Verify(w, certFixtureConfig())
	if err != nil {
		t.Fatal(err)
	}
	c := res.Cert
	if c.Digest == "" || !strings.HasPrefix(c.Digest, "fnv1a:") {
		t.Fatalf("digest %q not stamped at build time", c.Digest)
	}
	a, err := c.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("canonical marshal is not deterministic")
	}
	// The serialized digest field matches the stamped one.
	var round Certificate
	if err := json.Unmarshal(a, &round); err != nil {
		t.Fatal(err)
	}
	if round.Digest != c.Digest {
		t.Fatalf("serialized digest %s, stamped %s", round.Digest, c.Digest)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "cert.json")
	if err := c.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, a) {
		t.Fatal("WriteFile bytes differ from MarshalCanonical")
	}

	// Semantic changes move the digest.
	mutated := *c
	mutated.Counts = map[string]int{"masked": 1}
	mb, err := mutated.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	var mc Certificate
	if err := json.Unmarshal(mb, &mc); err != nil {
		t.Fatal(err)
	}
	if mc.Digest == c.Digest {
		t.Fatal("digest unchanged after mutating counts")
	}
}
