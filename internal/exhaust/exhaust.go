// Package exhaust is a bounded model checker for the NLFT kernel's
// fault-tolerance guarantees: it enumerates EVERY single-fault
// placement — (time quantum × target × locus × bit) — within one
// hyperperiod of a workload and verifies, on every explored path, that
// the TEM state-machine invariants hold, that no deadline is missed,
// and that the classification matches what the sampling campaign would
// report for the same placement. Sampling estimates probabilities;
// enumeration proves absence (Cheng et al., arXiv 0905.3951, apply the
// same style of exhaustive timed exploration to fault-tolerant
// systems).
//
// The explorer reuses the campaign's checkpoint/fork engine
// (fault.ForkSession): each placement restores the latest sound golden
// checkpoint before its injection instant and simulates only the
// suffix. Two cutoffs bound the work:
//
//   - Golden convergence (PR 5's cutoff): at checkpoint boundaries
//     after the injection the placement's forward digest is compared
//     with the golden run's; equality proves the remaining suffix is
//     the golden suffix, which is spliced on instead of simulated.
//
//   - Visited-digest dedup (the cutoff turned into exhaustive
//     coverage): every boundary state a placement passes through is
//     recorded as (boundary, digest) → suffix memo. A later placement
//     reaching the same digest at the same boundary has provably the
//     same future — kernel.ForwardDigest folds everything that can
//     influence the remainder of a run — so its suffix writes, events
//     and counter deltas are composed from the memo without
//     simulation. See DESIGN.md ("Digest-dedup soundness").
//
// Outcome data (Records, Counts, ByTarget, ByMechanism, Violations,
// and the certificate digest) is bit-identical at any worker count and
// with the cutoffs on or off; only EngineStats (how much work each
// cutoff saved) varies with scheduling.
package exhaust

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// DefaultQuantum is the placement spacing used when the config does not
// supply one: fine enough to hit every phase of the standard workload's
// copy execution, coarse enough that small configs stay enumerable.
const DefaultQuantum = 50 * des.Microsecond

// Config parameterizes an exhaustive verification.
type Config struct {
	// Quantum is the spacing between enumerated injection instants.
	// Default DefaultQuantum.
	Quantum des.Time
	// Start/End override the enumeration window as the half-open
	// interval [Start, End). Default (End == 0): the workload's
	// InjectionWindow clipped to one hyperperiod.
	Start, End des.Time
	// Targets restricts the enumerated fault classes, in canonical
	// order. Default fault.AllTargets().
	Targets []fault.Target
	// Parallelism is the worker count. Default GOMAXPROCS. Outcome data
	// is bit-identical for any value.
	Parallelism int
	// SnapshotInterval is the fork checkpoint spacing (0 = the campaign
	// engine's default).
	SnapshotInterval des.Time
	// NoFork simulates every placement from t=0 on a fresh instance —
	// the independent reference path the differential tests compare
	// against. Slow; results are identical either way.
	NoFork bool
	// NoDedup disables the visited-digest memo table (golden
	// convergence still applies). Results are identical either way.
	NoDedup bool
	// Label tags the coverage certificate.
	Label string
	// OnProgress, when set, is called after every settled placement.
	OnProgress func(done, total int)
}

func (c *Config) applyDefaults() {
	if c.Quantum <= 0 {
		c.Quantum = DefaultQuantum
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Targets == nil {
		c.Targets = fault.AllTargets()
	}
}

// Violation kinds.
const (
	// ViolationTEMInvariant: the placement's event stream breaks a TEM
	// state-machine invariant (see obs.CheckInvariants).
	ViolationTEMInvariant = "tem-invariant"
	// ViolationDeadlineMiss: the placement produced an omission — a
	// release whose recovery did not fit the reserved slack.
	ViolationDeadlineMiss = "deadline-miss"
)

// Violation is one guarantee breach found on an explored path.
type Violation struct {
	// Placement is the canonical placement index.
	Placement int
	// Fault is the placement itself.
	Fault fault.Fault
	// Kind is ViolationTEMInvariant or ViolationDeadlineMiss.
	Kind string
	// Detail explains the breach.
	Detail string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("placement %d (%v): %s: %s", v.Placement, v.Fault, v.Kind, v.Detail)
}

// EngineStats reports how the engine covered the space. Unlike the
// outcome data, these counters are NOT worker-count-invariant: the memo
// tables are per-worker, so which placement simulates versus composes
// from a memo depends on the striding. They are excluded from the
// certificate digest for exactly that reason.
type EngineStats struct {
	// Placements is the enumerated placement count.
	Placements int
	// Simulated ran their full post-injection suffix.
	Simulated int
	// ConvergedGolden stopped early on a golden-digest match.
	ConvergedGolden int
	// DedupHits stopped early on a visited-digest memo.
	DedupHits int
	// Memos is the number of suffix memos retained across workers.
	Memos int
	// Workers and Checkpoints describe the engine geometry.
	Workers     int
	Checkpoints int
}

// Result is one exhaustive verification.
type Result struct {
	// Space is the enumerated placement space (nil for VerifyFaults
	// over an ad-hoc list).
	Space *Space
	// Records holds per-placement records in canonical placement order,
	// element-for-element comparable with a planned campaign's Trials.
	Records []fault.TrialRecord
	// Counts, ByTarget and ByMechanism tally outcomes like a campaign
	// Result's.
	Counts      map[fault.Outcome]int
	ByTarget    map[fault.Target]map[fault.Outcome]int
	ByMechanism map[string]int
	// Violations lists every guarantee breach, in placement order. An
	// empty slice is the proof: no single fault in the space breaks a
	// TEM invariant or causes a deadline miss.
	Violations []Violation
	// Stats reports engine coverage accounting.
	Stats EngineStats
	// Cert is the coverage certificate.
	Cert *Certificate
}

// Verify enumerates the workload's placement space and explores every
// placement.
func Verify(w fault.Workload, cfg Config) (*Result, error) {
	cfg.applyDefaults()
	space, err := NewSpace(w, &cfg)
	if err != nil {
		return nil, err
	}
	return run(w, &cfg, space.Faults(), space)
}

// VerifyFaults explores an explicit placement list instead of an
// enumerated space — the fuzz and differential tests drive single
// placements through the engine with it.
func VerifyFaults(w fault.Workload, cfg Config, faults []fault.Fault) (*Result, error) {
	cfg.applyDefaults()
	return run(w, &cfg, faults, nil)
}

// goldenObserved runs the workload fault-free with a full event stream
// and validates the fault-free invariants the verifier's guarantees are
// stated against.
func goldenObserved(w fault.Workload) ([]fault.Write, []obs.Event, error) {
	inst, col, err := scratchInstance(w)
	if err != nil {
		return nil, nil, err
	}
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return nil, nil, err
	}
	if failed, reason := inst.Kernel.Failed(); failed {
		return nil, nil, fmt.Errorf("exhaust: golden run failed silent: %s", reason)
	}
	if inst.Rec.Omissions > 0 {
		return nil, nil, fmt.Errorf("exhaust: golden run had omissions; workload unschedulable")
	}
	events := col.Events()
	if vs := obs.CheckInvariants(events); len(vs) > 0 {
		return nil, nil, fmt.Errorf("exhaust: golden run violates TEM invariants: %v", vs[0])
	}
	if vs := obs.CheckNoCriticalOmission(events); len(vs) > 0 {
		return nil, nil, fmt.Errorf("exhaust: golden run omitted a critical release: %v", vs[0])
	}
	return inst.Rec.Writes, events, nil
}

// scratchInstance builds a fresh observed instance with an uncapped
// event stream.
func scratchInstance(w fault.Workload) (*fault.Instance, *obs.Collector, error) {
	ow, ok := w.(fault.ObservableWorkload)
	if !ok {
		return nil, nil, fmt.Errorf("exhaust: workload is not observable; invariant checking needs event streams")
	}
	col := obs.NewCollector("")
	col.SetEventLimit(0)
	inst, err := ow.NewObserved(col)
	return inst, col, err
}

// run explores every placement of faults, fanned over workers with a
// strided assignment (records land at their placement index, so the
// canonical order is independent of workers and scheduling).
func run(w fault.Workload, cfg *Config, faults []fault.Fault, space *Space) (*Result, error) {
	if len(faults) == 0 {
		return nil, fmt.Errorf("exhaust: empty placement set")
	}
	golden, _, err := goldenObserved(w)
	if err != nil {
		return nil, err
	}
	workers := cfg.Parallelism
	if workers > len(faults) {
		workers = len(faults)
	}
	recs := make([]fault.TrialRecord, len(faults))
	pviols := make([][]Violation, len(faults))
	stats := make([]EngineStats, workers)
	errs := make([]error, workers)
	var progressMu sync.Mutex
	progressDone := 0
	progress := func() {
		if cfg.OnProgress != nil {
			progressMu.Lock()
			progressDone++
			cfg.OnProgress(progressDone, len(faults))
			progressMu.Unlock()
		}
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			if cfg.NoFork {
				for i := wk; i < len(faults); i += workers {
					rec, vs, err := runScratchPlacement(w, faults[i], golden, i)
					if err != nil {
						errs[wk] = fmt.Errorf("exhaust: placement %d: %w", i, err)
						return
					}
					recs[i] = rec
					pviols[i] = vs
					stats[wk].Placements++
					stats[wk].Simulated++
					progress()
				}
				return
			}
			wkr, err := newWorker(w, cfg, faults)
			if err != nil {
				errs[wk] = err
				return
			}
			for i := wk; i < len(faults); i += workers {
				rec, vs, err := wkr.runPlacement(i)
				if err != nil {
					errs[wk] = fmt.Errorf("exhaust: placement %d: %w", i, err)
					return
				}
				recs[i] = rec
				pviols[i] = vs
				progress()
			}
			wkr.stats.Checkpoints = wkr.s.Checkpoints()
			stats[wk] = wkr.stats
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	res := &Result{
		Space:       space,
		Records:     recs,
		Counts:      make(map[fault.Outcome]int),
		ByTarget:    make(map[fault.Target]map[fault.Outcome]int),
		ByMechanism: make(map[string]int),
	}
	for i := range recs {
		rec := &recs[i]
		res.Counts[rec.Outcome]++
		if res.ByTarget[rec.Fault.Target] == nil {
			res.ByTarget[rec.Fault.Target] = make(map[fault.Outcome]int)
		}
		res.ByTarget[rec.Fault.Target][rec.Outcome]++
		for _, m := range rec.Mechanisms {
			res.ByMechanism[m]++
		}
	}
	for _, vs := range pviols {
		res.Violations = append(res.Violations, vs...)
	}
	for _, s := range stats {
		res.Stats.Placements += s.Placements
		res.Stats.Simulated += s.Simulated
		res.Stats.ConvergedGolden += s.ConvergedGolden
		res.Stats.DedupHits += s.DedupHits
		res.Stats.Memos += s.Memos
		if s.Checkpoints > res.Stats.Checkpoints {
			res.Stats.Checkpoints = s.Checkpoints
		}
	}
	res.Stats.Workers = workers
	res.Cert = buildCertificate(cfg, space, res)
	return res, nil
}

// runScratchPlacement is the independent reference path: a fresh
// instance, the injection simulated from t=0, no checkpoints, no
// cutoffs, no composition. The differential and fuzz tests pin the fork
// engine against it.
func runScratchPlacement(w fault.Workload, f fault.Fault, golden []fault.Write, idx int) (fault.TrialRecord, []Violation, error) {
	inst, col, err := scratchInstance(w)
	if err != nil {
		return fault.TrialRecord{}, nil, err
	}
	rec := fault.TrialRecord{Fault: f}
	inst.Sim.Schedule(f.At, des.PrioInject, func() {
		if inst.Kernel.Activity() == kernel.ActivityKernel {
			rec.Kernel = true
			inst.Kernel.ForceFailSilent("kernel EDM: assertion after fault")
			return
		}
		fault.ApplyFault(inst, f)
	})
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return fault.TrialRecord{}, nil, err
	}
	var mechs []string
	inst.Kernel.EachDetected(func(m string, n uint64) {
		if n > 0 {
			mechs = append(mechs, m)
		}
	})
	if inst.Kernel.Mem().CorrectedErrors > 0 {
		mechs = append(mechs, "ecc")
	}
	sort.Strings(mechs)
	rec.Mechanisms = mechs
	failed, _ := inst.Kernel.Failed()
	rec.Outcome = fault.ClassifyRaw(failed, inst.Rec.Writes, inst.Rec.Omissions,
		inst.Rec.MaskedReleases, inst.Kernel.Mem().CorrectedErrors, golden, false)
	viols := checkPlacement(idx, f, col.Events(), rec.Outcome, inst.Rec.Omissions)
	return rec, viols, nil
}

// checkPlacement evaluates the verifier's two guarantees over one
// placement's complete event stream and counters.
func checkPlacement(idx int, f fault.Fault, events []obs.Event, outcome fault.Outcome, omissions int) []Violation {
	var out []Violation
	for _, v := range obs.CheckInvariants(events) {
		out = append(out, Violation{Placement: idx, Fault: f,
			Kind: ViolationTEMInvariant, Detail: v.String()})
	}
	if outcome == fault.Omission || omissions > 0 {
		out = append(out, Violation{Placement: idx, Fault: f,
			Kind:   ViolationDeadlineMiss,
			Detail: fmt.Sprintf("%d omission event(s), outcome %v", omissions, outcome)})
	}
	return out
}

// errStopOK filters the expected early-stop error.
func errStopOK(err error, stopped bool) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, des.ErrStopped) && stopped:
		return nil
	default:
		return err
	}
}
