package exhaust

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
)

// targetBlock is one target class's slice of a quantum's placements.
type targetBlock struct {
	target fault.Target
	// count is the placements this class contributes per quantum.
	count int
	// base and words locate memory-class blocks.
	base  uint32
	words uint32
}

// Space is the canonical enumeration of every single-fault placement:
// the cartesian product of injection quanta in [Start, End) and the
// full per-target locus×bit support of the campaign's fault model
// (drawFault's distribution — every placement the sampler could draw at
// a quantum instant appears exactly once). Placement i is decoded as
// quantum i/PerQuantum, then target blocks in Targets order, then locus
// and bit in row-major order within the block. That index IS the
// canonical order: results are reported in it regardless of worker
// count or exploration schedule.
type Space struct {
	// Quantum is the spacing between enumerated injection instants.
	Quantum des.Time
	// Start and End bound the injection instants as [Start, End).
	Start, End des.Time
	// Targets lists the enumerated classes in canonical order.
	Targets []fault.Target
	// Quanta and PerQuantum factor Len: Quanta enumerated instants, each
	// carrying PerQuantum distinct (target, locus, bit) placements.
	Quanta     int
	PerQuantum int

	blocks []targetBlock
}

// registerCount mirrors drawFault: register faults strike r1..r13, the
// live computation registers.
const registerCount = 13

// wordBits is the per-locus bit fan-out for 32-bit machine words.
const wordBits = 32

// NewSpace builds the placement space for a workload. The window
// defaults to the workload's InjectionWindow clipped to one hyperperiod
// (when the workload implements fault.Hyperperioder); cfg.Start/End
// override it. Defaults are applied to cfg in place (idempotent), so
// external callers can pass a zero-valued config directly.
func NewSpace(w fault.Workload, cfg *Config) (*Space, error) {
	cfg.applyDefaults()
	start, end := w.InjectionWindow()
	if hp, ok := w.(fault.Hyperperioder); ok {
		if clip := start + hp.Hyperperiod(); clip < end {
			end = clip
		}
	}
	if cfg.End > 0 {
		start, end = cfg.Start, cfg.End
	}
	if end <= start {
		return nil, fmt.Errorf("exhaust: empty injection window [%v, %v)", start, end)
	}
	s := &Space{Quantum: cfg.Quantum, Start: start, End: end,
		Targets: cfg.Targets}
	// Half-open window: ceil((end-start)/quantum) quanta cover [start,
	// end) with the last quantum possibly partial; instant `end` itself
	// is never enumerated, matching drawFault's Intn(end-start).
	s.Quanta = int((end - start + cfg.Quantum - 1) / cfg.Quantum)
	for _, target := range cfg.Targets {
		b := targetBlock{target: target}
		switch target {
		case fault.TargetRegister:
			b.count = registerCount * wordBits
		case fault.TargetPC, fault.TargetSP:
			b.count = wordBits
		case fault.TargetALU:
			b.count = wordBits // single-bit masks, like the sampler
		case fault.TargetMemoryData:
			b.base, b.words = w.DataRange()
			b.count = int(b.words) * wordBits
		case fault.TargetMemoryCode:
			b.base, b.words = w.CodeRange()
			b.count = int(b.words) * wordBits
		default:
			return nil, fmt.Errorf("exhaust: unknown target %v", target)
		}
		s.PerQuantum += b.count
		s.blocks = append(s.blocks, b)
	}
	if s.PerQuantum == 0 {
		return nil, fmt.Errorf("exhaust: no targets")
	}
	return s, nil
}

// Len is the total placement count.
func (s *Space) Len() int { return s.Quanta * s.PerQuantum }

// Fault decodes canonical placement index i.
func (s *Space) Fault(i int) fault.Fault {
	q, r := i/s.PerQuantum, i%s.PerQuantum
	f := fault.Fault{At: s.Start + des.Time(q)*s.Quantum}
	for _, b := range s.blocks {
		if r >= b.count {
			r -= b.count
			continue
		}
		f.Target = b.target
		switch b.target {
		case fault.TargetRegister:
			f.Reg = r/wordBits + 1
			f.Bit = uint(r % wordBits)
		case fault.TargetPC, fault.TargetSP:
			f.Bit = uint(r)
		case fault.TargetALU:
			f.Mask = 1 << uint(r)
		default: // memory classes
			f.Addr = b.base + uint32(r/wordBits)*4
			f.Bit = uint(r % wordBits)
		}
		return f
	}
	panic("exhaust: placement index out of range")
}

// Faults materializes the whole space in canonical order.
func (s *Space) Faults() []fault.Fault {
	out := make([]fault.Fault, s.Len())
	for i := range out {
		out[i] = s.Fault(i)
	}
	return out
}
