package exhaust

import (
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
)

// FuzzPlacementEquivalence drives arbitrary (target, locus, bit, time)
// placements through the fork-engine exploration path and asserts the
// classification equals a from-scratch single-trial run of the same
// placement — the per-placement form of the engine's soundness claim,
// with the fuzzer hunting the checkpoint-selection, convergence, and
// dedup corner cases the fixed tests might miss. Out-of-domain inputs
// are clamped into the sampler's support so every execution is a
// meaningful comparison.
func FuzzPlacementEquivalence(f *testing.F) {
	w := fault.NewStdWorkload(fault.StdWorkloadConfig{Periods: 3, Compute: 8})
	_, end := w.InjectionWindow()
	dataBase, dataWords := w.DataRange()
	codeBase, codeWords := w.CodeRange()

	f.Add(uint8(0), uint8(6), uint8(3), uint16(0), int64(0))
	f.Add(uint8(1), uint8(0), uint8(4), uint16(0), int64(des.Microsecond))
	f.Add(uint8(2), uint8(0), uint8(31), uint16(0), int64(250*des.Microsecond))
	f.Add(uint8(3), uint8(0), uint8(9), uint16(0), int64(999*des.Microsecond))
	f.Add(uint8(4), uint8(0), uint8(7), uint16(3), int64(end)-1)
	f.Add(uint8(5), uint8(0), uint8(0), uint16(1), int64(des.Millisecond/2))

	targets := fault.AllTargets()
	f.Fuzz(func(t *testing.T, targetIdx, reg, bit uint8, word uint16, atNs int64) {
		at := des.Time(atNs)
		if at < 0 {
			at = -at
		}
		at %= end
		pl := fault.Fault{At: at, Target: targets[int(targetIdx)%len(targets)]}
		switch pl.Target {
		case fault.TargetRegister:
			pl.Reg = int(reg)%13 + 1
			pl.Bit = uint(bit) % 32
		case fault.TargetPC, fault.TargetSP:
			pl.Bit = uint(bit) % 32
		case fault.TargetALU:
			pl.Mask = 1 << (uint(bit) % 32)
		case fault.TargetMemoryData:
			pl.Addr = dataBase + uint32(word)%dataWords*4
			pl.Bit = uint(bit) % 32
		case fault.TargetMemoryCode:
			pl.Addr = codeBase + uint32(word)%codeWords*4
			pl.Bit = uint(bit) % 32
		}

		got, err := VerifyFaults(w, Config{Parallelism: 1}, []fault.Fault{pl})
		if err != nil {
			t.Fatal(err)
		}
		want, err := VerifyFaults(w, Config{Parallelism: 1, NoFork: true}, []fault.Fault{pl})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Records[0], want.Records[0]) {
			t.Fatalf("placement %v: exhaust %+v, from-scratch %+v",
				pl, got.Records[0], want.Records[0])
		}
		if !reflect.DeepEqual(got.Violations, want.Violations) {
			t.Fatalf("placement %v: violations %v, from-scratch %v",
				pl, got.Violations, want.Violations)
		}
	})
}
