package exhaust

import (
	"flag"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/des"
	"repro/internal/fault"
)

var update = flag.Bool("update", false, "rewrite the golden certificate fixture")

// gateWorkload is the CI gate configuration: the small brake-by-wire
// control workload whose full placement space enumerates in seconds.
func gateWorkload() fault.Workload {
	return fault.NewStdWorkload(fault.StdWorkloadConfig{ECC: true, Periods: 3, Compute: 16})
}

// tinyConfig restricts the space so unit tests stay fast on one core:
// two target classes at a coarse quantum.
func tinyConfig() Config {
	return Config{
		Quantum: 250 * des.Microsecond,
		Targets: []fault.Target{fault.TargetRegister, fault.TargetALU},
	}
}

func TestSpaceEnumeration(t *testing.T) {
	w := gateWorkload()
	cfg := Config{}
	space, err := NewSpace(w, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Default grid: the 1ms hyperperiod at the 50µs default quantum.
	if space.Quanta != 20 {
		t.Errorf("quanta = %d, want 20", space.Quanta)
	}
	// Per-quantum support mirrors drawFault: 13 registers × 32 bits, 32
	// PC bits, 32 SP bits, 32 single-bit ALU masks, and 32 bits per data
	// and code word.
	_, dataWords := w.DataRange()
	_, codeWords := w.CodeRange()
	want := 13*32 + 32 + 32 + 32 + int(dataWords)*32 + int(codeWords)*32
	if space.PerQuantum != want {
		t.Errorf("perQuantum = %d, want %d", space.PerQuantum, want)
	}
	if space.Len() != space.Quanta*space.PerQuantum {
		t.Errorf("len = %d, want quanta×perQuantum", space.Len())
	}

	faults := space.Faults()
	if len(faults) != space.Len() {
		t.Fatalf("materialized %d faults, want %d", len(faults), space.Len())
	}
	seen := make(map[fault.Fault]int, len(faults))
	for i, f := range faults {
		if prev, dup := seen[f]; dup {
			t.Fatalf("placement %d duplicates placement %d: %v", i, prev, f)
		}
		seen[f] = i
		if f.At < space.Start || f.At >= space.End {
			t.Fatalf("placement %d at %v outside the half-open window [%v, %v)",
				i, f.At, space.Start, space.End)
		}
		if f != space.Fault(i) {
			t.Fatalf("Fault(%d) = %v, materialized %v", i, space.Fault(i), f)
		}
	}
	// The first placement sits exactly at the window start; the window
	// end itself is never enumerated (half-open contract, like
	// drawFault's start + Intn(end-start)).
	if faults[0].At != space.Start {
		t.Errorf("first placement at %v, want window start %v", faults[0].At, space.Start)
	}
	if last := faults[len(faults)-1].At; last != space.Start+des.Time(space.Quanta-1)*space.Quantum {
		t.Errorf("last placement at %v, want final quantum", last)
	}
}

func TestSpaceWindowClipping(t *testing.T) {
	// The standard workload's injection window spans Periods-1 periods,
	// but its hyperperiod is one period — the space must clip to it.
	w := gateWorkload()
	cfg := Config{}
	space, err := NewSpace(w, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space.Start != 0 || space.End != des.Millisecond {
		t.Errorf("window [%v, %v), want the [0, 1ms) hyperperiod", space.Start, space.End)
	}
	// Explicit Start/End override the clip.
	cfg = Config{Start: des.Millisecond, End: des.Millisecond + 100*des.Microsecond,
		Quantum: 30 * des.Microsecond}
	space, err = NewSpace(w, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if space.Start != des.Millisecond || space.Quanta != 4 {
		t.Errorf("override window start %v quanta %d, want 1ms and ceil(100/30)=4",
			space.Start, space.Quanta)
	}
	// An empty window is an error, not a zero-length space.
	cfg = Config{Start: des.Millisecond, End: des.Millisecond}
	if _, err := NewSpace(w, &cfg); err == nil {
		t.Error("empty window accepted")
	}
}

// TestVerifyGate is the acceptance check the CI gate script re-runs
// from the command line: every placement of the gate configuration's
// full space holds the TEM invariants and misses no deadline, and the
// per-class totals match a planned sampling campaign over the same
// placement list exactly.
func TestVerifyGate(t *testing.T) {
	if testing.Short() {
		t.Skip("full-space enumeration in -short mode")
	}
	w := gateWorkload()
	res, err := Verify(w, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Records); got != res.Space.Len() {
		t.Fatalf("explored %d of %d placements", got, res.Space.Len())
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != res.Space.Len() {
		t.Fatalf("classified %d of %d placements", total, res.Space.Len())
	}
	if len(res.Violations) != 0 {
		t.Fatalf("%d guarantee violations, first: %v", len(res.Violations), res.Violations[0])
	}
	if res.Counts[fault.Omission] != 0 || res.Counts[fault.ValueFailure] != 0 {
		t.Fatalf("unsafe outcomes in the gate config: %v", res.Counts)
	}
	if res.Counts[fault.Masked] == 0 {
		t.Fatal("no masked placements; TEM never exercised")
	}

	camp, err := fault.Run(w, fault.CampaignConfig{Plan: res.Space.Faults()})
	if err != nil {
		t.Fatal(err)
	}
	if diffs := res.CrossCheck(camp); len(diffs) != 0 {
		t.Fatalf("cross-check diverged: %v", diffs)
	}
}

// TestVerifyDifferential pins the tentpole's determinism claim: outcome
// data — per-placement records, tallies, violations, and the
// certificate digest — is bit-identical at any worker count, with the
// visited-digest dedup on or off, and on the from-scratch reference
// path with no fork engine at all. Only EngineStats may differ.
func TestVerifyDifferential(t *testing.T) {
	w := fault.NewStdWorkload(fault.StdWorkloadConfig{Periods: 3, Compute: 16})
	base := tinyConfig()

	variants := []struct {
		name string
		cfg  func() Config
	}{
		{"workers-1", func() Config { c := base; c.Parallelism = 1; return c }},
		{"workers-4", func() Config { c := base; c.Parallelism = 4; return c }},
		{"workers-max", func() Config { c := base; c.Parallelism = runtime.GOMAXPROCS(0); return c }},
		{"no-dedup", func() Config { c := base; c.Parallelism = 4; c.NoDedup = true; return c }},
		{"odd-interval", func() Config {
			c := base
			c.Parallelism = 2
			c.SnapshotInterval = 300 * des.Microsecond
			return c
		}},
		{"no-fork", func() Config { c := base; c.Parallelism = 4; c.NoFork = true; return c }},
	}

	ref, err := Verify(w, variants[0].cfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants[1:] {
		t.Run(v.name, func(t *testing.T) {
			got, err := Verify(w, v.cfg())
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Records, ref.Records) {
				for i := range got.Records {
					if !reflect.DeepEqual(got.Records[i], ref.Records[i]) {
						t.Fatalf("placement %d diverged: %+v vs ref %+v",
							i, got.Records[i], ref.Records[i])
					}
				}
			}
			if !reflect.DeepEqual(got.Counts, ref.Counts) {
				t.Errorf("counts %v, ref %v", got.Counts, ref.Counts)
			}
			if !reflect.DeepEqual(got.ByTarget, ref.ByTarget) {
				t.Errorf("by-target diverged")
			}
			if !reflect.DeepEqual(got.ByMechanism, ref.ByMechanism) {
				t.Errorf("by-mechanism %v, ref %v", got.ByMechanism, ref.ByMechanism)
			}
			if !reflect.DeepEqual(got.Violations, ref.Violations) {
				t.Errorf("violations diverged: %d vs ref %d", len(got.Violations), len(ref.Violations))
			}
			if got.Cert.Digest != ref.Cert.Digest {
				t.Errorf("certificate digest %s, ref %s", got.Cert.Digest, ref.Cert.Digest)
			}
		})
	}
}

// TestBoundaryPlacements pins the window and checkpoint-selection edge
// cases: the very first quantum (injection at t=0, before any event has
// fired), instants exactly on checkpoint boundaries (the strictly-
// before selection rule plus the cpuBusyUntil guard), the final quantum
// of the hyperperiod, and the last nanosecond of the window. Each
// placement must classify identically through the fork engine and the
// from-scratch reference path.
func TestBoundaryPlacements(t *testing.T) {
	w := fault.NewStdWorkload(fault.StdWorkloadConfig{Periods: 3, Compute: 16})
	_, end := des.Time(0), des.Millisecond // the clipped hyperperiod window
	placements := []fault.Fault{
		{At: 0, Target: fault.TargetRegister, Reg: 6, Bit: 3},
		{At: 0, Target: fault.TargetPC, Bit: 4},
		{At: 250 * des.Microsecond, Target: fault.TargetRegister, Reg: 6, Bit: 3}, // on a checkpoint boundary
		{At: 500 * des.Microsecond, Target: fault.TargetALU, Mask: 1 << 9},
		{At: end - 50*des.Microsecond, Target: fault.TargetRegister, Reg: 4, Bit: 31}, // final quantum
		{At: end - 1, Target: fault.TargetMemoryData, Addr: 0x8000, Bit: 7},           // last window instant
	}
	forkCfg := Config{Parallelism: 1}
	scratchCfg := Config{Parallelism: 1, NoFork: true}
	got, err := VerifyFaults(w, forkCfg, placements)
	if err != nil {
		t.Fatal(err)
	}
	want, err := VerifyFaults(w, scratchCfg, placements)
	if err != nil {
		t.Fatal(err)
	}
	for i := range placements {
		if !reflect.DeepEqual(got.Records[i], want.Records[i]) {
			t.Errorf("placement %v: fork %+v, scratch %+v",
				placements[i], got.Records[i], want.Records[i])
		}
	}
	if !reflect.DeepEqual(got.Violations, want.Violations) {
		t.Errorf("violations diverged: fork %v, scratch %v", got.Violations, want.Violations)
	}
}

// TestForkSessionSelection pins the session façade's checkpoint
// boundary semantics at the window edges: a fault at t=0 forks from
// checkpoint 0 (captured before any event fires), a fault exactly on a
// checkpoint instant forks from an earlier one (strictly-before rule),
// and selection never regresses across the window.
func TestForkSessionSelection(t *testing.T) {
	w := gateWorkload()
	s, err := fault.NewForkSession(w, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Checkpoints() < 3 {
		t.Fatalf("only %d checkpoints", s.Checkpoints())
	}
	if got := s.Select(0); got != 0 {
		t.Errorf("Select(0) = %d, want 0", got)
	}
	if at := s.CheckpointAt(0); at != 0 {
		t.Errorf("checkpoint 0 at %v, want 0", at)
	}
	for k := 1; k < s.Checkpoints(); k++ {
		if got := s.Select(s.CheckpointAt(k)); got >= k {
			t.Errorf("Select(checkpoint %d instant) = %d, want < %d", k, got, k)
		}
	}
	prev := 0
	for at := des.Time(0); at < s.Horizon(); at += 10 * des.Microsecond {
		got := s.Select(at)
		if got < prev {
			t.Fatalf("selection regressed at %v: %d after %d", at, got, prev)
		}
		prev = got
	}
}

func TestVerifyFaultsValidation(t *testing.T) {
	w := gateWorkload()
	if _, err := VerifyFaults(w, Config{}, nil); err == nil {
		t.Error("empty placement list accepted")
	}
}
