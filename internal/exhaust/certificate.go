package exhaust

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Certificate is the coverage artifact an exhaustive verification
// emits: what space was enumerated, what every placement classified as,
// and every guarantee violation found (none, for a passing run). The
// canonical serialization is deterministic — encoding/json emits map
// keys in sorted order and every field is worker-count-invariant
// outcome data (EngineStats deliberately excluded) — so the certificate
// digests identically on every run and machine, making it a golden
// artifact the CI diffs and the testdata fixture pins.
type Certificate struct {
	// Label tags the run (config name).
	Label string `json:"label,omitempty"`
	// QuantumNs and the window bounds identify the enumerated time grid;
	// the window is half-open [start, end).
	QuantumNs     int64 `json:"quantum_ns"`
	WindowStartNs int64 `json:"window_start_ns"`
	WindowEndNs   int64 `json:"window_end_ns"`
	// Targets lists the enumerated fault classes in canonical order.
	Targets []string `json:"targets"`
	// Placements is the total enumerated placement count.
	Placements int `json:"placements"`
	// Counts tallies placements by outcome name.
	Counts map[string]int `json:"counts"`
	// ByTarget breaks Counts down per fault class.
	ByTarget map[string]map[string]int `json:"by_target"`
	// ByMechanism counts placements per detection mechanism.
	ByMechanism map[string]int `json:"by_mechanism"`
	// Violations lists every guarantee breach; empty is the proof
	// obligation discharged.
	Violations []CertViolation `json:"violations,omitempty"`
	// Digest is the FNV-1a digest of the canonical serialization with
	// this field empty.
	Digest string `json:"digest,omitempty"`
}

// CertViolation is a Violation in certificate form.
type CertViolation struct {
	Placement int    `json:"placement"`
	Fault     string `json:"fault"`
	Kind      string `json:"kind"`
	Detail    string `json:"detail"`
}

// buildCertificate assembles the certificate for a finished run. With a
// nil space (VerifyFaults over an ad-hoc list) the grid fields are
// zero and Placements counts the explicit list.
func buildCertificate(cfg *Config, space *Space, res *Result) *Certificate {
	c := &Certificate{
		Label:       cfg.Label,
		Placements:  len(res.Records),
		Counts:      make(map[string]int),
		ByTarget:    make(map[string]map[string]int),
		ByMechanism: make(map[string]int),
	}
	if space != nil {
		c.QuantumNs = int64(space.Quantum)
		c.WindowStartNs = int64(space.Start)
		c.WindowEndNs = int64(space.End)
		for _, t := range space.Targets {
			c.Targets = append(c.Targets, t.String())
		}
	}
	// Outcome and target keys are iterated over their fixed canonical
	// enumerations (not map order): the certificate maps are rebuilt
	// deterministically even though encoding/json would canonicalize the
	// serialization anyway.
	outcomes := []fault.Outcome{fault.NotActivated, fault.Masked,
		fault.Omission, fault.FailSilent, fault.ValueFailure}
	for _, o := range outcomes {
		if n, ok := res.Counts[o]; ok {
			c.Counts[o.String()] = n
		}
	}
	for _, t := range fault.AllTargets() {
		m, ok := res.ByTarget[t]
		if !ok {
			continue
		}
		byOutcome := make(map[string]int)
		for _, o := range outcomes {
			if n, ok := m[o]; ok {
				byOutcome[o.String()] = n
			}
		}
		c.ByTarget[t.String()] = byOutcome
	}
	//nlft:allow nodeterminism key-for-key copy between maps is a commutative reduction; serialization sorts keys
	for m, n := range res.ByMechanism {
		c.ByMechanism[m] = n
	}
	for _, v := range res.Violations {
		c.Violations = append(c.Violations, CertViolation{
			Placement: v.Placement,
			Fault:     v.Fault.String(),
			Kind:      v.Kind,
			Detail:    v.Detail,
		})
	}
	// Stamp the canonical digest now so Result.Cert.Digest is directly
	// comparable without a marshal round-trip.
	if raw, err := json.Marshal(c); err == nil {
		c.Digest = fmt.Sprintf("fnv1a:%016x", obs.DigestBytes(raw))
	}
	return c
}

// MarshalCanonical renders the certificate deterministically and stamps
// Digest: the digest is computed over the compact serialization with
// Digest empty, then the stamped certificate is emitted indented with a
// trailing newline (the byte-exact form WriteFile stores and the golden
// fixture pins).
func (c *Certificate) MarshalCanonical() ([]byte, error) {
	cp := *c
	cp.Digest = ""
	raw, err := json.Marshal(&cp)
	if err != nil {
		return nil, err
	}
	cp.Digest = fmt.Sprintf("fnv1a:%016x", obs.DigestBytes(raw))
	out, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// WriteFile stores the canonical serialization at path.
func (c *Certificate) WriteFile(path string) error {
	b, err := c.MarshalCanonical()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// CrossCheck compares this run's per-class totals against a sampling
// campaign result over the same placement list (a planned fault.Run
// with Plan set to the space's faults) and returns the mismatches —
// the acceptance bridge between the prover and the estimator: on a
// fully enumerated plan the sampler IS the ground truth the exhaustive
// engine must reproduce exactly.
func (r *Result) CrossCheck(campaign *fault.Result) []string {
	var diffs []string
	if len(campaign.Trials) != len(r.Records) {
		diffs = append(diffs, fmt.Sprintf("trial count %d != placement count %d",
			len(campaign.Trials), len(r.Records)))
		return diffs
	}
	for i := range r.Records {
		if got, want := r.Records[i].Outcome, campaign.Trials[i].Outcome; got != want {
			diffs = append(diffs, fmt.Sprintf("placement %d (%v): exhaust %v != campaign %v",
				i, r.Records[i].Fault, got, want))
			if len(diffs) >= 10 {
				diffs = append(diffs, "... (further mismatches suppressed)")
				return diffs
			}
		}
	}
	for _, o := range []fault.Outcome{fault.NotActivated, fault.Masked,
		fault.Omission, fault.FailSilent, fault.ValueFailure} {
		if r.Counts[o] != campaign.Counts[o] {
			diffs = append(diffs, fmt.Sprintf("class %v: exhaust %d != campaign %d",
				o, r.Counts[o], campaign.Counts[o]))
		}
	}
	return diffs
}
