package ttnet

// Checkpoint layer for the bus, mirroring the snapshot contract used by
// the fork campaign engine (internal/fault): state is captured into, and
// restored from, preallocated scratch, and the warm paths are
// allocation-free. Identity is preserved — a snapshot taken from a Bus
// must be restored into the same Bus, whose endpoints, bound schedule
// callbacks, and slot assignment are configuration, not state.
//
// Restore reuses the live frames' payload backings. That is sound for
// checkpoint/rewind use: every staged payload is bus-owned until
// delivery, so any receiver that retained a frame received it after the
// capture instant, on the abandoned timeline — and a caller rewinding
// the bus rewinds those receivers too.

// dynMsgState is one queued event-triggered message.
type dynMsgState struct {
	prio    int
	seq     uint64
	payload []uint32
}

// frameState is one staged frame (static slot or dynamic FIFO).
type frameState struct {
	cycle   uint64
	slot    int
	sender  NodeID
	valid   bool
	staged  bool // distinguishes an empty slot from a staged zero frame
	payload []uint32
}

// endpointState is one endpoint's mutable state.
type endpointState struct {
	silent         bool
	dynWhileSilent bool
	queue          []dynMsgState
}

// BusState is preallocated scratch for Bus.Snapshot/Restore.
type BusState struct {
	cycle       uint64
	dynSeq      uint64
	stats       Stats
	transmitted []NodeID
	corrupt     []int
	pending     []frameState
	dynPend     []frameState
	dynHead     int
	endpoints   []endpointState
}

// captureFrame deep-copies a frame into scratch, reusing the scratch
// payload backing.
//
//nlft:noalloc
func captureFrame(into *frameState, f *Frame, staged bool) {
	into.cycle = f.Cycle
	into.slot = f.Slot
	into.sender = f.Sender
	into.valid = f.Valid
	into.staged = staged
	into.payload = append(into.payload[:0], f.Payload...)
}

// restoreFrame copies a captured frame back, reusing the live payload
// backing (see the retention note in the file header).
//
//nlft:noalloc
func restoreFrame(f *Frame, from *frameState) {
	f.Cycle = from.cycle
	f.Slot = from.slot
	f.Sender = from.sender
	f.Valid = from.valid
	if len(from.payload) == 0 {
		f.Payload = f.Payload[:0]
		if !from.staged {
			f.Payload = nil
		}
		return
	}
	f.Payload = append(f.Payload[:0], from.payload...)
}

// Snapshot captures the bus's mutable state — cycle position, membership
// accumulator, pending corruptions, staged frames, dynamic queues, and
// counters — into st. Must be called on a started bus.
//
//nlft:noalloc
func (b *Bus) Snapshot(into *BusState) {
	into.cycle = b.cycle
	into.dynSeq = b.dynSeq
	into.stats = b.stats
	into.transmitted = into.transmitted[:0]
	into.corrupt = into.corrupt[:0]
	// Iterate attachment / slot order, not the maps, so capture order is
	// deterministic.
	for _, id := range b.order {
		if b.transmitted[id] {
			into.transmitted = append(into.transmitted, id)
		}
	}
	for slot := 0; slot < b.cfg.StaticSlots; slot++ {
		if b.corruptNext[slot] {
			into.corrupt = append(into.corrupt, slot)
		}
	}
	for len(into.pending) < len(b.pendingFrame) {
		into.pending = append(into.pending, frameState{})
	}
	into.pending = into.pending[:len(b.pendingFrame)]
	for i := range b.pendingFrame {
		f := &b.pendingFrame[i]
		captureFrame(&into.pending[i], f, f.Sender != "")
	}
	for len(into.dynPend) < len(b.dynPend) {
		into.dynPend = append(into.dynPend, frameState{})
	}
	into.dynPend = into.dynPend[:len(b.dynPend)]
	for i := range b.dynPend {
		captureFrame(&into.dynPend[i], &b.dynPend[i], true)
	}
	into.dynHead = b.dynHead
	for len(into.endpoints) < len(b.order) {
		into.endpoints = append(into.endpoints, endpointState{})
	}
	into.endpoints = into.endpoints[:len(b.order)]
	for i, id := range b.order {
		e := b.endpoints[id]
		es := &into.endpoints[i]
		es.silent = e.silent
		es.dynWhileSilent = e.dynWhileSilent
		for len(es.queue) < len(e.dynQueue) {
			es.queue = append(es.queue, dynMsgState{})
		}
		es.queue = es.queue[:len(e.dynQueue)]
		for qi := range e.dynQueue {
			m := &e.dynQueue[qi]
			qs := &es.queue[qi]
			qs.prio = m.prio
			qs.seq = m.seq
			qs.payload = append(qs.payload[:0], m.payload...)
		}
	}
}

// Restore rewinds the bus to a state captured from the same Bus with
// Snapshot. The schedule's pending events (slot starts, deliveries,
// cycle end) live in the simulator and must be rewound alongside by the
// caller — the fork engine restores the simulator and every attached
// component from the same checkpoint.
//
//nlft:noalloc
func (b *Bus) Restore(from *BusState) {
	b.cycle = from.cycle
	b.dynSeq = from.dynSeq
	b.stats = from.stats
	clear(b.transmitted)
	for _, id := range from.transmitted {
		b.transmitted[id] = true
	}
	clear(b.corruptNext)
	for _, slot := range from.corrupt {
		b.corruptNext[slot] = true
	}
	for i := range from.pending {
		restoreFrame(&b.pendingFrame[i], &from.pending[i])
	}
	for len(b.dynPend) < len(from.dynPend) {
		b.dynPend = append(b.dynPend, Frame{})
	}
	b.dynPend = b.dynPend[:len(from.dynPend)]
	for i := range from.dynPend {
		restoreFrame(&b.dynPend[i], &from.dynPend[i])
	}
	b.dynHead = from.dynHead
	for i, id := range b.order {
		e := b.endpoints[id]
		es := &from.endpoints[i]
		e.silent = es.silent
		e.dynWhileSilent = es.dynWhileSilent
		for len(e.dynQueue) < len(es.queue) {
			e.dynQueue = append(e.dynQueue, dynMsg{})
		}
		e.dynQueue = e.dynQueue[:len(es.queue)]
		for qi := range es.queue {
			qs := &es.queue[qi]
			m := &e.dynQueue[qi]
			m.prio = qs.prio
			m.seq = qs.seq
			m.payload = append(m.payload[:0], qs.payload...)
		}
	}
}
