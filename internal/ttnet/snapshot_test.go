package ttnet

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/des"
)

// buildSnapshotBus wires a two-node bus with a dynamic segment whose
// endpoints log every delivered frame and membership view into log.
func buildSnapshotBus(t *testing.T, sim *des.Simulator, log *[]string) *Bus {
	t.Helper()
	bus, err := NewBus(sim, Config{
		SlotLen:     des.Millisecond,
		StaticSlots: 2,
		DynamicLen:  500 * des.Microsecond,
		DynMiniSlot: 100 * des.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	var epA *Endpoint
	for _, id := range []NodeID{"a", "b"} {
		id := id
		ep, err := bus.Attach(id,
			func(cycle uint64, slot int) []uint32 {
				if id == "b" && cycle%3 == 2 {
					return nil // periodic omission, visible to membership
				}
				return []uint32{uint32(cycle), uint32(slot)}
			},
			func(f Frame) {
				*log = append(*log, fmt.Sprintf("%s<-%s c%d s%d v%v p%v",
					id, f.Sender, f.Cycle, f.Slot, f.Valid, f.Payload))
			},
			func(cycle uint64, view map[NodeID]bool) {
				*log = append(*log, fmt.Sprintf("%s cycle%d a=%v b=%v",
					id, cycle, view["a"], view["b"]))
			})
		if err != nil {
			t.Fatal(err)
		}
		if id == "a" {
			epA = ep
		}
	}
	if err := bus.AssignSlot(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bus.AssignSlot(1, "b"); err != nil {
		t.Fatal(err)
	}
	// Event-triggered traffic: node a queues one message per cycle.
	prev := epA.onCycle
	epA.onCycle = func(cycle uint64, view map[NodeID]bool) {
		prev(cycle, view)
		epA.SendDynamic(int(cycle%2), []uint32{0xD0 + uint32(cycle)})
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	return bus
}

// TestBusSnapshotDifferential proves restore+run ≡ straight run for the
// bus: capture mid-schedule (with staged frames, queued dynamic
// messages, a pending corruption, and partial membership), run to the
// horizon, rewind, rerun, and require the identical delivery/membership
// suffix and final counters.
func TestBusSnapshotDifferential(t *testing.T) {
	sim := des.New()
	var log []string
	bus := buildSnapshotBus(t, sim, &log)
	bus.CorruptNextFrame(1)

	// Capture at an instant strictly inside a cycle so staged state is
	// live.
	captureAt := 3*des.Millisecond + 300*des.Microsecond
	if err := sim.RunUntil(captureAt); err != nil {
		t.Fatal(err)
	}
	bus.CorruptNextFrame(0)
	var simSt des.SimState
	var busSt BusState
	sim.Snapshot(&simSt)
	bus.Snapshot(&busSt)
	mark := len(log)

	horizon := 11 * des.Millisecond
	if err := sim.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	wantSuffix := append([]string(nil), log[mark:]...)
	wantStats := bus.Stats()
	wantCycle := bus.Cycle()

	sim.Restore(&simSt)
	bus.Restore(&busSt)
	log = log[:mark]
	if err := sim.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(log[mark:], wantSuffix) {
		t.Fatalf("replay suffix diverged:\n got %v\nwant %v", log[mark:], wantSuffix)
	}
	if bus.Stats() != wantStats {
		t.Errorf("replay stats %+v, want %+v", bus.Stats(), wantStats)
	}
	if bus.Cycle() != wantCycle {
		t.Errorf("replay cycle %d, want %d", bus.Cycle(), wantCycle)
	}
}

// TestBusSnapshotZeroAlloc gates the warm capture/restore paths.
func TestBusSnapshotZeroAlloc(t *testing.T) {
	sim := des.New()
	var log []string
	bus := buildSnapshotBus(t, sim, &log)
	if err := sim.RunUntil(3*des.Millisecond + 300*des.Microsecond); err != nil {
		t.Fatal(err)
	}
	var simSt des.SimState
	var busSt BusState
	// Warm both scratches, then require steady-state captures and
	// restores to stay allocation-free.
	sim.Snapshot(&simSt)
	bus.Snapshot(&busSt)
	sim.Restore(&simSt)
	bus.Restore(&busSt)
	if got := testing.AllocsPerRun(32, func() {
		sim.Snapshot(&simSt)
		bus.Snapshot(&busSt)
	}); got != 0 {
		t.Errorf("warm snapshot allocates %v per run, want 0", got)
	}
	if got := testing.AllocsPerRun(32, func() {
		sim.Restore(&simSt)
		bus.Restore(&busSt)
	}); got != 0 {
		t.Errorf("warm restore allocates %v per run, want 0", got)
	}
}
