package ttnet

import (
	"testing"

	"repro/internal/des"
)

// twoNodeBus builds a bus with nodes "a" (slot 0) and "b" (slot 1), each
// transmitting its cycle number tagged with an id, and records received
// frames per node.
func twoNodeBus(t *testing.T, cfg Config) (*des.Simulator, *Bus, map[NodeID][]Frame, map[NodeID]*Endpoint) {
	t.Helper()
	sim := des.New()
	bus, err := NewBus(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[NodeID][]Frame)
	eps := make(map[NodeID]*Endpoint)
	for i, id := range []NodeID{"a", "b"} {
		id := id
		tag := uint32(i + 1)
		ep, err := bus.Attach(id,
			func(cycle uint64, slot int) []uint32 {
				return []uint32{tag, uint32(cycle)}
			},
			func(f Frame) { got[id] = append(got[id], f) },
			nil)
		if err != nil {
			t.Fatal(err)
		}
		eps[id] = ep
	}
	if err := bus.AssignSlot(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bus.AssignSlot(1, "b"); err != nil {
		t.Fatal(err)
	}
	return sim, bus, got, eps
}

func TestConfigValidation(t *testing.T) {
	sim := des.New()
	if _, err := NewBus(nil, Config{StaticSlots: 1}); err == nil {
		t.Error("nil simulator accepted")
	}
	if _, err := NewBus(sim, Config{StaticSlots: 0}); err == nil {
		t.Error("zero slots accepted")
	}
	if _, err := NewBus(sim, Config{StaticSlots: 1, DynamicLen: -1}); err == nil {
		t.Error("negative dynamic length accepted")
	}
	cfg := Config{StaticSlots: 4, SlotLen: des.Millisecond, DynamicLen: 2 * des.Millisecond}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	if cfg.CycleLen() != 6*des.Millisecond {
		t.Errorf("cycle = %v", cfg.CycleLen())
	}
}

func TestAttachAndAssignRules(t *testing.T) {
	sim := des.New()
	bus, err := NewBus(sim, Config{StaticSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Attach("", nil, nil, nil); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := bus.Attach("a", nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Attach("a", nil, nil, nil); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := bus.AssignSlot(5, "a"); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if err := bus.AssignSlot(0, "ghost"); err == nil {
		t.Error("unknown owner accepted")
	}
	if err := bus.AssignSlot(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bus.AssignSlot(0, "a"); err == nil {
		t.Error("double assignment accepted")
	}
	if err := bus.Start(); err == nil {
		t.Error("start with unowned slot accepted")
	}
}

func TestTDMADelivery(t *testing.T) {
	cfg := Config{StaticSlots: 2, SlotLen: des.Millisecond}
	sim, bus, got, _ := twoNodeBus(t, cfg)
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	// Run three full cycles (2 ms each).
	if err := sim.RunUntil(6*des.Millisecond + des.Microsecond); err != nil {
		t.Fatal(err)
	}
	// Every node sees every frame: 2 senders × 3 cycles = 6 frames each.
	for _, id := range []NodeID{"a", "b"} {
		frames := got[id]
		if len(frames) != 6 {
			t.Fatalf("%s received %d frames, want 6", id, len(frames))
		}
		// Alternating senders a, b, a, b...
		for i, f := range frames {
			wantSender := NodeID("a")
			if i%2 == 1 {
				wantSender = "b"
			}
			if f.Sender != wantSender || !f.Valid {
				t.Errorf("frame %d: %+v", i, f)
			}
			if f.Payload[1] != uint32(i/2) {
				t.Errorf("frame %d cycle payload = %d", i, f.Payload[1])
			}
		}
	}
	st := bus.Stats()
	if st.FramesDelivered != 6 || st.CyclesCompleted != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSilenceAndMembership(t *testing.T) {
	cfg := Config{StaticSlots: 2, SlotLen: des.Millisecond}
	sim, bus, _, eps := twoNodeBus(t, cfg)
	var views []map[NodeID]bool
	// Use node a's cycle callback as the membership observer.
	busA := eps["a"]
	busA.onCycle = func(cycle uint64, tx map[NodeID]bool) {
		cp := make(map[NodeID]bool, len(tx))
		for k, v := range tx {
			cp[k] = v
		}
		views = append(views, cp)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	// Silence b during the second cycle, resume before the fourth.
	sim.Schedule(2*des.Millisecond+des.Microsecond, des.PrioKernel, func() { eps["b"].Silence() })
	sim.Schedule(5*des.Millisecond, des.PrioKernel, func() { eps["b"].Resume() })
	if err := sim.RunUntil(8*des.Millisecond + des.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(views) != 4 {
		t.Fatalf("views = %d", len(views))
	}
	if !views[0]["b"] || !views[0]["a"] {
		t.Errorf("cycle 0 membership %v", views[0])
	}
	if views[1]["b"] {
		t.Errorf("cycle 1 should miss b: %v", views[1])
	}
	if !views[3]["b"] {
		t.Errorf("cycle 3 should have b reintegrated: %v", views[3])
	}
	if !eps["b"].Silenced() && views[1]["b"] {
		t.Error("silence not effective")
	}
}

func TestCorruptedFrameFlagged(t *testing.T) {
	cfg := Config{StaticSlots: 2, SlotLen: des.Millisecond}
	sim, bus, got, _ := twoNodeBus(t, cfg)
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	bus.CorruptNextFrame(0)
	if err := sim.RunUntil(4*des.Millisecond + des.Microsecond); err != nil {
		t.Fatal(err)
	}
	frames := got["b"]
	if len(frames) != 4 {
		t.Fatalf("frames = %d", len(frames))
	}
	if frames[0].Valid {
		t.Error("corrupted frame marked valid")
	}
	if !frames[2].Valid {
		t.Error("corruption persisted beyond one frame")
	}
	st := bus.Stats()
	if st.FramesCorrupted != 1 {
		t.Errorf("corrupted = %d", st.FramesCorrupted)
	}
	// Membership: a's corrupted frame does not count as transmitted in
	// cycle 0 — receivers could not validate it.
}

func TestSkippedSlotCounts(t *testing.T) {
	sim := des.New()
	bus, err := NewBus(sim, Config{StaticSlots: 1, SlotLen: des.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	sent := 0
	if _, err := bus.Attach("a", func(cycle uint64, slot int) []uint32 {
		if cycle%2 == 1 {
			return nil // skip odd cycles
		}
		sent++
		return []uint32{1}
	}, nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := bus.AssignSlot(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	if err := sim.RunUntil(4*des.Millisecond + des.Microsecond); err != nil {
		t.Fatal(err)
	}
	st := bus.Stats()
	if st.SlotsSkipped != 2 || st.FramesDelivered != 2 {
		t.Errorf("stats = %+v (sent %d)", st, sent)
	}
}

func TestDynamicSegmentPriorityOrder(t *testing.T) {
	cfg := Config{
		StaticSlots: 1, SlotLen: des.Millisecond,
		DynamicLen: des.Millisecond, DynMiniSlot: 200 * des.Microsecond,
	}
	sim := des.New()
	bus, err := NewBus(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var dynFrames []Frame
	epA, err := bus.Attach("a", func(uint64, int) []uint32 { return []uint32{0} },
		func(f Frame) {
			if f.Slot == -1 {
				dynFrames = append(dynFrames, f)
			}
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	epB, err := bus.Attach("b", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.AssignSlot(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	// Queue three messages before the first dynamic segment: b's is
	// higher priority and must arrive first despite later queueing.
	epA.SendDynamic(1, []uint32{100})
	epA.SendDynamic(1, []uint32{101})
	epB.SendDynamic(9, []uint32{200})
	if err := sim.RunUntil(2*des.Millisecond + des.Microsecond); err != nil {
		t.Fatal(err)
	}
	if len(dynFrames) != 3 {
		t.Fatalf("dynamic frames = %d", len(dynFrames))
	}
	if dynFrames[0].Payload[0] != 200 {
		t.Errorf("priority violated: first = %v", dynFrames[0].Payload)
	}
	if dynFrames[1].Payload[0] != 100 || dynFrames[2].Payload[0] != 101 {
		t.Errorf("FIFO within priority violated: %v, %v",
			dynFrames[1].Payload, dynFrames[2].Payload)
	}
}

func TestDynamicSegmentCapacityCarriesOver(t *testing.T) {
	cfg := Config{
		StaticSlots: 1, SlotLen: des.Millisecond,
		DynamicLen: 400 * des.Microsecond, DynMiniSlot: 200 * des.Microsecond,
	}
	sim := des.New()
	bus, err := NewBus(sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var values []uint32
	ep, err := bus.Attach("a", func(uint64, int) []uint32 { return []uint32{0} },
		func(f Frame) {
			if f.Slot == -1 {
				values = append(values, f.Payload[0])
			}
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.AssignSlot(0, "a"); err != nil {
		t.Fatal(err)
	}
	if err := bus.Start(); err != nil {
		t.Fatal(err)
	}
	// Capacity is 2 per cycle; queue 3.
	for i := uint32(0); i < 3; i++ {
		ep.SendDynamic(0, []uint32{i})
	}
	if err := sim.RunUntil(3 * cfg.CycleLen()); err != nil {
		t.Fatal(err)
	}
	if len(values) != 3 {
		t.Fatalf("delivered = %v", values)
	}
	if values[0] != 0 || values[1] != 1 || values[2] != 2 {
		t.Errorf("order = %v", values)
	}
	if bus.Stats().DynamicDropped != 1 {
		t.Errorf("dropped = %d (carry-over accounting)", bus.Stats().DynamicDropped)
	}
}

func TestFrameCRCHelpers(t *testing.T) {
	payload := []uint32{1, 2, 3}
	crc := FrameCRC("a", payload)
	f := Frame{Sender: "a", Payload: payload}
	if !VerifyFrame(f, crc) {
		t.Error("valid CRC rejected")
	}
	f.Payload = []uint32{1, 2, 4}
	if VerifyFrame(f, crc) {
		t.Error("corrupted payload accepted")
	}
	if FrameCRC("a", payload) == FrameCRC("b", payload) {
		t.Error("CRC ignores sender (masquerading undetectable)")
	}
}

func BenchmarkBusCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim := des.New()
		bus, err := NewBus(sim, Config{StaticSlots: 6, SlotLen: des.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 6; j++ {
			id := NodeID(rune('a' + j))
			if _, err := bus.Attach(id, func(uint64, int) []uint32 { return []uint32{1} }, nil, nil); err != nil {
				b.Fatal(err)
			}
			if err := bus.AssignSlot(j, id); err != nil {
				b.Fatal(err)
			}
		}
		if err := bus.Start(); err != nil {
			b.Fatal(err)
		}
		if err := sim.RunUntil(des.Second); err != nil {
			b.Fatal(err)
		}
	}
}
