// Package ttnet simulates a FlexRay-like time-triggered communication
// network (§2.1): a cyclic schedule with a static TDMA segment whose
// slots are statically owned by nodes, followed by a dynamic segment for
// event-triggered messages arbitrated by priority. Frames carry CRCs so
// receivers identify corrupted transmissions (fail-silence at the
// network level), and a membership service lets every node observe which
// peers transmitted in each cycle — the hook the paper's system level
// uses to detect node omission and fail-silent failures and to drive
// restart and reintegration.
package ttnet

import (
	"fmt"
	"hash/crc32"

	"repro/internal/des"
)

// NodeID identifies a network endpoint.
type NodeID string

// Frame is one transmission on the bus.
type Frame struct {
	// Cycle and Slot locate the transmission in the schedule (Slot is -1
	// for dynamic-segment frames).
	Cycle uint64
	Slot  int
	// Sender is the transmitting node.
	Sender NodeID
	// Payload is the application data.
	Payload []uint32
	// Valid reports whether the CRC checked out at the receiver.
	Valid bool
}

// payloadCRC computes the frame checksum.
func payloadCRC(sender NodeID, payload []uint32) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(sender))
	var buf [4]byte
	for _, w := range payload {
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		buf[2] = byte(w >> 16)
		buf[3] = byte(w >> 24)
		h.Write(buf[:])
	}
	return h.Sum32()
}

// Config describes the communication cycle.
type Config struct {
	// SlotLen is the duration of one static slot. Default 1 ms.
	SlotLen des.Time
	// StaticSlots is the number of static slots per cycle; each slot has
	// exactly one owner.
	StaticSlots int
	// DynamicLen is the duration of the dynamic segment. Default 0 (no
	// dynamic segment).
	DynamicLen des.Time
	// DynMiniSlot is the transmission time consumed by one dynamic
	// message. Default 100 µs.
	DynMiniSlot des.Time
}

func (c *Config) applyDefaults() error {
	if c.SlotLen == 0 {
		c.SlotLen = des.Millisecond
	}
	if c.SlotLen < 0 || c.DynamicLen < 0 {
		return fmt.Errorf("ttnet: negative segment length")
	}
	if c.StaticSlots < 1 {
		return fmt.Errorf("ttnet: %d static slots", c.StaticSlots)
	}
	if c.DynMiniSlot == 0 {
		c.DynMiniSlot = 100 * des.Microsecond
	}
	return nil
}

// CycleLen is the total communication cycle duration.
func (c Config) CycleLen() des.Time {
	return des.Time(c.StaticSlots)*c.SlotLen + c.DynamicLen
}

// Endpoint is a node's attachment to the bus.
type Endpoint struct {
	bus *Bus
	id  NodeID
	// provide supplies the payload for an owned static slot; returning
	// nil skips the transmission (an omission, visible to membership).
	provide func(cycle uint64, slot int) []uint32
	// onFrame receives every frame on the bus (including invalid ones,
	// flagged, so receivers can count corrupted transmissions).
	onFrame func(f Frame)
	// onCycle is called at each cycle end with the membership view. The
	// map is reused by the bus and only valid during the call.
	onCycle func(cycle uint64, transmitted map[NodeID]bool)
	silent  bool
	// dynWhileSilent permits dynamic-segment transmission while the
	// static slots stay silent: a reintegrating node's protocol traffic
	// (state-recovery requests) travels in the event-triggered part
	// before the node is readmitted to the time-triggered part.
	dynWhileSilent bool
	// dynQueue holds pending event-triggered messages by priority.
	dynQueue []dynMsg
}

type dynMsg struct {
	prio    int
	payload []uint32
	seq     uint64
}

// Silence makes the endpoint stop transmitting (fail-silent node); it
// keeps receiving so it can resynchronize.
func (e *Endpoint) Silence() { e.silent = true }

// Resume lets a restarted endpoint transmit again (reintegration).
func (e *Endpoint) Resume() { e.silent = false }

// Silenced reports whether the endpoint is currently silent.
func (e *Endpoint) Silenced() bool { return e.silent }

// SetDynamicWhileSilent controls whether the endpoint may still send
// event-triggered messages while statically silent (reintegration).
func (e *Endpoint) SetDynamicWhileSilent(ok bool) { e.dynWhileSilent = ok }

// SendDynamic queues an event-triggered message (higher prio first, FIFO
// within a priority). It is delivered in a following dynamic segment.
func (e *Endpoint) SendDynamic(prio int, payload []uint32) {
	cp := make([]uint32, len(payload))
	copy(cp, payload)
	e.dynQueue = append(e.dynQueue, dynMsg{prio: prio, payload: cp, seq: e.bus.dynSeq})
	e.bus.dynSeq++
}

// Stats counts bus-level events.
type Stats struct {
	FramesDelivered  uint64
	FramesCorrupted  uint64
	SlotsSkipped     uint64
	DynamicDelivered uint64
	DynamicDropped   uint64
	CyclesCompleted  uint64
}

// Bus is the shared medium plus the global schedule.
type Bus struct {
	//nlft:snapshot-skip simulator wiring; the des core snapshots its own state
	sim *des.Simulator
	//nlft:snapshot-skip immutable configuration fixed at construction
	cfg Config
	//nlft:snapshot-skip derived from cfg at construction, immutable afterwards
	owners    []NodeID // slot -> owner
	endpoints map[NodeID]*Endpoint
	order     []NodeID
	cycle     uint64
	// transmitted tracks senders seen in the current cycle.
	transmitted map[NodeID]bool
	// corruptNext marks slots whose next transmission is corrupted
	// (fault injection).
	corruptNext map[int]bool
	stats       Stats
	//nlft:snapshot-skip one-way start latch; forks only happen after Start
	started bool
	dynSeq  uint64

	// Bound schedule callbacks, created once at Start so the cyclic
	// schedule re-arms its events without allocating a closure per slot
	// per cycle: slotFns[i] runs static slot i, deliverFns[i] delivers
	// the frame staged in pendingFrame[i].
	//nlft:snapshot-skip bound schedule closures, identical across the bus's lifetime
	slotFns []func()
	//nlft:snapshot-skip bound schedule closures, identical across the bus's lifetime
	deliverFns []func()
	//nlft:snapshot-skip bound schedule closures, identical across the bus's lifetime
	runDynamicFn func()
	//nlft:snapshot-skip bound schedule closures, identical across the bus's lifetime
	endCycleFn func()
	//nlft:snapshot-skip bound schedule closures, identical across the bus's lifetime
	deliverDynFn func()
	// pendingFrame stages each slot's frame between transmission and
	// end-of-slot delivery.
	pendingFrame []Frame
	// dynScratch and dynPend are the dynamic segment's reused buffers:
	// dynScratch collects and orders the cycle's messages, dynPend is the
	// FIFO of frames awaiting delivery (deliverDynFn pops dynHead).
	//nlft:snapshot-skip reused arbitration scratch, fully rewritten within each dynamic segment
	dynScratch []dynEntry
	dynPend    []Frame
	dynHead    int
	// viewScratch is the reused membership view handed to onCycle; the
	// callback contract is that the map is only valid during the call.
	//nlft:snapshot-skip reused callback scratch, only valid during the onCycle call
	viewScratch map[NodeID]bool
}

// dynEntry pairs a queued dynamic message with its sender for
// arbitration.
type dynEntry struct {
	msg  dynMsg
	from NodeID
}

// NewBus builds a bus on the simulator.
func NewBus(sim *des.Simulator, cfg Config) (*Bus, error) {
	if sim == nil {
		return nil, fmt.Errorf("ttnet: nil simulator")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	return &Bus{
		sim:         sim,
		cfg:         cfg,
		owners:      make([]NodeID, cfg.StaticSlots),
		endpoints:   make(map[NodeID]*Endpoint),
		transmitted: make(map[NodeID]bool),
		corruptNext: make(map[int]bool),
	}, nil
}

// Attach registers an endpoint. provide may be nil for receive-only
// nodes; onFrame and onCycle may be nil.
func (b *Bus) Attach(id NodeID, provide func(cycle uint64, slot int) []uint32,
	onFrame func(Frame), onCycle func(uint64, map[NodeID]bool)) (*Endpoint, error) {
	if b.started {
		return nil, fmt.Errorf("ttnet: attach after start")
	}
	if id == "" {
		return nil, fmt.Errorf("ttnet: empty node id")
	}
	if _, dup := b.endpoints[id]; dup {
		return nil, fmt.Errorf("ttnet: duplicate node %q", id)
	}
	e := &Endpoint{bus: b, id: id, provide: provide, onFrame: onFrame, onCycle: onCycle}
	b.endpoints[id] = e
	b.order = append(b.order, id)
	return e, nil
}

// AssignSlot gives a static slot to a node.
func (b *Bus) AssignSlot(slot int, owner NodeID) error {
	if b.started {
		return fmt.Errorf("ttnet: assign after start")
	}
	if slot < 0 || slot >= b.cfg.StaticSlots {
		return fmt.Errorf("ttnet: slot %d out of range", slot)
	}
	if _, ok := b.endpoints[owner]; !ok {
		return fmt.Errorf("ttnet: unknown owner %q", owner)
	}
	if b.owners[slot] != "" {
		return fmt.Errorf("ttnet: slot %d already owned by %q", slot, b.owners[slot])
	}
	b.owners[slot] = owner
	return nil
}

// CorruptNextFrame arranges for the next transmission in the slot to
// arrive with a bad CRC (transient bus fault).
func (b *Bus) CorruptNextFrame(slot int) { b.corruptNext[slot] = true }

// Stats returns a copy of the counters.
func (b *Bus) Stats() Stats { return b.stats }

// Cycle reports the current cycle number.
func (b *Bus) Cycle() uint64 { return b.cycle }

// Start begins the cyclic schedule. Every slot must be owned.
func (b *Bus) Start() error {
	if b.started {
		return fmt.Errorf("ttnet: already started")
	}
	for slot, owner := range b.owners {
		if owner == "" {
			return fmt.Errorf("ttnet: slot %d unowned", slot)
		}
	}
	if len(b.endpoints) == 0 {
		return fmt.Errorf("ttnet: no endpoints")
	}
	b.started = true
	b.slotFns = make([]func(), b.cfg.StaticSlots)
	b.deliverFns = make([]func(), b.cfg.StaticSlots)
	b.pendingFrame = make([]Frame, b.cfg.StaticSlots)
	for slot := range b.slotFns {
		slot := slot
		b.slotFns[slot] = func() { b.runSlot(slot) }
		b.deliverFns[slot] = func() { b.deliverSlot(slot) }
	}
	b.runDynamicFn = b.runDynamic
	b.endCycleFn = b.endCycle
	b.deliverDynFn = b.deliverNextDynamic
	b.viewScratch = make(map[NodeID]bool, len(b.endpoints))
	b.scheduleSlot(0)
	return nil
}

// scheduleSlot arranges the transmission at the start of a static slot.
//
//nlft:noalloc
func (b *Bus) scheduleSlot(slot int) {
	b.sim.Schedule(b.sim.Now(), des.PrioNetwork, b.slotFns[slot])
}

// runSlot performs one static slot: the owner transmits (or not), and
// the frame is delivered to every endpoint at the end of the slot.
//
//nlft:noalloc
func (b *Bus) runSlot(slot int) {
	owner := b.owners[slot]
	e := b.endpoints[owner]
	var payload []uint32
	if !e.silent && e.provide != nil {
		payload = e.provide(b.cycle, slot)
	}
	slotEnd := b.sim.Now() + b.cfg.SlotLen
	if payload == nil {
		b.stats.SlotsSkipped++
	} else {
		corrupted := b.corruptNext[slot]
		delete(b.corruptNext, slot)
		// The payload is copied per frame: receivers are allowed to retain
		// delivered frames, so the bus must not reuse their backing.
		b.pendingFrame[slot] = Frame{
			Cycle:  b.cycle,
			Slot:   slot,
			Sender: owner,
			//nlft:allow noalloc per-frame payload copy is the retention contract: receivers may keep delivered frames, so the bus must not reuse their backing
			Payload: append([]uint32(nil), payload...),
			Valid:   !corrupted,
		}
		b.sim.Schedule(slotEnd, des.PrioNetwork, b.deliverFns[slot])
	}
	// Next slot or dynamic segment.
	if slot+1 < b.cfg.StaticSlots {
		b.sim.Schedule(slotEnd, des.PrioNetwork, b.slotFns[slot+1])
	} else {
		b.sim.Schedule(slotEnd, des.PrioNetwork, b.runDynamicFn)
	}
}

// deliverSlot fans the frame staged for a static slot out to all
// endpoints and updates membership.
//
//nlft:noalloc
func (b *Bus) deliverSlot(slot int) {
	f := b.pendingFrame[slot]
	b.pendingFrame[slot] = Frame{}
	if f.Valid {
		b.stats.FramesDelivered++
		b.transmitted[f.Sender] = true
	} else {
		b.stats.FramesCorrupted++
	}
	for _, id := range b.order {
		e := b.endpoints[id]
		if e.onFrame != nil {
			e.onFrame(f)
		}
	}
}

// runDynamic performs the dynamic segment: pending messages across all
// endpoints are sent in priority order until the segment is full.
//
//nlft:noalloc
func (b *Bus) runDynamic() {
	segEnd := b.sim.Now() + b.cfg.DynamicLen
	if b.cfg.DynamicLen > 0 {
		// Collect pending messages from non-silent endpoints into the
		// reused scratch.
		all := b.dynScratch[:0]
		for _, id := range b.order {
			e := b.endpoints[id]
			if e.silent && !e.dynWhileSilent {
				continue
			}
			for _, m := range e.dynQueue {
				all = append(all, dynEntry{msg: m, from: id})
			}
			e.dynQueue = e.dynQueue[:0]
		}
		sortDynEntries(all)
		if b.dynHead == len(b.dynPend) {
			b.dynPend = b.dynPend[:0]
			b.dynHead = 0
		}
		capacity := int(b.cfg.DynamicLen / b.cfg.DynMiniSlot)
		at := b.sim.Now()
		for i := range all {
			p := &all[i]
			if i >= capacity {
				// No room this cycle: requeue for the next one.
				e := b.endpoints[p.from]
				e.dynQueue = append(e.dynQueue, p.msg)
				b.stats.DynamicDropped++
				continue
			}
			at += b.cfg.DynMiniSlot
			// Deliveries fire in schedule order, so a FIFO of staged frames
			// popped by the single bound callback reproduces the per-frame
			// closure exactly. The payload is the message's own copy (made
			// in SendDynamic), never reused, so receivers may retain it.
			b.dynPend = append(b.dynPend, Frame{
				Cycle:   b.cycle,
				Slot:    -1,
				Sender:  p.from,
				Payload: p.msg.payload,
				Valid:   true,
			})
			b.stats.DynamicDelivered++
			b.sim.Schedule(at, des.PrioNetwork, b.deliverDynFn)
		}
		b.dynScratch = all[:0]
	}
	b.sim.Schedule(segEnd, des.PrioNetwork, b.endCycleFn)
}

// sortDynEntries orders messages by descending priority, FIFO within a
// priority (seq is globally unique, so the order is total). Insertion
// sort: dynamic queues are short and this keeps the arbitration free of
// sort.Slice's per-call closure allocation.
//
//nlft:noalloc
func sortDynEntries(all []dynEntry) {
	for i := 1; i < len(all); i++ {
		e := all[i]
		j := i - 1
		for j >= 0 && (e.msg.prio > all[j].msg.prio ||
			(e.msg.prio == all[j].msg.prio && e.msg.seq < all[j].msg.seq)) {
			all[j+1] = all[j]
			j--
		}
		all[j+1] = e
	}
}

// deliverNextDynamic fans out the next staged dynamic frame (no
// membership effect).
//
//nlft:noalloc
func (b *Bus) deliverNextDynamic() {
	f := b.dynPend[b.dynHead]
	b.dynHead++
	for _, id := range b.order {
		e := b.endpoints[id]
		if e.onFrame != nil {
			e.onFrame(f)
		}
	}
}

// endCycle publishes the membership view and starts the next cycle. The
// view map is reused across cycles; onCycle callbacks must copy it if
// they keep it.
//
//nlft:noalloc
func (b *Bus) endCycle() {
	view := b.viewScratch
	clear(view)
	//nlft:allow nodeterminism key-for-key map copy; iteration order cannot affect the view
	for id, ok := range b.transmitted {
		view[id] = ok
	}
	for _, id := range b.order {
		e := b.endpoints[id]
		if e.onCycle != nil {
			e.onCycle(b.cycle, view)
		}
	}
	b.stats.CyclesCompleted++
	b.cycle++
	clear(b.transmitted)
	b.scheduleSlot(0)
}

// VerifyFrame recomputes and checks a frame CRC (helper for end-to-end
// checks in application code).
func VerifyFrame(f Frame, crc uint32) bool {
	return payloadCRC(f.Sender, f.Payload) == crc
}

// FrameCRC computes the CRC a sender would attach.
func FrameCRC(sender NodeID, payload []uint32) uint32 {
	return payloadCRC(sender, payload)
}
