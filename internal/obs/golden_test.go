package obs_test

// Golden-trace suite: three canonical TEM scenarios are replayed on the
// simulated kernel and their structured event streams compared byte-wise
// against checked-in JSONL files. Run with -update to rewrite the files
// after an intentional change to the kernel's event emission.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenTaskSrc runs ~4007 cycles per copy (~80 µs at 50 MHz) and
// writes one result — long enough that mid-copy injections land in
// live computation.
const goldenTaskSrc = `
	.org 0x0000
start:
	movi r5, 1000
	movi r6, 0
loop:
	add r6, r6, r5
	addi r5, r5, -1
	cmpi r5, 0
	bgt loop
	li r1, 0xFFFF0000
	st r6, [r1+4]
	sys 2
`

type goldenEnv struct{}

func (goldenEnv) ReadInput(uint32) uint32    { return 0 }
func (goldenEnv) WriteOutput(uint32, uint32) {}

// goldenScenario describes one checked-in trace.
type goldenScenario struct {
	name     string
	deadline des.Time
	budget   des.Time
	inject   func(sim *des.Simulator, k *kernel.Kernel)
}

var goldenScenarios = []goldenScenario{
	// TEM double-execution happy path: two copies, comparison matches,
	// commit (Figure 3 scenario i).
	{name: "tem_happy", deadline: des.Millisecond, budget: 200 * des.Microsecond,
		inject: func(*des.Simulator, *kernel.Kernel) {}},
	// A register fault in copy 2 detected by the comparison; third copy
	// and majority vote recover the result (Figure 3 scenario ii).
	{name: "third_copy_vote", deadline: des.Millisecond, budget: 200 * des.Microsecond,
		inject: func(sim *des.Simulator, k *kernel.Kernel) {
			sim.Schedule(120*des.Microsecond, des.PrioInject, func() {
				k.Proc().FlipRegister(6, 7)
			})
		}},
	// A PC fault detected mid copy 2 with a deadline too tight to
	// re-execute: the release ends in an omission (§2.5).
	{name: "omission", deadline: 200 * des.Microsecond, budget: 120 * des.Microsecond,
		inject: func(sim *des.Simulator, k *kernel.Kernel) {
			sim.Schedule(150*des.Microsecond, des.PrioInject, func() {
				k.Proc().FlipPC(13)
			})
		}},
}

// runGoldenScenario replays one scenario and returns its event stream.
func runGoldenScenario(t *testing.T, sc goldenScenario) []obs.Event {
	t.Helper()
	prog, err := cpu.Assemble(goldenTaskSrc)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	col := obs.NewCollector(sc.name)
	k := kernel.New(sim, goldenEnv{}, kernel.Config{Obs: col})
	spec := kernel.TaskSpec{
		Name:        "T",
		Program:     prog,
		Entry:       "start",
		Period:      des.Millisecond,
		Deadline:    sc.deadline,
		Priority:    1,
		Criticality: kernel.Critical,
		Budget:      sc.budget,
		OutputPorts: []uint32{1},
		StackStart:  0xC000,
		StackWords:  64,
	}
	if err := k.AddTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := k.Start(); err != nil {
		t.Fatal(err)
	}
	sc.inject(sim, k)
	if err := sim.RunUntil(des.Millisecond / 2); err != nil {
		t.Fatal(err)
	}
	return col.Events()
}

func TestGoldenTraces(t *testing.T) {
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			events := runGoldenScenario(t, sc)
			if len(events) == 0 {
				t.Fatal("scenario emitted no events")
			}
			var buf bytes.Buffer
			if err := obs.WriteEventsJSONL(&buf, events); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", sc.name+".jsonl")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/obs -run TestGoldenTraces -update` to create)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("trace diverged from %s (rerun with -update if intentional)\ngot:\n%swant:\n%s",
					path, buf.String(), want)
			}
		})
	}
}

// TestGoldenTracesSatisfyInvariants closes the loop between the two
// suites: every checked-in golden stream must pass the TEM invariant
// checker, and the fault-free one additionally the no-critical-omission
// rule.
func TestGoldenTracesSatisfyInvariants(t *testing.T) {
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			events := runGoldenScenario(t, sc)
			for _, v := range obs.CheckInvariants(events) {
				t.Errorf("invariant violated: %v", v)
			}
			if sc.name == "tem_happy" {
				for _, v := range obs.CheckNoCriticalOmission(events) {
					t.Errorf("fault-free invariant violated: %v", v)
				}
			}
		})
	}
}

// TestGoldenTraceKinds pins the qualitative shape of each scenario: the
// happy path must show a comparison match and a commit and nothing
// detected; the vote scenario a mismatch, a third copy and a majority
// vote; the omission scenario a detected error and an omission without
// commit.
func TestGoldenTraceKinds(t *testing.T) {
	kindSet := func(events []obs.Event) map[obs.Kind]bool {
		m := make(map[obs.Kind]bool)
		for _, e := range events {
			m[e.Kind] = true
		}
		return m
	}
	wantByScenario := map[string]struct{ present, absent []obs.Kind }{
		"tem_happy": {
			present: []obs.Kind{obs.KindRelease, obs.KindCompareMatch, obs.KindCommit},
			absent:  []obs.Kind{obs.KindErrorDetected, obs.KindCompareMismatch, obs.KindVote, obs.KindOmission},
		},
		"third_copy_vote": {
			present: []obs.Kind{obs.KindCompareMismatch, obs.KindVote, obs.KindCommit},
			absent:  []obs.Kind{obs.KindOmission, obs.KindFailSilent},
		},
		"omission": {
			present: []obs.Kind{obs.KindErrorDetected, obs.KindOmission},
			absent:  []obs.Kind{obs.KindCommit},
		},
	}
	for _, sc := range goldenScenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			kinds := kindSet(runGoldenScenario(t, sc))
			want := wantByScenario[sc.name]
			for _, k := range want.present {
				if !kinds[k] {
					t.Errorf("scenario %s missing kind %v", sc.name, k)
				}
			}
			for _, k := range want.absent {
				if kinds[k] {
					t.Errorf("scenario %s unexpectedly contains kind %v", sc.name, k)
				}
			}
		})
	}
}
