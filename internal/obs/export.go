package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/des"
)

// jsonEvent is the canonical JSONL wire form of an Event. Field order is
// fixed by the struct, values by the event itself, so identical streams
// produce byte-identical files — the property the golden-trace suite
// diffs against.
type jsonEvent struct {
	At     int64  `json:"at"`
	Kind   string `json:"kind"`
	Node   string `json:"node,omitempty"`
	Task   string `json:"task,omitempty"`
	Copy   int    `json:"copy,omitempty"`
	Detail string `json:"detail,omitempty"`
	Trial  int    `json:"trial,omitempty"`
}

// WriteEventsJSONL writes one JSON object per event, in order.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		je := jsonEvent{
			At:     int64(e.At),
			Kind:   e.Kind.String(),
			Node:   e.Node,
			Task:   e.Task,
			Copy:   e.Copy,
			Detail: e.Detail,
			Trial:  e.Trial,
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEventsJSONL parses a stream written by WriteEventsJSONL.
func ReadEventsJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	dec := json.NewDecoder(r)
	for line := 1; ; line++ {
		var je jsonEvent
		if err := dec.Decode(&je); err == io.EOF {
			return events, nil
		} else if err != nil {
			return nil, fmt.Errorf("obs: events record %d: %w", line, err)
		}
		kind, ok := ParseKind(je.Kind)
		if !ok {
			return nil, fmt.Errorf("obs: events record %d: unknown kind %q", line, je.Kind)
		}
		events = append(events, Event{
			At:     des.Time(je.At),
			Kind:   kind,
			Node:   je.Node,
			Task:   je.Task,
			Copy:   je.Copy,
			Detail: je.Detail,
			Trial:  je.Trial,
		})
	}
}

// WriteCSV exports the registry snapshot as CSV with a fixed header.
// Rows follow the canonical snapshot order.
func (r *Registry) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "name,node,task,mechanism,type,value,count,sum,min,max,p50,p99"); err != nil {
		return err
	}
	for _, p := range r.Snapshot() {
		_, err := fmt.Fprintf(bw, "%s,%s,%s,%s,%s,%g,%d,%g,%g,%g,%g,%g\n",
			csvField(p.Name), csvField(p.Node), csvField(p.Task), csvField(p.Mechanism),
			p.Type, p.Value, p.Count, p.Sum, p.Min, p.Max, p.P50, p.P99)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// csvField quotes a field when it contains CSV metacharacters.
func csvField(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteJSON exports the registry snapshot as an indented JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	type jsonPoint struct {
		Name      string  `json:"name"`
		Node      string  `json:"node,omitempty"`
		Task      string  `json:"task,omitempty"`
		Mechanism string  `json:"mechanism,omitempty"`
		Type      string  `json:"type"`
		Value     float64 `json:"value"`
		Count     uint64  `json:"count,omitempty"`
		Sum       float64 `json:"sum,omitempty"`
		Min       float64 `json:"min,omitempty"`
		Max       float64 `json:"max,omitempty"`
		P50       float64 `json:"p50,omitempty"`
		P99       float64 `json:"p99,omitempty"`
	}
	points := r.Snapshot()
	out := make([]jsonPoint, len(points))
	for i, p := range points {
		out[i] = jsonPoint{
			Name: p.Name, Node: p.Node, Task: p.Task, Mechanism: p.Mechanism,
			Type: p.Type, Value: p.Value, Count: p.Count, Sum: p.Sum,
			Min: p.Min, Max: p.Max, P50: p.P50, P99: p.P99,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteMetricsFile exports the registry to path, as CSV when the name
// ends in ".csv" and as indented JSON otherwise. It is the shared
// implementation behind the CLIs' -metrics-out flags.
func (r *Registry) WriteMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var werr error
	if strings.HasSuffix(path, ".csv") {
		werr = r.WriteCSV(f)
	} else {
		werr = r.WriteJSON(f)
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// WriteEventsFile exports an event stream to path as JSONL. It is the
// shared implementation behind the CLIs' -trace-out flags.
func WriteEventsFile(path string, events []Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := WriteEventsJSONL(f, events)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// digest is an incremental 64-bit FNV-1a hasher.
type digest struct{ h uint64 }

func newDigest() *digest { return &digest{h: 14695981039346656037} }

func (d *digest) byte(b byte) {
	d.h ^= uint64(b)
	d.h *= 1099511628211
}

func (d *digest) string(s string) {
	for i := 0; i < len(s); i++ {
		d.byte(s[i])
	}
	d.byte(0xFF) // field separator
}

func (d *digest) uint64(v uint64) {
	for i := 0; i < 8; i++ {
		d.byte(byte(v >> (8 * i)))
	}
}

func (d *digest) sum() uint64 { return d.h }

// DigestBytes returns the 64-bit FNV-1a digest of raw bytes — the same
// hash DigestEvents chains, exposed for canonical-artifact stamping:
// the exhaustive verifier digests its coverage certificate's canonical
// serialization so the certificate itself is a golden artifact.
func DigestBytes(b []byte) uint64 {
	d := newDigest()
	for _, c := range b {
		d.byte(c)
	}
	return d.sum()
}

// DigestEvents returns a 64-bit FNV-1a digest over the canonical binary
// encoding of the event stream. Two streams digest identically iff every
// field of every event matches in order — the one-comparison equality
// check behind the parallelism-determinism regression tests.
func DigestEvents(events []Event) uint64 {
	d := newDigest()
	for _, e := range events {
		d.uint64(uint64(e.At))
		d.byte(byte(e.Kind))
		d.string(e.Node)
		d.string(e.Task)
		d.uint64(uint64(e.Copy))
		d.string(e.Detail)
		d.uint64(uint64(e.Trial))
	}
	return d.sum()
}
