package obs

import (
	"fmt"
	"strings"
)

// Violation is one invariant breach found in an event stream.
type Violation struct {
	// Rule names the violated invariant.
	Rule string
	// Index is the offending event's position in the checked stream.
	Index int
	// Event is the offending event.
	Event Event
	// Msg explains the breach.
	Msg string
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("%s at #%d (%v): %s", v.Rule, v.Index, v.Event, v.Msg)
}

// Invariant rule names.
const (
	// RuleThirdCopyNeedsError: a third TEM copy is scheduled only after a
	// detected error or a comparison mismatch (Figure 3: the third copy
	// is on-demand, never speculative).
	RuleThirdCopyNeedsError = "third-copy-needs-error"
	// RuleCommitNeedsAgreement: every committed result of a critical task
	// is backed by at least two agreeing copies — a comparison match or a
	// majority vote (§2.5).
	RuleCommitNeedsAgreement = "commit-needs-agreement"
	// RuleOmissionExcludesCommit: omission and commit are mutually
	// exclusive terminal events for one release — a release that
	// committed cannot also be omitted, and vice versa.
	RuleOmissionExcludesCommit = "omission-excludes-commit"
	// RuleNoCriticalOmission: no critical task misses its deadline — only
	// meaningful on fault-free runs, where TEM has nothing to recover.
	RuleNoCriticalOmission = "no-critical-omission"
)

// releaseState tracks one task's current release through the TEM state
// machine.
type releaseState struct {
	critical     bool
	sawDetected  bool // EDM, state CRC, comparison mismatch or failed vote
	sawAgreement bool // comparison match or majority vote
	committed    bool
	omitted      bool
}

// CheckInvariants verifies the TEM state-machine invariants over one
// node's event stream (campaign consumers split the merged stream per
// trial first; see SplitByTrial). It assumes at most one in-flight
// release per task at a time, which holds for every workload in this
// repository (deadline ≤ period). The stream may interleave any number
// of tasks and nodes. Violations are returned in stream order; an empty
// slice means the stream is consistent.
//
// Note: the third-copy rule assumes TEM's on-demand third copy; streams
// produced with the AlwaysTriple ablation intentionally violate it.
func CheckInvariants(events []Event) []Violation {
	var out []Violation
	state := map[[2]string]*releaseState{}
	get := func(e Event) *releaseState {
		k := [2]string{e.Node, e.Task}
		st := state[k]
		if st == nil {
			st = &releaseState{}
			state[k] = st
		}
		return st
	}
	for i, e := range events {
		st := get(e)
		switch e.Kind {
		case KindRelease:
			*st = releaseState{critical: e.Detail == "critical"}
		case KindErrorDetected, KindCompareMismatch, KindStateCRCError:
			st.sawDetected = true
		case KindCompareMatch:
			st.sawAgreement = true
		case KindVote:
			if strings.Contains(e.Detail, "majority found") {
				st.sawAgreement = true
			} else {
				st.sawDetected = true
			}
		case KindCopyStart:
			if e.Copy >= 3 && !st.sawDetected {
				out = append(out, Violation{
					Rule: RuleThirdCopyNeedsError, Index: i, Event: e,
					Msg: "third copy scheduled without a detected error or comparison mismatch",
				})
			}
		case KindCommit:
			if st.critical && !st.sawAgreement {
				out = append(out, Violation{
					Rule: RuleCommitNeedsAgreement, Index: i, Event: e,
					Msg: "critical-task commit without a comparison match or majority vote",
				})
			}
			if st.omitted {
				out = append(out, Violation{
					Rule: RuleOmissionExcludesCommit, Index: i, Event: e,
					Msg: "commit follows an omission for the same release",
				})
			}
			st.committed = true
		case KindOmission:
			if st.committed {
				out = append(out, Violation{
					Rule: RuleOmissionExcludesCommit, Index: i, Event: e,
					Msg: "omission follows a commit for the same release",
				})
			}
			st.omitted = true
		}
	}
	return out
}

// CheckNoCriticalOmission flags every omission of a critical task. It is
// the fault-free-run invariant: with no faults injected, a schedulable
// critical task must never miss a deadline or omit a result.
func CheckNoCriticalOmission(events []Event) []Violation {
	var out []Violation
	critical := map[[2]string]bool{}
	for i, e := range events {
		k := [2]string{e.Node, e.Task}
		switch e.Kind {
		case KindRelease:
			critical[k] = e.Detail == "critical"
		case KindOmission:
			if critical[k] {
				out = append(out, Violation{
					Rule: RuleNoCriticalOmission, Index: i, Event: e,
					Msg: "critical task omitted a result in a fault-free run",
				})
			}
		}
	}
	return out
}

// SplitByTrial groups a campaign-merged event stream by its Trial tag,
// preserving order within each trial. Events with Trial 0 (not part of a
// campaign) are grouped under key 0.
func SplitByTrial(events []Event) map[int][]Event {
	out := map[int][]Event{}
	for _, e := range events {
		out[e.Trial] = append(out[e.Trial], e)
	}
	return out
}
