package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// buildWireTestRegistry exercises every series shape the wire encoding
// must preserve: counters, set and zero-valued gauges, histograms with
// samples, and a zero-count histogram series (created but never
// observed — it still appears in Snapshot/Digest, so losing it on the
// wire would change the digest).
func buildWireTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter(Key{Name: "tem_errors", Node: "n1", Mechanism: "ecc"}).Add(17)
	r.Counter(Key{Name: "tem_errors", Node: "n2", Mechanism: "tem"}).Add(3)
	r.Counter(Key{Name: "trials"}).Inc()
	r.Gauge(Key{Name: "slack_min", Node: "n1"}).Set(0) // set-but-zero: Set flag must survive
	r.Gauge(Key{Name: "util_peak", Node: "n2", Task: "wheel"}).SetMax(0.83)
	h := r.Histogram(Key{Name: "detect_latency", Node: "n1"})
	for _, v := range []uint64{0, 1, 7, 4096, 1 << 40} {
		h.Observe(v)
	}
	r.Histogram(Key{Name: "repair_latency", Node: "n1"}) // zero-count series
	return r
}

func TestRegistryWireRoundTrip(t *testing.T) {
	r := buildWireTestRegistry()
	got := r.Wire().Registry()

	if g, w := got.Digest(), r.Digest(); g != w {
		t.Fatalf("round-trip digest = %#x, want %#x", g, w)
	}
	// Digest hashes summarized rows; also compare the full internal
	// state so bucket vectors (which the digest cannot see) round-trip.
	if len(got.counters) != len(r.counters) || len(got.gauges) != len(r.gauges) || len(got.hists) != len(r.hists) {
		t.Fatalf("series counts: got %d/%d/%d, want %d/%d/%d",
			len(got.counters), len(got.gauges), len(got.hists),
			len(r.counters), len(r.gauges), len(r.hists))
	}
	for k, c := range r.counters {
		if got.CounterValue(k) != c.n {
			t.Errorf("counter %v = %d, want %d", k, got.CounterValue(k), c.n)
		}
	}
	for k, g := range r.gauges {
		gg := got.gauges[k]
		if gg == nil || gg.v != g.v || gg.set != g.set {
			t.Errorf("gauge %v: got %+v, want %+v", k, gg, g)
		}
	}
	for k, h := range r.hists {
		hh := got.hists[k]
		if hh == nil {
			t.Errorf("histogram %v lost on the wire", k)
			continue
		}
		if *hh != *h {
			t.Errorf("histogram %v: got %+v, want %+v", k, *hh, *h)
		}
	}
}

// TestRegistryWireMergeEquivalence is the property the sharded
// orchestrator depends on: merging wire-decoded shard registries in any
// arrival order reproduces the serial merge bit-for-bit.
func TestRegistryWireMergeEquivalence(t *testing.T) {
	a, b := buildWireTestRegistry(), NewRegistry()
	b.Counter(Key{Name: "tem_errors", Node: "n1", Mechanism: "ecc"}).Add(5)
	b.Gauge(Key{Name: "util_peak", Node: "n2", Task: "wheel"}).SetMax(0.91)
	b.Histogram(Key{Name: "detect_latency", Node: "n1"}).Observe(99)

	serial := NewRegistry()
	serial.Merge(a)
	serial.Merge(b)

	for _, order := range [][2]*Registry{{a, b}, {b, a}} {
		merged := NewRegistry()
		for _, src := range order {
			merged.Merge(src.Wire().Registry())
		}
		if g, w := merged.Digest(), serial.Digest(); g != w {
			t.Fatalf("wire-decoded merge digest = %#x, want %#x", g, w)
		}
	}
}

// TestRegistryWireCanonicalJSON: identical registries built in
// different insertion orders must encode to identical bytes — the
// coordinator relies on this to treat spec/registry JSON as canonical.
func TestRegistryWireCanonicalJSON(t *testing.T) {
	a := buildWireTestRegistry()
	b := NewRegistry()
	// Same series, reverse insertion order.
	b.Histogram(Key{Name: "repair_latency", Node: "n1"})
	h := b.Histogram(Key{Name: "detect_latency", Node: "n1"})
	for _, v := range []uint64{0, 1, 7, 4096, 1 << 40} {
		h.Observe(v)
	}
	b.Gauge(Key{Name: "util_peak", Node: "n2", Task: "wheel"}).SetMax(0.83)
	b.Gauge(Key{Name: "slack_min", Node: "n1"}).Set(0)
	b.Counter(Key{Name: "trials"}).Inc()
	b.Counter(Key{Name: "tem_errors", Node: "n2", Mechanism: "tem"}).Add(3)
	b.Counter(Key{Name: "tem_errors", Node: "n1", Mechanism: "ecc"}).Add(17)

	ja, err := json.Marshal(a.Wire())
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Wire())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("wire JSON not canonical:\n%s\n%s", ja, jb)
	}

	var decoded RegistryWire
	if err := json.Unmarshal(ja, &decoded); err != nil {
		t.Fatal(err)
	}
	if g, w := decoded.Registry().Digest(), a.Digest(); g != w {
		t.Fatalf("JSON round-trip digest = %#x, want %#x", g, w)
	}
}

func TestRegistryWireNil(t *testing.T) {
	var r *Registry
	if r.Wire() != nil {
		t.Fatal("nil registry should encode to nil wire")
	}
	var w *RegistryWire
	dec := w.Registry()
	if dec == nil || len(dec.Snapshot()) != 0 {
		t.Fatal("nil wire should decode to an empty registry")
	}
}
