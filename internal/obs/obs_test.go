package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/des"
)

func TestKeyString(t *testing.T) {
	cases := []struct {
		k    Key
		want string
	}{
		{Key{Name: "a"}, "a"},
		{Key{Name: "a", Node: "n1"}, "a{node=n1}"},
		{Key{Name: "a", Node: "n1", Task: "t", Mechanism: "m"}, "a{node=n1,task=t,mechanism=m}"},
		{Key{Name: "a", Mechanism: "m"}, "a{mechanism=m}"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("unset gauge = %g, want 0", g.Value())
	}
	g.SetMax(-2) // first SetMax records even a negative value
	if g.Value() != -2 {
		t.Errorf("gauge after SetMax(-2) = %g, want -2", g.Value())
	}
	g.SetMax(-5)
	if g.Value() != -2 {
		t.Errorf("gauge after SetMax(-5) = %g, want -2 (max kept)", g.Value())
	}
	g.Set(1)
	g.SetMax(7)
	if g.Value() != 7 {
		t.Errorf("gauge = %g, want 7", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for _, v := range []uint64{0, 1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 1106 {
		t.Errorf("count/sum = %d/%d, want 6/1106", h.Count(), h.Sum())
	}
	if h.Min() != 0 || h.Max() != 1000 {
		t.Errorf("min/max = %d/%d, want 0/1000", h.Min(), h.Max())
	}
	if got := h.Mean(); got < 184 || got > 185 {
		t.Errorf("mean = %g, want ~184.3", got)
	}
	// Median falls in the bucket of 2..3; upper bound 3.
	if got := h.Quantile(0.5); got != 3 {
		t.Errorf("p50 = %d, want 3", got)
	}
	// p99 must clamp to the observed max.
	if got := h.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000 (clamped to max)", got)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Errorf("p100 = %d, want 1000", got)
	}
	// A single large sample: quantile clamps to min too.
	var one Histogram
	one.Observe(5)
	if got := one.Quantile(0.01); got != 5 {
		t.Errorf("single-sample p1 = %d, want 5", got)
	}
}

func TestRegistryLookupsAndTotals(t *testing.T) {
	r := NewRegistry()
	k1 := Key{Name: "det", Task: "a", Mechanism: "comparison"}
	k2 := Key{Name: "det", Task: "b", Mechanism: "comparison"}
	k3 := Key{Name: "det", Task: "a", Mechanism: "vote"}
	r.Counter(k1).Add(2)
	r.Counter(k2).Add(3)
	r.Counter(k3).Inc()
	r.Counter(Key{Name: "other"}).Add(100)
	if got := r.CounterValue(k1); got != 2 {
		t.Errorf("CounterValue = %d, want 2", got)
	}
	if got := r.CounterValue(Key{Name: "absent"}); got != 0 {
		t.Errorf("CounterValue(absent) = %d, want 0", got)
	}
	if got := r.CounterTotal("det"); got != 6 {
		t.Errorf("CounterTotal = %d, want 6", got)
	}
	want := map[string]uint64{"comparison": 5, "vote": 1}
	if got := r.MechanismCounts("det"); !reflect.DeepEqual(got, want) {
		t.Errorf("MechanismCounts = %v, want %v", got, want)
	}
}

func TestRegistryMergeOrderIndependent(t *testing.T) {
	build := func() (*Registry, *Registry) {
		a, b := NewRegistry(), NewRegistry()
		a.Counter(Key{Name: "c"}).Add(2)
		b.Counter(Key{Name: "c"}).Add(5)
		a.Gauge(Key{Name: "g"}).Set(3)
		b.Gauge(Key{Name: "g"}).Set(9)
		a.Histogram(Key{Name: "h"}).Observe(10)
		b.Histogram(Key{Name: "h"}).Observe(600)
		b.Histogram(Key{Name: "h"}).Observe(2)
		return a, b
	}
	a1, b1 := build()
	m1 := NewRegistry()
	m1.Merge(a1)
	m1.Merge(b1)
	m1.Merge(nil) // no-op

	a2, b2 := build()
	m2 := NewRegistry()
	m2.Merge(b2)
	m2.Merge(a2)

	if m1.Digest() != m2.Digest() {
		t.Fatalf("merge order changed digest: %x vs %x", m1.Digest(), m2.Digest())
	}
	if got := m1.CounterValue(Key{Name: "c"}); got != 7 {
		t.Errorf("merged counter = %d, want 7", got)
	}
	if got := m1.Gauge(Key{Name: "g"}).Value(); got != 9 {
		t.Errorf("merged gauge = %g, want 9 (max)", got)
	}
	h := m1.Histogram(Key{Name: "h"})
	if h.Count() != 3 || h.Min() != 2 || h.Max() != 600 {
		t.Errorf("merged histogram count/min/max = %d/%d/%d, want 3/2/600",
			h.Count(), h.Min(), h.Max())
	}
}

func TestSnapshotCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	r.Gauge(Key{Name: "b"}).Set(1)
	r.Counter(Key{Name: "a", Node: "n2"}).Inc()
	r.Counter(Key{Name: "a", Node: "n1"}).Inc()
	r.Histogram(Key{Name: "a", Node: "n1", Task: "t"}).Observe(1)
	points := r.Snapshot()
	var order []string
	for _, p := range points {
		order = append(order, p.Key.String()+"/"+p.Type)
	}
	want := []string{"a{node=n1}/counter", "a{node=n1,task=t}/histogram", "a{node=n2}/counter", "b/gauge"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("snapshot order = %v, want %v", order, want)
	}
}

func TestKindNamesRoundTrip(t *testing.T) {
	for k := Kind(1); k < kindCount; k++ {
		name := k.String()
		if strings.Contains(name, "kind(") {
			t.Fatalf("kind %d has no name", k)
		}
		back, ok := ParseKind(name)
		if !ok || back != k {
			t.Errorf("ParseKind(%q) = %v/%v, want %v", name, back, ok, k)
		}
		if kindMetricNames[k] == "" {
			t.Errorf("kind %v has no metric series name", k)
		}
	}
	if _, ok := ParseKind("bogus"); ok {
		t.Error("ParseKind accepted an unknown name")
	}
	if got := Kind(99).String(); got != "kind(99)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 42 * des.Microsecond, Kind: KindErrorDetected, Node: "n1",
		Task: "T", Copy: 2, Detail: "illegal-opcode"}
	s := e.String()
	for _, want := range []string{"error-detected", "n1", "T", "copy=2", "illegal-opcode"} {
		if !strings.Contains(s, want) {
			t.Errorf("event string %q missing %q", s, want)
		}
	}
}

func TestCollectorEmitAndLimits(t *testing.T) {
	c := NewCollector("n1")
	if c.NodeLabel() != "n1" {
		t.Errorf("node label = %q", c.NodeLabel())
	}
	c.SetEventLimit(2)
	c.Emit(Event{Kind: KindRelease, Task: "T", Detail: "critical"})
	c.Emit(Event{Kind: KindErrorDetected, Task: "T", Detail: "trap"})
	c.Emit(Event{Kind: KindCommit, Task: "T"}) // over the cap: dropped, still counted
	if len(c.Events()) != 2 {
		t.Fatalf("events retained = %d, want 2", len(c.Events()))
	}
	if c.Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", c.Dropped())
	}
	if c.Events()[0].Node != "n1" {
		t.Errorf("node not stamped: %q", c.Events()[0].Node)
	}
	// Metrics count all three emissions, with mechanism label only on
	// the detection event.
	reg := c.Registry()
	if got := reg.CounterValue(Key{Name: "events.release", Node: "n1", Task: "T"}); got != 1 {
		t.Errorf("events.release = %d, want 1", got)
	}
	if got := reg.CounterValue(Key{Name: "events.error_detected", Node: "n1", Task: "T", Mechanism: "trap"}); got != 1 {
		t.Errorf("events.error_detected{mechanism=trap} = %d, want 1", got)
	}
	if got := reg.CounterValue(Key{Name: "events.commit", Node: "n1", Task: "T"}); got != 1 {
		t.Errorf("events.commit = %d, want 1 (dropped events still count)", got)
	}

	// Disabled events: metrics only.
	d := NewCollector("")
	d.SetEventLimit(-1)
	d.Emit(Event{Kind: KindRelease})
	if len(d.Events()) != 0 {
		t.Error("disabled stream retained events")
	}
	if got := d.Registry().CounterTotal("events.release"); got != 1 {
		t.Errorf("metrics with disabled stream = %d, want 1", got)
	}
	d.SetEventLimit(0) // re-enable, unlimited
	d.Emit(Event{Kind: KindRelease})
	if len(d.Events()) != 1 {
		t.Error("re-enabled stream did not retain")
	}

	// Nil collector: all methods are no-ops.
	var nc *Collector
	nc.Emit(Event{Kind: KindRelease})
	if nc.Events() != nil || nc.Dropped() != 0 || nc.Labeled("x") != nil {
		t.Error("nil collector misbehaved")
	}
}

func TestLabeledViewsShareState(t *testing.T) {
	c := NewCollector("root")
	a := c.Labeled("a")
	b := c.Labeled("b")
	a.Emit(Event{Kind: KindRelease, Task: "T"})
	b.Emit(Event{Kind: KindRelease, Task: "T"})
	b.Counter("x", "", "").Inc()
	if got := len(c.Events()); got != 2 {
		t.Fatalf("shared stream has %d events, want 2", got)
	}
	if c.Events()[0].Node != "a" || c.Events()[1].Node != "b" {
		t.Errorf("labels = %q,%q", c.Events()[0].Node, c.Events()[1].Node)
	}
	if got := c.Registry().CounterValue(Key{Name: "x", Node: "b"}); got != 1 {
		t.Errorf("labeled counter = %d, want 1", got)
	}
	// The collector-scoped helpers stamp the node label.
	a.Gauge("g", "t").Set(2)
	a.Histogram("h", "t").Observe(3)
	if c.Registry().Gauge(Key{Name: "g", Node: "a", Task: "t"}).Value() != 2 {
		t.Error("gauge helper lost node label")
	}
	if c.Registry().Histogram(Key{Name: "h", Node: "a", Task: "t"}).Count() != 1 {
		t.Error("histogram helper lost node label")
	}
}

func TestAttachSimulator(t *testing.T) {
	c := NewCollector("sim")
	sim := des.New()
	AttachSimulator(c, sim)
	AttachSimulator(nil, sim) // nil-safe: must not detach or panic
	sim.Schedule(0, des.PrioInject, func() {})
	sim.Schedule(1, des.PrioKernel, func() {})
	sim.Schedule(1, des.PrioDispatch, func() {})
	sim.Schedule(2, des.PrioObserver, func() {})
	sim.Schedule(2, des.PrioNetwork, func() {})
	if err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	reg := c.Registry()
	for band, want := range map[string]uint64{
		"inject": 1, "kernel": 1, "dispatch": 1, "observer": 1, "network": 1,
	} {
		if got := reg.CounterValue(Key{Name: "des.events_fired", Node: "sim", Mechanism: band}); got != want {
			t.Errorf("events_fired{%s} = %d, want %d", band, got, want)
		}
	}
	if peak := reg.Gauge(Key{Name: "des.pending_peak", Node: "sim"}).Value(); peak < 1 {
		t.Errorf("pending_peak = %g, want >= 1", peak)
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	events := []Event{
		{At: 0, Kind: KindRelease, Node: "n", Task: "T", Detail: "critical"},
		{At: 100, Kind: KindCopyStart, Task: "T", Copy: 1},
		{At: 250, Kind: KindErrorDetected, Task: "T", Copy: 2, Detail: "trap", Trial: 7},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Errorf("round trip mismatch:\n%v\n%v", events, back)
	}
	if _, err := ReadEventsJSONL(strings.NewReader(`{"at":0,"kind":"nope"}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := ReadEventsJSONL(strings.NewReader(`{bad json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestDigestEvents(t *testing.T) {
	a := []Event{{At: 1, Kind: KindRelease, Task: "T"}}
	b := []Event{{At: 1, Kind: KindRelease, Task: "T"}}
	if DigestEvents(a) != DigestEvents(b) {
		t.Error("identical streams digest differently")
	}
	b[0].Copy = 1
	if DigestEvents(a) == DigestEvents(b) {
		t.Error("differing streams digest identically")
	}
	// Field boundaries matter: ("ab","c") must differ from ("a","bc").
	x := []Event{{Node: "ab", Task: "c"}}
	y := []Event{{Node: "a", Task: "bc"}}
	if DigestEvents(x) == DigestEvents(y) {
		t.Error("field-boundary collision in digest")
	}
}

func TestRegistryCSVAndJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter(Key{Name: "c", Node: "n,1"}).Add(3) // comma forces quoting
	r.Histogram(Key{Name: "h"}).Observe(10)
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d, want 3 (header + 2 rows):\n%s", len(lines), csv.String())
	}
	if lines[0] != "name,node,task,mechanism,type,value,count,sum,min,max,p50,p99" {
		t.Errorf("csv header = %q", lines[0])
	}
	if !strings.Contains(csv.String(), `"n,1"`) {
		t.Errorf("comma field not quoted:\n%s", csv.String())
	}
	if got := csvField(`say "hi"`); got != `"say ""hi"""` {
		t.Errorf("csvField quote escape = %q", got)
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"name": "c"`, `"type": "histogram"`, `"value": 3`} {
		if !strings.Contains(js.String(), want) {
			t.Errorf("json missing %s:\n%s", want, js.String())
		}
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	r.Counter(Key{Name: "c"}).Inc()

	csvPath := filepath.Join(dir, "m.csv")
	if err := r.WriteMetricsFile(csvPath); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "name,node,task") {
		t.Errorf("csv file content:\n%s", data)
	}

	jsonPath := filepath.Join(dir, "m.json")
	if err := r.WriteMetricsFile(jsonPath); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(data)), "[") {
		t.Errorf("json file content:\n%s", data)
	}

	evPath := filepath.Join(dir, "e.jsonl")
	events := []Event{{At: 1, Kind: KindCommit, Task: "T"}}
	if err := WriteEventsFile(evPath, events); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(evPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	back, err := ReadEventsJSONL(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, back) {
		t.Errorf("file round trip mismatch: %v vs %v", events, back)
	}

	if err := r.WriteMetricsFile(filepath.Join(dir, "no/such/dir.csv")); err == nil {
		t.Error("WriteMetricsFile to missing dir succeeded")
	}
	if err := WriteEventsFile(filepath.Join(dir, "no/such/dir.jsonl"), nil); err == nil {
		t.Error("WriteEventsFile to missing dir succeeded")
	}
}

// invariantEvents builds a well-formed TEM release sequence.
func invariantEvents(task string) []Event {
	return []Event{
		{At: 0, Kind: KindRelease, Task: task, Detail: "critical"},
		{At: 1, Kind: KindCopyStart, Task: task, Copy: 1},
		{At: 2, Kind: KindCopyEnd, Task: task, Copy: 1},
		{At: 3, Kind: KindCopyStart, Task: task, Copy: 2},
		{At: 4, Kind: KindCopyEnd, Task: task, Copy: 2},
		{At: 5, Kind: KindCompareMatch, Task: task},
		{At: 6, Kind: KindCommit, Task: task, Detail: "ok"},
	}
}

func TestCheckInvariantsCleanStream(t *testing.T) {
	events := append(invariantEvents("A"), invariantEvents("B")...)
	if v := CheckInvariants(events); len(v) != 0 {
		t.Errorf("clean stream flagged: %v", v)
	}
}

func TestCheckInvariantsThirdCopyPath(t *testing.T) {
	// Mismatch then third copy and majority vote: legal.
	events := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindCompareMismatch, Task: "T"},
		{Kind: KindCopyStart, Task: "T", Copy: 3},
		{Kind: KindVote, Task: "T", Detail: "majority found (copies 1,3)"},
		{Kind: KindCommit, Task: "T", Detail: "masked"},
	}
	if v := CheckInvariants(events); len(v) != 0 {
		t.Errorf("legal third-copy path flagged: %v", v)
	}
	// Speculative third copy: violation.
	bad := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindCopyStart, Task: "T", Copy: 3},
	}
	v := CheckInvariants(bad)
	if len(v) != 1 || v[0].Rule != RuleThirdCopyNeedsError {
		t.Errorf("speculative third copy: %v", v)
	}
	if !strings.Contains(v[0].String(), RuleThirdCopyNeedsError) {
		t.Errorf("violation string: %q", v[0].String())
	}
}

func TestCheckInvariantsCommitNeedsAgreement(t *testing.T) {
	bad := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindCommit, Task: "T"},
	}
	v := CheckInvariants(bad)
	if len(v) != 1 || v[0].Rule != RuleCommitNeedsAgreement {
		t.Errorf("agreement-less commit: %v", v)
	}
	// A failed vote does not count as agreement.
	bad2 := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindVote, Task: "T", Detail: "no majority"},
		{Kind: KindCommit, Task: "T"},
	}
	v2 := CheckInvariants(bad2)
	if len(v2) != 1 || v2[0].Rule != RuleCommitNeedsAgreement {
		t.Errorf("commit after failed vote: %v", v2)
	}
	// Non-critical tasks commit without comparison.
	ok := []Event{
		{Kind: KindRelease, Task: "T", Detail: "non-critical"},
		{Kind: KindCommit, Task: "T"},
	}
	if v := CheckInvariants(ok); len(v) != 0 {
		t.Errorf("non-critical commit flagged: %v", v)
	}
}

func TestCheckInvariantsOmissionExcludesCommit(t *testing.T) {
	bad := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindCompareMatch, Task: "T"},
		{Kind: KindCommit, Task: "T"},
		{Kind: KindOmission, Task: "T"},
	}
	v := CheckInvariants(bad)
	if len(v) != 1 || v[0].Rule != RuleOmissionExcludesCommit {
		t.Errorf("omission after commit: %v", v)
	}
	bad2 := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindOmission, Task: "T"},
		{Kind: KindCompareMatch, Task: "T"},
		{Kind: KindCommit, Task: "T"},
	}
	v2 := CheckInvariants(bad2)
	if len(v2) != 1 || v2[0].Rule != RuleOmissionExcludesCommit {
		t.Errorf("commit after omission: %v", v2)
	}
	// A new release resets the state machine.
	ok := []Event{
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindOmission, Task: "T", Detail: "deadline"},
		{Kind: KindRelease, Task: "T", Detail: "critical"},
		{Kind: KindCompareMatch, Task: "T"},
		{Kind: KindCommit, Task: "T"},
	}
	if v := CheckInvariants(ok); len(v) != 0 {
		t.Errorf("release reset not honored: %v", v)
	}
}

func TestCheckNoCriticalOmission(t *testing.T) {
	events := []Event{
		{Kind: KindRelease, Task: "A", Detail: "critical"},
		{Kind: KindRelease, Task: "B", Detail: "non-critical"},
		{Kind: KindOmission, Task: "B"},
	}
	if v := CheckNoCriticalOmission(events); len(v) != 0 {
		t.Errorf("non-critical omission flagged: %v", v)
	}
	events = append(events, Event{Kind: KindOmission, Task: "A"})
	v := CheckNoCriticalOmission(events)
	if len(v) != 1 || v[0].Rule != RuleNoCriticalOmission {
		t.Errorf("critical omission: %v", v)
	}
}

func TestSplitByTrial(t *testing.T) {
	events := []Event{
		{At: 1, Trial: 1}, {At: 2, Trial: 2}, {At: 3, Trial: 1}, {At: 4},
	}
	byTrial := SplitByTrial(events)
	if len(byTrial) != 3 {
		t.Fatalf("groups = %d, want 3", len(byTrial))
	}
	if len(byTrial[1]) != 2 || byTrial[1][0].At != 1 || byTrial[1][1].At != 3 {
		t.Errorf("trial 1 order broken: %v", byTrial[1])
	}
	if len(byTrial[0]) != 1 {
		t.Errorf("trial 0 (non-campaign) = %v", byTrial[0])
	}
}

func TestPrioBand(t *testing.T) {
	cases := map[int]string{
		des.PrioInject:   "inject",
		des.PrioNetwork:  "network",
		des.PrioKernel:   "kernel",
		des.PrioDispatch: "dispatch",
		des.PrioObserver: "observer",
		-1000:            "inject",
		1000:             "observer",
	}
	for prio, want := range cases {
		if got := prioBand(prio); got != want {
			t.Errorf("prioBand(%d) = %q, want %q", prio, got, want)
		}
	}
}
