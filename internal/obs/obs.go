// Package obs is the observability layer of the NLFT reproduction: a
// metrics registry (counters, gauges, histograms keyed by
// node·task·mechanism), a structured event stream with typed records for
// every step of the temporal-error-masking state machine (release,
// dispatch, error detection, comparison, vote, commit, omission,
// fail-silence), and deterministic JSONL/CSV exporters.
//
// The paper's argument rests on counting what TEM does — which errors
// are masked locally and which escalate to omission or fail-silence —
// so the instrumentation is designed to be auditable: collectors are
// single-goroutine and merged deterministically (the fault campaign
// merges per-trial collectors in trial-index order whatever the worker
// count), exports are canonically ordered, and digests make equality
// checkable in one comparison. Golden-trace and invariant test suites
// assert against this surface instead of scraping stdout.
//
// Hot-path discipline: Emit performs no allocation beyond the amortized
// growth of the preallocated event buffer, and metric lookups use
// comparable struct keys, so telemetry stays off the campaign's
// critical path (BenchmarkCampaignParallel runs with telemetry on).
package obs

import (
	"fmt"

	"repro/internal/des"
)

// Kind labels one structured event record.
type Kind uint8

// Event kinds, covering the TEM state machine of the paper's Figure 3
// plus scheduler-level records.
const (
	// KindRelease: a task release; Detail carries the criticality.
	KindRelease Kind = iota + 1
	// KindDispatch: the scheduler switched the CPU to a job.
	KindDispatch
	// KindCopyStart: a TEM copy began executing (Copy = 1, 2 or 3).
	KindCopyStart
	// KindCopyEnd: a copy finished normally; Detail carries its result CRC.
	KindCopyEnd
	// KindPreempt: a higher-priority job preempted the copy mid-flight.
	KindPreempt
	// KindResume: a preempted copy's context was restored.
	KindResume
	// KindErrorDetected: an EDM fired; Detail names the mechanism.
	KindErrorDetected
	// KindCompareMatch: double-execution results agreed.
	KindCompareMatch
	// KindCompareMismatch: the comparison detected an error.
	KindCompareMismatch
	// KindVote: the third-copy majority vote ran; Detail is the verdict.
	KindVote
	// KindCommit: a result left the node; Detail is the release outcome.
	KindCommit
	// KindOmission: no result by the deadline; Detail is the reason.
	KindOmission
	// KindTaskShutdown: a non-critical task was stopped after an error.
	KindTaskShutdown
	// KindFailSilent: the node went silent; Detail is the reason.
	KindFailSilent
	// KindStateCRCError: the data-integrity check caught state corruption.
	KindStateCRCError

	kindCount
)

var kindNames = [kindCount]string{
	KindRelease:         "release",
	KindDispatch:        "dispatch",
	KindCopyStart:       "copy-start",
	KindCopyEnd:         "copy-end",
	KindPreempt:         "preempt",
	KindResume:          "resume",
	KindErrorDetected:   "error-detected",
	KindCompareMatch:    "compare-match",
	KindCompareMismatch: "compare-mismatch",
	KindVote:            "vote",
	KindCommit:          "commit",
	KindOmission:        "omission",
	KindTaskShutdown:    "task-shutdown",
	KindFailSilent:      "fail-silent",
	KindStateCRCError:   "state-crc-error",
}

// kindMetricNames maps each kind to the counter series its emission
// increments. Precomputed so Emit never builds strings.
var kindMetricNames = [kindCount]string{
	KindRelease:         "events.release",
	KindDispatch:        "events.dispatch",
	KindCopyStart:       "events.copy_start",
	KindCopyEnd:         "events.copy_end",
	KindPreempt:         "events.preempt",
	KindResume:          "events.resume",
	KindErrorDetected:   "events.error_detected",
	KindCompareMatch:    "events.compare_match",
	KindCompareMismatch: "events.compare_mismatch",
	KindVote:            "events.vote",
	KindCommit:          "events.commit",
	KindOmission:        "events.omission",
	KindTaskShutdown:    "events.task_shutdown",
	KindFailSilent:      "events.fail_silent",
	KindStateCRCError:   "events.state_crc_error",
}

// String names the kind.
func (k Kind) String() string {
	if k > 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ParseKind resolves a kind name produced by String.
func ParseKind(s string) (Kind, bool) {
	for k := Kind(1); k < kindCount; k++ {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one structured telemetry record.
type Event struct {
	// At is the simulated instant of the event.
	At des.Time
	// Kind classifies the record.
	Kind Kind
	// Node labels the emitting node ("" for single-node runs).
	Node string
	// Task names the task, when applicable.
	Task string
	// Copy is the TEM copy index (1–3), 0 when not applicable.
	Copy int
	// Detail carries the mechanism name, outcome, vote verdict or reason.
	Detail string
	// Trial is the 1-based fault-campaign trial the event belongs to;
	// 0 means the event is not part of a campaign.
	Trial int
}

// String renders the record for humans.
func (e Event) String() string {
	s := fmt.Sprintf("[%12v] %-17s", e.At, e.Kind)
	if e.Node != "" {
		s += " " + e.Node
	}
	if e.Task != "" {
		s += " " + e.Task
	}
	if e.Copy > 0 {
		s += fmt.Sprintf(" copy=%d", e.Copy)
	}
	if e.Detail != "" {
		s += " " + e.Detail
	}
	return s
}

// stream is the shared event buffer behind a collector and its labeled
// views.
type stream struct {
	events   []Event
	limit    int // 0 unlimited, >0 cap, <0 events disabled
	dropped  uint64
	disabled bool
}

func (s *stream) append(e Event) {
	if s.disabled {
		return
	}
	if s.limit > 0 && len(s.events) >= s.limit {
		s.dropped++
		return
	}
	s.events = append(s.events, e)
}

// Collector couples a metrics registry with an event stream. It is the
// unit of telemetry ownership: one collector per kernel instance, trial
// or scenario, merged (via Registry.Merge and event concatenation) into
// campaign-level aggregates. Collectors are not synchronized; each is
// owned by one goroutine.
type Collector struct {
	//nlft:snapshot-skip configuration label fixed at construction
	node string
	reg  *Registry
	s    *stream

	// Per-(node,task) cache of the events.* counters, so the common case
	// — a run of emissions for the same task — resolves each counter by
	// two string equality checks and an array index instead of hashing a
	// four-string key per event. Restore invalidates it (the counter
	// pointers may be stale after the registry rewind).
	//nlft:snapshot-skip derived lookup cache, invalidated on restore
	cacheNode string
	//nlft:snapshot-skip derived lookup cache, invalidated on restore
	cacheTask string
	//nlft:snapshot-skip derived lookup cache, invalidated on restore
	kindCache [kindCount]*Counter
}

// NewCollector returns a collector whose emitted events are labeled with
// node (may be empty).
func NewCollector(node string) *Collector {
	return &Collector{node: node, reg: NewRegistry(), s: &stream{}}
}

// Labeled returns a view of c that stamps events and metric keys with a
// different node label while sharing c's registry and event buffer. The
// brake-by-wire system uses one labeled view per kernel node. Labeled on
// a nil collector returns nil, so call sites can pass the result through
// unconditionally.
func (c *Collector) Labeled(node string) *Collector {
	if c == nil {
		return nil
	}
	return &Collector{node: node, reg: c.reg, s: c.s}
}

// NodeLabel reports the label stamped on emitted events.
func (c *Collector) NodeLabel() string { return c.node }

// Registry exposes the metrics registry.
func (c *Collector) Registry() *Registry { return c.reg }

// SetEventLimit bounds the retained events: n > 0 caps the buffer
// (further events are dropped and counted), n < 0 disables event
// retention entirely (metrics only), n == 0 removes the bound. A
// positive cap preallocates the buffer so steady-state emission does not
// allocate.
func (c *Collector) SetEventLimit(n int) {
	switch {
	case n < 0:
		c.s.disabled = true
	case n == 0:
		c.s.limit = 0
		c.s.disabled = false
	default:
		c.s.limit = n
		c.s.disabled = false
		if cap(c.s.events) < n {
			grown := make([]Event, len(c.s.events), n)
			copy(grown, c.s.events)
			c.s.events = grown
		}
	}
}

// Emit records one event: it is appended to the stream (subject to the
// limit) and counted in the registry under the kind's events.* series,
// keyed by node, task and — for detection events — mechanism.
func (c *Collector) Emit(e Event) {
	if c == nil {
		return
	}
	if e.Node == "" {
		e.Node = c.node
	}
	if e.Kind > 0 && e.Kind < kindCount {
		if e.Kind == KindErrorDetected {
			// Detection counters are additionally keyed by mechanism
			// (carried in Detail), so they bypass the kind cache.
			c.reg.Counter(Key{Name: kindMetricNames[e.Kind], Node: e.Node, Task: e.Task, Mechanism: e.Detail}).Inc()
		} else {
			if e.Node != c.cacheNode || e.Task != c.cacheTask {
				c.cacheNode, c.cacheTask = e.Node, e.Task
				c.kindCache = [kindCount]*Counter{}
			}
			ctr := c.kindCache[e.Kind]
			if ctr == nil {
				ctr = c.reg.Counter(Key{Name: kindMetricNames[e.Kind], Node: e.Node, Task: e.Task})
				c.kindCache[e.Kind] = ctr
			}
			ctr.Inc()
		}
	}
	c.s.append(e)
}

// Events returns the retained events in emission order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	return c.s.events
}

// Dropped reports how many events the limit discarded.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	return c.s.dropped
}

// Counter resolves a counter in the collector's registry with the
// collector's node label.
func (c *Collector) Counter(name, task, mechanism string) *Counter {
	return c.reg.Counter(Key{Name: name, Node: c.node, Task: task, Mechanism: mechanism})
}

// Gauge resolves a gauge with the collector's node label.
func (c *Collector) Gauge(name, task string) *Gauge {
	return c.reg.Gauge(Key{Name: name, Node: c.node, Task: task})
}

// Histogram resolves a histogram with the collector's node label.
func (c *Collector) Histogram(name, task string) *Histogram {
	return c.reg.Histogram(Key{Name: name, Node: c.node, Task: task})
}

// bandNames are the des tie-break bands, indexed by prioBandIndex.
var bandNames = [5]string{"inject", "network", "kernel", "dispatch", "observer"}

// prioBandIndex maps an event priority to its band index.
func prioBandIndex(prio int) int {
	switch {
	case prio <= des.PrioInject:
		return 0
	case prio <= des.PrioNetwork:
		return 1
	case prio <= des.PrioKernel:
		return 2
	case prio <= des.PrioDispatch:
		return 3
	default:
		return 4
	}
}

// prioBand names the des tie-break band of an event priority.
func prioBand(prio int) string { return bandNames[prioBandIndex(prio)] }

// AttachSimulator instruments a discrete-event simulator: every fired
// event increments a des.events_fired counter keyed by its priority
// band, and the des.pending_peak gauge tracks the deepest event queue
// observed. The counters are resolved once here, so the per-event hook
// is an array index, a pointer increment and a gauge compare — no map
// lookup or hashing on the simulation's hot path.
func AttachSimulator(c *Collector, sim *des.Simulator) {
	if c == nil || sim == nil {
		return
	}
	var bands [len(bandNames)]*Counter
	for i, b := range bandNames {
		bands[i] = c.Counter("des.events_fired", "", b)
	}
	peak := c.Gauge("des.pending_peak", "")
	sim.SetEventObserver(func(at des.Time, prio int) {
		bands[prioBandIndex(prio)].Inc()
		peak.SetMax(float64(sim.Pending()))
	})
}
