package obs

// CollectorState is preallocated scratch for Collector.Snapshot/Restore,
// used by the checkpoint/fork campaign engine: a forked trial rewinds
// its worker's collector to the golden prefix's telemetry so that the
// trial's final registry and event stream are bit-identical to a trial
// simulated from scratch. Construct with NewCollectorState.
type CollectorState struct {
	counters map[Key]uint64
	gauges   map[Key]Gauge
	hists    map[Key]Histogram
	events   []Event
	dropped  uint64
	limit    int
	disabled bool
}

// NewCollectorState returns scratch ready for Snapshot, with maps
// pre-sized like the registry's own.
func NewCollectorState() *CollectorState {
	return &CollectorState{
		counters: make(map[Key]uint64, 48),
		gauges:   make(map[Key]Gauge, 4),
		hists:    make(map[Key]Histogram, 4),
	}
}

// Snapshot copies the collector's registry values and event stream into
// st. Series are captured by value (not by pointer), so a later Restore
// can rewind the live series objects in place without invalidating
// pointers that instrumented components cached at build time.
//
//nlft:noalloc
func (c *Collector) Snapshot(into *CollectorState) {
	clear(into.counters)
	//nlft:allow nodeterminism capture order is irrelevant: entries refill maps keyed identically on restore
	for k, ctr := range c.reg.counters {
		into.counters[k] = ctr.n
	}
	clear(into.gauges)
	//nlft:allow nodeterminism capture order is irrelevant: entries refill maps keyed identically on restore
	for k, g := range c.reg.gauges {
		into.gauges[k] = *g
	}
	clear(into.hists)
	//nlft:allow nodeterminism capture order is irrelevant: entries refill maps keyed identically on restore
	for k, h := range c.reg.hists {
		into.hists[k] = *h
	}
	into.events = append(into.events[:0], c.s.events...)
	into.dropped = c.s.dropped
	into.limit = c.s.limit
	into.disabled = c.s.disabled
}

// Restore rewinds the collector to a state captured from the same
// instance with Snapshot. Series that existed at capture time are
// restored in place — the Counter/Gauge/Histogram objects persist, so
// pointers resolved before the capture (the kernel's cached cycle
// counters, AttachSimulator's band counters) remain valid. Series
// created after the capture are deleted, and the collector's kind-cache
// is invalidated because it may point at them. The restored event
// buffer is copied back in full: a previous forked trial may have
// overwritten the tail of the shared buffer, so truncation alone would
// resurrect the wrong suffix.
//
//nlft:noalloc
func (c *Collector) Restore(from *CollectorState) {
	r := c.reg
	//nlft:allow nodeterminism in-place value restore per key; iteration order cannot affect the resulting registry
	for k, v := range from.counters {
		r.Counter(k).n = v
	}
	//nlft:allow nodeterminism deleting every live key absent from the snapshot; order cannot affect the surviving set
	for k := range r.counters {
		if _, ok := from.counters[k]; !ok {
			delete(r.counters, k)
		}
	}
	//nlft:allow nodeterminism in-place value restore per key; iteration order cannot affect the resulting registry
	for k, v := range from.gauges {
		*r.Gauge(k) = v
	}
	//nlft:allow nodeterminism deleting every live key absent from the snapshot; order cannot affect the surviving set
	for k := range r.gauges {
		if _, ok := from.gauges[k]; !ok {
			delete(r.gauges, k)
		}
	}
	//nlft:allow nodeterminism in-place value restore per key; iteration order cannot affect the resulting registry
	for k, v := range from.hists {
		*r.Histogram(k) = v
	}
	//nlft:allow nodeterminism deleting every live key absent from the snapshot; order cannot affect the surviving set
	for k := range r.hists {
		if _, ok := from.hists[k]; !ok {
			delete(r.hists, k)
		}
	}
	c.s.events = append(c.s.events[:0], from.events...)
	c.s.dropped = from.dropped
	c.s.limit = from.limit
	c.s.disabled = from.disabled
	// The kind cache may hold pointers to series deleted above.
	c.cacheNode, c.cacheTask = "", ""
	c.kindCache = [kindCount]*Counter{}
}
