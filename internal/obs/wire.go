package obs

// The canonical wire encoding of a Registry. The sharded campaign
// orchestrator (internal/shard) streams each worker shard's merged
// registry back to the coordinator, which folds the shards through
// Registry.Merge. That only reproduces the serial campaign's registry
// bit-for-bit if the wire form is lossless — histograms must carry
// their full bucket vectors, not the summarized MetricPoint rows the
// exporters flatten to — and canonical, so the same registry always
// encodes to the same bytes regardless of map iteration order.
//
// Round-trip contract (guarded by TestRegistryWireRoundTrip): for any
// registry r, r.Wire().Registry() holds exactly r's series with exactly
// r's values, so its Digest equals r's and merging the decoded copy is
// indistinguishable from merging the original.

import "sort"

// KeyWire is the wire form of a series key.
type KeyWire struct {
	Name      string `json:"name"`
	Node      string `json:"node,omitempty"`
	Task      string `json:"task,omitempty"`
	Mechanism string `json:"mechanism,omitempty"`
}

func keyWire(k Key) KeyWire {
	return KeyWire{Name: k.Name, Node: k.Node, Task: k.Task, Mechanism: k.Mechanism}
}

// Key converts the wire form back to a registry key.
func (k KeyWire) Key() Key {
	return Key{Name: k.Name, Node: k.Node, Task: k.Task, Mechanism: k.Mechanism}
}

// less orders keys canonically: (Name, Node, Task, Mechanism) is a
// total order because it uniquely identifies a series.
func (k KeyWire) less(o KeyWire) bool {
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	if k.Node != o.Node {
		return k.Node < o.Node
	}
	if k.Task != o.Task {
		return k.Task < o.Task
	}
	return k.Mechanism < o.Mechanism
}

// CounterWire is one counter series on the wire.
type CounterWire struct {
	Key   KeyWire `json:"key"`
	Value uint64  `json:"value"`
}

// GaugeWire is one gauge series on the wire. Set distinguishes a gauge
// that recorded 0 from one never set (merges ignore unset gauges).
type GaugeWire struct {
	Key   KeyWire `json:"key"`
	Value float64 `json:"value"`
	Set   bool    `json:"set"`
}

// HistogramWire is one histogram series on the wire, carrying the full
// bucket vector (trailing zero buckets trimmed; decode re-pads) so the
// decoded histogram observes-equivalent state, not a lossy summary.
type HistogramWire struct {
	Key     KeyWire  `json:"key"`
	Buckets []uint64 `json:"buckets,omitempty"`
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
}

// RegistryWire is the canonical, lossless wire encoding of a Registry.
// Series are sorted by key, so identical registries encode identically
// (encoding/json preserves slice order and struct field order).
type RegistryWire struct {
	Counters []CounterWire   `json:"counters,omitempty"`
	Gauges   []GaugeWire     `json:"gauges,omitempty"`
	Hists    []HistogramWire `json:"histograms,omitempty"`
}

// Wire encodes the registry canonically. A nil registry encodes to nil.
func (r *Registry) Wire() *RegistryWire {
	if r == nil {
		return nil
	}
	w := &RegistryWire{}
	//nlft:allow nodeterminism collection order is erased by the canonical sort below
	for k, c := range r.counters {
		w.Counters = append(w.Counters, CounterWire{Key: keyWire(k), Value: c.n})
	}
	//nlft:allow nodeterminism collection order is erased by the canonical sort below
	for k, g := range r.gauges {
		w.Gauges = append(w.Gauges, GaugeWire{Key: keyWire(k), Value: g.v, Set: g.set})
	}
	//nlft:allow nodeterminism collection order is erased by the canonical sort below
	for k, h := range r.hists {
		hw := HistogramWire{Key: keyWire(k), Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
		top := len(h.buckets)
		for top > 0 && h.buckets[top-1] == 0 {
			top--
		}
		if top > 0 {
			hw.Buckets = append([]uint64(nil), h.buckets[:top]...)
		}
		w.Hists = append(w.Hists, hw)
	}
	//nlft:allow nodeterminism the comparator is a total order: a key uniquely identifies a series
	sort.Slice(w.Counters, func(i, j int) bool { return w.Counters[i].Key.less(w.Counters[j].Key) })
	//nlft:allow nodeterminism the comparator is a total order: a key uniquely identifies a series
	sort.Slice(w.Gauges, func(i, j int) bool { return w.Gauges[i].Key.less(w.Gauges[j].Key) })
	//nlft:allow nodeterminism the comparator is a total order: a key uniquely identifies a series
	sort.Slice(w.Hists, func(i, j int) bool { return w.Hists[i].Key.less(w.Hists[j].Key) })
	return w
}

// Registry decodes the wire form into a fresh registry holding exactly
// the encoded series and values. A nil wire decodes to an empty
// registry (so merge sites need no nil checks).
func (w *RegistryWire) Registry() *Registry {
	r := NewRegistry()
	if w == nil {
		return r
	}
	for _, c := range w.Counters {
		r.Counter(c.Key.Key()).n = c.Value
	}
	for _, g := range w.Gauges {
		dst := r.Gauge(g.Key.Key())
		dst.v, dst.set = g.Value, g.Set
	}
	for _, h := range w.Hists {
		dst := r.Histogram(h.Key.Key())
		copy(dst.buckets[:], h.Buckets)
		dst.count, dst.sum, dst.min, dst.max = h.Count, h.Sum, h.Min, h.Max
	}
	return r
}
