package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Key identifies one metric series: a metric name plus the node, task
// and mechanism labels of the paper's accounting dimensions. Unused
// labels stay empty. Key is a comparable value type so registry lookups
// never allocate.
type Key struct {
	Name      string
	Node      string
	Task      string
	Mechanism string
}

// String renders the key in a prometheus-like form.
func (k Key) String() string {
	s := k.Name
	sep := "{"
	add := func(label, v string) {
		if v != "" {
			s += sep + label + "=" + v
			sep = ","
		}
	}
	add("node", k.Node)
	add("task", k.Task)
	add("mechanism", k.Mechanism)
	if sep == "," {
		s += "}"
	}
	return s
}

// Counter is a monotonically increasing count. It is not synchronized:
// each collector is owned by one goroutine (one trial, one simulation),
// and cross-goroutine aggregation happens by merging registries.
type Counter struct{ n uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d uint64) { c.n += d }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a last/extreme-value metric. Merging registries keeps the
// maximum, which makes the merge order-independent (peak semantics).
type Gauge struct {
	v   float64
	set bool
}

// Set records v.
func (g *Gauge) Set(v float64) { g.v, g.set = v, true }

// SetMax records v only if it exceeds the current value.
func (g *Gauge) SetMax(v float64) {
	if !g.set || v > g.v {
		g.Set(v)
	}
}

// Value reports the current value (0 when never set).
func (g *Gauge) Value() float64 { return g.v }

// histBuckets is one bucket per value bit-length: bucket i holds values
// whose bits.Len64 is i, i.e. [2^(i-1), 2^i). Bucket 0 holds zero.
const histBuckets = 65

// Histogram accumulates a distribution of uint64 samples (cycle counts,
// queue depths) into power-of-two buckets.
type Histogram struct {
	buckets  [histBuckets]uint64
	count    uint64
	sum      uint64
	min, max uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bits.Len64(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() uint64 { return h.sum }

// Min and Max report the extreme samples (0 when empty).
func (h *Histogram) Min() uint64 { return h.min }

// Max reports the largest sample (0 when empty).
func (h *Histogram) Max() uint64 { return h.max }

// Mean reports the average sample (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count crosses q, clamped to the
// observed extremes.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	threshold := uint64(math.Ceil(q * float64(h.count)))
	if threshold == 0 {
		threshold = 1
	}
	var cum uint64
	for i, n := range h.buckets {
		cum += n
		if cum >= threshold {
			upper := uint64(0)
			if i > 0 {
				upper = 1<<uint(i) - 1
			}
			if upper > h.max {
				upper = h.max
			}
			if upper < h.min {
				upper = h.min
			}
			return upper
		}
	}
	return h.max
}

// Registry holds metric series keyed by Key. The zero value is not
// usable; construct with NewRegistry. A registry is single-goroutine;
// parallel producers each own one and merge afterwards.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
}

// NewRegistry returns an empty registry. The counter map is pre-sized
// for the ~40 series a single kernel trial produces, so per-trial
// collectors do not pay incremental map growth.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter, 48),
		gauges:   make(map[Key]*Gauge, 4),
		hists:    make(map[Key]*Histogram, 4),
	}
}

// Counter returns the counter for k, creating it at zero if absent.
func (r *Registry) Counter(k Key) *Counter {
	c := r.counters[k]
	if c == nil {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for k, creating it if absent.
func (r *Registry) Gauge(k Key) *Gauge {
	g := r.gauges[k]
	if g == nil {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// Histogram returns the histogram for k, creating it if absent.
func (r *Registry) Histogram(k Key) *Histogram {
	h := r.hists[k]
	if h == nil {
		h = &Histogram{}
		r.hists[k] = h
	}
	return h
}

// CounterValue reports the counter's value without creating the series.
func (r *Registry) CounterValue(k Key) uint64 {
	if c := r.counters[k]; c != nil {
		return c.n
	}
	return 0
}

// CounterTotal sums every counter named name across all label values.
func (r *Registry) CounterTotal(name string) uint64 {
	var total uint64
	//nlft:allow nodeterminism commutative sum; iteration order cannot affect the total
	for k, c := range r.counters {
		if k.Name == name {
			total += c.n
		}
	}
	return total
}

// MechanismCounts collects the counters named name grouped by their
// mechanism label, summed over the other labels. The campaign layer uses
// it to recompute Table 1 coverage from exported metrics.
func (r *Registry) MechanismCounts(name string) map[string]uint64 {
	out := make(map[string]uint64)
	//nlft:allow nodeterminism commutative per-key sums into a map; iteration order cannot affect the result
	for k, c := range r.counters {
		if k.Name == name {
			out[k.Mechanism] += c.n
		}
	}
	return out
}

// Merge folds other into r: counters and histograms add, gauges keep the
// maximum. All operations are commutative and associative, so any merge
// order yields the same registry.
//
//nlft:merge
func (r *Registry) Merge(other *Registry) {
	if other == nil {
		return
	}
	//nlft:allow nodeterminism counter merge adds, which commutes; iteration order cannot affect the result
	for k, c := range other.counters {
		r.Counter(k).Add(c.n)
	}
	//nlft:allow nodeterminism gauge merge keeps the maximum, which commutes; iteration order cannot affect the result
	for k, g := range other.gauges {
		if g.set {
			r.Gauge(k).SetMax(g.v)
		}
	}
	//nlft:allow nodeterminism histogram merge adds buckets and widens extremes, which commutes
	for k, h := range other.hists {
		dst := r.Histogram(k)
		if h.count == 0 {
			continue
		}
		for i, n := range h.buckets {
			dst.buckets[i] += n
		}
		if dst.count == 0 || h.min < dst.min {
			dst.min = h.min
		}
		if h.max > dst.max {
			dst.max = h.max
		}
		dst.count += h.count
		dst.sum += h.sum
	}
}

// MetricPoint is one exported metric row.
type MetricPoint struct {
	Key
	Type  string  // "counter", "gauge" or "histogram"
	Value float64 // counter or gauge value; histogram mean
	Count uint64  // histogram sample count
	Sum   float64 // histogram sum
	Min   float64 // histogram minimum
	Max   float64 // histogram maximum
	P50   float64 // histogram median estimate
	P99   float64 // histogram 99th-percentile estimate
}

// Snapshot flattens the registry into rows sorted by (Name, Node, Task,
// Mechanism, Type) — a canonical order independent of map iteration, so
// exports and digests are deterministic.
func (r *Registry) Snapshot() []MetricPoint {
	points := make([]MetricPoint, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	//nlft:allow nodeterminism collection order is erased by the canonical sort below
	for k, c := range r.counters {
		points = append(points, MetricPoint{Key: k, Type: "counter", Value: float64(c.n)})
	}
	//nlft:allow nodeterminism collection order is erased by the canonical sort below
	for k, g := range r.gauges {
		points = append(points, MetricPoint{Key: k, Type: "gauge", Value: g.v})
	}
	//nlft:allow nodeterminism collection order is erased by the canonical sort below
	for k, h := range r.hists {
		points = append(points, MetricPoint{
			Key: k, Type: "histogram",
			Value: h.Mean(), Count: h.count, Sum: float64(h.sum),
			Min: float64(h.min), Max: float64(h.max),
			P50: float64(h.Quantile(0.5)), P99: float64(h.Quantile(0.99)),
		})
	}
	//nlft:allow nodeterminism the comparator is a total order: (Name, Node, Task, Mechanism, Type) uniquely identifies a series
	sort.Slice(points, func(i, j int) bool {
		a, b := &points[i], &points[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Task != b.Task {
			return a.Task < b.Task
		}
		if a.Mechanism != b.Mechanism {
			return a.Mechanism < b.Mechanism
		}
		return a.Type < b.Type
	})
	return points
}

// Digest returns a 64-bit FNV-1a digest of the canonical snapshot.
// Registries with identical series digest identically regardless of
// construction or merge order.
func (r *Registry) Digest() uint64 {
	d := newDigest()
	for _, p := range r.Snapshot() {
		d.string(p.Name)
		d.string(p.Node)
		d.string(p.Task)
		d.string(p.Mechanism)
		d.string(p.Type)
		d.string(fmt.Sprintf("%g/%d/%g/%g/%g", p.Value, p.Count, p.Sum, p.Min, p.Max))
	}
	return d.sum()
}
