package sched

import (
	"strings"
	"testing"

	"repro/internal/des"
)

func TestParseTaskSet(t *testing.T) {
	src := `
# brake-by-wire node
task brake 1ms 10ms 10ms 10
task slip  1ms 20ms           # D defaults to T
task diag  2ms 100ms 80ms
`
	tasks, err := ParseTaskSet(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].Name != "brake" || tasks[0].C != des.Millisecond ||
		tasks[0].T != 10*des.Millisecond || tasks[0].Criticality != 10 {
		t.Errorf("brake = %+v", tasks[0])
	}
	if tasks[1].D != tasks[1].T {
		t.Errorf("slip D = %v, want T", tasks[1].D)
	}
	if tasks[2].D != 80*des.Millisecond || tasks[2].Criticality != 0 {
		t.Errorf("diag = %+v", tasks[2])
	}
}

func TestParseTaskSetErrors(t *testing.T) {
	cases := map[string]string{
		"bad keyword":     "job x 1ms 2ms",
		"too few fields":  "task x 1ms",
		"too many fields": "task x 1ms 2ms 2ms 1 extra",
		"bad C":           "task x zz 2ms",
		"bad T":           "task x 1ms zz",
		"bad D":           "task x 1ms 2ms zz",
		"bad criticality": "task x 1ms 2ms 2ms high",
		"C > D":           "task x 3ms 2ms",
		"duplicate":       "task x 1ms 2ms\ntask x 1ms 2ms",
		"empty":           "# nothing here",
	}
	for name, src := range cases {
		if _, err := ParseTaskSet(strings.NewReader(src)); err == nil {
			t.Errorf("%s: parsed %q without error", name, src)
		}
	}
}

func TestParseTaskSetRoundTripAnalysis(t *testing.T) {
	src := "task a 1ms 10ms 10ms 5\ntask b 2ms 20ms 20ms 3\n"
	tasks, err := ParseTaskSet(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	assigned := AssignByCriticality(tasks)
	rs, err := Analyze(assigned)
	if err != nil {
		t.Fatal(err)
	}
	if !Schedulable(rs) {
		t.Error("trivial parsed set not schedulable")
	}
}
