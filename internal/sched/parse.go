package sched

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/des"
)

// ParseTaskSet reads a task-set description, one task per line:
//
//	# comment
//	task NAME C T [D [CRITICALITY]]
//
// Durations use Go syntax (e.g. 500us, 3ms, 1s); D defaults to T and
// criticality to 0 (non-critical). Priorities are left unassigned for
// the caller (deadline-monotonic, criticality or Audsley).
func ParseTaskSet(r io.Reader) ([]Task, error) {
	var tasks []Task
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		if fields[0] != "task" {
			return nil, fmt.Errorf("sched: line %d: expected 'task', got %q", line, fields[0])
		}
		if len(fields) < 4 || len(fields) > 6 {
			return nil, fmt.Errorf("sched: line %d: task NAME C T [D [CRIT]]", line)
		}
		t := Task{Name: fields[1]}
		var err error
		if t.C, err = parseDur(fields[2]); err != nil {
			return nil, fmt.Errorf("sched: line %d: C: %w", line, err)
		}
		if t.T, err = parseDur(fields[3]); err != nil {
			return nil, fmt.Errorf("sched: line %d: T: %w", line, err)
		}
		t.D = t.T
		if len(fields) >= 5 {
			if t.D, err = parseDur(fields[4]); err != nil {
				return nil, fmt.Errorf("sched: line %d: D: %w", line, err)
			}
		}
		if len(fields) == 6 {
			crit, err := strconv.Atoi(fields[5])
			if err != nil {
				return nil, fmt.Errorf("sched: line %d: criticality: %w", line, err)
			}
			t.Criticality = crit
		}
		tasks = append(tasks, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sched: read: %w", err)
	}
	if err := ValidateSet(tasks); err != nil {
		return nil, err
	}
	return tasks, nil
}

// parseDur converts a Go duration literal to des.Time.
func parseDur(s string) (des.Time, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return des.Time(d.Nanoseconds()), nil
}
