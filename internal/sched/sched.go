// Package sched provides fixed-priority schedulability analysis for the
// paper's real-time requirements (§2.8): classic response-time analysis
// (RTA), deadline-monotonic and criticality-based priority assignment,
// and the fault-tolerant RTA of Burns/Punnekkat that reserves slack for
// error recovery — the a priori guarantee that a TEM third copy can run
// without any critical task missing its deadline.
//
// Times are des.Time (simulated nanoseconds), matching the kernel.
package sched

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/des"
)

// Task is one periodic (or sporadic, with T the minimal inter-arrival
// time) task for analysis.
type Task struct {
	// Name identifies the task in reports.
	Name string
	// C is the worst-case execution time of one copy.
	C des.Time
	// T is the period (or minimal inter-arrival time).
	T des.Time
	// D is the relative deadline (D ≤ T for this analysis).
	D des.Time
	// Priority: higher value = higher priority. Assign explicitly or via
	// AssignDeadlineMonotonic / AssignByCriticality.
	Priority int
	// Criticality expresses the consequence of failure (paper §2.8: "a
	// brake request is assigned a higher priority than a diagnostic
	// request"). Higher is more critical.
	Criticality int
	// Recovery is the extra execution needed to recover this task from
	// one error (for TEM: one more copy plus the vote).
	Recovery des.Time
}

// Validate checks a task's parameters.
func (t Task) Validate() error {
	if t.Name == "" {
		return errors.New("sched: task without name")
	}
	if t.C <= 0 {
		return fmt.Errorf("sched: task %s: C = %v", t.Name, t.C)
	}
	if t.T <= 0 {
		return fmt.Errorf("sched: task %s: T = %v", t.Name, t.T)
	}
	if t.D <= 0 || t.D > t.T {
		return fmt.Errorf("sched: task %s: D = %v not in (0, T=%v]", t.Name, t.D, t.T)
	}
	if t.C > t.D {
		return fmt.Errorf("sched: task %s: C = %v exceeds D = %v", t.Name, t.C, t.D)
	}
	if t.Recovery < 0 {
		return fmt.Errorf("sched: task %s: negative recovery", t.Name)
	}
	return nil
}

// ValidateSet checks every task and that names are unique. (Priority
// uniqueness is checked by the analyses, not here, so that assignment
// helpers can accept sets with priorities not yet assigned.)
func ValidateSet(tasks []Task) error {
	if len(tasks) == 0 {
		return errors.New("sched: empty task set")
	}
	names := make(map[string]bool, len(tasks))
	for _, t := range tasks {
		if err := t.Validate(); err != nil {
			return err
		}
		if names[t.Name] {
			return fmt.Errorf("sched: duplicate task name %q", t.Name)
		}
		names[t.Name] = true
	}
	return nil
}

// validatePriorities checks that priorities are pairwise distinct.
func validatePriorities(tasks []Task) error {
	prios := make(map[int]bool, len(tasks))
	for _, t := range tasks {
		if prios[t.Priority] {
			return fmt.Errorf("sched: duplicate priority %d (task %s)", t.Priority, t.Name)
		}
		prios[t.Priority] = true
	}
	return nil
}

// Utilization returns ΣC/T.
func Utilization(tasks []Task) float64 {
	u := 0.0
	for _, t := range tasks {
		u += float64(t.C) / float64(t.T)
	}
	return u
}

// AssignDeadlineMonotonic assigns priorities by deadline (shorter deadline
// = higher priority; ties broken by name for determinism). It returns a
// new slice, leaving the input untouched.
func AssignDeadlineMonotonic(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	sort.Slice(out, func(i, j int) bool {
		if out[i].D != out[j].D {
			return out[i].D < out[j].D
		}
		return out[i].Name < out[j].Name
	})
	for i := range out {
		out[i].Priority = len(out) - i
	}
	return out
}

// AssignByCriticality assigns priorities by criticality first (the
// paper's policy), breaking ties by deadline then name.
func AssignByCriticality(tasks []Task) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Criticality != out[j].Criticality {
			return out[i].Criticality > out[j].Criticality
		}
		if out[i].D != out[j].D {
			return out[i].D < out[j].D
		}
		return out[i].Name < out[j].Name
	})
	for i := range out {
		out[i].Priority = len(out) - i
	}
	return out
}

// Response holds a task's RTA outcome.
type Response struct {
	Task Task
	// R is the worst-case response time; valid only when Schedulable.
	R des.Time
	// Schedulable reports whether R ≤ D was proven.
	Schedulable bool
}

// rtaLimit caps fixpoint iterations; exceeded means divergence
// (unschedulable).
const rtaLimit = 10000

// Analyze runs classic response-time analysis:
//
//	Rᵢ = Cᵢ + Σ_{j ∈ hp(i)} ⌈Rᵢ/Tⱼ⌉·Cⱼ
//
// iterated to a fixed point for each task.
func Analyze(tasks []Task) ([]Response, error) {
	return analyze(tasks, 0, false)
}

// AnalyzeWithFaults runs the fault-tolerant RTA of Burns et al.: on top
// of the preemption interference, the analysis reserves time for error
// recoveries arriving at most every faultInterval:
//
//	Rᵢ = Cᵢ + Σ_{j ∈ hp(i)} ⌈Rᵢ/Tⱼ⌉·Cⱼ + ⌈Rᵢ/T_F⌉ · max_{j ∈ hep(i)} Recⱼ
//
// where hep(i) is the set of tasks at priority ≥ i (any of them may be
// the one recovering inside task i's busy window).
func AnalyzeWithFaults(tasks []Task, faultInterval des.Time) ([]Response, error) {
	if faultInterval <= 0 {
		return nil, fmt.Errorf("sched: fault interval %v", faultInterval)
	}
	return analyze(tasks, faultInterval, true)
}

func analyze(tasks []Task, faultInterval des.Time, withFaults bool) ([]Response, error) {
	if err := ValidateSet(tasks); err != nil {
		return nil, err
	}
	if err := validatePriorities(tasks); err != nil {
		return nil, err
	}
	sorted := make([]Task, len(tasks))
	copy(sorted, tasks)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Priority > sorted[j].Priority })

	out := make([]Response, 0, len(sorted))
	for i, t := range sorted {
		hp := sorted[:i]
		// Max recovery among this task and all higher-priority tasks.
		var maxRec des.Time
		if withFaults {
			maxRec = t.Recovery
			for _, h := range hp {
				if h.Recovery > maxRec {
					maxRec = h.Recovery
				}
			}
		}
		r := t.C
		converged := false
		for iter := 0; iter < rtaLimit; iter++ {
			next := t.C
			for _, h := range hp {
				next += ceilDiv(r, h.T) * h.C
			}
			if withFaults {
				next += ceilDiv(r, faultInterval) * maxRec
			}
			if next == r {
				converged = true
				break
			}
			if next > t.D {
				// Response already exceeds the deadline; no need to
				// iterate to convergence.
				r = next
				break
			}
			r = next
		}
		out = append(out, Response{Task: t, R: r, Schedulable: converged && r <= t.D})
	}
	return out, nil
}

// ceilDiv returns ⌈a/b⌉ for positive a, b.
func ceilDiv(a, b des.Time) des.Time {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Schedulable reports whether every response in the set met its deadline.
func Schedulable(rs []Response) bool {
	for _, r := range rs {
		if !r.Schedulable {
			return false
		}
	}
	return true
}

// MaxFaultRate finds (by binary search over the fault inter-arrival time)
// the highest fault arrival rate, in faults per hour, for which the task
// set remains schedulable under AnalyzeWithFaults. It returns 0 when even
// a single recovery per hyperperiod is too much, and +Inf when the set
// tolerates a recovery every shortest-deadline window.
func MaxFaultRate(tasks []Task) (float64, error) {
	if err := ValidateSet(tasks); err != nil {
		return 0, err
	}
	// Lower bound on useful intervals: the shortest deadline (a fault per
	// busy window, the densest the analysis can express).
	minD := tasks[0].D
	for _, t := range tasks {
		if t.D < minD {
			minD = t.D
		}
	}
	ok := func(interval des.Time) bool {
		rs, err := AnalyzeWithFaults(tasks, interval)
		return err == nil && Schedulable(rs)
	}
	if ok(minD) {
		return float64(des.Hour) / float64(minD) / 1, nil // rate at densest expressible interval
	}
	lo, hi := minD, des.Time(des.Hour)*24*365
	if !ok(hi) {
		return 0, nil
	}
	// Binary search the smallest schedulable interval in [lo, hi].
	for hi-lo > des.Microsecond {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return float64(des.Hour) / float64(hi), nil
}

// TEMOverheads parameterizes the execution-time costs of temporal error
// masking for TEMTransform.
type TEMOverheads struct {
	// Compare is the cost of comparing two results.
	Compare des.Time
	// Vote is the cost of the majority vote on three results.
	Vote des.Time
}

// TEMTransform rewrites a task set for TEM execution: every critical task
// (criticality > 0) runs two copies plus a comparison in the fault-free
// case (C' = 2C + Compare), and recovery from one error costs a third
// copy plus the vote (Recovery = C + Vote). Non-critical tasks are left
// unchanged with zero recovery (they are shut down on error, §2.2).
func TEMTransform(tasks []Task, ov TEMOverheads) []Task {
	out := make([]Task, len(tasks))
	copy(out, tasks)
	for i := range out {
		if out[i].Criticality > 0 {
			out[i].Recovery = out[i].C + ov.Vote
			out[i].C = 2*out[i].C + ov.Compare
		} else {
			out[i].Recovery = 0
		}
	}
	return out
}

// AssignAudsley performs Audsley's optimal priority assignment under the
// fault-tolerant analysis: it finds some priority ordering making the set
// schedulable with the given fault interval iff one exists, returning the
// tasks with priorities assigned (lowest first search).
func AssignAudsley(tasks []Task, faultInterval des.Time) ([]Task, bool, error) {
	if err := ValidateSet(tasks); err != nil {
		return nil, false, err
	}
	remaining := make([]Task, len(tasks))
	copy(remaining, tasks)
	assigned := make([]Task, 0, len(tasks))
	// Assign priorities from lowest (1) to highest (n).
	for level := 1; len(remaining) > 0; level++ {
		found := -1
		for i := range remaining {
			// Tentatively: remaining[i] at this lowest level, all other
			// unassigned tasks above it (exact order irrelevant for the
			// lowest task's response time).
			trial := make([]Task, 0, len(tasks))
			cand := remaining[i]
			cand.Priority = level
			trial = append(trial, cand)
			p := level + 1
			for j := range remaining {
				if j == i {
					continue
				}
				t := remaining[j]
				t.Priority = p
				p++
				trial = append(trial, t)
			}
			// Keep priorities of already-assigned (lower) tasks distinct
			// below the current level: they do not affect cand's response.
			var rs []Response
			var err error
			if faultInterval > 0 {
				rs, err = AnalyzeWithFaults(trial, faultInterval)
			} else {
				rs, err = Analyze(trial)
			}
			if err != nil {
				return nil, false, err
			}
			schedulableAtLevel := false
			for _, r := range rs {
				if r.Task.Name == cand.Name {
					schedulableAtLevel = r.Schedulable
				}
			}
			if schedulableAtLevel {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, false, nil
		}
		t := remaining[found]
		t.Priority = level
		assigned = append(assigned, t)
		remaining = append(remaining[:found], remaining[found+1:]...)
	}
	return assigned, true, nil
}
