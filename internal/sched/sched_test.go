package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

// ms converts milliseconds to des.Time for readable test fixtures.
func ms(v int64) des.Time { return des.Time(v) * des.Millisecond }

// classicSet is the textbook three-task example (Burns & Wellings):
// C/T/D in ms: (3, 20, 20), (10, 40, 40), (5, 80, 80) with rate-monotonic
// priorities. Worst-case response times by hand: 3, 13, 18.
func classicSet() []Task {
	return []Task{
		{Name: "a", C: ms(3), T: ms(20), D: ms(20), Priority: 3},
		{Name: "b", C: ms(10), T: ms(40), D: ms(40), Priority: 2},
		{Name: "c", C: ms(5), T: ms(80), D: ms(80), Priority: 1},
	}
}

func respOf(t *testing.T, rs []Response, name string) Response {
	t.Helper()
	for _, r := range rs {
		if r.Task.Name == name {
			return r
		}
	}
	t.Fatalf("no response for %q", name)
	return Response{}
}

func TestTaskValidate(t *testing.T) {
	good := Task{Name: "x", C: ms(1), T: ms(10), D: ms(10)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := map[string]Task{
		"no name":     {C: ms(1), T: ms(10), D: ms(10)},
		"zero C":      {Name: "x", T: ms(10), D: ms(10)},
		"zero T":      {Name: "x", C: ms(1), D: ms(10)},
		"D > T":       {Name: "x", C: ms(1), T: ms(10), D: ms(20)},
		"C > D":       {Name: "x", C: ms(5), T: ms(10), D: ms(4)},
		"negative re": {Name: "x", C: ms(1), T: ms(10), D: ms(10), Recovery: -1},
	}
	for name, task := range cases {
		if err := task.Validate(); err == nil {
			t.Errorf("%s: accepted %+v", name, task)
		}
	}
}

func TestValidateSet(t *testing.T) {
	if err := ValidateSet(nil); err == nil {
		t.Error("empty set accepted")
	}
	dup := []Task{
		{Name: "x", C: ms(1), T: ms(10), D: ms(10), Priority: 1},
		{Name: "x", C: ms(1), T: ms(10), D: ms(10), Priority: 2},
	}
	if err := ValidateSet(dup); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestAnalyzeClassicExample(t *testing.T) {
	rs, err := Analyze(classicSet())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]des.Time{"a": ms(3), "b": ms(13), "c": ms(18)}
	for name, r := range want {
		got := respOf(t, rs, name)
		if !got.Schedulable {
			t.Errorf("%s not schedulable", name)
		}
		if got.R != r {
			t.Errorf("R(%s) = %v, want %v", name, got.R, r)
		}
	}
}

func TestAnalyzeDuplicatePriorities(t *testing.T) {
	set := classicSet()
	set[1].Priority = set[0].Priority
	if _, err := Analyze(set); err == nil {
		t.Error("duplicate priorities accepted")
	}
}

func TestAnalyzeUnschedulable(t *testing.T) {
	// Utilization > 1 cannot be schedulable.
	set := []Task{
		{Name: "a", C: ms(15), T: ms(20), D: ms(20), Priority: 2},
		{Name: "b", C: ms(10), T: ms(25), D: ms(25), Priority: 1},
	}
	rs, err := Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	if Schedulable(rs) {
		t.Error("overloaded set reported schedulable")
	}
	if respOf(t, rs, "a").Schedulable != true {
		t.Error("highest-priority task must still be schedulable")
	}
}

func TestUtilization(t *testing.T) {
	u := Utilization(classicSet())
	want := 3.0/20 + 10.0/40 + 5.0/80
	if math.Abs(u-want) > 1e-12 {
		t.Errorf("U = %v, want %v", u, want)
	}
}

func TestAssignDeadlineMonotonic(t *testing.T) {
	set := []Task{
		{Name: "slow", C: ms(1), T: ms(100), D: ms(100)},
		{Name: "fast", C: ms(1), T: ms(10), D: ms(10)},
		{Name: "mid", C: ms(1), T: ms(50), D: ms(50)},
	}
	out := AssignDeadlineMonotonic(set)
	prio := map[string]int{}
	for _, t2 := range out {
		prio[t2.Name] = t2.Priority
	}
	if !(prio["fast"] > prio["mid"] && prio["mid"] > prio["slow"]) {
		t.Errorf("priorities %v", prio)
	}
	// Input untouched.
	if set[0].Priority != 0 {
		t.Error("input mutated")
	}
}

func TestAssignByCriticality(t *testing.T) {
	set := []Task{
		{Name: "diagnostic", C: ms(1), T: ms(10), D: ms(10), Criticality: 1},
		{Name: "brake", C: ms(1), T: ms(100), D: ms(100), Criticality: 10},
	}
	out := AssignByCriticality(set)
	prio := map[string]int{}
	for _, t2 := range out {
		prio[t2.Name] = t2.Priority
	}
	// The paper's example: the brake request outranks the diagnostic even
	// though its deadline is longer.
	if !(prio["brake"] > prio["diagnostic"]) {
		t.Errorf("priorities %v", prio)
	}
}

func TestAnalyzeWithFaultsAddsRecoveryInterference(t *testing.T) {
	set := classicSet()
	for i := range set {
		set[i].Recovery = set[i].C // re-execution recovery
	}
	// With a fault at most once per 100 ms, task c's response grows by
	// the largest recovery among tasks at its level or above (10 ms).
	rs, err := AnalyzeWithFaults(set, ms(100))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Analyze(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a", "b", "c"} {
		ft := respOf(t, rs, name)
		base := respOf(t, plain, name)
		if ft.R <= base.R {
			t.Errorf("%s: fault-tolerant R %v not above plain %v", name, ft.R, base.R)
		}
	}
	if !Schedulable(rs) {
		t.Error("set with ample slack reported unschedulable")
	}
	// c by hand: R = 5 + ⌈31/20⌉·3 + ⌈31/40⌉·10 + ⌈31/100⌉·10 = 31.
	if got := respOf(t, rs, "c"); got.R != ms(31) {
		t.Errorf("R(c) = %v, want 31ms", got.R)
	}
}

func TestAnalyzeWithFaultsDenseFaultsUnschedulable(t *testing.T) {
	set := classicSet()
	for i := range set {
		set[i].Recovery = set[i].C
	}
	rs, err := AnalyzeWithFaults(set, ms(1))
	if err != nil {
		t.Fatal(err)
	}
	if Schedulable(rs) {
		t.Error("a fault every 1 ms should overwhelm the set")
	}
	if _, err := AnalyzeWithFaults(set, 0); err == nil {
		t.Error("zero fault interval accepted")
	}
}

func TestMaxFaultRateOrdering(t *testing.T) {
	set := classicSet()
	for i := range set {
		set[i].Recovery = set[i].C
	}
	rate, err := MaxFaultRate(set)
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Fatalf("rate = %v", rate)
	}
	// The rate must be consistent: schedulable at the reported interval.
	interval := des.Time(float64(des.Hour) / rate)
	rs, err := AnalyzeWithFaults(set, interval)
	if err != nil {
		t.Fatal(err)
	}
	if !Schedulable(rs) {
		t.Errorf("not schedulable at reported max rate %v/h", rate)
	}
	// A tighter set tolerates fewer faults.
	tight := classicSet()
	for i := range tight {
		tight[i].C *= 2
		tight[i].Recovery = tight[i].C
	}
	tightRate, err := MaxFaultRate(tight)
	if err != nil {
		t.Fatal(err)
	}
	if tightRate >= rate {
		t.Errorf("tighter set tolerates %v/h >= %v/h", tightRate, rate)
	}
}

func TestMaxFaultRateZeroWhenNoSlack(t *testing.T) {
	// A set so loaded that even one recovery a year does not fit.
	set := []Task{
		{Name: "a", C: ms(10), T: ms(20), D: ms(20), Priority: 2, Recovery: ms(10)},
		{Name: "b", C: ms(9), T: ms(19), D: ms(19), Priority: 1, Recovery: ms(9)},
	}
	rate, err := MaxFaultRate(set)
	if err != nil {
		t.Fatal(err)
	}
	if rate != 0 {
		t.Errorf("rate = %v, want 0", rate)
	}
}

func TestTEMTransform(t *testing.T) {
	ov := TEMOverheads{Compare: ms(1), Vote: ms(2)}
	set := []Task{
		{Name: "critical", C: ms(5), T: ms(50), D: ms(50), Criticality: 5},
		{Name: "logging", C: ms(3), T: ms(50), D: ms(50), Criticality: 0},
	}
	out := TEMTransform(set, ov)
	crit := out[0]
	if crit.C != ms(11) { // 2·5 + 1
		t.Errorf("critical C = %v, want 11ms", crit.C)
	}
	if crit.Recovery != ms(7) { // 5 + 2
		t.Errorf("critical recovery = %v, want 7ms", crit.Recovery)
	}
	log := out[1]
	if log.C != ms(3) || log.Recovery != 0 {
		t.Errorf("non-critical transformed: %+v", log)
	}
	// Input untouched.
	if set[0].C != ms(5) {
		t.Error("input mutated")
	}
}

func TestTEMSchedulabilityEndToEnd(t *testing.T) {
	// The paper's workflow: start from raw WCETs, apply TEM, check that
	// the doubled execution plus reserved recovery slack still meets all
	// deadlines at the anticipated fault rate.
	raw := []Task{
		{Name: "brake", C: ms(2), T: ms(20), D: ms(20), Criticality: 10},
		{Name: "slip", C: ms(3), T: ms(40), D: ms(40), Criticality: 8},
		{Name: "diag", C: ms(4), T: ms(160), D: ms(160), Criticality: 0},
	}
	tem := TEMTransform(raw, TEMOverheads{Compare: ms(1) / 10, Vote: ms(1) / 5})
	tem = AssignByCriticality(tem)
	rs, err := AnalyzeWithFaults(tem, ms(500))
	if err != nil {
		t.Fatal(err)
	}
	if !Schedulable(rs) {
		for _, r := range rs {
			t.Logf("%s: R=%v D=%v sched=%v", r.Task.Name, r.R, r.Task.D, r.Schedulable)
		}
		t.Fatal("TEM-transformed BBW-style set should be schedulable")
	}
}

func TestAssignAudsleyFindsFeasibleOrder(t *testing.T) {
	// DM fails on this set under fault recovery, but Audsley's algorithm
	// must find an order iff one exists; at minimum it must succeed where
	// DM succeeds.
	set := classicSet()
	for i := range set {
		set[i].Recovery = set[i].C
		set[i].Priority = 0
	}
	assigned, ok, err := AssignAudsley(set, ms(100))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("no feasible assignment found")
	}
	rs, err := AnalyzeWithFaults(assigned, ms(100))
	if err != nil {
		t.Fatal(err)
	}
	if !Schedulable(rs) {
		t.Error("Audsley assignment not schedulable")
	}
}

func TestAssignAudsleyInfeasible(t *testing.T) {
	set := []Task{
		{Name: "a", C: ms(15), T: ms(20), D: ms(20)},
		{Name: "b", C: ms(10), T: ms(25), D: ms(25)},
	}
	_, ok, err := AssignAudsley(set, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded set got an assignment")
	}
}

func TestRTAPropertyResponseAtLeastC(t *testing.T) {
	// Property: for random schedulable-ish sets, R ≥ C and R is monotone
	// in added interference (removing the top task never increases
	// responses of the rest).
	check := func(cs [3]uint8, ts [3]uint8) bool {
		set := make([]Task, 0, 3)
		for i := 0; i < 3; i++ {
			c := des.Time(int(cs[i]%10)+1) * des.Millisecond
			period := des.Time(int(ts[i]%90)+20) * des.Millisecond
			if c > period {
				c = period
			}
			set = append(set, Task{
				Name: string(rune('a' + i)), C: c, T: period, D: period,
				Priority: 3 - i,
			})
		}
		rs, err := Analyze(set)
		if err != nil {
			return false
		}
		for _, r := range rs {
			if r.Schedulable && r.R < r.Task.C {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyzeWithFaults(b *testing.B) {
	set := make([]Task, 0, 10)
	for i := 0; i < 10; i++ {
		set = append(set, Task{
			Name:     string(rune('a' + i)),
			C:        des.Time(i+1) * des.Millisecond,
			T:        des.Time(20*(i+1)) * des.Millisecond,
			D:        des.Time(20*(i+1)) * des.Millisecond,
			Priority: 10 - i,
			Recovery: des.Time(i+1) * des.Millisecond,
		})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rs, err := AnalyzeWithFaults(set, 500*des.Millisecond)
		if err != nil || !Schedulable(rs) {
			b.Fatal("unexpected analysis failure")
		}
	}
}
