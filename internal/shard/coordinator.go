package shard

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
)

// Sentinel errors the HTTP layer maps onto status codes.
var (
	// ErrNotFound: unknown campaign or lease ID.
	ErrNotFound = errors.New("shard: not found")
	// ErrIncomplete: summary requested before every trial completed.
	ErrIncomplete = errors.New("shard: campaign incomplete")
	// ErrLeaseExpired: heartbeat on a lease the coordinator already
	// re-leased; the worker should abandon the range (its completion,
	// if it still arrives first, is applied anyway).
	ErrLeaseExpired = errors.New("shard: lease expired")
)

// DefaultLeaseTTL is the lease lifetime when the coordinator options
// do not choose one. Workers heartbeat at TTL/3, so a worker must miss
// three heartbeats before its range is re-leased.
const DefaultLeaseTTL = 30 * time.Second

// CoordinatorOptions configure lease handling.
type CoordinatorOptions struct {
	// LeaseTTL is how long a lease stays valid between heartbeats
	// (0 = DefaultLeaseTTL).
	LeaseTTL time.Duration
	// Now is the clock (nil = time.Now); injectable so worker-loss
	// tests advance time deterministically instead of sleeping.
	Now func() time.Time
}

// Lease is one leased trial-index range, in wire form. The spec rides
// along so a worker can build (and cache) the campaign's ShardRunner
// without a second round-trip.
type Lease struct {
	ID       string       `json:"id"`
	Campaign string       `json:"campaign"`
	Spec     CampaignSpec `json:"spec"`
	Lo       int          `json:"lo"`
	Hi       int          `json:"hi"`
	// TTLMs is the lease lifetime; heartbeat well within it.
	TTLMs int64 `json:"ttl_ms"`
}

// Progress reports a campaign's completion state.
type Progress struct {
	Campaign  string `json:"campaign"`
	Trials    int    `json:"trials"`
	Completed int    `json:"completed"`
	// Leased counts trials under an active (unexpired) lease.
	Leased int  `json:"leased"`
	Done   bool `json:"done"`
}

// Summary is the finished campaign's Table-1 surface plus the
// equivalence digest the CI gate diffs against a serial run.
type Summary struct {
	Campaign string         `json:"campaign"`
	Trials   int            `json:"trials"`
	Seed     uint64         `json:"seed"`
	Digest   string         `json:"digest"` // %#x of Result.Digest
	Counts   map[string]int `json:"counts"` // by outcome name
	Text     string         `json:"text"`   // Result.Summary() report
}

// leaseState tracks a lease across its lifetime. Records are kept
// after expiry or completion so a late completion from a presumed-dead
// worker is still recognized (and applied or discarded idempotently).
type leaseState struct {
	id      string
	camp    *campaign
	span    int
	expires time.Time
	expired bool
}

// span is one fixed lease granule of a campaign's trial range. Spans
// never change shape: a re-lease covers the exact same [lo, hi), so
// "has this span completed" is the whole idempotency state.
type span struct{ lo, hi int }

type campaign struct {
	id     string
	spec   CampaignSpec
	cfg    fault.CampaignConfig
	golden []fault.Write

	spans   []span
	pending []int          // span indexes awaiting (re-)lease, FIFO
	done    []bool         // per span: completion applied
	active  map[string]int // active lease ID -> span index

	records   []fault.TrialRecord
	tally     fault.TallyDelta
	metrics   *obs.Registry
	completed int // trials folded in

	result *fault.Result // finalize cache
}

// Coordinator owns campaign state and the lease protocol. All methods
// are safe for concurrent use; the transport layers (HTTP handler,
// loopback) are thin shims over them.
type Coordinator struct {
	opts CoordinatorOptions

	mu        sync.Mutex
	campaigns map[string]*campaign
	order     []string // submission order, for fair lease assignment
	leases    map[string]*leaseState
	nextCamp  int
	nextLease int
}

// NewCoordinator builds an empty coordinator.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.LeaseTTL <= 0 {
		opts.LeaseTTL = DefaultLeaseTTL
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Coordinator{
		opts:      opts,
		campaigns: make(map[string]*campaign),
		leases:    make(map[string]*leaseState),
	}
}

// Submit validates the spec — including a fault-free golden run, which
// both proves the workload viable and yields the reference outputs the
// final Result carries — slices the trial range into lease spans, and
// returns the campaign ID.
func (c *Coordinator) Submit(spec CampaignSpec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	cfg, err := spec.Config(0)
	if err != nil {
		return "", err
	}
	golden, err := fault.GoldenWrites(spec.Workload())
	if err != nil {
		return "", fmt.Errorf("shard: golden run: %w", err)
	}
	size := spec.leaseSize()
	camp := &campaign{
		spec:    spec,
		cfg:     cfg,
		golden:  golden,
		active:  make(map[string]int),
		records: make([]fault.TrialRecord, spec.Trials),
	}
	for lo := 0; lo < spec.Trials; lo += size {
		hi := lo + size
		if hi > spec.Trials {
			hi = spec.Trials
		}
		camp.spans = append(camp.spans, span{lo: lo, hi: hi})
		camp.pending = append(camp.pending, len(camp.spans)-1)
	}
	camp.done = make([]bool, len(camp.spans))

	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextCamp++
	camp.id = fmt.Sprintf("c%d", c.nextCamp)
	c.campaigns[camp.id] = camp
	c.order = append(c.order, camp.id)
	return camp.id, nil
}

// sweepExpired (mu held) returns every expired lease's span to its
// campaign's pending queue.
func (c *Coordinator) sweepExpired(now time.Time) {
	//nlft:allow nodeterminism expiry marking is per-lease and idempotent; map order cannot affect which leases expire
	for _, ls := range c.leases {
		if ls.expired || !now.After(ls.expires) {
			continue
		}
		ls.expired = true
		delete(ls.camp.active, ls.id)
		if !ls.camp.done[ls.span] {
			ls.camp.pending = append(ls.camp.pending, ls.span)
		}
	}
}

// LeaseNext hands the caller the next pending trial range, oldest
// campaign first, or nil when no work is available. worker is a label
// for diagnostics only; the protocol does not track worker identity
// beyond it.
func (c *Coordinator) LeaseNext(worker string) (*Lease, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.sweepExpired(now)
	for _, id := range c.order {
		camp := c.campaigns[id]
		if len(camp.pending) == 0 {
			continue
		}
		spanIdx := camp.pending[0]
		camp.pending = camp.pending[1:]
		c.nextLease++
		leaseID := fmt.Sprintf("l%d", c.nextLease)
		c.leases[leaseID] = &leaseState{
			id:      leaseID,
			camp:    camp,
			span:    spanIdx,
			expires: now.Add(c.opts.LeaseTTL),
		}
		camp.active[leaseID] = spanIdx
		sp := camp.spans[spanIdx]
		return &Lease{
			ID:       leaseID,
			Campaign: camp.id,
			Spec:     camp.spec,
			Lo:       sp.lo,
			Hi:       sp.hi,
			TTLMs:    c.opts.LeaseTTL.Milliseconds(),
		}, nil
	}
	return nil, nil
}

// Heartbeat extends an active lease. A heartbeat on a completed
// span reports success (the worker's range already landed); one on an
// expired lease reports ErrLeaseExpired so the worker abandons it.
func (c *Coordinator) Heartbeat(leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	c.sweepExpired(now)
	ls, ok := c.leases[leaseID]
	switch {
	case !ok:
		return fmt.Errorf("%w: lease %q", ErrNotFound, leaseID)
	case ls.camp.done[ls.span]:
		return nil
	case ls.expired:
		return ErrLeaseExpired
	}
	ls.expires = now.Add(c.opts.LeaseTTL)
	return nil
}

// Complete reads a completion stream for the lease's range and folds
// it into the campaign — unless that range already completed, in which
// case the duplicate is read and discarded (idempotent re-lease: both
// results are bit-identical, so first-wins loses nothing). A late
// completion from an expired lease still applies when it is first.
func (c *Coordinator) Complete(leaseID string, body io.Reader) error {
	// Resolve the lease before parsing so a bogus ID fails fast, but
	// parse outside the lock: decoding is the expensive part and the
	// stream belongs to one caller anyway.
	c.mu.Lock()
	ls, ok := c.leases[leaseID]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: lease %q", ErrNotFound, leaseID)
	}
	sp := ls.camp.spans[ls.span]
	sr, err := readCompletion(body, sp.hi-sp.lo)
	if err != nil {
		return err
	}
	sr.Lo, sr.Hi = sp.lo, sp.hi

	c.mu.Lock()
	defer c.mu.Unlock()
	camp := ls.camp
	if camp.done[ls.span] {
		return nil // duplicate of an identical result; discard
	}
	camp.fold(sr)
	camp.done[ls.span] = true
	// Retire every lease on this span — the original and any re-lease
	// racing it — and drop queued re-leases of it.
	//nlft:allow nodeterminism all active leases on this span are deleted; map order cannot affect the survivors
	for id, spanIdx := range camp.active {
		if spanIdx == ls.span {
			delete(camp.active, id)
		}
	}
	pending := camp.pending[:0]
	for _, idx := range camp.pending {
		if idx != ls.span {
			pending = append(pending, idx)
		}
	}
	camp.pending = pending
	return nil
}

// fold merges one shard result into the campaign accumulators. This is
// the coordinator-side shard merge path, rooted for the mergecommute
// analyzer: records land in disjoint index ranges (spans partition
// [0, Trials) and duplicates were discarded before folding), the tally
// delta and the registry merge by pure addition/extreme-keep, and the
// completion counter is a sum — so any arrival order folds to the same
// campaign state.
//
//nlft:merge
func (camp *campaign) fold(sr *fault.ShardResult) {
	copy(camp.records[sr.Lo:sr.Hi], sr.Records)
	camp.tally.Merge(&sr.Tally)
	if sr.Metrics != nil {
		if camp.metrics == nil {
			camp.metrics = obs.NewRegistry()
		}
		camp.metrics.Merge(sr.Metrics.Registry())
	}
	camp.completed += sr.Hi - sr.Lo
}

// campaignByID (mu held) resolves a campaign.
func (c *Coordinator) campaignByID(id string) (*campaign, error) {
	camp, ok := c.campaigns[id]
	if !ok {
		return nil, fmt.Errorf("%w: campaign %q", ErrNotFound, id)
	}
	return camp, nil
}

// Progress reports a campaign's completion state.
func (c *Coordinator) Progress(id string) (*Progress, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweepExpired(c.opts.Now())
	camp, err := c.campaignByID(id)
	if err != nil {
		return nil, err
	}
	leased := 0
	//nlft:allow nodeterminism commutative sum over active leases; iteration order cannot affect the total
	for _, spanIdx := range camp.active {
		sp := camp.spans[spanIdx]
		leased += sp.hi - sp.lo
	}
	return &Progress{
		Campaign:  camp.id,
		Trials:    camp.spec.Trials,
		Completed: camp.completed,
		Leased:    leased,
		Done:      camp.completed == camp.spec.Trials,
	}, nil
}

// Result finalizes and returns the completed campaign's Result —
// bit-identical to a serial fault.Run of the same spec.
func (c *Coordinator) Result(id string) (*fault.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	camp, err := c.campaignByID(id)
	if err != nil {
		return nil, err
	}
	if camp.completed != camp.spec.Trials {
		return nil, fmt.Errorf("%w: %d/%d trials", ErrIncomplete, camp.completed, camp.spec.Trials)
	}
	if camp.result == nil {
		camp.result, err = fault.FinalizeSharded(camp.cfg, camp.golden, camp.records, &camp.tally, camp.metrics)
		if err != nil {
			return nil, err
		}
	}
	return camp.result, nil
}

// Summary renders the completed campaign's Table-1 surface and digest.
func (c *Coordinator) Summary(id string) (*Summary, error) {
	res, err := c.Result(id)
	if err != nil {
		return nil, err
	}
	counts := make(map[string]int, fault.NumOutcomes)
	for _, o := range fault.AllOutcomes() {
		counts[o.String()] = res.Counts[o]
	}
	return &Summary{
		Campaign: id,
		Trials:   res.Config.Trials,
		Seed:     res.Config.Seed,
		Digest:   fmt.Sprintf("%#x", res.Digest()),
		Counts:   counts,
		Text:     res.Summary(),
	}, nil
}
