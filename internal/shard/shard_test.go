package shard

import (
	"bytes"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// testSpec is the reference campaign the equivalence tests shard:
// small enough to run serially in milliseconds, sliced into enough
// leases that multiple workers genuinely interleave.
var testSpec = CampaignSpec{
	Trials: 96, Seed: 42, ECC: true, Telemetry: true, LeaseSize: 16,
}

var (
	serialOnce sync.Once
	serialRes  *fault.Result
	serialErr  error
)

// serialResult runs the reference campaign serially, once per process.
func serialResult(t *testing.T) *fault.Result {
	t.Helper()
	serialOnce.Do(func() {
		cfg, err := testSpec.Config(2)
		if err != nil {
			serialErr = err
			return
		}
		serialRes, serialErr = fault.Run(testSpec.Workload(), cfg)
	})
	if serialErr != nil {
		t.Fatal(serialErr)
	}
	return serialRes
}

// fakeClock is an injectable coordinator clock so lease expiry is
// driven by the test, not by sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

// drain runs the worker until the coordinator has no work left.
func drain(t *testing.T, w *Worker) {
	t.Helper()
	for {
		worked, err := w.RunOne()
		if err != nil {
			t.Error(err)
			return
		}
		if !worked {
			return
		}
	}
}

// drainN drains with n concurrent workers over the same transport.
func drainN(t *testing.T, tr Transport, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &Worker{Transport: tr, Name: "w" + string(rune('0'+i)), Parallelism: 2}
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain(t, w)
		}()
	}
	wg.Wait()
}

// requireSameResult asserts the coordinator's finalized result is
// bit-identical to the serial reference.
func requireSameResult(t *testing.T, c *Coordinator, id string, want *fault.Result, label string) {
	t.Helper()
	got, err := c.Result(id)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if g, w := got.Digest(), want.Digest(); g != w {
		t.Errorf("%s: digest %#x, want %#x", label, g, w)
	}
	if got.Metrics == nil || want.Metrics == nil {
		t.Fatalf("%s: missing metrics registry", label)
	}
	if g, w := got.Metrics.Digest(), want.Metrics.Digest(); g != w {
		t.Errorf("%s: metrics digest %#x, want %#x", label, g, w)
	}
	for _, o := range fault.AllOutcomes() {
		if got.Counts[o] != want.Counts[o] {
			t.Errorf("%s: %v count %d, want %d", label, o, got.Counts[o], want.Counts[o])
		}
	}
}

// TestShardedEqualsSerial: 1, 2 and 4 concurrent workers over the
// loopback transport all reproduce the serial campaign bit-for-bit.
func TestShardedEqualsSerial(t *testing.T) {
	want := serialResult(t)
	for _, workers := range []int{1, 2, 4} {
		c := NewCoordinator(CoordinatorOptions{})
		id, err := c.Submit(testSpec)
		if err != nil {
			t.Fatal(err)
		}
		drainN(t, Loopback{C: c}, workers)
		p, err := c.Progress(id)
		if err != nil {
			t.Fatal(err)
		}
		if !p.Done || p.Completed != testSpec.Trials {
			t.Fatalf("%d workers: progress %+v, want done", workers, p)
		}
		requireSameResult(t, c, id, want, "workers="+string(rune('0'+workers)))
	}
}

// TestWorkerLossRelease: a worker takes a lease and dies silently; the
// coordinator re-leases the range at TTL expiry and the final result
// is still bit-identical to the serial and no-loss runs.
func TestWorkerLossRelease(t *testing.T) {
	want := serialResult(t)
	clock := newFakeClock()
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Now: clock.Now})
	id, err := c.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	lb := Loopback{C: c}

	// The doomed worker leases the first range and is never heard from
	// again.
	dead, err := lb.Lease("doomed")
	if err != nil || dead == nil {
		t.Fatalf("lease: %v, %v", dead, err)
	}
	if dead.Lo != 0 || dead.Hi != testSpec.LeaseSize {
		t.Fatalf("first lease [%d, %d), want [0, %d)", dead.Lo, dead.Hi, testSpec.LeaseSize)
	}

	// Before expiry the range is held: a healthy worker never sees it.
	clock.Advance(30 * time.Second)
	if err := c.Heartbeat(dead.ID); err != nil {
		t.Fatalf("heartbeat before expiry: %v", err)
	}

	// Three missed heartbeats later the lease expires and the range
	// returns to the pool; a healthy worker drains everything.
	clock.Advance(2 * time.Minute)
	if err := c.Heartbeat(dead.ID); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("heartbeat after expiry: %v, want ErrLeaseExpired", err)
	}
	drain(t, &Worker{Transport: lb, Name: "healthy", Parallelism: 2})
	p, err := c.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done {
		t.Fatalf("progress after drain: %+v", p)
	}
	requireSameResult(t, c, id, want, "with worker loss")

	// The presumed-dead worker finally reports its (identical) result;
	// the duplicate is discarded and nothing double-counts.
	runner, err := fault.NewShardRunner(testSpec.Workload(), mustConfig(t, &testSpec, 1))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := runner.Run(dead.Lo, dead.Hi)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeCompletion(&buf, sr); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(dead.ID, &buf); err != nil {
		t.Fatalf("late duplicate completion: %v", err)
	}
	p, err = c.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Completed != testSpec.Trials {
		t.Fatalf("completed %d after duplicate, want %d", p.Completed, testSpec.Trials)
	}
	requireSameResult(t, c, id, want, "after late duplicate")
}

// TestExpiredLeaseFirstCompletionWins: a lease expires (the worker was
// only slow, not dead) and its completion arrives before any re-lease
// runs — it must be applied, and the re-leased range must then be
// retired from the pool.
func TestExpiredLeaseFirstCompletionWins(t *testing.T) {
	want := serialResult(t)
	clock := newFakeClock()
	c := NewCoordinator(CoordinatorOptions{LeaseTTL: time.Minute, Now: clock.Now})
	id, err := c.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	lb := Loopback{C: c}
	slow, err := lb.Lease("slow")
	if err != nil || slow == nil {
		t.Fatalf("lease: %v, %v", slow, err)
	}
	clock.Advance(2 * time.Minute) // lease expires; range back in pool

	runner, err := fault.NewShardRunner(testSpec.Workload(), mustConfig(t, &testSpec, 1))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := runner.Run(slow.Lo, slow.Hi)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeCompletion(&buf, sr); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(slow.ID, &buf); err != nil {
		t.Fatalf("late-but-first completion: %v", err)
	}
	drain(t, &Worker{Transport: lb, Name: "healthy", Parallelism: 2})
	p, err := c.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Done || p.Completed != testSpec.Trials {
		t.Fatalf("progress %+v, want done with %d trials", p, testSpec.Trials)
	}
	requireSameResult(t, c, id, want, "first-completion-wins")
}

func mustConfig(t *testing.T, spec *CampaignSpec, parallelism int) fault.CampaignConfig {
	t.Helper()
	cfg, err := spec.Config(parallelism)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestHTTPEndToEnd drives the full HTTP protocol — submit, lease,
// heartbeat, streamed completion, progress, summary — through the real
// handler and client with an in-process round-tripper, no sockets.
func TestHTTPEndToEnd(t *testing.T) {
	want := serialResult(t)
	c := NewCoordinator(CoordinatorOptions{})
	client := &Client{
		Base: "http://coordinator.test",
		HTTP: &http.Client{Transport: inprocess{h: c.Handler()}},
	}
	id, err := client.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Summary(id); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("summary before completion: %v, want ErrIncomplete", err)
	}
	p, err := client.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Done || p.Completed != 0 {
		t.Fatalf("fresh progress %+v", p)
	}

	drainN(t, client, 2)

	sum, err := client.Summary(id)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := "0x" + strings.TrimPrefix(sumHex(want.Digest()), "0x")
	if sum.Digest != wantDigest {
		t.Errorf("summary digest %s, want %s", sum.Digest, wantDigest)
	}
	for _, o := range fault.AllOutcomes() {
		if sum.Counts[o.String()] != want.Counts[o] {
			t.Errorf("summary count %v = %d, want %d", o, sum.Counts[o.String()], want.Counts[o])
		}
	}
	if !strings.Contains(sum.Text, "campaign: 96 trials, seed 42") {
		t.Errorf("summary text missing header:\n%s", sum.Text)
	}
	requireSameResult(t, c, id, want, "http")

	// Error surface over the wire.
	if _, err := client.Progress("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown campaign: %v, want ErrNotFound", err)
	}
	if err := client.Heartbeat("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown lease: %v, want ErrNotFound", err)
	}
	if _, err := client.Submit(CampaignSpec{Trials: 0}); err == nil {
		t.Error("zero-trial spec accepted over HTTP")
	}
}

func sumHex(v uint64) string {
	const digits = "0123456789abcdef"
	if v == 0 {
		return "0x0"
	}
	var b [16]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = digits[v&0xF]
		v >>= 4
	}
	return "0x" + string(b[i:])
}

// inprocess routes client requests straight into the handler.
type inprocess struct{ h http.Handler }

func (t inprocess) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// TestCompletionValidation: malformed completion streams must be
// rejected without corrupting campaign state.
func TestCompletionValidation(t *testing.T) {
	c := NewCoordinator(CoordinatorOptions{})
	id, err := c.Submit(testSpec)
	if err != nil {
		t.Fatal(err)
	}
	lb := Loopback{C: c}
	l, err := lb.Lease("w")
	if err != nil || l == nil {
		t.Fatalf("lease: %v, %v", l, err)
	}
	if err := c.Complete("nope", strings.NewReader("")); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown lease: %v, want ErrNotFound", err)
	}
	if err := c.Complete(l.ID, strings.NewReader("")); err == nil {
		t.Error("empty body accepted")
	}
	// Truncated: records but no tally/end.
	var buf bytes.Buffer
	if err := writeFrame(&buf, &completionFrame{Records: make([]fault.TrialRecord, l.Hi-l.Lo)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(l.ID, &buf); err == nil {
		t.Error("truncated stream accepted")
	}
	// Wrong record count.
	buf.Reset()
	if err := writeFrame(&buf, &completionFrame{Records: make([]fault.TrialRecord, 3)}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, &completionFrame{Tally: &fault.TallyDelta{}}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(&buf, &completionFrame{End: true}); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(l.ID, &buf); err == nil {
		t.Error("wrong record count accepted")
	}
	// A well-formed completion still lands after the rejects.
	runner, err := fault.NewShardRunner(testSpec.Workload(), mustConfig(t, &testSpec, 1))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := runner.Run(l.Lo, l.Hi)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := writeCompletion(&buf, sr); err != nil {
		t.Fatal(err)
	}
	if err := c.Complete(l.ID, &buf); err != nil {
		t.Fatalf("valid completion after rejects: %v", err)
	}
	p, err := c.Progress(id)
	if err != nil {
		t.Fatal(err)
	}
	if p.Completed != l.Hi-l.Lo {
		t.Fatalf("completed %d, want %d", p.Completed, l.Hi-l.Lo)
	}
}

// TestSpecValidation exercises the submission guardrails.
func TestSpecValidation(t *testing.T) {
	bad := []CampaignSpec{
		{Trials: 0},
		{Trials: 10, Targets: []string{"warp-core"}},
		{Trials: 10, Compute: -1},
		{Trials: 10, LeaseSize: -1},
		{Trials: 10, SnapshotIntervalNs: -1},
		{Trials: 10, KernelShare: 1.5},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
	good := CampaignSpec{Trials: 10, Targets: []string{"alu", "pc"}, KernelShare: 0.1, KernelDetect: 0.9}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	cfg, err := good.Config(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Targets) != 2 || cfg.Targets[0] != fault.TargetALU || cfg.Targets[1] != fault.TargetPC {
		t.Errorf("targets %v", cfg.Targets)
	}
	if cfg.Parallelism != 3 || cfg.KernelShare != 0.1 {
		t.Errorf("config %+v", cfg)
	}
}

// TestFrameCodec covers the framing edge cases directly.
func TestFrameCodec(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, map[string]int{"a": 1}); err != nil {
		t.Fatal(err)
	}
	var m map[string]int
	if err := readFrame(&buf, &m); err != nil || m["a"] != 1 {
		t.Fatalf("round-trip: %v, %v", m, err)
	}
	// Clean EOF at a frame boundary.
	if err := readFrame(&buf, &m); err == nil || err.Error() != "EOF" {
		t.Fatalf("boundary read: %v, want io.EOF", err)
	}
	// Oversized length prefix must be rejected before allocating.
	if err := readFrame(strings.NewReader("\xff\xff\xff\xff"), &m); err == nil {
		t.Error("oversized frame accepted")
	}
	// Torn header.
	if err := readFrame(strings.NewReader("\x00\x00"), &m); err == nil || err.Error() == "EOF" {
		t.Errorf("torn header: %v, want wrapped error", err)
	}
}
