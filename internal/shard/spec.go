// Package shard turns fault-injection campaigns into a service: a
// coordinator slices a campaign's trial-index range into leases, hands
// them to worker processes over an HTTP/JSON protocol (or an
// in-process loopback), folds the streamed-back shard results through
// the commutative merges the campaign layer already guarantees, and
// re-leases ranges whose workers go silent. The final result is
// bit-identical to a serial fault.Run of the same configuration for
// any worker count, process count, worker loss, or arrival order:
//
//   - every trial is a pure function of (Seed, trial index), so a
//     range computes the same records wherever and however often it
//     runs (fault.ShardRunner);
//   - shard deltas (tally arrays, obs registries) merge by pure
//     addition/extreme-keep, machine-verified commutative by the
//     mergecommute analyzer;
//   - completion is idempotent: the first completion of a range wins
//     and duplicates — a lost worker's late result racing its
//     re-lease — are discarded, which is safe precisely because
//     duplicates are bit-identical.
package shard

import (
	"encoding/json"
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
)

// DefaultLeaseSize is the trials-per-lease granule when the spec does
// not choose one. Small enough that a lost worker forfeits little work
// and large enough to amortize one round-trip per lease.
const DefaultLeaseSize = 512

// CampaignSpec is the wire form of a campaign submission: the standard
// workload's knobs plus the campaign parameters the sharded path
// supports. Per-trial event streams (TelemetryEvents) and enumerated
// plans are serial-only features and have no spec field by
// construction. The zero value of every optional field means "the
// campaign layer's default".
type CampaignSpec struct {
	// Trials is the number of injection runs. Required (>= 1).
	Trials int `json:"trials"`
	// Seed drives all random choices.
	Seed uint64 `json:"seed"`

	// ECC and Compute parameterize the standard workload.
	ECC     bool `json:"ecc,omitempty"`
	Compute int  `json:"compute,omitempty"`

	// Targets restricts fault locations, by Target.String name
	// (register, pc, sp, alu, mem-data, mem-code). Empty means all.
	Targets []string `json:"targets,omitempty"`
	// KernelShare and KernelDetect override the kernel-hit model
	// probabilities (0 means the paper defaults, 0.05 and 0.98).
	KernelShare  float64 `json:"kernel_share,omitempty"`
	KernelDetect float64 `json:"kernel_detect,omitempty"`

	// Telemetry merges every trial's metrics registry into the result.
	Telemetry bool `json:"telemetry,omitempty"`
	// NoFork disables the checkpoint/fork engine on workers.
	NoFork bool `json:"no_fork,omitempty"`
	// SnapshotIntervalNs overrides the fork checkpoint spacing.
	SnapshotIntervalNs int64 `json:"snapshot_interval_ns,omitempty"`
	// NoConvergeCutoff disables the post-injection early stop.
	NoConvergeCutoff bool `json:"no_converge_cutoff,omitempty"`

	// LeaseSize is the trials-per-lease granule (0 = DefaultLeaseSize).
	LeaseSize int `json:"lease_size,omitempty"`
}

// Validate checks the spec without building anything.
func (s *CampaignSpec) Validate() error {
	if s.Trials < 1 {
		return fmt.Errorf("shard: spec needs trials >= 1 (got %d)", s.Trials)
	}
	if s.Compute < 0 {
		return fmt.Errorf("shard: negative compute %d", s.Compute)
	}
	if s.LeaseSize < 0 {
		return fmt.Errorf("shard: negative lease size %d", s.LeaseSize)
	}
	if s.SnapshotIntervalNs < 0 {
		return fmt.Errorf("shard: negative snapshot interval %d", s.SnapshotIntervalNs)
	}
	if s.KernelShare < 0 || s.KernelShare > 1 || s.KernelDetect < 0 || s.KernelDetect > 1 {
		return fmt.Errorf("shard: kernel probabilities outside [0, 1]")
	}
	_, err := s.targets()
	return err
}

// targets resolves the target names.
func (s *CampaignSpec) targets() ([]fault.Target, error) {
	if len(s.Targets) == 0 {
		return nil, nil
	}
	byName := make(map[string]fault.Target, fault.NumTargets)
	for _, t := range fault.AllTargets() {
		byName[t.String()] = t
	}
	out := make([]fault.Target, 0, len(s.Targets))
	for _, name := range s.Targets {
		t, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("shard: unknown target %q", name)
		}
		out = append(out, t)
	}
	return out, nil
}

// Workload builds the spec's workload.
func (s *CampaignSpec) Workload() fault.Workload {
	return fault.NewStdWorkload(fault.StdWorkloadConfig{ECC: s.ECC, Compute: s.Compute})
}

// Config translates the spec into a campaign configuration. The
// parallelism is execution shape, not campaign identity — it is
// supplied by each runner and cannot perturb any result.
func (s *CampaignSpec) Config(parallelism int) (fault.CampaignConfig, error) {
	targets, err := s.targets()
	if err != nil {
		return fault.CampaignConfig{}, err
	}
	return fault.CampaignConfig{
		Trials:           s.Trials,
		Seed:             s.Seed,
		Targets:          targets,
		KernelShare:      s.KernelShare,
		KernelDetect:     s.KernelDetect,
		Parallelism:      parallelism,
		Telemetry:        s.Telemetry,
		NoFork:           s.NoFork,
		SnapshotInterval: des.Time(s.SnapshotIntervalNs),
		NoConvergeCutoff: s.NoConvergeCutoff,
	}, nil
}

// leaseSize is the effective trials-per-lease granule.
func (s *CampaignSpec) leaseSize() int {
	if s.LeaseSize > 0 {
		return s.LeaseSize
	}
	return DefaultLeaseSize
}

// Canonical renders the spec as canonical JSON (struct field order,
// sorted map keys — encoding/json is already canonical for this
// shape), the identity workers key their runner caches on.
func (s *CampaignSpec) Canonical() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
