package shard

// The HTTP/JSON surface, stdlib only. Campaign management is plain
// JSON request/response; completion bodies are the length-delimited
// frame streams of frame.go, sent as application/octet-stream.
//
//	POST /campaigns              spec JSON          -> {"id": "c1"}
//	GET  /campaigns/{id}         -> Progress JSON
//	GET  /campaigns/{id}/summary -> Summary JSON (409 until complete)
//	POST /lease                  {"worker": name}   -> Lease JSON | 204
//	POST /leases/{id}/heartbeat  -> 204 | 410 on expiry
//	POST /leases/{id}/complete   completion frames  -> 204

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// maxSpecBytes bounds a campaign submission body.
const maxSpecBytes = 1 << 20

// Handler serves the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if err := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes)).Decode(&spec); err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("shard: bad spec: %w", err))
			return
		}
		id, err := c.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"id": id})
	})
	mux.HandleFunc("GET /campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		p, err := c.Progress(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, p)
	})
	mux.HandleFunc("GET /campaigns/{id}/summary", func(w http.ResponseWriter, r *http.Request) {
		s, err := c.Summary(r.PathValue("id"))
		if err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, s)
	})
	mux.HandleFunc("POST /lease", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Worker string `json:"worker"`
		}
		if err := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes)).Decode(&req); err != nil && err != io.EOF {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		l, err := c.LeaseNext(req.Worker)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		if l == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeJSON(w, http.StatusOK, l)
	})
	mux.HandleFunc("POST /leases/{id}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Heartbeat(r.PathValue("id")); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("POST /leases/{id}/complete", func(w http.ResponseWriter, r *http.Request) {
		if err := c.Complete(r.PathValue("id"), r.Body); err != nil {
			httpError(w, statusFor(err), err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrIncomplete):
		return http.StatusConflict
	case errors.Is(err, ErrLeaseExpired):
		return http.StatusGone
	default:
		return http.StatusBadRequest
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// Client reaches a coordinator over HTTP and implements Transport. The
// zero HTTP field uses http.DefaultClient.
type Client struct {
	// Base is the coordinator URL, e.g. http://127.0.0.1:8080.
	Base string
	// HTTP overrides the http.Client (tests inject an in-process
	// round-tripper here, so the wire path is exercised socketlessly).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeError turns a non-2xx response into the matching sentinel
// error so Transport callers can errors.Is across the wire.
func decodeError(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, maxSpecBytes)).Decode(&body)
	msg := body.Error
	if msg == "" {
		msg = resp.Status
	}
	switch resp.StatusCode {
	case http.StatusNotFound:
		return fmt.Errorf("%w: %s", ErrNotFound, msg)
	case http.StatusConflict:
		return fmt.Errorf("%w: %s", ErrIncomplete, msg)
	case http.StatusGone:
		return fmt.Errorf("%w: %s", ErrLeaseExpired, msg)
	default:
		return fmt.Errorf("shard: coordinator: %s", msg)
	}
}

func (c *Client) postJSON(path string, req, reply any) (int, error) {
	var body io.Reader
	if req != nil {
		b, err := json.Marshal(req)
		if err != nil {
			return 0, err
		}
		body = strings.NewReader(string(b))
	}
	resp, err := c.httpClient().Post(c.url(path), "application/json", body)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return resp.StatusCode, decodeError(resp)
	}
	if reply != nil && resp.StatusCode != http.StatusNoContent {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(reply)
	}
	return resp.StatusCode, nil
}

func (c *Client) getJSON(path string, reply any) error {
	resp, err := c.httpClient().Get(c.url(path))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// Submit posts a campaign and returns its ID.
func (c *Client) Submit(spec CampaignSpec) (string, error) {
	var reply struct {
		ID string `json:"id"`
	}
	if _, err := c.postJSON("/campaigns", &spec, &reply); err != nil {
		return "", err
	}
	return reply.ID, nil
}

// Progress fetches a campaign's completion state.
func (c *Client) Progress(id string) (*Progress, error) {
	p := &Progress{}
	if err := c.getJSON("/campaigns/"+id, p); err != nil {
		return nil, err
	}
	return p, nil
}

// Summary fetches a completed campaign's summary.
func (c *Client) Summary(id string) (*Summary, error) {
	s := &Summary{}
	if err := c.getJSON("/campaigns/"+id+"/summary", s); err != nil {
		return nil, err
	}
	return s, nil
}

// Lease implements Transport.
func (c *Client) Lease(worker string) (*Lease, error) {
	l := &Lease{}
	status, err := c.postJSON("/lease", map[string]string{"worker": worker}, l)
	if err != nil {
		return nil, err
	}
	if status == http.StatusNoContent {
		return nil, nil
	}
	return l, nil
}

// Heartbeat implements Transport.
func (c *Client) Heartbeat(leaseID string) error {
	_, err := c.postJSON("/leases/"+leaseID+"/heartbeat", nil, nil)
	return err
}

// Complete implements Transport, streaming the completion body.
func (c *Client) Complete(leaseID string, body io.Reader) error {
	resp, err := c.httpClient().Post(c.url("/leases/"+leaseID+"/complete"), "application/octet-stream", body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	return nil
}

var _ Transport = (*Client)(nil)
