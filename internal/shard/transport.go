package shard

import "io"

// Transport is the worker's view of a coordinator: lease work, keep it
// alive, stream completions back. The HTTP client and the in-process
// loopback implement it identically, so the whole protocol — including
// worker loss and re-lease — is unit-testable without sockets.
type Transport interface {
	// Lease requests the next trial range; (nil, nil) means no work is
	// currently available.
	Lease(worker string) (*Lease, error)
	// Heartbeat extends a lease; ErrLeaseExpired means the range was
	// re-leased and the worker should abandon it.
	Heartbeat(leaseID string) error
	// Complete streams a completion body (completion frames) for a
	// lease.
	Complete(leaseID string, body io.Reader) error
}

// Loopback is the in-process transport: method calls straight into the
// coordinator.
type Loopback struct{ C *Coordinator }

// Lease implements Transport.
func (t Loopback) Lease(worker string) (*Lease, error) { return t.C.LeaseNext(worker) }

// Heartbeat implements Transport.
func (t Loopback) Heartbeat(leaseID string) error { return t.C.Heartbeat(leaseID) }

// Complete implements Transport.
func (t Loopback) Complete(leaseID string, body io.Reader) error {
	return t.C.Complete(leaseID, body)
}

var _ Transport = Loopback{}
