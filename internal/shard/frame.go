package shard

// Length-delimited JSON framing for completion streams. A completion
// body is a sequence of frames — record batches in trial order, then
// the shard's tally delta, then (when telemetry is on) the canonical
// registry snapshot, then an end marker — so a worker can stream a
// large shard without materializing one giant JSON document, and the
// coordinator can reject a truncated body (no end frame) atomically
// instead of folding half a shard.

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/fault"
	"repro/internal/obs"
)

// maxFrameBytes bounds one frame so a corrupt length prefix cannot
// drive an allocation by the advertised size.
const maxFrameBytes = 32 << 20

// recordsPerFrame is the record-batch granule. 256 records is a few
// tens of KB of JSON — small enough to stream, large enough that the
// framing overhead vanishes.
const recordsPerFrame = 256

// writeFrame writes one length-prefixed JSON message.
func writeFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(b) > maxFrameBytes {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit %d", len(b), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// readFrame reads one length-prefixed JSON message into v. It returns
// io.EOF only on a clean boundary (no bytes read).
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return io.EOF
		}
		return fmt.Errorf("shard: frame header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit %d", n, maxFrameBytes)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("shard: frame body: %w", err)
	}
	return json.Unmarshal(buf, v)
}

// completionFrame is one message of a completion stream. Exactly one
// field is set per frame.
type completionFrame struct {
	Records []fault.TrialRecord `json:"records,omitempty"`
	Tally   *fault.TallyDelta   `json:"tally,omitempty"`
	Metrics *obs.RegistryWire   `json:"metrics,omitempty"`
	End     bool                `json:"end,omitempty"`
}

// writeCompletion streams a shard result as completion frames.
func writeCompletion(w io.Writer, sr *fault.ShardResult) error {
	for lo := 0; lo < len(sr.Records); lo += recordsPerFrame {
		hi := lo + recordsPerFrame
		if hi > len(sr.Records) {
			hi = len(sr.Records)
		}
		if err := writeFrame(w, &completionFrame{Records: sr.Records[lo:hi]}); err != nil {
			return err
		}
	}
	if err := writeFrame(w, &completionFrame{Tally: &sr.Tally}); err != nil {
		return err
	}
	if sr.Metrics != nil {
		if err := writeFrame(w, &completionFrame{Metrics: sr.Metrics}); err != nil {
			return err
		}
	}
	return writeFrame(w, &completionFrame{End: true})
}

// readCompletion parses a completion stream, validating that it is
// complete (end frame present, exactly one tally, the expected record
// count) before anything is returned for folding.
func readCompletion(r io.Reader, wantRecords int) (*fault.ShardResult, error) {
	sr := &fault.ShardResult{}
	sawTally, sawEnd := false, false
	for !sawEnd {
		var f completionFrame
		if err := readFrame(r, &f); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("shard: completion stream truncated before end frame")
			}
			return nil, err
		}
		switch {
		case f.Records != nil:
			sr.Records = append(sr.Records, f.Records...)
		case f.Tally != nil:
			if sawTally {
				return nil, fmt.Errorf("shard: duplicate tally frame")
			}
			sr.Tally = *f.Tally
			sawTally = true
		case f.Metrics != nil:
			if sr.Metrics != nil {
				return nil, fmt.Errorf("shard: duplicate metrics frame")
			}
			sr.Metrics = f.Metrics
		case f.End:
			sawEnd = true
		default:
			return nil, fmt.Errorf("shard: empty completion frame")
		}
	}
	if !sawTally {
		return nil, fmt.Errorf("shard: completion stream has no tally frame")
	}
	if len(sr.Records) != wantRecords {
		return nil, fmt.Errorf("shard: completion has %d records, lease covers %d", len(sr.Records), wantRecords)
	}
	return sr, nil
}
