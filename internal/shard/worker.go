package shard

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/fault"
)

// DefaultPoll is the idle poll interval when no work is available.
const DefaultPoll = 500 * time.Millisecond

// Worker leases trial ranges from a coordinator and runs them on the
// campaign engine. One ShardRunner is built per campaign and reused
// across leases, keyed by the spec's canonical JSON — the golden run
// and each slot's checkpoint capture are paid once, so every lease
// after the first starts injecting immediately.
type Worker struct {
	// Transport reaches the coordinator.
	Transport Transport
	// Name labels this worker in coordinator diagnostics.
	Name string
	// Parallelism is the slot count leases fan out over (0 =
	// GOMAXPROCS via the campaign default).
	Parallelism int
	// Poll is the idle poll interval (0 = DefaultPoll).
	Poll time.Duration
	// Log, when set, receives progress lines.
	Log func(format string, args ...any)

	mu      sync.Mutex
	runners map[string]*fault.ShardRunner
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log != nil {
		w.Log(format, args...)
	}
}

// runner returns the cached ShardRunner for the lease's campaign,
// building it on first sight.
func (w *Worker) runner(l *Lease) (*fault.ShardRunner, error) {
	key, err := l.Spec.Canonical()
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if r, ok := w.runners[key]; ok {
		return r, nil
	}
	cfg, err := l.Spec.Config(w.Parallelism)
	if err != nil {
		return nil, err
	}
	r, err := fault.NewShardRunner(l.Spec.Workload(), cfg)
	if err != nil {
		return nil, err
	}
	if w.runners == nil {
		w.runners = make(map[string]*fault.ShardRunner)
	}
	w.runners[key] = r
	return r, nil
}

// RunOne leases and completes one range. It reports (false, nil) when
// the coordinator has no work.
func (w *Worker) RunOne() (bool, error) {
	l, err := w.Transport.Lease(w.Name)
	if err != nil || l == nil {
		return false, err
	}
	w.logf("worker %s: lease %s: campaign %s trials [%d, %d)", w.Name, l.ID, l.Campaign, l.Lo, l.Hi)
	runner, err := w.runner(l)
	if err != nil {
		return false, err
	}

	// Heartbeat at TTL/3 while the lease runs, so the coordinator only
	// re-leases after three missed beats. Heartbeat errors are not
	// fatal here: if the lease expired under us we finish and submit
	// anyway — a first-arriving completion still wins, and a losing
	// duplicate is discarded.
	stop := make(chan struct{})
	var hb sync.WaitGroup
	if ttl := time.Duration(l.TTLMs) * time.Millisecond; ttl > 0 {
		hb.Add(1)
		go func() {
			defer hb.Done()
			t := time.NewTicker(ttl / 3)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if err := w.Transport.Heartbeat(l.ID); err != nil {
						w.logf("worker %s: heartbeat %s: %v", w.Name, l.ID, err)
					}
				}
			}
		}()
	}
	sr, err := runner.Run(l.Lo, l.Hi)
	close(stop)
	hb.Wait()
	if err != nil {
		return false, fmt.Errorf("shard: lease %s: %w", l.ID, err)
	}

	// Stream the completion: frames flow through a pipe so large
	// shards never materialize as one buffer.
	pr, pw := io.Pipe()
	go func() { pw.CloseWithError(writeCompletion(pw, sr)) }()
	if err := w.Transport.Complete(l.ID, pr); err != nil {
		pr.CloseWithError(err)
		return false, fmt.Errorf("shard: complete %s: %w", l.ID, err)
	}
	w.logf("worker %s: completed %s", w.Name, l.ID)
	return true, nil
}

// Run leases until ctx is cancelled, polling while idle. Transport
// errors end the loop — a worker process exits rather than spinning on
// a dead coordinator; the coordinator re-leases whatever it held.
func (w *Worker) Run(ctx context.Context) error {
	poll := w.Poll
	if poll <= 0 {
		poll = DefaultPoll
	}
	for {
		worked, err := w.RunOne()
		if err != nil {
			return err
		}
		if worked {
			select {
			case <-ctx.Done():
				return ctx.Err()
			default:
			}
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(poll):
		}
	}
}
