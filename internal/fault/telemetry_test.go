package fault

import (
	"testing"

	"repro/internal/obs"
)

// TestCampaignMetricsCrossCheck is the Table 1 regeneration guarantee:
// the per-mechanism detection counts, outcome tallies and trial totals
// recomputed from the exported metrics registry alone must equal the
// campaign Result's own accounting.
func TestCampaignMetricsCrossCheck(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	res, err := Run(w, CampaignConfig{Trials: 150, Seed: 1234, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	reg := res.Metrics
	if reg == nil {
		t.Fatal("Telemetry set but Metrics nil")
	}

	// Trial count.
	if got := reg.CounterTotal("campaign.trials"); got != uint64(res.Config.Trials) {
		t.Errorf("campaign.trials = %d, want %d", got, res.Config.Trials)
	}

	// Per-mechanism detections (the coverage columns of Table 1).
	byMech := reg.MechanismCounts("campaign.detected_by")
	if len(byMech) != len(res.ByMechanism) {
		t.Errorf("mechanism sets differ: metrics %v vs result %v", byMech, res.ByMechanism)
	}
	for m, n := range res.ByMechanism {
		if got := byMech[m]; got != uint64(n) {
			t.Errorf("detected_by[%s] = %d, want %d", m, got, n)
		}
	}

	// Outcome tallies.
	byOutcome := reg.MechanismCounts("campaign.outcomes")
	var outcomeTotal uint64
	for o, n := range res.Counts {
		if got := byOutcome[o.String()]; got != uint64(n) {
			t.Errorf("outcomes[%s] = %d, want %d", o, got, n)
		}
		outcomeTotal += uint64(n)
	}
	if got := reg.CounterTotal("campaign.outcomes"); got != outcomeTotal {
		t.Errorf("outcome total = %d, want %d", got, outcomeTotal)
	}

	// Kernel hits.
	kernelHits := 0
	for _, rec := range res.Trials {
		if rec.Kernel {
			kernelHits++
		}
	}
	if got := reg.CounterTotal("campaign.kernel_hits"); got != uint64(kernelHits) {
		t.Errorf("campaign.kernel_hits = %d, want %d", got, kernelHits)
	}

	// The kernel-level series must be present too: every trial releases
	// the control task at least once.
	if got := reg.CounterTotal("events.release"); got < uint64(res.Config.Trials) {
		t.Errorf("events.release = %d, want >= %d", got, res.Config.Trials)
	}
	if got := reg.CounterTotal("kernel.task_cycles"); got == 0 {
		t.Error("kernel.task_cycles missing from merged registry")
	}
}

// TestCampaignEventInvariants runs the TEM invariant checker over every
// trial of a telemetry campaign and the no-critical-omission rule over
// the fault-free golden run.
func TestCampaignEventInvariants(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	res, err := Run(w, CampaignConfig{Trials: 80, Seed: 7, TelemetryEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	byTrial := obs.SplitByTrial(res.Events)
	if len(byTrial) != res.Config.Trials {
		t.Fatalf("event stream covers %d trials, want %d", len(byTrial), res.Config.Trials)
	}
	for trial, events := range byTrial {
		if trial < 1 || trial > res.Config.Trials {
			t.Fatalf("event with out-of-range trial tag %d", trial)
		}
		for _, v := range obs.CheckInvariants(events) {
			t.Errorf("trial %d: %v", trial, v)
		}
	}
	for _, v := range obs.CheckInvariants(res.GoldenEvents) {
		t.Errorf("golden run: %v", v)
	}
	for _, v := range obs.CheckNoCriticalOmission(res.GoldenEvents) {
		t.Errorf("golden run: %v", v)
	}
}

// TestCampaignProgress checks the OnProgress contract: calls are
// serialized, done is strictly increasing, and the final call reports
// total/total.
func TestCampaignProgress(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	const trials = 40
	var calls []int
	_, err := Run(w, CampaignConfig{
		Trials: trials, Seed: 3, Parallelism: 4,
		OnProgress: func(done, total int) {
			if total != trials {
				t.Errorf("total = %d, want %d", total, trials)
			}
			calls = append(calls, done)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(calls) != trials {
		t.Fatalf("OnProgress called %d times, want %d", len(calls), trials)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("call %d reported done=%d, want %d (monotonic)", i, done, i+1)
		}
	}
}

// TestCampaignTelemetryOff pins the zero-cost default: without Telemetry
// the result carries no registry and no event streams.
func TestCampaignTelemetryOff(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	res, err := Run(w, CampaignConfig{Trials: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics != nil || res.Events != nil || res.GoldenEvents != nil {
		t.Errorf("telemetry artifacts present without Telemetry: %v %d %d",
			res.Metrics, len(res.Events), len(res.GoldenEvents))
	}
}

// TestEventsPerTrialCap: the per-trial event cap bounds the merged
// stream without perturbing metrics.
func TestEventsPerTrialCap(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	full, err := Run(w, CampaignConfig{Trials: 10, Seed: 11, TelemetryEvents: true})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := Run(w, CampaignConfig{
		Trials: 10, Seed: 11, TelemetryEvents: true, EventsPerTrial: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	byTrial := obs.SplitByTrial(capped.Events)
	for trial, events := range byTrial {
		if len(events) > 4 {
			t.Errorf("trial %d retained %d events, cap 4", trial, len(events))
		}
	}
	if len(capped.Events) >= len(full.Events) {
		t.Errorf("cap did not shrink the stream: %d vs %d", len(capped.Events), len(full.Events))
	}
	if full.Metrics.Digest() != capped.Metrics.Digest() {
		t.Error("event cap changed the metrics registry")
	}
}
