package fault

import (
	"testing"

	"repro/internal/des"
)

func inWindows(wins []Interval, at des.Time) bool {
	for _, iv := range wins {
		if at >= iv.Start && at < iv.End {
			return true
		}
	}
	return false
}

// TestActivityWindowsExact pins the extracted kernel-activity set
// against live injections: a coin-free trial's record reports
// Kernel=true exactly when the injection instant observed
// ActivityKernel, so window membership must predict that flag — and
// the forced fail-silent outcome — at every boundary edge.
func TestActivityWindowsExact(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{Periods: 2, Compute: 8})
	wins, err := ActivityWindows(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(wins) == 0 {
		t.Fatal("no kernel-activity windows: the workload must context-switch")
	}
	for i, iv := range wins {
		if iv.End <= iv.Start {
			t.Fatalf("window %d degenerate: %+v", i, iv)
		}
		if i > 0 && iv.Start <= wins[i-1].End {
			t.Fatalf("windows %d,%d not disjoint-sorted: %+v %+v", i-1, i, wins[i-1], iv)
		}
	}

	s, err := NewForkSession(w, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	start, end := w.InjectionWindow()
	probes := []des.Time{}
	for i, iv := range wins {
		if i >= 6 {
			break
		}
		probes = append(probes, iv.Start-1, iv.Start, iv.End-1, iv.End,
			(iv.Start+iv.End)/2)
	}
	for _, at := range probes {
		if at < start || at >= end {
			continue
		}
		rng := des.NewRandIndexed2(7, 1, uint64(at))
		f := DrawFaultAt(w, TargetRegister, at, rng)
		rec, err := s.RunTrial(TrialSpec{Fault: f})
		if err != nil {
			t.Fatal(err)
		}
		want := inWindows(wins, at)
		if rec.Kernel != want {
			t.Errorf("at %v: rec.Kernel = %v, windows say %v", at, rec.Kernel, want)
		}
		if want && rec.Outcome != FailSilent {
			t.Errorf("at %v: in-window outcome = %v, want FailSilent", at, rec.Outcome)
		}
	}
}

func TestComplementAndOverlap(t *testing.T) {
	wins := []Interval{{Start: 10, End: 20}, {Start: 30, End: 40}}
	cases := []struct {
		start, end des.Time
		overlap    des.Time
		free       []Interval
	}{
		{0, 50, 20, []Interval{{0, 10}, {20, 30}, {40, 50}}},
		{10, 20, 10, nil},
		{12, 18, 6, nil},
		{15, 35, 10, []Interval{{20, 30}}},
		{20, 30, 0, []Interval{{20, 30}}},
		{40, 45, 0, []Interval{{40, 45}}},
		{0, 10, 0, []Interval{{0, 10}}},
	}
	for _, c := range cases {
		if got := OverlapWidth(wins, c.start, c.end); got != c.overlap {
			t.Errorf("OverlapWidth([%d,%d)) = %d, want %d", c.start, c.end, got, c.overlap)
		}
		free := Complement(wins, c.start, c.end)
		if len(free) != len(c.free) {
			t.Errorf("Complement([%d,%d)) = %v, want %v", c.start, c.end, free, c.free)
			continue
		}
		var width des.Time
		for i, iv := range free {
			if iv != c.free[i] {
				t.Errorf("Complement([%d,%d))[%d] = %v, want %v", c.start, c.end, i, iv, c.free[i])
			}
			width += iv.Width()
		}
		if width+c.overlap != c.end-c.start {
			t.Errorf("free %d + overlap %d != window %d", width, c.overlap, c.end-c.start)
		}
	}
}
