package fault

import (
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"repro/internal/obs"
)

// mergeShards folds shard results (in the given order) into a final
// Result the way the coordinator does: records land at their range
// offset, tallies and registries merge commutatively.
func mergeShards(t *testing.T, cfg CampaignConfig, golden []Write, shards []*ShardResult) *Result {
	t.Helper()
	cfg.applyDefaults()
	records := make([]TrialRecord, cfg.Trials)
	var delta TallyDelta
	merged := obs.NewRegistry()
	for _, sr := range shards {
		copy(records[sr.Lo:sr.Hi], sr.Records)
		delta.Merge(&sr.Tally)
		merged.Merge(sr.Metrics.Registry())
	}
	var metrics *obs.Registry
	if cfg.Telemetry {
		metrics = merged
	}
	res, err := FinalizeSharded(cfg, golden, records, &delta, metrics)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireResultsEqual compares the observable result surface — the
// digest plus every field it covers, so a digest bug cannot mask a
// real divergence (or vice versa).
func requireResultsEqual(t *testing.T, got, want *Result, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Trials, want.Trials) {
		t.Errorf("%s: trial records differ", label)
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("%s: counts %v, want %v", label, got.Counts, want.Counts)
	}
	if !reflect.DeepEqual(got.ByTarget, want.ByTarget) {
		t.Errorf("%s: by-target tallies differ", label)
	}
	if !reflect.DeepEqual(got.ByMechanism, want.ByMechanism) {
		t.Errorf("%s: by-mechanism %v, want %v", label, got.ByMechanism, want.ByMechanism)
	}
	if (got.Metrics == nil) != (want.Metrics == nil) {
		t.Fatalf("%s: metrics presence %v, want %v", label, got.Metrics != nil, want.Metrics != nil)
	}
	if got.Metrics != nil && got.Metrics.Digest() != want.Metrics.Digest() {
		t.Errorf("%s: metrics digest %#x, want %#x", label, got.Metrics.Digest(), want.Metrics.Digest())
	}
	if got.Digest() != want.Digest() {
		t.Errorf("%s: result digest %#x, want %#x", label, got.Digest(), want.Digest())
	}
}

// TestShardRunEquivalence: any partition of the trial range, run at any
// slot parallelism and merged in any order, reproduces the serial
// campaign bit-for-bit — records, tallies, registry, digest.
func TestShardRunEquivalence(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	cfg := CampaignConfig{Trials: 64, Seed: 7, Telemetry: true}

	serialCfg := cfg
	serialCfg.Parallelism = 2
	want, err := Run(w, serialCfg)
	if err != nil {
		t.Fatal(err)
	}

	partitions := [][][2]int{
		{{0, 64}},
		{{0, 21}, {21, 40}, {40, 64}},
		{{48, 64}, {0, 16}, {32, 48}, {16, 32}}, // out-of-order arrival
	}
	for _, parallelism := range []int{1, 3} {
		shardCfg := cfg
		shardCfg.Parallelism = parallelism
		runner, err := NewShardRunner(w, shardCfg)
		if err != nil {
			t.Fatal(err)
		}
		for pi, ranges := range partitions {
			shards := make([]*ShardResult, 0, len(ranges))
			for _, rg := range ranges {
				sr, err := runner.Run(rg[0], rg[1])
				if err != nil {
					t.Fatal(err)
				}
				shards = append(shards, sr)
			}
			got := mergeShards(t, shardCfg, runner.Golden(), shards)
			requireResultsEqual(t, got, want,
				// Parallelism differs between the serial and sharded
				// configs by design; the digest must not see it.
				fmtLabel("parallelism", parallelism, "partition", pi))
		}
	}
}

func fmtLabel(args ...interface{}) string {
	b, _ := json.Marshal(args)
	return string(b)
}

// TestShardRunEquivalenceNoFork covers the scratch (NoFork) slot loop.
func TestShardRunEquivalenceNoFork(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	cfg := CampaignConfig{Trials: 24, Seed: 3, NoFork: true, Telemetry: true, Parallelism: 2}
	want, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := NewShardRunner(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var shards []*ShardResult
	for _, rg := range [][2]int{{12, 24}, {0, 12}} {
		sr, err := runner.Run(rg[0], rg[1])
		if err != nil {
			t.Fatal(err)
		}
		shards = append(shards, sr)
	}
	got := mergeShards(t, cfg, runner.Golden(), shards)
	requireResultsEqual(t, got, want, "nofork")
}

// TestShardRunIdempotent: re-running a range on a warm runner (the
// re-lease path after a worker loss) yields a byte-identical shard
// result, so the coordinator can discard duplicates freely.
func TestShardRunIdempotent(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	runner, err := NewShardRunner(w, CampaignConfig{Trials: 32, Seed: 11, Telemetry: true, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runner.Run(0, 8); err != nil { // warm the slots on a different range first
		t.Fatal(err)
	}
	a, err := runner.Run(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runner.Run(8, 24)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("re-run of the same range differs:\n%s\n%s", ja, jb)
	}
}

// TestShardRunnerRejects: configurations and ranges the sharded path
// cannot honor must error, not silently misbehave.
func TestShardRunnerRejects(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	if _, err := NewShardRunner(nil, CampaignConfig{}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := NewShardRunner(w, CampaignConfig{Plan: []Fault{{At: 1, Target: TargetALU, Mask: 1}}}); err == nil {
		t.Error("planned campaign accepted")
	}
	if _, err := NewShardRunner(w, CampaignConfig{TelemetryEvents: true}); err == nil {
		t.Error("per-trial event streams accepted")
	}
	runner, err := NewShardRunner(w, CampaignConfig{Trials: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rg := range [][2]int{{-1, 5}, {5, 11}, {5, 5}, {7, 3}} {
		if _, err := runner.Run(rg[0], rg[1]); err == nil {
			t.Errorf("range [%d, %d) accepted", rg[0], rg[1])
		}
	}
	if _, err := FinalizeSharded(CampaignConfig{Trials: 10}, nil, make([]TrialRecord, 4), &TallyDelta{}, nil); err == nil {
		t.Error("record-count mismatch accepted")
	}
}

// TestTallyDeltaWireCanonical: the delta marshals canonically and
// round-trips through JSON without changing what it applies.
func TestTallyDeltaWireCanonical(t *testing.T) {
	d := TallyDelta{ByMechanism: map[string]int{"tem": 3, "ecc": 5, "assert": 1}}
	d.Counts[int(Masked)] = 4
	d.ByTarget[int(TargetALU)][int(FailSilent)] = 2
	j1, err := json.Marshal(&d)
	if err != nil {
		t.Fatal(err)
	}
	var rt TallyDelta
	if err := json.Unmarshal(j1, &rt); err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(&rt)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("delta JSON not canonical:\n%s\n%s", j1, j2)
	}
	if !reflect.DeepEqual(d, rt) {
		t.Fatalf("delta round-trip: got %+v, want %+v", rt, d)
	}
}

// TestResultDigestSensitivity: the digest must move when any covered
// field moves — otherwise the CI gate could pass vacuously.
func TestResultDigestSensitivity(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	res, err := Run(w, CampaignConfig{Trials: 16, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	base := res.Digest()
	if res.Digest() != base {
		t.Fatal("digest not stable")
	}
	res.Trials[3].Outcome++
	if res.Digest() == base {
		t.Error("digest blind to a trial outcome change")
	}
	res.Trials[3].Outcome--
	res.Counts[Masked]++
	if res.Digest() == base {
		t.Error("digest blind to a tally change")
	}
	res.Counts[Masked]--
	res.Config.Seed++
	if res.Digest() == base {
		t.Error("digest blind to the seed")
	}
	res.Config.Seed--
	if res.Digest() != base {
		t.Fatal("digest not restored; test bug")
	}
}

// Fuzz fixture: the serial reference is computed once per process and
// shared across fuzz iterations.
var (
	fuzzOnce   sync.Once
	fuzzWant   *Result
	fuzzRunner *ShardRunner
	fuzzErr    error
)

const fuzzTrials = 48

func fuzzSetup() {
	w := NewStdWorkload(StdWorkloadConfig{})
	cfg := CampaignConfig{Trials: fuzzTrials, Seed: 9, Telemetry: true, Parallelism: 2}
	fuzzWant, fuzzErr = Run(w, cfg)
	if fuzzErr != nil {
		return
	}
	fuzzRunner, fuzzErr = NewShardRunner(w, cfg)
}

// FuzzShardRangeEquivalence fuzzes shard-boundary placement: any two
// cut points partition the trial range into up to three shards whose
// merge must equal the serial run exactly. Boundary pathologies
// (cuts at 0, at Trials, coincident cuts, single-trial shards) are
// exactly what the fuzzer explores.
func FuzzShardRangeEquivalence(f *testing.F) {
	f.Add(uint16(0), uint16(0))
	f.Add(uint16(1), uint16(fuzzTrials-1))
	f.Add(uint16(fuzzTrials/2), uint16(fuzzTrials/2))
	f.Add(uint16(3), uint16(40))
	f.Fuzz(func(t *testing.T, a, b uint16) {
		fuzzOnce.Do(fuzzSetup)
		if fuzzErr != nil {
			t.Fatal(fuzzErr)
		}
		ca, cb := int(a)%(fuzzTrials+1), int(b)%(fuzzTrials+1)
		if ca > cb {
			ca, cb = cb, ca
		}
		cuts := []int{0, ca, cb, fuzzTrials}
		var shards []*ShardResult
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			sr, err := fuzzRunner.Run(lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			shards = append(shards, sr)
		}
		got := mergeShards(t, fuzzRunner.Config(), fuzzRunner.Golden(), shards)
		requireResultsEqual(t, got, fuzzWant, fmtLabel("cuts", ca, cb))
	})
}
