package fault

import (
	"reflect"
	"testing"

	"repro/internal/des"
)

// TestDispatchLockstepDifferential runs two identical workload instances
// in lockstep — one on the predecoded dispatch engine, one on the
// per-step interpretive decoder — and compares the kernel's forward
// digest at every 250µs boundary. Code-range bit flips are injected at
// identical instants into both machines, so the comparison covers
// exactly the hazard predecoding introduces: an instruction word mutated
// after it was decoded must execute identically on both engines (the
// predecoder's tag compare redecodes it). The ECC variant layers latent
// flips and multi-bit trap arming on top.
func TestDispatchLockstepDifferential(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  StdWorkloadConfig
	}{
		{"ecc-off", StdWorkloadConfig{}},
		{"ecc-on", StdWorkloadConfig{ECC: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pre := NewStdWorkload(tc.cfg)
			icfg := tc.cfg
			icfg.InterpretiveDispatch = true
			itp := NewStdWorkload(icfg)

			a, err := pre.New()
			if err != nil {
				t.Fatal(err)
			}
			b, err := itp.New()
			if err != nil {
				t.Fatal(err)
			}
			if !a.Kernel.Mem().PredecodeEnabled() {
				t.Fatal("default instance is not predecoded")
			}
			if b.Kernel.Mem().PredecodeEnabled() {
				t.Fatal("interpretive instance has predecode enabled")
			}

			_, words := pre.CodeRange()
			horizon := pre.Horizon()
			const boundary = 250 * des.Microsecond
			step := 0
			for now := des.Time(0); now < horizon; {
				now += boundary
				if now > horizon {
					now = horizon
				}
				if err := a.Sim.RunUntil(now); err != nil {
					t.Fatal(err)
				}
				if err := b.Sim.RunUntil(now); err != nil {
					t.Fatal(err)
				}
				da := a.Kernel.ForwardDigest(des.Event{})
				db := b.Kernel.ForwardDigest(des.Event{})
				if da != db {
					t.Fatalf("digest diverged at %v (step %d): predecoded %#x, interpretive %#x",
						now, step, da, db)
				}
				// Inject one code flip per boundary, walking the image and
				// the bit positions so opcode, register, and immediate
				// fields all get hit across the run.
				w := uint32(step*7) % words
				bit := uint(step*5) % 32
				addr := stdCode + w*4
				a.Kernel.Mem().FlipBit(addr, bit)
				b.Kernel.Mem().FlipBit(addr, bit)
				if tc.cfg.ECC && step%3 == 0 {
					// A second flip in the same word arms a multi-bit ECC
					// trap for the next fetch of that instruction.
					a.Kernel.Mem().FlipBit(addr, (bit+11)%32)
					b.Kernel.Mem().FlipBit(addr, (bit+11)%32)
				}
				step++
			}

			if !reflect.DeepEqual(a.Rec.Writes, b.Rec.Writes) {
				t.Errorf("committed writes diverged:\npredecoded:   %v\ninterpretive: %v",
					a.Rec.Writes, b.Rec.Writes)
			}
			fa, ra := a.Kernel.Failed()
			fb, rb := b.Kernel.Failed()
			if fa != fb || ra != rb {
				t.Errorf("failure state diverged: predecoded (%v, %q), interpretive (%v, %q)",
					fa, ra, fb, rb)
			}
		})
	}
}

// TestCampaignDispatchEquivalence runs the same fault campaign on both
// dispatch engines and requires bit-identical classification: every
// trial record, the outcome tallies, and the estimated proportions. The
// campaign's memory-code faults flip instruction words mid-trial, so
// this covers injected-opcode execution through the fork engine's
// restore path as well.
func TestCampaignDispatchEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  StdWorkloadConfig
	}{
		{"ecc-off", StdWorkloadConfig{}},
		{"ecc-on", StdWorkloadConfig{ECC: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ccfg := CampaignConfig{Trials: 160, Seed: 77, Parallelism: 2}
			pre, err := Run(NewStdWorkload(tc.cfg), ccfg)
			if err != nil {
				t.Fatal(err)
			}
			icfg := tc.cfg
			icfg.InterpretiveDispatch = true
			itp, err := Run(NewStdWorkload(icfg), ccfg)
			if err != nil {
				t.Fatal(err)
			}
			for i := range pre.Trials {
				if !reflect.DeepEqual(pre.Trials[i], itp.Trials[i]) {
					t.Fatalf("trial %d diverged:\npredecoded:   %+v\ninterpretive: %+v",
						i, pre.Trials[i], itp.Trials[i])
				}
			}
			if !reflect.DeepEqual(pre.Counts, itp.Counts) {
				t.Errorf("tallies diverged: predecoded %v, interpretive %v", pre.Counts, itp.Counts)
			}
			if pre.CD != itp.CD || pre.PT != itp.PT || pre.POM != itp.POM || pre.PFS != itp.PFS {
				t.Errorf("estimates diverged")
			}
			// The engines write the same words, so the dirty-page traffic
			// of the checkpoint store must match exactly too.
			if !reflect.DeepEqual(pre.Snapshots, itp.Snapshots) {
				t.Errorf("snapshot stats diverged: predecoded %+v, interpretive %+v",
					pre.Snapshots, itp.Snapshots)
			}
		})
	}
}
