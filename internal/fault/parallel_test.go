package fault

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/obs"
)

// TestCampaignParallelDeterminism is the contract of the parallel
// executor: a campaign with Parallelism 8 must produce a Result
// bit-identical to Parallelism 1 for the same seed — same trial order,
// same per-trial records, same tallies, same estimates.
func TestCampaignParallelDeterminism(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	seq, err := Run(w, CampaignConfig{Trials: 120, Seed: 42, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(w, CampaignConfig{Trials: 120, Seed: 42, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Trials) != len(par.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(seq.Trials), len(par.Trials))
	}
	for i := range seq.Trials {
		if !reflect.DeepEqual(seq.Trials[i], par.Trials[i]) {
			t.Fatalf("trial %d diverged:\nseq: %+v\npar: %+v", i, seq.Trials[i], par.Trials[i])
		}
	}
	// Everything except the configured parallelism and the
	// checkpoint-store traffic must match exactly. Snapshot stats are
	// measurements of the execution, not of the workload: every worker
	// captures its own checkpoint chain, so capture counts scale with the
	// worker count by construction. The chain shape itself is still
	// deterministic — pin that before excluding the counters.
	if seq.Snapshots == nil || par.Snapshots == nil {
		t.Fatalf("fork campaign left Snapshots nil: seq=%v par=%v", seq.Snapshots, par.Snapshots)
	}
	if seq.Snapshots.Checkpoints != par.Snapshots.Checkpoints {
		t.Errorf("checkpoint counts diverged: seq %d, par %d",
			seq.Snapshots.Checkpoints, par.Snapshots.Checkpoints)
	}
	par.Config.Parallelism = seq.Config.Parallelism
	par.Snapshots = seq.Snapshots
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("aggregate results diverged:\nseq: %+v %v %v %v\npar: %+v %v %v %v",
			seq.Counts, seq.CD, seq.PT, seq.POM, par.Counts, par.CD, par.PT, par.POM)
	}
}

// TestCampaignTelemetryDeterminism extends the parallel-executor
// contract to the observability layer: with telemetry (metrics + event
// streams) enabled, the merged metrics registry and the merged event
// stream must digest identically for Parallelism 1, 4 and GOMAXPROCS at
// a fixed seed — the per-trial collectors merge in trial-index order
// whatever the worker count.
func TestCampaignTelemetryDeterminism(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	parallelisms := []int{1, 4, runtime.GOMAXPROCS(0)}
	var wantMetrics, wantEvents, wantGolden uint64
	for i, p := range parallelisms {
		res, err := Run(w, CampaignConfig{
			Trials: 96, Seed: 42, Parallelism: p, TelemetryEvents: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Metrics == nil {
			t.Fatal("telemetry enabled but Metrics is nil")
		}
		if len(res.Events) == 0 || len(res.GoldenEvents) == 0 {
			t.Fatalf("event streams empty: %d campaign, %d golden",
				len(res.Events), len(res.GoldenEvents))
		}
		gotMetrics := res.Metrics.Digest()
		gotEvents := obs.DigestEvents(res.Events)
		gotGolden := obs.DigestEvents(res.GoldenEvents)
		if i == 0 {
			wantMetrics, wantEvents, wantGolden = gotMetrics, gotEvents, gotGolden
			continue
		}
		if gotMetrics != wantMetrics {
			t.Errorf("parallelism %d: metrics digest %x, want %x", p, gotMetrics, wantMetrics)
		}
		if gotEvents != wantEvents {
			t.Errorf("parallelism %d: events digest %x, want %x", p, gotEvents, wantEvents)
		}
		if gotGolden != wantGolden {
			t.Errorf("parallelism %d: golden digest %x, want %x", p, gotGolden, wantGolden)
		}
	}
}

// TestCampaignParallelismDefaults: zero and negative parallelism select
// GOMAXPROCS, and an over-provisioned pool (more workers than trials)
// still classifies every trial once.
func TestCampaignParallelismDefaults(t *testing.T) {
	var cfg CampaignConfig
	cfg.applyDefaults()
	if cfg.Parallelism < 1 {
		t.Errorf("default parallelism = %d, want >= 1", cfg.Parallelism)
	}
	w := NewStdWorkload(StdWorkloadConfig{})
	res, err := Run(w, CampaignConfig{Trials: 3, Seed: 9, Parallelism: 16})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 3 {
		t.Errorf("classified %d of 3 trials", total)
	}
}

// TestKernelHitClassification pins the kernel-hit branch semantics that
// the (previously ambiguous) precedence at the injection callback
// encodes: a modelled kernel hit is forced fail-silent only when the
// kernel's own EDMs detect it; an undetected modelled kernel hit is a
// non-covered error and classifies as a value failure.
func TestKernelHitClassification(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})

	// Every fault is a modelled kernel hit and every hit is detected:
	// all trials must end fail-silent, attributed to the kernel.
	det, err := Run(w, CampaignConfig{
		Trials: 30, Seed: 5, KernelShare: 1.0, KernelDetect: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.Counts[FailSilent] != 30 {
		t.Errorf("detected kernel hits: fail-silent = %d, want 30: %v",
			det.Counts[FailSilent], det.Counts)
	}
	for i, rec := range det.Trials {
		if !rec.Kernel {
			t.Fatalf("trial %d not marked as kernel hit", i)
		}
	}

	// Every fault is a modelled kernel hit and none is detected (the
	// KernelDetect probability is effectively zero; literal zero selects
	// the default): all trials are non-covered kernel errors, which the
	// paper treats pessimistically as (potential) value failures.
	undet, err := Run(w, CampaignConfig{
		Trials: 30, Seed: 5, KernelShare: 1.0, KernelDetect: 1e-300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if undet.Counts[ValueFailure] != 30 {
		t.Errorf("undetected kernel hits: value failures = %d, want 30: %v",
			undet.Counts[ValueFailure], undet.Counts)
	}
	if undet.CD.P != 0 {
		t.Errorf("C_D = %v for undetected kernel faults, want 0", undet.CD)
	}
}
