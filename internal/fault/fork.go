package fault

// The checkpoint/fork campaign engine. Every trial of a campaign
// simulates the same fault-free prefix up to its injection instant;
// only the suffix after the fault differs. The engine captures the
// golden prefix once per worker — full-machine snapshots at checkpoint
// boundaries — and each trial restores the latest sound checkpoint
// before its fault instead of re-simulating from t=0.
//
// Soundness of the fork (why a forked trial is bit-identical to one
// simulated from scratch):
//
//  1. Identity preservation. Snapshots are captured from, and restored
//     into, the same Instance: every model object (simulator event
//     pool, kernel, tcbs, job records, collector series) is rewound in
//     place, so the callback closures held by queued events and the
//     pointers cached across components stay valid. Event pool
//     generation counters rewind with the pool, which revalidates
//     exactly the handles that were live at capture time — and every
//     holder of such a handle is restored from the same checkpoint.
//
//  2. Prefix equality. A legacy trial keeps its injection event queued
//     from t=0 until it fires, and a pending event bounds the kernel's
//     co-simulated CPU slices (runSlice cuts each slice at the next
//     queued instant). The capture run therefore schedules a phantom
//     injection at (MaxTime, PrioInject): the queue depth matches a
//     legacy trial's, and the phantom, sitting at MaxTime, can never
//     bound a slice differently from a legacy injection unless a slice
//     reaches past the fault instant. The checkpoint-selection rule
//     rejects exactly those checkpoints: a trial with fault time t
//     restores the latest checkpoint k with time(k) < t AND
//     cpuBusyUntil(k) <= t. cpuBusyUntil is the end of the last
//     committed slice and is monotone over the run, so the condition
//     guarantees no capture slice in the restored prefix crossed t —
//     meaning the legacy injection event could not have bounded any of
//     those slices either (a slice that would have been cut at t ends
//     at or before t, and one that ran past t bumps cpuBusyUntil past t
//     and disqualifies the checkpoint). The restored prefix is thus
//     bit-identical to the prefix a from-scratch trial would simulate.
//
//  3. Suffix equality. After the restore the trial cancels the phantom
//     and schedules the real injection at (t, PrioInject); the replayed
//     [checkpoint, t) window and the post-injection suffix then run
//     under exactly the legacy event set. The injection occupies the
//     PrioInject band alone at its instant, so its sequence number
//     (which differs from a from-scratch trial's) can never influence
//     tie-breaking.
//
// The convergence cutoff (§ optional, metrics-free campaigns only) is
// documented on checkConvergence below.

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// SnapshotHinter is implemented by workloads that know a natural
// checkpoint spacing — typically their period, so checkpoint boundaries
// coincide with release instants. Since delta snapshots made captures
// near-free, the hint only matters when it is finer than the 250 µs
// default (boundary alignment is then preserved); a coarser hint no
// longer wins, because dense checkpoints are what make fork restores
// and convergence cutoffs cheap.
type SnapshotHinter interface {
	// SnapshotInterval returns the preferred checkpoint spacing.
	SnapshotInterval() des.Time
}

// maxCheckpoints bounds the per-worker checkpoint count so a
// pathologically small SnapshotInterval cannot exhaust memory; the
// interval is clamped up to horizon/maxCheckpoints. With delta
// snapshots a checkpoint costs only its dirtied pages, so the clamp is
// loose — it exists to stop degenerate configurations, not to ration
// full-image copies as the pre-delta engine had to.
const maxCheckpoints = 4096

// defaultForkInterval is the checkpoint spacing used when neither the
// campaign config nor a finer workload hint supplies one. 250 µs is the
// dense regime the fork benchmarks identified as the throughput
// optimum for the standard workload; delta snapshots make its capture
// cost negligible.
const defaultForkInterval = 250 * des.Microsecond

// resolveForkInterval picks the checkpoint spacing for a campaign:
// explicit config wins; otherwise the 250 µs default, tightened to the
// workload's hint when that is finer; pathologically small results are
// clamped so the store stays bounded.
func resolveForkInterval(w Workload, cfg *CampaignConfig) des.Time {
	horizon := w.Horizon()
	interval := cfg.SnapshotInterval
	if interval <= 0 {
		interval = defaultForkInterval
		if h, ok := w.(SnapshotHinter); ok {
			if hint := h.SnapshotInterval(); hint > 0 && hint < interval {
				interval = hint
			}
		}
	}
	if min := horizon / maxCheckpoints; interval < min {
		interval = min
	}
	if interval <= 0 {
		interval = horizon
	}
	return interval
}

// InstanceState is one checkpoint of a trial instance: simulator,
// kernel (with processor, memory and MMU), the recorder, and — when the
// campaign collects telemetry — the collector. Recorder state is a full
// copy, not a length: a forked trial overwrites the shared Writes
// buffer past the checkpoint, so truncation alone could resurrect a
// previous trial's tail.
type InstanceState struct {
	sim  des.SimState
	kern kernel.KernelState
	col  *obs.CollectorState

	writes         []Write
	omissions      int
	maskedReleases int

	// at is the capture instant; writesLen the golden write count at it;
	// eventsLen the collector's event count at it (0 without a
	// collector); fwdDigest the kernel forward digest at it (net of the
	// phantom).
	//nlft:snapshot-skip capture metadata read by fork selection, set by Capture not Snapshot
	at des.Time
	//nlft:snapshot-skip capture metadata: golden-prefix length consumed by classification, not rewound
	writesLen int
	//nlft:snapshot-skip capture metadata: event-prefix length consumed by classification, not rewound
	eventsLen int
	//nlft:snapshot-skip capture metadata set by the convergence probe, compared not rewound
	fwdDigest uint64
}

// Snapshot captures inst (and col, when non-nil) into st.
//
//nlft:noalloc
func (inst *Instance) Snapshot(into *InstanceState, col *obs.Collector) {
	inst.Sim.Snapshot(&into.sim)
	inst.Kernel.Snapshot(&into.kern)
	if col != nil {
		if into.col == nil {
			//nlft:allow noalloc cold first-capture path: the state is retained per checkpoint
			into.col = obs.NewCollectorState()
		}
		col.Snapshot(into.col)
		into.eventsLen = len(col.Events())
	}
	into.writes = append(into.writes[:0], inst.Rec.Writes...)
	into.omissions = inst.Rec.Omissions
	into.maskedReleases = inst.Rec.MaskedReleases
	into.writesLen = len(into.writes)
}

// Restore rewinds inst (and col, when non-nil) to a state captured from
// the same instance with Snapshot.
//
//nlft:noalloc
func (inst *Instance) Restore(from *InstanceState, col *obs.Collector) {
	inst.Sim.Restore(&from.sim)
	inst.Kernel.Restore(&from.kern)
	if col != nil && from.col != nil {
		col.Restore(from.col)
	}
	inst.Rec.Writes = append(inst.Rec.Writes[:0], from.writes...)
	inst.Rec.Omissions = from.omissions
	inst.Rec.MaskedReleases = from.maskedReleases
}

// checkpointStore is one worker's golden-prefix checkpoint sequence.
type checkpointStore struct {
	states []*InstanceState
	// phantom is the placeholder injection event scheduled before the
	// capture run (see the prefix-equality argument above). Its handle
	// revalidates at every restore; each trial cancels it and schedules
	// the real injection.
	phantom des.Event
}

// captureCheckpoints runs inst fault-free, snapshotting at every
// boundary k·interval < horizon. Checkpoint 0 is captured before any
// event fires, so a fault at t=0 still restores a pre-injection state
// (the injection priority band fires before the first releases).
func captureCheckpoints(inst *Instance, col *obs.Collector, interval, horizon des.Time) (*checkpointStore, error) {
	cs := &checkpointStore{}
	cs.phantom = inst.Sim.Schedule(des.MaxTime, des.PrioInject, func() {})
	for t := des.Time(0); t < horizon; t += interval {
		if t > 0 {
			if err := inst.Sim.RunUntil(t); err != nil {
				return nil, fmt.Errorf("fault: capture run: %w", err)
			}
		}
		st := &InstanceState{at: t}
		inst.Snapshot(st, col)
		st.fwdDigest = inst.Kernel.ForwardDigest(cs.phantom)
		cs.states = append(cs.states, st)
	}
	return cs, nil
}

// selectFor returns the index of the fork base for a fault at the given
// instant: the latest checkpoint strictly before it whose committed CPU
// slices all end at or before it (see the prefix-equality argument).
// cpuBusyUntil is monotone over the capture run, so the scan can stop
// at the first violation.
func (cs *checkpointStore) selectFor(at des.Time) int {
	best := 0
	for k := 1; k < len(cs.states); k++ {
		st := cs.states[k]
		if st.at >= at || st.kern.CPUBusyUntil() > at {
			break
		}
		best = k
	}
	return best
}

// trialPlan precomputes one trial's random decisions. The draws replay
// runTrial's exact order on the trial's (Seed, index) stream — fault
// first, then the kernel-hit coin, then (only on a hit) the
// kernel-detect coin — so planned trials consume the stream identically
// to legacy trials and every derived value is bit-equal.
type trialPlan struct {
	fault          Fault
	kernelHit      bool
	kernelDetected bool
	// ckpt is the fork base, filled in per worker (every worker's
	// deterministic capture yields the same checkpoint geometry).
	ckpt int
}

// planForTrial precomputes one trial's decisions: the enumerated
// placement when cfg.Plan is set (planned campaigns toss no coins — the
// kernel-hit model's deterministic part, the activity check at the
// injection instant, still applies), otherwise runTrial's exact draw
// order on the trial's (Seed, index) stream.
func planForTrial(w Workload, cfg *CampaignConfig, trial int) trialPlan {
	if cfg.Plan != nil {
		return trialPlan{fault: cfg.Plan[trial]}
	}
	rng := des.NewRandIndexed(cfg.Seed, uint64(trial))
	f := drawFault(w, *cfg, rng)
	kh := rng.Bool(cfg.KernelShare)
	kd := kh && rng.Bool(cfg.KernelDetect)
	return trialPlan{fault: f, kernelHit: kh, kernelDetected: kd}
}

// planTrials precomputes all trials' plans.
func planTrials(w Workload, cfg *CampaignConfig) []trialPlan {
	plans := make([]trialPlan, cfg.Trials)
	for i := range plans {
		plans[i] = planForTrial(w, cfg, i)
	}
	return plans
}

// forkWorker owns one instance, its checkpoint store, and the bound
// per-trial callbacks. The injection and convergence callbacks are
// closures created once per worker that read the worker's current-trial
// fields, so the per-trial loop schedules events without allocating
// closures.
type forkWorker struct {
	inst    *Instance
	col     *obs.Collector
	cs      *checkpointStore
	golden  []Write
	horizon des.Time
	cutoff  bool

	// Current-trial state read by the bound callbacks.
	plan             trialPlan
	rec              *TrialRecord
	undetectedKernel bool
	converged        bool
	convergedAt      int
	nextCheck        int

	injectFn func()
	checkFn  func()
	splice   []Write
	scratch  trialScratch
}

// runForkTrials is one worker's trial loop on the fork path: build an
// instance, capture checkpoints, then run this worker's strided share
// of the trials bucketed by fork base (ascending checkpoint index, so
// consecutive trials restore the same snapshot and the restore source
// stays cache-warm). Records land at their trial index, so Result order
// is the sequential order regardless of workers or bucketing.
func runForkTrials(w Workload, cfg *CampaignConfig, wk, workers int, golden []Write,
	res *Result, t *tally, plans []trialPlan, trialEvents [][]obs.Event,
	workerRegs []*obs.Registry, snaps []SnapshotStats, progress func()) error {
	var col *obs.Collector
	switch {
	case cfg.TelemetryEvents:
		col = newTrialCollector(cfg)
	case cfg.Telemetry:
		col = newWorkerCollector()
	}
	var accCol *obs.Collector
	if cfg.Telemetry {
		accCol = newWorkerCollector()
		workerRegs[wk] = accCol.Registry()
	}
	fw, err := newForkWorker(w, cfg, col, golden)
	if err != nil {
		return err
	}
	mine := make([]int, 0, (cfg.Trials-wk+workers-1)/workers)
	for trial := wk; trial < cfg.Trials; trial += workers {
		plans[trial].ckpt = fw.cs.selectFor(plans[trial].fault.At)
		mine = append(mine, trial)
	}
	sort.SliceStable(mine, func(a, b int) bool {
		return plans[mine[a]].ckpt < plans[mine[b]].ckpt
	})
	for _, trial := range mine {
		rec, err := fw.runTrial(plans[trial])
		if err != nil {
			return fmt.Errorf("fault: trial %d: %w", trial, err)
		}
		if accCol != nil {
			// The shared collector's registry holds exactly this trial's
			// full registry (checkpoint prefix + simulated suffix), like a
			// legacy per-trial collector's; accumulate it before the next
			// restore rewinds it.
			accCol.Registry().Merge(col.Registry())
		}
		if trialEvents != nil {
			trialEvents[trial] = append([]obs.Event(nil), col.Events()...)
		}
		recordTrialMetrics(accCol, &rec)
		res.Trials[trial] = rec
		t.record(&rec)
		progress()
	}
	ms := fw.inst.Kernel.Mem()
	snaps[wk] = SnapshotStats{
		Workers:       1,
		Checkpoints:   len(fw.cs.states),
		PageBytes:     cpu.PageBytes,
		RAMBytes:      uint64(ms.SizeBytes()),
		Snapshots:     ms.Snap.Snapshots,
		Restores:      ms.Snap.Restores,
		PagesCopied:   ms.Snap.PagesCopied,
		PagesRestored: ms.Snap.PagesRestored,
	}
	return nil
}

// newForkWorker builds a worker instance and captures its checkpoints.
func newForkWorker(w Workload, cfg *CampaignConfig, col *obs.Collector, golden []Write) (*forkWorker, error) {
	inst, err := newInstance(w, col)
	if err != nil {
		return nil, err
	}
	fw := &forkWorker{
		inst:    inst,
		col:     col,
		golden:  golden,
		horizon: w.Horizon(),
		cutoff:  !cfg.NoConvergeCutoff && !cfg.Telemetry,
	}
	fw.injectFn = func() { fw.inject() }
	fw.checkFn = func() { fw.checkConvergence() }
	fw.cs, err = captureCheckpoints(inst, col, resolveForkInterval(w, cfg), fw.horizon)
	if err != nil {
		return nil, err
	}
	return fw, nil
}

// inject applies the current trial's fault — the same decision tree as
// the legacy runTrial closure. A modelled kernel hit is detected with
// probability KernelDetect; a fault landing while the kernel itself
// executes (and not already modelled as a kernel hit) is always caught
// by the kernel EDMs.
func (fw *forkWorker) inject() {
	if fw.plan.kernelHit || fw.inst.Kernel.Activity() == kernel.ActivityKernel {
		fw.rec.Kernel = true
		if fw.plan.kernelDetected || (fw.inst.Kernel.Activity() == kernel.ActivityKernel && !fw.plan.kernelHit) {
			fw.inst.Kernel.ForceFailSilent("kernel EDM: assertion after fault")
		} else {
			fw.undetectedKernel = true
		}
		return
	}
	apply(fw.inst, fw.plan.fault)
}

// checkConvergence fires at a checkpoint boundary after the injection
// and compares the trial's forward digest against the golden run's at
// the same boundary. The digest covers everything that can influence
// the remainder of the run — the clock, the pending-event multiset, the
// processor, memory, and all live scheduler/TEM state (see
// kernel.ForwardDigest) — so equality proves the trial's future is the
// golden future and the suffix need not be simulated: the trial's
// outcome is classified from its current counters plus the golden
// suffix (whose omission/masking/detection deltas are zero, the golden
// run being fault-free, and whose writes are spliced on).
//
// The checker is self-rearming: the next boundary's check is scheduled
// only after the current one completes, so at digest time no checker
// event is pending and the trial's pending-event multiset is compared
// against the golden capture's without correction. Pending checker
// events between boundaries can split the kernel's CPU slices at
// boundary instants; a split slice resumes the same copy with no
// context-switch overhead and no state change, so outcomes and
// recorder-visible behaviour are unaffected.
func (fw *forkWorker) checkConvergence() {
	b := fw.nextCheck
	if fw.inst.Kernel.ForwardDigest(des.Event{}) == fw.cs.states[b].fwdDigest {
		fw.converged = true
		fw.convergedAt = b
		fw.inst.Sim.Stop()
		return
	}
	fw.nextCheck++
	if fw.nextCheck < len(fw.cs.states) {
		fw.inst.Sim.Schedule(fw.cs.states[fw.nextCheck].at, des.PrioObserver, fw.checkFn)
	}
}

// runTrial executes one forked trial: restore the fork base, swap the
// phantom for the real injection, run (with optional convergence
// cutoff), and classify exactly like the legacy path.
func (fw *forkWorker) runTrial(plan trialPlan) (TrialRecord, error) {
	fw.inst.Restore(fw.cs.states[plan.ckpt], fw.col)
	fw.inst.Sim.Cancel(fw.cs.phantom)

	rec := TrialRecord{Fault: plan.fault}
	fw.plan = plan
	fw.rec = &rec
	fw.undetectedKernel = false
	fw.converged = false
	fw.inst.Sim.Schedule(plan.fault.At, des.PrioInject, fw.injectFn)

	if fw.cutoff {
		fw.nextCheck = len(fw.cs.states)
		for b := plan.ckpt + 1; b < len(fw.cs.states); b++ {
			if fw.cs.states[b].at > plan.fault.At {
				fw.nextCheck = b
				break
			}
		}
		if fw.nextCheck < len(fw.cs.states) {
			fw.inst.Sim.Schedule(fw.cs.states[fw.nextCheck].at, des.PrioObserver, fw.checkFn)
		}
	}

	err := fw.inst.Sim.RunUntil(fw.horizon)
	switch {
	case err == nil:
	case errors.Is(err, des.ErrStopped) && fw.converged:
	default:
		return TrialRecord{}, err
	}

	// Mechanism attribution, identical to the legacy path. A converged
	// trial's counters are final: the golden suffix is fault-free, so it
	// contributes no detections (and the digest's memory fold proves no
	// ECC flip was still pending at the cutoff).
	mechs := fw.scratch.mechs[:0]
	st := fw.inst.Kernel.Stats()
	//nlft:allow nodeterminism collection order is erased by the sort.Strings below
	for m, n := range st.ErrorsDetected {
		if n > 0 {
			mechs = append(mechs, m)
		}
	}
	if fw.inst.Kernel.Mem().CorrectedErrors > 0 {
		mechs = append(mechs, "ecc")
	}
	sort.Strings(mechs)
	fw.scratch.mechs = mechs
	if len(mechs) > 0 {
		rec.Mechanisms = make([]string, len(mechs))
		copy(rec.Mechanisms, mechs)
	}

	if fw.converged {
		// Splice the golden suffix onto the trial's writes and classify
		// the full sequence. The trial's omission/masking counters are
		// already final (golden suffix deltas are zero).
		wl := fw.cs.states[fw.convergedAt].writesLen
		fw.splice = append(fw.splice[:0], fw.inst.Rec.Writes...)
		fw.splice = append(fw.splice, fw.golden[wl:]...)
		saved := fw.inst.Rec.Writes
		fw.inst.Rec.Writes = fw.splice
		rec.Outcome = classify(fw.inst, fw.golden, fw.undetectedKernel)
		fw.inst.Rec.Writes = saved
	} else {
		rec.Outcome = classify(fw.inst, fw.golden, fw.undetectedKernel)
	}
	return rec, nil
}
