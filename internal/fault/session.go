package fault

// ForkSession exposes the campaign engine's checkpoint/fork machinery
// to the exhaustive verifier (internal/exhaust): one live instance, a
// golden-prefix checkpoint store captured with the campaign's exact
// phantom-injection queue geometry, and the finished golden run's
// writes and event stream so converged suffixes can be spliced instead
// of simulated. The soundness argument in fork.go applies unchanged —
// a session restore followed by a real injection is bit-identical to a
// from-scratch trial of the same placement.

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/obs"
)

// ForkSession is one worker's reusable fork state.
type ForkSession struct {
	// Inst is the live instance every restore rewinds in place.
	Inst *Instance
	// Col is the instance's collector (nil unless the session was built
	// with events); its buffer rewinds with every Restore.
	Col *obs.Collector

	cs           *checkpointStore
	golden       []Write
	goldenEvents []obs.Event
	horizon      des.Time
	runner       *forkWorker
}

// NewForkSession builds an instance, captures golden-prefix checkpoints
// at the resolved spacing (interval 0 means the campaign default), and
// finishes the golden run to the horizon, validating it the way Run
// does. With withEvents the instance carries a collector with no event
// cap, so every restore rewinds a complete event stream — the
// exhaustive verifier checks TEM invariants over full traces.
func NewForkSession(w Workload, interval des.Time, withEvents bool) (*ForkSession, error) {
	var col *obs.Collector
	if withEvents {
		if _, ok := w.(ObservableWorkload); !ok {
			return nil, fmt.Errorf("fault: workload is not observable; cannot collect event streams")
		}
		col = obs.NewCollector("")
		col.SetEventLimit(0) // unlimited: invariant checks need full traces
	}
	inst, err := newInstance(w, col)
	if err != nil {
		return nil, err
	}
	s := &ForkSession{Inst: inst, Col: col, horizon: w.Horizon()}
	cfg := CampaignConfig{SnapshotInterval: interval}
	s.cs, err = captureCheckpoints(inst, col, resolveForkInterval(w, &cfg), s.horizon)
	if err != nil {
		return nil, err
	}
	if err := inst.Sim.RunUntil(s.horizon); err != nil {
		return nil, fmt.Errorf("fault: golden run: %w", err)
	}
	if failed, reason := inst.Kernel.Failed(); failed {
		return nil, fmt.Errorf("fault: golden run failed silent: %s", reason)
	}
	if inst.Rec.Omissions > 0 {
		return nil, fmt.Errorf("fault: golden run had omissions; workload unschedulable")
	}
	s.golden = append([]Write(nil), inst.Rec.Writes...)
	if col != nil {
		s.goldenEvents = append([]obs.Event(nil), col.Events()...)
	}
	return s, nil
}

// Checkpoints is the checkpoint count; boundaries are indexed [0, n).
func (s *ForkSession) Checkpoints() int { return len(s.cs.states) }

// CheckpointAt is the capture instant of boundary k.
func (s *ForkSession) CheckpointAt(k int) des.Time { return s.cs.states[k].at }

// GoldenDigest is the golden run's forward digest at boundary k (net of
// the phantom, so directly comparable with Digest after an injection).
func (s *ForkSession) GoldenDigest(k int) uint64 { return s.cs.states[k].fwdDigest }

// GoldenWritesLen is the golden write count at boundary k.
func (s *ForkSession) GoldenWritesLen(k int) int { return s.cs.states[k].writesLen }

// GoldenEventsLen is the golden event count at boundary k (0 without a
// collector).
func (s *ForkSession) GoldenEventsLen(k int) int { return s.cs.states[k].eventsLen }

// Select returns the fork base for a fault at the given instant: the
// latest checkpoint strictly before it whose committed CPU slices all
// end at or before it (the cpuBusyUntil guard — see fork.go).
func (s *ForkSession) Select(at des.Time) int { return s.cs.selectFor(at) }

// Golden is the fault-free output sequence.
func (s *ForkSession) Golden() []Write { return s.golden }

// GoldenEvents is the fault-free event stream (nil without a collector).
func (s *ForkSession) GoldenEvents() []obs.Event { return s.goldenEvents }

// Horizon is the simulated duration of one trial.
func (s *ForkSession) Horizon() des.Time { return s.horizon }

// Restore rewinds the session's instance (and collector) to checkpoint
// k and cancels the phantom injection, leaving the instance ready for
// the caller to schedule a real injection at PrioInject.
//
//nlft:noalloc
func (s *ForkSession) Restore(k int) {
	s.Inst.Restore(s.cs.states[k], s.Col)
	s.Inst.Sim.Cancel(s.cs.phantom)
}

// Digest is the instance's current forward digest with no event
// excluded (valid after Restore: the phantom is cancelled, and the real
// injection has fired by the time boundaries are compared).
//
//nlft:noalloc
func (s *ForkSession) Digest() uint64 { return s.Inst.Kernel.ForwardDigest(des.Event{}) }

// TrialSpec is one externally planned trial: the fault plus the
// campaign's modelled kernel-coin decisions. Both flags are false for
// coin-free populations — the exhaustive verifier's placements, or the
// adaptive campaign's sampled strata, whose kernel-coin branch is
// carried analytically as an exact stratum instead of being simulated.
type TrialSpec struct {
	Fault          Fault
	KernelHit      bool
	KernelDetected bool
}

// RunTrial executes one forked trial of spec on the session's
// instance: restore the latest sound checkpoint before the fault, swap
// the phantom for the real injection, run (with the convergence cutoff
// when the session carries no collector — a collector's suffix events
// cannot be skipped), and classify. The decision tree, checkpoint
// selection, and classification are the campaign engine's own
// (fork.go), so the record is bit-identical to what a campaign trial
// of the same plan would produce.
func (s *ForkSession) RunTrial(spec TrialSpec) (TrialRecord, error) {
	if s.runner == nil {
		fw := &forkWorker{
			inst:    s.Inst,
			col:     s.Col,
			cs:      s.cs,
			golden:  s.golden,
			horizon: s.horizon,
			cutoff:  s.Col == nil,
		}
		fw.injectFn = func() { fw.inject() }
		fw.checkFn = func() { fw.checkConvergence() }
		s.runner = fw
	}
	return s.runner.runTrial(trialPlan{
		fault:          spec.Fault,
		kernelHit:      spec.KernelHit,
		kernelDetected: spec.KernelDetected,
		ckpt:           s.cs.selectFor(spec.Fault.At),
	})
}

// GoldenWrites executes the workload fault-free and returns its output
// sequence — the classification reference for externally planned
// scratch trials (RunScratchTrial).
func GoldenWrites(w Workload) ([]Write, error) { return goldenRun(w, nil) }

// ScratchRunner executes externally planned trials from t=0 with no
// fork machinery — the NoFork path for the adaptive campaign. The
// zero value is ready to use; reuse one runner per worker so trial
// scratch buffers amortize.
type ScratchRunner struct {
	scratch trialScratch
}

// RunTrial executes one trial of spec from scratch and classifies it
// against golden, exactly as a NoFork campaign trial runs.
func (r *ScratchRunner) RunTrial(w Workload, spec TrialSpec, golden []Write) (TrialRecord, error) {
	plan := trialPlan{fault: spec.Fault, kernelHit: spec.KernelHit,
		kernelDetected: spec.KernelDetected}
	return runTrial(w, CampaignConfig{}, plan, golden, &r.scratch, nil)
}
