package fault

import (
	"strings"
	"testing"

	"repro/internal/des"
)

func TestGoldenRunDeterministic(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	g1, err := goldenRun(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := goldenRun(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWrites(g1, g2) {
		t.Fatal("golden runs differ between builds")
	}
	// Releases at 0..8 ms inside the 8.5 ms horizon: nine commits.
	if len(g1) != 9 {
		t.Errorf("golden writes = %d, want 9 (one per release)", len(g1))
	}
}

// TestEnumCardinalities pins NumTargets/NumOutcomes to the enum
// listings: the array-indexed campaign tallies and the adaptive
// engine's per-outcome counters size their arrays from these
// constants, so a new Target or Outcome must bump them (and valid
// values must stay the contiguous range 1..N).
func TestEnumCardinalities(t *testing.T) {
	targets := AllTargets()
	if len(targets) != NumTargets {
		t.Errorf("NumTargets = %d, AllTargets lists %d", NumTargets, len(targets))
	}
	for i, tg := range targets {
		if int(tg) != i+1 {
			t.Errorf("AllTargets[%d] = %d, want contiguous value %d", i, int(tg), i+1)
		}
	}
	outcomes := AllOutcomes()
	if len(outcomes) != NumOutcomes {
		t.Errorf("NumOutcomes = %d, AllOutcomes lists %d", NumOutcomes, len(outcomes))
	}
	for i, o := range outcomes {
		if int(o) != i+1 {
			t.Errorf("AllOutcomes[%d] = %d, want contiguous value %d", i, int(o), i+1)
		}
	}
}

// TestDrawFaultInWindow pins the stratum sampler's contract: the
// instant stays inside the half-open window, the target is the fixed
// one, and a width-1 window always yields its single instant (the
// end can never be drawn, matching drawFault's half-open convention).
func TestDrawFaultInWindow(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	start, end := w.InjectionWindow()
	mid := start + (end-start)/2
	for _, target := range AllTargets() {
		for i := 0; i < 200; i++ {
			rng := des.NewRandIndexed2(9, uint64(target), uint64(i))
			f := DrawFaultIn(w, target, mid, end, rng)
			if f.Target != target || f.At < mid || f.At >= end {
				t.Fatalf("%v trial %d: fault %+v outside [%v, %v)", target, i, f, mid, end)
			}
		}
		rng := des.NewRandIndexed2(9, uint64(target), 999)
		if f := DrawFaultIn(w, target, mid, mid+1, rng); f.At != mid {
			t.Errorf("%v: width-1 window drew %v, want %v", target, f.At, mid)
		}
	}
}

func TestSubsequenceHelpers(t *testing.T) {
	a := []Write{{1, 1}, {1, 2}, {1, 3}}
	if !isSubsequence([]Write{{1, 1}, {1, 3}}, a) {
		t.Error("valid subsequence rejected")
	}
	if isSubsequence([]Write{{1, 3}, {1, 1}}, a) {
		t.Error("out-of-order subsequence accepted")
	}
	if !isSubsequence(nil, a) {
		t.Error("empty subsequence rejected")
	}
	if isStrictPrefixOrSubsequence(a, a) {
		t.Error("equal sequence counted as strict")
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := Run(nil, CampaignConfig{Trials: 1}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(NewStdWorkload(StdWorkloadConfig{}), CampaignConfig{Trials: -1}); err == nil {
		t.Error("negative trials accepted")
	}
}

// TestCampaignSmall is the core behavioural test: a modest campaign must
// (a) be deterministic under a fixed seed, (b) classify every trial,
// (c) show the TEM shape the paper reports — the large majority of
// detected errors masked, small omission and fail-silent fractions, and
// high overall coverage.
func TestCampaignSmall(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	cfg := CampaignConfig{Trials: 300, Seed: 42}
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != 300 {
		t.Fatalf("classified %d of 300", total)
	}

	// Determinism.
	res2, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Trials {
		if res.Trials[i].Outcome != res2.Trials[i].Outcome {
			t.Fatalf("trial %d diverged across identical runs", i)
		}
	}

	if res.Activated() == 0 {
		t.Fatal("no faults activated; injector broken")
	}
	if res.CD.P < 0.8 {
		t.Errorf("C_D = %v, expected high coverage", res.CD)
	}
	if res.PT.P < 0.5 {
		t.Errorf("P_T = %v, TEM should mask the majority of detected errors", res.PT)
	}
	if res.PT.P+res.POM.P+res.PFS.P > 1.0+1e-9 {
		t.Errorf("P_T+P_OM+P_FS = %v > 1", res.PT.P+res.POM.P+res.PFS.P)
	}
	// The comparison mechanism must appear among the detectors: silent
	// data corruptions are exactly what TEM exists to catch.
	if res.ByMechanism["comparison"] == 0 {
		t.Error("comparison never detected anything")
	}
	s := res.Summary()
	for _, frag := range []string{"C_D", "P_T", "masked", "trials"} {
		if !strings.Contains(s, frag) {
			t.Errorf("summary missing %q:\n%s", frag, s)
		}
	}
}

// TestCampaignKernelShare: with KernelShare forced to 1, every fault hits
// the kernel; with high detection they become fail-silent failures.
func TestCampaignKernelShare(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	res, err := Run(w, CampaignConfig{
		Trials: 40, Seed: 7, KernelShare: 1.0, KernelDetect: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counts[FailSilent] != 40 {
		t.Errorf("fail-silent = %d, want 40: %v", res.Counts[FailSilent], res.Counts)
	}
	if res.PFS.P != 1 {
		t.Errorf("P_FS = %v, want 1", res.PFS)
	}
}

// TestCampaignECCTargetsMemory: restricting targets to memory-data
// faults with ECC enabled should yield almost no failures — ECC corrects
// single-bit errors (Table 1's ECC row).
func TestCampaignECCTargetsMemory(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	res, err := Run(w, CampaignConfig{
		Trials:      60,
		Seed:        3,
		Targets:     []Target{TargetMemoryData, TargetMemoryCode},
		KernelShare: 1e-12, // effectively disable kernel hits
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Counts[ValueFailure]; n != 0 {
		t.Errorf("value failures with ECC = %d", n)
	}
	if n := res.Counts[Omission]; n != 0 {
		t.Errorf("omissions with ECC = %d", n)
	}
}

// TestCampaignRegisterFaultsAreMaskedByTEM: register faults during task
// execution are the paper's canonical TEM-maskable class.
func TestCampaignRegisterFaultsAreMaskedByTEM(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	res, err := Run(w, CampaignConfig{
		Trials:      200,
		Seed:        11,
		Targets:     []Target{TargetRegister, TargetALU},
		KernelShare: 1e-12,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Activated() == 0 {
		t.Fatal("nothing activated")
	}
	if res.CD.P < 0.95 {
		t.Errorf("C_D for register/ALU faults = %v; TEM comparison should catch these", res.CD)
	}
	if res.PT.P < 0.8 {
		t.Errorf("P_T = %v; register faults should overwhelmingly be masked", res.PT)
	}
	if res.Counts[ValueFailure] > res.Config.Trials/20 {
		t.Errorf("too many value failures: %d", res.Counts[ValueFailure])
	}
}

func TestFaultString(t *testing.T) {
	cases := []Fault{
		{Target: TargetRegister, Reg: 3, Bit: 5, At: des.Microsecond},
		{Target: TargetPC, Bit: 1},
		{Target: TargetALU, Mask: 0x10},
		{Target: TargetMemoryData, Addr: 0x8000, Bit: 2},
	}
	for _, f := range cases {
		if f.String() == "" || !strings.Contains(f.String(), f.Target.String()) {
			t.Errorf("String() = %q", f.String())
		}
	}
	for _, target := range AllTargets() {
		if target.String() == "" {
			t.Error("unnamed target")
		}
	}
	for _, o := range []Outcome{NotActivated, Masked, Omission, FailSilent, ValueFailure} {
		if o.String() == "" {
			t.Error("unnamed outcome")
		}
	}
}

func BenchmarkCampaignTrial(b *testing.B) {
	w := NewStdWorkload(StdWorkloadConfig{})
	golden, err := goldenRun(w, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := CampaignConfig{Trials: 1}
	cfg.applyDefaults()
	var scratch trialScratch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		plan := planForTrial(w, &cfg, i)
		if _, err := runTrial(w, cfg, plan, golden, &scratch, nil); err != nil {
			b.Fatal(err)
		}
	}
}
