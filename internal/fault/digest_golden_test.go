package fault

import (
	"runtime"
	"testing"

	"repro/internal/obs"
)

// Golden values recorded on the container/heap + per-event-allocation
// DES core (pre-pooling), pinning the exact observable behaviour the
// zero-allocation rewrite must preserve: the merged telemetry digests
// and the campaign outcome counts (the Table 1 inputs) are required to
// be bit-identical before and after the pooled-event substitution, at
// any parallelism. If one of these values ever changes, the event core
// stopped being a pure performance change.
const (
	goldenMetricsDigest = 0x27985f346b5a7771
	goldenEventsDigest  = 0x3133d4ed029107dd
	goldenGoldenDigest  = 0xf469215e89ce4bdf
)

// goldenOutcomeCounts pins the Table 1 outcome tallies of a fixed
// 200-trial campaign (Seed 1, all targets, ECC on).
var goldenOutcomeCounts = map[Outcome]int{
	NotActivated: 107,
	Masked:       80,
	Omission:     0,
	FailSilent:   13,
	ValueFailure: 0,
}

// TestCampaignDigestGolden runs the reference telemetry campaign at
// Parallelism 1, 4 and GOMAXPROCS and requires the metric and event
// digests to equal the recorded pre-rewrite values exactly.
func TestCampaignDigestGolden(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	for _, p := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Run(w, CampaignConfig{
			Trials: 96, Seed: 42, Parallelism: p, TelemetryEvents: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Metrics.Digest(); got != goldenMetricsDigest {
			t.Errorf("parallelism %d: metrics digest %#x, want %#x", p, got, uint64(goldenMetricsDigest))
		}
		if got := obs.DigestEvents(res.Events); got != goldenEventsDigest {
			t.Errorf("parallelism %d: events digest %#x, want %#x", p, got, uint64(goldenEventsDigest))
		}
		if got := obs.DigestEvents(res.GoldenEvents); got != goldenGoldenDigest {
			t.Errorf("parallelism %d: golden-run digest %#x, want %#x", p, got, uint64(goldenGoldenDigest))
		}
	}
}

// TestCampaignTable1Golden pins the outcome counts of a fixed campaign:
// the Table 1 coverage numbers derive from these tallies, so equality
// here means the reproduced table is unchanged by the DES rewrite.
func TestCampaignTable1Golden(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	res, err := Run(w, CampaignConfig{Trials: 200, Seed: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []Outcome{NotActivated, Masked, Omission, FailSilent, ValueFailure} {
		if res.Counts[o] != goldenOutcomeCounts[o] {
			t.Errorf("outcome %v: %d trials, want %d", o, res.Counts[o], goldenOutcomeCounts[o])
		}
	}
}
