package fault

import (
	"reflect"
	"testing"

	"repro/internal/des"
	"repro/internal/obs"
)

// forkEquivCases are the campaign shapes the fork engine must reproduce
// bit-identically: every telemetry mode, serial and parallel workers,
// and a checkpoint spacing that does not divide the period evenly.
var forkEquivCases = []struct {
	name string
	cfg  CampaignConfig
}{
	{"classify", CampaignConfig{Trials: 64, Seed: 7}},
	{"classify-parallel", CampaignConfig{Trials: 64, Seed: 7, Parallelism: 3}},
	{"classify-no-cutoff", CampaignConfig{Trials: 64, Seed: 7, NoConvergeCutoff: true}},
	{"classify-odd-interval", CampaignConfig{Trials: 64, Seed: 7,
		SnapshotInterval: 300 * des.Microsecond}},
	{"metrics", CampaignConfig{Trials: 48, Seed: 11, Telemetry: true, Parallelism: 2}},
	{"events", CampaignConfig{Trials: 48, Seed: 11, TelemetryEvents: true, Parallelism: 2}},
}

// TestCampaignForkEquivalence runs the same campaign with the fork
// engine on and off and requires every observable — trial records,
// outcome tallies, mechanism and target attributions, merged metrics,
// and event streams — to be bit-identical. This is the differential
// guard for the whole fork path: checkpoint selection, in-place restore,
// phantom-injection swap, convergence cutoff, and telemetry
// accumulation.
func TestCampaignForkEquivalence(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	for _, tc := range forkEquivCases {
		t.Run(tc.name, func(t *testing.T) {
			legacyCfg := tc.cfg
			legacyCfg.NoFork = true
			want, err := Run(w, legacyCfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Run(w, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Trials, want.Trials) {
				for i := range got.Trials {
					if !reflect.DeepEqual(got.Trials[i], want.Trials[i]) {
						t.Fatalf("trial %d diverged: fork %+v, legacy %+v",
							i, got.Trials[i], want.Trials[i])
					}
				}
			}
			if !reflect.DeepEqual(got.Counts, want.Counts) {
				t.Errorf("counts: fork %v, legacy %v", got.Counts, want.Counts)
			}
			if !reflect.DeepEqual(got.ByMechanism, want.ByMechanism) {
				t.Errorf("mechanisms: fork %v, legacy %v", got.ByMechanism, want.ByMechanism)
			}
			if !reflect.DeepEqual(got.ByTarget, want.ByTarget) {
				t.Errorf("targets: fork %v, legacy %v", got.ByTarget, want.ByTarget)
			}
			if (got.Metrics == nil) != (want.Metrics == nil) {
				t.Fatalf("metrics presence: fork %v, legacy %v",
					got.Metrics != nil, want.Metrics != nil)
			}
			if got.Metrics != nil && got.Metrics.Digest() != want.Metrics.Digest() {
				t.Errorf("metrics digest: fork %#x, legacy %#x",
					got.Metrics.Digest(), want.Metrics.Digest())
			}
			if !reflect.DeepEqual(got.Events, want.Events) {
				t.Errorf("event streams differ: fork %d events (digest %#x), legacy %d (digest %#x)",
					len(got.Events), obs.DigestEvents(got.Events),
					len(want.Events), obs.DigestEvents(want.Events))
			}
			if !reflect.DeepEqual(got.GoldenEvents, want.GoldenEvents) {
				t.Errorf("golden event streams differ")
			}
		})
	}
}

// TestCheckpointRestoreDifferential proves restore+run ≡ straight run
// for every checkpoint: a capture instance is run to the horizon once
// for reference outputs and a reference forward digest, then rewound to
// each checkpoint in turn and re-run. Every replay must reproduce the
// reference bit-for-bit — the restore-layer half of the fork soundness
// argument, isolated from fault injection and checkpoint selection.
func TestCheckpointRestoreDifferential(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	inst, err := w.New()
	if err != nil {
		t.Fatal(err)
	}
	horizon := w.Horizon()
	cs, err := captureCheckpoints(inst, nil, des.Millisecond, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.states) < 3 {
		t.Fatalf("only %d checkpoints captured", len(cs.states))
	}
	// Finish the capture run: this instance's full trajectory is the
	// reference every replay must match. The phantom stays queued (it
	// sits at MaxTime), so ForwardDigest skips it on both sides.
	if err := inst.Sim.RunUntil(horizon); err != nil {
		t.Fatal(err)
	}
	refWrites := append([]Write(nil), inst.Rec.Writes...)
	refOmissions := inst.Rec.Omissions
	refMasked := inst.Rec.MaskedReleases
	refDigest := inst.Kernel.ForwardDigest(cs.phantom)
	refStats := inst.Kernel.Stats()

	for k, st := range cs.states {
		inst.Restore(st, nil)
		if got := inst.Sim.Now(); got != st.at {
			t.Fatalf("checkpoint %d: restored clock %v, want %v", k, got, st.at)
		}
		if got := inst.Kernel.ForwardDigest(cs.phantom); got != st.fwdDigest {
			t.Fatalf("checkpoint %d: restored digest %#x, want captured %#x", k, got, st.fwdDigest)
		}
		if err := inst.Sim.RunUntil(horizon); err != nil {
			t.Fatalf("checkpoint %d: replay: %v", k, err)
		}
		if !reflect.DeepEqual(inst.Rec.Writes, refWrites) {
			t.Fatalf("checkpoint %d: replay wrote %v, want %v", k, inst.Rec.Writes, refWrites)
		}
		if inst.Rec.Omissions != refOmissions || inst.Rec.MaskedReleases != refMasked {
			t.Fatalf("checkpoint %d: replay counters (%d,%d), want (%d,%d)", k,
				inst.Rec.Omissions, inst.Rec.MaskedReleases, refOmissions, refMasked)
		}
		if got := inst.Kernel.ForwardDigest(cs.phantom); got != refDigest {
			t.Fatalf("checkpoint %d: replay digest %#x, want %#x", k, got, refDigest)
		}
		if got := inst.Kernel.Stats(); !reflect.DeepEqual(got.ErrorsDetected, refStats.ErrorsDetected) {
			t.Fatalf("checkpoint %d: replay detections %v, want %v", k,
				got.ErrorsDetected, refStats.ErrorsDetected)
		}
	}
}

// TestCheckpointSelection pins the walk-back rule: the fork base for a
// fault at t is the latest checkpoint strictly before t whose committed
// CPU slices all ended by t.
func TestCheckpointSelection(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	inst, err := w.New()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := captureCheckpoints(inst, nil, des.Millisecond, w.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.selectFor(0); got != 0 {
		t.Errorf("fault at 0: checkpoint %d, want 0", got)
	}
	for k, st := range cs.states {
		if k == 0 {
			continue
		}
		// A fault exactly at a checkpoint instant must fork from an
		// earlier one (strictly-before rule: the injection priority band
		// fires before any same-instant model event).
		if got := cs.selectFor(st.at); got >= k {
			t.Errorf("fault at checkpoint %d instant: selected %d, want < %d", k, got, k)
		}
		if st.kern.CPUBusyUntil() <= st.at {
			// The checkpoint is idle-clean: a fault just after its instant
			// may fork from it.
			if got := cs.selectFor(st.at + 1); got != k {
				t.Errorf("fault just after checkpoint %d: selected %d", k, got)
			}
		}
	}
	// Monotonicity: later faults never select earlier checkpoints.
	prev := 0
	for at := des.Time(0); at < w.Horizon(); at += 100 * des.Microsecond {
		got := cs.selectFor(at)
		if got < prev {
			t.Fatalf("selection regressed: fault %v -> checkpoint %d after %d", at, got, prev)
		}
		prev = got
	}
}

// TestInjectionWindowHalfOpen pins the half-open injection-window
// contract: drawFault yields instants in [start, end) — start is
// drawable, end never is.
func TestInjectionWindowHalfOpen(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	cfg := CampaignConfig{}
	cfg.applyDefaults()
	start, end := w.InjectionWindow()
	for i := 0; i < 4096; i++ {
		rng := des.NewRandIndexed(99, uint64(i))
		f := drawFault(w, cfg, rng)
		if f.At < start || f.At >= end {
			t.Fatalf("draw %d: fault at %v outside [%v, %v)", i, f.At, start, end)
		}
	}
	// A width-1 window pins the draw to the start instant exactly.
	nw := narrowWindow{Workload: w, start: 41, end: 42}
	for i := 0; i < 64; i++ {
		rng := des.NewRandIndexed(99, uint64(i))
		if f := drawFault(nw, cfg, rng); f.At != 41 {
			t.Fatalf("width-1 window drew %v, want 41", f.At)
		}
	}
}

// narrowWindow overrides a workload's injection window.
type narrowWindow struct {
	Workload
	start, end des.Time
}

func (n narrowWindow) InjectionWindow() (des.Time, des.Time) { return n.start, n.end }

// TestForkZeroAlloc gates the fork engine's steady state: once a
// worker's checkpoints are captured and one trial has warmed the
// scratch, restoring a checkpoint and digesting the machine must not
// allocate. (Snapshot capture itself is per-worker cold-path work and
// may allocate its retained buffers.)
func TestForkZeroAlloc(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	inst, err := w.New()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := captureCheckpoints(inst, nil, des.Millisecond, w.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	// Warm: one restore of each checkpoint plus one re-capture.
	for _, st := range cs.states {
		inst.Restore(st, nil)
	}
	var rescratch InstanceState
	inst.Snapshot(&rescratch, nil)
	k := 0
	if got := testing.AllocsPerRun(64, func() {
		inst.Restore(cs.states[k], nil)
		_ = inst.Kernel.ForwardDigest(cs.phantom)
		k = (k + 1) % len(cs.states)
	}); got != 0 {
		t.Errorf("restore+digest allocates %v per run, want 0", got)
	}
	if got := testing.AllocsPerRun(64, func() {
		inst.Snapshot(&rescratch, nil)
	}); got != 0 {
		t.Errorf("warm snapshot allocates %v per run, want 0", got)
	}
}

// TestInstanceSnapshotRoundTrip exercises the snapshot layer across a
// mutation: capture, run further (mutating every component), restore,
// and require a fresh capture to reproduce the original — including the
// collector, which campaigns with telemetry rewind per trial.
func TestInstanceSnapshotRoundTrip(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true}).(*stdWorkload)
	col := obs.NewCollector("")
	col.SetEventLimit(128)
	inst, err := w.NewObserved(col)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Sim.RunUntil(2 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	var at2 InstanceState
	inst.Snapshot(&at2, col)
	digest2 := inst.Kernel.ForwardDigest(des.Event{})
	events2 := len(col.Events())

	// Mutate everything: more simulation, a memory fault, a register
	// fault.
	if err := inst.Sim.RunUntil(4 * des.Millisecond); err != nil {
		t.Fatal(err)
	}
	inst.Kernel.Mem().FlipBit(0x8000, 3)
	inst.Kernel.Proc().FlipRegister(4, 17)

	inst.Restore(&at2, col)
	if got := inst.Sim.Now(); got != 2*des.Millisecond {
		t.Fatalf("restored clock %v", got)
	}
	if got := inst.Kernel.ForwardDigest(des.Event{}); got != digest2 {
		t.Fatalf("restored digest %#x, want %#x", got, digest2)
	}
	if got := len(col.Events()); got != events2 {
		t.Fatalf("restored collector holds %d events, want %d", got, events2)
	}
	var again InstanceState
	inst.Snapshot(&again, col)
	if !reflect.DeepEqual(again.writes, at2.writes) {
		t.Fatalf("re-captured writes %v, want %v", again.writes, at2.writes)
	}
	if again.omissions != at2.omissions || again.maskedReleases != at2.maskedReleases {
		t.Fatalf("re-captured counters differ")
	}
}

// TestResolveForkInterval pins the spacing policy: explicit config wins,
// then the 250µs default tightened by a finer workload hint;
// pathologically small intervals are clamped so the store stays bounded.
func TestResolveForkInterval(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	// The standard workload hints its 1ms period — coarser than the
	// default, so the default wins.
	if got := resolveForkInterval(w, &CampaignConfig{}); got != defaultForkInterval {
		t.Errorf("hinted interval %v, want the %v default", got, defaultForkInterval)
	}
	// A hint finer than the default tightens it.
	fine := NewStdWorkload(StdWorkloadConfig{Period: 100 * des.Microsecond})
	if got := resolveForkInterval(fine, &CampaignConfig{}); got != 100*des.Microsecond {
		t.Errorf("finely hinted interval %v, want the 100us period", got)
	}
	if got := resolveForkInterval(w, &CampaignConfig{SnapshotInterval: 2 * des.Millisecond}); got != 2*des.Millisecond {
		t.Errorf("explicit interval %v, want 2ms", got)
	}
	cfg := &CampaignConfig{SnapshotInterval: 1}
	if got := resolveForkInterval(w, cfg); got < w.Horizon()/maxCheckpoints {
		t.Errorf("interval %v below the %d-checkpoint clamp", got, maxCheckpoints)
	}
	nh := noHint{w}
	if got := resolveForkInterval(nh, &CampaignConfig{}); got != defaultForkInterval {
		t.Errorf("unhinted interval %v, want the %v default", got, defaultForkInterval)
	}
}

// noHint wraps a workload, hiding any SnapshotHinter implementation.
type noHint struct{ w Workload }

func (n noHint) New() (*Instance, error)               { return n.w.New() }
func (n noHint) Horizon() des.Time                     { return n.w.Horizon() }
func (n noHint) InjectionWindow() (des.Time, des.Time) { return n.w.InjectionWindow() }
func (n noHint) DataRange() (uint32, uint32)           { return n.w.DataRange() }
func (n noHint) CodeRange() (uint32, uint32)           { return n.w.CodeRange() }
