package fault

// Result.Digest is the campaign-equivalence primitive: two campaigns
// over the same workload digest identically iff their observable
// results — golden outputs, every trial record in trial order, the
// outcome/target/mechanism tallies, and the merged telemetry registry
// — are bit-identical. The sharded orchestrator's acceptance gate
// (serial run vs coordinator/worker run at any worker count, with or
// without induced worker loss) compares exactly this value.

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Digest returns a 64-bit FNV-1a digest of the campaign's observable
// result. Config identity covers only (Trials, Seed): execution-shape
// fields like Parallelism must not perturb the digest, since the whole
// point is that they cannot perturb the result. Snapshots is excluded
// — checkpoint-store traffic is a per-process diagnostic that varies
// legitimately with worker count.
func (r *Result) Digest() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	i64 := func(v int64) { u64(uint64(v)) }
	str := func(s string) {
		h.Write([]byte(s))
		h.Write([]byte{0xff}) // separator: "ab"+"c" must not collide with "a"+"bc"
	}
	bit := func(v bool) {
		if v {
			u64(1)
		} else {
			u64(0)
		}
	}

	i64(int64(r.Config.Trials))
	u64(r.Config.Seed)

	i64(int64(len(r.Golden)))
	for _, w := range r.Golden {
		u64(uint64(w.Port))
		u64(uint64(w.Value))
	}

	i64(int64(len(r.Trials)))
	for i := range r.Trials {
		rec := &r.Trials[i]
		i64(int64(rec.Fault.At))
		i64(int64(rec.Fault.Target))
		i64(int64(rec.Fault.Reg))
		u64(uint64(rec.Fault.Bit))
		u64(uint64(rec.Fault.Addr))
		u64(uint64(rec.Fault.Mask))
		bit(rec.Kernel)
		i64(int64(rec.Outcome))
		i64(int64(len(rec.Mechanisms)))
		for _, m := range rec.Mechanisms {
			str(m)
		}
	}

	for _, o := range AllOutcomes() {
		i64(int64(r.Counts[o]))
	}
	for _, tg := range AllTargets() {
		for _, o := range AllOutcomes() {
			i64(int64(r.ByTarget[tg][o]))
		}
	}
	mechs := make([]string, 0, len(r.ByMechanism))
	//nlft:allow nodeterminism collection order is erased by the sort.Strings below
	for m := range r.ByMechanism {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		str(m)
		i64(int64(r.ByMechanism[m]))
	}

	bit(r.Metrics != nil)
	if r.Metrics != nil {
		u64(r.Metrics.Digest())
	}
	return h.Sum64()
}
