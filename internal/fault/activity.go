package fault

// Kernel-activity window extraction. A coin-free fault that lands while
// the simulated kernel itself occupies the processor is always caught
// by the kernel EDMs and forces the node fail-silent — deterministically,
// before the fault is even applied (see the injection decision tree in
// fork.go). Whether an instant t lands in kernel activity is decided
// entirely by the fault-free prefix, and every trial's prefix before
// its injection is bit-identical to the golden run's (the fork
// soundness argument; on the scratch path the only pre-injection
// difference is the pending injection event, which can cut CPU slices
// but never adds a context switch). The golden run therefore fixes,
// once and for all trials, the exact set of instants at which a
// coin-free fault fail-silences: the adaptive campaign carries that
// set's measure analytically instead of spending trials rediscovering
// it (internal/adapt).

import (
	"fmt"

	"repro/internal/des"
)

// Interval is a half-open time interval [Start, End).
type Interval struct {
	Start, End des.Time
}

// Width is the interval's length.
func (iv Interval) Width() des.Time { return iv.End - iv.Start }

// ActivityWindows runs the workload fault-free and returns the merged,
// sorted, disjoint intervals of instants at which an injection would
// observe kernel activity (Activity() == ActivityKernel).
//
// The boundary semantics match the injection event exactly: a context
// switch at instant s raises kernelBusyUntil to s+d, but an injection
// scheduled at s itself fires at PrioInject — before any same-instant
// dispatch — and so observes the pre-switch state. The window an
// injection can see is therefore [s+1, s+d), and Activity compares
// with strict <, so s+d is excluded. TestActivityWindowsExact pins
// both edges against live injections.
func ActivityWindows(w Workload) ([]Interval, error) {
	inst, err := newInstance(w, nil)
	if err != nil {
		return nil, err
	}
	var wins []Interval
	inst.Kernel.OnContextSwitch = func(start, end des.Time) {
		iv := Interval{Start: start + 1, End: end}
		if n := len(wins); n > 0 && iv.Start <= wins[n-1].End {
			// Switch instants and kernelBusyUntil are both monotone, so
			// overlapping windows only ever extend the last one.
			if iv.End > wins[n-1].End {
				wins[n-1].End = iv.End
			}
			return
		}
		wins = append(wins, iv)
	}
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return nil, err
	}
	if failed, reason := inst.Kernel.Failed(); failed {
		return nil, fmt.Errorf("fault: golden run failed silent: %s", reason)
	}
	return wins, nil
}

// OverlapWidth is the total width of the intersection of the sorted,
// disjoint intervals with the half-open window [start, end).
func OverlapWidth(wins []Interval, start, end des.Time) des.Time {
	var total des.Time
	for _, iv := range wins {
		if iv.End <= start {
			continue
		}
		if iv.Start >= end {
			break
		}
		lo, hi := iv.Start, iv.End
		if lo < start {
			lo = start
		}
		if hi > end {
			hi = end
		}
		total += hi - lo
	}
	return total
}

// Complement returns the sorted, disjoint intervals of [start, end) not
// covered by the sorted, disjoint intervals in wins.
func Complement(wins []Interval, start, end des.Time) []Interval {
	var free []Interval
	at := start
	for _, iv := range wins {
		if iv.End <= at {
			continue
		}
		if iv.Start >= end {
			break
		}
		if iv.Start > at {
			free = append(free, Interval{Start: at, End: iv.Start})
		}
		if iv.End > at {
			at = iv.End
		}
	}
	if at < end {
		free = append(free, Interval{Start: at, End: end})
	}
	return free
}
