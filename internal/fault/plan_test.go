package fault

import (
	"reflect"
	"testing"

	"repro/internal/des"
)

// TestCampaignPlanReplay: a planned campaign over the exact fault list
// a sampled campaign would draw (with kernel-hit coins effectively
// disabled) reproduces the sampled campaign's records bit-for-bit —
// the bridge the exhaustive verifier's cross-check stands on.
func TestCampaignPlanReplay(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{ECC: true})
	sampled := CampaignConfig{Trials: 64, Seed: 7, KernelShare: 1e-12}
	want, err := Run(w, sampled)
	if err != nil {
		t.Fatal(err)
	}

	cfg := sampled
	cfg.applyDefaults()
	plan := make([]Fault, cfg.Trials)
	for i := range plan {
		plan[i] = planForTrial(w, &cfg, i).fault
	}
	got, err := Run(w, CampaignConfig{Plan: plan})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Trials, want.Trials) {
		for i := range got.Trials {
			if !reflect.DeepEqual(got.Trials[i], want.Trials[i]) {
				t.Fatalf("trial %d: planned %+v, sampled %+v",
					i, got.Trials[i], want.Trials[i])
			}
		}
	}
	if !reflect.DeepEqual(got.Counts, want.Counts) {
		t.Errorf("counts: planned %v, sampled %v", got.Counts, want.Counts)
	}
}

// TestCampaignPlanForcesTrials: Plan overrides Trials, tosses no
// kernel-hit coins, and runs identically on the fork and legacy paths.
func TestCampaignPlanForcesTrials(t *testing.T) {
	w := NewStdWorkload(StdWorkloadConfig{})
	plan := []Fault{
		{At: 0, Target: TargetRegister, Reg: 6, Bit: 3},
		{At: 100 * des.Microsecond, Target: TargetALU, Mask: 1 << 5},
		{At: des.Millisecond / 2, Target: TargetPC, Bit: 2},
	}
	res, err := Run(w, CampaignConfig{Plan: plan, Trials: 999})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != len(plan) {
		t.Fatalf("ran %d trials, want len(plan) = %d", len(res.Trials), len(plan))
	}
	for i := range plan {
		if res.Trials[i].Fault != plan[i] {
			t.Errorf("trial %d injected %v, planned %v", i, res.Trials[i].Fault, plan[i])
		}
	}
	legacy, err := Run(w, CampaignConfig{Plan: plan, NoFork: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Trials, legacy.Trials) {
		t.Errorf("planned campaign diverges between fork and legacy paths")
	}
}
