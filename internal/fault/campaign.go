package fault

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/stats"
)

// CampaignConfig parameterizes an injection campaign.
type CampaignConfig struct {
	// Trials is the number of injection runs. Default 1000.
	Trials int
	// Seed drives all random choices; campaigns are fully reproducible.
	Seed uint64
	// Targets restricts the fault locations. Default AllTargets().
	Targets []Target
	// KernelShare is the probability that a fault strikes during kernel
	// execution. The paper assumes the kernel occupies ~5% of CPU time
	// (§3.3, P_FS = 0.05); the simulated kernel's own share is far
	// smaller (its code runs outside the simulated CPU), so the campaign
	// models kernel hits explicitly. Default 0.05.
	KernelShare float64
	// KernelDetect is the probability that the kernel's own EDMs
	// (assertions, range checks, per §2.3) detect a kernel fault and
	// force fail-silence. Undetected kernel faults are non-covered
	// errors. Default 0.98.
	KernelDetect float64
	// Parallelism is the number of worker goroutines trials run on.
	// Default (0) is runtime.GOMAXPROCS(0). Results are bit-identical
	// for any value: each trial's RNG stream is derived from
	// (Seed, trial index) alone, so neither worker count nor scheduling
	// order can perturb any trial.
	Parallelism int
}

func (c *CampaignConfig) applyDefaults() {
	if c.Trials == 0 {
		c.Trials = 1000
	}
	if c.Targets == nil {
		c.Targets = AllTargets()
	}
	if c.KernelShare == 0 {
		c.KernelShare = 0.05
	}
	if c.KernelDetect == 0 {
		c.KernelDetect = 0.98
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// TrialRecord describes one injection run.
type TrialRecord struct {
	Fault   Fault
	Kernel  bool // the fault hit kernel execution
	Outcome Outcome
	// Mechanisms lists the detection mechanisms that fired.
	Mechanisms []string
}

// Result aggregates a campaign.
type Result struct {
	Config CampaignConfig
	// Golden is the fault-free output sequence.
	Golden []Write
	// Counts tallies outcomes.
	Counts map[Outcome]int
	// ByMechanism tallies which detection mechanism fired first.
	ByMechanism map[string]int
	// ByTarget tallies outcomes per fault target.
	ByTarget map[Target]map[Outcome]int
	// Trials holds the individual records (in order).
	Trials []TrialRecord

	// Estimates of the paper's parameters (§3.2.2), conditioned as the
	// paper defines them: CD over activated faults; PT/POM/PFS over
	// detected errors.
	CD, PT, POM, PFS stats.Proportion
}

// Activated is the number of faults that produced an error.
func (r *Result) Activated() int {
	total := 0
	for o, n := range r.Counts {
		if o != NotActivated {
			total += n
		}
	}
	return total
}

// Detected is the number of activated faults whose error was detected.
func (r *Result) Detected() int {
	return r.Counts[Masked] + r.Counts[Omission] + r.Counts[FailSilent]
}

// Summary renders a human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d trials, seed %d\n", r.Config.Trials, r.Config.Seed)
	outcomes := []Outcome{NotActivated, Masked, Omission, FailSilent, ValueFailure}
	for _, o := range outcomes {
		fmt.Fprintf(&b, "  %-14s %6d\n", o.String()+":", r.Counts[o])
	}
	fmt.Fprintf(&b, "  activated: %d, detected: %d\n", r.Activated(), r.Detected())
	fmt.Fprintf(&b, "  C_D  = %v\n", r.CD)
	fmt.Fprintf(&b, "  P_T  = %v\n", r.PT)
	fmt.Fprintf(&b, "  P_OM = %v\n", r.POM)
	fmt.Fprintf(&b, "  P_FS = %v\n", r.PFS)
	mechs := make([]string, 0, len(r.ByMechanism))
	for m := range r.ByMechanism {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		fmt.Fprintf(&b, "  detected by %-16s %6d\n", m+":", r.ByMechanism[m])
	}
	return b.String()
}

// tally is one worker's private aggregation; tallies are merged after
// the pool drains so no lock sits on the per-trial hot path. All merges
// are pure additions, so the merge order cannot influence the result.
type tally struct {
	counts      map[Outcome]int
	byMechanism map[string]int
	byTarget    map[Target]map[Outcome]int
}

func newTally() *tally {
	return &tally{
		counts:      make(map[Outcome]int),
		byMechanism: make(map[string]int),
		byTarget:    make(map[Target]map[Outcome]int),
	}
}

func (t *tally) record(rec *TrialRecord) {
	t.counts[rec.Outcome]++
	if t.byTarget[rec.Fault.Target] == nil {
		t.byTarget[rec.Fault.Target] = make(map[Outcome]int)
	}
	t.byTarget[rec.Fault.Target][rec.Outcome]++
	for _, m := range rec.Mechanisms {
		t.byMechanism[m]++
	}
}

func (t *tally) mergeInto(res *Result) {
	for o, n := range t.counts {
		res.Counts[o] += n
	}
	for m, n := range t.byMechanism {
		res.ByMechanism[m] += n
	}
	for target, counts := range t.byTarget {
		if res.ByTarget[target] == nil {
			res.ByTarget[target] = make(map[Outcome]int)
		}
		for o, n := range counts {
			res.ByTarget[target][o] += n
		}
	}
}

// Run executes the campaign on the workload. Trials are distributed over
// cfg.Parallelism workers; each trial draws from its own RNG stream
// derived from (Seed, trial index), so the result is bit-identical
// whatever the worker count.
func Run(w Workload, cfg CampaignConfig) (*Result, error) {
	cfg.applyDefaults()
	if w == nil {
		return nil, fmt.Errorf("fault: nil workload")
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("fault: %d trials", cfg.Trials)
	}
	golden, err := goldenRun(w)
	if err != nil {
		return nil, err
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("fault: golden run produced no outputs; workload broken")
	}
	res := &Result{
		Config:      cfg,
		Golden:      golden,
		Counts:      make(map[Outcome]int),
		ByMechanism: make(map[string]int),
		ByTarget:    make(map[Target]map[Outcome]int),
		Trials:      make([]TrialRecord, cfg.Trials),
	}
	workers := cfg.Parallelism
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	tallies := make([]*tally, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			t := newTally()
			tallies[wk] = t
			var scratch trialScratch
			// Strided assignment: worker wk owns trials wk, wk+W, ….
			// Each record lands at its own index, so the trial order of
			// the Result is the sequential order regardless of workers.
			for trial := wk; trial < cfg.Trials; trial += workers {
				rng := des.NewRandIndexed(cfg.Seed, uint64(trial))
				rec, err := runTrial(w, cfg, rng, golden, &scratch)
				if err != nil {
					errs[wk] = fmt.Errorf("fault: trial %d: %w", trial, err)
					return
				}
				res.Trials[trial] = rec
				t.record(&rec)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, t := range tallies {
		t.mergeInto(res)
	}
	activated := res.Activated()
	detected := res.Detected()
	res.CD = stats.NewProportion(detected, activated)
	res.PT = stats.NewProportion(res.Counts[Masked], detected)
	res.POM = stats.NewProportion(res.Counts[Omission], detected)
	res.PFS = stats.NewProportion(res.Counts[FailSilent], detected)
	return res, nil
}

// goldenRun executes the workload fault-free.
func goldenRun(w Workload) ([]Write, error) {
	inst, err := w.New()
	if err != nil {
		return nil, err
	}
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return nil, err
	}
	if failed, reason := inst.Kernel.Failed(); failed {
		return nil, fmt.Errorf("fault: golden run failed silent: %s", reason)
	}
	if inst.Rec.Omissions > 0 {
		return nil, fmt.Errorf("fault: golden run had omissions; workload unschedulable")
	}
	return inst.Rec.Writes, nil
}

// drawFault picks a random fault within the workload's windows.
func drawFault(w Workload, cfg CampaignConfig, rng *des.Rand) Fault {
	start, end := w.InjectionWindow()
	at := start + des.Time(rng.Intn(int(end-start)))
	target := cfg.Targets[rng.Intn(len(cfg.Targets))]
	f := Fault{At: at, Target: target}
	switch target {
	case TargetRegister:
		f.Reg = rng.Intn(13) + 1 // r1..r13: live computation registers
		f.Bit = uint(rng.Intn(32))
	case TargetPC, TargetSP:
		f.Bit = uint(rng.Intn(32))
	case TargetALU:
		f.Mask = 1 << uint(rng.Intn(32))
	case TargetMemoryData:
		base, words := w.DataRange()
		f.Addr = base + uint32(rng.Intn(int(words)))*4
		f.Bit = uint(rng.Intn(32))
	case TargetMemoryCode:
		base, words := w.CodeRange()
		f.Addr = base + uint32(rng.Intn(int(words)))*4
		f.Bit = uint(rng.Intn(32))
	}
	return f
}

// apply injects the fault into a live instance.
func apply(inst *Instance, f Fault) {
	switch f.Target {
	case TargetRegister:
		inst.Kernel.Proc().FlipRegister(f.Reg, f.Bit)
	case TargetPC:
		inst.Kernel.Proc().FlipPC(f.Bit)
	case TargetSP:
		inst.Kernel.Proc().FlipRegister(15, f.Bit)
	case TargetALU:
		inst.Kernel.Proc().InjectALUFault(f.Mask)
	case TargetMemoryData, TargetMemoryCode:
		inst.Kernel.Mem().FlipBit(f.Addr, f.Bit)
	}
}

// trialScratch holds per-worker buffers reused across trials to cut
// allocation churn in large campaigns.
type trialScratch struct {
	mechs []string
}

// runTrial executes one injection run and classifies it.
func runTrial(w Workload, cfg CampaignConfig, rng *des.Rand, golden []Write, scratch *trialScratch) (TrialRecord, error) {
	inst, err := w.New()
	if err != nil {
		return TrialRecord{}, err
	}
	f := drawFault(w, cfg, rng)
	rec := TrialRecord{Fault: f}
	// Decide up front whether this fault lands in kernel execution: the
	// simulated kernel's logic runs outside the simulated CPU, so its
	// share of exposure is modelled explicitly (see CampaignConfig).
	kernelHit := rng.Bool(cfg.KernelShare)
	kernelDetected := kernelHit && rng.Bool(cfg.KernelDetect)
	undetectedKernel := false

	inst.Sim.Schedule(f.At, des.PrioInject, func() {
		if kernelHit || inst.Kernel.Activity() == kernel.ActivityKernel {
			rec.Kernel = true
			// A modelled kernel hit is detected with probability
			// KernelDetect; a fault that lands while the kernel itself is
			// executing (and was not already modelled as a kernel hit) is
			// always caught by the kernel EDMs.
			if kernelDetected || (inst.Kernel.Activity() == kernel.ActivityKernel && !kernelHit) {
				inst.Kernel.ForceFailSilent("kernel EDM: assertion after fault")
			} else {
				undetectedKernel = true
			}
			return
		}
		apply(inst, f)
	})
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return TrialRecord{}, err
	}

	// Collect mechanism attributions into the reused scratch buffer and
	// copy them into a right-sized slice for the record.
	mechs := scratch.mechs[:0]
	st := inst.Kernel.Stats()
	for m, n := range st.ErrorsDetected {
		if n > 0 {
			mechs = append(mechs, m)
		}
	}
	if inst.Kernel.Mem().CorrectedErrors > 0 {
		mechs = append(mechs, "ecc")
	}
	sort.Strings(mechs)
	scratch.mechs = mechs
	if len(mechs) > 0 {
		rec.Mechanisms = make([]string, len(mechs))
		copy(rec.Mechanisms, mechs)
	}

	rec.Outcome = classify(inst, golden, undetectedKernel)
	return rec, nil
}

// classify maps a finished trial onto the paper's outcome classes.
func classify(inst *Instance, golden []Write, undetectedKernel bool) Outcome {
	if undetectedKernel {
		// A non-covered error in the kernel: §3.2.1 pessimistically
		// treats these as (potential) system failures.
		return ValueFailure
	}
	if failed, _ := inst.Kernel.Failed(); failed {
		return FailSilent
	}
	writes := inst.Rec.Writes
	detections := inst.Rec.MaskedReleases > 0 ||
		inst.Kernel.Mem().CorrectedErrors > 0
	switch {
	case equalWrites(writes, golden):
		if detections {
			return Masked
		}
		if inst.Rec.Omissions > 0 {
			// All outputs present yet a release omitted: means the last
			// release settled past the horizon in golden too; treat as
			// omission conservatively.
			return Omission
		}
		return NotActivated
	case inst.Rec.Omissions > 0 && isSubsequence(writes, golden):
		return Omission
	case isStrictPrefixOrSubsequence(writes, golden):
		// Missing outputs without a recorded omission event: a recovery
		// pushed the commit past the horizon. Count as omission (no wrong
		// value escaped).
		return Omission
	default:
		return ValueFailure
	}
}

func equalWrites(a, b []Write) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isSubsequence reports whether each element of sub appears, in order,
// in full.
func isSubsequence(sub, full []Write) bool {
	i := 0
	for _, w := range full {
		if i < len(sub) && sub[i] == w {
			i++
		}
	}
	return i == len(sub)
}

func isStrictPrefixOrSubsequence(writes, golden []Write) bool {
	return len(writes) < len(golden) && isSubsequence(writes, golden)
}
