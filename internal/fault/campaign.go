package fault

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/stats"
)

// CampaignConfig parameterizes an injection campaign.
type CampaignConfig struct {
	// Trials is the number of injection runs. Default 1000.
	Trials int
	// Seed drives all random choices; campaigns are fully reproducible.
	Seed uint64
	// Plan, when non-nil, replaces random fault drawing with an
	// enumerated placement list: trial i injects exactly Plan[i], no
	// kernel-hit coin is tossed (a planned fault lands in kernel
	// execution only when the kernel is actually executing at its
	// instant — the deterministic part of the kernel model), and Trials
	// is forced to len(Plan). The exhaustive verifier (internal/exhaust)
	// uses planned campaigns to cross-check its enumeration against the
	// sampling engine's classification of the very same placements.
	Plan []Fault
	// Targets restricts the fault locations. Default AllTargets().
	Targets []Target
	// KernelShare is the probability that a fault strikes during kernel
	// execution. The paper assumes the kernel occupies ~5% of CPU time
	// (§3.3, P_FS = 0.05); the simulated kernel's own share is far
	// smaller (its code runs outside the simulated CPU), so the campaign
	// models kernel hits explicitly. Default 0.05.
	KernelShare float64
	// KernelDetect is the probability that the kernel's own EDMs
	// (assertions, range checks, per §2.3) detect a kernel fault and
	// force fail-silence. Undetected kernel faults are non-covered
	// errors. Default 0.98.
	KernelDetect float64
	// Parallelism is the number of worker goroutines trials run on.
	// Default (0) is runtime.GOMAXPROCS(0). Results are bit-identical
	// for any value: each trial's RNG stream is derived from
	// (Seed, trial index) alone, so neither worker count nor scheduling
	// order can perturb any trial.
	Parallelism int

	// Telemetry attaches an obs collector to every trial instance and
	// merges the registries into Result.Metrics. Registry merges are
	// commutative (counters and histograms add, gauges keep maxima), so
	// the aggregate is identical for any Parallelism. The merged registry
	// carries kernel counters/histograms plus campaign.* series (trials,
	// outcomes, detected_by, kernel_hits) that let Table 1 coverage be
	// recomputed from exported metrics alone.
	Telemetry bool
	// TelemetryEvents additionally retains each trial's structured event
	// stream (up to EventsPerTrial records), merged in trial order into
	// Result.Events with 1-based Trial tags, and records the fault-free
	// golden run's stream in Result.GoldenEvents. Implies Telemetry.
	TelemetryEvents bool
	// EventsPerTrial caps the events retained per trial when
	// TelemetryEvents is set. Default 512.
	EventsPerTrial int
	// OnProgress, when set, is called after every completed trial with
	// the number of settled trials and the total. Calls are serialized,
	// but arrive from worker goroutines in completion (not trial) order.
	OnProgress func(done, total int)

	// NoFork disables the checkpoint/fork engine and simulates every
	// trial from t=0. Forking is on by default: each worker captures
	// full-machine snapshots of the fault-free prefix at checkpoint
	// boundaries and every trial restores the latest sound checkpoint
	// before its injection instant, simulating only the suffix. Results
	// are bit-identical either way (see internal/fault/fork.go for the
	// soundness argument; guarded by TestCampaignForkEquivalence and the
	// digest pins).
	NoFork bool
	// SnapshotInterval is the fork checkpoint spacing. Default (0):
	// 250µs, or the workload's own SnapshotHinter value when that hint
	// is finer. Delta snapshots make dense checkpoints cheap — each
	// capture copies only the pages dirtied since the last one — so a
	// fine default spacing shortens every trial's replayed suffix. The
	// spacing is widened if needed so a horizon fits in the checkpoint
	// store (see maxCheckpoints in fork.go).
	SnapshotInterval des.Time
	// NoConvergeCutoff disables the fork engine's convergence cutoff.
	// When active (the default — but only for campaigns without
	// Telemetry, whose suffix metrics and events cannot be skipped), a
	// forked trial compares its forward state digest against the golden
	// run's at checkpoint boundaries after the injection; on a match the
	// remaining suffix is provably identical to the golden run's and the
	// trial is classified without simulating it.
	NoConvergeCutoff bool
}

func (c *CampaignConfig) applyDefaults() {
	if c.Plan != nil {
		c.Trials = len(c.Plan)
	}
	if c.Trials == 0 {
		c.Trials = 1000
	}
	if c.Targets == nil {
		c.Targets = AllTargets()
	}
	if c.KernelShare == 0 {
		c.KernelShare = 0.05
	}
	if c.KernelDetect == 0 {
		c.KernelDetect = 0.98
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.TelemetryEvents {
		c.Telemetry = true
	}
	if c.EventsPerTrial == 0 {
		c.EventsPerTrial = 512
	}
}

// TrialRecord describes one injection run.
type TrialRecord struct {
	Fault   Fault
	Kernel  bool // the fault hit kernel execution
	Outcome Outcome
	// Mechanisms lists the detection mechanisms that fired.
	Mechanisms []string
}

// Result aggregates a campaign.
type Result struct {
	Config CampaignConfig
	// Golden is the fault-free output sequence.
	Golden []Write
	// Counts tallies outcomes.
	Counts map[Outcome]int
	// ByMechanism tallies which detection mechanism fired first.
	ByMechanism map[string]int
	// ByTarget tallies outcomes per fault target.
	ByTarget map[Target]map[Outcome]int
	// Trials holds the individual records (in order).
	Trials []TrialRecord

	// Metrics is the campaign-wide telemetry registry (nil unless
	// Config.Telemetry). Counters and histograms add and gauges keep
	// maxima under merge, so the aggregate is identical for any
	// Parallelism and merge order.
	Metrics *obs.Registry
	// Events is the merged structured event stream, in trial order with
	// 1-based Trial tags (nil unless Config.TelemetryEvents).
	Events []obs.Event
	// GoldenEvents is the fault-free golden run's event stream (nil
	// unless Config.TelemetryEvents).
	GoldenEvents []obs.Event

	// Snapshots reports the fork engine's checkpoint-store traffic (nil
	// on the legacy no-fork path).
	Snapshots *SnapshotStats

	// Estimates of the paper's parameters (§3.2.2), conditioned as the
	// paper defines them: CD over activated faults; PT/POM/PFS over
	// detected errors.
	CD, PT, POM, PFS stats.Proportion
}

// SnapshotStats summarizes the fork engine's checkpoint-store traffic
// across all workers: how many checkpoints each store holds, how many
// capture/restore calls ran, and how many delta pages moved. The
// full-vs-delta byte comparison quantifies what dirty-page tracking
// saves over full-image snapshots.
type SnapshotStats struct {
	// Workers is the worker (and thus checkpoint-store) count.
	Workers int
	// Checkpoints is the per-worker checkpoint count (identical across
	// workers: capture is deterministic).
	Checkpoints int
	// PageBytes is the delta page size; RAMBytes one full RAM image.
	PageBytes uint64
	RAMBytes  uint64
	// Snapshots and Restores count calls summed over workers.
	Snapshots uint64
	Restores  uint64
	// PagesCopied counts pages captured into checkpoint buffers;
	// PagesRestored counts pages copied back into RAM.
	PagesCopied   uint64
	PagesRestored uint64
}

// FullBytes is what the captures would have copied as full images.
func (s *SnapshotStats) FullBytes() uint64 { return s.Snapshots * s.RAMBytes }

// DeltaBytes is what the captures actually copied.
func (s *SnapshotStats) DeltaBytes() uint64 { return s.PagesCopied * s.PageBytes }

// MeanPagesPerSnapshot is the mean dirty-page count per capture.
func (s *SnapshotStats) MeanPagesPerSnapshot() float64 {
	if s.Snapshots == 0 {
		return 0
	}
	return float64(s.PagesCopied) / float64(s.Snapshots)
}

// MeanPagesPerRestore is the mean page count copied back per restore.
func (s *SnapshotStats) MeanPagesPerRestore() float64 {
	if s.Restores == 0 {
		return 0
	}
	return float64(s.PagesRestored) / float64(s.Restores)
}

// Activated is the number of faults that produced an error.
func (r *Result) Activated() int {
	total := 0
	//nlft:allow nodeterminism commutative sum; iteration order cannot affect the total
	for o, n := range r.Counts {
		if o != NotActivated {
			total += n
		}
	}
	return total
}

// Detected is the number of activated faults whose error was detected.
func (r *Result) Detected() int {
	return r.Counts[Masked] + r.Counts[Omission] + r.Counts[FailSilent]
}

// Summary renders a human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign: %d trials, seed %d\n", r.Config.Trials, r.Config.Seed)
	for _, o := range AllOutcomes() {
		fmt.Fprintf(&b, "  %-14s %6d\n", o.String()+":", r.Counts[o])
	}
	fmt.Fprintf(&b, "  activated: %d, detected: %d\n", r.Activated(), r.Detected())
	fmt.Fprintf(&b, "  C_D  = %v\n", r.CD)
	fmt.Fprintf(&b, "  P_T  = %v\n", r.PT)
	fmt.Fprintf(&b, "  P_OM = %v\n", r.POM)
	fmt.Fprintf(&b, "  P_FS = %v\n", r.PFS)
	mechs := make([]string, 0, len(r.ByMechanism))
	//nlft:allow nodeterminism collection order is erased by the sort.Strings below
	for m := range r.ByMechanism {
		mechs = append(mechs, m)
	}
	sort.Strings(mechs)
	for _, m := range mechs {
		fmt.Fprintf(&b, "  detected by %-16s %6d\n", m+":", r.ByMechanism[m])
	}
	return b.String()
}

// tally is one worker's private aggregation; tallies are merged after
// the pool drains so no lock sits on the per-trial hot path. Outcome
// and per-target counters are flat arrays indexed by the enum values
// (valid Outcomes/Targets start at 1, so slot 0 stays unused): the
// per-trial record path touches no map buckets or hash functions, and
// the merge walks array slots in index order, which is already the
// canonical (declaration) order — no map iteration to neutralize.
// Only the mechanism tally stays a map (mechanism names are an open
// string set). All merges are pure additions, so the merge order
// cannot influence the result.
type tally struct {
	counts      [NumOutcomes + 1]int
	byTarget    [NumTargets + 1][NumOutcomes + 1]int
	byMechanism map[string]int
}

func newTally() *tally {
	return &tally{byMechanism: make(map[string]int)}
}

// record folds one settled trial into the worker's tally.
//
//nlft:merge
func (t *tally) record(rec *TrialRecord) {
	t.counts[rec.Outcome]++
	t.byTarget[rec.Fault.Target][rec.Outcome]++
	for _, m := range rec.Mechanisms {
		t.byMechanism[m]++
	}
}

// mergeInto adds the worker's tally to the Result's exported maps,
// skipping empty slots so the map contents (and thus every digest or
// report derived from them) match what the per-outcome map tallies
// used to produce.
//
//nlft:merge
func (t *tally) mergeInto(res *Result) {
	for o, n := range t.counts {
		if n > 0 {
			res.Counts[Outcome(o)] += n
		}
	}
	//nlft:allow nodeterminism tally merge adds, which commutes; iteration order cannot affect the result
	for m, n := range t.byMechanism {
		res.ByMechanism[m] += n
	}
	for target, counts := range t.byTarget {
		for o, n := range counts {
			if n == 0 {
				continue
			}
			if res.ByTarget[Target(target)] == nil {
				res.ByTarget[Target(target)] = make(map[Outcome]int)
			}
			res.ByTarget[Target(target)][Outcome(o)] += n
		}
	}
}

// newInstance builds a trial instance, attaching the collector when the
// workload supports observation.
func newInstance(w Workload, col *obs.Collector) (*Instance, error) {
	if col != nil {
		if ow, ok := w.(ObservableWorkload); ok {
			return ow.NewObserved(col)
		}
	}
	return w.New()
}

// newTrialCollector builds a per-trial collector retaining up to
// EventsPerTrial events. Used only when TelemetryEvents is set: the
// event stream needs per-trial attribution and capping, so each trial
// gets its own buffer. Metrics-only campaigns share one collector per
// worker instead (the registry merge is commutative, so per-worker
// aggregation is just as deterministic and far cheaper).
func newTrialCollector(cfg *CampaignConfig) *obs.Collector {
	col := obs.NewCollector("")
	col.SetEventLimit(cfg.EventsPerTrial)
	return col
}

// newWorkerCollector builds a metrics-only collector shared by all
// trials of one worker.
func newWorkerCollector() *obs.Collector {
	col := obs.NewCollector("")
	col.SetEventLimit(-1) // metrics only
	return col
}

// recordTrialMetrics adds the campaign-level accounting for one settled
// trial to its collector: these campaign.* series mirror the Result
// tallies so Table 1 coverage is recomputable from exported metrics
// (guarded by TestCampaignMetricsCrossCheck).
func recordTrialMetrics(col *obs.Collector, rec *TrialRecord) {
	if col == nil {
		return
	}
	col.Counter("campaign.trials", "", "").Inc()
	col.Counter("campaign.outcomes", "", rec.Outcome.String()).Inc()
	if rec.Kernel {
		col.Counter("campaign.kernel_hits", "", "").Inc()
	}
	for _, m := range rec.Mechanisms {
		col.Counter("campaign.detected_by", "", m).Inc()
	}
}

// Run executes the campaign on the workload. Trials are distributed over
// cfg.Parallelism workers; each trial draws from its own RNG stream
// derived from (Seed, trial index), so the result is bit-identical
// whatever the worker count. Campaign phases (golden run, trials, merge)
// are labeled with pprof labels, so -cpuprofile output attributes time
// per phase.
func Run(w Workload, cfg CampaignConfig) (*Result, error) {
	cfg.applyDefaults()
	if w == nil {
		return nil, fmt.Errorf("fault: nil workload")
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("fault: %d trials", cfg.Trials)
	}
	var goldenCol *obs.Collector
	if cfg.TelemetryEvents {
		goldenCol = obs.NewCollector("")
		goldenCol.SetEventLimit(cfg.EventsPerTrial)
	}
	var golden []Write
	var goldenErr error
	pprof.Do(context.Background(), pprof.Labels("campaign-phase", "golden-run"), func(context.Context) {
		golden, goldenErr = goldenRun(w, goldenCol)
	})
	if goldenErr != nil {
		return nil, goldenErr
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("fault: golden run produced no outputs; workload broken")
	}
	res := &Result{
		Config:      cfg,
		Golden:      golden,
		Counts:      make(map[Outcome]int),
		ByMechanism: make(map[string]int),
		ByTarget:    make(map[Target]map[Outcome]int),
		Trials:      make([]TrialRecord, cfg.Trials),
	}
	if goldenCol != nil {
		res.GoldenEvents = goldenCol.Events()
	}
	workers := cfg.Parallelism
	if workers > cfg.Trials {
		workers = cfg.Trials
	}
	// With TelemetryEvents, per-trial collectors (legacy path) or
	// per-trial event copies (fork path) land at their trial index, so
	// the event merge below runs in trial order no matter which worker
	// produced them. Metrics-only campaigns use one collector per worker:
	// the registry merge is commutative, so the aggregate is unchanged,
	// and the per-trial setup/merge cost disappears. The fork path always
	// aggregates per worker (its shared collector is rewound to the
	// checkpoint each trial, so per-trial registries are merged into a
	// worker accumulator as they settle).
	var collectors []*obs.Collector
	if cfg.TelemetryEvents && cfg.NoFork {
		collectors = make([]*obs.Collector, cfg.Trials)
	}
	var workerCols []*obs.Collector
	if cfg.Telemetry && !cfg.TelemetryEvents && cfg.NoFork {
		workerCols = make([]*obs.Collector, workers)
	}
	var trialEvents [][]obs.Event
	if cfg.TelemetryEvents && !cfg.NoFork {
		trialEvents = make([][]obs.Event, cfg.Trials)
	}
	var workerRegs []*obs.Registry
	if cfg.Telemetry && !cfg.NoFork {
		workerRegs = make([]*obs.Registry, workers)
	}
	var plans []trialPlan
	var workerSnaps []SnapshotStats
	if !cfg.NoFork {
		plans = planTrials(w, &cfg)
		workerSnaps = make([]SnapshotStats, workers)
	}
	var progressMu sync.Mutex
	progressDone := 0
	tallies := make([]*tally, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go pprof.Do(context.Background(),
			pprof.Labels("campaign-phase", "trials", "campaign-worker", strconv.Itoa(wk)),
			func(context.Context) {
				defer wg.Done()
				t := newTally()
				tallies[wk] = t
				progress := func() {
					if cfg.OnProgress != nil {
						progressMu.Lock()
						progressDone++
						cfg.OnProgress(progressDone, cfg.Trials)
						progressMu.Unlock()
					}
				}
				if !cfg.NoFork {
					errs[wk] = runForkTrials(w, &cfg, wk, workers, golden, res, t,
						plans, trialEvents, workerRegs, workerSnaps, progress)
					return
				}
				var scratch trialScratch
				var wcol *obs.Collector
				if workerCols != nil {
					wcol = newWorkerCollector()
					workerCols[wk] = wcol
				}
				// Strided assignment: worker wk owns trials wk, wk+W, ….
				// Each record lands at its own index, so the trial order of
				// the Result is the sequential order regardless of workers.
				for trial := wk; trial < cfg.Trials; trial += workers {
					plan := planForTrial(w, &cfg, trial)
					col := wcol
					if collectors != nil {
						col = newTrialCollector(&cfg)
						collectors[trial] = col
					}
					rec, err := runTrial(w, cfg, plan, golden, &scratch, col)
					if err != nil {
						errs[wk] = fmt.Errorf("fault: trial %d: %w", trial, err)
						return
					}
					recordTrialMetrics(col, &rec)
					res.Trials[trial] = rec
					t.record(&rec)
					progress()
				}
			})
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if workerSnaps != nil {
		agg := &SnapshotStats{Workers: workers}
		for _, s := range workerSnaps {
			// Checkpoint count, page size, and RAM size are identical
			// across workers; the traffic counters sum.
			agg.Checkpoints = s.Checkpoints
			agg.PageBytes = s.PageBytes
			agg.RAMBytes = s.RAMBytes
			agg.Snapshots += s.Snapshots
			agg.Restores += s.Restores
			agg.PagesCopied += s.PagesCopied
			agg.PagesRestored += s.PagesRestored
		}
		res.Snapshots = agg
	}
	pprof.Do(context.Background(), pprof.Labels("campaign-phase", "merge"), func(context.Context) {
		for _, t := range tallies {
			t.mergeInto(res)
		}
		if cfg.Telemetry {
			reg := obs.NewRegistry()
			for i, col := range collectors {
				reg.Merge(col.Registry())
				for _, e := range col.Events() {
					e.Trial = i + 1
					res.Events = append(res.Events, e)
				}
			}
			for _, col := range workerCols {
				if col != nil {
					reg.Merge(col.Registry())
				}
			}
			for i, evs := range trialEvents {
				for _, e := range evs {
					e.Trial = i + 1
					res.Events = append(res.Events, e)
				}
			}
			for _, r := range workerRegs {
				if r != nil {
					reg.Merge(r)
				}
			}
			res.Metrics = reg
		}
	})
	activated := res.Activated()
	detected := res.Detected()
	res.CD = stats.NewProportion(detected, activated)
	res.PT = stats.NewProportion(res.Counts[Masked], detected)
	res.POM = stats.NewProportion(res.Counts[Omission], detected)
	res.PFS = stats.NewProportion(res.Counts[FailSilent], detected)
	return res, nil
}

// goldenRun executes the workload fault-free.
func goldenRun(w Workload, col *obs.Collector) ([]Write, error) {
	inst, err := newInstance(w, col)
	if err != nil {
		return nil, err
	}
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return nil, err
	}
	if failed, reason := inst.Kernel.Failed(); failed {
		return nil, fmt.Errorf("fault: golden run failed silent: %s", reason)
	}
	if inst.Rec.Omissions > 0 {
		return nil, fmt.Errorf("fault: golden run had omissions; workload unschedulable")
	}
	return inst.Rec.Writes, nil
}

// drawFault picks a random fault within the workload's windows. The
// injection window is half-open: Intn(end-start) ranges over
// [0, end-start), so at ∈ [start, end) and the end instant can never be
// drawn (guarded by TestInjectionWindowHalfOpen).
func drawFault(w Workload, cfg CampaignConfig, rng *des.Rand) Fault {
	start, end := w.InjectionWindow()
	at := start + des.Time(rng.Intn(int(end-start)))
	target := cfg.Targets[rng.Intn(len(cfg.Targets))]
	f := Fault{At: at, Target: target}
	drawLocus(w, &f, rng)
	return f
}

// DrawFaultIn draws a fault for a fixed target with its injection
// instant uniform in the half-open window [start, end) — the adaptive
// campaign's per-stratum sampler (internal/adapt), whose strata fix
// the (target, window) pair and randomize only instant and locus. The
// instant is drawn first and the locus fields after, mirroring
// drawFault's order, and the locus draws are the same Intn sequence,
// so a one-stratum configuration consumes its stream exactly like the
// uniform sampler does.
func DrawFaultIn(w Workload, target Target, start, end des.Time, rng *des.Rand) Fault {
	at := start + des.Time(rng.Intn(int(end-start)))
	return DrawFaultAt(w, target, at, rng)
}

// DrawFaultAt draws the locus fields for a fault at a fixed instant —
// for samplers that choose the instant themselves (the adaptive
// campaign draws it uniform over a stratum's kernel-activity-free
// sub-intervals). The locus draws are the same Intn sequence
// DrawFaultIn performs after its instant draw.
func DrawFaultAt(w Workload, target Target, at des.Time, rng *des.Rand) Fault {
	f := Fault{At: at, Target: target}
	drawLocus(w, &f, rng)
	return f
}

// drawLocus fills the target-specific locus fields of f. Draw order
// per target is pinned by the campaign digest tests: any change would
// shift every subsequent draw on the trial's stream.
func drawLocus(w Workload, f *Fault, rng *des.Rand) {
	switch f.Target {
	case TargetRegister:
		f.Reg = rng.Intn(13) + 1 // r1..r13: live computation registers
		f.Bit = uint(rng.Intn(32))
	case TargetPC, TargetSP:
		f.Bit = uint(rng.Intn(32))
	case TargetALU:
		f.Mask = 1 << uint(rng.Intn(32))
	case TargetMemoryData:
		base, words := w.DataRange()
		f.Addr = base + uint32(rng.Intn(int(words)))*4
		f.Bit = uint(rng.Intn(32))
	case TargetMemoryCode:
		base, words := w.CodeRange()
		f.Addr = base + uint32(rng.Intn(int(words)))*4
		f.Bit = uint(rng.Intn(32))
	}
}

// ApplyFault injects f into a live instance, exactly as a campaign
// trial's injection callback does (minus the kernel-activity decision
// tree, which the caller owns). Exported for the exhaustive verifier
// (internal/exhaust), whose placements must corrupt state identically
// to sampled trials.
func ApplyFault(inst *Instance, f Fault) { apply(inst, f) }

// apply injects the fault into a live instance.
func apply(inst *Instance, f Fault) {
	switch f.Target {
	case TargetRegister:
		inst.Kernel.Proc().FlipRegister(f.Reg, f.Bit)
	case TargetPC:
		inst.Kernel.Proc().FlipPC(f.Bit)
	case TargetSP:
		inst.Kernel.Proc().FlipRegister(15, f.Bit)
	case TargetALU:
		inst.Kernel.Proc().InjectALUFault(f.Mask)
	case TargetMemoryData, TargetMemoryCode:
		inst.Kernel.Mem().FlipBit(f.Addr, f.Bit)
	}
}

// trialScratch holds per-worker buffers reused across trials to cut
// allocation churn in large campaigns.
type trialScratch struct {
	mechs []string
}

// runTrial executes one injection run and classifies it. The trial's
// random decisions (or its enumerated placement, for planned campaigns)
// arrive precomputed in plan — see planForTrial.
func runTrial(w Workload, cfg CampaignConfig, plan trialPlan, golden []Write, scratch *trialScratch, col *obs.Collector) (TrialRecord, error) {
	inst, err := newInstance(w, col)
	if err != nil {
		return TrialRecord{}, err
	}
	f := plan.fault
	rec := TrialRecord{Fault: f}
	// Whether this fault lands in kernel execution was decided up front:
	// the simulated kernel's logic runs outside the simulated CPU, so its
	// share of exposure is modelled explicitly (see CampaignConfig).
	kernelHit := plan.kernelHit
	kernelDetected := plan.kernelDetected
	undetectedKernel := false

	inst.Sim.Schedule(f.At, des.PrioInject, func() {
		if kernelHit || inst.Kernel.Activity() == kernel.ActivityKernel {
			rec.Kernel = true
			// A modelled kernel hit is detected with probability
			// KernelDetect; a fault that lands while the kernel itself is
			// executing (and was not already modelled as a kernel hit) is
			// always caught by the kernel EDMs.
			if kernelDetected || (inst.Kernel.Activity() == kernel.ActivityKernel && !kernelHit) {
				inst.Kernel.ForceFailSilent("kernel EDM: assertion after fault")
			} else {
				undetectedKernel = true
			}
			return
		}
		apply(inst, f)
	})
	if err := inst.Sim.RunUntil(w.Horizon()); err != nil {
		return TrialRecord{}, err
	}

	// Collect mechanism attributions into the reused scratch buffer and
	// copy them into a right-sized slice for the record.
	mechs := scratch.mechs[:0]
	st := inst.Kernel.Stats()
	//nlft:allow nodeterminism collection order is erased by the sort.Strings below
	for m, n := range st.ErrorsDetected {
		if n > 0 {
			mechs = append(mechs, m)
		}
	}
	if inst.Kernel.Mem().CorrectedErrors > 0 {
		mechs = append(mechs, "ecc")
	}
	sort.Strings(mechs)
	scratch.mechs = mechs
	if len(mechs) > 0 {
		rec.Mechanisms = make([]string, len(mechs))
		copy(rec.Mechanisms, mechs)
	}

	rec.Outcome = classify(inst, golden, undetectedKernel)
	return rec, nil
}

// classify maps a finished trial onto the paper's outcome classes,
// reading the observables off the live instance.
func classify(inst *Instance, golden []Write, undetectedKernel bool) Outcome {
	failed, _ := inst.Kernel.Failed()
	return ClassifyRaw(failed, inst.Rec.Writes, inst.Rec.Omissions,
		inst.Rec.MaskedReleases, inst.Kernel.Mem().CorrectedErrors,
		golden, undetectedKernel)
}

// ClassifyRaw maps one finished trial's composed observables onto the
// paper's outcome classes. classify is the instance-bound wrapper; the
// exhaustive verifier calls this form directly because a deduplicated
// placement's final writes and counters are composed from a memoized
// suffix rather than read off a live instance.
func ClassifyRaw(failed bool, writes []Write, omissions, maskedReleases int,
	eccCorrected uint64, golden []Write, undetectedKernel bool) Outcome {
	if undetectedKernel {
		// A non-covered error in the kernel: §3.2.1 pessimistically
		// treats these as (potential) system failures.
		return ValueFailure
	}
	if failed {
		return FailSilent
	}
	detections := maskedReleases > 0 || eccCorrected > 0
	switch {
	case equalWrites(writes, golden):
		if detections {
			return Masked
		}
		if omissions > 0 {
			// All outputs present yet a release omitted: means the last
			// release settled past the horizon in golden too; treat as
			// omission conservatively.
			return Omission
		}
		return NotActivated
	case omissions > 0 && isSubsequence(writes, golden):
		return Omission
	case isStrictPrefixOrSubsequence(writes, golden):
		// Missing outputs without a recorded omission event: a recovery
		// pushed the commit past the horizon. Count as omission (no wrong
		// value escaped).
		return Omission
	default:
		return ValueFailure
	}
}

func equalWrites(a, b []Write) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// isSubsequence reports whether each element of sub appears, in order,
// in full.
func isSubsequence(sub, full []Write) bool {
	i := 0
	for _, w := range full {
		if i < len(sub) && sub[i] == w {
			i++
		}
	}
	return i == len(sub)
}

func isStrictPrefixOrSubsequence(writes, golden []Write) bool {
	return len(writes) < len(golden) && isSubsequence(writes, golden)
}
