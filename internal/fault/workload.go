package fault

import (
	"fmt"
	"strings"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/kernel"
	"repro/internal/obs"
)

// Write is one committed output observed by the environment.
type Write struct {
	Port, Value uint32
}

// Recorder implements kernel.Env: scripted inputs, recorded outputs.
type Recorder struct {
	// InputFn supplies input-port samples; nil reads as zero.
	InputFn func(port uint32) uint32
	// Writes collects committed outputs in order.
	Writes []Write
	// Omissions counts releases that ended in omission (fed by the
	// campaign via the kernel outcome hook).
	Omissions int
	// MaskedReleases counts releases that committed after detected errors.
	MaskedReleases int
}

// ReadInput implements kernel.Env.
func (r *Recorder) ReadInput(port uint32) uint32 {
	if r.InputFn == nil {
		return 0
	}
	return r.InputFn(port)
}

// WriteOutput implements kernel.Env.
func (r *Recorder) WriteOutput(port, value uint32) {
	r.Writes = append(r.Writes, Write{Port: port, Value: value})
}

var _ kernel.Env = (*Recorder)(nil)

// Instance is one freshly built simulation for a single trial.
type Instance struct {
	Sim    *des.Simulator
	Kernel *kernel.Kernel
	Rec    *Recorder
}

// Workload describes how to build identical trial instances and where
// faults may be aimed.
type Workload interface {
	// New builds a fresh instance with the kernel started.
	New() (*Instance, error)
	// Horizon is the simulated duration of one trial.
	Horizon() des.Time
	// InjectionWindow bounds the injection instants as the HALF-OPEN
	// interval [start, end): drawFault draws start + Intn(end-start), so
	// start itself can be drawn but end never is (within the horizon,
	// leaving room for the last release to settle).
	InjectionWindow() (start, end des.Time)
	// DataRange returns a task state region for memory-data faults.
	DataRange() (start uint32, words uint32)
	// CodeRange returns a code region for memory-code faults.
	CodeRange() (start uint32, words uint32)
}

// ObservableWorkload is a Workload that can attach an obs.Collector to
// the instances it builds. Campaigns with Telemetry enabled use
// NewObserved so each trial's kernel and simulator report into the
// trial's private collector.
type ObservableWorkload interface {
	Workload
	// NewObserved builds a fresh instance like New, wired to col.
	NewObserved(col *obs.Collector) (*Instance, error)
}

// Hyperperioder is implemented by workloads that know their hyperperiod
// — the least common multiple of their task periods, after which the
// release pattern repeats. The exhaustive verifier (internal/exhaust)
// enumerates fault placements over one hyperperiod by default: a
// placement at t and one at t + hyperperiod strike the same phase of
// the schedule.
type Hyperperioder interface {
	Hyperperiod() des.Time
}

// checksumSrc is the standard campaign workload program: a compute loop
// over the input and the task state with signature checkpoints, writing a
// result and updating state each period. It keeps several registers live
// for a long window, like the paper's brake-by-wire control task. The
// LOOPCOUNT placeholder sets the compute length (and thereby the duty
// cycle faults can hit).
const checksumSrc = `
	.org 0x0000
start:
	sig 11
	li r1, 0xFFFF0000
	ld r2, [r1+0]        ; input sample
	li r3, 0x8000        ; state base
	ld r4, [r3+0]        ; running state
	movi r5, LOOPCOUNT   ; loop count
	movi r6, 0           ; accumulator
loop:
	add r6, r6, r2
	xor r6, r6, r4
	movi r7, 3
	mul r6, r6, r7
	addi r5, r5, -1
	cmpi r5, 0
	bgt loop
	sig 12
	add r4, r4, r6       ; fold into state
	st r4, [r3+0]
	st r6, [r1+4]        ; result to output port 1
	sig 13
	sys 2
`

// stdWorkload is the default campaign workload.
type stdWorkload struct {
	cfg  StdWorkloadConfig
	prog *cpu.Program
}

// StdWorkloadConfig parameterizes the default workload.
type StdWorkloadConfig struct {
	// ECC enables the memory ECC model. Default off (so memory faults
	// actually stress the kernel checks; the ECC ablation turns it on).
	ECC bool
	// UseMMU enables access confinement. Default on.
	UseMMU bool
	// Periods is the number of task periods per trial. Default 8.
	Periods int
	// Period is the task period. Default 1 ms.
	Period des.Time
	// Deadline overrides the task deadline (default: Period). Tight
	// deadlines make late-detected errors unrecoverable, producing the
	// omission failures of §2.5 — the slack-reservation ablation sweeps
	// this.
	Deadline des.Time
	// Budget overrides the per-copy execution budget (default Period/4).
	Budget des.Time
	// Kernel ablation switches forwarded to every instance's kernel.
	AlwaysTriple       bool
	NoContextRestore   bool
	CompareOutputsOnly bool
	FailSilentOnError  bool
	// InterpretiveDispatch forwards to the kernel config: run the CPU on
	// the per-step interpretive decoder instead of the predecoded
	// dispatch engine. Results are bit-identical either way (guarded by
	// the dispatch differential tests); used by those tests and for
	// engine triage.
	InterpretiveDispatch bool
	// PermanentThreshold forwards to the kernel config. Default 5.
	PermanentThreshold int
	// Compute is the workload's inner-loop iteration count; it scales
	// the task's execution time and the fraction of time faults can hit
	// live state. Default 64 (~11 µs per copy at 50 MHz).
	Compute int
	// Trace, when non-nil, is attached to each instance's kernel (use
	// only for single trials; traces grow).
	Trace *kernel.Trace
}

func (c *StdWorkloadConfig) applyDefaults() {
	if c.Periods == 0 {
		c.Periods = 8
	}
	if c.Period == 0 {
		c.Period = des.Millisecond
	}
	if c.Deadline == 0 {
		c.Deadline = c.Period
	}
	if c.Budget == 0 {
		c.Budget = c.Period / 4
	}
	if c.Compute == 0 {
		c.Compute = 64
	}
}

// Workload memory layout.
const (
	stdCode  uint32 = 0x0000
	stdData  uint32 = 0x8000
	stdStack uint32 = 0xC000
)

// NewStdWorkload returns the standard single-task critical workload used
// by campaigns and benchmarks. MMU defaults to enabled.
func NewStdWorkload(cfg StdWorkloadConfig) Workload {
	cfg.applyDefaults()
	src := strings.Replace(checksumSrc, "LOOPCOUNT",
		fmt.Sprintf("%d", cfg.Compute), 1)
	return &stdWorkload{cfg: cfg, prog: cpu.MustAssemble(src)}
}

// New implements Workload.
func (w *stdWorkload) New() (*Instance, error) { return w.build(nil) }

// NewObserved implements ObservableWorkload.
func (w *stdWorkload) NewObserved(col *obs.Collector) (*Instance, error) {
	return w.build(col)
}

// build constructs one instance, optionally wired to an obs collector.
func (w *stdWorkload) build(col *obs.Collector) (*Instance, error) {
	sim := des.New()
	rec := &Recorder{InputFn: func(port uint32) uint32 { return 0x1234 }}
	k := kernel.New(sim, rec, kernel.Config{
		ECC:                  w.cfg.ECC,
		UseMMU:               w.cfg.UseMMU,
		PermanentThreshold:   w.cfg.PermanentThreshold,
		Trace:                w.cfg.Trace,
		Obs:                  col,
		AlwaysTriple:         w.cfg.AlwaysTriple,
		NoContextRestore:     w.cfg.NoContextRestore,
		CompareOutputsOnly:   w.cfg.CompareOutputsOnly,
		FailSilentOnError:    w.cfg.FailSilentOnError,
		InterpretiveDispatch: w.cfg.InterpretiveDispatch,
	})
	if col != nil {
		obs.AttachSimulator(col, sim)
	}
	spec := kernel.TaskSpec{
		Name:        "control",
		Program:     w.prog,
		Entry:       "start",
		Period:      w.cfg.Period,
		Deadline:    w.cfg.Deadline,
		Priority:    10,
		Criticality: kernel.Critical,
		Budget:      w.cfg.Budget,
		InputPorts:  []uint32{0},
		OutputPorts: []uint32{1},
		DataStart:   stdData,
		DataWords:   8,
		StackStart:  stdStack,
		StackWords:  128,
	}
	if err := k.AddTask(spec); err != nil {
		return nil, fmt.Errorf("fault: workload: %w", err)
	}
	inst := &Instance{Sim: sim, Kernel: k, Rec: rec}
	k.OnOutcome = func(info kernel.OutcomeInfo) {
		switch info.Outcome {
		case kernel.OutcomeOmission:
			rec.Omissions++
		case kernel.OutcomeMasked:
			rec.MaskedReleases++
		}
	}
	if err := k.Start(); err != nil {
		return nil, fmt.Errorf("fault: workload: %w", err)
	}
	return inst, nil
}

// Horizon implements Workload: all periods plus settle margin.
func (w *stdWorkload) Horizon() des.Time {
	return des.Time(w.cfg.Periods)*w.cfg.Period + w.cfg.Period/2
}

// InjectionWindow implements Workload: the half-open window [0,
// (Periods-1)·Period) leaves the last release room to recover before
// the horizon. The end instant itself is never drawn (see the
// interface's half-open contract), so the final release always starts
// fault-free.
func (w *stdWorkload) InjectionWindow() (des.Time, des.Time) {
	return 0, des.Time(w.cfg.Periods-1) * w.cfg.Period
}

// SnapshotInterval implements SnapshotHinter: one task period, so fork
// checkpoints land exactly on release boundaries.
func (w *stdWorkload) SnapshotInterval() des.Time { return w.cfg.Period }

// Hyperperiod implements Hyperperioder: a single periodic task's
// schedule repeats every period.
func (w *stdWorkload) Hyperperiod() des.Time { return w.cfg.Period }

// DataRange implements Workload.
func (w *stdWorkload) DataRange() (uint32, uint32) { return stdData, 8 }

// CodeRange implements Workload.
func (w *stdWorkload) CodeRange() (uint32, uint32) {
	return stdCode, w.prog.SizeBytes() / 4
}
