// Package fault provides fault models and fault-injection campaigns for
// the simulated NLFT kernel, standing in for the heavy-ion and
// software-implemented fault injection the paper's prototype studies
// used. A campaign injects single transient faults (bit flips in CPU
// registers, the PC, ALU results, or memory words) at random instants
// into a running workload, classifies each run against a golden run, and
// estimates the paper's dependability parameters: error-detection
// coverage C_D and the conditional probabilities P_T (masked by TEM),
// P_OM (omission) and P_FS (fail-silent), with confidence intervals.
package fault

import (
	"fmt"

	"repro/internal/des"
)

// Target selects where a fault strikes.
type Target int

// Fault targets.
const (
	// TargetRegister flips one bit of a general-purpose register.
	TargetRegister Target = iota + 1
	// TargetPC flips one bit of the program counter.
	TargetPC
	// TargetSP flips one bit of the stack pointer.
	TargetSP
	// TargetALU corrupts the next ALU result (adder/multiplier fault).
	TargetALU
	// TargetMemoryData flips a bit in a task's state region.
	TargetMemoryData
	// TargetMemoryCode flips a bit in a task's code region.
	TargetMemoryCode
)

// String names the target.
func (t Target) String() string {
	switch t {
	case TargetRegister:
		return "register"
	case TargetPC:
		return "pc"
	case TargetSP:
		return "sp"
	case TargetALU:
		return "alu"
	case TargetMemoryData:
		return "mem-data"
	case TargetMemoryCode:
		return "mem-code"
	default:
		return fmt.Sprintf("target(%d)", int(t))
	}
}

// NumTargets is the number of injectable targets; valid Target values
// are 1..NumTargets, so a [NumTargets + 1]T array indexes directly by
// Target (guarded by TestEnumCardinalities).
const NumTargets = int(TargetMemoryCode)

// AllTargets lists every injectable target.
func AllTargets() []Target {
	return []Target{TargetRegister, TargetPC, TargetSP, TargetALU,
		TargetMemoryData, TargetMemoryCode}
}

// Fault is a single transient fault to inject.
type Fault struct {
	// At is the injection instant.
	At des.Time
	// Target selects the fault location class.
	Target Target
	// Reg is the register index for TargetRegister.
	Reg int
	// Bit is the bit position to flip (register, PC, SP, memory).
	Bit uint
	// Addr is the byte address for memory targets.
	Addr uint32
	// Mask is the XOR mask for TargetALU.
	Mask uint32
}

// String renders the fault for reports.
func (f Fault) String() string {
	switch f.Target {
	case TargetRegister:
		return fmt.Sprintf("%v r%d bit %d at %v", f.Target, f.Reg, f.Bit, f.At)
	case TargetPC, TargetSP:
		return fmt.Sprintf("%v bit %d at %v", f.Target, f.Bit, f.At)
	case TargetALU:
		return fmt.Sprintf("%v mask %#x at %v", f.Target, f.Mask, f.At)
	default:
		return fmt.Sprintf("%v addr %#x bit %d at %v", f.Target, f.Addr, f.Bit, f.At)
	}
}

// Outcome classifies one injection run, in the paper's terms (§3.2.1:
// an NLFT node masks the error, exhibits an omission failure, or
// exhibits a fail-silent failure; non-covered errors escape detection).
type Outcome int

// Injection outcomes.
const (
	// NotActivated: the fault produced no error (overwritten/latent);
	// excluded from the fault rate per §3.2.1.
	NotActivated Outcome = iota + 1
	// Masked: an error was detected and masked locally; all outputs
	// correct and on time.
	Masked
	// Omission: at least one task release delivered no result, but no
	// wrong value was ever delivered.
	Omission
	// FailSilent: the node shut itself down.
	FailSilent
	// ValueFailure: a wrong output escaped every detection mechanism
	// (a non-covered error — the dangerous case).
	ValueFailure
)

// NumOutcomes is the number of outcome classes; valid Outcome values
// are 1..NumOutcomes, so a [NumOutcomes + 1]T array indexes directly by
// Outcome (guarded by TestEnumCardinalities).
const NumOutcomes = int(ValueFailure)

// AllOutcomes lists every outcome class, in declaration (report) order.
func AllOutcomes() []Outcome {
	return []Outcome{NotActivated, Masked, Omission, FailSilent, ValueFailure}
}

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case NotActivated:
		return "not-activated"
	case Masked:
		return "masked"
	case Omission:
		return "omission"
	case FailSilent:
		return "fail-silent"
	case ValueFailure:
		return "value-failure"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}
