package fault

// The range-restricted campaign entry point for the sharded
// orchestrator (internal/shard). A worker process builds one
// ShardRunner per campaign spec and runs every lease it wins through
// it: the golden run and the per-slot checkpoint captures are paid
// once and amortized across leases, so a lease costs only its trials'
// post-injection suffixes — the same economics the fork engine gives a
// serial campaign.
//
// Why a shard is bit-identical to the same index range of a serial
// run: every trial's plan is a pure function of (Seed, trial index)
// (planForTrial), every trial executes on the same fork machinery
// (forkWorker.runTrial / runTrial), records land at their trial index,
// and all cross-trial aggregation — tally counts and the telemetry
// registry — is commutative addition over per-trial contributions. No
// part of a trial can observe which process, lease, or slot ran it.

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/obs"
	"repro/internal/stats"
)

// TallyDelta is the wire form of one shard's outcome tallies: the flat
// tally arrays plus the open mechanism map. It marshals canonically
// (arrays in index order, encoding/json sorts the map keys), merges by
// pure addition, and applies to a Result with the exact skip-zero
// semantics of the serial merge, so the folded maps are identical to a
// serial run's for any shard partition and arrival order.
type TallyDelta struct {
	Counts      [NumOutcomes + 1]int                 `json:"counts"`
	ByTarget    [NumTargets + 1][NumOutcomes + 1]int `json:"by_target"`
	ByMechanism map[string]int                       `json:"by_mechanism,omitempty"`
}

// add folds one worker-slot tally into the delta.
//
//nlft:merge
func (d *TallyDelta) add(t *tally) {
	for o, n := range t.counts {
		d.Counts[o] += n
	}
	for tg, counts := range t.byTarget {
		for o, n := range counts {
			d.ByTarget[tg][o] += n
		}
	}
	//nlft:allow nodeterminism tally merge adds, which commutes; iteration order cannot affect the result
	for m, n := range t.byMechanism {
		if d.ByMechanism == nil {
			d.ByMechanism = make(map[string]int)
		}
		d.ByMechanism[m] += n
	}
}

// Merge adds another shard's delta; pure addition, so any merge order
// yields the same delta.
//
//nlft:merge
func (d *TallyDelta) Merge(o *TallyDelta) {
	if o == nil {
		return
	}
	for i, n := range o.Counts {
		d.Counts[i] += n
	}
	for tg, counts := range o.ByTarget {
		for i, n := range counts {
			d.ByTarget[tg][i] += n
		}
	}
	//nlft:allow nodeterminism tally merge adds, which commutes; iteration order cannot affect the result
	for m, n := range o.ByMechanism {
		if d.ByMechanism == nil {
			d.ByMechanism = make(map[string]int)
		}
		d.ByMechanism[m] += n
	}
}

// ApplyTo folds the delta into a Result's exported maps with the skip-
// zero semantics of the serial merge (tally.mergeInto), so the map
// contents — and every digest derived from them — match a serial run's.
//
//nlft:merge
func (d *TallyDelta) ApplyTo(res *Result) {
	for o, n := range d.Counts {
		if n > 0 {
			res.Counts[Outcome(o)] += n
		}
	}
	//nlft:allow nodeterminism tally merge adds, which commutes; iteration order cannot affect the result
	for m, n := range d.ByMechanism {
		res.ByMechanism[m] += n
	}
	for target, counts := range d.ByTarget {
		for o, n := range counts {
			if n == 0 {
				continue
			}
			if res.ByTarget[Target(target)] == nil {
				res.ByTarget[Target(target)] = make(map[Outcome]int)
			}
			res.ByTarget[Target(target)][Outcome(o)] += n
		}
	}
}

// ShardResult is one completed trial-index range [Lo, Hi): the records
// in trial order plus the shard's additive tally and telemetry deltas.
type ShardResult struct {
	Lo, Hi int
	// Records holds the trials of the range in index order;
	// Records[i] is trial Lo+i, bit-identical to the record a serial
	// run produces at that index.
	Records []TrialRecord
	// Tally is the shard's outcome tally delta.
	Tally TallyDelta
	// Metrics is the shard's telemetry registry delta in canonical wire
	// form (nil unless the campaign collects telemetry).
	Metrics *obs.RegistryWire
}

// shardSlot is one parallel execution slot of a ShardRunner: a fork
// worker (instance + checkpoint store, built once and reused across
// leases — restore fully rewinds it) or, on the NoFork path, just the
// reusable trial scratch.
type shardSlot struct {
	fw      *forkWorker
	col     *obs.Collector // fork-path instance collector, rewound per restore
	scratch trialScratch
}

// ShardRunner executes arbitrary trial-index ranges of one campaign
// configuration. Build one per campaign and feed it every lease: the
// golden run happens at construction and each slot's checkpoint
// capture on its first lease, so subsequent leases start injecting
// immediately. Not safe for concurrent Run calls (each lease already
// fans out over cfg.Parallelism slots internally).
type ShardRunner struct {
	w      Workload
	cfg    CampaignConfig
	golden []Write
	slots  []*shardSlot
}

// NewShardRunner validates the configuration and runs the golden run.
// Sharded campaigns draw every trial from its (Seed, index) stream, so
// planned campaigns (cfg.Plan) are rejected; per-trial event streams
// (cfg.TelemetryEvents) are trial-ordered rather than additive, so
// they are a serial-only feature and rejected too.
func NewShardRunner(w Workload, cfg CampaignConfig) (*ShardRunner, error) {
	if w == nil {
		return nil, fmt.Errorf("fault: nil workload")
	}
	if cfg.Plan != nil {
		return nil, fmt.Errorf("fault: planned campaigns cannot be sharded")
	}
	if cfg.TelemetryEvents {
		return nil, fmt.Errorf("fault: per-trial event streams cannot be sharded; use Telemetry (metrics only)")
	}
	cfg.applyDefaults()
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("fault: %d trials", cfg.Trials)
	}
	golden, err := goldenRun(w, nil)
	if err != nil {
		return nil, err
	}
	if len(golden) == 0 {
		return nil, fmt.Errorf("fault: golden run produced no outputs; workload broken")
	}
	return &ShardRunner{
		w:      w,
		cfg:    cfg,
		golden: golden,
		slots:  make([]*shardSlot, cfg.Parallelism),
	}, nil
}

// Config is the runner's configuration with defaults applied.
func (r *ShardRunner) Config() CampaignConfig { return r.cfg }

// Golden is the fault-free output sequence.
func (r *ShardRunner) Golden() []Write { return r.golden }

// Run executes trials [lo, hi) and returns their records and additive
// deltas. Any partition of [0, Trials) into Run calls — in any order,
// including overlapping re-runs of the same range discarded by the
// caller — merges to the serial result.
func (r *ShardRunner) Run(lo, hi int) (*ShardResult, error) {
	if lo < 0 || hi > r.cfg.Trials || lo >= hi {
		return nil, fmt.Errorf("fault: shard range [%d, %d) outside campaign [0, %d)", lo, hi, r.cfg.Trials)
	}
	n := hi - lo
	slots := len(r.slots)
	if slots > n {
		slots = n
	}
	out := &ShardResult{Lo: lo, Hi: hi, Records: make([]TrialRecord, n)}
	tallies := make([]*tally, slots)
	regs := make([]*obs.Registry, slots)
	errs := make([]error, slots)
	var wg sync.WaitGroup
	for k := 0; k < slots; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			tallies[k] = newTally()
			regs[k], errs[k] = r.runSlot(k, slots, lo, hi, out.Records, tallies[k])
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, t := range tallies {
		out.Tally.add(t)
	}
	if r.cfg.Telemetry {
		merged := obs.NewRegistry()
		for _, reg := range regs {
			merged.Merge(reg)
		}
		out.Metrics = merged.Wire()
	}
	return out, nil
}

// runSlot executes slot k's strided share of [lo, hi): trials
// lo+k, lo+k+slots, …. Records land at their range offset, so the
// result order is the trial-index order regardless of slot count.
func (r *ShardRunner) runSlot(k, slots, lo, hi int, records []TrialRecord, t *tally) (*obs.Registry, error) {
	if r.cfg.NoFork {
		return r.runSlotScratch(k, slots, lo, hi, records, t)
	}
	s := r.slots[k]
	if s == nil {
		s = &shardSlot{}
		if r.cfg.Telemetry {
			s.col = newWorkerCollector()
		}
		fw, err := newForkWorker(r.w, &r.cfg, s.col, r.golden)
		if err != nil {
			return nil, err
		}
		s.fw = fw
		r.slots[k] = s
	}
	// accCol accumulates exactly this lease's per-trial registries — the
	// shard's telemetry delta. The slot's instance collector is rewound
	// by every restore, so after a trial it holds that trial's full
	// registry (checkpoint prefix + simulated suffix), exactly like the
	// serial fork path's per-worker accumulation.
	var accCol *obs.Collector
	if r.cfg.Telemetry {
		accCol = newWorkerCollector()
	}
	mine := make([]int, 0, (hi-lo-k+slots-1)/slots)
	plans := make(map[int]trialPlan, cap(mine))
	for trial := lo + k; trial < hi; trial += slots {
		plan := planForTrial(r.w, &r.cfg, trial)
		plan.ckpt = s.fw.cs.selectFor(plan.fault.At)
		plans[trial] = plan
		mine = append(mine, trial)
	}
	// Bucket by fork base like the serial engine: consecutive trials
	// restore the same snapshot, keeping the restore source cache-warm.
	sort.SliceStable(mine, func(a, b int) bool {
		return plans[mine[a]].ckpt < plans[mine[b]].ckpt
	})
	for _, trial := range mine {
		rec, err := s.fw.runTrial(plans[trial])
		if err != nil {
			return nil, fmt.Errorf("fault: trial %d: %w", trial, err)
		}
		if accCol != nil {
			accCol.Registry().Merge(s.col.Registry())
		}
		recordTrialMetrics(accCol, &rec)
		records[trial-lo] = rec
		t.record(&rec)
	}
	if accCol != nil {
		return accCol.Registry(), nil
	}
	return nil, nil
}

// runSlotScratch is the NoFork slot loop: every trial simulates from
// t=0 on a fresh instance, with a per-lease metrics collector whose
// registry is the slot's additive delta.
func (r *ShardRunner) runSlotScratch(k, slots, lo, hi int, records []TrialRecord, t *tally) (*obs.Registry, error) {
	s := r.slots[k]
	if s == nil {
		s = &shardSlot{}
		r.slots[k] = s
	}
	var col *obs.Collector
	if r.cfg.Telemetry {
		col = newWorkerCollector()
	}
	for trial := lo + k; trial < hi; trial += slots {
		plan := planForTrial(r.w, &r.cfg, trial)
		rec, err := runTrial(r.w, r.cfg, plan, r.golden, &s.scratch, col)
		if err != nil {
			return nil, fmt.Errorf("fault: trial %d: %w", trial, err)
		}
		recordTrialMetrics(col, &rec)
		records[trial-lo] = rec
		t.record(&rec)
	}
	if col != nil {
		return col.Registry(), nil
	}
	return nil, nil
}

// FinalizeSharded assembles a campaign Result from shard-merged parts,
// exactly as the serial merge phase does: the tally delta folds into
// the exported maps with skip-zero semantics, the merged registry
// becomes Result.Metrics when telemetry was collected, and the §3.2.2
// estimators are computed from the folded counts. Snapshots stays nil
// (checkpoint-store traffic is a per-process diagnostic, not part of
// the campaign's observable result).
func FinalizeSharded(cfg CampaignConfig, golden []Write, trials []TrialRecord, delta *TallyDelta, metrics *obs.Registry) (*Result, error) {
	cfg.applyDefaults()
	if len(trials) != cfg.Trials {
		return nil, fmt.Errorf("fault: %d trial records for a %d-trial campaign", len(trials), cfg.Trials)
	}
	res := &Result{
		Config:      cfg,
		Golden:      golden,
		Counts:      make(map[Outcome]int),
		ByMechanism: make(map[string]int),
		ByTarget:    make(map[Target]map[Outcome]int),
		Trials:      trials,
	}
	delta.ApplyTo(res)
	if cfg.Telemetry {
		res.Metrics = metrics
	}
	activated := res.Activated()
	detected := res.Detected()
	res.CD = stats.NewProportion(detected, activated)
	res.PT = stats.NewProportion(res.Counts[Masked], detected)
	res.POM = stats.NewProportion(res.Counts[Omission], detected)
	res.PFS = stats.NewProportion(res.Counts[FailSilent], detected)
	return res, nil
}
