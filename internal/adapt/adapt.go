// Package adapt implements the adaptive stratified sampling campaign
// driver: orders-of-magnitude effective throughput for rare-outcome
// estimates over the checkpoint/fork injection engine (internal/fault).
//
// The fault space is stratified by (target × injection-window bucket).
// Trials run in fixed-size rounds; at each round barrier the driver
// recomputes a Neyman allocation from the committed per-stratum
// tallies — more trials where the weighted outcome variance lives —
// and adaptively refines dominant strata by splitting their time
// window in half (importance splitting on the time axis). The
// campaign's modelled kernel-hit coin is carried analytically as an
// exact stratum (Rao-Blackwellization): its conditional outcome
// distribution is known in closed form, so no trial is ever spent
// simulating it and its share of the estimator variance is zero.
//
// The same treatment covers the kernel-activity time windows: a
// coin-free fault landing while the simulated kernel occupies the
// processor fail-silences deterministically, decided by the injection
// instant alone (fault.ActivityWindows). One extra golden run fixes
// that time set exactly; its mass enters every estimate as a second
// exact stratum, and the sampled strata draw only from its complement.
// Without this, the activity windows are the dominant variance source
// for P(FailSilent): rare, scattered, and periodic — precisely the
// structure importance splitting pays most to rediscover empirically.
//
// Determinism. Results are bit-identical for any Parallelism and with
// the fork engine on or off:
//
//   - Every trial's RNG stream is a pure function of (Seed, stratum
//     key, within-stratum index) via des.NewRandIndexed2 — no draw
//     order or shared state. Split children get fresh stratum keys, so
//     no stream is ever consumed under two owners.
//   - All adaptive decisions (allocation, splitting, stopping) are
//     functions of tallies committed at round barriers, walked in
//     canonical stratum-slice order; workers write each trial's
//     outcome at its precomputed flat index, so completion order
//     cannot leak into any decision.
//   - Fork on/off equivalence is inherited from the fork engine's
//     soundness argument (internal/fault/fork.go): a forked trial's
//     record is bit-identical to a from-scratch trial's.
package adapt

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/stats"
)

// Config parameterizes an adaptive campaign.
type Config struct {
	// Seed drives all random choices; campaigns are fully reproducible.
	Seed uint64
	// Targets restricts the fault locations. Default fault.AllTargets().
	Targets []fault.Target
	// Window bounds the injection instants as a half-open interval
	// [Window[0], Window[1]). Default (both zero): the workload's own
	// injection window.
	Window [2]des.Time
	// Buckets is the number of base time buckets per target the window
	// is stratified into. Default 4. Splitting refines below this grid.
	Buckets int
	// RoundSize is the number of trials per allocation round. Default
	// 512. Smaller rounds adapt faster; larger rounds amortize the
	// barrier.
	RoundSize int
	// MinPerStratum is the cumulative per-stratum trial floor: any
	// stratum (including fresh split children) is topped up to this
	// many total trials before a round's Neyman shares are assigned,
	// so no stratum's estimate rests on nothing. Default 4.
	MinPerStratum int
	// MaxTrials caps the sampled trial count. Default 100000.
	MaxTrials int
	// CIWidth, when positive, stops the campaign once the 95% CI for
	// CIOutcome is narrower than this (full width, Hi−Lo). Zero runs to
	// MaxTrials.
	CIWidth float64
	// CIOutcome is the outcome whose estimate drives the CIWidth stop
	// rule and the Neyman allocation. Default fault.FailSilent — the
	// paper's rare, safety-critical outcome.
	CIOutcome fault.Outcome
	// Parallelism is the number of worker goroutines. Default (0) is
	// runtime.GOMAXPROCS(0). Results are bit-identical for any value.
	Parallelism int
	// NoFork disables the checkpoint/fork engine and simulates every
	// trial from t=0. Results are bit-identical either way.
	NoFork bool
	// NoSplit disables adaptive stratum refinement, leaving the base
	// (target × bucket) grid fixed.
	NoSplit bool
	// SnapshotInterval is the fork checkpoint spacing (0 = the campaign
	// default; see internal/fault).
	SnapshotInterval des.Time
	// KernelShare and KernelDetect parameterize the modelled kernel-hit
	// branch, exactly as in fault.CampaignConfig (defaults 0.05, 0.98).
	// The branch is never simulated: it enters every estimate as an
	// exact stratum of weight KernelShare whose conditional outcome is
	// FailSilent with probability KernelDetect, else ValueFailure.
	KernelShare  float64
	KernelDetect float64
	// NoKernelModel removes the modelled kernel coin entirely: the
	// sampled strata then cover the whole population. The differential
	// tests use this to compare against the exhaustive verifier's
	// coin-free enumeration.
	NoKernelModel bool
	// OnRound, when set, is called after every round barrier with the
	// committed round summary. Calls arrive on the driver goroutine in
	// round order.
	OnRound func(RoundInfo)
}

func (c *Config) applyDefaults(w fault.Workload) {
	if c.Targets == nil {
		c.Targets = fault.AllTargets()
	}
	if c.Window[0] == 0 && c.Window[1] == 0 {
		c.Window[0], c.Window[1] = w.InjectionWindow()
	}
	if c.Buckets == 0 {
		c.Buckets = 4
	}
	if c.RoundSize == 0 {
		c.RoundSize = 512
	}
	if c.MinPerStratum == 0 {
		c.MinPerStratum = 4
	}
	if c.MaxTrials == 0 {
		c.MaxTrials = 100000
	}
	if c.CIOutcome == 0 {
		c.CIOutcome = fault.FailSilent
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.NoKernelModel {
		c.KernelShare = 0
		c.KernelDetect = 0
	} else {
		if c.KernelShare == 0 {
			c.KernelShare = 0.05
		}
		if c.KernelDetect == 0 {
			c.KernelDetect = 0.98
		}
	}
}

// RoundInfo summarizes one committed round.
type RoundInfo struct {
	// Round is the 1-based round number.
	Round int
	// Allocated is the trial count this round ran.
	Allocated int
	// Trials is the cumulative sampled trial count.
	Trials int
	// Strata is the current stratum count.
	Strata int
	// Estimate is the post-round estimate for Config.CIOutcome.
	Estimate stats.StratifiedEstimate
}

// StratumReport is one stratum's final state, for reports.
type StratumReport struct {
	// Target and the half-open window [Start, End) identify the
	// stratum; Level and Index locate it on the refinement grid
	// (level 0 is the base Buckets grid; each level halves the window).
	Target       fault.Target
	Level, Index int
	Start, End   des.Time
	// FreeWidth is the total width of the window's kernel-activity-free
	// sub-intervals — the instants the stratum actually samples from
	// (activity instants fail-silence deterministically and are carried
	// analytically).
	FreeWidth des.Time
	// Weight is the stratum's probability mass within the sampled
	// population.
	Weight float64
	// Trials is the sampled trial count; Counts the outcome tally.
	Trials int
	Counts map[fault.Outcome]int
}

// RatioEstimate is a conservative interval for a ratio of two event
// probabilities (numerator ⊆ denominator): the paper's conditional
// parameters C_D, P_T, P_OM, P_FS.
type RatioEstimate struct {
	// P is the point estimate Num.P/Den.P.
	P float64
	// Lo and Hi bound the ratio conservatively by Num.Lo/Den.Hi and
	// Num.Hi/Den.Lo, clipped to [0, 1] — each bound pairs the extremes
	// of the two intervals, so the true ratio is covered whenever both
	// component intervals cover.
	Lo, Hi float64
}

// String renders the estimate as "p [lo, hi]".
func (r RatioEstimate) String() string {
	return fmt.Sprintf("%.4f [%.4f, %.4f]", r.P, r.Lo, r.Hi)
}

// Result aggregates an adaptive campaign.
type Result struct {
	Config Config
	// Rounds is the number of committed rounds; Trials the sampled
	// trial count (the analytic kernel stratum consumes none).
	Rounds int
	Trials int
	// StopReason is "ci-width" (the CIWidth rule fired) or
	// "max-trials".
	StopReason string
	// KernelActivity is the kernel-activity fraction of the injection
	// window: the mass of instants at which a coin-free fault
	// fail-silences deterministically. It is carried analytically — no
	// trial samples it — so the reported stratum weights sum to
	// 1 − KernelActivity.
	KernelActivity float64
	// Strata reports the final strata, sorted by (Target, Start).
	Strata []StratumReport
	// ByOutcome estimates each outcome's probability over the full
	// population (modelled kernel branch included).
	ByOutcome map[fault.Outcome]stats.StratifiedEstimate
	// CD, PT, POM, PFS estimate the paper's conditional parameters
	// (§3.2.2): CD over activated faults; PT/POM/PFS over detected
	// errors.
	CD, PT, POM, PFS RatioEstimate
	// Digest fingerprints the committed per-stratum tallies in
	// canonical order — bit-identical across Parallelism and fork
	// on/off for a fixed seed (guarded by TestAdaptiveDeterminism).
	Digest string
}

// Estimate returns the estimate for one outcome's probability.
func (r *Result) Estimate(o fault.Outcome) stats.StratifiedEstimate {
	return r.ByOutcome[o]
}

// Summary renders a human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "adaptive campaign: %d trials in %d rounds, %d strata, seed %d (stop: %s)\n",
		r.Trials, r.Rounds, len(r.Strata), r.Config.Seed, r.StopReason)
	if !r.Config.NoKernelModel {
		fmt.Fprintf(&b, "  kernel branch (exact): weight %.3f, detect %.3f — 0 trials spent\n",
			r.Config.KernelShare, r.Config.KernelDetect)
	}
	if r.KernelActivity > 0 {
		fmt.Fprintf(&b, "  kernel-activity windows (exact): mass %.4f, always fail-silent — 0 trials spent\n",
			r.KernelActivity)
	}
	for _, o := range fault.AllOutcomes() {
		fmt.Fprintf(&b, "  P(%-13s = %v\n", o.String()+")", r.ByOutcome[o])
	}
	fmt.Fprintf(&b, "  C_D  = %v\n", r.CD)
	fmt.Fprintf(&b, "  P_T  = %v\n", r.PT)
	fmt.Fprintf(&b, "  P_OM = %v\n", r.POM)
	fmt.Fprintf(&b, "  P_FS = %v\n", r.PFS)
	return b.String()
}

// StrataTable renders the per-stratum allocation table.
func (r *Result) StrataTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-10s %-9s %-22s %8s %8s %s\n",
		"target", "lvl/idx", "window", "weight", "trials", "outcomes")
	for _, s := range r.Strata {
		var counts []string
		for _, o := range fault.AllOutcomes() {
			if n := s.Counts[o]; n > 0 {
				counts = append(counts, fmt.Sprintf("%s %d", o, n))
			}
		}
		fmt.Fprintf(&b, "  %-10s %2d/%-6d [%v, %v) %8.4f %8d %s\n",
			s.Target, s.Level, s.Index, s.Start, s.End, s.Weight, s.Trials,
			strings.Join(counts, ", "))
	}
	return b.String()
}

// sortReports orders stratum reports canonically for display.
func sortReports(reps []StratumReport) {
	sort.SliceStable(reps, func(a, b int) bool {
		if reps[a].Target != reps[b].Target {
			return reps[a].Target < reps[b].Target
		}
		return reps[a].Start < reps[b].Start
	})
}
