package adapt

import (
	"math"
	"math/bits"

	"repro/internal/des"
	"repro/internal/fault"
)

// grid is the refinement grid over one target's injection window: the
// base level has Buckets equal-width half-open buckets, and level l
// has Buckets·2^l. Boundaries are a pure function of (level, index) in
// integer arithmetic, so a child window's edges coincide exactly with
// its parent's: bound(l, i) == bound(l+1, 2i) because doubling both
// numerator and denominator preserves the floor.
type grid struct {
	w0, w1  des.Time
	buckets int
}

// bound returns the i-th boundary at the given level:
// w0 + (w1−w0)·i/(buckets·2^level), computed with a 128-bit
// intermediate so wide windows cannot overflow.
func (g grid) bound(level int, index int64) des.Time {
	d := uint64(g.buckets) << uint(level)
	hi, lo := bits.Mul64(uint64(g.w1-g.w0), uint64(index))
	q, _ := bits.Div64(hi, lo, d)
	return g.w0 + des.Time(q)
}

// sample is one committed trial within a stratum, kept for
// reassignment when the stratum splits.
type sample struct {
	at      des.Time
	outcome fault.Outcome
}

// stratum is one (target × window) cell of the sampled population.
// Kernel-activity instants inside the window are not part of the
// sampled population — their outcome is analytically FailSilent and
// their mass is carried exactly (see estimateEvent) — so the stratum
// samples uniform over free, the activity-free sub-intervals of
// [start, end), and weight is free's share of the sampled mass.
type stratum struct {
	target     fault.Target
	level      int
	index      int64
	start, end des.Time
	weight     float64
	// free is the complement of the kernel-activity windows within
	// [start, end); freeW its total width (> 0 for every live stratum).
	free  []fault.Interval
	freeW des.Time
	// drawn counts the RNG substreams consumed under this stratum's
	// key. Inherited samples were drawn under the parent's key, so a
	// split child starts at zero: no (key, index) pair is ever used
	// twice.
	drawn   int
	counts  [fault.NumOutcomes + 1]int
	samples []sample
}

// instant maps a uniform offset in [0, freeW) to the corresponding
// instant of the free sub-intervals — the uniform distribution over
// the stratum's sampleable instants.
func (s *stratum) instant(off des.Time) des.Time {
	for _, iv := range s.free {
		w := iv.Width()
		if off < w {
			return iv.Start + off
		}
		off -= w
	}
	// Unreachable for off ∈ [0, freeW); keep a defined value.
	return s.free[len(s.free)-1].End - 1
}

// key identifies the stratum's RNG substream family: a pure function
// of the stratum's grid coordinates, so re-running a campaign derives
// the same streams regardless of the order strata were created in.
// Targets occupy 6 values, levels ≤ maxSplitLevel, and grid indices
// stay below buckets·2^maxSplitLevel < 2^40, so the fields cannot
// collide.
func (s *stratum) key() uint64 {
	return uint64(s.target)<<48 | uint64(s.level)<<40 | uint64(s.index)
}

func (s *stratum) trials() int { return len(s.samples) }

// commit records one settled trial. Commits happen on the driver
// goroutine at round barriers, walking the flat plan in index order, so
// the append order below is deterministic, not arrival order.
//
//nlft:merge
func (s *stratum) commit(at des.Time, o fault.Outcome) {
	//nlft:allow mergecommute committed in flat-plan index order at a deterministic round barrier
	s.samples = append(s.samples, sample{at: at, outcome: o})
	s.counts[o]++
}

// eventHits counts samples whose outcome is in the event set.
func (s *stratum) eventHits(event []fault.Outcome) int {
	h := 0
	for _, o := range event {
		h += s.counts[o]
	}
	return h
}

// score is the stratum's Neyman allocation score w·σ̃ for the driving
// outcome, with σ̃ from the Laplace-smoothed rate (hits+1)/(trials+2):
// a stratum with no data yet scores as if half its mass were hits, so
// unexplored strata attract trials, and a stratum whose rate has
// settled near 0 or 1 releases its share to the contested ones.
func (s *stratum) score(outcome fault.Outcome) float64 {
	p := (float64(s.counts[outcome]) + 1) / (float64(s.trials()) + 2)
	return s.weight * math.Sqrt(p*(1-p))
}

// Splitting policy.
const (
	// splitFactor is the multiple of the mean Neyman score a stratum
	// must exceed to be split. The variance signal behind a localized
	// rare outcome is damped by the Laplace smoothing (a hot stratum's
	// score exceeds a cold one's by √(p̃q̃) ratios, not p̃ ratios), so
	// the threshold sits just above the mean: refinement is cheap — a
	// wrongly split stratum merely ends up with two smaller allocation
	// shares — while a missed split leaves mixed variance unisolated.
	splitFactor = 1.25
	// maxSplitsPerRound bounds refinement per barrier.
	maxSplitsPerRound = 4
	// maxSplitLevel bounds refinement depth (also keeps grid indices
	// within the RNG key's 40-bit field).
	maxSplitLevel = 24
)

// initialStrata builds the base (target × bucket) grid over the
// kernel-activity-free population. Buckets whose integer window
// collapses to zero width (window narrower than the bucket count) or
// whose window is entirely kernel activity are dropped; the dropped
// activity mass is carried analytically, so the stratum weights sum to
// 1 minus the window's activity fraction.
func initialStrata(cfg *Config, kact []fault.Interval) ([]*stratum, error) {
	g := grid{w0: cfg.Window[0], w1: cfg.Window[1], buckets: cfg.Buckets}
	if g.w1 <= g.w0 {
		return nil, errEmptyWindow
	}
	totalWidth := float64(g.w1 - g.w0)
	nT := float64(len(cfg.Targets))
	var strata []*stratum
	for _, target := range cfg.Targets {
		for i := 0; i < cfg.Buckets; i++ {
			start, end := g.bound(0, int64(i)), g.bound(0, int64(i)+1)
			if end <= start {
				continue
			}
			free := fault.Complement(kact, start, end)
			freeW := des.Time(0)
			for _, iv := range free {
				freeW += iv.Width()
			}
			if freeW == 0 {
				continue
			}
			strata = append(strata, &stratum{
				target: target,
				index:  int64(i),
				start:  start,
				end:    end,
				free:   free,
				freeW:  freeW,
				weight: float64(freeW) / totalWidth / nT,
			})
		}
	}
	if len(strata) == 0 {
		return nil, errEmptyWindow
	}
	return strata, nil
}

// split replaces strata[si] with its lower half and appends the upper
// half. Inherited samples are reassigned by instant — a sample drawn
// uniform over the parent's free set is, conditioned on landing in a
// child window, uniform over that child's free set (the child's free
// set is exactly the parent's restricted to the child window), so the
// reassigned tallies remain unbiased samples of the children's
// conditional distributions. The children's free sets partition the
// parent's at the grid midpoint, so their weights sum to the parent's.
// Returns false when the midpoint degenerates (width < 2) or either
// child would have no sampleable mass (the activity windows swallow
// one half; refining there isolates nothing the analytic stratum does
// not already carry).
func split(strata []*stratum, si int, g grid, totalWidth, nT float64) ([]*stratum, bool) {
	p := strata[si]
	mid := g.bound(p.level+1, 2*p.index+1)
	if mid <= p.start || mid >= p.end {
		return strata, false
	}
	var loFree, hiFree []fault.Interval
	var loW, hiW des.Time
	for _, iv := range p.free {
		if iv.End <= mid {
			loFree = append(loFree, iv)
			loW += iv.Width()
			continue
		}
		if iv.Start >= mid {
			hiFree = append(hiFree, iv)
			hiW += iv.Width()
			continue
		}
		loFree = append(loFree, fault.Interval{Start: iv.Start, End: mid})
		loW += mid - iv.Start
		hiFree = append(hiFree, fault.Interval{Start: mid, End: iv.End})
		hiW += iv.End - mid
	}
	if loW == 0 || hiW == 0 {
		return strata, false
	}
	lo := &stratum{
		target: p.target,
		level:  p.level + 1,
		index:  2 * p.index,
		start:  p.start,
		end:    mid,
		free:   loFree,
		freeW:  loW,
		weight: float64(loW) / totalWidth / nT,
	}
	hi := &stratum{
		target: p.target,
		level:  p.level + 1,
		index:  2*p.index + 1,
		start:  mid,
		end:    p.end,
		free:   hiFree,
		freeW:  hiW,
		weight: float64(hiW) / totalWidth / nT,
	}
	for _, smp := range p.samples {
		c := lo
		if smp.at >= mid {
			c = hi
		}
		c.samples = append(c.samples, smp)
		c.counts[smp.outcome]++
	}
	strata[si] = lo
	return append(strata, hi), true
}
