package adapt

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/stats"
)

var errEmptyWindow = errors.New("adapt: empty injection window")

// Outcome event sets for the paper's conditional parameters.
var (
	activatedEvent = []fault.Outcome{fault.Masked, fault.Omission,
		fault.FailSilent, fault.ValueFailure}
	detectedEvent = []fault.Outcome{fault.Masked, fault.Omission,
		fault.FailSilent}
)

// plannedTrial is one precomputed trial of a round: the stratum it
// belongs to and its fully drawn spec. Planning happens on the driver
// goroutine before the round runs, so workers only execute.
type plannedTrial struct {
	si   int
	spec fault.TrialSpec
}

// engine is one campaign's driver state.
type engine struct {
	w      fault.Workload
	cfg    *Config
	g      grid
	strata []*stratum
	total  int
	rounds int
	// kactFrac is the kernel-activity fraction of the injection window:
	// the exact FailSilent mass carried analytically per target (the
	// activity set is a pure time set, identical for every target).
	kactFrac float64

	// One trial runner per worker: fork sessions (each owns a live
	// instance and checkpoint store) or scratch runners with the shared
	// golden reference.
	sessions []*fault.ForkSession
	scratch  []*fault.ScratchRunner
	golden   []fault.Write
}

// Run executes an adaptive campaign on the workload.
func Run(w fault.Workload, cfg Config) (*Result, error) {
	if w == nil {
		return nil, fmt.Errorf("adapt: nil workload")
	}
	cfg.applyDefaults(w)
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("adapt: no targets")
	}
	if cfg.CIOutcome < 1 || int(cfg.CIOutcome) > fault.NumOutcomes {
		return nil, fmt.Errorf("adapt: invalid CI outcome %d", int(cfg.CIOutcome))
	}
	// One extra golden run fixes the exact kernel-activity time set: a
	// coin-free fault at an activity instant fail-silences
	// deterministically (fault.ActivityWindows), so that mass enters
	// every estimate analytically and sampling covers only the
	// activity-free population.
	kact, err := fault.ActivityWindows(w)
	if err != nil {
		return nil, err
	}
	strata, err := initialStrata(&cfg, kact)
	if err != nil {
		return nil, err
	}
	e := &engine{
		w:      w,
		cfg:    &cfg,
		g:      grid{w0: cfg.Window[0], w1: cfg.Window[1], buckets: cfg.Buckets},
		strata: strata,
		kactFrac: float64(fault.OverlapWidth(kact, cfg.Window[0], cfg.Window[1])) /
			float64(cfg.Window[1]-cfg.Window[0]),
	}
	if err := e.buildRunners(); err != nil {
		return nil, err
	}
	stop := ""
	for stop == "" {
		e.rounds++
		size := cfg.RoundSize
		if e.total+size > cfg.MaxTrials {
			size = cfg.MaxTrials - e.total
		}
		plan := e.planRound(e.allocate(size))
		outcomes, err := e.runRound(plan)
		if err != nil {
			return nil, err
		}
		for i, pt := range plan {
			e.strata[pt.si].commit(pt.spec.Fault.At, outcomes[i])
		}
		e.total += len(plan)
		est := e.estimateEvent([]fault.Outcome{cfg.CIOutcome})
		if cfg.OnRound != nil {
			cfg.OnRound(RoundInfo{Round: e.rounds, Allocated: len(plan),
				Trials: e.total, Strata: len(e.strata), Estimate: est})
		}
		switch {
		case cfg.CIWidth > 0 && est.Hi-est.Lo <= cfg.CIWidth:
			stop = "ci-width"
		case e.total >= cfg.MaxTrials:
			stop = "max-trials"
		default:
			if !cfg.NoSplit {
				e.refine()
			}
		}
	}
	return e.result(stop), nil
}

// buildRunners constructs one trial runner per worker. Fork sessions
// each capture their own checkpoint store (a deterministic golden
// prefix), so they are built concurrently; the scratch path shares one
// golden reference.
func (e *engine) buildRunners() error {
	workers := e.cfg.Parallelism
	if e.cfg.NoFork {
		golden, err := fault.GoldenWrites(e.w)
		if err != nil {
			return err
		}
		e.golden = golden
		e.scratch = make([]*fault.ScratchRunner, workers)
		for i := range e.scratch {
			e.scratch[i] = &fault.ScratchRunner{}
		}
		return nil
	}
	e.sessions = make([]*fault.ForkSession, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := range e.sessions {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.sessions[i], errs[i] = fault.NewForkSession(e.w, e.cfg.SnapshotInterval, false)
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}

// allocate distributes size trials over the strata: any stratum still
// below the cumulative MinPerStratum floor (including fresh split
// children) is topped up first, in index order, and the remainder
// follows the Neyman scores by largest-remainder apportionment. The
// floor is cumulative, not per round — a stratum whose tally has
// settled stops paying an exploration tax every barrier, which is
// where a recurring floor would otherwise spend most of the campaign.
// Unexplored strata still cannot starve: the Laplace-smoothed score of
// a stratum never reaches zero, so every stratum keeps a share of
// every round. All inputs are committed tallies and the tie-break is
// the stratum index, so the allocation is a pure function of the round
// history.
func (e *engine) allocate(size int) []int {
	n := len(e.strata)
	alloc := make([]int, n)
	if size <= 0 {
		return alloc
	}
	rem := size
	for i, s := range e.strata {
		if d := e.cfg.MinPerStratum - s.trials(); d > 0 {
			if d > rem {
				d = rem
			}
			alloc[i] = d
			rem -= d
			if rem == 0 {
				return alloc
			}
		}
	}
	scores := make([]float64, n)
	totalScore := 0.0
	for i, s := range e.strata {
		scores[i] = s.score(e.cfg.CIOutcome)
		totalScore += scores[i]
	}
	if totalScore <= 0 {
		for i := range scores {
			scores[i] = 1
		}
		totalScore = float64(n)
	}
	type remainder struct {
		i int
		f float64
	}
	fracs := make([]remainder, n)
	given := 0
	for i := range scores {
		share := float64(rem) * scores[i] / totalScore
		whole := int(share)
		alloc[i] += whole
		given += whole
		fracs[i] = remainder{i: i, f: share - float64(whole)}
	}
	sort.SliceStable(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; k < rem-given; k++ {
		alloc[fracs[k].i]++
	}
	return alloc
}

// planRound draws every trial of the round up front: stratum si's j-th
// new trial uses the substream (Seed, key(si), drawn(si)+j), and its
// flat position in the plan is fixed by the canonical stratum order —
// nothing about execution can change what any trial is.
func (e *engine) planRound(alloc []int) []plannedTrial {
	var plan []plannedTrial
	for si, s := range e.strata {
		for j := 0; j < alloc[si]; j++ {
			rng := des.NewRandIndexed2(e.cfg.Seed, s.key(), uint64(s.drawn+j))
			at := s.instant(des.Time(rng.Intn(int(s.freeW))))
			f := fault.DrawFaultAt(e.w, s.target, at, rng)
			plan = append(plan, plannedTrial{si: si, spec: fault.TrialSpec{Fault: f}})
		}
		s.drawn += alloc[si]
	}
	return plan
}

// runRound executes the planned trials over the worker pool. Workers
// take strided shares ordered by injection instant (so consecutive
// fork restores reuse nearby checkpoints) and write each outcome at
// the trial's flat index; neither the worker count nor completion
// order can influence what is committed.
func (e *engine) runRound(plan []plannedTrial) ([]fault.Outcome, error) {
	outcomes := make([]fault.Outcome, len(plan))
	workers := e.cfg.Parallelism
	if workers > len(plan) {
		workers = len(plan)
	}
	if workers < 1 {
		workers = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wk := wk
		wg.Add(1)
		go func() {
			defer wg.Done()
			mine := make([]int, 0, (len(plan)-wk+workers-1)/workers)
			for i := wk; i < len(plan); i += workers {
				mine = append(mine, i)
			}
			sort.SliceStable(mine, func(a, b int) bool {
				return plan[mine[a]].spec.Fault.At < plan[mine[b]].spec.Fault.At
			})
			for _, i := range mine {
				var rec fault.TrialRecord
				var err error
				if e.cfg.NoFork {
					rec, err = e.scratch[wk].RunTrial(e.w, plan[i].spec, e.golden)
				} else {
					rec, err = e.sessions[wk].RunTrial(plan[i].spec)
				}
				if err != nil {
					errs[wk] = fmt.Errorf("adapt: trial %d: %w", i, err)
					return
				}
				outcomes[i] = rec.Outcome
			}
		}()
	}
	wg.Wait()
	return outcomes, errors.Join(errs...)
}

// refine splits the strata that dominate the Neyman scores: a stratum
// holding more than splitFactor times the mean score, with enough
// trials to have earned it, is halved on the time axis so the next
// allocation can chase where its variance actually lives. At most
// maxSplitsPerRound strata split per barrier, chosen by (score desc,
// index asc) — a pure function of committed tallies.
func (e *engine) refine() {
	n := len(e.strata)
	mean := 0.0
	scores := make([]float64, n)
	for i, s := range e.strata {
		scores[i] = s.score(e.cfg.CIOutcome)
		mean += scores[i]
	}
	mean /= float64(n)
	type candidate struct {
		si    int
		score float64
	}
	var cands []candidate
	for i, s := range e.strata {
		if scores[i] > splitFactor*mean &&
			s.level < maxSplitLevel &&
			s.end-s.start >= 2 &&
			s.trials() >= 2*e.cfg.MinPerStratum {
			cands = append(cands, candidate{si: i, score: scores[i]})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].score != cands[b].score {
			return cands[a].score > cands[b].score
		}
		return cands[a].si < cands[b].si
	})
	if len(cands) > maxSplitsPerRound {
		cands = cands[:maxSplitsPerRound]
	}
	totalWidth := float64(e.g.w1 - e.g.w0)
	nT := float64(len(e.cfg.Targets))
	for _, c := range cands {
		e.strata, _ = split(e.strata, c.si, e.g, totalWidth, nT)
	}
}

// estimateEvent assembles the stratified estimate of P(outcome ∈
// event) over the full population: the sampled strata scaled by the
// non-kernel mass, plus two analytic exact strata — the modelled
// kernel-hit coin, and the kernel-activity time windows (within which
// a coin-free fault fail-silences deterministically; their mass is
// kactFrac of the non-coin population).
func (e *engine) estimateEvent(event []fault.Outcome) stats.StratifiedEstimate {
	list := make([]stats.Stratum, 0, len(e.strata)+2)
	scale := 1.0
	if !e.cfg.NoKernelModel {
		scale = 1 - e.cfg.KernelShare
		p := 0.0
		for _, o := range event {
			switch o {
			case fault.FailSilent:
				p += e.cfg.KernelDetect
			case fault.ValueFailure:
				p += 1 - e.cfg.KernelDetect
			}
		}
		list = append(list, stats.Stratum{Weight: e.cfg.KernelShare, Exact: true, P: p})
	}
	if e.kactFrac > 0 {
		p := 0.0
		for _, o := range event {
			if o == fault.FailSilent {
				p = 1
			}
		}
		list = append(list, stats.Stratum{Weight: scale * e.kactFrac, Exact: true, P: p})
	}
	for _, s := range e.strata {
		list = append(list, stats.Stratum{
			Weight: scale * s.weight,
			Hits:   s.eventHits(event),
			Trials: s.trials(),
		})
	}
	return stats.Stratified(list)
}

// ratio builds the conservative interval for num/den (num ⊆ den).
func ratio(num, den stats.StratifiedEstimate) RatioEstimate {
	r := RatioEstimate{Hi: 1}
	if den.P > 0 {
		r.P = num.P / den.P
	}
	if den.Hi > 0 {
		r.Lo = num.Lo / den.Hi
	}
	if den.Lo > 0 {
		r.Hi = num.Hi / den.Lo
	}
	if r.P > 1 {
		r.P = 1
	}
	if r.Lo > 1 {
		r.Lo = 1
	}
	if r.Hi > 1 {
		r.Hi = 1
	}
	return r
}

// result assembles the exported Result, including the canonical-order
// tally digest the determinism tests pin.
func (e *engine) result(stop string) *Result {
	res := &Result{
		Config:         *e.cfg,
		Rounds:         e.rounds,
		Trials:         e.total,
		StopReason:     stop,
		KernelActivity: e.kactFrac,
		ByOutcome:      make(map[fault.Outcome]stats.StratifiedEstimate, fault.NumOutcomes),
	}
	var dig bytes.Buffer
	for _, s := range e.strata {
		rep := StratumReport{
			Target:    s.target,
			Level:     s.level,
			Index:     int(s.index),
			Start:     s.start,
			End:       s.end,
			FreeWidth: s.freeW,
			Weight:    s.weight,
			Trials:    s.trials(),
			Counts:    make(map[fault.Outcome]int),
		}
		for o, n := range s.counts {
			if n > 0 {
				rep.Counts[fault.Outcome(o)] = n
			}
		}
		res.Strata = append(res.Strata, rep)
		fmt.Fprintf(&dig, "s=%x n=%d d=%d f=%d c=%v;", s.key(), s.trials(), s.drawn, int64(s.freeW), s.counts)
	}
	fmt.Fprintf(&dig, "|total=%d rounds=%d", e.total, e.rounds)
	res.Digest = fmt.Sprintf("fnv1a:%016x", obs.DigestBytes(dig.Bytes()))
	sortReports(res.Strata)
	for _, o := range fault.AllOutcomes() {
		res.ByOutcome[o] = e.estimateEvent([]fault.Outcome{o})
	}
	activated := e.estimateEvent(activatedEvent)
	detected := e.estimateEvent(detectedEvent)
	res.CD = ratio(detected, activated)
	res.PT = ratio(e.estimateEvent([]fault.Outcome{fault.Masked}), detected)
	res.POM = ratio(e.estimateEvent([]fault.Outcome{fault.Omission}), detected)
	res.PFS = ratio(e.estimateEvent([]fault.Outcome{fault.FailSilent}), detected)
	return res
}
