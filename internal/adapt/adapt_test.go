package adapt

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/des"
	"repro/internal/exhaust"
	"repro/internal/fault"
)

// gateWorkload is the CI gate configuration (as in internal/exhaust).
func gateWorkload() fault.Workload {
	return fault.NewStdWorkload(fault.StdWorkloadConfig{ECC: true, Periods: 3, Compute: 16})
}

func mustRun(t *testing.T, w fault.Workload, cfg Config) *Result {
	t.Helper()
	res, err := Run(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestAdaptiveDeterminism pins the acceptance criterion: the committed
// tally digest — and every estimate derived from it — is bit-identical
// across Parallelism 1/4/GOMAXPROCS and with the fork engine on or off,
// for a fixed seed.
func TestAdaptiveDeterminism(t *testing.T) {
	w := gateWorkload()
	base := Config{Seed: 11, RoundSize: 96, MaxTrials: 288}
	variants := []struct {
		name string
		cfg  func() Config
	}{
		{"workers-1", func() Config { c := base; c.Parallelism = 1; return c }},
		{"workers-4", func() Config { c := base; c.Parallelism = 4; return c }},
		{"workers-max", func() Config { c := base; c.Parallelism = runtime.GOMAXPROCS(0); return c }},
		{"no-fork", func() Config { c := base; c.Parallelism = 4; c.NoFork = true; return c }},
	}
	ref := mustRun(t, w, variants[0].cfg())
	if ref.Trials != base.MaxTrials {
		t.Fatalf("trials = %d, want %d", ref.Trials, base.MaxTrials)
	}
	for _, v := range variants[1:] {
		v := v
		t.Run(v.name, func(t *testing.T) {
			got := mustRun(t, w, v.cfg())
			if got.Digest != ref.Digest {
				t.Errorf("digest %s, ref %s", got.Digest, ref.Digest)
			}
			if !reflect.DeepEqual(got.Strata, ref.Strata) {
				t.Error("strata reports diverged")
			}
			if !reflect.DeepEqual(got.ByOutcome, ref.ByOutcome) {
				t.Errorf("estimates diverged: %v vs ref %v", got.ByOutcome, ref.ByOutcome)
			}
			if got.CD != ref.CD || got.PFS != ref.PFS {
				t.Error("ratio estimates diverged")
			}
		})
	}
}

// TestAdaptiveKernelBranchExact pins the Rao-Blackwellization: with the
// modelled kernel coin carried as an exact stratum, the P(FailSilent)
// interval must cover KernelShare·KernelDetect and reach a width
// uniform sampling would need thousands of trials for — while spending
// zero trials on the branch itself.
func TestAdaptiveKernelBranchExact(t *testing.T) {
	w := gateWorkload()
	res := mustRun(t, w, Config{Seed: 3, RoundSize: 128, MaxTrials: 6000,
		CIWidth: 0.02, CIOutcome: fault.FailSilent})
	if res.StopReason != "ci-width" {
		t.Fatalf("stop = %q (trials %d), want ci-width", res.StopReason, res.Trials)
	}
	est := res.Estimate(fault.FailSilent)
	// The analytic branch contributes exactly KernelShare·KernelDetect;
	// sampled strata can only add mass (faults landing during real
	// kernel-activity windows force fail-silence deterministically), so
	// the exact shift puts a hard floor under the whole interval.
	floor := 0.05 * 0.98
	if est.Lo < floor-1e-9 || est.P < floor-1e-9 {
		t.Errorf("P(fail-silent) = %v dips below the exact kernel branch mass %.4f", est, floor)
	}
	if est.Hi-est.Lo > 0.02 {
		t.Errorf("CI width %.4f exceeds the stop target", est.Hi-est.Lo)
	}
	// Uniform sampling at p≈0.049 needs ≈ 4z²p(1−p)/w² ≈ 1800 trials
	// for width 0.02; the adaptive engine conditions the coin out and
	// must get there far cheaper.
	if res.Trials > 900 {
		t.Errorf("adaptive campaign used %d trials; expected well under uniform's ~1800", res.Trials)
	}
}

// TestAdaptiveStopReasons pins the two stop rules.
func TestAdaptiveStopReasons(t *testing.T) {
	w := gateWorkload()
	res := mustRun(t, w, Config{Seed: 5, RoundSize: 64, MaxTrials: 64})
	if res.StopReason != "max-trials" || res.Trials != 64 || res.Rounds != 1 {
		t.Errorf("got stop %q after %d trials in %d rounds, want max-trials/64/1",
			res.StopReason, res.Trials, res.Rounds)
	}
	res = mustRun(t, w, Config{Seed: 5, RoundSize: 64, MaxTrials: 6400, CIWidth: 1.99})
	if res.StopReason != "ci-width" || res.Rounds != 1 {
		t.Errorf("got stop %q in %d rounds, want ci-width after round 1",
			res.StopReason, res.Rounds)
	}
}

// TestAdaptiveWeightsSumToOne checks the invariant splitting must
// preserve: sampled stratum weights tile the population.
func TestAdaptiveWeightsSumToOne(t *testing.T) {
	w := gateWorkload()
	// Drive the allocation on a common outcome so refinement has
	// variance to chase and actually splits.
	res := mustRun(t, w, Config{Seed: 9, RoundSize: 128, MaxTrials: 1536,
		CIOutcome: fault.Masked, Buckets: 2})
	sum := 0.0
	for _, s := range res.Strata {
		sum += s.Weight
		if s.End <= s.Start {
			t.Errorf("stratum %v [%v, %v) is empty", s.Target, s.Start, s.End)
		}
		if s.FreeWidth <= 0 || s.FreeWidth > s.End-s.Start {
			t.Errorf("stratum %v [%v, %v) free width %v outside (0, window]",
				s.Target, s.Start, s.End, s.FreeWidth)
		}
	}
	// The kernel-activity mass is carried analytically, so the sampled
	// weights tile exactly the rest of the population.
	if res.KernelActivity <= 0 || res.KernelActivity >= 1 {
		t.Errorf("kernel-activity fraction %v outside (0, 1); the gate workload context-switches", res.KernelActivity)
	}
	if math.Abs(sum-(1-res.KernelActivity)) > 1e-9 {
		t.Errorf("weights sum to %v, want 1 − activity = %v", sum, 1-res.KernelActivity)
	}
	if len(res.Strata) <= 2*len(fault.AllTargets()) {
		t.Logf("note: no refinement occurred (%d strata)", len(res.Strata))
	}
	total := 0
	for _, s := range res.Strata {
		total += s.Trials
	}
	if total != res.Trials {
		t.Errorf("per-stratum trials sum to %d, result says %d", total, res.Trials)
	}
}

// TestSplitReassignment unit-tests the split operation: children tile
// the parent window exactly, inherit its samples by instant, and carry
// its weight between them.
func TestSplitReassignment(t *testing.T) {
	g := grid{w0: 0, w1: 1000, buckets: 4}
	parent := &stratum{
		target: fault.TargetALU,
		index:  1,
		start:  g.bound(0, 1),
		end:    g.bound(0, 2),
		// A kernel-activity window [300, 320) is carved out of the
		// sampleable set; the split must partition what remains.
		free:   []fault.Interval{{Start: 250, End: 300}, {Start: 320, End: 500}},
		freeW:  230,
		weight: 0.23,
	}
	parent.commit(260, fault.Masked)
	parent.commit(374, fault.NotActivated)
	parent.commit(490, fault.Masked)
	strata, ok := split([]*stratum{parent}, 0, g, 1000, 1)
	if !ok || len(strata) != 2 {
		t.Fatalf("split failed (ok=%v, %d strata)", ok, len(strata))
	}
	lo, hi := strata[0], strata[1]
	if lo.start != parent.start || lo.end != hi.start || hi.end != parent.end {
		t.Errorf("children [%d,%d)+[%d,%d) do not tile parent [%d,%d)",
			lo.start, lo.end, hi.start, hi.end, parent.start, parent.end)
	}
	if math.Abs(lo.weight+hi.weight-0.23) > 1e-12 {
		t.Errorf("child weights %v+%v != parent 0.23", lo.weight, hi.weight)
	}
	if lo.freeW+hi.freeW != parent.freeW {
		t.Errorf("child free widths %d+%d != parent %d", lo.freeW, hi.freeW, parent.freeW)
	}
	for _, iv := range lo.free {
		if iv.End > lo.end {
			t.Errorf("low child free interval %v crosses the midpoint %d", iv, lo.end)
		}
	}
	for _, iv := range hi.free {
		if iv.Start < hi.start {
			t.Errorf("high child free interval %v crosses the midpoint %d", iv, hi.start)
		}
	}
	if lo.trials()+hi.trials() != 3 {
		t.Errorf("children inherited %d+%d samples, want 3", lo.trials(), hi.trials())
	}
	for _, s := range lo.samples {
		if s.at >= lo.end {
			t.Errorf("low child holds sample at %d past its end %d", s.at, lo.end)
		}
	}
	for _, s := range hi.samples {
		if s.at < hi.start {
			t.Errorf("high child holds sample at %d before its start %d", s.at, hi.start)
		}
	}
	if lo.drawn != 0 || hi.drawn != 0 {
		t.Error("children must start fresh RNG substream counters")
	}
	if lo.key() == parent.key() || hi.key() == parent.key() || lo.key() == hi.key() {
		t.Error("stratum RNG keys must be distinct across the split")
	}
	// A width-1 stratum cannot split.
	tiny := &stratum{target: fault.TargetALU, level: 9, start: 500, end: 501, weight: 0.001}
	if _, ok := split([]*stratum{tiny}, 0, g, 1000, 1); ok {
		t.Error("degenerate split accepted")
	}
}

// TestGridBoundTiling pins the integer grid: child boundaries coincide
// with parent boundaries at every level, so refinement never leaves
// gaps or overlaps.
func TestGridBoundTiling(t *testing.T) {
	g := grid{w0: 17, w1: 17 + 999983, buckets: 3} // deliberately non-divisible
	for level := 0; level < 6; level++ {
		n := int64(3) << uint(level)
		if g.bound(level, 0) != g.w0 || g.bound(level, n) != g.w1 {
			t.Fatalf("level %d: outer bounds [%v, %v] != window", level,
				g.bound(level, 0), g.bound(level, n))
		}
		for i := int64(0); i < n; i++ {
			if g.bound(level+1, 2*i) != g.bound(level, i) {
				t.Fatalf("level %d index %d: child edge %v != parent edge %v",
					level, i, g.bound(level+1, 2*i), g.bound(level, i))
			}
		}
	}
}

// TestAdaptiveDifferentialExhaustive pins the adaptive estimator to the
// PR 7 exhaustive ground truth: on the tiny register+ALU space, the
// exact C_D computed from a full enumeration must lie inside the
// adaptive campaign's own C_D interval — for 1/4/GOMAXPROCS workers and
// with the fork engine on and off (all of which must also agree
// bit-for-bit among themselves). The adaptive run models no kernel
// coin, matching the verifier's coin-free population, and samples the
// same [0, 1ms) hyperperiod window.
func TestAdaptiveDifferentialExhaustive(t *testing.T) {
	w := fault.NewStdWorkload(fault.StdWorkloadConfig{Periods: 3, Compute: 16})
	targets := []fault.Target{fault.TargetRegister, fault.TargetALU}
	exact, err := exhaust.Verify(w, exhaust.Config{
		Quantum: 250 * des.Microsecond,
		Targets: targets,
	})
	if err != nil {
		t.Fatal(err)
	}
	detected := exact.Counts[fault.Masked] + exact.Counts[fault.Omission] +
		exact.Counts[fault.FailSilent]
	activated := detected + exact.Counts[fault.ValueFailure]
	if activated == 0 {
		t.Fatal("exhaustive enumeration activated nothing; space broken")
	}
	exactCD := float64(detected) / float64(activated)

	base := Config{
		Seed:          21,
		Targets:       targets,
		Window:        [2]des.Time{exact.Space.Start, exact.Space.End},
		NoKernelModel: true,
		RoundSize:     128,
		MaxTrials:     512,
	}
	variants := []struct {
		name string
		cfg  func() Config
	}{
		{"workers-1", func() Config { c := base; c.Parallelism = 1; return c }},
		{"workers-4", func() Config { c := base; c.Parallelism = 4; return c }},
		{"workers-max", func() Config { c := base; c.Parallelism = runtime.GOMAXPROCS(0); return c }},
		{"no-fork-1", func() Config { c := base; c.Parallelism = 1; c.NoFork = true; return c }},
		{"no-fork-4", func() Config { c := base; c.Parallelism = 4; c.NoFork = true; return c }},
	}
	var ref *Result
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			res := mustRun(t, w, v.cfg())
			if !(res.CD.Lo <= exactCD && exactCD <= res.CD.Hi) {
				t.Errorf("exhaustive C_D %.6f outside adaptive interval %v", exactCD, res.CD)
			}
			// The coin-free population must show no analytic mass: the
			// estimates are pure sampled-strata estimates.
			if res.Config.KernelShare != 0 {
				t.Errorf("kernel share %v leaked into a NoKernelModel campaign", res.Config.KernelShare)
			}
			if ref == nil {
				ref = res
				return
			}
			if res.Digest != ref.Digest {
				t.Errorf("digest %s diverged from ref %s", res.Digest, ref.Digest)
			}
			if !reflect.DeepEqual(res.ByOutcome, ref.ByOutcome) {
				t.Error("estimates diverged from ref")
			}
		})
	}
}
