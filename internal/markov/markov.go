// Package markov provides continuous-time Markov chain (CTMC) modelling
// and solution: transient state probabilities (matrix exponential and
// uniformization), steady-state distributions, mean time to absorption
// (MTTF), and Monte-Carlo trajectory sampling for cross-validation.
//
// It re-implements the CTMC subset of the SHARPE tool that the paper uses
// for its dependability analysis (Figures 6, 7, 9, 10, 11): small chains
// with stiff generators, where fault rates (~10⁻⁵/h) and repair rates
// (~10³/h) coexist and the horizon is up to a year.
//
// All rates are per hour and all times are in hours, matching the paper's
// parameter tables.
package markov

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/des"
	"repro/internal/linalg"
)

// Builder accumulates states and transition rates and validates them into
// an immutable Chain.
type Builder struct {
	names []string
	index map[string]int
	rates map[[2]int]float64
}

// NewBuilder returns an empty chain builder.
func NewBuilder() *Builder {
	return &Builder{index: make(map[string]int), rates: make(map[[2]int]float64)}
}

// State declares a state (idempotent) and returns its index.
func (b *Builder) State(name string) int {
	if i, ok := b.index[name]; ok {
		return i
	}
	i := len(b.names)
	b.names = append(b.names, name)
	b.index[name] = i
	return i
}

// Rate sets the transition rate (per hour) from one state to another,
// declaring states as needed. Setting a rate twice overwrites; adding a
// self-loop or a negative rate is rejected at Build time.
func (b *Builder) Rate(from, to string, rate float64) *Builder {
	i, j := b.State(from), b.State(to)
	b.rates[[2]int{i, j}] = rate
	return b
}

// AddRate accumulates onto an existing rate, which is convenient when
// several distinct physical events map onto the same state transition.
func (b *Builder) AddRate(from, to string, rate float64) *Builder {
	i, j := b.State(from), b.State(to)
	b.rates[[2]int{i, j}] += rate
	return b
}

// Build validates the accumulated transitions and returns the chain.
func (b *Builder) Build() (*Chain, error) {
	n := len(b.names)
	if n == 0 {
		return nil, errors.New("markov: chain with no states")
	}
	q := linalg.NewMatrix(n, n)
	for k, r := range b.rates {
		i, j := k[0], k[1]
		if i == j {
			return nil, fmt.Errorf("markov: self-loop on state %q", b.names[i])
		}
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return nil, fmt.Errorf("markov: invalid rate %v from %q to %q", r, b.names[i], b.names[j])
		}
		q.Set(i, j, r)
	}
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				sum += q.At(i, j)
			}
		}
		q.Set(i, i, -sum)
	}
	names := make([]string, n)
	copy(names, b.names)
	index := make(map[string]int, n)
	for k, v := range b.index {
		index[k] = v
	}
	return &Chain{names: names, index: index, q: q}, nil
}

// Chain is an immutable continuous-time Markov chain.
type Chain struct {
	names []string
	index map[string]int
	q     *linalg.Matrix
}

// NumStates reports the number of states.
func (c *Chain) NumStates() int { return len(c.names) }

// States returns the state names in index order.
func (c *Chain) States() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	return out
}

// StateIndex returns the index of a named state.
func (c *Chain) StateIndex(name string) (int, bool) {
	i, ok := c.index[name]
	return i, ok
}

// Generator returns a copy of the infinitesimal generator Q (rates/hour).
func (c *Chain) Generator() *linalg.Matrix { return c.q.Clone() }

// InitialAt returns a distribution with all mass on the named state.
func (c *Chain) InitialAt(name string) ([]float64, error) {
	i, ok := c.index[name]
	if !ok {
		return nil, fmt.Errorf("markov: unknown state %q", name)
	}
	p := make([]float64, len(c.names))
	p[i] = 1
	return p, nil
}

func (c *Chain) checkDist(p0 []float64) error {
	if len(p0) != len(c.names) {
		return fmt.Errorf("markov: distribution length %d != %d states", len(p0), len(c.names))
	}
	sum := 0.0
	for i, v := range p0 {
		if v < 0 || v > 1+1e-12 {
			return fmt.Errorf("markov: p0[%d] = %v out of [0,1]", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("markov: distribution sums to %v", sum)
	}
	return nil
}

// Transient returns the state distribution after t hours starting from
// p0, computed with the scaling-and-squaring matrix exponential. This is
// the reference solver: robust for arbitrarily stiff generators.
func (c *Chain) Transient(p0 []float64, t float64) ([]float64, error) {
	if err := c.checkDist(p0); err != nil {
		return nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: invalid horizon %v", t)
	}
	if t == 0 {
		out := make([]float64, len(p0))
		copy(out, p0)
		return out, nil
	}
	e, err := linalg.Expm(c.q.Scale(t))
	if err != nil {
		return nil, fmt.Errorf("markov: transient solve: %w", err)
	}
	p := e.VecMul(p0)
	clampDist(p)
	return p, nil
}

// TransientUniform returns the state distribution after t hours using
// uniformization (Jensen's method) with truncation error below eps.
// It refuses horizons where q*t exceeds maxUniformSteps, where the Poisson
// sum degenerates; use Transient for those.
func (c *Chain) TransientUniform(p0 []float64, t, eps float64) ([]float64, error) {
	const maxUniformSteps = 20_000_000
	if err := c.checkDist(p0); err != nil {
		return nil, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("markov: invalid horizon %v", t)
	}
	if eps <= 0 {
		eps = 1e-12
	}
	n := len(c.names)
	out := make([]float64, n)
	if t == 0 {
		copy(out, p0)
		return out, nil
	}
	// Uniformization rate: slightly above the largest exit rate.
	qmax := 0.0
	for i := 0; i < n; i++ {
		if v := -c.q.At(i, i); v > qmax {
			qmax = v
		}
	}
	if qmax == 0 { // no transitions at all
		copy(out, p0)
		return out, nil
	}
	rate := qmax * 1.02
	qt := rate * t
	if qt > maxUniformSteps {
		return nil, fmt.Errorf("markov: uniformization with q*t = %.3g too stiff; use Transient", qt)
	}
	// P = I + Q/rate (a stochastic matrix).
	p := linalg.Identity(n).Plus(c.q.Scale(1 / rate))
	// Accumulate sum_k Poisson(qt, k) * p0 * P^k with running Poisson
	// weights in log space to avoid overflow for large qt.
	vec := make([]float64, n)
	copy(vec, p0)
	logW := -qt // log Poisson(qt, 0)
	cum := 0.0
	for k := 0; ; k++ {
		w := math.Exp(logW)
		for i := 0; i < n; i++ {
			out[i] += w * vec[i]
		}
		cum += w
		if 1-cum < eps && float64(k) > qt {
			break
		}
		if k > maxUniformSteps {
			return nil, fmt.Errorf("markov: uniformization failed to converge at k=%d", k)
		}
		vec = p.VecMul(vec)
		logW += math.Log(qt) - math.Log(float64(k+1))
	}
	// Normalize the truncated sum back onto the simplex.
	if cum > 0 {
		for i := range out {
			out[i] /= cum
		}
	}
	clampDist(out)
	return out, nil
}

// maxSharedUniformQt bounds the uniformization rate·t product up to
// which the shared-vector series fallback is cheaper than pointwise
// matrix exponentials.
const maxSharedUniformQt = 50_000

// TransientSeries returns the state distribution at each of the given
// times (hours, finite, non-negative and non-decreasing), starting from
// p0. It is equivalent to calling Transient once per point but shares
// work across the series:
//
//   - On a uniform grid t_i = t_0 + i·Δt it computes E = e^{Q·Δt} once
//     and propagates p ← p·E per step — one Expm plus one vector-matrix
//     product per point instead of one Expm per point.
//   - On a non-uniform grid it uses uniformization with the power
//     vectors p0·Pᵏ computed once and shared across all points (only the
//     Poisson weights differ per point), when the chain's stiffness
//     allows; otherwise it falls back to pointwise Transient.
func (c *Chain) TransientSeries(p0 []float64, times []float64) ([][]float64, error) {
	if err := c.checkDist(p0); err != nil {
		return nil, err
	}
	for i, t := range times {
		if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
			return nil, fmt.Errorf("markov: invalid horizon %v at index %d", t, i)
		}
		if i > 0 && t < times[i-1] {
			return nil, fmt.Errorf("markov: times not non-decreasing at index %d (%v < %v)", i, t, times[i-1])
		}
	}
	if len(times) == 0 {
		return nil, nil
	}
	out := make([][]float64, len(times))
	if dt, ok := uniformStep(times); ok {
		p, err := c.Transient(p0, times[0])
		if err != nil {
			return nil, err
		}
		out[0] = p
		if len(times) == 1 {
			return out, nil
		}
		if dt == 0 {
			for i := 1; i < len(times); i++ {
				cp := make([]float64, len(p))
				copy(cp, p)
				out[i] = cp
			}
			return out, nil
		}
		e, err := linalg.Expm(c.q.Scale(dt))
		if err != nil {
			return nil, fmt.Errorf("markov: transient series step: %w", err)
		}
		// Re-anchor with a fresh direct solve every few steps: repeated
		// p·E multiplication accumulates the single-step error of E
		// linearly, and on stiff generators (many squarings inside Expm)
		// that drift would exceed 1e-10 after a few hundred steps.
		const anchorEvery = 32
		for i := 1; i < len(times); i++ {
			if i%anchorEvery == 0 {
				p, err = c.Transient(p0, times[i])
				if err != nil {
					return nil, err
				}
				out[i] = p
				continue
			}
			p = e.VecMul(p)
			clampDist(p)
			out[i] = p
		}
		return out, nil
	}
	if ps, ok, err := c.transientSeriesUniform(p0, times, 1e-12); err != nil {
		return nil, err
	} else if ok {
		return ps, nil
	}
	for i, t := range times {
		p, err := c.Transient(p0, t)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// uniformStep reports whether the grid is (numerically) uniform and, if
// so, its step. A single point counts as uniform.
func uniformStep(times []float64) (float64, bool) {
	if len(times) < 2 {
		return 0, true
	}
	dt := times[1] - times[0]
	tol := 1e-9 * math.Max(math.Abs(dt), math.Abs(times[len(times)-1])*1e-6)
	if tol == 0 {
		tol = 1e-18
	}
	for i := 2; i < len(times); i++ {
		if math.Abs((times[i]-times[i-1])-dt) > tol {
			return 0, false
		}
	}
	return dt, true
}

// transientSeriesUniform evaluates the whole series with one shared
// uniformization sweep: the vectors p0·Pᵏ are computed once and each
// point accumulates them under its own running Poisson weights. It
// reports ok=false when the chain is too stiff for the sweep to beat
// pointwise matrix exponentials.
func (c *Chain) transientSeriesUniform(p0, times []float64, eps float64) ([][]float64, bool, error) {
	n := len(c.names)
	qmax := 0.0
	for i := 0; i < n; i++ {
		if v := -c.q.At(i, i); v > qmax {
			qmax = v
		}
	}
	if qmax == 0 {
		out := make([][]float64, len(times))
		for i := range out {
			cp := make([]float64, n)
			copy(cp, p0)
			out[i] = cp
		}
		return out, true, nil
	}
	rate := qmax * 1.02
	qtMax := rate * times[len(times)-1]
	if qtMax > maxSharedUniformQt {
		return nil, false, nil
	}
	p := linalg.Identity(n).Plus(c.q.Scale(1 / rate))
	out := make([][]float64, len(times))
	logW := make([]float64, len(times))
	cum := make([]float64, len(times))
	qts := make([]float64, len(times))
	for i, t := range times {
		out[i] = make([]float64, n)
		qts[i] = rate * t
		logW[i] = -qts[i] // log Poisson(qt, 0)
	}
	vec := make([]float64, n)
	copy(vec, p0)
	for k := 0; ; k++ {
		done := true
		for i := range times {
			w := math.Exp(logW[i])
			if w > 0 {
				oi := out[i]
				for j, v := range vec {
					oi[j] += w * v
				}
				cum[i] += w
			}
			if !(1-cum[i] < eps && float64(k) > qts[i]) {
				done = false
			}
		}
		if done {
			break
		}
		if float64(k) > qtMax+40*math.Sqrt(qtMax)+100 {
			return nil, false, fmt.Errorf("markov: shared uniformization failed to converge at k=%d", k)
		}
		vec = p.VecMul(vec)
		for i := range times {
			logW[i] += math.Log(qts[i]) - math.Log(float64(k+1))
		}
	}
	for i := range out {
		if cum[i] > 0 {
			for j := range out[i] {
				out[i][j] /= cum[i]
			}
		}
		clampDist(out[i])
	}
	return out, true, nil
}

// Absorbing reports the names of states with no outgoing transitions.
func (c *Chain) Absorbing() []string {
	var out []string
	for i, name := range c.names {
		if c.q.At(i, i) == 0 {
			out = append(out, name)
		}
	}
	return out
}

// MTTA returns the mean time to absorption in hours, starting from p0,
// treating the given states as absorbing targets. Transitions out of the
// target states are ignored (they are made absorbing for the analysis).
// It returns +Inf if some starting mass can never reach a target.
func (c *Chain) MTTA(p0 []float64, targets ...string) (float64, error) {
	if err := c.checkDist(p0); err != nil {
		return 0, err
	}
	if len(targets) == 0 {
		targets = c.Absorbing()
		if len(targets) == 0 {
			return 0, errors.New("markov: MTTA with no absorbing states")
		}
	}
	absorb := make(map[int]bool, len(targets))
	for _, name := range targets {
		i, ok := c.index[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown target state %q", name)
		}
		absorb[i] = true
	}
	// Transient sub-generator Q_TT.
	var tr []int
	for i := range c.names {
		if !absorb[i] {
			tr = append(tr, i)
		}
	}
	if len(tr) == 0 {
		return 0, nil
	}
	m := len(tr)
	qtt := linalg.NewMatrix(m, m)
	for a, i := range tr {
		for b, j := range tr {
			qtt.Set(a, b, c.q.At(i, j))
		}
	}
	// Expected total time in each transient state: τ = p0_T (−Q_TT)⁻¹,
	// i.e. (−Q_TT)ᵀ τᵀ = p0_Tᵀ.
	rhs := make([]float64, m)
	for a, i := range tr {
		rhs[a] = p0[i]
	}
	neg := qtt.Transpose().Scale(-1)
	tau, err := linalg.Solve(neg, rhs)
	if err != nil {
		// A singular −Q_TT means part of the transient class cannot reach
		// any absorbing state: mean time to absorption is infinite.
		if errors.Is(err, linalg.ErrSingular) {
			return math.Inf(1), nil
		}
		return 0, fmt.Errorf("markov: MTTA solve: %w", err)
	}
	sum := 0.0
	for _, v := range tau {
		if v < 0 && v > -1e-9 {
			v = 0
		}
		if v < 0 {
			return math.Inf(1), nil
		}
		sum += v
	}
	return sum, nil
}

// SteadyState returns the stationary distribution π with πQ = 0, Σπ = 1.
// The chain must be irreducible for the result to be meaningful; chains
// with absorbing states yield the absorbing distribution.
func (c *Chain) SteadyState() ([]float64, error) {
	n := len(c.names)
	// Solve Qᵀπ = 0 with the normalization Σπ = 1 replacing one equation.
	a := c.q.Transpose()
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	rhs := make([]float64, n)
	rhs[n-1] = 1
	pi, err := linalg.Solve(a, rhs)
	if err != nil {
		return nil, fmt.Errorf("markov: steady state: %w", err)
	}
	clampDist(pi)
	return pi, nil
}

// ProbIn sums the probability mass of the named states in distribution p.
func (c *Chain) ProbIn(p []float64, states ...string) (float64, error) {
	sum := 0.0
	for _, name := range states {
		i, ok := c.index[name]
		if !ok {
			return 0, fmt.Errorf("markov: unknown state %q", name)
		}
		sum += p[i]
	}
	return sum, nil
}

// Sample simulates one trajectory from state start until maxT hours have
// elapsed or an absorbing state is reached, and returns the final state
// name and the time at which the trajectory settled (maxT if censored).
// It provides a Monte-Carlo cross-check of the analytic solvers.
func (c *Chain) Sample(rng *des.Rand, start string, maxT float64) (string, float64, error) {
	i, ok := c.index[start]
	if !ok {
		return "", 0, fmt.Errorf("markov: unknown state %q", start)
	}
	t := 0.0
	n := len(c.names)
	for {
		exit := -c.q.At(i, i)
		if exit == 0 {
			return c.names[i], t, nil // absorbed
		}
		dwell := rng.Exp(exit)
		if t+dwell >= maxT {
			return c.names[i], maxT, nil
		}
		t += dwell
		// Choose the successor proportionally to its rate.
		u := rng.Float64() * exit
		acc := 0.0
		next := -1
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			acc += c.q.At(i, j)
			if u < acc {
				next = j
				break
			}
		}
		if next < 0 { // numerical edge: pick the last positive-rate successor
			for j := n - 1; j >= 0; j-- {
				if j != i && c.q.At(i, j) > 0 {
					next = j
					break
				}
			}
		}
		i = next
	}
}

// clampDist snaps tiny numerical excursions outside [0,1] back into range.
func clampDist(p []float64) {
	for i, v := range p {
		if v < 0 {
			p[i] = 0
		} else if v > 1 {
			p[i] = 1
		}
	}
}

// SortedStates returns state names sorted lexicographically; useful for
// stable iteration in reports.
func (c *Chain) SortedStates() []string {
	out := c.States()
	sort.Strings(out)
	return out
}

// ExpectedTimeIn returns the expected total time (hours) spent in the
// named states over [0, t], starting from p0: ∫₀ᵗ Σᵢ pᵢ(s) ds. It uses
// composite Gauss-Legendre quadrature over panels sized to the chain's
// fastest transient, which is exact enough for reward measures such as
// expected downtime.
func (c *Chain) ExpectedTimeIn(p0 []float64, t float64, states ...string) (float64, error) {
	if err := c.checkDist(p0); err != nil {
		return 0, err
	}
	if t < 0 || math.IsNaN(t) || math.IsInf(t, 0) {
		return 0, fmt.Errorf("markov: invalid horizon %v", t)
	}
	if t == 0 || len(states) == 0 {
		return 0, nil
	}
	for _, s := range states {
		if _, ok := c.index[s]; !ok {
			return 0, fmt.Errorf("markov: unknown state %q", s)
		}
	}
	// Panel width: resolve the fastest rate, but keep the panel count
	// bounded; the integrand is smooth (sums of exponentials), so
	// 5-point Gauss per panel converges very fast.
	qmax := 0.0
	for i := 0; i < len(c.names); i++ {
		if v := -c.q.At(i, i); v > qmax {
			qmax = v
		}
	}
	panels := 8
	if qmax > 0 {
		need := int(math.Ceil(t * qmax / 4))
		if need > panels {
			panels = need
		}
		if panels > 4096 {
			panels = 4096
		}
	}
	// 5-point Gauss-Legendre nodes/weights on [-1, 1].
	nodes := []float64{-0.9061798459386640, -0.5384693101056831, 0,
		0.5384693101056831, 0.9061798459386640}
	weights := []float64{0.2369268850561891, 0.4786286704993665,
		0.5688888888888889, 0.4786286704993665, 0.2369268850561891}
	h := t / float64(panels)
	total := 0.0
	for k := 0; k < panels; k++ {
		a := float64(k) * h
		for i, x := range nodes {
			s := a + h/2*(x+1)
			p, err := c.Transient(p0, s)
			if err != nil {
				return 0, err
			}
			mass, err := c.ProbIn(p, states...)
			if err != nil {
				return 0, err
			}
			total += weights[i] * h / 2 * mass
		}
	}
	return total, nil
}
