package markov

import (
	"math"
	"testing"
)

// stiffTestChain builds a paper-style stiff chain: repair ~10³/h against
// fault rates ~10⁻⁴/h.
func stiffTestChain(t testing.TB) *Chain {
	b := NewBuilder()
	b.Rate("0", "1", 2*1.8e-4)
	b.Rate("1", "0", 1.2e3)
	b.Rate("0", "F", 3.6e-7)
	b.Rate("1", "F", 2.0e-4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// mildTestChain builds a chain whose rates permit uniformization over the
// whole grid.
func mildTestChain(t testing.TB) *Chain {
	b := NewBuilder()
	b.Rate("up", "down", 0.4)
	b.Rate("down", "up", 1.5)
	b.Rate("up", "dead", 0.05)
	b.Rate("down", "dead", 0.2)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestTransientSeriesMatchesPointwiseUniform: on a uniform grid of
// hundreds of points (the Figure 12 shape), the shared-expm propagation
// must agree with pointwise Transient to 1e-10. The chain is moderately
// stiff (q·t ≈ 9·10⁴ over the year) — stiff enough to exercise scaling
// and squaring, mild enough that the pointwise reference itself is
// trustworthy at this tolerance (see the extreme-stiffness test below).
func TestTransientSeriesMatchesPointwiseUniform(t *testing.T) {
	b := NewBuilder()
	b.Rate("0", "1", 2*1.8e-4)
	b.Rate("1", "0", 10) // repair within minutes: q·t ≈ 9·10⁴ at one year
	b.Rate("0", "F", 3.6e-7)
	b.Rate("1", "F", 2.0e-4)
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p0, err := c.InitialAt("0")
	if err != nil {
		t.Fatal(err)
	}
	const points = 501
	times := make([]float64, points)
	for i := range times {
		times[i] = 8760 * float64(i) / float64(points-1)
	}
	series, err := c.TransientSeries(p0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		ref, err := c.Transient(p0, tm)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if d := math.Abs(series[i][j] - ref[j]); d > 1e-10 {
				t.Fatalf("t=%v state %d: series %v vs pointwise %v (|Δ|=%.3g)",
					tm, j, series[i][j], ref[j], d)
			}
		}
	}
}

// TestTransientSeriesExtremeStiffness: with the paper's repair rate
// (μ_R ≈ 1.2·10³/h) the one-year grid has q·t ≈ 10⁷, where pointwise
// Transient is itself only self-consistent to ~2·10⁻¹⁰ (consecutive
// points disagree with their own one-step expm relation by that much, a
// floor set by squaring error inside Expm). The series must stay within
// a small multiple of that reference noise.
func TestTransientSeriesExtremeStiffness(t *testing.T) {
	c := stiffTestChain(t)
	p0, err := c.InitialAt("0")
	if err != nil {
		t.Fatal(err)
	}
	const points = 501
	times := make([]float64, points)
	for i := range times {
		times[i] = 8760 * float64(i) / float64(points-1)
	}
	series, err := c.TransientSeries(p0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		ref, err := c.Transient(p0, tm)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if d := math.Abs(series[i][j] - ref[j]); d > 2e-9 {
				t.Fatalf("t=%v state %d: series %v vs pointwise %v (|Δ|=%.3g)",
					tm, j, series[i][j], ref[j], d)
			}
		}
	}
}

// TestTransientSeriesMatchesPointwiseNonUniform exercises the shared
// uniformization fallback on a log-spaced grid.
func TestTransientSeriesMatchesPointwiseNonUniform(t *testing.T) {
	c := mildTestChain(t)
	p0, err := c.InitialAt("up")
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 0.1, 0.3, 1, 3, 10, 30, 100}
	series, err := c.TransientSeries(p0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		ref, err := c.Transient(p0, tm)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if d := math.Abs(series[i][j] - ref[j]); d > 1e-10 {
				t.Fatalf("t=%v state %d: series %v vs pointwise %v (|Δ|=%.3g)",
					tm, j, series[i][j], ref[j], d)
			}
		}
	}
}

// TestTransientSeriesStiffNonUniform: a non-uniform grid on a stiff chain
// exceeds the uniformization budget and must fall back to pointwise
// solves — still correct, just not shared.
func TestTransientSeriesStiffNonUniform(t *testing.T) {
	c := stiffTestChain(t)
	p0, err := c.InitialAt("0")
	if err != nil {
		t.Fatal(err)
	}
	times := []float64{0, 1, 10, 100, 1000, 8760}
	series, err := c.TransientSeries(p0, times)
	if err != nil {
		t.Fatal(err)
	}
	for i, tm := range times {
		ref, err := c.Transient(p0, tm)
		if err != nil {
			t.Fatal(err)
		}
		for j := range ref {
			if d := math.Abs(series[i][j] - ref[j]); d > 1e-10 {
				t.Fatalf("t=%v state %d: |Δ|=%.3g", tm, j, d)
			}
		}
	}
}

// TestTransientSeriesEdgeCases: empty and single-point grids, repeated
// instants, and validation of malformed input.
func TestTransientSeriesEdgeCases(t *testing.T) {
	c := mildTestChain(t)
	p0, err := c.InitialAt("up")
	if err != nil {
		t.Fatal(err)
	}
	if out, err := c.TransientSeries(p0, nil); err != nil || out != nil {
		t.Errorf("empty grid: %v, %v", out, err)
	}
	one, err := c.TransientSeries(p0, []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.Transient(p0, 5)
	if err != nil {
		t.Fatal(err)
	}
	for j := range ref {
		if math.Abs(one[0][j]-ref[j]) > 1e-12 {
			t.Errorf("single point mismatch at state %d", j)
		}
	}
	same, err := c.TransientSeries(p0, []float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(same); i++ {
		for j := range same[i] {
			if same[i][j] != same[0][j] {
				t.Errorf("repeated instants differ at %d", i)
			}
		}
	}
	if _, err := c.TransientSeries(p0, []float64{1, 0.5}); err == nil {
		t.Error("decreasing grid accepted")
	}
	if _, err := c.TransientSeries(p0, []float64{-1}); err == nil {
		t.Error("negative time accepted")
	}
	if _, err := c.TransientSeries(p0, []float64{math.NaN()}); err == nil {
		t.Error("NaN time accepted")
	}
	if _, err := c.TransientSeries([]float64{2, -1, 0}, []float64{1}); err == nil {
		t.Error("invalid distribution accepted")
	}
}

// TestTransientSeriesDistributionProperty: every point of the series is a
// probability distribution.
func TestTransientSeriesDistributionProperty(t *testing.T) {
	for _, chain := range []*Chain{stiffTestChain(t), mildTestChain(t)} {
		p0 := make([]float64, chain.NumStates())
		p0[0] = 1
		times := make([]float64, 64)
		for i := range times {
			times[i] = 100 * float64(i) / 63
		}
		series, err := chain.TransientSeries(p0, times)
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range series {
			sum := 0.0
			for _, v := range p {
				if v < 0 || v > 1 {
					t.Fatalf("point %d: probability %v out of range", i, v)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("point %d: mass %v", i, sum)
			}
		}
	}
}
