package markov

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func buildOrFatal(t *testing.T, b *Builder) *Chain {
	t.Helper()
	c, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// twoStateRepairable is the classic availability model: up --λ--> down,
// down --μ--> up, with the analytic availability
// A(t) = μ/(λ+μ) + λ/(λ+μ)·e^{-(λ+μ)t}.
func twoStateRepairable(t *testing.T, lambda, mu float64) *Chain {
	t.Helper()
	b := NewBuilder()
	b.Rate("up", "down", lambda).Rate("down", "up", mu)
	return buildOrFatal(t, b)
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder().Build(); err == nil {
		t.Error("empty chain did not error")
	}
	if _, err := NewBuilder().Rate("a", "a", 1).Build(); err == nil {
		t.Error("self-loop did not error")
	}
	if _, err := NewBuilder().Rate("a", "b", -1).Build(); err == nil {
		t.Error("negative rate did not error")
	}
	if _, err := NewBuilder().Rate("a", "b", math.NaN()).Build(); err == nil {
		t.Error("NaN rate did not error")
	}
}

func TestBuilderAddRateAccumulates(t *testing.T) {
	c := buildOrFatal(t, NewBuilder().AddRate("a", "b", 1).AddRate("a", "b", 2))
	q := c.Generator()
	if q.At(0, 1) != 3 {
		t.Errorf("accumulated rate = %v, want 3", q.At(0, 1))
	}
	if q.At(0, 0) != -3 {
		t.Errorf("diagonal = %v, want -3", q.At(0, 0))
	}
}

func TestGeneratorRowSumsZero(t *testing.T) {
	c := twoStateRepairable(t, 0.3, 2.0)
	q := c.Generator()
	for i := 0; i < q.Rows; i++ {
		sum := 0.0
		for j := 0; j < q.Cols; j++ {
			sum += q.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestStateLookup(t *testing.T) {
	c := twoStateRepairable(t, 1, 1)
	if c.NumStates() != 2 {
		t.Fatalf("NumStates = %d", c.NumStates())
	}
	if i, ok := c.StateIndex("down"); !ok || i != 1 {
		t.Errorf("StateIndex(down) = %d, %v", i, ok)
	}
	if _, ok := c.StateIndex("nope"); ok {
		t.Error("StateIndex found a missing state")
	}
	if _, err := c.InitialAt("nope"); err == nil {
		t.Error("InitialAt unknown state did not error")
	}
}

func TestTransientAnalyticAvailability(t *testing.T) {
	lambda, mu := 0.4, 3.0
	c := twoStateRepairable(t, lambda, mu)
	p0, err := c.InitialAt("up")
	if err != nil {
		t.Fatal(err)
	}
	for _, horizon := range []float64{0, 0.1, 0.5, 1, 5, 100} {
		p, err := c.Transient(p0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		want := mu/(lambda+mu) + lambda/(lambda+mu)*math.Exp(-(lambda+mu)*horizon)
		if math.Abs(p[0]-want) > 1e-10 {
			t.Errorf("A(%v) = %v, want %v", horizon, p[0], want)
		}
	}
}

func TestTransientValidation(t *testing.T) {
	c := twoStateRepairable(t, 1, 1)
	if _, err := c.Transient([]float64{1}, 1); err == nil {
		t.Error("short distribution did not error")
	}
	if _, err := c.Transient([]float64{0.5, 0.4}, 1); err == nil {
		t.Error("non-normalized distribution did not error")
	}
	if _, err := c.Transient([]float64{1, 0}, -1); err == nil {
		t.Error("negative horizon did not error")
	}
	if _, err := c.Transient([]float64{1, 0}, math.Inf(1)); err == nil {
		t.Error("infinite horizon did not error")
	}
}

func TestTransientMatchesUniformization(t *testing.T) {
	// A three-state chain with moderate stiffness.
	b := NewBuilder()
	b.Rate("0", "1", 0.8).Rate("1", "0", 5.0).Rate("1", "2", 0.3).Rate("0", "2", 0.05)
	c := buildOrFatal(t, b)
	p0, _ := c.InitialAt("0")
	for _, horizon := range []float64{0.5, 2, 10, 50} {
		pe, err := c.Transient(p0, horizon)
		if err != nil {
			t.Fatal(err)
		}
		pu, err := c.TransientUniform(p0, horizon, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		for i := range pe {
			if math.Abs(pe[i]-pu[i]) > 1e-8 {
				t.Errorf("t=%v state %d: expm %v vs uniform %v", horizon, i, pe[i], pu[i])
			}
		}
	}
}

func TestTransientUniformRejectsExtremeStiffness(t *testing.T) {
	b := NewBuilder()
	b.Rate("0", "1", 1e-5).Rate("1", "0", 1e4)
	c := buildOrFatal(t, b)
	p0, _ := c.InitialAt("0")
	if _, err := c.TransientUniform(p0, 1e5, 1e-10); err == nil {
		t.Error("extreme q*t did not error")
	}
}

func TestTransientUniformNoTransitions(t *testing.T) {
	b := NewBuilder()
	b.State("only")
	c := buildOrFatal(t, b)
	p, err := c.TransientUniform([]float64{1}, 10, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 1 {
		t.Errorf("p = %v", p)
	}
}

func TestTransientZeroHorizon(t *testing.T) {
	c := twoStateRepairable(t, 1, 2)
	p0 := []float64{0.25, 0.75}
	p, err := c.Transient(p0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 0.25 || p[1] != 0.75 {
		t.Errorf("p = %v", p)
	}
}

func TestSteadyStateBirthDeath(t *testing.T) {
	lambda, mu := 0.4, 3.0
	c := twoStateRepairable(t, lambda, mu)
	pi, err := c.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-mu/(lambda+mu)) > 1e-12 {
		t.Errorf("π(up) = %v, want %v", pi[0], mu/(lambda+mu))
	}
}

func TestMTTAPureDeathChain(t *testing.T) {
	// 0 --r0--> 1 --r1--> dead: MTTA = 1/r0 + 1/r1.
	r0, r1 := 0.5, 0.125
	b := NewBuilder()
	b.Rate("0", "1", r0).Rate("1", "dead", r1)
	c := buildOrFatal(t, b)
	p0, _ := c.InitialAt("0")
	got, err := c.MTTA(p0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1/r0 + 1/r1
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("MTTA = %v, want %v", got, want)
	}
}

func TestMTTAWithRepair(t *testing.T) {
	// up --λ--> down --μ--> up, down --δ--> dead.
	// MTTF from up: (1/λ)·(1 + λ·μ/(... )) — derive via first-step analysis:
	// m_up = 1/λ + m_down; m_down = 1/(μ+δ) + μ/(μ+δ)·m_up.
	lambda, mu, delta := 0.2, 5.0, 0.5
	b := NewBuilder()
	b.Rate("up", "down", lambda).Rate("down", "up", mu).Rate("down", "dead", delta)
	c := buildOrFatal(t, b)
	p0, _ := c.InitialAt("up")
	got, err := c.MTTA(p0)
	if err != nil {
		t.Fatal(err)
	}
	// Solve the two first-step equations analytically:
	// m_up = 1/λ + m_down, m_down = 1/(μ+δ) + (μ/(μ+δ))·m_up
	// ⇒ m_up = (1/λ + 1/(μ+δ)) / (1 − μ/(μ+δ)).
	mDownCoeff := mu / (mu + delta)
	mUp := (1/lambda + 1/(mu+delta)) / (1 - mDownCoeff)
	if math.Abs(got-mUp)/mUp > 1e-10 {
		t.Errorf("MTTA = %v, want %v", got, mUp)
	}
}

func TestMTTAExplicitTargets(t *testing.T) {
	// Same chain, but treat "down" itself as the failure target.
	lambda, mu := 0.2, 5.0
	c := twoStateRepairable(t, lambda, mu)
	p0, _ := c.InitialAt("up")
	got, err := c.MTTA(p0, "down")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1/lambda) > 1e-12 {
		t.Errorf("MTTA to down = %v, want %v", got, 1/lambda)
	}
}

func TestMTTAUnreachableIsInf(t *testing.T) {
	// Two disconnected components; mass starting in the recurrent one
	// never reaches the absorbing state.
	b := NewBuilder()
	b.Rate("a", "b", 1).Rate("b", "a", 1)
	b.Rate("c", "dead", 1)
	c := buildOrFatal(t, b)
	p0, _ := c.InitialAt("a")
	got, err := c.MTTA(p0, "dead")
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(got, 1) {
		t.Errorf("MTTA = %v, want +Inf", got)
	}
}

func TestMTTANoAbsorbing(t *testing.T) {
	c := twoStateRepairable(t, 1, 1)
	p0, _ := c.InitialAt("up")
	if _, err := c.MTTA(p0); err == nil {
		t.Error("MTTA with no absorbing states did not error")
	}
	if _, err := c.MTTA(p0, "nope"); err == nil {
		t.Error("MTTA with unknown target did not error")
	}
}

func TestAbsorbingDetection(t *testing.T) {
	b := NewBuilder()
	b.Rate("0", "F", 1)
	b.State("iso")
	c := buildOrFatal(t, b)
	abs := c.Absorbing()
	if len(abs) != 2 {
		t.Fatalf("Absorbing = %v", abs)
	}
}

func TestProbIn(t *testing.T) {
	c := twoStateRepairable(t, 1, 1)
	p := []float64{0.3, 0.7}
	got, err := c.ProbIn(p, "up", "down")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-15 {
		t.Errorf("ProbIn all = %v", got)
	}
	if _, err := c.ProbIn(p, "nope"); err == nil {
		t.Error("ProbIn unknown state did not error")
	}
}

func TestTransientDistributionProperty(t *testing.T) {
	// Property: for random small generators and horizons, the transient
	// distribution stays on the simplex.
	check := func(r1, r2, r3, r4 uint16, hRaw uint16) bool {
		b := NewBuilder()
		b.Rate("0", "1", float64(r1)/1000)
		b.Rate("1", "2", float64(r2)/1000)
		b.Rate("2", "0", float64(r3)/1000)
		b.Rate("1", "0", float64(r4)/1000)
		c, err := b.Build()
		if err != nil {
			return false
		}
		p0, _ := c.InitialAt("0")
		p, err := c.Transient(p0, float64(hRaw)/100)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSampleMatchesAnalytic(t *testing.T) {
	// Monte-Carlo cross-validation of the transient solver.
	lambda, mu := 2.0, 8.0
	c := twoStateRepairable(t, lambda, mu)
	p0, _ := c.InitialAt("up")
	horizon := 0.7
	want, err := c.Transient(p0, horizon)
	if err != nil {
		t.Fatal(err)
	}
	rng := des.NewRand(42)
	const trials = 40000
	upCount := 0
	for i := 0; i < trials; i++ {
		state, _, err := c.Sample(rng, "up", horizon)
		if err != nil {
			t.Fatal(err)
		}
		if state == "up" {
			upCount++
		}
	}
	got := float64(upCount) / trials
	if math.Abs(got-want[0]) > 0.01 {
		t.Errorf("MC P(up) = %v, analytic %v", got, want[0])
	}
}

func TestSampleAbsorbs(t *testing.T) {
	b := NewBuilder()
	b.Rate("0", "dead", 10)
	c := buildOrFatal(t, b)
	rng := des.NewRand(7)
	state, at, err := c.Sample(rng, "0", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if state != "dead" || at >= 1000 {
		t.Errorf("Sample = %q at %v", state, at)
	}
	if _, _, err := c.Sample(rng, "nope", 1); err == nil {
		t.Error("Sample unknown start did not error")
	}
}

// TestPaperStyleStiffChain exercises the exact stiffness profile of the
// paper's models: fault rates ~1e-4/h, repair ~1e3/h, one-year horizon.
func TestPaperStyleStiffChain(t *testing.T) {
	lp, lt, mu := 1.82e-5, 1.82e-4, 1.2e3
	b := NewBuilder()
	b.Rate("0", "1", 2*lp*0.99)
	b.Rate("0", "2", 2*lt*0.99)
	b.Rate("0", "F", 2*(lp+lt)*0.01)
	b.Rate("2", "0", mu)
	b.Rate("1", "F", lp+lt)
	b.Rate("2", "F", lp+lt)
	c := buildOrFatal(t, b)
	p0, _ := c.InitialAt("0")
	p, err := c.Transient(p0, 8760)
	if err != nil {
		t.Fatal(err)
	}
	fIdx, _ := c.StateIndex("F")
	r := 1 - p[fIdx]
	// Hand analysis (DESIGN.md §4) puts the CU FS one-year reliability
	// near 0.82; the solver must agree to a few parts in a thousand.
	if r < 0.81 || r > 0.84 {
		t.Errorf("CU FS one-year reliability = %v, want ≈0.82", r)
	}
	// State 2 has a ~3 s dwell time: its mass must be tiny but nonnegative.
	i2, _ := c.StateIndex("2")
	if p[i2] < 0 || p[i2] > 1e-5 {
		t.Errorf("repair-state mass = %v", p[i2])
	}
}

func BenchmarkTransientStiff(b *testing.B) {
	lp, lt, mu := 1.82e-5, 1.82e-4, 1.2e3
	bd := NewBuilder()
	bd.Rate("0", "1", 2*lp).Rate("0", "2", 2*lt).Rate("2", "0", mu)
	bd.Rate("1", "F", lp+lt).Rate("2", "F", lp+lt)
	c, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	p0, _ := c.InitialAt("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Transient(p0, 8760); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMTTA(b *testing.B) {
	bd := NewBuilder()
	bd.Rate("0", "1", 0.1).Rate("1", "0", 10).Rate("1", "F", 0.01).Rate("0", "F", 0.001)
	c, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	p0, _ := c.InitialAt("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.MTTA(p0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExpectedTimeInAnalytic(t *testing.T) {
	// Two-state repairable system from "up": expected downtime over
	// [0,t] is (λ/(λ+μ))·[t − (1−e^{−(λ+μ)t})/(λ+μ)].
	lambda, mu := 0.5, 4.0
	c := twoStateRepairable(t, lambda, mu)
	p0, _ := c.InitialAt("up")
	for _, horizon := range []float64{0.5, 2, 10} {
		got, err := c.ExpectedTimeIn(p0, horizon, "down")
		if err != nil {
			t.Fatal(err)
		}
		s := lambda + mu
		want := lambda / s * (horizon - (1-math.Exp(-s*horizon))/s)
		if math.Abs(got-want) > 1e-7 {
			t.Errorf("downtime over %v = %v, want %v", horizon, got, want)
		}
	}
}

func TestExpectedTimeInEdgeCases(t *testing.T) {
	c := twoStateRepairable(t, 1, 1)
	p0, _ := c.InitialAt("up")
	if v, err := c.ExpectedTimeIn(p0, 0, "down"); err != nil || v != 0 {
		t.Errorf("t=0: %v, %v", v, err)
	}
	if v, err := c.ExpectedTimeIn(p0, 5); err != nil || v != 0 {
		t.Errorf("no states: %v, %v", v, err)
	}
	if _, err := c.ExpectedTimeIn(p0, 5, "nope"); err == nil {
		t.Error("unknown state accepted")
	}
	if _, err := c.ExpectedTimeIn(p0, -1, "down"); err == nil {
		t.Error("negative horizon accepted")
	}
	// Complementarity: time in up + time in down = horizon.
	up, err := c.ExpectedTimeIn(p0, 7, "up")
	if err != nil {
		t.Fatal(err)
	}
	down, err := c.ExpectedTimeIn(p0, 7, "down")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(up+down-7) > 1e-8 {
		t.Errorf("up %v + down %v != 7", up, down)
	}
}
