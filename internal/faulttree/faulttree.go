// Package faulttree implements static fault trees: basic events with
// time-dependent failure probabilities combined through AND, OR and
// K-of-N gates, with exact top-event evaluation (assuming independent
// basic events), minimal cut-set extraction and Birnbaum importance.
//
// The paper's Figure 5 is a fault tree whose top event is "BBW system
// fails", an OR of the central-unit subsystem and the wheel-node
// subsystem; the subsystem failure probabilities come from Markov models.
// This package supplies the composition layer: basic events can be bound
// to arbitrary unreliability functions, including CTMC solutions.
package faulttree

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Unreliability is a failure probability as a function of time:
// Q(t) = 1 − R(t). Time is in hours.
type Unreliability func(hours float64) float64

// Node is a node in the fault tree: a basic event or a gate.
type Node interface {
	// Q evaluates the node's failure probability at time t, assuming
	// independence of all basic events beneath it.
	Q(hours float64) float64
	// cutSets returns the node's minimal cut sets over basic-event names.
	cutSets() [][]string
	// describe renders a structural description.
	describe() string
}

// Event is a basic event (a leaf).
type Event struct {
	Name string
	Fn   Unreliability
}

var _ Node = (*Event)(nil)

// NewEvent returns a basic event with the given unreliability function.
func NewEvent(name string, fn Unreliability) *Event {
	if fn == nil {
		panic("faulttree: event with nil unreliability")
	}
	return &Event{Name: name, Fn: fn}
}

// ConstEvent returns a basic event with a time-independent probability.
func ConstEvent(name string, q float64) *Event {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("faulttree: probability %v out of [0,1]", q))
	}
	return NewEvent(name, func(float64) float64 { return q })
}

// ExponentialEvent returns a basic event failing at a constant rate per
// hour: Q(t) = 1 − e^{−rate·t}.
func ExponentialEvent(name string, ratePerHour float64) *Event {
	if ratePerHour < 0 {
		panic(fmt.Sprintf("faulttree: negative rate %v", ratePerHour))
	}
	return NewEvent(name, func(h float64) float64 {
		return 1 - math.Exp(-ratePerHour*h)
	})
}

// Q evaluates the event's probability, clamped to [0,1].
func (e *Event) Q(hours float64) float64 { return clamp(e.Fn(hours)) }

func (e *Event) cutSets() [][]string { return [][]string{{e.Name}} }

func (e *Event) describe() string { return e.Name }

// gateKind distinguishes the gate types.
type gateKind int

const (
	andGate gateKind = iota + 1
	orGate
	kOfNGate
)

// Gate combines child nodes.
type Gate struct {
	kind     gateKind
	k        int // for kOfNGate
	children []Node
}

var _ Node = (*Gate)(nil)

// AND returns a gate that fails only when every child fails.
func AND(children ...Node) *Gate {
	mustChildren("AND", children)
	return &Gate{kind: andGate, children: children}
}

// OR returns a gate that fails when any child fails.
func OR(children ...Node) *Gate {
	mustChildren("OR", children)
	return &Gate{kind: orGate, children: children}
}

// KOfN returns a gate that fails when at least k children fail.
func KOfN(k int, children ...Node) *Gate {
	mustChildren("KOfN", children)
	if k < 1 || k > len(children) {
		panic(fmt.Sprintf("faulttree: k=%d out of range for %d children", k, len(children)))
	}
	return &Gate{kind: kOfNGate, k: k, children: children}
}

func mustChildren(kind string, children []Node) {
	if len(children) == 0 {
		panic("faulttree: " + kind + " gate with no children")
	}
	for _, c := range children {
		if c == nil {
			panic("faulttree: " + kind + " gate with nil child")
		}
	}
}

// Q evaluates the gate assuming independent children. Shared basic events
// under different branches make this an approximation; Tree.Eval detects
// sharing and switches to exact evaluation by event decomposition.
func (g *Gate) Q(hours float64) float64 {
	switch g.kind {
	case andGate:
		q := 1.0
		for _, c := range g.children {
			q *= c.Q(hours)
		}
		return q
	case orGate:
		s := 1.0
		for _, c := range g.children {
			s *= 1 - c.Q(hours)
		}
		return clamp(1 - s)
	default: // kOfNGate: dynamic programming over count of failed children
		n := len(g.children)
		dp := make([]float64, n+1)
		dp[0] = 1
		for _, c := range g.children {
			q := c.Q(hours)
			for i := n; i >= 1; i-- {
				dp[i] = dp[i]*(1-q) + dp[i-1]*q
			}
			dp[0] *= 1 - q
		}
		sum := 0.0
		for i := g.k; i <= n; i++ {
			sum += dp[i]
		}
		return clamp(sum)
	}
}

func (g *Gate) cutSets() [][]string {
	switch g.kind {
	case orGate:
		var out [][]string
		for _, c := range g.children {
			out = append(out, c.cutSets()...)
		}
		return out
	case andGate:
		return crossProduct(g.children)
	default:
		// K-of-N expands to an OR over all k-subsets ANDed together.
		var out [][]string
		subsets(len(g.children), g.k, func(idx []int) {
			group := make([]Node, len(idx))
			for i, j := range idx {
				group[i] = g.children[j]
			}
			out = append(out, crossProduct(group)...)
		})
		return out
	}
}

func crossProduct(children []Node) [][]string {
	acc := [][]string{{}}
	for _, c := range children {
		var next [][]string
		for _, partial := range acc {
			for _, cs := range c.cutSets() {
				merged := make([]string, 0, len(partial)+len(cs))
				merged = append(merged, partial...)
				merged = append(merged, cs...)
				next = append(next, merged)
			}
		}
		acc = next
	}
	return acc
}

// subsets invokes fn with every k-subset of [0,n).
func subsets(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for i := start; i < n; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func (g *Gate) describe() string {
	var b strings.Builder
	switch g.kind {
	case andGate:
		b.WriteString("AND(")
	case orGate:
		b.WriteString("OR(")
	default:
		fmt.Fprintf(&b, "%d-of-%d(", g.k, len(g.children))
	}
	for i, c := range g.children {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.describe())
	}
	b.WriteString(")")
	return b.String()
}

// Tree is a fault tree with a designated top node.
type Tree struct {
	top    Node
	events map[string]*Event
	shared bool
}

// New validates the structure under top and returns the tree. It rejects
// two distinct basic events carrying the same name, since evaluation and
// cut sets are keyed by name.
func New(top Node) (*Tree, error) {
	if top == nil {
		return nil, fmt.Errorf("faulttree: nil top node")
	}
	t := &Tree{top: top, events: make(map[string]*Event)}
	occurrences := make(map[string]int)
	var walk func(n Node) error
	walk = func(n Node) error {
		switch v := n.(type) {
		case *Event:
			if prev, ok := t.events[v.Name]; ok && prev != v {
				return fmt.Errorf("faulttree: two distinct events named %q", v.Name)
			}
			t.events[v.Name] = v
			occurrences[v.Name]++
		case *Gate:
			for _, c := range v.children {
				if err := walk(c); err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("faulttree: unknown node type %T", n)
		}
		return nil
	}
	if err := walk(top); err != nil {
		return nil, err
	}
	for _, n := range occurrences {
		if n > 1 {
			t.shared = true
			break
		}
	}
	return t, nil
}

// Events returns the names of the basic events in sorted order.
func (t *Tree) Events() []string {
	out := make([]string, 0, len(t.events))
	for name := range t.events {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Describe renders the tree structure.
func (t *Tree) Describe() string { return t.top.describe() }

// Eval returns the top-event probability at time t. When no basic event
// appears under more than one branch, the gates are evaluated directly
// (independent sub-trees). With shared events, the tree is evaluated
// exactly by Shannon decomposition over the shared events.
func (t *Tree) Eval(hours float64) float64 {
	if !t.shared {
		return t.top.Q(hours)
	}
	// Shannon decomposition: condition on each event appearing in the
	// tree. With the small trees used here (≤ ~20 events) this is exact
	// and fast enough.
	names := t.Events()
	probs := make(map[string]float64, len(names))
	for _, n := range names {
		probs[n] = t.events[n].Q(hours)
	}
	var rec func(i int, assign map[string]bool, weight float64) float64
	rec = func(i int, assign map[string]bool, weight float64) float64 {
		if weight == 0 {
			return 0
		}
		if i == len(names) {
			if evalAssigned(t.top, assign) {
				return weight
			}
			return 0
		}
		name := names[i]
		assign[name] = true
		failed := rec(i+1, assign, weight*probs[name])
		assign[name] = false
		ok := rec(i+1, assign, weight*(1-probs[name]))
		delete(assign, name)
		return failed + ok
	}
	return clamp(rec(0, make(map[string]bool, len(names)), 1))
}

// evalAssigned evaluates the structure function for a full assignment of
// basic-event outcomes (true = failed).
func evalAssigned(n Node, assign map[string]bool) bool {
	switch v := n.(type) {
	case *Event:
		return assign[v.Name]
	case *Gate:
		count := 0
		for _, c := range v.children {
			if evalAssigned(c, assign) {
				count++
			}
		}
		switch v.kind {
		case andGate:
			return count == len(v.children)
		case orGate:
			return count > 0
		default:
			return count >= v.k
		}
	default:
		panic(fmt.Sprintf("faulttree: unknown node type %T", n))
	}
}

// Reliability returns 1 − Eval(t).
func (t *Tree) Reliability(hours float64) float64 { return clamp(1 - t.Eval(hours)) }

// MinimalCutSets returns the minimal cut sets of the tree: the irreducible
// combinations of basic-event failures that fail the top event. Sets are
// returned with sorted members, ordered by size then lexicographically.
func (t *Tree) MinimalCutSets() [][]string {
	raw := t.top.cutSets()
	// Deduplicate members within each set, then minimize across sets.
	sets := make([][]string, 0, len(raw))
	for _, cs := range raw {
		seen := make(map[string]bool, len(cs))
		var uniq []string
		for _, name := range cs {
			if !seen[name] {
				seen[name] = true
				uniq = append(uniq, name)
			}
		}
		sort.Strings(uniq)
		sets = append(sets, uniq)
	}
	sort.Slice(sets, func(i, j int) bool {
		if len(sets[i]) != len(sets[j]) {
			return len(sets[i]) < len(sets[j])
		}
		return strings.Join(sets[i], ",") < strings.Join(sets[j], ",")
	})
	var minimal [][]string
	for _, cs := range sets {
		redundant := false
		for _, m := range minimal {
			if isSubset(m, cs) {
				redundant = true
				break
			}
		}
		if !redundant {
			minimal = append(minimal, cs)
		}
	}
	return minimal
}

// isSubset reports whether sorted slice a ⊆ sorted slice b.
func isSubset(a, b []string) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// BirnbaumImportance returns ∂Q_top/∂Q_event for the named event at time
// t, estimated by conditioning: Q(top | event failed) − Q(top | event ok).
func (t *Tree) BirnbaumImportance(event string, hours float64) (float64, error) {
	e, ok := t.events[event]
	if !ok {
		return 0, fmt.Errorf("faulttree: unknown event %q", event)
	}
	origFn := e.Fn
	defer func() { e.Fn = origFn }()
	e.Fn = func(float64) float64 { return 1 }
	qFailed := t.Eval(hours)
	e.Fn = func(float64) float64 { return 0 }
	qOK := t.Eval(hours)
	return qFailed - qOK, nil
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
