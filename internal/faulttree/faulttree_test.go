package faulttree

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func mustTree(t *testing.T, top Node) *Tree {
	t.Helper()
	tree, err := New(top)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestEventValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil unreliability did not panic")
		}
	}()
	NewEvent("x", nil)
}

func TestConstEventRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range probability did not panic")
		}
	}()
	ConstEvent("x", 1.5)
}

func TestExponentialEvent(t *testing.T) {
	e := ExponentialEvent("n", 0.001)
	if e.Q(0) != 0 {
		t.Errorf("Q(0) = %v", e.Q(0))
	}
	want := 1 - math.Exp(-0.001*100)
	if math.Abs(e.Q(100)-want) > 1e-15 {
		t.Errorf("Q(100) = %v, want %v", e.Q(100), want)
	}
}

func TestGateValidation(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty AND": func() { AND() },
		"empty OR":  func() { OR() },
		"nil child": func() { OR(nil) },
		"bad k":     func() { KOfN(5, ConstEvent("a", 0.1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestANDOREval(t *testing.T) {
	a, b := ConstEvent("a", 0.1), ConstEvent("b", 0.2)
	and := mustTree(t, AND(a, b))
	if got := and.Eval(1); math.Abs(got-0.02) > 1e-15 {
		t.Errorf("AND = %v, want 0.02", got)
	}
	or := mustTree(t, OR(ConstEvent("a", 0.1), ConstEvent("b", 0.2)))
	want := 1 - 0.9*0.8
	if got := or.Eval(1); math.Abs(got-want) > 1e-15 {
		t.Errorf("OR = %v, want %v", got, want)
	}
}

func TestKOfNEval(t *testing.T) {
	// 2-of-3 with q = 0.1 each: 3·q²(1−q) + q³.
	q := 0.1
	tree := mustTree(t, KOfN(2, ConstEvent("a", q), ConstEvent("b", q), ConstEvent("c", q)))
	want := 3*q*q*(1-q) + q*q*q
	if got := tree.Eval(1); math.Abs(got-want) > 1e-15 {
		t.Errorf("2-of-3 = %v, want %v", got, want)
	}
}

func TestDuplicateDistinctEventsRejected(t *testing.T) {
	if _, err := New(OR(ConstEvent("x", 0.1), ConstEvent("x", 0.2))); err == nil {
		t.Error("two distinct events named x did not error")
	}
	if _, err := New(nil); err == nil {
		t.Error("nil top did not error")
	}
}

func TestSharedEventExactEval(t *testing.T) {
	// Top = OR(AND(a,b), AND(a,c)). With the same *Event a shared, the
	// naive independent evaluation would square P(a); Shannon
	// decomposition must give P = qa(qb + qc − qb·qc).
	a := ConstEvent("a", 0.5)
	b := ConstEvent("b", 0.5)
	c := ConstEvent("c", 0.5)
	tree := mustTree(t, OR(AND(a, b), AND(a, c)))
	want := 0.5 * (0.5 + 0.5 - 0.25)
	if got := tree.Eval(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("shared eval = %v, want %v", got, want)
	}
}

func TestReliabilityComplementsEval(t *testing.T) {
	tree := mustTree(t, OR(ExponentialEvent("a", 1e-4), ExponentialEvent("b", 2e-4)))
	for _, h := range []float64{0, 100, 8760} {
		if math.Abs(tree.Reliability(h)+tree.Eval(h)-1) > 1e-12 {
			t.Errorf("R+Q != 1 at %v", h)
		}
	}
}

func TestPaperFigure5Shape(t *testing.T) {
	// Figure 5: system fails if the CU subsystem OR the wheel-node
	// subsystem fails. With independent subsystems, R_sys = R_cu·R_wn.
	qCU := func(h float64) float64 { return 1 - math.Exp(-2e-4*h) }
	qWN := func(h float64) float64 { return 1 - math.Exp(-8e-4*h) }
	tree := mustTree(t, OR(NewEvent("cu", qCU), NewEvent("wheels", qWN)))
	for _, h := range []float64{100, 1000, 8760} {
		want := math.Exp(-2e-4*h) * math.Exp(-8e-4*h)
		if got := tree.Reliability(h); math.Abs(got-want) > 1e-12 {
			t.Errorf("R(%v) = %v, want %v", h, got, want)
		}
	}
}

func TestMinimalCutSetsSimple(t *testing.T) {
	tree := mustTree(t, OR(
		AND(ConstEvent("a", 0.1), ConstEvent("b", 0.1)),
		ConstEvent("c", 0.1),
	))
	got := tree.MinimalCutSets()
	want := [][]string{{"c"}, {"a", "b"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cut sets = %v, want %v", got, want)
	}
}

func TestMinimalCutSetsAbsorption(t *testing.T) {
	// OR(a, AND(a, b)): the superset {a,b} must be absorbed by {a}.
	a := ConstEvent("a", 0.1)
	tree := mustTree(t, OR(a, AND(a, ConstEvent("b", 0.1))))
	got := tree.MinimalCutSets()
	want := [][]string{{"a"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cut sets = %v, want %v", got, want)
	}
}

func TestMinimalCutSetsKOfN(t *testing.T) {
	tree := mustTree(t, KOfN(2, ConstEvent("a", 0.1), ConstEvent("b", 0.1), ConstEvent("c", 0.1)))
	got := tree.MinimalCutSets()
	want := [][]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("cut sets = %v, want %v", got, want)
	}
}

func TestEventsSorted(t *testing.T) {
	tree := mustTree(t, OR(ConstEvent("zeta", 0.1), ConstEvent("alpha", 0.1)))
	got := tree.Events()
	if !reflect.DeepEqual(got, []string{"alpha", "zeta"}) {
		t.Errorf("Events = %v", got)
	}
}

func TestDescribe(t *testing.T) {
	tree := mustTree(t, OR(AND(ConstEvent("a", 0.1), ConstEvent("b", 0.1)),
		KOfN(1, ConstEvent("c", 0.1))))
	d := tree.Describe()
	for _, frag := range []string{"OR(", "AND(", "1-of-1(", "a", "b", "c"} {
		if !strings.Contains(d, frag) {
			t.Errorf("Describe %q missing %q", d, frag)
		}
	}
}

func TestBirnbaumImportance(t *testing.T) {
	// For OR(a, b): ∂Q/∂qa = 1 − qb.
	tree := mustTree(t, OR(ConstEvent("a", 0.3), ConstEvent("b", 0.2)))
	got, err := tree.BirnbaumImportance("a", 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Birnbaum(a) = %v, want 0.8", got)
	}
	// Eval must be unperturbed afterwards.
	want := 1 - 0.7*0.8
	if math.Abs(tree.Eval(1)-want) > 1e-12 {
		t.Error("BirnbaumImportance perturbed the tree")
	}
	if _, err := tree.BirnbaumImportance("nope", 1); err == nil {
		t.Error("unknown event did not error")
	}
}

func TestEvalMatchesCutSetBoundProperty(t *testing.T) {
	// Property: exact top probability is bounded above by the sum of
	// minimal cut-set probabilities (rare-event union bound), and is
	// within [max single cut-set prob, union bound].
	check := func(qa, qb, qc uint8) bool {
		pa := float64(qa%100) / 1000
		pb := float64(qb%100) / 1000
		pc := float64(qc%100) / 1000
		tree, err := New(OR(
			AND(ConstEvent("a", pa), ConstEvent("b", pb)),
			ConstEvent("c", pc),
		))
		if err != nil {
			return false
		}
		exact := tree.Eval(1)
		union := pa*pb + pc
		lower := math.Max(pa*pb, pc)
		return exact <= union+1e-12 && exact >= lower-1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSharedEvalAgreesWithUnsharedProperty(t *testing.T) {
	// Property: when the tree happens to have no sharing, the Shannon
	// decomposition path and the direct gate path agree. Force both by
	// constructing two equivalent trees, one with a dummy shared leaf.
	check := func(qa, qb uint8) bool {
		pa := float64(qa%100) / 100
		pb := float64(qb%100) / 100
		direct, err := New(AND(ConstEvent("a", pa), ConstEvent("b", pb)))
		if err != nil {
			return false
		}
		a := ConstEvent("a", pa)
		// OR(x, x) with the same pointer is logically just x.
		sharedTree, err := New(AND(OR(a, a), ConstEvent("b", pb)))
		if err != nil {
			return false
		}
		return math.Abs(direct.Eval(1)-sharedTree.Eval(1)) < 1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEvalUnshared(b *testing.B) {
	top := OR(
		AND(ExponentialEvent("a", 1e-4), ExponentialEvent("b", 1e-4)),
		AND(ExponentialEvent("c", 1e-4), ExponentialEvent("d", 1e-4)),
		ExponentialEvent("e", 1e-5),
	)
	tree, err := New(top)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tree.Eval(8760)
	}
}

func BenchmarkEvalSharedShannon(b *testing.B) {
	shared := make([]*Event, 10)
	for i := range shared {
		shared[i] = ConstEvent(string(rune('a'+i)), 0.01)
	}
	top := OR(
		AND(shared[0], shared[1], shared[2], shared[3], shared[4]),
		AND(shared[0], shared[5], shared[6], shared[7]),
		AND(shared[2], shared[8], shared[9]),
	)
	tree, err := New(top)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = tree.Eval(1)
	}
}
