package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RNGStream polices RNG construction in campaign/worker code (the
// fault-injection campaign package and the command-line drivers).
// Parallel campaigns are bit-identical across worker counts only
// because every trial derives its stream as a pure function of
// (seed, trial index) via des.NewRandIndexed; constructing a stream any
// other way — des.NewRand, Rand.Split (draw-order dependent), or
// math/rand sources — reintroduces schedule-dependent state.
var RNGStream = &Analyzer{
	Name: "rngstream",
	Doc: "require campaign/worker RNG streams to come from " +
		"des.NewRandIndexed",
	Run: runRNGStream,
}

// rngScopedPackages are the import-path segments in which the check
// applies: trial distribution (uniform and adaptive) and the CLI
// layers that seed it.
var rngScopedPackages = []string{"internal/fault", "internal/adapt", "cmd"}

func isRNGScoped(path string) bool {
	for _, s := range rngScopedPackages {
		if path == s {
			return true
		}
		if i := strings.Index(path, s); i >= 0 {
			end := i + len(s)
			if (i == 0 || path[i-1] == '/') && (end == len(path) || path[end] == '/') {
				return true
			}
		}
	}
	return false
}

func runRNGStream(pass *Pass) {
	if !isRNGScoped(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case isPathSuffix(fn.Pkg().Path(), desPathSuffix) && fn.Name() == "NewRand":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(call.Pos(), "des.NewRand in campaign/worker code ties the stream to call order; derive per-trial streams with des.NewRandIndexed(seed, index) so any worker interleaving replays the sequential campaign")
				}
			case isPathSuffix(fn.Pkg().Path(), desPathSuffix) && fn.Name() == "Split":
				pass.Reportf(call.Pos(), "Rand.Split derives the child from the parent's current draw position, which depends on execution order; use des.NewRandIndexed(seed, index) in campaign/worker code")
			case fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2":
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
					pass.Reportf(call.Pos(), "math/rand.%s in campaign/worker code bypasses the reproducible stream seam; use des.NewRandIndexed(seed, index)", fn.Name())
				}
			}
			return true
		})
	}
}
