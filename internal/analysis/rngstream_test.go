package analysis

import "testing"

func TestRNGStream(t *testing.T) {
	runAnalyzerTest(t, RNGStream, "rngstream", "repro/internal/fault/rngfixture")
}

// TestRNGStreamScope: outside campaign/worker code, explicit seeding is
// a model-level choice (e.g. internal/node derives per-node streams)
// and is not flagged.
func TestRNGStreamScope(t *testing.T) {
	pkg := fixturePackage(t, "scopecheck", "repro/internal/node/scopecheck")
	if diags := Check(pkg, []*Analyzer{RNGStream}); len(diags) != 0 {
		t.Errorf("want no diagnostics outside campaign packages, got %v", diags)
	}
}

func TestIsRNGScoped(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"repro/internal/fault", true},
		{"repro/internal/adapt", true},
		{"repro/cmd/faultcampaign", true},
		{"repro/internal/node", false},
		{"repro/internal/faulttree", false},
		{"repro/internal/adaptive", false},
		{"cmd", true},
	}
	for _, c := range cases {
		if got := isRNGScoped(c.path); got != c.want {
			t.Errorf("isRNGScoped(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
