package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// A Finding is one row of the machine-readable nlftvet report.
type Finding struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Column      int    `json:"column"`
	Package     string `json:"package"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Allowed     bool   `json:"allowed"`
	AllowReason string `json:"allow_reason,omitempty"`
}

// A Report is the JSON findings artifact nlftvet -json writes and CI
// uploads next to the exhaustive coverage certificate. It contains
// every diagnostic the suite produced — active findings AND
// allow-suppressed ones with their recorded justification — so the
// exemption set is auditable from the artifact alone, not just the
// failures.
type Report struct {
	Analyzers []string  `json:"analyzers"`
	Packages  int       `json:"packages"`
	Active    int       `json:"active"`
	Allowed   int       `json:"allowed"`
	Findings  []Finding `json:"findings"`
}

// BuildReport assembles the report from CheckPackages results
// (index-aligned with pkgs). File paths are made relative to root when
// possible, so artifacts compare across checkouts.
func BuildReport(root string, pkgs []*Package, analyzers []*Analyzer, results [][]Diagnostic) *Report {
	r := &Report{
		Packages: len(pkgs),
		Findings: []Finding{}, // marshal as [] rather than null when clean
	}
	for _, a := range analyzers {
		r.Analyzers = append(r.Analyzers, a.Name)
	}
	for i, diags := range results {
		for _, d := range diags {
			file := d.Pos.Filename
			if root != "" {
				if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
					file = filepath.ToSlash(rel)
				}
			}
			if d.Allowed {
				r.Allowed++
			} else {
				r.Active++
			}
			r.Findings = append(r.Findings, Finding{
				File:        file,
				Line:        d.Pos.Line,
				Column:      d.Pos.Column,
				Package:     pkgs[i].ImportPath,
				Analyzer:    d.Analyzer,
				Message:     d.Message,
				Allowed:     d.Allowed,
				AllowReason: d.AllowReason,
			})
		}
	}
	return r
}

// WriteJSON writes the report, indented for human diffing.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
