// Fixture for the noalloc analyzer: every construct it must flag, the
// sanctioned idioms it must not, and the //nlft:allow escape hatch.
package noallocfixture

import "fmt"

type sink struct {
	buf  []int
	pool []int
}

var global int

//nlft:noalloc
func hotClosure(n int) func() int {
	return func() int { return n } // want `closure captures n`
}

//nlft:noalloc
func hotStaticClosure() func() int {
	// Package-level variables live in static storage: referencing them
	// is not a capture and the literal compiles to a static closure.
	return func() int { return global }
}

//nlft:noalloc
func (s *sink) hotAppend(v int, other []int) {
	s.pool = append(s.pool, v)            // pooled self-append: sanctioned
	s.pool = append(s.pool[:0], other...) // truncate-refill of the pooled backing: sanctioned
	s.buf = append(other, v)              // want `append outside the pooled self-append idiom`
}

//nlft:noalloc
func hotMake() map[int]int {
	ch := make(chan int) // want `make\(chan int\) allocates`
	_ = ch
	return make(map[int]int) // want `make\(map\[int\]int\) allocates`
}

//nlft:noalloc
func hotNew() *sink {
	return new(sink) // want `new allocates`
}

//nlft:noalloc
func hotFmt(v int) {
	fmt.Println(v) // want `fmt\.Println formats through reflection`
}

//nlft:noalloc
func hotBox(v int) any {
	return v // want `returning int as any boxes the value`
}

//nlft:noalloc
func hotBoxArg(v [4]uint64) {
	eat(v) // want `passing \[4\]uint64 as any boxes the value`
	eatPtr(&v)
}

func eat(any)           {}
func eatPtr(*[4]uint64) {}

//nlft:noalloc
func hotString(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//nlft:noalloc
func hotConvert(b []byte) string {
	return string(b) // want `converting \[\]byte to string copies the bytes`
}

//nlft:noalloc
func hotGo(f func()) {
	go f() // want `go statement allocates a goroutine stack`
}

//nlft:noalloc
func hotColdPath(ok bool) {
	if !ok {
		//nlft:allow noalloc cold failure path, never taken in a warm hyperperiod
		panic(fmt.Sprintf("bad state %v", ok))
	}
}

// coldUnannotated carries no annotation, so nothing in it is checked.
func coldUnannotated() []int {
	return append([]int{}, 1, 2, 3)
}
