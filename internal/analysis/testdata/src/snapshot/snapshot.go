// Fixture for the snapshot/restore code patterns introduced by the
// checkpoint/fork engine (internal/fault/fork.go and the per-package
// snapshot.go files): warm Snapshot/Restore pairs are annotated
// //nlft:noalloc and must copy into preallocated scratch — value and
// array copies plus the truncate-refill idiom over the scratch's own
// pooled backing — while checkpoint copies of pooled des.Event handles
// need a justified //nlft:allow (they are restored wholesale with the
// event pool, whose generation rewind revalidates them, so the usual
// Scheduled/Cancel guard does not apply).
package snapfixture

import "repro/internal/des"

// machine is the live object being checkpointed.
type machine struct {
	sim    *des.Simulator
	clock  des.Time
	regs   [8]uint64
	queue  []int
	timer  des.Event
	lookup map[string]int
}

// fire is the timer's bound callback.
func (m *machine) fire() {}

// disarm guards the machine's own handle the sanctioned way.
func (m *machine) disarm() {
	m.sim.Cancel(m.timer)
	m.timer = des.Event{}
}

// state is the preallocated checkpoint scratch for machine.
type state struct {
	clock des.Time
	regs  [8]uint64
	queue []int
	// timer is a checkpoint copy of the machine's own (guarded) handle.
	timer  des.Event //nlft:allow eventhandle checkpoint copy of the machine's own handle: restored wholesale with the event pool, whose generation rewind revalidates exactly this handle
	lookup map[string]int
}

// Snapshot copies into preallocated scratch: value copies, array
// copies, and truncate-refill of the scratch's pooled backing are all
// allocation-free on the warm path.
//
//nlft:noalloc
func (m *machine) Snapshot(into *state) {
	into.clock = m.clock
	into.regs = m.regs
	into.queue = append(into.queue[:0], m.queue...)
	into.timer = m.timer
}

// Restore is the mirror image: rewind the live object in place so the
// identities its queued events and bound callbacks rely on survive.
//
//nlft:noalloc
func (m *machine) Restore(from *state) {
	m.clock = from.clock
	m.regs = from.regs
	m.queue = append(m.queue[:0], from.queue...)
	m.timer = from.timer
}

// SnapshotFresh is the anti-pattern the engine forbids: building fresh
// copies per capture allocates on every checkpoint.
//
//nlft:noalloc
func (m *machine) SnapshotFresh(into *state) {
	into.queue = append([]int(nil), m.queue...)       // want `append outside the pooled self-append idiom`
	into.lookup = make(map[string]int, len(m.lookup)) // want `make\(map\[string\]int\) allocates`
}

// rearmClosure re-schedules with a fresh closure instead of a bound
// callback field — an allocation per restore.
//
//nlft:noalloc
func (m *machine) rearmClosure(at des.Time) {
	m.timer = m.sim.Schedule(at, des.PrioKernel, func() { m.fire() }) // want `closure captures m`
}

// unjustified omits the allow: a checkpoint copy of a pooled handle
// that the package never guards (and never justifies) still trips the
// handle-discipline analysis.
type unjustified struct {
	timer des.Event // want `stores a pooled des\.Event handle but the package never guards it`
}

// captureUnjustified copies the handle into the unjustified scratch.
//
//nlft:noalloc
func (m *machine) captureUnjustified(into *unjustified) {
	into.timer = m.timer
}
