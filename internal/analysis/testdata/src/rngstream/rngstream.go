// Fixture for the rngstream analyzer. Loaded under the campaign import
// path so the scope check applies.
package rngfixture

import (
	"math/rand"

	"repro/internal/des"
)

// perTrial is the sanctioned seam: a pure function of (seed, index).
func perTrial(seed uint64, trial int) *des.Rand {
	return des.NewRandIndexed(seed, uint64(trial))
}

// perStratumTrial is the adaptive campaign's sanctioned seam: a pure
// function of (seed, stratum key, within-stratum index).
func perStratumTrial(seed, key uint64, idx int) *des.Rand {
	return des.NewRandIndexed2(seed, key, uint64(idx))
}

func rootStream(seed uint64) *des.Rand {
	return des.NewRand(seed) // want `des\.NewRand in campaign/worker code`
}

func splitStream(r *des.Rand) *des.Rand {
	return r.Split() // want `Rand\.Split derives the child`
}

func mathRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `math/rand\.New in campaign/worker code` `math/rand\.NewSource in campaign/worker code`
}

func allowed(seed uint64) *des.Rand {
	//nlft:allow rngstream campaign root seed derivation, runs once before any trial
	return des.NewRand(seed)
}
