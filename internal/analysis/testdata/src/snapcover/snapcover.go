// Package sctest is the snapshotcover fixture: Snapshot/Restore pairs
// with covered, missed, skipped and allow-suppressed fields, a
// delegating sub-component pair, a one-sided pair, a state-type
// mismatch, and shapes outside the contract.
package sctest

// inner/innerState: a fully covered SnapshotState/RestoreState pair the
// outer gadget delegates to.
type inner struct {
	regs [4]uint32
}

type innerState struct {
	regs [4]uint32
}

func (in *inner) SnapshotState(into *innerState) {
	into.regs = in.regs
}

func (in *inner) RestoreState(from *innerState) {
	in.regs = from.regs
}

type gadget struct {
	a          int
	b          []byte
	sub        inner
	missedSnap int    // want "field gadget.missedSnap is not captured by Snapshot"
	missedRest int    // want "field gadget.missedRest is not restored by Restore"
	legacy     int    //nlft:allow snapshotcover legacy scratch field scheduled for removal
	cfg        string //nlft:snapshot-skip immutable configuration, set at construction
}

type gadgetState struct {
	a     int
	b     []byte
	sub   innerState
	sOnly int // want "state field gadgetState.sOnly is never read back by Restore"
	rOnly int // want "state field gadgetState.rOnly is never written by Snapshot"
	dead  int // want "never written by Snapshot" "never read back by Restore"
	meta  int //nlft:snapshot-skip capture timestamp, diagnostic only
}

func (g *gadget) Snapshot(into *gadgetState) {
	into.a = g.a
	into.b = append(into.b[:0], g.b...)
	g.sub.SnapshotState(&into.sub)
	into.sOnly = g.missedRest
	into.meta = 7
}

func (g *gadget) Restore(from *gadgetState) {
	g.a = from.a
	g.b = append(g.b[:0], from.b...)
	g.sub.RestoreState(&from.sub)
	g.missedSnap = from.rOnly
}

// half captures but cannot rewind: no Restore at all.
type half struct {
	n int
}

type halfState struct{ n int }

func (h *half) Snapshot(into *halfState) { // want "half has no mirror Restore"
	into.n = h.n
}

// odd's two directions disagree on the state type.
type odd struct{ n int }

type oddA struct{ n int }

type oddB struct{ n int }

func (o *odd) Snapshot(into *oddA) { into.n = o.n }

func (o *odd) Restore(from *oddB) { o.n = from.n } // want "must share one state type"

// valuesnap's value-returning pair (cpu.CPU's cycle-window shape) is
// architectural and outside the capture-pair contract: no findings.
type valuesnap struct{ n int }

type valueState struct{ n int }

func (v valuesnap) Snapshot() valueState { return valueState{n: v.n} }

func (v *valuesnap) Restore(s valueState) { v.n = s.n }

// extra: trailing parameters beyond the state pointer are allowed
// (fault.Instance.Snapshot threads an *obs.Collector through).
type extra struct{ n int }

type extraState struct{ n int }

func (e *extra) Snapshot(into *extraState, scratch []byte) {
	into.n = e.n
	_ = scratch
}

func (e *extra) Restore(from *extraState, scratch []byte) {
	e.n = from.n
	_ = scratch
}

// plain has no capture pair: nothing here is checked.
type plain struct {
	x int
}

func use(p *plain) int { return p.x }
