// Package mctest is the mergecommute fixture: a merge root combining
// state through commutative ops (clean), overwrites, appends,
// early exits (findings), guard idioms and allow suppression.
package mctest

type hist struct {
	buckets [8]uint64
	max     uint64
}

// merge is reached from the root below, so its body is merge context.
func (h *hist) merge(o *hist) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.max = o.max // want "plain overwrite of h.max in merge path"
}

type agg struct {
	total   int
	peak    int
	ratio   float64
	last    int
	names   map[string]int
	samples []int
	sorted  []int
	h       hist
	seen    map[string]bool
}

// Merge folds src into a.
//
//nlft:merge
func (a *agg) Merge(src *agg) {
	a.total += src.total

	// Extreme-keep: ordering guard makes the write order-independent.
	if src.peak > a.peak {
		a.peak = src.peak
	}

	// Commutative per-key adds inside a map range are fine.
	for k, v := range src.names {
		a.names[k] += v
	}

	// Init-if-absent: nil guard makes the write order-independent.
	if a.seen == nil {
		a.seen = make(map[string]bool)
	}

	a.h.merge(&src.h)

	a.ratio /= 2 // want "non-commutative compound assignment /="

	a.last = src.last // want "plain overwrite of a.last in merge path"

	a.samples = append(a.samples, src.samples...) // want "order-dependent append to a.samples"

	//nlft:allow mergecommute appended in canonical key order, sorted below
	a.sorted = append(a.sorted, src.sorted...)

	// Read-modify-write combines and local scratch are fine.
	a.total = a.total + src.total
	carry := 0
	carry = carry + src.last
	_ = carry
}

// Sum is also a root; early exits from map iteration are findings.
//
//nlft:merge
func Sum(m map[string]int, stop string) int {
	total := 0
	for k, v := range m {
		if k == stop {
			break // want "break inside map iteration in merge path"
		}
		total += v
	}
	for k, v := range m {
		if k == stop {
			return v // want "return inside map iteration in merge path"
		}
	}
	// A break in a non-map loop inside the map range binds to the inner
	// loop: no finding.
	for range m {
		for i := 0; i < 3; i++ {
			if i == 2 {
				break
			}
		}
	}
	return total
}

// keepSet's overwrite sits under the caller's ordering guard, so the
// call is not descended and the overwrite is not a finding.
func (a *agg) keepSet(v int) {
	a.last = v
}

// Keep is a root whose only write happens through a guarded call.
//
//nlft:merge
func (a *agg) Keep(v int) {
	if v > a.last {
		a.keepSet(v)
	}
}

// Untracked is not on any merge path: nothing here is checked.
func (a *agg) Untracked(src *agg) {
	a.last = src.last
	a.samples = append(a.samples, src.samples...)
}
