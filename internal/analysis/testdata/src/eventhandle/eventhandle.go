// Fixture for the eventhandle analyzer: pooled des.Event handle
// discipline in client code.
package ehfixture

import "repro/internal/des"

// guarded stores a handle the sanctioned way: every stored handle is
// canceled (or liveness-checked) through the simulator that issued it.
type guarded struct {
	sim *des.Simulator
	ev  des.Event
}

func (g *guarded) arm(at des.Time) {
	g.sim.Cancel(g.ev)
	g.ev = g.sim.Schedule(at, des.PrioKernel, g.fire)
}

func (g *guarded) fire() {}

func (g *guarded) pending() bool { return g.sim.Scheduled(g.ev) }

// guardedArray stores handles in an array field, guarded through an
// index expression.
type guardedArray struct {
	sim     *des.Simulator
	pending [2]des.Event
}

func (g *guardedArray) disarm(i int) {
	g.sim.Cancel(g.pending[i])
	g.pending[i] = des.Event{}
}

type unguarded struct {
	ev des.Event // want `stores a pooled des\.Event handle but the package never guards it`
}

func storeUnguarded(u *unguarded, s *des.Simulator, at des.Time) {
	u.ev = s.Schedule(at, des.PrioKernel, func() {})
}

func compare(a, b des.Event) bool {
	if a == b { // want `comparing two des\.Event handles`
		return true
	}
	if a == (des.Event{}) { // zero "no event pending" sentinel: fine
		return false
	}
	//nlft:allow eventhandle identity comparison intended: both handles come from the same Schedule call
	return a != b
}

func useAfterCancel(s *des.Simulator, e des.Event) bool {
	s.Cancel(e)
	return s.Scheduled(e) // want `handle e is read after Cancel`
}

func cancelThenReset(s *des.Simulator, e des.Event) des.Event {
	s.Cancel(e)
	e = des.Event{}
	return e
}
