// Fixture full of violations but carrying no want comments: the scoped
// analyzers (nodeterminism, rngstream) must report nothing when this
// package is loaded under an import path outside their scope.
package scopecheck

import (
	"time"

	"repro/internal/des"
)

func wallClock() time.Time { return time.Now() }

func rootStream(seed uint64) *des.Rand { return des.NewRand(seed) }

func mapIter(m map[int]int) int {
	total := 0
	for k := range m {
		total += k
	}
	return total
}
