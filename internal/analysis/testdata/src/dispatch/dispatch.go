// Fixture for the threaded-code dispatch and delta-snapshot code
// patterns (internal/cpu/dispatch.go and internal/cpu/snapshot.go): the
// tag-validated fetch + dense handler switch must be allocation-free in
// place, delta captures may allocate fresh page buffers only on the
// justified cold path, and any pooled des.Event handle stored next to
// the machine state still needs the usual guard or a justified allow.
package dispatchfixture

import "repro/internal/des"

const pageWords = 64

// page is one immutable checkpoint page buffer.
type page struct {
	words [pageWords]uint32
}

// microOp mirrors a predecoded instruction; word is the validation tag.
type microOp struct {
	word uint32
	imm  int32
	h    uint8
}

// machine mirrors the CPU/memory pair the dispatch loop runs over,
// with dirty-page tracking for delta snapshots.
type machine struct {
	words  []uint32
	pre    []microOp
	regs   [16]uint32
	pc     uint32
	dirty  []uint64
	shadow []*page
	sim    *des.Simulator
	timer  des.Event
}

// fire is the timer's bound callback.
func (m *machine) fire() {}

// disarm guards the machine's own handle the sanctioned way.
func (m *machine) disarm() {
	m.sim.Cancel(m.timer)
	m.timer = des.Event{}
}

// decodeInto redecodes one instruction word in place — the
// tag-validation path runs per stale fetch and must not allocate.
//
//nlft:noalloc
func decodeInto(e *microOp, w uint32) {
	e.word = w
	e.imm = int32(int16(uint16(w)))
	e.h = uint8(w >> 24)
}

// dispatch is the hot loop: tag-validated fetch plus a dense handler
// switch, all over preallocated state.
//
//nlft:noalloc
func (m *machine) dispatch(max int) {
	for n := 0; n < max; n++ {
		idx := m.pc >> 2
		if idx >= uint32(len(m.pre)) {
			return
		}
		e := &m.pre[idx]
		if w := m.words[idx]; e.word != w {
			decodeInto(e, w)
		}
		switch e.h {
		case 1:
			m.regs[1] = uint32(e.imm)
		case 2:
			m.regs[1] += m.regs[2]
		}
		m.pc += 4
	}
}

// dispatchClosures is the anti-pattern threaded code replaces: binding
// each micro-op to a fresh handler closure allocates on every step.
//
//nlft:noalloc
func (m *machine) dispatchClosures(max int) {
	for n := 0; n < max; n++ {
		e := m.pre[m.pc>>2]
		h := func() { m.regs[1] = uint32(e.imm) } // want `closure captures`
		h()
		m.pc += 4
	}
}

// state is the preallocated delta-checkpoint scratch.
type state struct {
	pages []*page
}

// snapshotDelta is the sanctioned delta-capture shape: the page slice
// is sized once and fresh buffers are built only for dirtied pages —
// both cold paths carry a justified allow; everything else copies into
// place.
//
//nlft:noalloc
func (m *machine) snapshotDelta(into *state) {
	if len(into.pages) != len(m.shadow) {
		//nlft:allow noalloc cold first-capture sizing; the slice is retained for the state's lifetime
		into.pages = make([]*page, len(m.shadow))
	}
	for p := range m.shadow {
		if m.shadow[p] == nil || m.dirty[p>>6]&(1<<(uint(p)&63)) != 0 {
			//nlft:allow noalloc cold capture path: a fresh immutable buffer per dirtied page, retained by the checkpoint store
			pg := &page{}
			copy(pg.words[:], m.words[p*pageWords:])
			m.shadow[p] = pg
		}
		into.pages[p] = m.shadow[p]
	}
}

// restoreDelta copies back only diverged pages; nothing allocates.
//
//nlft:noalloc
func (m *machine) restoreDelta(from *state) {
	for p, pg := range from.pages {
		if m.shadow[p] == pg && m.dirty[p>>6]&(1<<(uint(p)&63)) == 0 {
			continue
		}
		copy(m.words[p*pageWords:], pg.words[:])
		m.shadow[p] = pg
	}
}

// snapshotFull is the anti-pattern delta capture replaces: a fresh
// full-image copy (and a fresh page table) on every checkpoint.
//
//nlft:noalloc
func (m *machine) snapshotFull(into *state) {
	into.pages = make([]*page, len(m.shadow)) // want `make\(\[\]\*page\) allocates`
	for p := range into.pages {
		into.pages[p] = &page{} // want `address of composite literal escapes`
	}
}

// growTrace is the unpooled-append anti-pattern on the restore path.
//
//nlft:noalloc
func (m *machine) growTrace(dst []uint32) []uint32 {
	return append(dst, m.pc) // want `append outside the pooled self-append idiom`
}

// unguarded stores a pooled handle next to checkpoint state without the
// guard discipline or a justified allow.
type unguarded struct {
	deadline des.Event // want `stores a pooled des\.Event handle but the package never guards it`
}

// capture copies the handle into the unguarded scratch.
//
//nlft:noalloc
func (m *machine) capture(into *unguarded) {
	into.deadline = m.timer
}
