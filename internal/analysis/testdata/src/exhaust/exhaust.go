// Fixture for the exhaustive-verifier engine hot loop
// (internal/exhaust/engine.go): the per-placement path runs once per
// enumerated fault, so its checker and arena bookkeeping are annotated
// //nlft:noalloc and must grow state with the pooled self-append idiom
// and re-arm via a bound callback field. The package also sits inside
// the deterministic-simulation core, so aggregation over maps needs a
// fixed key order or a justified //nlft:allow nodeterminism, and
// wall-clock reads and unstable sorts are forbidden outright.
package exhfixture

import (
	"sort"
	"time"

	"repro/internal/des"
)

// worker mirrors the per-worker exploration state: pooled arenas grown
// in place across placements, a bound self-rearming checker callback,
// and the visited-digest memo table.
type worker struct {
	sim     *des.Simulator
	marks   []int
	arena   []byte
	nextAt  des.Time
	checkFn func()
	visited map[uint64]int
}

// checkBoundary is the self-rearming checker slice: it self-appends a
// mark into the pooled arena and re-schedules the bound callback field
// — both allocation-free on the warm path.
//
//nlft:noalloc
func (w *worker) checkBoundary() {
	w.marks = append(w.marks, len(w.arena))
	w.sim.Schedule(w.nextAt, des.PrioObserver, w.checkFn)
}

// resetPlacement truncate-refills the arenas over their own pooled
// backing before replaying the next placement's suffix.
//
//nlft:noalloc
func (w *worker) resetPlacement(seed []byte) {
	w.arena = append(w.arena[:0], seed...)
	w.marks = w.marks[:0]
}

// memoizeFresh is the anti-pattern the engine forbids on the hot path:
// building fresh copies and fresh tables per placement allocates once
// per enumerated fault — tens of thousands of times per run.
//
//nlft:noalloc
func (w *worker) memoizeFresh() {
	saved := append([]int(nil), w.marks...) // want `append outside the pooled self-append idiom`
	_ = saved
	w.visited = make(map[uint64]int) // want `make\(map\[uint64\]int\) allocates`
}

// rearmClosure re-schedules with a fresh closure instead of the bound
// callback field — an allocation per boundary check.
//
//nlft:noalloc
func (w *worker) rearmClosure() {
	w.sim.Schedule(w.nextAt, des.PrioObserver, func() { w.checkBoundary() }) // want `closure captures w`
}

// tally folds per-mechanism counts into a total. Summation is a
// commutative reduction, so iteration order cannot leak into the
// result; the justified allow documents exactly that.
func tally(counts map[string]int) int {
	total := 0
	//nlft:allow nodeterminism summing counts is a commutative reduction; iteration order cannot reach the result
	for _, n := range counts {
		total += n
	}
	return total
}

// leakOrder appends map keys in iteration order — the order leaks
// straight into the output slice, and from there into certificate
// bytes and digests.
func leakOrder(counts map[string]int, out *[]string) {
	for name := range counts { // want `map iteration order is nondeterministic`
		*out = append(*out, name)
	}
}

// stamp reads the host wall clock; inside the simulation core every
// timestamp must come from des.Simulator.Now so runs replay.
func stamp() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the host wall clock`
}

// sortMechs sorts detection-mechanism names by count with sort.Slice:
// mechanisms with equal counts land in nondeterministic order.
func sortMechs(names []string, counts map[string]int) {
	sort.Slice(names, func(i, j int) bool { // want `sort\.Slice is unstable`
		return counts[names[i]] < counts[names[j]]
	})
}
