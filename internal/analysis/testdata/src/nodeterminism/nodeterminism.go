// Fixture for the nodeterminism analyzer. Loaded under a simulation
// import path so the scope check applies.
package ndfixture

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()      // want `time\.Now reads the host wall clock`
	return time.Since(t0) // want `time\.Since reads the host wall clock`
}

func globalRand() int {
	return rand.Intn(6) // want `math/rand\.Intn draws from the process-global source`
}

// seededRand constructs an explicitly-seeded source, which is
// deterministic and therefore not flagged; drawing from the stream via
// its methods is likewise fine.
func seededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(6)
}

func mapIter(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is nondeterministic`
		total += v
	}
	//nlft:allow nodeterminism commutative sum: iteration order cannot affect the result
	for _, v := range m {
		total += v
	}
	return total
}

func sortSlices(xs []int) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want `sort\.Slice is unstable`
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
}
