package analysis

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// CheckPackages runs the analyzer suite over every package with the
// given worker count (<= 0 means GOMAXPROCS), returning one diagnostic
// slice per package, index-aligned with pkgs.
//
// The result is deterministic at any parallelism: workers claim
// package indices from an atomic counter, each package's diagnostics
// land in its own slot (already position-sorted by CheckAll), and
// nothing about a package's analysis depends on any other package's —
// so concatenating the slots in pkgs order yields a byte-identical
// findings list whether one worker ran or sixteen did. The shared
// token.FileSet is safe here: checking only reads it (Position
// lookups), which the FileSet synchronizes internally.
func CheckPackages(pkgs []*Package, analyzers []*Analyzer, workers int) [][]Diagnostic {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	results := make([][]Diagnostic, len(pkgs))
	if workers <= 1 {
		for i, pkg := range pkgs {
			results[i] = CheckAll(pkg, analyzers)
		}
		return results
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pkgs) {
					return
				}
				results[i] = CheckAll(pkgs[i], analyzers)
			}
		}()
	}
	wg.Wait()
	return results
}
