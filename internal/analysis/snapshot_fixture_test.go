package analysis

import "testing"

// TestSnapshotFixture runs the noalloc and eventhandle analyzers
// together over the snapshot fixture: the checkpoint/fork engine's
// Snapshot/Restore patterns must satisfy both the zero-allocation
// contract (copy into preallocated scratch) and the pooled-handle
// discipline (checkpoint copies of des.Event handles carry a justified
// allow).
func TestSnapshotFixture(t *testing.T) {
	runAnalyzersTest(t, []*Analyzer{NoAlloc, EventHandle}, "snapshot", "repro/tools/snapfixture")
}
